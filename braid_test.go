package braid

import (
	"strings"
	"testing"
)

func quickstartSystem(t *testing.T, opts ...Option) *System {
	t.Helper()
	kb := MustParseKB(`
		:- base(parent/2).
		:- base(male/1).
		grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
		grandfather(X, Z) :- grandparent(X, Z), male(X).
	`)
	db := NewDB()
	db.MustExec(`CREATE TABLE parent (p TEXT, c TEXT)`)
	db.MustExec(`INSERT INTO parent VALUES ('ann','bob'), ('bob','cal'), ('bob','dee'), ('cal','eve')`)
	db.MustExec(`CREATE TABLE male (x TEXT)`)
	db.MustExec(`INSERT INTO male VALUES ('bob'), ('cal')`)
	sys, err := New(kb, db, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestPublicAPIQuickstart(t *testing.T) {
	sys := quickstartSystem(t)
	ans, err := sys.Ask("grandparent(X, Z)?")
	if err != nil {
		t.Fatal(err)
	}
	rows := ans.All()
	if ans.Err() != nil {
		t.Fatal(ans.Err())
	}
	// ann->bob->cal, ann->bob->dee, bob->cal->eve.
	if len(rows) != 3 {
		t.Fatalf("grandparent rows = %d: %v", len(rows), rows)
	}
	found := false
	for _, r := range rows {
		if r["X"] == "ann" && r["Z"] == "cal" {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing ann/cal: %v", rows)
	}
}

func TestPublicAPIStrategiesAgree(t *testing.T) {
	var counts []int
	for _, strat := range []string{"interpreted", "conjunction", "compiled"} {
		sys := quickstartSystem(t, WithStrategy(strat))
		ans, err := sys.Ask("grandfather(X, Z)?")
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, ans.Count())
		if ans.Err() != nil {
			t.Fatal(ans.Err())
		}
	}
	if counts[0] != counts[1] || counts[1] != counts[2] {
		t.Fatalf("strategies disagree: %v", counts)
	}
	if counts[0] == 0 {
		t.Fatal("expected grandfather answers")
	}
}

func TestPublicAPIAdviceAndStats(t *testing.T) {
	sys := quickstartSystem(t, WithStrategy("conjunction"))
	adv, err := sys.Advice("grandfather(X, Z)?")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(adv, "view d1") || !strings.Contains(adv, "path ") {
		t.Fatalf("advice missing pieces:\n%s", adv)
	}
	ans, _ := sys.Ask("grandfather(X, Z)?")
	ans.Count()
	st := sys.Stats()
	if st.Queries == 0 || st.RemoteRequests == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
	if s := st.String(); !strings.Contains(s, "remote=") {
		t.Errorf("stats string = %q", s)
	}
	if cm := sys.CacheModel(); cm == "" {
		t.Error("cache model should be non-empty after queries")
	}
}

func TestPublicAPIComparators(t *testing.T) {
	for _, comp := range []string{"braid", "loose", "exact", "singlerel"} {
		sys := quickstartSystem(t, WithComparator(comp))
		ans, err := sys.Ask("grandparent(X, Z)?")
		if err != nil {
			t.Fatalf("%s: %v", comp, err)
		}
		if got := ans.Count(); got != 3 {
			t.Fatalf("%s: rows = %d, want 3", comp, got)
		}
		if ans.Err() != nil {
			t.Fatalf("%s: %v", comp, ans.Err())
		}
	}
	if _, err := New(MustParseKB(":- base(b/1)."), NewDB(), WithComparator("bogus")); err == nil {
		t.Error("bogus comparator should error")
	}
}

func TestPublicAPIFeatureToggles(t *testing.T) {
	sys := quickstartSystem(t, WithFeature("prefetch", false), WithFeature("lazy", false), WithCacheBytes(1<<20), WithThinkTime(50))
	ans, err := sys.Ask("grandparent(X, Z)?")
	if err != nil {
		t.Fatal(err)
	}
	ans.Count()
	if _, err := New(MustParseKB(":- base(b/1)."), NewDB(), WithFeature("warp-drive", true)); err == nil {
		t.Error("unknown feature should error")
	}
	if _, err := New(MustParseKB(":- base(b/1)."), NewDB(), WithStrategy("psychic")); err == nil {
		t.Error("unknown strategy should error")
	}
}

func TestPublicAPIOverTCP(t *testing.T) {
	kb := MustParseKB(`
		:- base(parent/2).
		grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
	`)
	db := NewDB()
	db.MustExec(`CREATE TABLE parent (p TEXT, c TEXT)`)
	db.MustExec(`INSERT INTO parent VALUES ('ann','bob'), ('bob','cal')`)
	srv, err := db.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	sys, err := New(kb, nil, WithRemote(srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	ans, err := sys.Ask("grandparent(X, Z)?")
	if err != nil {
		t.Fatal(err)
	}
	rows := ans.All()
	if ans.Err() != nil {
		t.Fatal(ans.Err())
	}
	if len(rows) != 1 || rows[0]["X"] != "ann" || rows[0]["Z"] != "cal" {
		t.Fatalf("tcp rows = %v", rows)
	}
}

func TestPublicAPIEarlyClose(t *testing.T) {
	sys := quickstartSystem(t)
	ans, err := sys.Ask("grandparent(X, Z)?")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ans.Next(); !ok {
		t.Fatal("expected at least one answer")
	}
	ans.Close()
	if _, ok := ans.Next(); ok {
		t.Fatal("Next after Close")
	}
}

func TestDBErrorsAndIndex(t *testing.T) {
	db := NewDB()
	if _, err := db.Exec("SELECT * FROM nothing"); err == nil {
		t.Error("bad SQL should error")
	}
	db.MustExec("CREATE TABLE t (a INT, b INT)")
	db.MustExec("INSERT INTO t VALUES (1, 2)")
	if err := db.CreateIndex("t", 1); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("t", 0); err == nil {
		t.Error("0-based index position should error")
	}
	if len(db.Tables()) != 1 {
		t.Error("tables listing wrong")
	}
	out := db.MustExec("SELECT a FROM t")
	if !strings.Contains(out, "1 tuples") {
		t.Errorf("select output = %q", out)
	}
}

func TestPublicAPIExplanations(t *testing.T) {
	sys := quickstartSystem(t, WithExplanations())
	ans, err := sys.Ask("grandfather(X, Z)?")
	if err != nil {
		t.Fatal(err)
	}
	defer ans.Close()
	row, why, ok := ans.NextExplained()
	if !ok {
		t.Fatal("expected a solution")
	}
	if row["X"] == nil || why == "" {
		t.Fatalf("explained answer incomplete: %v / %q", row, why)
	}
	if !strings.Contains(why, "by rule r") {
		t.Errorf("justification missing rule identifiers:\n%s", why)
	}
	// Without the option, explanations are empty.
	sys2 := quickstartSystem(t)
	ans2, _ := sys2.Ask("grandparent(X, Z)?")
	defer ans2.Close()
	if _, why, ok := ans2.NextExplained(); ok && why != "" {
		t.Error("explanations should be empty without WithExplanations")
	}
}

func TestPublicAPIDirectCAQLAndClosure(t *testing.T) {
	kb := MustParseKB(`:- base(edge/2).`)
	db := NewDB()
	db.MustExec(`CREATE TABLE edge (a INT, b INT)`)
	db.MustExec(`INSERT INTO edge VALUES (1,2), (2,3), (3,4)`)
	sys, err := New(kb, db)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := sys.QueryCAQL("q(X, Y) :- edge(X, Y) & X < 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("direct CAQL rows = %d, want 2: %v", len(rows), rows)
	}
	closure, err := sys.Closure("r(X, Y) :- edge(X, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if len(closure) != 6 {
		t.Fatalf("closure rows = %d, want 6: %v", len(closure), closure)
	}
	if _, err := sys.Closure("r(X) :- edge(X, Y)"); err == nil {
		t.Error("non-binary closure should error")
	}
	if _, err := sys.QueryCAQL("broken("); err == nil {
		t.Error("parse error should propagate")
	}
}
