package braid

import (
	"fmt"

	"repro/internal/remotedb"
)

// DB is the (simulated) remote relational DBMS: a from-scratch engine
// accepting the SQL subset described in DESIGN.md (CREATE TABLE, INSERT,
// conjunctive SELECT with joins, aggregates, ORDER BY, LIMIT). It stands in
// for the INGRES / IDM-500 servers of the paper's prototype and can be used
// in-process or served over TCP.
type DB struct {
	engine *remotedb.Engine
}

// NewDB creates an empty database.
func NewDB() *DB { return &DB{engine: remotedb.NewEngine()} }

// Exec parses and executes one SQL statement, returning the result rendered
// as text for SELECTs (DDL/DML return "").
func (db *DB) Exec(sql string) (string, error) {
	rel, _, err := db.engine.ExecuteSQL(sql)
	if err != nil {
		return "", err
	}
	if rel == nil {
		return "", nil
	}
	return rel.String(), nil
}

// MustExec is Exec panicking on error; for fixtures and examples.
func (db *DB) MustExec(sql string) string {
	out, err := db.Exec(sql)
	if err != nil {
		panic(fmt.Sprintf("braid: %s: %v", sql, err))
	}
	return out
}

// Tables lists the table names.
func (db *DB) Tables() []string { return db.engine.Tables() }

// CreateIndex builds a hash index on the 1-based column positions of a
// table (server-side indexing, independent of the CMS's cached-extension
// indexes).
func (db *DB) CreateIndex(table string, cols ...int) error {
	zero := make([]int, len(cols))
	for i, c := range cols {
		if c < 1 {
			return fmt.Errorf("braid: index positions are 1-based")
		}
		zero[i] = c - 1
	}
	return db.engine.CreateIndex(table, zero)
}

// Server is a running TCP DBMS server.
type Server struct {
	inner *remotedb.Server
	addr  string
}

// Serve exposes the database over TCP at addr ("127.0.0.1:0" picks a free
// port) and returns the running server with its bound address.
func (db *DB) Serve(addr string) (*Server, error) {
	srv := remotedb.NewServer(db.engine)
	bound, err := srv.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &Server{inner: srv, addr: bound}, nil
}

// Addr returns the server's bound address.
func (s *Server) Addr() string { return s.addr }

// Close stops the server.
func (s *Server) Close() error { return s.inner.Close() }
