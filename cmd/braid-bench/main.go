// Command braid-bench runs the reproduction's evaluation suite (experiments
// E1–E19, DESIGN.md Section 5) and prints one table per experiment — the
// reproduction's analogue of the paper's deferred performance evaluation.
//
// Usage:
//
//	braid-bench                  # run every experiment
//	braid-bench E2 E5            # run selected experiments
//	braid-bench -list            # list experiments
//	braid-bench -json BENCH_PR10.json  # run E14..E19, emit machine-readable metrics
//	braid-bench -json out.json -baseline BENCH_PR10.json  # diff against a committed baseline
//	braid-bench -cpuprofile cpu.out -memprofile mem.out E12
//	braid-bench -admin 127.0.0.1:9900 E12   # watch /metrics + pprof while it runs
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/experiments"
	"repro/internal/obs"
)

var registry = []struct {
	id    string
	title string
	run   func() *experiments.Table
}{
	{"E1", "inference strategy along the I-C range", experiments.E1ICRange},
	{"E2", "caching strategies on overlapping queries", experiments.E2CachingStrategies},
	{"E3", "lazy vs eager evaluation", experiments.E3LazyVsEager},
	{"E4", "path-expression prefetching", experiments.E4Prefetching},
	{"E5", "query generalization", experiments.E5Generalization},
	{"E6", "attribute indexing", experiments.E6AttributeIndexing},
	{"E7", "advice-modified replacement", experiments.E7Replacement},
	{"E8", "parallel cache/remote subqueries", experiments.E8ParallelSubqueries},
	{"E9", "subsumption overhead", experiments.E9SubsumptionOverhead},
	{"E10", "feature ablation (Figure 2)", experiments.E10FeatureAblation},
	{"E11", "fault tolerance under an unreliable remote", experiments.E11FaultTolerance},
	{"E12", "concurrent multi-session scaling", experiments.E12ConcurrentScaling},
	{"E13", "admission control under overload", experiments.E13AdmissionControl},
	{"E14", "stream transport: first-tuple latency and pooled throughput", experiments.E14StreamTransport},
	{"E15", "mid-stream failure recovery: resumable streams", experiments.E15StreamRecovery},
	{"E16", "cost-based optimizer: pipelined joins, plan cache", experiments.E16PlannerStreaming},
	{"E17", "observability overhead: tracing/metrics on vs off vs sampled", experiments.E17Overhead},
	{"E18", "durability: write throughput by fsync policy; recovery time by log size", experiments.E18Durability},
	{"E19", "morsel-driven parallel execution: speedup vs DOP", experiments.E19ParallelExecution},
}

// benchData is the -json payload: the raw measurements of the wire-transport,
// optimizer, observability, durability, and parallelism experiments
// (BENCH_PR7.json / BENCH_PR8.json / BENCH_PR9.json / BENCH_PR10.json commit
// one run each as baseline).
type benchData struct {
	E14 *experiments.E14Data `json:"e14"`
	E15 *experiments.E15Data `json:"e15"`
	E16 *experiments.E16Data `json:"e16,omitempty"`
	E17 *experiments.E17Data `json:"e17,omitempty"`
	E18 *experiments.E18Data `json:"e18,omitempty"`
	E19 *experiments.E19Data `json:"e19,omitempty"`
}

// diffBaseline compares a fresh run against a committed baseline and returns
// regression messages. Tolerances are deliberately generous — CI machines
// vary a lot — so only a collapse (not noise) fails:
//
//   - E14 speedup/scaling ratios may not drop below 40% of baseline;
//   - E15 resume-on completion is an INVARIANT (must stay at 100%), and the
//     resume-off control must remain strictly worse (else E15 proves nothing);
//   - E16 first-tuple and ops ratios may not drop below 40% of baseline, the
//     pipelined join must stay within 5x of the streaming scan's first tuple
//     (or within the floored baseline if the baseline already exceeded it),
//     and the plan-cache hit rate >= 90% is an INVARIANT;
//   - E17 sampled-tracing p99 overhead <= 5% is an INVARIANT (with a 3x
//     allowance over a baseline that already exceeded it — overhead this
//     small sits near the scheduler noise floor on shared runners);
//   - E18 recovery correctness (every acked row replayed, exactly once) is an
//     INVARIANT, and fsync=off write throughput may not drop below 40% of
//     baseline (absolute rows/s across policies is machine noise, but the
//     no-sync arm collapsing means the WAL append path itself regressed);
//   - E19 aggregate dop-4 speedup >= 1.8x is an INVARIANT whenever the run
//     used the per-morsel service-time model (StallUS > 0) — stall overlap is
//     machine-independent, so a miss means the worker pool stopped
//     overlapping, not that the runner is slow. The dop-4 first-tuple ratio
//     must stay within max(1.2x, 2x baseline) once a baseline with E19 data
//     exists to calibrate against: the bounded exchange may not trade
//     interactivity for throughput, with headroom for scheduler noise in
//     millisecond-scale medians. Speedup ratios also get the 40% floor.
func diffBaseline(cur, base benchData) []string {
	var regressions []string
	ratio := func(name string, cur, base float64) {
		if base > 0 && cur < 0.4*base {
			regressions = append(regressions,
				fmt.Sprintf("%s collapsed: %.2f vs baseline %.2f (floor 40%%)", name, cur, base))
		}
	}
	if cur.E14 != nil && base.E14 != nil {
		ratio("E14 first-tuple speedup", cur.E14.FirstTupleSpeedup, base.E14.FirstTupleSpeedup)
		ratio("E14 pool-scaling QPS", cur.E14.PoolScalingQPS, base.E14.PoolScalingQPS)
	}
	if cur.E16 != nil && base.E16 != nil {
		ratio("E16 join first-tuple speedup", cur.E16.JoinFirstTupleSpeedup, base.E16.JoinFirstTupleSpeedup)
		ratio("E16 LIMIT-join ops cut", cur.E16.LimitJoinOpsCut, base.E16.LimitJoinOpsCut)
		ratio("E16 LIMIT-join on/off win", cur.E16.LimitJoinOpsWin, base.E16.LimitJoinOpsWin)
		// JoinVsScanFirstTuple is a "smaller is better" bound: the pipelined
		// join's first tuple must stay within 5x of the streaming scan (the
		// acceptance criterion), with the usual noise allowance relative to
		// the committed baseline.
		bound := 5.0
		if base.E16.JoinVsScanFirstTuple/0.4 > bound {
			bound = base.E16.JoinVsScanFirstTuple / 0.4
		}
		if cur.E16.JoinVsScanFirstTuple > bound {
			regressions = append(regressions,
				fmt.Sprintf("E16 join first tuple is %.1fx the streaming scan (bound %.1fx, baseline %.1fx)",
					cur.E16.JoinVsScanFirstTuple, bound, base.E16.JoinVsScanFirstTuple))
		}
		if cur.E16.PlanCacheHitRate < 0.9 {
			regressions = append(regressions,
				fmt.Sprintf("E16 plan-cache hit rate dropped to %.1f%% (must be >= 90%%)",
					100*cur.E16.PlanCacheHitRate))
		}
	}
	if cur.E17 != nil {
		// The acceptance criterion: metrics + 1%-sampled tracing must stay
		// within 5% of the uninstrumented p99. A baseline that already ran
		// hot raises the bound (3x its value) rather than failing forever.
		bound := 5.0
		if base.E17 != nil && 3*base.E17.SampledOverheadP99Pct > bound {
			bound = 3 * base.E17.SampledOverheadP99Pct
		}
		if cur.E17.SampledOverheadP99Pct > bound {
			regressions = append(regressions,
				fmt.Sprintf("E17 sampled-tracing p99 overhead %.1f%% exceeds %.1f%% (must stay <= 5%% of the uninstrumented arm)",
					cur.E17.SampledOverheadP99Pct, bound))
		}
	}
	if cur.E18 != nil {
		if !cur.E18.RecoveryCorrect {
			regressions = append(regressions,
				"E18 recovery lost or duplicated acknowledged rows (RecoveryCorrect must hold)")
		}
		if base.E18 != nil {
			var curOff, baseOff float64
			for _, a := range cur.E18.Arms {
				if a.Policy == "off" {
					curOff = a.RowsPS
				}
			}
			for _, a := range base.E18.Arms {
				if a.Policy == "off" {
					baseOff = a.RowsPS
				}
			}
			ratio("E18 fsync=off write rows/s", curOff, baseOff)
		}
	}
	if cur.E19 != nil {
		if cur.E19.StallUS > 0 && cur.E19.AggSpeedup4 < 1.8 {
			regressions = append(regressions,
				fmt.Sprintf("E19 agg dop-4 speedup %.2fx under the stall model (must be >= 1.8x)",
					cur.E19.AggSpeedup4))
		}
		if base.E19 != nil {
			bound := 1.2
			if 2*base.E19.FirstTupleRatio > bound {
				bound = 2 * base.E19.FirstTupleRatio
			}
			if cur.E19.FirstTupleRatio > bound {
				regressions = append(regressions,
					fmt.Sprintf("E19 dop-4 first tuple is %.2fx the serial join (bound %.2fx, baseline %.2fx)",
						cur.E19.FirstTupleRatio, bound, base.E19.FirstTupleRatio))
			}
		}
		if base.E19 != nil {
			ratio("E19 agg dop-4 speedup", cur.E19.AggSpeedup4, base.E19.AggSpeedup4)
			ratio("E19 scan dop-4 speedup", cur.E19.ScanSpeedup4, base.E19.ScanSpeedup4)
			ratio("E19 join dop-4 speedup", cur.E19.JoinSpeedup4, base.E19.JoinSpeedup4)
		}
		if cur.E19.ParStreams == 0 {
			regressions = append(regressions,
				"E19 ran zero parallel streams — the morsel pool never engaged")
		}
	}
	if cur.E15 != nil && base.E15 != nil {
		if cur.E15.ResumeCompletionPct < 100 {
			regressions = append(regressions,
				fmt.Sprintf("E15 resume-on completion dropped to %.0f%% (must be 100%%)", cur.E15.ResumeCompletionPct))
		}
		if cur.E15.NoResumeCompletionPct >= cur.E15.ResumeCompletionPct {
			regressions = append(regressions,
				fmt.Sprintf("E15 control arm completed %.0f%% >= resume arm %.0f%% — the kill storm is not biting",
					cur.E15.NoResumeCompletionPct, cur.E15.ResumeCompletionPct))
		}
	}
	return regressions
}

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	jsonOut := flag.String("json", "", "run E14..E19 and write their machine-readable metrics (QPS, p50/p99, first-tuple latency, completion rates, plan-cache hit rate, instrumentation overhead, durability cost, parallel speedup) to this file")
	adminAddr := flag.String("admin", "", "serve /metrics, /debug/vars and /debug/pprof/ on this address while the suite runs (empty: disabled)")
	baseline := flag.String("baseline", "", "with -json: diff the fresh run against this committed baseline and exit nonzero on a regression")
	flag.Parse()

	if *list {
		for _, e := range registry {
			fmt.Printf("%-4s %s\n", e.id, e.title)
		}
		return
	}

	// -admin exposes the Go runtime gauges and the pprof handlers while the
	// suite runs; experiment CMS instances wire their own registries (E17), so
	// this one carries process-level metrics only.
	if *adminAddr != "" {
		reg := obs.NewRegistry()
		obs.RegisterRuntime(reg)
		srv, err := obs.ServeAdmin(*adminAddr, reg, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "braid-bench: -admin: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "braid-bench: admin endpoints on http://%s\n", srv.Addr())
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "braid-bench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "braid-bench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	want := map[string]bool{}
	for _, a := range flag.Args() {
		want[strings.ToUpper(a)] = true
	}
	ran := 0

	// -json runs E14..E19 exactly once, printing their tables and persisting
	// the raw measurements; the registry loop below skips them.
	if *jsonOut != "" {
		e14, err := experiments.RunE14Bench()
		if err != nil {
			fmt.Fprintf(os.Stderr, "braid-bench: E14: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(experiments.E14Render(e14).String())
		e15, err := experiments.RunE15Bench()
		if err != nil {
			fmt.Fprintf(os.Stderr, "braid-bench: E15: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(experiments.E15Render(e15).String())
		e16, err := experiments.RunE16Bench()
		if err != nil {
			fmt.Fprintf(os.Stderr, "braid-bench: E16: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(experiments.E16Render(e16).String())
		e17, err := experiments.RunE17Bench()
		if err != nil {
			fmt.Fprintf(os.Stderr, "braid-bench: E17: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(experiments.E17Render(e17).String())
		e18, err := experiments.RunE18Bench()
		if err != nil {
			fmt.Fprintf(os.Stderr, "braid-bench: E18: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(experiments.E18Render(e18).String())
		e19, err := experiments.RunE19Bench()
		if err != nil {
			fmt.Fprintf(os.Stderr, "braid-bench: E19: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(experiments.E19Render(e19).String())
		data := benchData{E14: e14, E15: e15, E16: e16, E17: e17, E18: e18, E19: e19}
		buf, err := json.MarshalIndent(data, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "braid-bench: -json: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonOut, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "braid-bench: -json: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "braid-bench: wrote %s\n", *jsonOut)
		ran++

		if *baseline != "" {
			raw, err := os.ReadFile(*baseline)
			if err != nil {
				fmt.Fprintf(os.Stderr, "braid-bench: -baseline: %v\n", err)
				os.Exit(1)
			}
			var base benchData
			if err := json.Unmarshal(raw, &base); err != nil {
				fmt.Fprintf(os.Stderr, "braid-bench: -baseline: %v\n", err)
				os.Exit(1)
			}
			if regs := diffBaseline(data, base); len(regs) > 0 {
				for _, r := range regs {
					fmt.Fprintf(os.Stderr, "braid-bench: REGRESSION: %s\n", r)
				}
				os.Exit(2)
			}
			fmt.Fprintf(os.Stderr, "braid-bench: no regression vs %s\n", *baseline)
		}
	}

	for _, e := range registry {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		if (e.id == "E14" || e.id == "E15" || e.id == "E16" || e.id == "E17" || e.id == "E18" || e.id == "E19") && *jsonOut != "" {
			continue // already ran above
		}
		fmt.Println(e.run().String())
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "braid-bench: no experiment matched %v (use -list)\n", flag.Args())
		os.Exit(1)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "braid-bench: -memprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "braid-bench: -memprofile: %v\n", err)
			os.Exit(1)
		}
	}
}
