// Command braid-bench runs the reproduction's evaluation suite (experiments
// E1–E14, DESIGN.md Section 5) and prints one table per experiment — the
// reproduction's analogue of the paper's deferred performance evaluation.
//
// Usage:
//
//	braid-bench                  # run every experiment
//	braid-bench E2 E5            # run selected experiments
//	braid-bench -list            # list experiments
//	braid-bench -json BENCH_PR5.json   # run E14 and emit machine-readable metrics
//	braid-bench -cpuprofile cpu.out -memprofile mem.out E12
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/experiments"
)

var registry = []struct {
	id    string
	title string
	run   func() *experiments.Table
}{
	{"E1", "inference strategy along the I-C range", experiments.E1ICRange},
	{"E2", "caching strategies on overlapping queries", experiments.E2CachingStrategies},
	{"E3", "lazy vs eager evaluation", experiments.E3LazyVsEager},
	{"E4", "path-expression prefetching", experiments.E4Prefetching},
	{"E5", "query generalization", experiments.E5Generalization},
	{"E6", "attribute indexing", experiments.E6AttributeIndexing},
	{"E7", "advice-modified replacement", experiments.E7Replacement},
	{"E8", "parallel cache/remote subqueries", experiments.E8ParallelSubqueries},
	{"E9", "subsumption overhead", experiments.E9SubsumptionOverhead},
	{"E10", "feature ablation (Figure 2)", experiments.E10FeatureAblation},
	{"E11", "fault tolerance under an unreliable remote", experiments.E11FaultTolerance},
	{"E12", "concurrent multi-session scaling", experiments.E12ConcurrentScaling},
	{"E13", "admission control under overload", experiments.E13AdmissionControl},
	{"E14", "stream transport: first-tuple latency and pooled throughput", experiments.E14StreamTransport},
}

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	jsonOut := flag.String("json", "", "run E14 and write its machine-readable metrics (QPS, p50/p99, first-tuple latency, allocs) to this file")
	flag.Parse()

	if *list {
		for _, e := range registry {
			fmt.Printf("%-4s %s\n", e.id, e.title)
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "braid-bench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "braid-bench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	want := map[string]bool{}
	for _, a := range flag.Args() {
		want[strings.ToUpper(a)] = true
	}
	ran := 0

	// -json runs E14 exactly once, printing its table and persisting the raw
	// measurement; the registry loop below then skips it.
	if *jsonOut != "" {
		data, err := experiments.RunE14Bench()
		if err != nil {
			fmt.Fprintf(os.Stderr, "braid-bench: E14: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(experiments.E14Render(data).String())
		buf, err := json.MarshalIndent(data, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "braid-bench: -json: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonOut, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "braid-bench: -json: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "braid-bench: wrote %s\n", *jsonOut)
		ran++
	}

	for _, e := range registry {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		if e.id == "E14" && *jsonOut != "" {
			continue // already ran above
		}
		fmt.Println(e.run().String())
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "braid-bench: no experiment matched %v (use -list)\n", flag.Args())
		os.Exit(1)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "braid-bench: -memprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "braid-bench: -memprofile: %v\n", err)
			os.Exit(1)
		}
	}
}
