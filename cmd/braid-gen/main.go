// Command braid-gen dumps a built-in synthetic workload as a SQL script plus
// a knowledge base file, so workloads can be inspected, edited, and replayed
// through braid-server and braid-repl.
//
// Usage:
//
//	braid-gen -workload kinship -scale 150 -out family
//	  -> family.sql, family.pl
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/relation"
	"repro/internal/workload"
)

func main() {
	wl := flag.String("workload", "kinship", "workload: kinship | suppliers | chain")
	scale := flag.Int("scale", 100, "workload scale")
	seed := flag.Int64("seed", 1, "deterministic seed")
	out := flag.String("out", "", "output file prefix (default: workload name)")
	flag.Parse()

	var w *workload.Workload
	switch *wl {
	case "kinship":
		w = workload.Kinship(*seed, *scale)
	case "suppliers":
		w = workload.Suppliers(*seed, *scale)
	case "chain":
		w = workload.Chain(*seed, *scale, 32)
	default:
		log.Fatalf("unknown workload %q", *wl)
	}
	prefix := *out
	if prefix == "" {
		prefix = w.Name
	}

	var sql strings.Builder
	for _, t := range w.Tables {
		fmt.Fprintf(&sql, "CREATE TABLE %s (%s);\n", t.Name, columnDefs(t))
		for _, tu := range t.Tuples() {
			vals := make([]string, len(tu))
			for i, v := range tu {
				vals[i] = sqlLit(v)
			}
			fmt.Fprintf(&sql, "INSERT INTO %s VALUES (%s);\n", t.Name, strings.Join(vals, ", "))
		}
	}
	if err := os.WriteFile(prefix+".sql", []byte(sql.String()), 0o644); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(prefix+".pl", []byte(w.KB.String()+kbBaseDecls(w)), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s.sql (%d tables) and %s.pl (%d clauses)\n",
		prefix, len(w.Tables), prefix, w.KB.NumClauses())
	fmt.Println("suggested queries:")
	for _, q := range w.Queries {
		fmt.Printf("  %s?\n", q)
	}
}

func columnDefs(t *relation.Relation) string {
	parts := make([]string, t.Schema().Arity())
	for i := 0; i < t.Schema().Arity(); i++ {
		a := t.Schema().Attr(i)
		typ := "TEXT"
		switch a.Kind {
		case relation.KindInt:
			typ = "INT"
		case relation.KindFloat:
			typ = "FLOAT"
		case relation.KindBool:
			typ = "BOOL"
		}
		parts[i] = fmt.Sprintf("%s %s", a.Name, typ)
	}
	return strings.Join(parts, ", ")
}

func sqlLit(v relation.Value) string {
	if v.Kind() == relation.KindString {
		return "'" + strings.ReplaceAll(v.AsString(), "'", "''") + "'"
	}
	return v.String()
}

// kbBaseDecls re-emits base declarations (KB.String omits them because
// base-ness is implied by having no rules; the file must declare them).
func kbBaseDecls(w *workload.Workload) string {
	var b strings.Builder
	for _, t := range w.Tables {
		fmt.Fprintf(&b, ":- base(%s/%d).\n", t.Name, t.Schema().Arity())
	}
	return b.String()
}
