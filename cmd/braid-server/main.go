// Command braid-server runs the remote DBMS half of a BrAID deployment: it
// loads a database (a SQL script, a built-in synthetic workload, or both)
// and serves it over TCP, reproducing the paper's split of CMS/IE on a
// workstation and the DBMS on a separate database server.
//
// Usage:
//
//	braid-server -addr :7700 -load schema.sql
//	braid-server -addr :7700 -workload kinship -scale 200
//
// Clients connect with braid.WithRemote(addr) or braid-repl -remote addr.
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/remotedb"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7700", "listen address")
	load := flag.String("load", "", "SQL script to execute at startup (one statement per ; terminated line group)")
	wl := flag.String("workload", "", "built-in workload to load: kinship | suppliers | chain")
	scale := flag.Int("scale", 100, "workload scale")
	seed := flag.Int64("seed", 1, "workload seed")
	idle := flag.Duration("idle-timeout", 5*time.Minute, "drop connections idle for this long (0: never)")
	writeTimeout := flag.Duration("write-timeout", 30*time.Second, "drop connections whose peer stops reading a response (0: never)")
	queryTimeout := flag.Duration("query-timeout", 0, "abandon requests still executing after this long (0: unbounded)")
	maxInflight := flag.Int("max-inflight", 0, "max concurrently executing requests; excess is shed with an overload error (0: unbounded)")
	grace := flag.Duration("grace", 5*time.Second, "shutdown drain period for in-flight requests")
	flakyDrop := flag.Float64("flaky-drop", 0, "fault injection: per-request probability of dropping the connection")
	flakyDelayRate := flag.Float64("flaky-delay-rate", 0, "fault injection: per-request probability of a delay")
	flakyDelay := flag.Duration("flaky-delay", 100*time.Millisecond, "fault injection: delay duration")
	flakySeed := flag.Int64("flaky-seed", 1, "fault injection: deterministic seed")
	flakyStreamKill := flag.Float64("flaky-stream-kill", 0, "fault injection: per-stream probability of severing the connection mid-stream (v2 streamed results)")
	flakyStreamAfter := flag.Int("flaky-stream-after", 2, "fault injection: response frames delivered before a stream kill severs the connection")
	proto := flag.Int("proto", 0, "max wire protocol version to negotiate: 1 legacy monolithic, 2 framed streaming (0: highest supported)")
	frameTuples := flag.Int("frame-tuples", 0, "default tuples per response frame on streamed (v2) connections (0: built-in default)")
	connStreams := flag.Int("conn-streams", 0, "concurrently executing requests per framed connection (0: 1, session-serial)")
	noOpt := flag.Bool("no-optimizer", false, "disable the cost-based optimizer: every non-trivial SELECT runs through the naive materializing executor (the experiment control arm)")
	parallelism := flag.Int("parallelism", runtime.NumCPU(), "worker-pool bound for morsel-parallel query execution (1: serial only)")
	dataDir := flag.String("data-dir", "", "durable mode: WAL + checkpoint directory; mutations are logged before apply and recovered at startup (empty: in-memory only)")
	fsync := flag.String("fsync", "always", "with -data-dir: WAL sync policy — always (every acked write survives a crash), interval (sync at most once per -fsync-interval), off (OS writeback only)")
	fsyncEvery := flag.Duration("fsync-interval", 100*time.Millisecond, "with -fsync interval: maximum time between WAL syncs")
	walSegment := flag.Int64("wal-segment", 64<<20, "with -data-dir: rotate the WAL behind a checkpoint once the live segment exceeds this many bytes")
	admin := flag.String("admin", "", "admin HTTP listen address serving /metrics (Prometheus), /debug/vars (expvar), /debug/pprof/, /debug/traces (empty: disabled)")
	traceEvery := flag.Int("trace-sample", 64, "with -admin: record a trace for one in N requests (1: every request)")
	slowQueryMS := flag.Int("slow-query-ms", 0, "log queries slower than this many milliseconds as structured JSON on stderr (0: disabled)")
	flag.Parse()

	var reg *obs.Registry
	var tracer *obs.Tracer
	if *admin != "" {
		reg = obs.NewRegistry()
		obs.RegisterRuntime(reg)
		tracer = obs.NewTracer(*traceEvery, 4096)
	}

	var engine *remotedb.Engine
	if *dataDir != "" {
		pol, err := remotedb.ParseFsyncPolicy(*fsync)
		if err != nil {
			log.Fatal(err)
		}
		var rst *remotedb.RecoveryStats
		engine, rst, err = remotedb.OpenEngine(remotedb.Durability{
			Dir:          *dataDir,
			Fsync:        pol,
			FsyncEvery:   *fsyncEvery,
			SegmentBytes: *walSegment,
			Tracer:       tracer,
		})
		if err != nil {
			log.Fatalf("recovery: %v", err)
		}
		defer engine.CloseWAL()
		fmt.Printf("braid-server: durable on %s (fsync %s): recovered %d checkpoint tables + %d WAL records (gen %d, epoch %d, %d torn bytes truncated) in %v\n",
			*dataDir, pol, rst.CheckpointTables, rst.Replayed, rst.Gen, rst.Epoch, rst.TruncatedBytes, rst.WallTime)
		if reg != nil {
			registerDurabilityMetrics(reg, engine, rst)
		}
	} else {
		engine = remotedb.NewEngine()
	}
	if *noOpt {
		engine.SetOptimizer(false)
		fmt.Println("braid-server: cost-based optimizer DISABLED (-no-optimizer)")
	}
	engine.SetParallelism(*parallelism)
	if *parallelism > 1 {
		fmt.Printf("braid-server: morsel-parallel execution up to dop %d\n", *parallelism)
	}

	switch *wl {
	case "":
	case "kinship":
		for _, t := range workload.Kinship(*seed, *scale).Tables {
			engine.LoadTable(t)
		}
	case "suppliers":
		for _, t := range workload.Suppliers(*seed, *scale).Tables {
			engine.LoadTable(t)
		}
	case "chain":
		for _, t := range workload.Chain(*seed, *scale, 32).Tables {
			engine.LoadTable(t)
		}
	default:
		log.Fatalf("unknown workload %q", *wl)
	}

	if *load != "" {
		src, err := os.ReadFile(*load)
		if err != nil {
			log.Fatal(err)
		}
		for _, stmt := range strings.Split(string(src), ";") {
			stmt = strings.TrimSpace(stmt)
			if stmt == "" {
				continue
			}
			if _, _, err := engine.ExecuteSQL(stmt); err != nil {
				log.Fatalf("%s: %v", stmt, err)
			}
		}
	}

	opts := remotedb.ServerOptions{
		IdleTimeout:    *idle,
		WriteTimeout:   *writeTimeout,
		RequestTimeout: *queryTimeout,
		MaxInflight:    *maxInflight,
		MaxProto:       *proto,
		FrameTuples:    *frameTuples,
		ConnStreams:    *connStreams,
	}
	var adminSrv *obs.AdminServer
	if *admin != "" {
		engine.SetTracer(tracer)
		opts.Tracer = tracer
		opts.Metrics = reg
		var err error
		if adminSrv, err = obs.ServeAdmin(*admin, reg, tracer); err != nil {
			log.Fatal(err)
		}
		defer adminSrv.Close()
		fmt.Printf("braid-server: admin endpoints on http://%s (/metrics /debug/vars /debug/pprof/ /debug/traces)\n", adminSrv.Addr())
	}
	if *slowQueryMS > 0 {
		opts.SlowQuery = time.Duration(*slowQueryMS) * time.Millisecond
		opts.SlowLog = slog.New(slog.NewJSONHandler(os.Stderr, nil))
		fmt.Printf("braid-server: slow-query log enabled at %dms\n", *slowQueryMS)
	}
	if *maxInflight > 0 || *queryTimeout > 0 {
		fmt.Printf("braid-server: admission control (max-inflight %d, query-timeout %v)\n",
			*maxInflight, *queryTimeout)
	}
	if *flakyDrop > 0 || *flakyDelayRate > 0 || *flakyStreamKill > 0 {
		opts.Faults = &remotedb.ListenerFaults{
			Seed:            *flakySeed,
			DropRate:        *flakyDrop,
			DelayRate:       *flakyDelayRate,
			Delay:           *flakyDelay,
			StreamKillRate:  *flakyStreamKill,
			StreamKillAfter: *flakyStreamAfter,
		}
		fmt.Printf("braid-server: FLAKY mode (drop %.2f, delay %.2f x %v, stream-kill %.2f after %d frames, seed %d)\n",
			*flakyDrop, *flakyDelayRate, *flakyDelay, *flakyStreamKill, *flakyStreamAfter, *flakySeed)
	}
	srv := remotedb.NewServerWithOptions(engine, opts)
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("braid-server: serving %d tables on %s\n", len(engine.Tables()), bound)
	for _, t := range engine.Tables() {
		st, _ := engine.Stats(t)
		fmt.Printf("  %-16s %d rows\n", t, st.Rows)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	fmt.Printf("\n%v: shutting down (draining up to %v)\n", got, *grace)
	if err := srv.Shutdown(*grace); err != nil {
		log.Printf("shutdown: %v", err)
	}
	if st := srv.ServerStats(); st.Shed > 0 || st.Timeouts > 0 {
		fmt.Printf("admission: shed %d requests, timed out %d\n", st.Shed, st.Timeouts)
	}
	if st := srv.ServerStats(); st.FramesSent > 0 {
		fmt.Printf("streaming: %d frames sent, %d streams canceled\n", st.FramesSent, st.StreamsCanceled)
	}
	if st := srv.ServerStats(); st.StreamKills > 0 || st.StreamResumes > 0 {
		fmt.Printf("recovery: %d streams killed by fault injection, %d resumed from tokens\n", st.StreamKills, st.StreamResumes)
	}
}

// registerDurabilityMetrics exposes the WAL's cumulative counters and the
// boot-time recovery outcome. The WAL counters are read-through; the recovery
// stats are constants describing the last recovery pass.
func registerDurabilityMetrics(reg *obs.Registry, engine *remotedb.Engine, rst *remotedb.RecoveryStats) {
	reg.CounterFunc("braid_wal_appends_total", "WAL records appended.", func() int64 { return engine.WALStats().Appends })
	reg.CounterFunc("braid_wal_syncs_total", "WAL fsync calls issued.", func() int64 { return engine.WALStats().Syncs })
	reg.CounterFunc("braid_wal_rotations_total", "WAL segment rotations (checkpoints written).", func() int64 { return engine.WALStats().Rotations })
	reg.CounterFunc("braid_wal_bytes_total", "Bytes appended to the WAL.", func() int64 { return engine.WALStats().Bytes })
	reg.GaugeFunc("braid_engine_recovery_replayed", "WAL records replayed at the last recovery.", func() float64 { return float64(rst.Replayed) })
	reg.GaugeFunc("braid_engine_recovery_truncated_bytes", "Torn-tail bytes truncated at the last recovery.", func() float64 { return float64(rst.TruncatedBytes) })
	reg.GaugeFunc("braid_engine_recovery_wall_seconds", "Wall time of the last recovery pass.", rst.WallTime.Seconds)
	reg.GaugeFunc("braid_engine_recovery_epoch", "Catalog epoch after the last recovery.", func() float64 { return float64(rst.Epoch) })
}
