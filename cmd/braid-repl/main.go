// Command braid-repl is an interactive BrAID session: load a knowledge base,
// connect to a database (in-process SQL script or a remote braid-server),
// and ask AI queries. Meta-commands inspect the machinery the paper
// describes: generated advice, the cache model, session statistics.
//
// Usage:
//
//	braid-repl -kb family.pl -load family.sql
//	braid-repl -kb family.pl -remote 127.0.0.1:7700 -strategy conjunction
//
// At the prompt:
//
//	grandparent(X, Z)?      ask a query (all solutions)
//	.first uncle(X, Y)?     ask for the first solution only
//	.advice k1(X, Y)?       show the advice bundle for a query
//	.cache                  dump the cache model
//	.stats                  show data-layer statistics
//	.trace                  dump sampled query traces (span trees)
//	.sql SELECT * FROM t    run raw SQL (in-process, or against -remote)
//	.explain SELECT ...     show the optimizer's plan for a SELECT
//	.quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	braid "repro"
	"repro/internal/remotedb"
)

// sqlRunner executes raw SQL for the .sql and .explain meta-commands:
// against the in-process database, or — in -remote mode — over a lazily
// dialed side connection to the braid-server (the same engine the inference
// session queries, so EXPLAIN shows the plans the session's statements get).
type sqlRunner struct {
	db     *braid.DB
	remote string
	c      *remotedb.TCPClient
}

func (r *sqlRunner) exec(sql string) (string, error) {
	if r.db != nil {
		return r.db.Exec(sql)
	}
	if r.c == nil {
		// Redial: the side connection must survive server restarts the same
		// way the session's pooled transport does.
		c, err := remotedb.DialTCPOpts(r.remote, remotedb.TCPOptions{
			Costs:  remotedb.DefaultCosts(),
			Redial: true,
		})
		if err != nil {
			return "", err
		}
		r.c = c
	}
	res, err := r.c.Exec(sql)
	if err != nil {
		return "", err
	}
	if res == nil || res.Rel == nil {
		return "", nil
	}
	return res.Rel.String(), nil
}

func main() {
	kbPath := flag.String("kb", "", "knowledge base file (required)")
	load := flag.String("load", "", "SQL script for the in-process database")
	remote := flag.String("remote", "", "braid-server address (instead of -load)")
	strategy := flag.String("strategy", "interpreted", "inference strategy: interpreted | conjunction | compiled")
	comparator := flag.String("comparator", "braid", "data layer: braid | loose | exact | singlerel")
	poolSize := flag.Int("pool-size", 1, "remote connection pool size (with -remote)")
	frameTuples := flag.Int("frame-tuples", 0, "preferred tuples per response frame on the streamed protocol (0: server default)")
	proto := flag.Int("proto", 0, "max wire protocol version: 1 legacy monolithic, 2 framed streaming (0: highest supported)")
	traceEvery := flag.Int("trace-sample", 1, "record a trace for one in N queries for .trace (0: tracing off)")
	flag.Parse()

	if *kbPath == "" {
		fmt.Fprintln(os.Stderr, "braid-repl: -kb is required")
		flag.Usage()
		os.Exit(2)
	}
	kbSrc, err := os.ReadFile(*kbPath)
	if err != nil {
		log.Fatal(err)
	}
	kb, err := braid.ParseKB(string(kbSrc))
	if err != nil {
		log.Fatalf("knowledge base: %v", err)
	}

	var db *braid.DB
	opts := []braid.Option{
		braid.WithStrategy(*strategy),
		braid.WithComparator(*comparator),
		braid.WithExplanations(),
	}
	if *traceEvery > 0 {
		opts = append(opts, braid.WithTracing(*traceEvery, 1024))
	}
	if *remote != "" {
		opts = append(opts, braid.WithRemote(*remote))
		if *poolSize > 0 {
			opts = append(opts, braid.WithPool(*poolSize))
		}
		if *frameTuples > 0 {
			opts = append(opts, braid.WithFrameTuples(*frameTuples))
		}
		if *proto > 0 {
			opts = append(opts, braid.WithProto(*proto))
		}
	} else {
		db = braid.NewDB()
		if *load != "" {
			src, err := os.ReadFile(*load)
			if err != nil {
				log.Fatal(err)
			}
			for _, stmt := range strings.Split(string(src), ";") {
				stmt = strings.TrimSpace(stmt)
				if stmt == "" {
					continue
				}
				if _, err := db.Exec(stmt); err != nil {
					log.Fatalf("%s: %v", stmt, err)
				}
			}
		}
	}

	sys, err := braid.New(kb, db, opts...)
	if err != nil {
		log.Fatal(err)
	}
	runner := &sqlRunner{db: db, remote: *remote}
	fmt.Printf("braid-repl: strategy=%s comparator=%s; type queries like p(X)? or .help\n", *strategy, *comparator)

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("?- ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == ".quit" || line == ".exit":
			return
		case line == ".help":
			fmt.Println("queries: p(X, Y)?   meta: .first <q>, .why <q>, .advice <q>, .cache, .stats, .trace, .sql <stmt>, .explain <select>, .quit")
		case line == ".cache":
			if cm := sys.CacheModel(); cm != "" {
				fmt.Println(cm)
			} else {
				fmt.Println("(no cache)")
			}
		case line == ".stats":
			fmt.Println(sys.Stats())
		case line == ".trace":
			if dump := sys.TraceDump(); dump != "" {
				fmt.Print(dump)
			} else {
				fmt.Println("(no traces recorded; run with -trace-sample >= 1 and ask a query)")
			}
		case strings.HasPrefix(line, ".sql "):
			out, err := runner.exec(strings.TrimPrefix(line, ".sql "))
			if err != nil {
				fmt.Println("error:", err)
			} else if out != "" {
				fmt.Println(out)
			}
		case strings.HasPrefix(line, ".explain "):
			q := strings.TrimPrefix(line, ".explain ")
			if !strings.HasPrefix(strings.ToUpper(strings.TrimSpace(q)), "EXPLAIN") {
				q = "EXPLAIN " + q
			}
			out, err := runner.exec(q)
			if err != nil {
				fmt.Println("error:", err)
			} else if out != "" {
				fmt.Println(out)
			}
		case strings.HasPrefix(line, ".advice "):
			adv, err := sys.Advice(strings.TrimPrefix(line, ".advice "))
			if err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Print(adv)
			}
		case strings.HasPrefix(line, ".first "):
			ask(sys, strings.TrimPrefix(line, ".first "), 1)
		case strings.HasPrefix(line, ".why "):
			why(sys, strings.TrimPrefix(line, ".why "))
		case strings.HasPrefix(line, "."):
			fmt.Println("unknown meta-command; .help")
		default:
			ask(sys, line, 0)
		}
		fmt.Print("?- ")
	}
}

// why prints the first solution with its justification (answer
// justification, paper Section 4.2.1).
func why(sys *braid.System, query string) {
	ans, err := sys.Ask(query)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer ans.Close()
	row, proof, ok := ans.NextExplained()
	if !ok {
		if err := ans.Err(); err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Println("no solutions")
		}
		return
	}
	fmt.Printf("solution: %v\nbecause:\n%s", row, proof)
}

func ask(sys *braid.System, query string, limit int) {
	ans, err := sys.Ask(query)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer ans.Close()
	vars := ans.Vars()
	n := 0
	for {
		row, ok := ans.Next()
		if !ok {
			break
		}
		n++
		if len(vars) == 0 {
			fmt.Println("true")
		} else {
			parts := make([]string, 0, len(vars))
			for _, v := range vars {
				parts = append(parts, fmt.Sprintf("%s = %v", v, row[v]))
			}
			fmt.Println("  " + strings.Join(parts, ", "))
		}
		if limit > 0 && n >= limit {
			break
		}
	}
	if err := ans.Err(); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%d solution(s)\n", n)
}
