package relation

import "testing"

// Allocation benchmarks for the hot tuple paths (EXPERIMENTS.md records the
// before/after numbers). These guard the hash-keyed fast paths: Tuple.Hash64
// vs the string Key, Distinct's dedup set, and the hash-join build/probe.

func benchTuples(n, arity int) []Tuple {
	out := make([]Tuple, n)
	for i := range out {
		t := make(Tuple, arity)
		for j := range t {
			switch j % 3 {
			case 0:
				t[j] = Int(int64(i % 512))
			case 1:
				t[j] = Str("value-string")
			default:
				t[j] = Float(float64(i) / 3)
			}
		}
		out[i] = t
	}
	return out
}

// BenchmarkTupleKey measures the per-tuple cost of the legacy string map key.
func BenchmarkTupleKey(b *testing.B) {
	tuples := benchTuples(1024, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tuples[i%len(tuples)].Key()
	}
}

// BenchmarkTupleHash64 measures the allocation-free 64-bit tuple hash that
// replaces Key on the hot paths.
func BenchmarkTupleHash64(b *testing.B) {
	tuples := benchTuples(1024, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tuples[i%len(tuples)].Hash64()
	}
}

// BenchmarkDistinct deduplicates a relation with ~50% duplicates.
func BenchmarkDistinct(b *testing.B) {
	schema := NewSchema(
		Attr{Name: "a", Kind: KindInt},
		Attr{Name: "b", Kind: KindString},
		Attr{Name: "c", Kind: KindFloat})
	r := New("r", schema)
	for i := 0; i < 8192; i++ {
		r.MustAppend(Tuple{Int(int64(i % 4096)), Str("dup-payload"), Float(float64(i % 4096))})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DistinctRel(r)
	}
}

// BenchmarkHashJoin joins 8k x 8k rows on a skewed key (512 distinct values).
func BenchmarkHashJoin(b *testing.B) {
	mk := func(n int, name string) *Relation {
		r := New(name, NewSchema(
			Attr{Name: "a", Kind: KindInt},
			Attr{Name: "b", Kind: KindInt}))
		for i := 0; i < n; i++ {
			r.MustAppend(Tuple{Int(int64(i % 512)), Int(int64(i))})
		}
		return r
	}
	l, r := mk(8192, "l"), mk(8192, "r")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Count(HashJoin(l.Iter(), r.Iter(), []JoinCond{{Left: 0, Right: 0}}))
	}
}
