package relation

import "math"

// Allocation-free 64-bit hashing for tuples and values, and the small
// collision-safe containers built on it. The string Tuple.Key remains the
// human-readable/order-stable form; the hot paths (Distinct, Difference,
// hash-join build sides, attribute indexes) key their maps on Hash64 and
// verify candidates with Equal, so hash collisions cost a comparison, never
// correctness.

const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
)

func fnvByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime64
}

func fnvUint64(h uint64, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(v>>(8*i)))
	}
	return h
}

// hashInto folds the value into a running FNV-1a hash, consistent with Equal:
// numerically equal int/float values fold identically.
func (v Value) hashInto(h uint64) uint64 {
	switch v.kind {
	case KindNull:
		return fnvByte(h, 0)
	case KindBool:
		h = fnvByte(h, 1)
		if v.b {
			return fnvByte(h, 1)
		}
		return fnvByte(h, 0)
	case KindInt, KindFloat:
		h = fnvByte(h, 2)
		return fnvUint64(h, math.Float64bits(v.AsFloat()))
	default:
		h = fnvByte(h, 3)
		for i := 0; i < len(v.s); i++ {
			h = fnvByte(h, v.s[i])
		}
		return h
	}
}

// Hash64 returns a 64-bit hash of the tuple, consistent with Equal (and with
// the string Key), computed without allocating.
func (t Tuple) Hash64() uint64 {
	h := uint64(fnvOffset64)
	for _, v := range t {
		h = v.hashInto(h)
	}
	return h
}

// Hash64On returns a 64-bit hash over the given column subset.
func (t Tuple) Hash64On(cols []int) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range cols {
		h = t[c].hashInto(h)
	}
	return h
}

// equalOn reports whether t and o agree on the given (t-side, o-side) column
// pairs.
func equalOn(t Tuple, tCols []int, o Tuple, oCols []int) bool {
	for i := range tCols {
		if !t[tCols[i]].Equal(o[oCols[i]]) {
			return false
		}
	}
	return true
}

// TupleSet is a collision-safe set of tuples keyed by Hash64. Membership is
// decided by Equal, so tuples that merely collide stay distinct.
type TupleSet struct {
	buckets map[uint64][]Tuple
}

// NewTupleSet returns an empty set with capacity hint n.
func NewTupleSet(n int) *TupleSet {
	return &TupleSet{buckets: make(map[uint64][]Tuple, n)}
}

// Add inserts t and reports whether it was absent before.
func (s *TupleSet) Add(t Tuple) bool {
	h := t.Hash64()
	for _, o := range s.buckets[h] {
		if t.Equal(o) {
			return false
		}
	}
	s.buckets[h] = append(s.buckets[h], t)
	return true
}

// Contains reports membership.
func (s *TupleSet) Contains(t Tuple) bool {
	for _, o := range s.buckets[t.Hash64()] {
		if t.Equal(o) {
			return true
		}
	}
	return false
}

// tupleCounter is a collision-safe multiset counter used for bag equality.
type tupleCounter struct {
	buckets map[uint64][]tupleCount
}

type tupleCount struct {
	t Tuple
	n int
}

func newTupleCounter(n int) *tupleCounter {
	return &tupleCounter{buckets: make(map[uint64][]tupleCount, n)}
}

func (c *tupleCounter) add(t Tuple, d int) int {
	h := t.Hash64()
	bucket := c.buckets[h]
	for i := range bucket {
		if bucket[i].t.Equal(t) {
			bucket[i].n += d
			return bucket[i].n
		}
	}
	c.buckets[h] = append(bucket, tupleCount{t: t, n: d})
	return d
}

// tupleArena hands out tuple buffers carved from large shared blocks, cutting
// the per-output-tuple allocation of the join kernels to ~one allocation per
// block. Tuples returned by make escape freely: blocks are never reused.
type tupleArena struct {
	buf []Value
}

const arenaBlockValues = 4096

func (a *tupleArena) make(n int) Tuple {
	if n > arenaBlockValues {
		return make(Tuple, 0, n)
	}
	if cap(a.buf)-len(a.buf) < n {
		a.buf = make([]Value, 0, arenaBlockValues)
	}
	off := len(a.buf)
	a.buf = a.buf[:off+n]
	// Zero-length, capacity-capped view: appends fill exactly this carve-out.
	return Tuple(a.buf[off : off : off+n])
}

// concat builds the concatenation l ++ r in arena storage.
func (a *tupleArena) concat(l, r Tuple) Tuple {
	out := a.make(len(l) + len(r))
	out = append(out, l...)
	out = append(out, r...)
	return out
}
