package relation

import (
	"container/heap"
	"sort"
)

// TopN consumes the input and returns the first n tuples of its stable
// ascending sort by the given columns, holding at most n tuples in memory (a
// bounded replacement heap). The result is exactly SortBy(cols) followed by a
// prefix of length n: ties keep their encounter order, so a LIMIT fused into
// an ORDER BY produces the same tuples as sort-then-slice.
func TopN(in Iterator, cols []int, n int) []Tuple {
	if n <= 0 {
		for {
			if _, ok := in.Next(); !ok {
				break
			}
		}
		return nil
	}
	h := &topNHeap{cols: cols}
	seq := 0
	for {
		t, ok := in.Next()
		if !ok {
			break
		}
		it := topNItem{t: t, seq: seq}
		seq++
		if h.Len() < n {
			heap.Push(h, it)
			continue
		}
		// Replace the current worst kept tuple when the new one sorts before
		// it; equal keys lose (the earlier tuple wins a tie).
		if topNBefore(it, h.items[0], cols) {
			h.items[0] = it
			heap.Fix(h, 0)
		}
	}
	sort.Slice(h.items, func(i, j int) bool { return topNBefore(h.items[i], h.items[j], cols) })
	out := make([]Tuple, len(h.items))
	for i, it := range h.items {
		out[i] = it.t
	}
	return out
}

type topNItem struct {
	t   Tuple
	seq int
}

// topNBefore reports whether a precedes b in the stable ascending order by
// cols (column comparison first, encounter order breaking ties).
func topNBefore(a, b topNItem, cols []int) bool {
	for _, c := range cols {
		switch a.t[c].Compare(b.t[c]) {
		case -1:
			return true
		case 1:
			return false
		}
	}
	return a.seq < b.seq
}

// topNHeap is a max-heap on the stable order: the root is the worst kept
// tuple, the one a better newcomer evicts.
type topNHeap struct {
	items []topNItem
	cols  []int
}

func (h *topNHeap) Len() int            { return len(h.items) }
func (h *topNHeap) Less(i, j int) bool  { return topNBefore(h.items[j], h.items[i], h.cols) }
func (h *topNHeap) Swap(i, j int)       { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *topNHeap) Push(x any)          { h.items = append(h.items, x.(topNItem)) }
func (h *topNHeap) Pop() any {
	last := h.items[len(h.items)-1]
	h.items = h.items[:len(h.items)-1]
	return last
}
