package relation

// GuardIterator adds cooperative cancellation checkpoints to a generator: a
// check function runs before the first tuple and then every Every tuples, and
// a non-nil result stops the stream. Because Iterator's Next carries no error,
// the guard records the verdict for Err() — consumers that drain a guarded
// stream must check Err afterwards, so a cancellation is never mistaken for a
// silently truncated (but apparently complete) result.
//
// The checkpoint interval bounds how many tuples a canceled generator can
// still emit: after cancellation at most Every-1 further tuples are produced.
type GuardIterator struct {
	src   Iterator
	every int
	check func() error

	n   int
	err error
}

// DefaultGuardEvery is the checkpoint interval used when NewGuardIterator is
// given a non-positive one. It trades per-tuple overhead (one function call
// and a context poll) against cancellation latency.
const DefaultGuardEvery = 64

// NewGuardIterator wraps src with a cancellation checkpoint every `every`
// tuples (<= 0: DefaultGuardEvery). check is polled at each checkpoint; the
// first non-nil error ends the stream and is reported by Err.
func NewGuardIterator(src Iterator, every int, check func() error) *GuardIterator {
	if every <= 0 {
		every = DefaultGuardEvery
	}
	return &GuardIterator{src: src, every: every, check: check}
}

// Next implements Iterator with checkpointing.
func (g *GuardIterator) Next() (Tuple, bool) {
	if g.err != nil {
		return nil, false
	}
	if g.n%g.every == 0 {
		if err := g.check(); err != nil {
			g.err = err
			return nil, false
		}
	}
	g.n++
	return g.src.Next()
}

// Err returns the checkpoint error that stopped the stream, or nil if the
// stream ended naturally (or has not stopped yet).
func (g *GuardIterator) Err() error { return g.err }

// SizeHint passes through the source's hint so Drain still preallocates.
func (g *GuardIterator) SizeHint() int {
	if h, ok := g.src.(SizeHinter); ok {
		return h.SizeHint()
	}
	return 0
}
