package relation

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Null(), KindNull},
		{Int(42), KindInt},
		{Float(3.5), KindFloat},
		{Str("x"), KindString},
		{Bool(true), KindBool},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
	}
	if !Null().IsNull() || Int(0).IsNull() {
		t.Error("IsNull misbehaves")
	}
}

func TestValueEqualCrossNumeric(t *testing.T) {
	if !Int(3).Equal(Float(3.0)) {
		t.Error("Int(3) should equal Float(3.0)")
	}
	if Int(3).Equal(Float(3.5)) {
		t.Error("Int(3) should not equal Float(3.5)")
	}
	if Int(3).Equal(Str("3")) {
		t.Error("Int(3) should not equal Str(\"3\")")
	}
	if !Str("a").Equal(Str("a")) || Str("a").Equal(Str("b")) {
		t.Error("string equality broken")
	}
	if !Null().Equal(Null()) || Null().Equal(Int(0)) {
		t.Error("null equality broken")
	}
}

func TestValueCompareTotalOrder(t *testing.T) {
	ordered := []Value{Null(), Bool(false), Bool(true), Int(-5), Float(-1.5), Int(0), Float(2.5), Int(3), Str(""), Str("a"), Str("b")}
	for i := range ordered {
		for j := range ordered {
			got := ordered[i].Compare(ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestValueHashConsistentWithEqual(t *testing.T) {
	if Int(7).Hash() != Float(7).Hash() {
		t.Error("numerically equal values must hash equal")
	}
	if Int(7).Key() != Float(7).Key() {
		t.Error("numerically equal values must share Key")
	}
	if Str("7").Key() == Int(7).Key() {
		t.Error("string and int must not share Key")
	}
}

func randomValue(r *rand.Rand) Value {
	switch r.Intn(5) {
	case 0:
		return Null()
	case 1:
		return Int(int64(r.Intn(20) - 10))
	case 2:
		return Float(float64(r.Intn(20)-10) / 2)
	case 3:
		return Str(string(rune('a' + r.Intn(5))))
	default:
		return Bool(r.Intn(2) == 0)
	}
}

func TestValueCompareProperties(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		a, b, c := randomValue(r), randomValue(r), randomValue(r)
		// Antisymmetry.
		if a.Compare(b) != -b.Compare(a) {
			t.Fatalf("antisymmetry violated: %v vs %v", a, b)
		}
		// Reflexivity.
		if a.Compare(a) != 0 {
			t.Fatalf("reflexivity violated: %v", a)
		}
		// Transitivity of <=.
		if a.Compare(b) <= 0 && b.Compare(c) <= 0 && a.Compare(c) > 0 {
			t.Fatalf("transitivity violated: %v %v %v", a, b, c)
		}
		// Equal implies Compare==0 and Hash equal.
		if a.Equal(b) {
			if a.Compare(b) != 0 {
				t.Fatalf("Equal but Compare != 0: %v %v", a, b)
			}
			if a.Hash() != b.Hash() {
				t.Fatalf("Equal but Hash differs: %v %v", a, b)
			}
			if a.Key() != b.Key() {
				t.Fatalf("Equal but Key differs: %v %v", a, b)
			}
		}
	}
}

func TestParseValueRoundTrip(t *testing.T) {
	vals := []Value{Int(42), Int(-7), Float(3.25), Str("hello world"), Str("with \"quotes\""), Bool(true), Bool(false), Null()}
	for _, v := range vals {
		got, err := ParseValue(v.String())
		if err != nil {
			t.Fatalf("ParseValue(%s): %v", v, err)
		}
		if !got.Equal(v) {
			t.Errorf("round trip %s -> %v", v, got)
		}
	}
	if _, err := ParseValue("not a value"); err == nil {
		t.Error("expected error for garbage input")
	}
}

func TestParseValueQuick(t *testing.T) {
	f := func(i int64) bool {
		v, err := ParseValue(Int(i).String())
		return err == nil && v.Equal(Int(i))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(s string) bool {
		v, err := ParseValue(Str(s).String())
		return err == nil && v.Equal(Str(s))
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestCmpOpEvalNegateFlip(t *testing.T) {
	ops := []CmpOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		a, b := randomValue(r), randomValue(r)
		for _, op := range ops {
			if op.Eval(a, b) == op.Negate().Eval(a, b) {
				t.Fatalf("negate not complementary: %v %v %v", a, op, b)
			}
			if op.Eval(a, b) != op.Flip().Eval(b, a) {
				t.Fatalf("flip not symmetric: %v %v %v", a, op, b)
			}
		}
	}
}

func TestParseCmpOp(t *testing.T) {
	for _, s := range []string{"=", "==", "!=", "<>", "<", "<=", "=<", ">", ">="} {
		if _, err := ParseCmpOp(s); err != nil {
			t.Errorf("ParseCmpOp(%q): %v", s, err)
		}
	}
	if _, err := ParseCmpOp("<<"); err == nil {
		t.Error("expected error for bad operator")
	}
}
