// Package relation implements the tuple/relation substrate shared by the
// BrAID Cache Management System and the simulated remote DBMS: typed values,
// schemas, relation extensions, lazy iterators (the paper's "generators"),
// relational operators, and hash indexes.
//
// The package corresponds to the storage and query-processor substrate of
// Sections 5.1 and 5.4 of Sheth & O'Hare, "The Architecture of BrAID" (ICDE
// 1991).
package relation

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The value kinds supported by the BrAID data model. KindNull is the absence
// of a value (used for outer operations and uninitialized cells).
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed scalar. The zero Value is the null value.
// Values are small and passed by value everywhere.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	b    bool
}

// Null returns the null value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// String_ returns a string value. (Named with a trailing underscore because
// String is the Stringer method.)
func String_(v string) Value { return Value{kind: KindString, s: v} }

// Str is shorthand for String_.
func Str(v string) Value { return String_(v) }

// Bool returns a boolean value.
func Bool(v bool) Value { return Value{kind: KindBool, b: v} }

// Kind reports the dynamic kind of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the integer payload; it is only meaningful when Kind is
// KindInt.
func (v Value) AsInt() int64 { return v.i }

// AsFloat returns the numeric payload as a float64 for KindInt and KindFloat.
func (v Value) AsFloat() float64 {
	if v.kind == KindInt {
		return float64(v.i)
	}
	return v.f
}

// AsString returns the string payload; only meaningful for KindString.
func (v Value) AsString() string { return v.s }

// AsBool returns the boolean payload; only meaningful for KindBool.
func (v Value) AsBool() bool { return v.b }

// IsNumeric reports whether the value is an int or float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Equal reports whether two values are equal. Ints and floats compare
// numerically across kinds; null equals only null.
func (v Value) Equal(o Value) bool {
	if v.IsNumeric() && o.IsNumeric() {
		if v.kind == KindInt && o.kind == KindInt {
			return v.i == o.i
		}
		return v.AsFloat() == o.AsFloat()
	}
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindString:
		return v.s == o.s
	case KindBool:
		return v.b == o.b
	default:
		return false
	}
}

// Compare returns -1, 0, or +1 ordering v relative to o. The total order is:
// null < bool (false<true) < numeric < string; numerics compare numerically
// across int/float.
func (v Value) Compare(o Value) int {
	vr, or := v.rank(), o.rank()
	if vr != or {
		if vr < or {
			return -1
		}
		return 1
	}
	switch {
	case v.kind == KindNull:
		return 0
	case v.kind == KindBool:
		switch {
		case v.b == o.b:
			return 0
		case !v.b:
			return -1
		default:
			return 1
		}
	case v.IsNumeric():
		if v.kind == KindInt && o.kind == KindInt {
			switch {
			case v.i < o.i:
				return -1
			case v.i > o.i:
				return 1
			default:
				return 0
			}
		}
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	default: // string
		return strings.Compare(v.s, o.s)
	}
}

func (v Value) rank() int {
	switch v.kind {
	case KindNull:
		return 0
	case KindBool:
		return 1
	case KindInt, KindFloat:
		return 2
	default:
		return 3
	}
}

// Less reports whether v orders before o.
func (v Value) Less(o Value) bool { return v.Compare(o) < 0 }

// Hash returns a 64-bit hash of the value, consistent with Equal (numerically
// equal int/float values hash identically). It allocates nothing.
func (v Value) Hash() uint64 {
	return v.hashInto(fnvOffset64)
}

// String renders the value in CAQL literal syntax: integers and floats bare,
// strings double-quoted, booleans true/false, null as "null".
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "null"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.s)
	case KindBool:
		return strconv.FormatBool(v.b)
	default:
		return "?"
	}
}

// Key returns a string usable as a map key, consistent with Equal.
func (v Value) Key() string {
	switch v.kind {
	case KindNull:
		return "n"
	case KindBool:
		if v.b {
			return "bt"
		}
		return "bf"
	case KindInt, KindFloat:
		return "f" + strconv.FormatFloat(v.AsFloat(), 'b', -1, 64)
	default:
		return "s" + v.s
	}
}

// ParseValue parses a CAQL literal: a quoted string, an integer, a float,
// true/false, or null.
func ParseValue(s string) (Value, error) {
	switch s {
	case "null":
		return Null(), nil
	case "true":
		return Bool(true), nil
	case "false":
		return Bool(false), nil
	}
	if len(s) >= 2 && s[0] == '"' {
		u, err := strconv.Unquote(s)
		if err != nil {
			return Value{}, fmt.Errorf("relation: bad string literal %s: %w", s, err)
		}
		return Str(u), nil
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return Int(i), nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return Float(f), nil
	}
	return Value{}, fmt.Errorf("relation: cannot parse value %q", s)
}
