package relation

// Iterator produces tuples one at a time. It is the package-level realization
// of the paper's "generator": a representation of a relation that produces a
// single tuple on demand (Section 5.1), enabling lazy evaluation.
//
// Next returns the next tuple and true, or a nil tuple and false when the
// stream is exhausted. Iterators are single-consumer and not safe for
// concurrent use; Memo provides a resettable, shareable wrapper.
type Iterator interface {
	Next() (Tuple, bool)
}

// IteratorFunc adapts a function to the Iterator interface.
type IteratorFunc func() (Tuple, bool)

// Next calls f.
func (f IteratorFunc) Next() (Tuple, bool) { return f() }

// SliceIterator iterates over an in-memory tuple slice.
type SliceIterator struct {
	tuples []Tuple
	pos    int
}

// NewSliceIterator returns an iterator over the given tuples.
func NewSliceIterator(tuples []Tuple) *SliceIterator { return &SliceIterator{tuples: tuples} }

// Iter returns an iterator over the relation's extension.
func (r *Relation) Iter() Iterator { return NewSliceIterator(r.tuples) }

// Next implements Iterator.
func (s *SliceIterator) Next() (Tuple, bool) {
	if s.pos >= len(s.tuples) {
		return nil, false
	}
	t := s.tuples[s.pos]
	s.pos++
	return t, true
}

// SizeHinter is implemented by iterators that know (a lower bound on) how
// many tuples remain; Drain uses it to preallocate the output buffer.
type SizeHinter interface {
	SizeHint() int
}

// SizeHint reports the number of tuples remaining in the slice.
func (s *SliceIterator) SizeHint() int { return len(s.tuples) - s.pos }

// Drain consumes the iterator into a relation with the given name and schema.
// This is eager evaluation of a generator. When the iterator hints its size,
// the tuple buffer is allocated once.
func Drain(name string, schema *Schema, it Iterator) *Relation {
	r := New(name, schema)
	if h, ok := it.(SizeHinter); ok {
		if n := h.SizeHint(); n > 0 {
			r.tuples = make([]Tuple, 0, n)
		}
	}
	for {
		t, ok := it.Next()
		if !ok {
			return r
		}
		r.tuples = append(r.tuples, t)
	}
}

// Take consumes and returns up to n tuples from the iterator.
func Take(it Iterator, n int) []Tuple {
	var out []Tuple
	for len(out) < n {
		t, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, t)
	}
	return out
}

// Count consumes the iterator and returns the number of tuples produced.
func Count(it Iterator) int {
	n := 0
	for {
		if _, ok := it.Next(); !ok {
			return n
		}
		n++
	}
}

// Memo wraps a generator so that its output can be consumed multiple times:
// tuples are produced lazily from the source on first demand and memoized.
// This is how the CMS keeps a generator-form cache element consistent across
// repeated partial consumptions (Section 5.2's "co-existing, alternative
// representations": a single underlying production feeding several uses).
type Memo struct {
	src    Iterator
	buf    []Tuple
	closed bool
}

// NewMemo wraps src in a memoizing buffer.
func NewMemo(src Iterator) *Memo { return &Memo{src: src} }

// Produced returns how many tuples have been materialized so far.
func (m *Memo) Produced() int { return len(m.buf) }

// Exhausted reports whether the underlying source has been fully consumed.
func (m *Memo) Exhausted() bool { return m.closed }

// fill ensures at least n tuples are buffered (or the source is exhausted).
func (m *Memo) fill(n int) {
	for !m.closed && len(m.buf) < n {
		t, ok := m.src.Next()
		if !ok {
			m.closed = true
			return
		}
		m.buf = append(m.buf, t)
	}
}

// At returns the i-th tuple of the stream, producing lazily as needed.
// The boolean is false if the stream has fewer than i+1 tuples.
func (m *Memo) At(i int) (Tuple, bool) {
	m.fill(i + 1)
	if i < len(m.buf) {
		return m.buf[i], true
	}
	return nil, false
}

// Iter returns a fresh iterator reading through the memo from the start.
func (m *Memo) Iter() Iterator {
	pos := 0
	return IteratorFunc(func() (Tuple, bool) {
		t, ok := m.At(pos)
		if !ok {
			return nil, false
		}
		pos++
		return t, true
	})
}

// DrainAll forces full materialization and returns the complete tuple list.
func (m *Memo) DrainAll() []Tuple {
	m.fill(1 << 30)
	return m.buf
}

// Chain concatenates iterators in order.
func Chain(its ...Iterator) Iterator {
	i := 0
	return IteratorFunc(func() (Tuple, bool) {
		for i < len(its) {
			if t, ok := its[i].Next(); ok {
				return t, true
			}
			i++
		}
		return nil, false
	})
}

// Empty returns an iterator producing no tuples.
func Empty() Iterator {
	return IteratorFunc(func() (Tuple, bool) { return nil, false })
}
