package relation

import (
	"fmt"
)

// CmpOp is a comparison operator used in selection conditions.
type CmpOp uint8

// Comparison operators. OpEq/OpNe apply to all kinds; the orderings apply to
// any kinds under Value.Compare's total order.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String returns the CAQL spelling of the operator.
func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return "?"
	}
}

// Negate returns the complementary operator (e.g. < becomes >=).
func (op CmpOp) Negate() CmpOp {
	switch op {
	case OpEq:
		return OpNe
	case OpNe:
		return OpEq
	case OpLt:
		return OpGe
	case OpLe:
		return OpGt
	case OpGt:
		return OpLe
	default:
		return OpLt
	}
}

// Flip returns the operator with its operands swapped (e.g. a<b iff b>a).
func (op CmpOp) Flip() CmpOp {
	switch op {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	default:
		return op
	}
}

// Eval applies the operator to two values.
func (op CmpOp) Eval(a, b Value) bool {
	switch op {
	case OpEq:
		return a.Equal(b)
	case OpNe:
		return !a.Equal(b)
	}
	c := a.Compare(b)
	switch op {
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	default:
		return false
	}
}

// ParseCmpOp parses a comparison operator token.
func ParseCmpOp(s string) (CmpOp, error) {
	switch s {
	case "=", "==":
		return OpEq, nil
	case "!=", "<>", "\\=":
		return OpNe, nil
	case "<":
		return OpLt, nil
	case "<=", "=<":
		return OpLe, nil
	case ">":
		return OpGt, nil
	case ">=":
		return OpGe, nil
	default:
		return 0, fmt.Errorf("relation: unknown comparison operator %q", s)
	}
}

// Cond is a selection condition on a single tuple: either column-vs-constant
// (Right < 0) or column-vs-column (Right >= 0).
type Cond struct {
	Left  int   // column index
	Op    CmpOp //
	Right int   // column index, or -1 when comparing against Const
	Const Value // constant operand when Right < 0
}

// ColConst builds a column-vs-constant condition.
func ColConst(col int, op CmpOp, c Value) Cond {
	return Cond{Left: col, Op: op, Right: -1, Const: c}
}

// ColCol builds a column-vs-column condition.
func ColCol(l int, op CmpOp, r int) Cond {
	return Cond{Left: l, Op: op, Right: r}
}

// Eval applies the condition to a tuple.
func (c Cond) Eval(t Tuple) bool {
	if c.Right < 0 {
		return c.Op.Eval(t[c.Left], c.Const)
	}
	return c.Op.Eval(t[c.Left], t[c.Right])
}

// String renders the condition against the given schema (nil schema uses
// positional $i names).
func (c Cond) String(s *Schema) string {
	name := func(i int) string {
		if s != nil && i < s.Arity() {
			return s.Attr(i).Name
		}
		return fmt.Sprintf("$%d", i)
	}
	if c.Right < 0 {
		return fmt.Sprintf("%s %s %s", name(c.Left), c.Op, c.Const)
	}
	return fmt.Sprintf("%s %s %s", name(c.Left), c.Op, name(c.Right))
}

// EvalAll reports whether the tuple satisfies every condition.
func EvalAll(conds []Cond, t Tuple) bool {
	for _, c := range conds {
		if !c.Eval(t) {
			return false
		}
	}
	return true
}
