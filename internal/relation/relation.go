package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Relation is a named extension: a schema plus a bag of tuples. BrAID's cache
// elements in extensional form, the remote DBMS's base relations, and all
// intermediate operator results are Relations.
//
// Relations are bags by default; Distinct produces set semantics where
// required.
type Relation struct {
	Name   string
	schema *Schema
	tuples []Tuple
}

// New creates an empty relation with the given name and schema.
func New(name string, schema *Schema) *Relation {
	return &Relation{Name: name, schema: schema}
}

// FromTuples creates a relation holding the given tuples. The tuples are
// used directly (not copied); callers must not alias them afterwards.
func FromTuples(name string, schema *Schema, tuples []Tuple) *Relation {
	return &Relation{Name: name, schema: schema, tuples: tuples}
}

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.schema }

// Len returns the number of tuples (cardinality as a bag).
func (r *Relation) Len() int { return len(r.tuples) }

// Tuple returns the i-th tuple.
func (r *Relation) Tuple(i int) Tuple { return r.tuples[i] }

// Tuples returns the underlying tuple slice. Callers must treat it as
// read-only.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// Append adds a tuple after validating its arity against the schema.
func (r *Relation) Append(t Tuple) error {
	if len(t) != r.schema.Arity() {
		return fmt.Errorf("relation %s: tuple arity %d does not match schema arity %d",
			r.Name, len(t), r.schema.Arity())
	}
	r.tuples = append(r.tuples, t)
	return nil
}

// MustAppend adds a tuple and panics on arity mismatch; for use by
// generators and tests where the arity is statically known.
func (r *Relation) MustAppend(t Tuple) {
	if err := r.Append(t); err != nil {
		panic(err)
	}
}

// AppendValues constructs a tuple from the given values and appends it.
func (r *Relation) AppendValues(vs ...Value) error { return r.Append(Tuple(vs)) }

// Grow preallocates capacity for n additional tuples. Bulk loaders (wire
// decoding, stream materialization) call it once per batch so the tuple slice
// is not regrown tuple-by-tuple.
func (r *Relation) Grow(n int) {
	if n <= 0 {
		return
	}
	if free := cap(r.tuples) - len(r.tuples); free < n {
		grown := make([]Tuple, len(r.tuples), len(r.tuples)+n)
		copy(grown, r.tuples)
		r.tuples = grown
	}
}

// AppendAll bulk-appends tuples, validating each arity against the schema but
// growing the underlying slice at most once. This is the hot decode path for
// wire frames: per-tuple Append costs a bounds recheck and amortized regrowth
// per call, which AppendAll pays once per batch.
func (r *Relation) AppendAll(tuples []Tuple) error {
	arity := r.schema.Arity()
	for _, t := range tuples {
		if len(t) != arity {
			return fmt.Errorf("relation %s: tuple arity %d does not match schema arity %d",
				r.Name, len(t), arity)
		}
	}
	r.Grow(len(tuples))
	r.tuples = append(r.tuples, tuples...)
	return nil
}

// Clone returns a deep-enough copy (tuples are shared; the slice is not).
func (r *Relation) Clone() *Relation {
	return &Relation{Name: r.Name, schema: r.schema, tuples: append([]Tuple(nil), r.tuples...)}
}

// Sort orders the tuples lexicographically in place and returns r.
func (r *Relation) Sort() *Relation {
	sort.Slice(r.tuples, func(i, j int) bool { return r.tuples[i].Less(r.tuples[j]) })
	return r
}

// SortBy orders the tuples by the given columns in place and returns r.
func (r *Relation) SortBy(cols []int) *Relation {
	sort.SliceStable(r.tuples, func(i, j int) bool {
		a, b := r.tuples[i], r.tuples[j]
		for _, c := range cols {
			switch a[c].Compare(b[c]) {
			case -1:
				return true
			case 1:
				return false
			}
		}
		return false
	})
	return r
}

// EqualAsSet reports whether r and o contain the same set of tuples,
// ignoring order and duplicates. Useful for differential tests.
func (r *Relation) EqualAsSet(o *Relation) bool {
	return subsetOf(r.tuples, o.tuples) && subsetOf(o.tuples, r.tuples)
}

// EqualAsBag reports whether r and o contain the same multiset of tuples.
func (r *Relation) EqualAsBag(o *Relation) bool {
	if len(r.tuples) != len(o.tuples) {
		return false
	}
	counts := newTupleCounter(len(r.tuples))
	for _, t := range r.tuples {
		counts.add(t, 1)
	}
	for _, t := range o.tuples {
		if counts.add(t, -1) < 0 {
			return false
		}
	}
	return true
}

func subsetOf(a, b []Tuple) bool {
	keys := NewTupleSet(len(b))
	for _, t := range b {
		keys.Add(t)
	}
	for _, t := range a {
		if !keys.Contains(t) {
			return false
		}
	}
	return true
}

// SizeBytes estimates the in-memory footprint of the extension, used by the
// Cache Manager for resource accounting.
func (r *Relation) SizeBytes() int64 {
	var n int64
	for _, t := range r.tuples {
		n += 24 // slice header
		for _, v := range t {
			n += 40 // Value struct
			if v.Kind() == KindString {
				n += int64(len(v.AsString()))
			}
		}
	}
	return n
}

// String renders a small, human-readable dump (name, schema, up to 20 rows).
func (r *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s%s [%d tuples]", r.Name, r.schema, len(r.tuples))
	for i, t := range r.tuples {
		if i == 20 {
			fmt.Fprintf(&b, "\n  ... (%d more)", len(r.tuples)-20)
			break
		}
		b.WriteString("\n  ")
		b.WriteString(t.String())
	}
	return b.String()
}
