package relation

import (
	"math/rand"
	"testing"
)

func testSchemaAB() *Schema {
	return NewSchema(Attr{"a", KindInt}, Attr{"b", KindString})
}

func mkRel(t *testing.T, name string, rows ...[]any) *Relation {
	t.Helper()
	if len(rows) == 0 {
		t.Fatal("mkRel needs rows")
	}
	attrs := make([]Attr, len(rows[0]))
	for i, v := range rows[0] {
		switch v.(type) {
		case int:
			attrs[i] = Attr{string(rune('a' + i)), KindInt}
		case string:
			attrs[i] = Attr{string(rune('a' + i)), KindString}
		case float64:
			attrs[i] = Attr{string(rune('a' + i)), KindFloat}
		case bool:
			attrs[i] = Attr{string(rune('a' + i)), KindBool}
		}
	}
	r := New(name, NewSchema(attrs...))
	for _, row := range rows {
		tu := make(Tuple, len(row))
		for i, v := range row {
			switch x := v.(type) {
			case int:
				tu[i] = Int(int64(x))
			case string:
				tu[i] = Str(x)
			case float64:
				tu[i] = Float(x)
			case bool:
				tu[i] = Bool(x)
			}
		}
		r.MustAppend(tu)
	}
	return r
}

func TestSchemaBasics(t *testing.T) {
	s := testSchemaAB()
	if s.Arity() != 2 || s.ColIndex("a") != 0 || s.ColIndex("b") != 1 || s.ColIndex("z") != -1 {
		t.Fatal("schema lookup broken")
	}
	p := s.Project([]int{1})
	if p.Arity() != 1 || p.Attr(0).Name != "b" {
		t.Fatal("project broken")
	}
	r := s.Rename([]string{"x", "y"})
	if r.ColIndex("x") != 0 || r.Attr(1).Kind != KindString {
		t.Fatal("rename broken")
	}
	c := s.Concat(s)
	if c.Arity() != 4 || c.Attr(2).Name == "a" {
		t.Fatalf("concat should disambiguate, got %v", c)
	}
	if !s.Equal(testSchemaAB()) || s.Equal(p) {
		t.Fatal("Equal broken")
	}
}

func TestSchemaDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate attribute")
		}
	}()
	NewSchema(Attr{"a", KindInt}, Attr{"a", KindInt})
}

func TestSelect(t *testing.T) {
	r := mkRel(t, "r", []any{1, "x"}, []any{2, "y"}, []any{3, "x"})
	got := SelectRel(r, []Cond{ColConst(1, OpEq, Str("x"))})
	if got.Len() != 2 {
		t.Fatalf("select got %d rows, want 2", got.Len())
	}
	got = SelectRel(r, []Cond{ColConst(0, OpGt, Int(1)), ColConst(1, OpEq, Str("x"))})
	if got.Len() != 1 || got.Tuple(0)[0].AsInt() != 3 {
		t.Fatalf("conjunctive select wrong: %v", got)
	}
}

func TestSelectColCol(t *testing.T) {
	r := mkRel(t, "r", []any{1, 1}, []any{2, 3}, []any{4, 4})
	got := SelectRel(r, []Cond{ColCol(0, OpEq, 1)})
	if got.Len() != 2 {
		t.Fatalf("col=col select got %d, want 2", got.Len())
	}
}

func TestProject(t *testing.T) {
	r := mkRel(t, "r", []any{1, "x"}, []any{2, "y"})
	got := ProjectRel(r, []int{1, 0})
	if got.Schema().Attr(0).Name != "b" || got.Tuple(0)[0].AsString() != "x" || got.Tuple(1)[1].AsInt() != 2 {
		t.Fatalf("project wrong: %v", got)
	}
}

func TestDistinct(t *testing.T) {
	r := mkRel(t, "r", []any{1, "x"}, []any{1, "x"}, []any{2, "y"})
	got := DistinctRel(r)
	if got.Len() != 2 {
		t.Fatalf("distinct got %d, want 2", got.Len())
	}
}

func TestLimitLaziness(t *testing.T) {
	produced := 0
	src := IteratorFunc(func() (Tuple, bool) {
		produced++
		return Tuple{Int(int64(produced))}, true // infinite stream
	})
	out := Take(Limit(src, 3), 10)
	if len(out) != 3 {
		t.Fatalf("limit got %d, want 3", len(out))
	}
	if produced != 3 {
		t.Fatalf("limit consumed %d from source, want 3 (lazy)", produced)
	}
}

func TestSelectLaziness(t *testing.T) {
	produced := 0
	src := IteratorFunc(func() (Tuple, bool) {
		produced++
		return Tuple{Int(int64(produced))}, true
	})
	it := Select(src, []Cond{ColConst(0, OpGt, Int(2))})
	tu, ok := it.Next()
	if !ok || tu[0].AsInt() != 3 {
		t.Fatalf("select first = %v", tu)
	}
	if produced != 3 {
		t.Fatalf("select consumed %d, want 3", produced)
	}
}

func TestHashJoin(t *testing.T) {
	emp := mkRel(t, "emp", []any{1, "alice"}, []any{2, "bob"}, []any{3, "carol"})
	dept := mkRel(t, "dept", []any{1, "eng"}, []any{2, "ops"}, []any{2, "hr"})
	out := JoinRel("j", emp, dept, []JoinCond{{Left: 0, Right: 0}})
	if out.Len() != 3 {
		t.Fatalf("join got %d rows, want 3", out.Len())
	}
	for _, tu := range out.Tuples() {
		if tu[0].Compare(tu[2]) != 0 {
			t.Fatalf("join condition violated: %v", tu)
		}
	}
	if out.Schema().Arity() != 4 {
		t.Fatalf("join schema arity %d, want 4", out.Schema().Arity())
	}
}

func TestNestedLoopJoinMatchesHashJoin(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		a := New("a", NewSchema(Attr{"x", KindInt}, Attr{"y", KindInt}))
		b := New("b", NewSchema(Attr{"u", KindInt}, Attr{"v", KindInt}))
		for i := 0; i < r.Intn(20); i++ {
			a.MustAppend(Tuple{Int(int64(r.Intn(5))), Int(int64(r.Intn(5)))})
		}
		for i := 0; i < r.Intn(20); i++ {
			b.MustAppend(Tuple{Int(int64(r.Intn(5))), Int(int64(r.Intn(5)))})
		}
		schema := a.Schema().Concat(b.Schema())
		hj := Drain("hj", schema, HashJoin(a.Iter(), b.Iter(), []JoinCond{{Left: 1, Right: 0}}))
		nl := Drain("nl", schema, NestedLoopJoin(a.Iter(), b.Iter(), 2, []Cond{ColCol(1, OpEq, 2)}))
		if !hj.EqualAsBag(nl) {
			t.Fatalf("trial %d: hash join != nested loop join\n%v\n%v", trial, hj, nl)
		}
	}
}

func TestUnionDifference(t *testing.T) {
	a := mkRel(t, "a", []any{1}, []any{2})
	b := mkRel(t, "b", []any{2}, []any{3})
	u := UnionRel("u", a, b)
	if u.Len() != 4 {
		t.Fatalf("bag union got %d", u.Len())
	}
	d := Drain("d", a.Schema(), Difference(a.Iter(), b.Iter()))
	if d.Len() != 1 || d.Tuple(0)[0].AsInt() != 1 {
		t.Fatalf("difference wrong: %v", d)
	}
}

func TestSortAndEquality(t *testing.T) {
	a := mkRel(t, "a", []any{3, "c"}, []any{1, "a"}, []any{2, "b"})
	a.Sort()
	if a.Tuple(0)[0].AsInt() != 1 || a.Tuple(2)[0].AsInt() != 3 {
		t.Fatalf("sort wrong: %v", a)
	}
	b := mkRel(t, "b", []any{2, "b"}, []any{1, "a"}, []any{3, "c"})
	if !a.EqualAsSet(b) || !a.EqualAsBag(b) {
		t.Fatal("set/bag equality should hold")
	}
	c := mkRel(t, "c", []any{2, "b"}, []any{2, "b"}, []any{1, "a"}, []any{3, "c"})
	if !a.EqualAsSet(c) {
		t.Fatal("set equality should ignore duplicates")
	}
	if a.EqualAsBag(c) {
		t.Fatal("bag equality should notice duplicates")
	}
}

func TestSortBy(t *testing.T) {
	a := mkRel(t, "a", []any{1, "z"}, []any{1, "a"}, []any{0, "m"})
	a.SortBy([]int{0, 1})
	if a.Tuple(0)[1].AsString() != "m" || a.Tuple(1)[1].AsString() != "a" {
		t.Fatalf("sortby wrong: %v", a)
	}
}

func TestMemo(t *testing.T) {
	produced := 0
	src := IteratorFunc(func() (Tuple, bool) {
		if produced >= 5 {
			return nil, false
		}
		produced++
		return Tuple{Int(int64(produced))}, true
	})
	m := NewMemo(src)
	it1 := m.Iter()
	t1, _ := it1.Next()
	t2, _ := it1.Next()
	if t1[0].AsInt() != 1 || t2[0].AsInt() != 2 || produced != 2 {
		t.Fatalf("memo lazy production broken: produced=%d", produced)
	}
	// Second reader re-reads from the start without re-producing.
	it2 := m.Iter()
	u1, _ := it2.Next()
	if u1[0].AsInt() != 1 || produced != 2 {
		t.Fatalf("memo should replay buffered tuples; produced=%d", produced)
	}
	all := m.DrainAll()
	if len(all) != 5 || !m.Exhausted() {
		t.Fatalf("memo drain got %d", len(all))
	}
	if n := Count(m.Iter()); n != 5 {
		t.Fatalf("memo re-iter got %d", n)
	}
}

func TestChainAndEmpty(t *testing.T) {
	a := mkRel(t, "a", []any{1})
	b := mkRel(t, "b", []any{2})
	got := Take(Chain(a.Iter(), Empty(), b.Iter()), 10)
	if len(got) != 2 || got[1][0].AsInt() != 2 {
		t.Fatalf("chain wrong: %v", got)
	}
}

func TestAppendArityError(t *testing.T) {
	r := New("r", testSchemaAB())
	if err := r.Append(Tuple{Int(1)}); err == nil {
		t.Fatal("expected arity error")
	}
	if err := r.AppendValues(Int(1), Str("x")); err != nil {
		t.Fatalf("AppendValues: %v", err)
	}
}

// Property: select distributes over union; project commutes with select when
// the selected columns survive projection.
func TestAlgebraIdentities(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 40; trial++ {
		a := New("a", NewSchema(Attr{"x", KindInt}, Attr{"y", KindInt}))
		b := New("b", NewSchema(Attr{"x", KindInt}, Attr{"y", KindInt}))
		for i := 0; i < r.Intn(15); i++ {
			a.MustAppend(Tuple{Int(int64(r.Intn(4))), Int(int64(r.Intn(4)))})
		}
		for i := 0; i < r.Intn(15); i++ {
			b.MustAppend(Tuple{Int(int64(r.Intn(4))), Int(int64(r.Intn(4)))})
		}
		cond := []Cond{ColConst(0, OpGe, Int(int64(r.Intn(4))))}

		// sel(a ∪ b) == sel(a) ∪ sel(b)
		lhs := SelectRel(UnionRel("u", a, b), cond)
		rhs := UnionRel("u2", SelectRel(a, cond), SelectRel(b, cond))
		if !lhs.EqualAsBag(rhs) {
			t.Fatalf("selection does not distribute over union")
		}

		// proj_{x}(sel_{x cond}(a)) == sel_{x cond}(proj_{x}(a))
		p1 := ProjectRel(SelectRel(a, cond), []int{0})
		p2 := SelectRel(ProjectRel(a, []int{0}), cond)
		if !p1.EqualAsBag(p2) {
			t.Fatalf("project/select commute failed")
		}
	}
}

func TestCondString(t *testing.T) {
	s := testSchemaAB()
	c := ColConst(0, OpLt, Int(5))
	if c.String(s) != "a < 5" {
		t.Errorf("cond string = %q", c.String(s))
	}
	cc := ColCol(0, OpEq, 1)
	if cc.String(nil) != "$0 = $1" {
		t.Errorf("cond string = %q", cc.String(nil))
	}
}
