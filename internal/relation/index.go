package relation

// Index is a hash index over a column subset of a relation extension. The
// Cache Manager builds indexes on consumer-annotated attributes (advice "?"
// annotations, Section 4.2.1) to speed repeated random access, and the remote
// DBMS engine uses them for selections and join probes.
type Index struct {
	cols    []int
	buckets map[uint64][]int // tuple positions in the indexed relation, by Hash64On
	rel     *Relation
}

// BuildIndex constructs a hash index on the given columns of r. The index is
// a snapshot: it reflects r's extension at build time. Buckets are keyed by
// the 64-bit tuple hash; Lookup verifies candidates by value, so collisions
// never surface.
func BuildIndex(r *Relation, cols []int) *Index {
	ix := &Index{
		cols:    append([]int(nil), cols...),
		buckets: make(map[uint64][]int, r.Len()),
		rel:     r,
	}
	for i, t := range r.Tuples() {
		h := t.Hash64On(ix.cols)
		ix.buckets[h] = append(ix.buckets[h], i)
	}
	return ix
}

// Cols returns the indexed column positions.
func (ix *Index) Cols() []int { return append([]int(nil), ix.cols...) }

// Covers reports whether the index is built exactly on the given columns
// (order-sensitive).
func (ix *Index) Covers(cols []int) bool {
	if len(cols) != len(ix.cols) {
		return false
	}
	for i := range cols {
		if cols[i] != ix.cols[i] {
			return false
		}
	}
	return true
}

// Lookup returns the tuples whose indexed columns equal the given values.
func (ix *Index) Lookup(vals []Value) []Tuple {
	probe := Tuple(vals)
	positions := ix.buckets[probe.Hash64()]
	if len(positions) == 0 {
		return nil
	}
	all := identity(len(vals))
	out := make([]Tuple, 0, len(positions))
	for _, p := range positions {
		t := ix.rel.Tuple(p)
		if equalOn(t, ix.cols, probe, all) {
			out = append(out, t)
		}
	}
	return out
}

// LookupIter returns an iterator over matching tuples.
func (ix *Index) LookupIter(vals []Value) Iterator {
	return NewSliceIterator(ix.Lookup(vals))
}

// SizeBytes estimates the index's memory footprint for cache accounting.
func (ix *Index) SizeBytes() int64 {
	var n int64
	for _, v := range ix.buckets {
		n += 8 + int64(8*len(v)) + 48
	}
	return n
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
