package relation

import (
	"fmt"
	"strings"
)

// Attr describes one attribute (column) of a relation schema.
type Attr struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of attributes. Schemas are immutable once built;
// operations derive new schemas rather than mutating.
type Schema struct {
	attrs []Attr
	index map[string]int
}

// NewSchema builds a schema from the given attributes. Attribute names must
// be unique; NewSchema panics otherwise (schemas are constructed from code or
// validated parse trees, so a duplicate is a programming error).
func NewSchema(attrs ...Attr) *Schema {
	s := &Schema{attrs: append([]Attr(nil), attrs...), index: make(map[string]int, len(attrs))}
	for i, a := range attrs {
		if _, dup := s.index[a.Name]; dup {
			panic(fmt.Sprintf("relation: duplicate attribute %q in schema", a.Name))
		}
		s.index[a.Name] = i
	}
	return s
}

// Arity returns the number of attributes.
func (s *Schema) Arity() int { return len(s.attrs) }

// Attr returns the i-th attribute.
func (s *Schema) Attr(i int) Attr { return s.attrs[i] }

// Attrs returns a copy of the attribute list.
func (s *Schema) Attrs() []Attr { return append([]Attr(nil), s.attrs...) }

// ColIndex returns the position of the named attribute, or -1 if absent.
func (s *Schema) ColIndex(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// Has reports whether the schema contains the named attribute.
func (s *Schema) Has(name string) bool { return s.ColIndex(name) >= 0 }

// Project derives a schema holding the attributes at the given positions.
func (s *Schema) Project(cols []int) *Schema {
	attrs := make([]Attr, len(cols))
	for i, c := range cols {
		attrs[i] = s.attrs[c]
	}
	return NewSchema(attrs...)
}

// Rename derives a schema with the same kinds but new names. len(names) must
// equal the arity.
func (s *Schema) Rename(names []string) *Schema {
	if len(names) != len(s.attrs) {
		panic("relation: Rename arity mismatch")
	}
	attrs := make([]Attr, len(names))
	for i, n := range names {
		attrs[i] = Attr{Name: n, Kind: s.attrs[i].Kind}
	}
	return NewSchema(attrs...)
}

// Concat derives the schema of a cross product / join output, disambiguating
// duplicate names from the right side with a "r." prefix (and numeric
// suffixes if still ambiguous).
func (s *Schema) Concat(o *Schema) *Schema {
	attrs := make([]Attr, 0, len(s.attrs)+len(o.attrs))
	attrs = append(attrs, s.attrs...)
	seen := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		seen[a.Name] = true
	}
	for _, a := range o.attrs {
		name := a.Name
		for n := 2; seen[name]; n++ {
			name = fmt.Sprintf("%s_%d", a.Name, n)
		}
		seen[name] = true
		attrs = append(attrs, Attr{Name: name, Kind: a.Kind})
	}
	return NewSchema(attrs...)
}

// Equal reports whether two schemas have identical names and kinds in order.
func (s *Schema) Equal(o *Schema) bool {
	if len(s.attrs) != len(o.attrs) {
		return false
	}
	for i := range s.attrs {
		if s.attrs[i] != o.attrs[i] {
			return false
		}
	}
	return true
}

// String renders the schema as "(name kind, ...)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, a := range s.attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", a.Name, a.Kind)
	}
	b.WriteByte(')')
	return b.String()
}

// Tuple is a row of values, positionally aligned with a schema.
type Tuple []Value

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple { return append(Tuple(nil), t...) }

// Equal reports value-wise equality with o.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !t[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// Key returns a map key identifying the tuple's values (consistent with
// Equal).
func (t Tuple) Key() string {
	var b strings.Builder
	for _, v := range t {
		b.WriteString(v.Key())
		b.WriteByte('|')
	}
	return b.String()
}

// KeyOn returns a map key over the given column subset.
func (t Tuple) KeyOn(cols []int) string {
	var b strings.Builder
	for _, c := range cols {
		b.WriteString(t[c].Key())
		b.WriteByte('|')
	}
	return b.String()
}

// Project returns the tuple restricted to the given columns.
func (t Tuple) Project(cols []int) Tuple {
	out := make(Tuple, len(cols))
	for i, c := range cols {
		out[i] = t[c]
	}
	return out
}

// Less orders tuples lexicographically by value order.
func (t Tuple) Less(o Tuple) bool {
	n := len(t)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		switch t[i].Compare(o[i]) {
		case -1:
			return true
		case 1:
			return false
		}
	}
	return len(t) < len(o)
}

// String renders the tuple as "(v1, v2, ...)".
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}
