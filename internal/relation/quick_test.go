package relation

import (
	"testing"
	"testing/quick"
)

// Property tests via testing/quick on the core data structures.

func tupleOf(xs []int16) Tuple {
	t := make(Tuple, len(xs))
	for i, x := range xs {
		t[i] = Int(int64(x))
	}
	return t
}

func relOf(name string, rows [][2]int16) *Relation {
	r := New(name, NewSchema(Attr{Name: "a", Kind: KindInt}, Attr{Name: "b", Kind: KindInt}))
	for _, row := range rows {
		r.MustAppend(Tuple{Int(int64(row[0])), Int(int64(row[1]))})
	}
	return r
}

// Tuple keys are consistent with equality.
func TestQuickTupleKeyEquality(t *testing.T) {
	f := func(a, b []int16) bool {
		ta, tb := tupleOf(a), tupleOf(b)
		return (ta.Key() == tb.Key()) == ta.Equal(tb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Distinct is idempotent and never grows the relation.
func TestQuickDistinctIdempotent(t *testing.T) {
	f := func(rows [][2]int16) bool {
		r := relOf("r", rows)
		d1 := DistinctRel(r)
		d2 := DistinctRel(d1)
		return d1.Len() <= r.Len() && d1.EqualAsBag(d2) && d1.EqualAsSet(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Union length is the sum of the inputs (bag semantics), and set-equality is
// commutative over union.
func TestQuickUnionProperties(t *testing.T) {
	f := func(a, b [][2]int16) bool {
		ra, rb := relOf("a", a), relOf("b", b)
		u1 := UnionRel("u", ra, rb)
		u2 := UnionRel("u", rb, ra)
		return u1.Len() == ra.Len()+rb.Len() && u1.EqualAsSet(u2) && u1.EqualAsBag(u2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Sorting preserves the bag and orders the first column.
func TestQuickSortPreservesBag(t *testing.T) {
	f := func(rows [][2]int16) bool {
		r := relOf("r", rows)
		s := r.Clone().SortBy([]int{0})
		if !s.EqualAsBag(r) {
			return false
		}
		for i := 1; i < s.Len(); i++ {
			if s.Tuple(i)[0].Less(s.Tuple(i - 1)[0]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Select with complementary conditions partitions the relation.
func TestQuickSelectPartition(t *testing.T) {
	f := func(rows [][2]int16, pivot int16) bool {
		r := relOf("r", rows)
		lo := SelectRel(r, []Cond{ColConst(0, OpLt, Int(int64(pivot)))})
		hi := SelectRel(r, []Cond{ColConst(0, OpGe, Int(int64(pivot)))})
		return lo.Len()+hi.Len() == r.Len() && UnionRel("u", lo, hi).EqualAsBag(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Index lookups agree with scans for arbitrary data and keys.
func TestQuickIndexAgreesWithScan(t *testing.T) {
	f := func(rows [][2]int16, key int16) bool {
		r := relOf("r", rows)
		ix := BuildIndex(r, []int{0})
		viaIx := FromTuples("i", r.Schema(), ix.Lookup([]Value{Int(int64(key))}))
		viaScan := SelectRel(r, []Cond{ColConst(0, OpEq, Int(int64(key)))})
		return viaIx.EqualAsBag(viaScan)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
