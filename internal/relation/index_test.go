package relation

import (
	"math/rand"
	"testing"
)

func TestIndexLookup(t *testing.T) {
	r := mkRel(t, "r", []any{1, "x"}, []any{2, "y"}, []any{1, "z"})
	ix := BuildIndex(r, []int{0})
	got := ix.Lookup([]Value{Int(1)})
	if len(got) != 2 {
		t.Fatalf("index lookup got %d, want 2", len(got))
	}
	if len(ix.Lookup([]Value{Int(9)})) != 0 {
		t.Fatal("lookup of absent key should be empty")
	}
	if !ix.Covers([]int{0}) || ix.Covers([]int{1}) || ix.Covers([]int{0, 1}) {
		t.Fatal("Covers broken")
	}
}

func TestIndexMultiColumn(t *testing.T) {
	r := mkRel(t, "r", []any{1, "x"}, []any{1, "y"}, []any{2, "x"})
	ix := BuildIndex(r, []int{0, 1})
	got := ix.Lookup([]Value{Int(1), Str("x")})
	if len(got) != 1 {
		t.Fatalf("multi-col lookup got %d, want 1", len(got))
	}
}

func TestIndexAgreesWithScan(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		r := New("r", NewSchema(Attr{"x", KindInt}, Attr{"y", KindInt}))
		for i := 0; i < 50; i++ {
			r.MustAppend(Tuple{Int(int64(rng.Intn(8))), Int(int64(rng.Intn(8)))})
		}
		ix := BuildIndex(r, []int{0})
		for k := int64(0); k < 8; k++ {
			viaIndex := FromTuples("i", r.Schema(), ix.Lookup([]Value{Int(k)}))
			viaScan := SelectRel(r, []Cond{ColConst(0, OpEq, Int(k))})
			if !viaIndex.EqualAsBag(viaScan) {
				t.Fatalf("index and scan disagree for key %d", k)
			}
		}
	}
}

func TestIndexSizeAccounting(t *testing.T) {
	r := mkRel(t, "r", []any{1, "x"}, []any{2, "y"})
	ix := BuildIndex(r, []int{0})
	if ix.SizeBytes() <= 0 {
		t.Fatal("index size should be positive")
	}
	if r.SizeBytes() <= 0 {
		t.Fatal("relation size should be positive")
	}
}
