package relation

import (
	"testing"
)

func TestAggregateGlobal(t *testing.T) {
	r := mkRel(t, "r", []any{1, 10}, []any{2, 20}, []any{3, 30})
	out := AggregateRel("a", r, nil, []AggSpec{
		{Op: AggCount, Col: -1},
		{Op: AggSum, Col: 1},
		{Op: AggMin, Col: 1},
		{Op: AggMax, Col: 1},
		{Op: AggAvg, Col: 1},
	})
	if out.Len() != 1 {
		t.Fatalf("global aggregate rows = %d", out.Len())
	}
	row := out.Tuple(0)
	if row[0].AsInt() != 3 || row[1].AsFloat() != 60 || row[2].AsInt() != 10 || row[3].AsInt() != 30 || row[4].AsFloat() != 20 {
		t.Fatalf("aggregate row wrong: %v", row)
	}
}

func TestAggregateGroupBy(t *testing.T) {
	r := mkRel(t, "r", []any{1, 10}, []any{1, 30}, []any{2, 5})
	out := AggregateRel("a", r, []int{0}, []AggSpec{{Op: AggSum, Col: 1}, {Op: AggCount, Col: -1}})
	if out.Len() != 2 {
		t.Fatalf("grouped rows = %d", out.Len())
	}
	byKey := map[int64]Tuple{}
	for _, tu := range out.Tuples() {
		byKey[tu[0].AsInt()] = tu
	}
	if byKey[1][1].AsFloat() != 40 || byKey[1][2].AsInt() != 2 {
		t.Fatalf("group 1 wrong: %v", byKey[1])
	}
	if byKey[2][1].AsFloat() != 5 || byKey[2][2].AsInt() != 1 {
		t.Fatalf("group 2 wrong: %v", byKey[2])
	}
}

func TestAggregateEmptyInput(t *testing.T) {
	r := New("r", NewSchema(Attr{"x", KindInt}))
	global := AggregateRel("a", r, nil, []AggSpec{{Op: AggCount, Col: -1}, {Op: AggMin, Col: 0}})
	if global.Len() != 1 || global.Tuple(0)[0].AsInt() != 0 || !global.Tuple(0)[1].IsNull() {
		t.Fatalf("empty global aggregate wrong: %v", global)
	}
	grouped := AggregateRel("a", r, []int{0}, []AggSpec{{Op: AggCount, Col: -1}})
	if grouped.Len() != 0 {
		t.Fatalf("empty grouped aggregate should have no rows, got %d", grouped.Len())
	}
}

func TestAggregateMinMaxStrings(t *testing.T) {
	r := mkRel(t, "r", []any{"b"}, []any{"a"}, []any{"c"})
	out := AggregateRel("a", r, nil, []AggSpec{{Op: AggMin, Col: 0}, {Op: AggMax, Col: 0}})
	row := out.Tuple(0)
	if row[0].AsString() != "a" || row[1].AsString() != "c" {
		t.Fatalf("string min/max wrong: %v", row)
	}
}

func TestParseAggOp(t *testing.T) {
	for _, s := range []string{"COUNT", "SUM", "MIN", "MAX", "AVG", "count", "avg"} {
		if _, err := ParseAggOp(s); err != nil {
			t.Errorf("ParseAggOp(%q): %v", s, err)
		}
	}
	if _, err := ParseAggOp("MEDIAN"); err == nil {
		t.Error("expected error for unsupported aggregate")
	}
}
