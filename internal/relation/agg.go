package relation

import "fmt"

// AggOp is an aggregation operator. CAQL exposes these through its
// second-order AGG predicate (Section 5, feature (a)); the remote DBMS's SQL
// subset supports them in SELECT lists.
type AggOp uint8

// Aggregation operators.
const (
	AggCount AggOp = iota
	AggSum
	AggMin
	AggMax
	AggAvg
)

// String returns the SQL spelling of the aggregate.
func (a AggOp) String() string {
	switch a {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggAvg:
		return "AVG"
	default:
		return "AGG?"
	}
}

// ParseAggOp parses an aggregate name (case-sensitive upper).
func ParseAggOp(s string) (AggOp, error) {
	switch s {
	case "COUNT", "count":
		return AggCount, nil
	case "SUM", "sum":
		return AggSum, nil
	case "MIN", "min":
		return AggMin, nil
	case "MAX", "max":
		return AggMax, nil
	case "AVG", "avg":
		return AggAvg, nil
	default:
		return 0, fmt.Errorf("relation: unknown aggregate %q", s)
	}
}

// AggSpec describes one aggregate output: the operator and its input column
// (ignored for COUNT, where Col may be -1).
type AggSpec struct {
	Op  AggOp
	Col int
}

type aggState struct {
	count int64
	sum   float64
	min   Value
	max   Value
	any   bool
}

func (st *aggState) add(v Value) {
	st.count++
	if v.IsNumeric() {
		st.sum += v.AsFloat()
	}
	if !st.any {
		st.min, st.max, st.any = v, v, true
		return
	}
	if v.Less(st.min) {
		st.min = v
	}
	if st.max.Less(v) {
		st.max = v
	}
}

// merge folds another partial state into st. Every supported aggregate is
// decomposable: COUNT and SUM add, MIN/MAX fold, and AVG is carried as
// (sum, count) until result() divides — so partials computed over disjoint
// input partitions merge into exactly the state a single pass would build.
func (st *aggState) merge(o aggState) {
	st.count += o.count
	st.sum += o.sum
	if !o.any {
		return
	}
	if !st.any {
		st.min, st.max, st.any = o.min, o.max, true
		return
	}
	if o.min.Less(st.min) {
		st.min = o.min
	}
	if st.max.Less(o.max) {
		st.max = o.max
	}
}

func (st *aggState) result(op AggOp) Value {
	switch op {
	case AggCount:
		return Int(st.count)
	case AggSum:
		return Float(st.sum)
	case AggAvg:
		if st.count == 0 {
			return Null()
		}
		return Float(st.sum / float64(st.count))
	case AggMin:
		if !st.any {
			return Null()
		}
		return st.min
	case AggMax:
		if !st.any {
			return Null()
		}
		return st.max
	default:
		return Null()
	}
}

// aggGroup is one group's key and per-spec running states.
type aggGroup struct {
	key    Tuple
	states []aggState
}

// AggAccum is a grouped-aggregation accumulator that supports merging:
// partial accumulators built over disjoint slices of the input (one per
// parallel worker, say) Merge into exactly the accumulator a single
// sequential pass would have produced, because every supported aggregate is
// decomposable (COUNT/SUM add, MIN/MAX fold, AVG carries sum+count).
// Group emission order is first-seen order: Add order within an accumulator,
// then Merge order across accumulators. Not safe for concurrent use; build
// one per worker and merge on a single goroutine.
type AggAccum struct {
	groupBy []int
	specs   []AggSpec
	groups  map[string]*aggGroup
	order   []string
}

// NewAggAccum returns an empty accumulator for the given grouping columns
// and aggregate specs.
func NewAggAccum(groupBy []int, specs []AggSpec) *AggAccum {
	return &AggAccum{groupBy: groupBy, specs: specs, groups: make(map[string]*aggGroup)}
}

// Add folds one input tuple into its group.
func (a *AggAccum) Add(t Tuple) {
	k := t.KeyOn(a.groupBy)
	g := a.groups[k]
	if g == nil {
		g = &aggGroup{key: t.Project(a.groupBy), states: make([]aggState, len(a.specs))}
		a.groups[k] = g
		a.order = append(a.order, k)
	}
	for i, spec := range a.specs {
		if spec.Op == AggCount && spec.Col < 0 {
			g.states[i].count++
			continue
		}
		g.states[i].add(t[spec.Col])
	}
}

// Merge folds another accumulator (built with the same groupBy/specs) into
// this one. Groups unseen here keep o's key tuple and append in o's order.
func (a *AggAccum) Merge(o *AggAccum) {
	for _, k := range o.order {
		og := o.groups[k]
		g := a.groups[k]
		if g == nil {
			g = &aggGroup{key: og.key, states: make([]aggState, len(a.specs))}
			a.groups[k] = g
			a.order = append(a.order, k)
		}
		for i := range a.specs {
			g.states[i].merge(og.states[i])
		}
	}
}

// Emit renders the group rows: group-by values followed by aggregate results
// in specification order. With no groupBy columns a single output tuple is
// produced even over empty input, matching SQL.
func (a *AggAccum) Emit() []Tuple {
	if len(a.groupBy) == 0 && len(a.groups) == 0 {
		// Global aggregate over empty input still yields one row.
		a.groups[""] = &aggGroup{key: Tuple{}, states: make([]aggState, len(a.specs))}
		a.order = append(a.order, "")
	}
	out := make([]Tuple, 0, len(a.order))
	for _, k := range a.order {
		g := a.groups[k]
		row := make(Tuple, 0, len(a.groupBy)+len(a.specs))
		row = append(row, g.key...)
		for i, spec := range a.specs {
			row = append(row, g.states[i].result(spec.Op))
		}
		out = append(out, row)
	}
	return out
}

// Aggregate groups the input by the groupBy columns and computes the given
// aggregates for each group. The output tuples are group-by values followed
// by aggregate results, in specification order. With no groupBy columns a
// single output tuple is produced (even over empty input, matching SQL).
//
// Aggregation is a blocking operator: the input is drained eagerly.
func Aggregate(in Iterator, groupBy []int, specs []AggSpec) []Tuple {
	acc := NewAggAccum(groupBy, specs)
	for {
		t, ok := in.Next()
		if !ok {
			break
		}
		acc.Add(t)
	}
	return acc.Emit()
}

// AggregateRel is the eager relation-level wrapper around Aggregate. Output
// attribute names are the group-by attribute names followed by "op_col"
// names.
func AggregateRel(name string, r *Relation, groupBy []int, specs []AggSpec) *Relation {
	attrs := make([]Attr, 0, len(groupBy)+len(specs))
	for _, c := range groupBy {
		attrs = append(attrs, r.schema.Attr(c))
	}
	for _, s := range specs {
		kind := KindFloat
		colName := "*"
		if s.Op == AggCount {
			kind = KindInt
		}
		if s.Col >= 0 {
			colName = r.schema.Attr(s.Col).Name
			if s.Op == AggMin || s.Op == AggMax {
				kind = r.schema.Attr(s.Col).Kind
			}
		}
		attrs = append(attrs, Attr{Name: fmt.Sprintf("%s_%s", s.Op, colName), Kind: kind})
	}
	tuples := Aggregate(r.Iter(), groupBy, specs)
	return FromTuples(name, NewSchema(attrs...), tuples)
}
