package relation

import "fmt"

// AggOp is an aggregation operator. CAQL exposes these through its
// second-order AGG predicate (Section 5, feature (a)); the remote DBMS's SQL
// subset supports them in SELECT lists.
type AggOp uint8

// Aggregation operators.
const (
	AggCount AggOp = iota
	AggSum
	AggMin
	AggMax
	AggAvg
)

// String returns the SQL spelling of the aggregate.
func (a AggOp) String() string {
	switch a {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggAvg:
		return "AVG"
	default:
		return "AGG?"
	}
}

// ParseAggOp parses an aggregate name (case-sensitive upper).
func ParseAggOp(s string) (AggOp, error) {
	switch s {
	case "COUNT", "count":
		return AggCount, nil
	case "SUM", "sum":
		return AggSum, nil
	case "MIN", "min":
		return AggMin, nil
	case "MAX", "max":
		return AggMax, nil
	case "AVG", "avg":
		return AggAvg, nil
	default:
		return 0, fmt.Errorf("relation: unknown aggregate %q", s)
	}
}

// AggSpec describes one aggregate output: the operator and its input column
// (ignored for COUNT, where Col may be -1).
type AggSpec struct {
	Op  AggOp
	Col int
}

type aggState struct {
	count int64
	sum   float64
	min   Value
	max   Value
	any   bool
}

func (st *aggState) add(v Value) {
	st.count++
	if v.IsNumeric() {
		st.sum += v.AsFloat()
	}
	if !st.any {
		st.min, st.max, st.any = v, v, true
		return
	}
	if v.Less(st.min) {
		st.min = v
	}
	if st.max.Less(v) {
		st.max = v
	}
}

func (st *aggState) result(op AggOp) Value {
	switch op {
	case AggCount:
		return Int(st.count)
	case AggSum:
		return Float(st.sum)
	case AggAvg:
		if st.count == 0 {
			return Null()
		}
		return Float(st.sum / float64(st.count))
	case AggMin:
		if !st.any {
			return Null()
		}
		return st.min
	case AggMax:
		if !st.any {
			return Null()
		}
		return st.max
	default:
		return Null()
	}
}

// Aggregate groups the input by the groupBy columns and computes the given
// aggregates for each group. The output tuples are group-by values followed
// by aggregate results, in specification order. With no groupBy columns a
// single output tuple is produced (even over empty input, matching SQL).
//
// Aggregation is a blocking operator: the input is drained eagerly.
func Aggregate(in Iterator, groupBy []int, specs []AggSpec) []Tuple {
	type group struct {
		key    Tuple
		states []aggState
	}
	groups := make(map[string]*group)
	var order []string
	for {
		t, ok := in.Next()
		if !ok {
			break
		}
		k := t.KeyOn(groupBy)
		g := groups[k]
		if g == nil {
			g = &group{key: t.Project(groupBy), states: make([]aggState, len(specs))}
			groups[k] = g
			order = append(order, k)
		}
		for i, spec := range specs {
			if spec.Op == AggCount && spec.Col < 0 {
				g.states[i].count++
				continue
			}
			g.states[i].add(t[spec.Col])
		}
	}
	if len(groupBy) == 0 && len(groups) == 0 {
		// Global aggregate over empty input still yields one row.
		g := &group{key: Tuple{}, states: make([]aggState, len(specs))}
		groups[""] = g
		order = append(order, "")
	}
	out := make([]Tuple, 0, len(order))
	for _, k := range order {
		g := groups[k]
		row := make(Tuple, 0, len(groupBy)+len(specs))
		row = append(row, g.key...)
		for i, spec := range specs {
			row = append(row, g.states[i].result(spec.Op))
		}
		out = append(out, row)
	}
	return out
}

// AggregateRel is the eager relation-level wrapper around Aggregate. Output
// attribute names are the group-by attribute names followed by "op_col"
// names.
func AggregateRel(name string, r *Relation, groupBy []int, specs []AggSpec) *Relation {
	attrs := make([]Attr, 0, len(groupBy)+len(specs))
	for _, c := range groupBy {
		attrs = append(attrs, r.schema.Attr(c))
	}
	for _, s := range specs {
		kind := KindFloat
		colName := "*"
		if s.Op == AggCount {
			kind = KindInt
		}
		if s.Col >= 0 {
			colName = r.schema.Attr(s.Col).Name
			if s.Op == AggMin || s.Op == AggMax {
				kind = r.schema.Attr(s.Col).Kind
			}
		}
		attrs = append(attrs, Attr{Name: fmt.Sprintf("%s_%s", s.Op, colName), Kind: kind})
	}
	tuples := Aggregate(r.Iter(), groupBy, specs)
	return FromTuples(name, NewSchema(attrs...), tuples)
}
