package relation

// Partitioned hash-join build for parallel executors. The classic HashJoin
// builds one map on the calling goroutine; at higher degrees of parallelism
// the build becomes the serial fraction. PartitionedTable splits the build
// side by join-key hash into P partitions whose per-partition tables can be
// built by P goroutines with no shared state — each BuildPart touches only
// its own partition — and is strictly read-only afterwards, so any number of
// workers probe concurrently without a lock. Probe iterators carry their own
// tupleArena, preserving the per-consumer allocation discipline of HashJoin.

// hashedTuple stages a build-side tuple with its join-key hash so the
// partitioning pass hashes exactly once.
type hashedTuple struct {
	h uint64
	t Tuple
}

// PartitionedTable is a hash-partitioned equi-join build table.
//
// Lifecycle: Add every build-side tuple (single goroutine), then BuildPart
// for every partition index (one call per partition, calls may run on
// different goroutines), then Probe freely from any number of goroutines.
type PartitionedTable struct {
	leftCols  []int // probe-side join columns
	rightCols []int // build-side join columns
	staged    [][]hashedTuple
	tables    []map[uint64][]Tuple
	rows      int
}

// NewPartitionedTable returns an empty build table with `parts` partitions
// (<= 0 is clamped to 1) for the given equi-join conditions.
func NewPartitionedTable(conds []JoinCond, parts int) *PartitionedTable {
	if parts < 1 {
		parts = 1
	}
	pt := &PartitionedTable{
		leftCols:  make([]int, len(conds)),
		rightCols: make([]int, len(conds)),
		staged:    make([][]hashedTuple, parts),
		tables:    make([]map[uint64][]Tuple, parts),
	}
	for i, c := range conds {
		pt.leftCols[i] = c.Left
		pt.rightCols[i] = c.Right
	}
	return pt
}

// Add stages one build-side tuple into its hash partition. Not safe for
// concurrent use; the build side is drained by a single goroutine.
func (pt *PartitionedTable) Add(t Tuple) {
	h := t.Hash64On(pt.rightCols)
	p := int(h % uint64(len(pt.staged)))
	pt.staged[p] = append(pt.staged[p], hashedTuple{h: h, t: t})
	pt.rows++
}

// Parts returns the partition count.
func (pt *PartitionedTable) Parts() int { return len(pt.staged) }

// Rows returns the number of staged build-side tuples.
func (pt *PartitionedTable) Rows() int { return pt.rows }

// BuildPart constructs partition i's hash table. Distinct partitions share
// nothing, so BuildPart(0..Parts-1) may run concurrently — but each index
// must be built exactly once, and all of them before any Probe.
func (pt *PartitionedTable) BuildPart(i int) {
	staged := pt.staged[i]
	m := make(map[uint64][]Tuple, len(staged))
	for _, ht := range staged {
		m[ht.h] = append(m[ht.h], ht.t)
	}
	pt.tables[i] = m
	pt.staged[i] = nil // the staging buffer is dead weight once the map exists
}

// Probe returns a streaming probe iterator over left: for each probe tuple
// it emits one concatenated output per build tuple agreeing on the join
// columns (bucket membership is verified with Equal, so hash collisions cost
// a comparison, never correctness). The table must be fully built; probe
// iterators are independent and safe to run on concurrent goroutines, each
// allocating outputs from its own arena.
func (pt *PartitionedTable) Probe(left Iterator) Iterator {
	parts := uint64(len(pt.tables))
	var (
		arena   tupleArena
		cur     Tuple
		matches []Tuple
		idx     int
	)
	return IteratorFunc(func() (Tuple, bool) {
		for {
			for idx < len(matches) {
				r := matches[idx]
				idx++
				if equalOn(cur, pt.leftCols, r, pt.rightCols) {
					return arena.concat(cur, r), true
				}
			}
			t, ok := left.Next()
			if !ok {
				return nil, false
			}
			cur = t
			h := t.Hash64On(pt.leftCols)
			matches = pt.tables[h%parts][h]
			idx = 0
		}
	})
}
