package relation

// Relational operators. Every operator has a lazy form over Iterators (used
// by the CMS for generator-based lazy evaluation) and, where convenient, an
// eager convenience wrapper over Relations. The lazy forms never consume more
// of their inputs than needed to produce the demanded output tuples, except
// where the operator is inherently blocking (hash join build side, sort,
// difference, aggregation).

// Select lazily filters the input by the given conditions.
func Select(in Iterator, conds []Cond) Iterator {
	if len(conds) == 0 {
		return in
	}
	return IteratorFunc(func() (Tuple, bool) {
		for {
			t, ok := in.Next()
			if !ok {
				return nil, false
			}
			if EvalAll(conds, t) {
				return t, true
			}
		}
	})
}

// SelectRel eagerly filters a relation.
func SelectRel(r *Relation, conds []Cond) *Relation {
	return Drain(r.Name, r.schema, Select(r.Iter(), conds))
}

// Project lazily projects each tuple onto the given columns.
func Project(in Iterator, cols []int) Iterator {
	return IteratorFunc(func() (Tuple, bool) {
		t, ok := in.Next()
		if !ok {
			return nil, false
		}
		return t.Project(cols), true
	})
}

// ProjectRel eagerly projects a relation, deriving the output schema.
func ProjectRel(r *Relation, cols []int) *Relation {
	return Drain(r.Name, r.schema.Project(cols), Project(r.Iter(), cols))
}

// Distinct lazily removes duplicate tuples (set semantics). It buffers seen
// tuples (hash-keyed, collision-safe) but streams output tuples as they are
// first seen.
func Distinct(in Iterator) Iterator {
	seen := NewTupleSet(0)
	return IteratorFunc(func() (Tuple, bool) {
		for {
			t, ok := in.Next()
			if !ok {
				return nil, false
			}
			if seen.Add(t) {
				return t, true
			}
		}
	})
}

// DistinctRel eagerly deduplicates a relation.
func DistinctRel(r *Relation) *Relation {
	return Drain(r.Name, r.schema, Distinct(r.Iter()))
}

// Limit lazily truncates the input to at most n tuples.
func Limit(in Iterator, n int) Iterator {
	count := 0
	return IteratorFunc(func() (Tuple, bool) {
		if count >= n {
			return nil, false
		}
		t, ok := in.Next()
		if !ok {
			return nil, false
		}
		count++
		return t, true
	})
}

// Union lazily concatenates two inputs (bag union).
func Union(a, b Iterator) Iterator { return Chain(a, b) }

// UnionRel eagerly computes the bag union of relations with equal arity.
func UnionRel(name string, rs ...*Relation) *Relation {
	if len(rs) == 0 {
		return New(name, NewSchema())
	}
	out := New(name, rs[0].schema)
	for _, r := range rs {
		out.tuples = append(out.tuples, r.tuples...)
	}
	return out
}

// Difference returns tuples of a not present in b (set difference). The b
// side is drained eagerly to build the filter.
func Difference(a, b Iterator) Iterator {
	keys := NewTupleSet(0)
	for {
		t, ok := b.Next()
		if !ok {
			break
		}
		keys.Add(t)
	}
	return IteratorFunc(func() (Tuple, bool) {
		for {
			t, ok := a.Next()
			if !ok {
				return nil, false
			}
			if !keys.Contains(t) {
				return t, true
			}
		}
	})
}

// JoinCond describes an equi-join condition: left column i equals right
// column j.
type JoinCond struct {
	Left, Right int
}

// HashJoin performs an equi-join of two inputs. The right input is drained
// eagerly into a hash table (build side, 64-bit-hash keyed with equality
// verification on probe); the left side streams (probe side), so the join is
// lazy in its left input. Output tuples are the concatenation left ++ right,
// allocated from a shared arena.
func HashJoin(left, right Iterator, conds []JoinCond) Iterator {
	rightCols := make([]int, len(conds))
	leftCols := make([]int, len(conds))
	for i, c := range conds {
		leftCols[i] = c.Left
		rightCols[i] = c.Right
	}
	table := make(map[uint64][]Tuple)
	for {
		t, ok := right.Next()
		if !ok {
			break
		}
		h := t.Hash64On(rightCols)
		table[h] = append(table[h], t)
	}
	var (
		arena   tupleArena
		cur     Tuple
		matches []Tuple
		idx     int
	)
	return IteratorFunc(func() (Tuple, bool) {
		for {
			for idx < len(matches) {
				r := matches[idx]
				idx++
				// Verify the join columns: bucket membership only means the
				// hashes collided.
				if equalOn(cur, leftCols, r, rightCols) {
					return arena.concat(cur, r), true
				}
			}
			t, ok := left.Next()
			if !ok {
				return nil, false
			}
			cur = t
			matches = table[t.Hash64On(leftCols)]
			idx = 0
		}
	})
}

// NestedLoopJoin performs a theta-join with arbitrary conditions evaluated
// over the concatenated tuple (left columns first, then right, with right
// column indexes offset by the left arity). The right input is drained
// eagerly; the left side streams.
func NestedLoopJoin(left, right Iterator, leftArity int, conds []Cond) Iterator {
	var rights []Tuple
	for {
		t, ok := right.Next()
		if !ok {
			break
		}
		rights = append(rights, t)
	}
	var (
		arena tupleArena
		cur   Tuple
		idx   int
		// scratch is the reusable concatenation buffer conditions are
		// evaluated against; only accepted tuples graduate to arena storage.
		scratch Tuple
	)
	haveCur := false
	return IteratorFunc(func() (Tuple, bool) {
		for {
			if haveCur {
				for idx < len(rights) {
					r := rights[idx]
					idx++
					scratch = append(scratch[:0], cur...)
					scratch = append(scratch, r...)
					if EvalAll(conds, scratch) {
						out := arena.make(len(scratch))
						out = append(out, scratch...)
						return out, true
					}
				}
				haveCur = false
			}
			t, ok := left.Next()
			if !ok {
				return nil, false
			}
			cur = t
			idx = 0
			haveCur = true
		}
	})
}

// JoinRel eagerly equi-joins two relations, producing a concatenated schema.
func JoinRel(name string, a, b *Relation, conds []JoinCond) *Relation {
	schema := a.schema.Concat(b.schema)
	return Drain(name, schema, HashJoin(a.Iter(), b.Iter(), conds))
}

// CrossRel eagerly computes the cross product.
func CrossRel(name string, a, b *Relation) *Relation {
	schema := a.schema.Concat(b.schema)
	return Drain(name, schema, NestedLoopJoin(a.Iter(), b.Iter(), a.schema.Arity(), nil))
}

// Rename returns a renamed shallow view of the relation.
func Rename(r *Relation, name string, attrNames []string) *Relation {
	return &Relation{Name: name, schema: r.schema.Rename(attrNames), tuples: r.tuples}
}
