package subsume

import (
	"fmt"

	"repro/internal/caql"
	"repro/internal/relation"
)

// Derivation is a complete plan for computing a query Q from a single cache
// element's extension: residual selections (in the candidate) followed by a
// projection/expansion onto Q's head positions. This is the "result can be
// produced entirely from the cache" case, which also enables lazy evaluation
// (Section 5.1: lazy evaluation is possible only when all required data is
// in the cache).
type Derivation struct {
	Candidate *Candidate
	// OutCols maps each Q head position to an ext(E) column, or -1 when the
	// position is a constant held in Consts.
	OutCols []int
	Consts  []relation.Value
	// Empty marks a statically-empty query (a false constant comparison):
	// Apply returns no tuples regardless of the extension.
	Empty bool
}

// DeriveFull attempts a whole-query derivation of q from element e. It
// returns false when e cannot, by itself, produce q's full result.
func DeriveFull(e, q *caql.Query) (*Derivation, bool) {
	// Statically-false constant comparisons make q empty; any element
	// trivially derives it.
	empty := false
	for _, c := range q.Cmps {
		if c.Args[0].IsConst() && c.Args[1].IsConst() && !c.CmpOp().Eval(c.Args[0].Const, c.Args[1].Const) {
			empty = true
		}
	}

	needed := make(map[string]bool)
	for _, t := range q.Head.Args {
		if t.IsVar() {
			needed[t.Var] = true
		}
	}
	for _, cand := range Match(e, q, needed) {
		if !cand.CoversAll(len(q.Rels)) {
			continue
		}
		// Every non-static comparison must be accounted for.
		handled := make(map[int]bool)
		for _, ci := range cand.CoveredCmps {
			handled[ci] = true
		}
		ok := true
		for ci, c := range q.Cmps {
			if handled[ci] {
				continue
			}
			if c.Args[0].IsConst() && c.Args[1].IsConst() {
				continue // statically decided; false case handled via empty
			}
			ok = false
			break
		}
		if !ok {
			continue
		}
		d := &Derivation{
			Candidate: cand,
			OutCols:   make([]int, len(q.Head.Args)),
			Consts:    make([]relation.Value, len(q.Head.Args)),
			Empty:     empty,
		}
		feasible := true
		for i, t := range q.Head.Args {
			if t.IsConst() {
				d.OutCols[i] = -1
				d.Consts[i] = t.Const
				continue
			}
			col, ok := cand.VarCols[t.Var]
			if !ok {
				feasible = false
				break
			}
			d.OutCols[i] = col
		}
		if feasible {
			return d, true
		}
	}
	return nil, false
}

// Apply computes q's extension from ext(E) according to the derivation.
// schema is the output schema (as derived by caql evaluation or OutputSchema).
func (d *Derivation) Apply(name string, schema *relation.Schema, ext *relation.Relation) (*relation.Relation, error) {
	if schema.Arity() != len(d.OutCols) {
		return nil, fmt.Errorf("subsume: schema arity %d != derivation arity %d", schema.Arity(), len(d.OutCols))
	}
	return relation.Drain(name, schema, d.ApplyLazy(ext.Iter())), nil
}

// ApplyLazy is the derivation as a lazy pipeline: selection on the element
// extension followed by head expansion, producing one output tuple per
// demand. It backs generator-form (lazy) answers from the cache.
func (d *Derivation) ApplyLazy(src relation.Iterator) relation.Iterator {
	if d.Empty {
		return relation.Empty()
	}
	sel := relation.Select(src, d.Candidate.Conds)
	return relation.IteratorFunc(func() (relation.Tuple, bool) {
		t, ok := sel.Next()
		if !ok {
			return nil, false
		}
		row := make(relation.Tuple, len(d.OutCols))
		for i, c := range d.OutCols {
			if c < 0 {
				row[i] = d.Consts[i]
			} else {
				row[i] = t[c]
			}
		}
		return row, true
	})
}

// ExactMatch reports whether q is identical to the element definition up to
// variable renaming (the [SELL87]/[IOAN88] reuse condition the paper
// contrasts with: "the cached results must exactly match the query").
func ExactMatch(e, q *caql.Query) bool {
	return e.Canonical() == q.Canonical()
}
