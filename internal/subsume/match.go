package subsume

import (
	"fmt"
	"sort"

	"repro/internal/caql"
	"repro/internal/logic"
	"repro/internal/relation"
)

// Candidate is one way to derive a conjunctive subquery of a query Q from a
// cache element E: the paper's "E_i ⊇ Q_c". The candidate records which
// atoms of Q are covered, the residual selections to apply to ext(E), and
// where each needed query variable lives in ext(E)'s columns.
type Candidate struct {
	// Element is the defining query of the cache element.
	Element *caql.Query
	// Cover lists the indices into Q.Rels of the covered atoms, ascending.
	Cover []int
	// CoveredCmps lists the indices into Q.Cmps of the comparisons that the
	// derivation accounts for (either implied by E or applied as residual
	// selections).
	CoveredCmps []int
	// Conds are the residual selections over ext(E)'s columns.
	Conds []relation.Cond
	// VarCols maps each available query variable to a column of ext(E)
	// (after Conds; no projection has been applied).
	VarCols map[string]int
}

// CoversAll reports whether the candidate covers every relational atom of a
// query with n relational atoms.
func (c *Candidate) CoversAll(n int) bool { return len(c.Cover) == n }

// InterfaceVars returns the available variables sorted (deterministic
// column order for materialization).
func (c *Candidate) InterfaceVars() []string {
	out := make([]string, 0, len(c.VarCols))
	for v := range c.VarCols {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Materialize computes the candidate's piece from the element's extension:
// residual selections followed by projection onto the interface variables
// (sorted). The result is suitable for joining with the residual part of Q.
func (c *Candidate) Materialize(name string, ext *relation.Relation) *relation.Relation {
	vars := c.InterfaceVars()
	cols := make([]int, len(vars))
	attrs := make([]relation.Attr, len(vars))
	for i, v := range vars {
		cols[i] = c.VarCols[v]
		attrs[i] = relation.Attr{Name: v, Kind: ext.Schema().Attr(cols[i]).Kind}
	}
	it := relation.Project(relation.Select(ext.Iter(), c.Conds), cols)
	return relation.Drain(name, relation.NewSchema(attrs...), it)
}

// MaterializeLazy is Materialize as a lazy pipeline over an iterator of
// ext(E) tuples.
func (c *Candidate) MaterializeLazy(src relation.Iterator) relation.Iterator {
	vars := c.InterfaceVars()
	cols := make([]int, len(vars))
	for i, v := range vars {
		cols[i] = c.VarCols[v]
	}
	return relation.Project(relation.Select(src, c.Conds), cols)
}

// PieceAtom returns the relational atom that stands for this candidate's
// piece when the QPO rewrites Q: name(v1, ..., vk) over the sorted interface
// variables.
func (c *Candidate) PieceAtom(name string) logic.Atom {
	vars := c.InterfaceVars()
	args := make([]logic.Term, len(vars))
	for i, v := range vars {
		args[i] = logic.V(v)
	}
	return logic.A(name, args...)
}

// Match finds the ways element E can derive subqueries of Q. The returned
// candidates each use *all* of E's relational atoms (per the paper's step 2:
// an element with atoms the query lacks is more restricted and unusable) and
// cover a subset of Q's atoms. needed is the set of query variables the
// caller must be able to recover from the piece (for a full derivation, the
// head variables; for decomposition, also the variables shared with the
// residual atoms); candidates that cannot supply a needed *covered* variable
// are rejected.
//
// Candidates are deduplicated by cover set (first valid assignment wins) and
// sorted by descending cover size.
func Match(e, q *caql.Query, needed map[string]bool) []*Candidate {
	if len(e.Rels) == 0 || len(e.Rels) > len(q.Rels) {
		return nil
	}
	// Group Q atom indices by predicate key for fast candidate lookup.
	byPred := make(map[string][]int)
	for i, a := range q.Rels {
		byPred[a.Key()] = append(byPred[a.Key()], i)
	}
	var out []*Candidate
	seen := make(map[string]bool)

	assignment := make([]int, len(e.Rels)) // e atom index -> q atom index
	used := make(map[int]bool)
	var rec func(i int)
	rec = func(i int) {
		if i == len(e.Rels) {
			if cand := validate(e, q, assignment, needed); cand != nil {
				key := fmt.Sprint(cand.Cover)
				if !seen[key] {
					seen[key] = true
					out = append(out, cand)
				}
			}
			return
		}
		for _, qi := range byPred[e.Rels[i].Key()] {
			if used[qi] {
				continue
			}
			// Quick per-atom directional check before recursing.
			if !atomCompatible(e.Rels[i], q.Rels[qi]) {
				continue
			}
			assignment[i] = qi
			used[qi] = true
			rec(i + 1)
			used[qi] = false
		}
	}
	rec(0)
	sort.SliceStable(out, func(i, j int) bool { return len(out[i].Cover) > len(out[j].Cover) })
	return out
}

// atomCompatible applies the paper's one-directional term rule positionwise:
// a query constant matches the same element constant or an element variable;
// a query variable matches only an element variable.
func atomCompatible(eAtom, qAtom logic.Atom) bool {
	for i := range eAtom.Args {
		et, qt := eAtom.Args[i], qAtom.Args[i]
		switch {
		case et.IsConst() && qt.IsConst():
			if !et.Const.Equal(qt.Const) {
				return false
			}
		case et.IsConst() && qt.IsVar():
			return false // element more restricted at this position
		}
	}
	return true
}

// validate checks a complete assignment and builds the candidate.
func validate(e, q *caql.Query, assignment []int, needed map[string]bool) *Candidate {
	// Element extension columns: position of each element head variable.
	eCol := make(map[string]int)
	for i, t := range e.Head.Args {
		if t.IsVar() {
			if _, dup := eCol[t.Var]; !dup {
				eCol[t.Var] = i
			}
		}
	}

	// Build m: element variable -> query term, and the inverse grouping.
	m := make(map[string]logic.Term)
	qVarSources := make(map[string][]string) // q var -> element vars mapping to it
	for ei, qi := range assignment {
		eAtom, qAtom := e.Rels[ei], q.Rels[qi]
		for p := range eAtom.Args {
			et, qt := eAtom.Args[p], qAtom.Args[p]
			if et.IsConst() {
				continue // compatibility already checked
			}
			prev, ok := m[et.Var]
			if !ok {
				m[et.Var] = qt
				if qt.IsVar() {
					qVarSources[qt.Var] = appendUnique(qVarSources[qt.Var], et.Var)
				}
				continue
			}
			if prev.Equal(qt) {
				continue
			}
			// The element equates two query terms that Q does not equate:
			// the element is more restricted unless we can enforce the
			// equality... but the equality holds in *every* ext(E) tuple, so
			// differing Q terms mean the element constrains more than Q
			// asks. Reject.
			return nil
		}
	}

	// For each query variable matched by several distinct element variables,
	// Q requires an equality the element does not intrinsically provide; it
	// must be enforced as a residual selection between extension columns,
	// which requires every such element variable to be an extension column.
	var conds []relation.Cond
	for _, evs := range qVarSources {
		if len(evs) < 2 {
			continue
		}
		first, ok := eCol[evs[0]]
		if !ok {
			return nil
		}
		for _, v := range evs[1:] {
			c, ok := eCol[v]
			if !ok {
				return nil
			}
			conds = append(conds, relation.ColCol(first, relation.OpEq, c))
		}
	}

	// Element variables bound to query constants become residual equality
	// selections; the column must exist in the extension.
	for ev, t := range m {
		if !t.IsConst() {
			continue
		}
		col, ok := eCol[ev]
		if !ok {
			return nil
		}
		conds = append(conds, relation.ColConst(col, relation.OpEq, t.Const))
	}

	// Available query variables and their extension columns.
	varCols := make(map[string]int)
	for qv, evs := range qVarSources {
		for _, ev := range evs {
			if col, ok := eCol[ev]; ok {
				varCols[qv] = col
				break
			}
		}
	}

	// Needed covered variables must be available. (Needed variables not
	// occurring in the covered atoms are the residual part's concern.)
	coveredVars := make(map[string]bool)
	for _, qi := range assignment {
		for _, t := range q.Rels[qi].Args {
			if t.IsVar() {
				coveredVars[t.Var] = true
			}
		}
	}
	for v := range needed {
		if coveredVars[v] {
			if _, ok := varCols[v]; !ok {
				return nil
			}
		}
	}

	// Element comparisons must be implied by the query's constraints mapped
	// through m: ext(E) must not exclude tuples Q wants.
	for _, ec := range e.Cmps {
		if !elementCmpImplied(ec, m, q) {
			return nil
		}
	}

	// Query comparisons whose variables are all covered: drop when implied
	// by the element's own comparisons (mapped), otherwise apply as residual
	// selections when the columns are available; if a covered-only variable
	// lacks a column the candidate fails, and comparisons involving
	// uncovered variables remain the residual query's responsibility.
	var coveredCmps []int
	for ci, qc := range q.Cmps {
		vars := qc.VarSet()
		allCovered := true
		anyCovered := false
		for v := range vars {
			if coveredVars[v] {
				anyCovered = true
			} else {
				allCovered = false
			}
		}
		if !anyCovered {
			continue
		}
		if !allCovered {
			continue // residual will handle it (its vars span both parts)
		}
		if queryCmpImpliedByElement(qc, e, m) {
			coveredCmps = append(coveredCmps, ci)
			continue
		}
		cond, ok := cmpToCond(qc, varCols)
		if !ok {
			return nil
		}
		conds = append(conds, cond)
		coveredCmps = append(coveredCmps, ci)
	}

	cover := append([]int(nil), assignment...)
	sort.Ints(cover)
	return &Candidate{
		Element:     e,
		Cover:       cover,
		CoveredCmps: coveredCmps,
		Conds:       conds,
		VarCols:     varCols,
	}
}

func appendUnique(s []string, v string) []string {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

// elementCmpImplied checks that an element comparison, translated through m
// into query terms, is guaranteed by the query's own constraints.
func elementCmpImplied(ec logic.Atom, m map[string]logic.Term, q *caql.Query) bool {
	op := ec.CmpOp()
	l := translate(ec.Args[0], m)
	r := translate(ec.Args[1], m)
	switch {
	case l.IsConst() && r.IsConst():
		return op.Eval(l.Const, r.Const)
	case l.IsVar() && r.IsConst():
		return RangeOf(l.Var, q.Cmps).Implies(op, r.Const)
	case l.IsConst() && r.IsVar():
		return RangeOf(r.Var, q.Cmps).Implies(op.Flip(), l.Const)
	default:
		// var-vs-var: require the same comparison syntactically in Q.
		for _, qc := range q.Cmps {
			if qc.Pred == ec.Pred &&
				qc.Args[0].Equal(l) && qc.Args[1].Equal(r) {
				return true
			}
			if qc.Pred == op.Flip().String() &&
				qc.Args[0].Equal(r) && qc.Args[1].Equal(l) {
				return true
			}
		}
		return false
	}
}

// queryCmpImpliedByElement checks whether the element's comparisons already
// guarantee a query comparison (so no residual selection is required).
func queryCmpImpliedByElement(qc logic.Atom, e *caql.Query, m map[string]logic.Term) bool {
	// Invert m for the variables of qc: find element vars mapping to them.
	inv := make(map[string]string)
	for ev, t := range m {
		if t.IsVar() {
			if _, ok := inv[t.Var]; !ok {
				inv[t.Var] = ev
			}
		}
	}
	op := qc.CmpOp()
	l, r := qc.Args[0], qc.Args[1]
	switch {
	case l.IsVar() && r.IsConst():
		ev, ok := inv[l.Var]
		if !ok {
			return false
		}
		return RangeOf(ev, e.Cmps).Implies(op, r.Const)
	case l.IsConst() && r.IsVar():
		ev, ok := inv[r.Var]
		if !ok {
			return false
		}
		return RangeOf(ev, e.Cmps).Implies(op.Flip(), l.Const)
	default:
		return false
	}
}

// cmpToCond converts a query comparison over available columns into a
// relation.Cond.
func cmpToCond(qc logic.Atom, varCols map[string]int) (relation.Cond, bool) {
	op := qc.CmpOp()
	l, r := qc.Args[0], qc.Args[1]
	switch {
	case l.IsVar() && r.IsVar():
		lc, lok := varCols[l.Var]
		rc, rok := varCols[r.Var]
		if !lok || !rok {
			return relation.Cond{}, false
		}
		return relation.ColCol(lc, op, rc), true
	case l.IsVar():
		lc, ok := varCols[l.Var]
		if !ok {
			return relation.Cond{}, false
		}
		return relation.ColConst(lc, op, r.Const), true
	case r.IsVar():
		rc, ok := varCols[r.Var]
		if !ok {
			return relation.Cond{}, false
		}
		return relation.ColConst(rc, op.Flip(), l.Const), true
	default:
		// Constant-constant comparisons are statically decided; if false the
		// query is empty — callers normalize that before matching.
		if op.Eval(l.Const, r.Const) {
			return relation.Cond{}, false
		}
		return relation.Cond{}, false
	}
}

func translate(t logic.Term, m map[string]logic.Term) logic.Term {
	if t.IsConst() {
		return t
	}
	if mt, ok := m[t.Var]; ok {
		return mt
	}
	return t
}
