package subsume

import (
	"math/rand"
	"testing"

	"repro/internal/caql"
	"repro/internal/logic"
	"repro/internal/relation"
)

func at(name string, kind relation.Kind) relation.Attr {
	return relation.Attr{Name: name, Kind: kind}
}

// paperSource builds extensions for b21, b22, b23 and the paper's b1/b2/b3.
func paperSource(rng *rand.Rand, names map[string]int) caql.MapSource {
	src := caql.MapSource{}
	for name, arity := range names {
		attrs := make([]relation.Attr, arity)
		for i := range attrs {
			attrs[i] = at(string(rune('a'+i)), relation.KindInt)
		}
		rel := relation.New(name, relation.NewSchema(attrs...))
		for i := 0; i < 8+rng.Intn(10); i++ {
			tu := make(relation.Tuple, arity)
			for j := range tu {
				tu[j] = relation.Int(int64(rng.Intn(5)))
			}
			rel.MustAppend(tu)
		}
		src[name] = rel
	}
	return src
}

func headVars(q *caql.Query) map[string]bool {
	out := make(map[string]bool)
	for _, t := range q.Head.Args {
		if t.IsVar() {
			out[t.Var] = true
		}
	}
	return out
}

// Section 5.3.2 step 1 example: Q_c1 = b21(X,2) vs E1, E2, E3.
func TestPaperStep1Example(t *testing.T) {
	q := caql.MustParse("q(X) :- b21(X, 2)")
	e1 := caql.MustParse("e1(X, Y, Z) :- b21(X, Y) & b22(Y, Z)")
	e2 := caql.MustParse("e2(Y) :- b21(3, Y)")
	e3 := caql.MustParse("e3(X, Z) :- b21(X, 2) & b23(2, Z)")

	// E1 has atoms the query lacks (b22): usable only for decomposition, and
	// its b21 atom matches. The element uses all its atoms, so Match against
	// the single-atom query fails (element more restricted).
	if cands := Match(e1, q, headVars(q)); len(cands) != 0 {
		t.Errorf("E1 should be rejected for the single-atom query (more restricted), got %d candidates", len(cands))
	}
	// E2: constant 3 where query has variable X — rejected.
	if cands := Match(e2, q, headVars(q)); len(cands) != 0 {
		t.Errorf("E2 should be rejected, got %d", len(cands))
	}
	// E3: likewise multi-atom; but against the two-atom query Q1b it works.
	q1b := caql.MustParse("q(X) :- b23(2, 3) & b21(X, 2)")
	cands := Match(e3, q1b, headVars(q1b))
	if len(cands) == 0 {
		t.Fatal("E3 should match Q1b")
	}
	if !cands[0].CoversAll(2) {
		t.Errorf("E3 should cover both atoms of Q1b, covered %v", cands[0].Cover)
	}

	// Q1a = b21(X,2) & b22(2,Y): E3 must NOT be considered (b23 missing).
	q1a := caql.MustParse("q(X, Y) :- b21(X, 2) & b22(2, Y)")
	if cands := Match(e3, q1a, headVars(q1a)); len(cands) != 0 {
		t.Errorf("E3 should not match Q1a, got %d", len(cands))
	}
	// Q1c = b21(2,Y) & b23(Y,Z): E3's b21 has var where query has const —
	// fine (2 matches X3) — but E3's b23(2,Z) has const 2 where query has
	// var Y: rejected.
	q1c := caql.MustParse("q(Y, Z) :- b21(2, Y) & b23(Y, Z)")
	if cands := Match(e3, q1c, headVars(q1c)); len(cands) != 0 {
		t.Errorf("E3 should not match Q1c, got %d", len(cands))
	}
}

// Section 5.3.2 continuation: cache elements E11, E12, E13 and query
// d2(X,c6) = b2(X,Z) & b3(Z,c2,c6).
func TestPaperElementExample(t *testing.T) {
	q := caql.MustParse(`d2(X) :- b2(X, Z) & b3(Z, "c2", "c6")`)
	e11 := caql.MustParse(`e11(X, Y) :- b2(X, "c1") & b3(Y, "c2", "c6")`)
	e12 := caql.MustParse(`e12(X, Y) :- b3(X, "c2", Y)`)
	e13 := caql.MustParse(`e13(X, Y, Z) :- b3(X, Y, Z)`)

	needed := map[string]bool{"X": true, "Z": true}
	// E11: its b2 atom has constant "c1" where the query has variable Z —
	// more restricted; no candidate may use it. (Its b3 atom alone cannot be
	// used either because all element atoms must be used.)
	if cands := Match(e11, q, needed); len(cands) != 0 {
		t.Errorf("E11 should be rejected, got %d candidates", len(cands))
	}
	// E12 covers the b3 atom.
	cands := Match(e12, q, needed)
	if len(cands) != 1 || len(cands[0].Cover) != 1 || cands[0].Cover[0] != 1 {
		t.Fatalf("E12 should cover exactly the b3 atom: %+v", cands)
	}
	// Residual selection: second head col (Y of e12) = "c6".
	if len(cands[0].Conds) != 1 {
		t.Fatalf("E12 candidate conds = %v", cands[0].Conds)
	}
	// E13 covers the b3 atom too, with selections on cols 1 and 2.
	cands13 := Match(e13, q, needed)
	if len(cands13) != 1 || len(cands13[0].Conds) != 2 {
		t.Fatalf("E13 candidate wrong: %+v", cands13)
	}
}

func TestFullDerivationExactAndGeneralized(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	src := paperSource(rng, map[string]int{"b2": 2, "b3": 3})
	// Element: generalized query; Query: instance with constant.
	e := caql.MustParse("e(X, Z, Y) :- b2(X, Z) & b3(Z, 2, Y)")
	q := caql.MustParse("d2(X, 3) :- b2(X, Z) & b3(Z, 2, 3)")

	d, ok := DeriveFull(e, q)
	if !ok {
		t.Fatal("generalized element should derive the instance")
	}
	ext, err := caql.Eval(e, src)
	if err != nil {
		t.Fatal(err)
	}
	want, err := caql.Eval(q, src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Apply("d2", want.Schema(), ext)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualAsBag(want) {
		t.Fatalf("derivation wrong:\ngot %v\nwant %v", got, want)
	}
}

func TestExactMatch(t *testing.T) {
	a := caql.MustParse("d(X, Y) :- b2(X, Z) & b3(Z, 2, Y)")
	b := caql.MustParse("d(P, Q) :- b2(P, R) & b3(R, 2, Q)")
	c := caql.MustParse("d(P, Q) :- b2(P, R) & b3(R, 3, Q)")
	if !ExactMatch(a, b) {
		t.Error("alpha-equivalent queries should exact-match")
	}
	if ExactMatch(a, c) {
		t.Error("different constants should not exact-match")
	}
}

func TestRangeImplication(t *testing.T) {
	cmps := func(src string) *caql.Query { return caql.MustParse(src) }
	q := cmps("q(X) :- r(X) & X >= 3 & X < 10")
	r := RangeOf("X", q.Cmps)
	cases := []struct {
		op   relation.CmpOp
		c    int64
		want bool
	}{
		{relation.OpGe, 3, true},
		{relation.OpGe, 2, true},
		{relation.OpGe, 4, false},
		{relation.OpGt, 2, true},
		{relation.OpGt, 3, false},
		{relation.OpLt, 10, true},
		{relation.OpLt, 9, false},
		{relation.OpLe, 10, true},
		// x < 10 does not imply x <= 9 over reals (9.5 is in range); the
		// implication must be conservative.
		{relation.OpLe, 9, false},
		{relation.OpNe, 11, true},
		{relation.OpNe, 5, false},
		{relation.OpEq, 5, false},
	}
	for _, c := range cases {
		if got := r.Implies(c.op, relation.Int(c.c)); got != c.want {
			t.Errorf("[3,10).Implies(%s %d) = %v, want %v", c.op, c.c, got, c.want)
		}
	}
	// Exact value.
	qe := cmps("q(X) :- r(X) & X = 5")
	re := RangeOf("X", qe.Cmps)
	if !re.Implies(relation.OpLt, relation.Int(6)) || re.Implies(relation.OpLt, relation.Int(5)) {
		t.Error("exact-value implication wrong")
	}
	// Infeasible.
	qi := cmps("q(X) :- r(X) & X < 3 & X > 5")
	ri := RangeOf("X", qi.Cmps)
	if !ri.Infeasib || !ri.Implies(relation.OpEq, relation.Int(99)) {
		t.Error("infeasible range should imply everything")
	}
}

func TestRangeSubsumption(t *testing.T) {
	// Element caches X in [0, 100); query asks X in [10, 20]: derivable with
	// residual range selections.
	e := caql.MustParse("e(X, Y) :- r(X, Y) & X >= 0 & X < 100")
	q := caql.MustParse("q(X, Y) :- r(X, Y) & X >= 10 & X <= 20")
	d, ok := DeriveFull(e, q)
	if !ok {
		t.Fatal("range-contained query should be derivable")
	}
	if len(d.Candidate.Conds) == 0 {
		t.Fatal("expected residual range selections")
	}
	// Reverse direction must fail: element narrower than query.
	if _, ok := DeriveFull(q, e); ok {
		t.Fatal("narrow element must not derive wider query")
	}
}

func TestVarVarComparisonSubsumption(t *testing.T) {
	e := caql.MustParse("e(X, Y) :- r(X, Y) & X < Y")
	q := caql.MustParse("q(X, Y) :- r(X, Y) & X < Y")
	if _, ok := DeriveFull(e, q); !ok {
		t.Fatal("identical var-var comparison should be accepted")
	}
	q2 := caql.MustParse("q(X, Y) :- r(X, Y)")
	if _, ok := DeriveFull(e, q2); ok {
		t.Fatal("element with extra var-var constraint must be rejected")
	}
	// Flipped spelling still matches.
	q3 := caql.MustParse("q(X, Y) :- r(X, Y) & Y > X")
	if _, ok := DeriveFull(e, q3); !ok {
		t.Fatal("flipped var-var comparison should be accepted")
	}
}

func TestNonHeadConstantBindingRejected(t *testing.T) {
	// Element projects away Z; query binds Z's position to a constant. The
	// selection cannot be applied to ext(E): must reject.
	e := caql.MustParse("e(X) :- r(X, Z)")
	q := caql.MustParse("q(X) :- r(X, 5)")
	if _, ok := DeriveFull(e, q); ok {
		t.Fatal("constant on projected-away column must be rejected")
	}
	// With the column retained it works.
	e2 := caql.MustParse("e(X, Z) :- r(X, Z)")
	if _, ok := DeriveFull(e2, q); !ok {
		t.Fatal("retained column should allow the selection")
	}
}

func TestSharedVarNeedsColumns(t *testing.T) {
	// Query joins r and s on Y; element has them unjoined but projects Y
	// columns: equality enforceable.
	e := caql.MustParse("e(X, Y1, Y2, Z) :- r(X, Y1) & s(Y2, Z)")
	q := caql.MustParse("q(X, Z) :- r(X, Y) & s(Y, Z)")
	d, ok := DeriveFull(e, q)
	if !ok {
		t.Fatal("join enforceable via residual equality")
	}
	hasColCol := false
	for _, c := range d.Candidate.Conds {
		if c.Right >= 0 {
			hasColCol = true
		}
	}
	if !hasColCol {
		t.Fatal("expected a column-equality residual selection")
	}
	// Element projecting away one Y column cannot enforce the join.
	e2 := caql.MustParse("e(X, Z) :- r(X, Y1) & s(Y2, Z)")
	if _, ok := DeriveFull(e2, q); ok {
		t.Fatal("cross-product element without join columns must be rejected")
	}
	// Element that already joins is fine even without Y in head.
	e3 := caql.MustParse("e(X, Z) :- r(X, Y) & s(Y, Z)")
	if _, ok := DeriveFull(e3, q); !ok {
		t.Fatal("already-joined element should derive")
	}
}

func TestElementEquatesMoreThanQuery(t *testing.T) {
	// Element r(X,X) requires equality the query does not: more restricted.
	e := caql.MustParse("e(X) :- r(X, X)")
	q := caql.MustParse("q(X, Y) :- r(X, Y)")
	if cands := Match(e, q, headVars(q)); len(cands) != 0 {
		t.Fatal("diagonal element must not derive full relation")
	}
	// Opposite direction: query diagonal, element full — derivable with a
	// col=col selection.
	if _, ok := DeriveFull(caql.MustParse("e(X, Y) :- r(X, Y)"), caql.MustParse("q(X) :- r(X, X)")); !ok {
		t.Fatal("full element should derive diagonal query")
	}
}

// The big soundness property: whenever DeriveFull succeeds on random
// element/query pairs, applying the derivation to the element's extension
// equals direct evaluation of the query. Additionally, exact self-derivation
// always succeeds.
func TestDerivationSoundnessRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	names := map[string]int{"r": 2, "s": 2, "u": 3}
	derived := 0
	for trial := 0; trial < 400; trial++ {
		src := paperSource(rng, names)
		e := randomQuery(rng, "e", names)
		if e == nil {
			continue
		}
		// Bias toward derivable pairs: most trials specialize the element
		// (instantiate a head variable and/or tighten with a comparison),
		// the rest draw an independent random query.
		var q *caql.Query
		if rng.Intn(10) < 7 {
			q = specialize(rng, e)
		} else {
			q = randomQuery(rng, "q", names)
		}
		if q == nil {
			continue
		}
		// Self-derivation must always hold.
		if _, ok := DeriveFull(e, e.Clone()); !ok {
			t.Fatalf("self-derivation failed for %s", e)
		}
		d, ok := DeriveFull(e, q)
		if !ok {
			continue
		}
		derived++
		ext, err := caql.Eval(e, src)
		if err != nil {
			t.Fatal(err)
		}
		want, err := caql.Eval(q, src)
		if err != nil {
			t.Fatal(err)
		}
		got, err := d.Apply("q", want.Schema(), ext)
		if err != nil {
			t.Fatal(err)
		}
		if !got.EqualAsSet(want) {
			t.Fatalf("trial %d unsound derivation:\nE: %s\nQ: %s\ngot %v\nwant %v",
				trial, e, q, relation.DistinctRel(got).Sort(), relation.DistinctRel(want).Sort())
		}
	}
	if derived < 20 {
		t.Fatalf("too few successful derivations to be meaningful: %d", derived)
	}
}

// specialize derives a random instance of e: constant bindings on head
// variables and/or extra range comparisons.
func specialize(rng *rand.Rand, e *caql.Query) *caql.Query {
	q := e.Clone()
	q.Head.Pred = "q"
	var headVarList []string
	for _, t := range q.Head.Args {
		if t.IsVar() {
			headVarList = append(headVarList, t.Var)
		}
	}
	if len(headVarList) > 0 && rng.Intn(2) == 0 {
		v := headVarList[rng.Intn(len(headVarList))]
		q = q.Instantiate(map[string]relation.Value{v: relation.Int(int64(rng.Intn(5)))})
	}
	if len(headVarList) > 0 && rng.Intn(2) == 0 {
		v := headVarList[rng.Intn(len(headVarList))]
		ops := []relation.CmpOp{relation.OpLt, relation.OpLe, relation.OpGt, relation.OpGe, relation.OpNe}
		q.Cmps = append(q.Cmps, logic.Cmp(logic.V(v), ops[rng.Intn(len(ops))], logic.CInt(int64(rng.Intn(5)))))
	}
	if q.Validate() != nil {
		return nil
	}
	return q
}

// randomQuery builds a random valid conjunctive query (nil if invalid).
func randomQuery(rng *rand.Rand, name string, names map[string]int) *caql.Query {
	preds := []string{"r", "s", "u"}
	varsPool := []string{"X", "Y", "Z", "W"}
	term := func() logic.Term {
		if rng.Intn(5) == 0 {
			return logic.CInt(int64(rng.Intn(5)))
		}
		return logic.V(varsPool[rng.Intn(len(varsPool))])
	}
	var body []logic.Atom
	for i := 0; i < 1+rng.Intn(2); i++ {
		p := preds[rng.Intn(len(preds))]
		args := make([]logic.Term, names[p])
		for j := range args {
			args[j] = term()
		}
		body = append(body, logic.A(p, args...))
	}
	varSet := logic.VarsOf(body)
	var varList []string
	for _, v := range varsPool {
		if varSet[v] {
			varList = append(varList, v)
		}
	}
	if len(varList) == 0 {
		return nil
	}
	if rng.Intn(3) == 0 {
		ops := []relation.CmpOp{relation.OpLt, relation.OpLe, relation.OpGt, relation.OpGe, relation.OpNe}
		body = append(body, logic.Cmp(logic.V(varList[rng.Intn(len(varList))]), ops[rng.Intn(len(ops))], logic.CInt(int64(rng.Intn(5)))))
	}
	// Head: random subset (nonempty) of vars.
	var head []logic.Term
	for _, v := range varList {
		if rng.Intn(3) != 0 {
			head = append(head, logic.V(v))
		}
	}
	if len(head) == 0 {
		head = append(head, logic.V(varList[0]))
	}
	q := caql.NewQuery(logic.A(name, head...), body)
	if q.Validate() != nil {
		return nil
	}
	return q
}

// Decomposition: a multi-atom query partially covered by an element; the
// piece joined with the residual equals direct evaluation.
func TestPartialCoverageDecomposition(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	src := paperSource(rng, map[string]int{"r": 2, "s": 2, "u": 3})
	q := caql.MustParse("q(X, W) :- r(X, Y) & s(Y, Z) & u(Z, W, 1)")
	e := caql.MustParse("e(X, Y, Z) :- r(X, Y) & s(Y, Z)")

	needed := map[string]bool{"X": true, "W": true, "Z": true} // Z shared with residual
	cands := Match(e, q, needed)
	if len(cands) == 0 {
		t.Fatal("element should cover the r,s prefix")
	}
	cand := cands[0]
	if len(cand.Cover) != 2 {
		t.Fatalf("cover = %v", cand.Cover)
	}

	ext, err := caql.Eval(e, src)
	if err != nil {
		t.Fatal(err)
	}
	piece := cand.Materialize("piece", ext)

	// Rewrite: q'(X, W) :- piece(vars...) & u(Z, W, 1)
	overlay := caql.MapSource{"piece": piece, "u": src["u"]}
	rew := caql.NewQuery(q.Head, append([]logic.Atom{cand.PieceAtom("piece")}, q.Rels[2]))
	got, err := caql.Eval(rew, overlay)
	if err != nil {
		t.Fatal(err)
	}
	want, err := caql.Eval(q, src)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualAsSet(want) {
		t.Fatalf("decomposed evaluation wrong:\ngot %v\nwant %v", got, want)
	}
}

func TestMatchCandidateOrdering(t *testing.T) {
	// Elements with larger cover should sort first.
	q := caql.MustParse("q(X, Z) :- r(X, Y) & s(Y, Z)")
	e := caql.MustParse("e(X, Y, Z) :- r(X, Y) & s(Y, Z)")
	cands := Match(e, q, map[string]bool{"X": true, "Z": true})
	if len(cands) == 0 || len(cands[0].Cover) != 2 {
		t.Fatalf("expected full-cover candidate first: %+v", cands)
	}
}
