package subsume

import (
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

// Property tests via testing/quick on the Range lattice.

func opOf(b uint8) relation.CmpOp {
	return relation.CmpOp(b % 6)
}

// Adding a constraint makes the range imply that constraint (tightening).
func TestQuickRangeAddImplies(t *testing.T) {
	f := func(ops []uint8, consts []int8, lastOp uint8, lastC int8) bool {
		var r Range
		n := len(ops)
		if len(consts) < n {
			n = len(consts)
		}
		for i := 0; i < n && i < 4; i++ {
			r.Add(opOf(ops[i]), relation.Int(int64(consts[i])))
		}
		op, c := opOf(lastOp), relation.Int(int64(lastC))
		r.Add(op, c)
		return r.Implies(op, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Implication is sound: every integer in the range satisfies any implied
// comparison (checked by brute force over a window).
func TestQuickRangeImplicationSound(t *testing.T) {
	f := func(ops []uint8, consts []int8, probeOp uint8, probeC int8) bool {
		var r Range
		n := len(ops)
		if len(consts) < n {
			n = len(consts)
		}
		for i := 0; i < n && i < 3; i++ {
			r.Add(opOf(ops[i]), relation.Int(int64(consts[i])))
		}
		op, c := opOf(probeOp), relation.Int(int64(probeC))
		if !r.Implies(op, c) {
			return true // nothing claimed
		}
		// Every in-range integer in [-300, 300] must satisfy the probe.
		for x := int64(-300); x <= 300; x++ {
			v := relation.Int(x)
			if inRange(r, v) && !op.Eval(v, c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// inRange checks membership directly from the constraint fields.
func inRange(r Range, v relation.Value) bool {
	if r.Infeasib {
		return false
	}
	if r.Eq != nil && !r.Eq.Equal(v) {
		return false
	}
	if r.HasLo {
		c := v.Compare(r.Lo)
		if c < 0 || (c == 0 && r.LoOpen) {
			return false
		}
	}
	if r.HasHi {
		c := v.Compare(r.Hi)
		if c > 0 || (c == 0 && r.HiOpen) {
			return false
		}
	}
	for _, n := range r.Ne {
		if n.Equal(v) {
			return false
		}
	}
	return true
}

// Equality constraints collapse the range to a point: any implied comparison
// then matches direct evaluation exactly.
func TestQuickRangePointEquality(t *testing.T) {
	f := func(c int8, probeOp uint8, probeC int8) bool {
		var r Range
		r.Add(relation.OpEq, relation.Int(int64(c)))
		op := opOf(probeOp)
		pv := relation.Int(int64(probeC))
		return r.Implies(op, pv) == op.Eval(relation.Int(int64(c)), pv)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
