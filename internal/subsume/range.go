// Package subsume implements BrAID's subsumption machinery (Section 5.3.2 of
// the paper): deciding when a cached view (a cache element defined by a PSJ
// expression) can be used to derive a CAQL query or one of its conjunctive
// subqueries, and producing the derivation plan (residual selections and
// projection over the cached extension).
//
// The algorithm follows the paper's two steps: (1) match each query atom
// against same-predicate atoms of the cache element with one-directional
// unification — a constant in the query matches the same constant or a
// variable in the element, a query variable matches only a variable; (2)
// reject elements with atoms the query does not also have (the element would
// be more restricted). On top of the paper's sketch, comparison predicates
// are handled with interval implication (the element's range constraints
// must be weaker than the query's), and the derivation accounts for which
// element columns are actually available in its stored extension.
package subsume

import (
	"repro/internal/logic"
	"repro/internal/relation"
)

// Range is the solution set of the single-variable constraints accumulated
// from comparison atoms: an optional exact value, an optional interval, and
// excluded values.
type Range struct {
	Eq       *relation.Value
	HasLo    bool
	Lo       relation.Value
	LoOpen   bool
	HasHi    bool
	Hi       relation.Value
	HiOpen   bool
	Ne       []relation.Value
	Infeasib bool // statically empty
}

// RangeOf gathers the constraints on variable v from var-vs-constant
// comparison atoms. Var-vs-var comparisons are ignored here (handled
// syntactically by the matcher).
func RangeOf(v string, cmps []logic.Atom) Range {
	var r Range
	for _, c := range cmps {
		if !c.IsComparison() {
			continue
		}
		l, rt := c.Args[0], c.Args[1]
		op := c.CmpOp()
		var cv relation.Value
		switch {
		case l.IsVar() && l.Var == v && rt.IsConst():
			cv = rt.Const
		case rt.IsVar() && rt.Var == v && l.IsConst():
			cv = l.Const
			op = op.Flip()
		default:
			continue
		}
		r.Add(op, cv)
	}
	return r
}

// Add tightens the range with "x op c".
func (r *Range) Add(op relation.CmpOp, c relation.Value) {
	switch op {
	case relation.OpEq:
		if r.Eq != nil && !r.Eq.Equal(c) {
			r.Infeasib = true
			return
		}
		v := c
		r.Eq = &v
	case relation.OpNe:
		r.Ne = append(r.Ne, c)
	case relation.OpLt:
		if !r.HasHi || c.Compare(r.Hi) < 0 || (c.Equal(r.Hi) && !r.HiOpen) {
			r.HasHi, r.Hi, r.HiOpen = true, c, true
		}
	case relation.OpLe:
		if !r.HasHi || c.Compare(r.Hi) < 0 {
			r.HasHi, r.Hi, r.HiOpen = true, c, false
		}
	case relation.OpGt:
		if !r.HasLo || c.Compare(r.Lo) > 0 || (c.Equal(r.Lo) && !r.LoOpen) {
			r.HasLo, r.Lo, r.LoOpen = true, c, true
		}
	case relation.OpGe:
		if !r.HasLo || c.Compare(r.Lo) > 0 {
			r.HasLo, r.Lo, r.LoOpen = true, c, false
		}
	}
	r.checkFeasible()
}

func (r *Range) checkFeasible() {
	if r.Eq != nil {
		if r.HasLo {
			c := r.Eq.Compare(r.Lo)
			if c < 0 || (c == 0 && r.LoOpen) {
				r.Infeasib = true
			}
		}
		if r.HasHi {
			c := r.Eq.Compare(r.Hi)
			if c > 0 || (c == 0 && r.HiOpen) {
				r.Infeasib = true
			}
		}
		for _, n := range r.Ne {
			if r.Eq.Equal(n) {
				r.Infeasib = true
			}
		}
	}
	if r.HasLo && r.HasHi {
		c := r.Lo.Compare(r.Hi)
		if c > 0 || (c == 0 && (r.LoOpen || r.HiOpen)) {
			r.Infeasib = true
		}
	}
}

// Implies reports whether every value in the range satisfies "x op c". An
// infeasible (empty) range implies everything.
func (r Range) Implies(op relation.CmpOp, c relation.Value) bool {
	if r.Infeasib {
		return true
	}
	if r.Eq != nil {
		return op.Eval(*r.Eq, c)
	}
	switch op {
	case relation.OpEq:
		return false // a non-singleton range never implies equality
	case relation.OpNe:
		// Implied if c is excluded or outside the interval.
		for _, n := range r.Ne {
			if n.Equal(c) {
				return true
			}
		}
		if r.HasHi {
			cmp := c.Compare(r.Hi)
			if cmp > 0 || (cmp == 0 && r.HiOpen) {
				return true
			}
		}
		if r.HasLo {
			cmp := c.Compare(r.Lo)
			if cmp < 0 || (cmp == 0 && r.LoOpen) {
				return true
			}
		}
		return false
	case relation.OpLt:
		// x < c for all x in range iff hi < c, or hi = c with open top.
		if !r.HasHi {
			return false
		}
		cmp := r.Hi.Compare(c)
		return cmp < 0 || (cmp == 0 && r.HiOpen)
	case relation.OpLe:
		if !r.HasHi {
			return false
		}
		return r.Hi.Compare(c) <= 0
	case relation.OpGt:
		if !r.HasLo {
			return false
		}
		cmp := r.Lo.Compare(c)
		return cmp > 0 || (cmp == 0 && r.LoOpen)
	case relation.OpGe:
		if !r.HasLo {
			return false
		}
		return r.Lo.Compare(c) >= 0
	default:
		return false
	}
}
