package bridge

import (
	"context"
	"errors"
	"fmt"
)

// Typed failure classes of the query dispatch path. Every query issued
// through a Session resolves to exactly one outcome — completed, canceled,
// deadline-exceeded, shed, or failed — and the non-completed outcomes carry
// one of these sentinels so callers (and the chaos harness's conservation
// invariant) can classify errors without string matching.

// ErrCanceled reports that the caller's context was canceled while the query
// (or a lazy stream derived from it) was running. Errors carrying it also
// match context.Canceled under errors.Is.
var ErrCanceled = errors.New("bridge: query canceled")

// ErrDeadlineExceeded reports that the query's deadline — the caller's
// context deadline or the data source's default query timeout — expired.
// Errors carrying it also match context.DeadlineExceeded under errors.Is.
var ErrDeadlineExceeded = errors.New("bridge: query deadline exceeded")

// ErrOverloaded is the typed shed response: the data source's admission
// controller rejected the query because the in-flight limit and the wait
// queue were both full. The query was never started; retrying later is safe.
var ErrOverloaded = errors.New("bridge: data source overloaded, query shed")

// CtxError maps a done context's error to the bridge's typed sentinel,
// wrapping the context error so errors.Is matches both (e.g. ErrCanceled and
// context.Canceled). It returns nil for a live context.
func CtxError(ctx context.Context) error {
	switch err := ctx.Err(); {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %w", ErrDeadlineExceeded, err)
	default:
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
}

// IsCancellation reports whether err is a cooperative-cancellation outcome
// (canceled or deadline-exceeded) rather than a genuine failure.
func IsCancellation(err error) bool {
	return errors.Is(err, ErrCanceled) || errors.Is(err, ErrDeadlineExceeded) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
