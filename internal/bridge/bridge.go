// Package bridge defines the interface between BrAID's inference engine and
// its data layer (Figure 3 of the paper): sessions that accept advice
// followed by a sequence of CAQL queries, answered as streams. The Cache
// Management System (internal/cache) is the primary implementation; the
// comparison baselines (internal/baseline) implement the same surface so the
// IE can run unchanged against loose coupling or exact-match caching.
package bridge

import (
	"repro/internal/advice"
	"repro/internal/caql"
	"repro/internal/relation"
	"repro/internal/remotedb"
)

// Stream delivers a query result tuple-at-a-time. "The CMS returns the
// result for the query using a stream" (Section 3). A stream backed by a
// generator performs lazy evaluation: tuples are computed on demand.
type Stream struct {
	schema *relation.Schema
	next   func() (relation.Tuple, bool)
	lazy   bool
}

// NewStream builds a stream over an iterator.
func NewStream(schema *relation.Schema, it relation.Iterator, lazy bool) *Stream {
	return &Stream{schema: schema, next: it.Next, lazy: lazy}
}

// NewEagerStream builds a stream over a materialized relation.
func NewEagerStream(rel *relation.Relation) *Stream {
	return NewStream(rel.Schema(), rel.Iter(), false)
}

// Schema returns the result schema.
func (s *Stream) Schema() *relation.Schema { return s.schema }

// Lazy reports whether the stream is generator-backed (lazy evaluation).
func (s *Stream) Lazy() bool { return s.lazy }

// Next produces the next tuple; ok is false at end of stream.
func (s *Stream) Next() (relation.Tuple, bool) { return s.next() }

// Drain materializes the remainder of the stream.
func (s *Stream) Drain(name string) *relation.Relation {
	return relation.Drain(name, s.schema, relation.IteratorFunc(s.next))
}

// Take consumes up to n tuples.
func (s *Stream) Take(n int) []relation.Tuple {
	return relation.Take(relation.IteratorFunc(s.next), n)
}

// SourceStats aggregates a data source's cost and behaviour counters. All
// simulated times are in virtual milliseconds under the experiment cost
// model.
type SourceStats struct {
	Queries         int64   // CAQL queries served
	RemoteRequests  int64   // DML requests issued to the remote DBMS
	RemoteTuples    int64   // tuples shipped from the remote DBMS
	RemoteSimMS     float64 // simulated remote time (requests + transfer + server ops)
	LocalSimMS      float64 // simulated CMS-local processing time
	ResponseSimMS   float64 // simulated session response time (overlaps collapsed)
	CacheHits       int64   // queries answered entirely from the cache
	PartialHits     int64   // queries partially answered from the cache
	ExactHits       int64   // full hits that were exact result-cache matches
	Prefetches      int64   // prefetch requests issued
	PrefetchHits    int64   // queries answered by previously prefetched data
	PrefetchDrops   int64   // prefetch requests dropped (worker pool saturated)
	Generalizations int64   // queries widened before remote execution
	Evictions       int64   // cache elements evicted
	IndexBuilds     int64   // attribute indexes built on cached extensions
	LazyAnswers     int64   // queries answered with a generator (lazy)

	// Fault-tolerance counters (populated when the remote client is a
	// remotedb.ResilientClient and/or the remote becomes unavailable).
	DegradedHits   int64 // cache hits served while the remote was unavailable
	RemoteFailures int64 // remote requests that failed after all retries (or failed fast)
	Retries        int64 // remote request retry attempts
	BreakerOpens   int64 // circuit-breaker open transitions
}

// Session is one advice-then-queries interaction (Section 3: "a session ...
// consists of a set of advice. This is followed by a sequence of CAQL
// queries").
type Session interface {
	// Query answers one CAQL query.
	Query(q *caql.Query) (*Stream, error)
	// QueryText parses and answers a query in CAQL surface syntax.
	QueryText(src string) (*Stream, error)
	// End closes the session.
	End()
}

// DataSource is the IE-facing surface of the CMS and of the baseline
// comparators.
type DataSource interface {
	// BeginSession starts a session; adv may be nil (advice is optional).
	BeginSession(adv *advice.Advice) Session
	// RelationSchema resolves a base relation schema (caql.SchemaSource).
	RelationSchema(name string, arity int) (*relation.Schema, error)
	// RelationStats returns catalog statistics (cardinality, per-column
	// distinct counts) for a base relation; the IE's problem-graph shaper
	// consumes these for conjunct ordering (Section 4.1).
	RelationStats(name string) (remotedb.TableStats, error)
	// Stats returns cumulative counters.
	Stats() SourceStats
}
