// Package bridge defines the interface between BrAID's inference engine and
// its data layer (Figure 3 of the paper): sessions that accept advice
// followed by a sequence of CAQL queries, answered as streams. The Cache
// Management System (internal/cache) is the primary implementation; the
// comparison baselines (internal/baseline) implement the same surface so the
// IE can run unchanged against loose coupling or exact-match caching.
package bridge

import (
	"context"

	"repro/internal/advice"
	"repro/internal/caql"
	"repro/internal/relation"
	"repro/internal/remotedb"
)

// Stream delivers a query result tuple-at-a-time. "The CMS returns the
// result for the query using a stream" (Section 3). A stream backed by a
// generator performs lazy evaluation: tuples are computed on demand.
//
// A lazy stream may be stopped mid-flight by cooperative cancellation
// (relation.GuardIterator checkpoints); Next then reports end-of-stream and
// Err returns the typed reason, so a canceled stream is never mistaken for a
// complete one.
type Stream struct {
	schema *relation.Schema
	next   func() (relation.Tuple, bool)
	lazy   bool
	errFn  func() error
}

// NewStream builds a stream over an iterator. When the iterator reports
// cancellation (it implements Err() error, e.g. relation.GuardIterator), the
// stream's Err surfaces it.
func NewStream(schema *relation.Schema, it relation.Iterator, lazy bool) *Stream {
	s := &Stream{schema: schema, next: it.Next, lazy: lazy}
	if e, ok := it.(interface{ Err() error }); ok {
		s.errFn = e.Err
	}
	return s
}

// NewEagerStream builds a stream over a materialized relation.
func NewEagerStream(rel *relation.Relation) *Stream {
	return NewStream(rel.Schema(), rel.Iter(), false)
}

// Schema returns the result schema.
func (s *Stream) Schema() *relation.Schema { return s.schema }

// Lazy reports whether the stream is generator-backed (lazy evaluation).
func (s *Stream) Lazy() bool { return s.lazy }

// Next produces the next tuple; ok is false at end of stream.
func (s *Stream) Next() (relation.Tuple, bool) { return s.next() }

// Err reports why the stream stopped early: ErrCanceled or
// ErrDeadlineExceeded after a cooperative-cancellation checkpoint fired, nil
// for a stream that ended (or is still running) normally. Check it after
// draining a lazy stream.
func (s *Stream) Err() error {
	if s.errFn == nil {
		return nil
	}
	return s.errFn()
}

// Drain materializes the remainder of the stream. A canceled stream drains to
// its partial prefix; use Err (or DrainErr) to distinguish that from a
// complete result.
func (s *Stream) Drain(name string) *relation.Relation {
	return relation.Drain(name, s.schema, relation.IteratorFunc(s.next))
}

// DrainErr materializes the remainder of the stream and surfaces the typed
// cancellation error, if the stream was stopped by a checkpoint.
func (s *Stream) DrainErr(name string) (*relation.Relation, error) {
	out := s.Drain(name)
	return out, s.Err()
}

// Take consumes up to n tuples.
func (s *Stream) Take(n int) []relation.Tuple {
	return relation.Take(relation.IteratorFunc(s.next), n)
}

// SourceStats aggregates a data source's cost and behaviour counters. All
// simulated times are in virtual milliseconds under the experiment cost
// model.
type SourceStats struct {
	Queries         int64   // CAQL queries served
	RemoteRequests  int64   // DML requests issued to the remote DBMS
	RemoteTuples    int64   // tuples shipped from the remote DBMS
	RemoteSimMS     float64 // simulated remote time (requests + transfer + server ops)
	LocalSimMS      float64 // simulated CMS-local processing time
	ResponseSimMS   float64 // simulated session response time (overlaps collapsed)
	CacheHits       int64   // queries answered entirely from the cache
	PartialHits     int64   // queries partially answered from the cache
	ExactHits       int64   // full hits that were exact result-cache matches
	Prefetches      int64   // prefetch requests issued
	PrefetchHits    int64   // queries answered by previously prefetched data
	PrefetchDrops   int64   // prefetch requests dropped (worker pool saturated)
	Generalizations int64   // queries widened before remote execution
	Evictions       int64   // cache elements evicted
	IndexBuilds     int64   // attribute indexes built on cached extensions
	LazyAnswers     int64   // queries answered with a generator (lazy)

	// Fault-tolerance counters (populated when the remote client is a
	// remotedb.ResilientClient and/or the remote becomes unavailable).
	DegradedHits   int64 // cache hits served while the remote was unavailable
	RemoteFailures int64 // remote requests that failed after all retries (or failed fast)
	Retries        int64 // remote request retry attempts
	BreakerOpens   int64 // circuit-breaker open transitions
	StreamResumes  int64 // mid-stream failures repaired by resume re-dispatch

	// EpochInvalidations counts cached views evicted because a fetch observed
	// a newer backend catalog epoch than the view was built under — the
	// stale-epoch defense refusing to serve a state the server has moved past
	// (zero when the transport does not report epochs).
	EpochInvalidations int64

	// Streamed-transport counters (populated when the remote client speaks
	// the framed v2 wire protocol; zero on the monolithic transport).
	FramesSent      int64   // protocol frames written to the remote DBMS
	FramesRecv      int64   // protocol frames received from the remote DBMS
	RemoteStreams   int64   // streamed exec results opened
	StreamsCanceled int64   // remote streams torn down mid-flight
	FirstTupleMS    float64 // mean wall-clock ms from request to first frame

	// Dispatch-outcome counters (admission control and cancellation). Every
	// issued query resolves to exactly one outcome, so the conservation
	// invariant Queries = Completed + Canceled + DeadlineExceeded + Shed +
	// Failed holds at any quiescent point (the chaos harness asserts it).
	Admitted         int64 // queries past the admission controller
	Queued           int64 // admitted queries that waited in the bounded queue
	Shed             int64 // queries rejected with ErrOverloaded
	Canceled         int64 // queries aborted by caller cancellation
	DeadlineExceeded int64 // queries aborted by a deadline (ctx or QueryTimeout)
	Completed        int64 // queries that returned a stream
	Failed           int64 // queries that failed for any other reason
	PanicsRecovered  int64 // panics isolated to one query/prefetch (process survived)
}

// DispatchConserved checks the stats-conservation invariant: every issued
// query is accounted by exactly one outcome counter. It only holds at
// quiescent points (no query mid-dispatch).
func (s SourceStats) DispatchConserved() bool {
	return s.Queries == s.Completed+s.Canceled+s.DeadlineExceeded+s.Shed+s.Failed
}

// Session is one advice-then-queries interaction (Section 3: "a session ...
// consists of a set of advice. This is followed by a sequence of CAQL
// queries").
type Session interface {
	// Query answers one CAQL query (no cancellation: context.Background).
	Query(q *caql.Query) (*Stream, error)
	// QueryCtx answers one CAQL query under the caller's context: a canceled
	// or expired ctx aborts remote calls, planning, and lazy generators, and
	// the query resolves to a typed ErrCanceled/ErrDeadlineExceeded. An
	// admission-controlled source may also shed the query with ErrOverloaded.
	QueryCtx(ctx context.Context, q *caql.Query) (*Stream, error)
	// QueryText parses and answers a query in CAQL surface syntax.
	QueryText(src string) (*Stream, error)
	// QueryTextCtx is QueryText under the caller's context.
	QueryTextCtx(ctx context.Context, src string) (*Stream, error)
	// End closes the session, canceling its in-flight background work.
	End()
}

// DataSource is the IE-facing surface of the CMS and of the baseline
// comparators.
type DataSource interface {
	// BeginSession starts a session; adv may be nil (advice is optional).
	BeginSession(adv *advice.Advice) Session
	// RelationSchema resolves a base relation schema (caql.SchemaSource).
	RelationSchema(name string, arity int) (*relation.Schema, error)
	// RelationStats returns catalog statistics (cardinality, per-column
	// distinct counts) for a base relation; the IE's problem-graph shaper
	// consumes these for conjunct ordering (Section 4.1).
	RelationStats(name string) (remotedb.TableStats, error)
	// Stats returns cumulative counters.
	Stats() SourceStats
}
