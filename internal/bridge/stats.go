package bridge

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
)

// StatsCounters is the race-free accumulator behind SourceStats: every field
// a concurrent session (or an async prefetch worker) can bump is an atomic,
// so no data-source-wide mutex sits on the query hot path. Snapshot folds the
// counters into the plain SourceStats value the IE-facing API reports.
type StatsCounters struct {
	Queries         atomic.Int64
	CacheHits       atomic.Int64
	PartialHits     atomic.Int64
	ExactHits       atomic.Int64
	Prefetches      atomic.Int64
	PrefetchHits    atomic.Int64
	PrefetchDrops   atomic.Int64
	Generalizations atomic.Int64
	IndexBuilds     atomic.Int64
	LazyAnswers     atomic.Int64
	DegradedHits    atomic.Int64
	// EpochInvalidations counts stale-epoch cache evictions (see
	// SourceStats.EpochInvalidations).
	EpochInvalidations atomic.Int64

	// Dispatch outcomes (see SourceStats for the conservation invariant).
	Admitted         atomic.Int64
	Queued           atomic.Int64
	Shed             atomic.Int64
	Canceled         atomic.Int64
	DeadlineExceeded atomic.Int64
	Completed        atomic.Int64
	Failed           atomic.Int64
	PanicsRecovered  atomic.Int64

	localSimBits    atomic.Uint64 // float64 bits
	responseSimBits atomic.Uint64 // float64 bits
}

// addFloat atomically adds d to a float64 stored as bits.
func addFloat(a *atomic.Uint64, d float64) {
	for {
		old := a.Load()
		if a.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// AddLocalSimMS accounts simulated CMS-local processing time.
func (c *StatsCounters) AddLocalSimMS(d float64) { addFloat(&c.localSimBits, d) }

// AddResponseSimMS accounts simulated session response time.
func (c *StatsCounters) AddResponseSimMS(d float64) { addFloat(&c.responseSimBits, d) }

// Snapshot returns the counters as a SourceStats value. Fields the counters
// do not own (remote transfer, evictions, resilience) are left zero for the
// caller to fill.
func (c *StatsCounters) Snapshot() SourceStats {
	return SourceStats{
		Queries:         c.Queries.Load(),
		CacheHits:       c.CacheHits.Load(),
		PartialHits:     c.PartialHits.Load(),
		ExactHits:       c.ExactHits.Load(),
		Prefetches:      c.Prefetches.Load(),
		PrefetchHits:    c.PrefetchHits.Load(),
		PrefetchDrops:   c.PrefetchDrops.Load(),
		Generalizations: c.Generalizations.Load(),
		IndexBuilds:     c.IndexBuilds.Load(),
		LazyAnswers:        c.LazyAnswers.Load(),
		DegradedHits:       c.DegradedHits.Load(),
		EpochInvalidations: c.EpochInvalidations.Load(),

		Admitted:         c.Admitted.Load(),
		Queued:           c.Queued.Load(),
		Shed:             c.Shed.Load(),
		Canceled:         c.Canceled.Load(),
		DeadlineExceeded: c.DeadlineExceeded.Load(),
		Completed:        c.Completed.Load(),
		Failed:           c.Failed.Load(),
		PanicsRecovered:  c.PanicsRecovered.Load(),

		LocalSimMS:    math.Float64frombits(c.localSimBits.Load()),
		ResponseSimMS: math.Float64frombits(c.responseSimBits.Load()),
	}
}

// ClassifyOutcome bumps the dispatch-outcome counter matching err: nil →
// Completed, ErrOverloaded → Shed, deadline → DeadlineExceeded, cancellation
// → Canceled, anything else → Failed. Call exactly once per issued query.
func (c *StatsCounters) ClassifyOutcome(err error) {
	switch {
	case err == nil:
		c.Completed.Add(1)
	case errors.Is(err, ErrOverloaded):
		c.Shed.Add(1)
	case errors.Is(err, ErrDeadlineExceeded) || errors.Is(err, context.DeadlineExceeded):
		c.DeadlineExceeded.Add(1)
	case errors.Is(err, ErrCanceled) || errors.Is(err, context.Canceled):
		c.Canceled.Add(1)
	default:
		c.Failed.Add(1)
	}
}
