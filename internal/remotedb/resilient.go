package remotedb

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"repro/internal/relation"
)

// ResilientClient wraps any Client with the fault-tolerance policy the CMS
// relies on: per-request deadlines, bounded retries with exponential backoff
// and jitter for transient (transport) failures, and a circuit breaker that
// converts a persistently failing remote into instant typed
// ErrRemoteUnavailable failures — so a degraded CMS fails fast instead of
// hanging, and probes the remote again after a cooldown (half-open).
//
// Semantic errors (the server answered and said no) pass through untouched:
// they are not retried and do not move the breaker.
type ResilientClient struct {
	inner Client
	cfg   Resilience

	mu       sync.Mutex
	rng      *rand.Rand // backoff jitter
	state    BreakerState
	failures int       // consecutive transport failures while closed
	reopenAt time.Time // when an open breaker half-opens
	probing  bool      // a half-open probe is in flight
	stats    ResilienceStats
}

// BreakerState is the circuit breaker state.
type BreakerState int

// Breaker states: Closed passes requests through, Open fails fast, HalfOpen
// lets a single probe through to test recovery.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String renders the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Resilience parameterizes a ResilientClient. Zero values take defaults.
type Resilience struct {
	// Deadline bounds each attempt; an attempt still running when it expires
	// is abandoned with ErrDeadlineExceeded (0: no deadline).
	Deadline time.Duration
	// MaxRetries is how many times a transiently failed request is retried
	// after the first attempt (default 2; negative: no retries).
	MaxRetries int
	// BaseBackoff is the first retry delay; each further retry doubles it
	// (default 10ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the backoff growth (default 1s).
	MaxBackoff time.Duration
	// JitterSeed seeds the deterministic backoff jitter stream.
	JitterSeed int64
	// BreakerFailures is how many consecutive failed requests (retries
	// exhausted) open the breaker (default 3; negative: breaker disabled).
	BreakerFailures int
	// BreakerCooldown is how long an open breaker fails fast before
	// half-opening to probe the remote (default 1s).
	BreakerCooldown time.Duration
	// Sleep is the backoff delay implementation (tests and fast experiments
	// stub it). Nil means time.Sleep.
	Sleep func(time.Duration)
	// Now is the clock (tests stub it). Nil means time.Now.
	Now func() time.Time
	// DisableStreamResume turns off transparent mid-stream recovery: streams
	// surface mid-stream transport failures to the consumer, as before resume
	// tokens existed. The zero value (resume ON) is the production posture;
	// the switch exists for E15's control arm and for consumers that prefer
	// to restart whole statements themselves.
	DisableStreamResume bool

	// stubbedSleep records that Sleep was caller-supplied, so ctx-aware
	// backoff keeps calling the stub instead of a real timer.
	stubbedSleep bool
}

func (r Resilience) withDefaults() Resilience {
	if r.MaxRetries == 0 {
		r.MaxRetries = 2
	}
	if r.MaxRetries < 0 {
		r.MaxRetries = 0
	}
	if r.BaseBackoff == 0 {
		r.BaseBackoff = 10 * time.Millisecond
	}
	if r.MaxBackoff == 0 {
		r.MaxBackoff = time.Second
	}
	if r.BreakerFailures == 0 {
		r.BreakerFailures = 3
	}
	if r.BreakerCooldown == 0 {
		r.BreakerCooldown = time.Second
	}
	if r.Sleep == nil {
		r.Sleep = time.Sleep
	} else {
		r.stubbedSleep = true
	}
	if r.Now == nil {
		r.Now = time.Now
	}
	return r
}

// ResilienceStats are the cumulative fault-handling counters.
type ResilienceStats struct {
	Retries           int64        // retry attempts issued
	Failures          int64        // requests that failed after all retries (or failed fast)
	BreakerOpens      int64        // closed/half-open -> open transitions
	DeadlinesExceeded int64        // attempts abandoned at the deadline
	FastFails         int64        // requests rejected instantly by an open breaker
	StreamResumes     int64        // mid-stream failures repaired by resume re-dispatch
	State             BreakerState // breaker state at sampling time
}

// NewResilientClient wraps inner with the given policy.
func NewResilientClient(inner Client, cfg Resilience) *ResilientClient {
	cfg = cfg.withDefaults()
	return &ResilientClient{
		inner: inner,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.JitterSeed)),
	}
}

// Inner returns the wrapped client.
func (r *ResilientClient) Inner() Client { return r.inner }

// Available implements AvailabilityReporter: false only while the breaker is
// open and its cooldown has not elapsed.
func (r *ResilientClient) Available() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state != BreakerOpen {
		return true
	}
	return !r.cfg.Now().Before(r.reopenAt)
}

// Breaker returns the current breaker state.
func (r *ResilientClient) Breaker() BreakerState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

// ResilienceStats implements ResilienceReporter.
func (r *ResilientClient) ResilienceStats() ResilienceStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.stats
	st.State = r.state
	return st
}

// admit decides whether a request may proceed under the breaker; it returns
// (probe=true) when the request is the half-open trial.
func (r *ResilientClient) admit() (probe bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch r.state {
	case BreakerClosed:
		return false, nil
	case BreakerOpen:
		if r.cfg.Now().Before(r.reopenAt) {
			r.stats.FastFails++
			return false, &UnavailableError{Reason: "circuit open"}
		}
		r.state = BreakerHalfOpen
		r.probing = true
		return true, nil
	default: // half-open
		if r.probing {
			r.stats.FastFails++
			return false, &UnavailableError{Reason: "circuit half-open, probe in flight"}
		}
		r.probing = true
		return true, nil
	}
}

// settle records the outcome of an admitted request.
func (r *ResilientClient) settle(probe, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if probe {
		r.probing = false
	}
	if ok {
		r.state = BreakerClosed
		r.failures = 0
		return
	}
	r.stats.Failures++
	if r.cfg.BreakerFailures < 0 {
		return
	}
	if r.state == BreakerHalfOpen {
		r.trip()
		return
	}
	r.failures++
	if r.failures >= r.cfg.BreakerFailures {
		r.trip()
	}
}

// trip opens the breaker (caller holds mu).
func (r *ResilientClient) trip() {
	r.state = BreakerOpen
	r.failures = 0
	r.reopenAt = r.cfg.Now().Add(r.cfg.BreakerCooldown)
	r.stats.BreakerOpens++
}

// backoff returns the jittered delay before retry attempt (0-based).
func (r *ResilientClient) backoff(attempt int) time.Duration {
	d := r.cfg.BaseBackoff << uint(attempt)
	if d > r.cfg.MaxBackoff || d <= 0 {
		d = r.cfg.MaxBackoff
	}
	r.mu.Lock()
	jitter := 0.5 + 0.5*r.rng.Float64() // [0.5, 1.0)
	r.mu.Unlock()
	return time.Duration(float64(d) * jitter)
}

// attempt runs one call under the per-attempt deadline and the caller's
// context. A timed-out or canceled call is abandoned: its goroutine completes
// (or errors) in the background into a buffered channel.
func (r *ResilientClient) attempt(ctx context.Context, op string, call func() (any, error)) (any, error) {
	if r.cfg.Deadline <= 0 && ctx.Done() == nil {
		return call()
	}
	type outcome struct {
		v        any
		err      error
		panicked any
	}
	ch := make(chan outcome, 1)
	go func() {
		// A panicking inner call must not kill the process from this helper
		// goroutine: capture it and re-raise in the caller, preserving panic
		// semantics across the async boundary so per-query isolation layers
		// above can recover it. An abandoned attempt's panic is discarded
		// with the rest of its outcome.
		defer func() {
			if p := recover(); p != nil {
				ch <- outcome{panicked: p}
			}
		}()
		v, err := call()
		ch <- outcome{v: v, err: err}
	}()
	var timerC <-chan time.Time
	if r.cfg.Deadline > 0 {
		timer := time.NewTimer(r.cfg.Deadline)
		defer timer.Stop()
		timerC = timer.C
	}
	select {
	case out := <-ch:
		if out.panicked != nil {
			panic(out.panicked)
		}
		return out.v, out.err
	case <-timerC:
		r.mu.Lock()
		r.stats.DeadlinesExceeded++
		r.mu.Unlock()
		return nil, &TransportError{Op: op, Err: ErrDeadlineExceeded}
	case <-ctx.Done():
		return nil, &TransportError{Op: op, Err: ctx.Err()}
	}
}

// sleepCtx waits the backoff delay, aborted early when ctx is done. A custom
// Sleep stub (tests, fast experiments) is honored as-is.
func (r *ResilientClient) sleepCtx(ctx context.Context, d time.Duration) error {
	if ctx.Done() == nil {
		r.cfg.Sleep(d)
		return nil
	}
	if r.cfg.stubbedSleep {
		r.cfg.Sleep(d)
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// do runs one request through breaker, deadline, and retry policy without a
// caller context.
func (r *ResilientClient) do(op string, call func() (any, error)) (any, error) {
	return r.doCtx(context.Background(), op, call)
}

// doCtx runs one request through breaker, context, deadline, and retry
// policy. A canceled or expired context stops the retry loop immediately —
// cancellation is the caller's verdict, not a remote failure, so it does not
// move the breaker.
func (r *ResilientClient) doCtx(ctx context.Context, op string, call func() (any, error)) (any, error) {
	if err := ctx.Err(); err != nil {
		return nil, &TransportError{Op: op, Err: err}
	}
	probe, err := r.admit()
	if err != nil {
		return nil, err
	}
	var lastErr error
	for i := 0; ; i++ {
		v, err := r.attempt(ctx, op, call)
		if err == nil {
			r.settle(probe, true)
			return v, nil
		}
		if ctx.Err() != nil {
			// Canceled mid-attempt: neither a success nor a remote failure.
			// Release the probe slot without moving the breaker state.
			r.settleCanceled(probe)
			return nil, &TransportError{Op: op, Err: ctx.Err()}
		}
		if !IsTransient(err) {
			// Semantic error: the remote is up and answered. Not a failure
			// for breaker purposes.
			r.settle(probe, true)
			return nil, err
		}
		lastErr = err
		if i >= r.cfg.MaxRetries || probe {
			// A half-open probe gets exactly one attempt.
			break
		}
		r.mu.Lock()
		r.stats.Retries++
		r.mu.Unlock()
		if err := r.sleepCtx(ctx, r.backoff(i)); err != nil {
			r.settleCanceled(probe)
			return nil, &TransportError{Op: op, Err: err}
		}
	}
	r.settle(probe, false)
	return nil, &UnavailableError{Reason: "retries exhausted", Cause: lastErr}
}

// settleCanceled releases a half-open probe slot after a caller-canceled
// request without recording a breaker verdict.
func (r *ResilientClient) settleCanceled(probe bool) {
	if !probe {
		return
	}
	r.mu.Lock()
	r.probing = false
	r.mu.Unlock()
}

// Exec implements Client.
func (r *ResilientClient) Exec(sql string) (*Result, error) {
	return r.ExecCtx(context.Background(), sql)
}

// ExecCtx implements ContextClient: the context bounds every attempt, the
// backoff sleeps between them, and flows through to a ctx-aware inner client.
func (r *ResilientClient) ExecCtx(ctx context.Context, sql string) (*Result, error) {
	v, err := r.doCtx(ctx, "exec", func() (any, error) { return ExecContext(ctx, r.inner, sql) })
	if err != nil {
		return nil, err
	}
	return v.(*Result), nil
}

// ExecStream implements StreamClient. The resilience policy — breaker,
// deadline, retries — applies to stream establishment as before
// (establishment failures are exactly the transient class the retry loop and
// breaker exist for), and now extends PAST it: a stream whose header carried
// a resume token is wrapped in a ResilientStream, which repairs mid-stream
// transport failures by re-dispatching with the token — through this same
// client, so the breaker and backoff govern re-dispatches too. Tokenless
// streams (materialized results, v1 peers) keep the old surface-the-error
// behavior, as does cfg.DisableStreamResume.
func (r *ResilientClient) ExecStream(ctx context.Context, sql string) (TupleStream, error) {
	v, err := r.doCtx(ctx, "exec", func() (any, error) { return ExecStreamContext(ctx, r.inner, sql) })
	if err != nil {
		return nil, err
	}
	st := v.(TupleStream)
	if r.cfg.DisableStreamResume {
		return st, nil
	}
	return newResilientStream(r, ctx, sql, st), nil
}

// noteStreamResume counts one repaired mid-stream failure.
func (r *ResilientClient) noteStreamResume() {
	r.mu.Lock()
	r.stats.StreamResumes++
	r.mu.Unlock()
}

// RelationSchema implements Client.
func (r *ResilientClient) RelationSchema(name string, arity int) (*relation.Schema, error) {
	v, err := r.do("schema", func() (any, error) { return r.inner.RelationSchema(name, arity) })
	if err != nil {
		return nil, err
	}
	return v.(*relation.Schema), nil
}

// TableStats implements Client.
func (r *ResilientClient) TableStats(name string) (TableStats, error) {
	v, err := r.do("stats", func() (any, error) { return r.inner.TableStats(name) })
	if err != nil {
		return TableStats{}, err
	}
	return v.(TableStats), nil
}

// Tables implements Client.
func (r *ResilientClient) Tables() ([]string, error) {
	v, err := r.do("tables", func() (any, error) { return r.inner.Tables() })
	if err != nil {
		return nil, err
	}
	return v.([]string), nil
}

// Stats implements Client.
func (r *ResilientClient) Stats() Stats { return r.inner.Stats() }

// Close implements Client.
func (r *ResilientClient) Close() error { return r.inner.Close() }
