package remotedb

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
)

// Wire protocol v2: after the hello handshake (wire.go) negotiates version 2,
// a connection carries gob-encoded wireFrame values in both directions on the
// SAME per-connection gob encoder/decoder pair that carried the handshake.
// Reusing the connection's encoder matters: gob transmits a type descriptor
// the first time each type crosses an encoder, so a per-frame (or
// per-request) encoder would resend descriptors on every message —
// BenchmarkGobEncoderReuse in wire_bench_test.go measures the delta.
//
// Frames are tagged with a request ID, so any number of requests can be in
// flight on one connection and responses interleave at frame granularity: a
// large result no longer blocks the connection for its full transfer, and
// the client sees the first tuple batch after one frame instead of after the
// whole relation.
//
// Client→server frames: frameReq (start a request), frameCancel (stop one
// stream mid-flight; only that stream dies).
// Server→client frames: frameHeader (result schema), frameBatch (a bounded
// slice of tuples), frameEnd (terminal: ops count, or an error/code; also
// carries the whole payload for the small catalog ops).

// Frame kinds.
const (
	frameReq    uint8 = 1 // client→server: wireRequest under an ID
	frameCancel uint8 = 2 // client→server: abandon stream ID
	frameHeader uint8 = 3 // server→client: result relation name + schema
	frameBatch  uint8 = 4 // server→client: one batch of tuples
	frameEnd    uint8 = 5 // server→client: terminal frame (ops, error, payload)
)

// wireFrame is one framed protocol message. Which fields are meaningful
// depends on Kind; everything else stays at its zero value on the wire.
type wireFrame struct {
	ID   uint64
	Kind uint8

	Req *wireRequest // frameReq

	Name   string        // frameHeader: result relation name
	Attrs  []wireAttr    // frameHeader; frameEnd for the "schema" op
	Tuples [][]wireValue // frameBatch

	// Resume, on a header frame, is the encoded resume token (resume.go) when
	// this stream is resumable — empty for the materializing execution path.
	// Resumed reports that the server honored the token of a re-issued request
	// by skipping already-delivered tuples itself; false on a resume request
	// means full restart, and the client must skip its delivered prefix.
	Resume  string // frameHeader
	Resumed bool   // frameHeader

	Ops    int64      // frameEnd: server-side tuple operations
	Err    string     // frameEnd: semantic or classified error
	Code   int        // frameEnd: wireCode* classification of Err
	Stats  TableStats // frameEnd for the "stats" op
	Tables []string   // frameEnd for the "tables" op

	// Epoch, on header and end frames, is the server's catalog generation —
	// the same gob-ignored extension as wireResponse.Epoch (v1 peers never
	// see it, pre-epoch v2 peers skip the unknown field).
	Epoch uint64 // frameHeader, frameEnd
}

// validFrameKind reports whether k is a kind this build understands.
func validFrameKind(k uint8) bool { return k >= frameReq && k <= frameEnd }

// writeFrame encodes one frame onto the connection's shared encoder. Any
// failure means the gob stream may be desynchronized, so callers must treat
// it as fatal for the connection.
func writeFrame(enc *gob.Encoder, f *wireFrame) error {
	if err := enc.Encode(f); err != nil {
		return &ProtocolError{Op: "write frame", Err: err}
	}
	return nil
}

// readFrame decodes one frame from the connection's shared decoder and
// validates it. Every failure is a typed *ProtocolError (matching ErrProtocol
// under errors.Is) except clean EOF, which is returned as io.EOF so callers
// can distinguish an orderly close from a truncated or corrupted stream.
// Decoding never blocks beyond the underlying reader: truncated input
// surfaces as io.ErrUnexpectedEOF from gob, corrupt input as a gob error —
// both fail fast, wrapped and classified.
func readFrame(dec *gob.Decoder) (*wireFrame, error) {
	var f wireFrame
	if err := dec.Decode(&f); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, &ProtocolError{Op: "read frame", Err: err}
	}
	if !validFrameKind(f.Kind) {
		return nil, &ProtocolError{Op: "read frame", Err: fmt.Errorf("unknown frame kind %d", f.Kind)}
	}
	if f.Kind == frameReq && f.Req == nil {
		return nil, &ProtocolError{Op: "read frame", Err: errors.New("request frame without a request")}
	}
	return &f, nil
}

// clampFrameTuples bounds a frame-size request to sane limits: at least 1
// tuple per frame, at most 64k (a frame is decoded as one allocation, so the
// cap bounds peak decode memory per stream).
func clampFrameTuples(n, fallback int) int {
	if n <= 0 {
		n = fallback
	}
	if n <= 0 {
		n = DefaultFrameTuples
	}
	if n > 1<<16 {
		n = 1 << 16
	}
	return n
}

// DefaultFrameTuples is the response frame size used when neither side
// configures one. Frames trade first-tuple latency and peak memory (small
// frames) against per-frame overhead (large frames); E14 measures the curve.
const DefaultFrameTuples = 512
