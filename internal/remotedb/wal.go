package remotedb

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Write-ahead log for the engine's mutations (CreateTable / LoadTable /
// Insert / CreateIndex). Every mutation is logged BEFORE it is applied to the
// in-memory catalog, so an acknowledged write is on disk when the engine's
// reply leaves the process; on restart, recovery (recovery.go) replays the
// log and rebuilds the exact acknowledged state.
//
// On-disk format. A data directory holds at most one checkpoint and one live
// segment per generation:
//
//	wal-<gen>.log          length-prefixed CRC32-framed gob records
//	checkpoint-<gen>.ckpt  full engine snapshot as of the START of wal-<gen>
//
// Each log record is framed as
//
//	[4B big-endian payload length][4B CRC32-IEEE of payload][payload]
//
// where the payload is one self-contained gob encoding of walRecord (a fresh
// encoder per record: records must be individually decodable so a damaged
// record does not desynchronize the rest of the file).
//
// Torn tails vs corruption. A crashed writer leaves at most a *prefix* of its
// final frame (the frame is written with one Write call). Recovery therefore
// truncates an incomplete frame at the end of the final segment — short
// header, short payload, or a CRC mismatch on the very last frame — but
// refuses a damaged frame that has valid data after it (or a garbage length
// field, which no torn write can produce) with the typed ErrWALCorrupt:
// mid-log damage means acknowledged history is gone, and silently dropping it
// would violate the durability contract.
//
// Rotation. When the live segment exceeds SegmentBytes, the engine snapshots
// its full state into checkpoint-<gen+1> (written to a temp file, fsynced,
// renamed), opens wal-<gen+1>.log, and deletes the previous generation — so
// the log is bounded by roughly SegmentBytes plus one snapshot regardless of
// the write history's length.

// FsyncPolicy selects when the WAL forces its writes to stable storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every appended record: an acknowledged write
	// survives any crash. This is the policy the durability invariant (and
	// the restart-storm chaos suite) is stated under.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs at most once per FsyncInterval, amortizing the
	// sync over a burst: a crash loses at most the writes acknowledged since
	// the last sync.
	FsyncInterval
	// FsyncOff never syncs explicitly; the OS writes back on its own
	// schedule. Fastest, weakest: a crash may lose any unflushed suffix.
	FsyncOff
)

// String returns the flag spelling of the policy.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncOff:
		return "off"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}

// ParseFsyncPolicy parses the -fsync flag value.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always", "":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "off", "none":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("remotedb: unknown fsync policy %q (want always, interval, or off)", s)
}

// ErrWALCorrupt reports unrecoverable mid-log damage: a record that fails its
// CRC or length validation while acknowledged records follow it. Recovery
// refuses to proceed — replaying around the hole would silently drop
// acknowledged writes. Errors carry position detail and match this sentinel
// under errors.Is.
var ErrWALCorrupt = errors.New("remotedb: wal corrupt")

// WALCorruptError is the typed form of ErrWALCorrupt with location detail.
type WALCorruptError struct {
	Path   string
	Offset int64
	Reason string
}

// Error implements error.
func (e *WALCorruptError) Error() string {
	return fmt.Sprintf("remotedb: wal corrupt: %s at %s+%d", e.Reason, e.Path, e.Offset)
}

// Is matches the ErrWALCorrupt sentinel.
func (e *WALCorruptError) Is(target error) bool { return target == ErrWALCorrupt }

// ErrWALCrashed is returned by appends after an injected crashpoint fired:
// the WAL behaves as if the process died mid-write (a torn frame is on disk,
// nothing later is accepted). Only fault-injected WALs return it.
var ErrWALCrashed = errors.New("remotedb: wal crashed (injected)")

// WAL record kinds, one per logged engine mutation plus the restart marker.
const (
	walCreateTable uint8 = 1
	walLoadTable   uint8 = 2
	walInsert      uint8 = 3
	walCreateIndex uint8 = 4
	// walRestart is appended once per recovery: replaying it bumps every
	// table version (and the catalog epoch), so resume tokens minted before a
	// crash are durably refused after it — across any number of crashes.
	walRestart uint8 = 5
)

// walRecord is one logged mutation. Which fields are meaningful depends on
// Kind; the wire mirror types (wire.go) are reused so relation.Value's
// unexported fields never meet gob directly.
type walRecord struct {
	Seq  uint64 // position in the segment, starting at 1; replay verifies contiguity
	Kind uint8

	Name  string        // CreateTable/Insert/CreateIndex: table name
	Attrs []wireAttr    // CreateTable: schema
	Rel   *wireRelation // LoadTable: full extension
	Rows  [][]wireValue // Insert: validated (coerced) rows
	Cols  []int         // CreateIndex: indexed columns
}

// walCheckpoint is a full engine snapshot, written at segment rotation. It is
// framed exactly like a log record (one frame per file).
type walCheckpoint struct {
	Gen      uint64
	Epoch    uint64
	Versions map[string]uint64
	Tables   []*wireRelation
	Indexes  map[string][][]int
}

// WALCrash seeds deterministic crashpoint injection, the WAL's rider on the
// package's fault-injection machinery (ListenerFaults, FaultConfig): with
// probability Rate, an append writes only a prefix of its frame — exactly the
// torn tail a real mid-write crash leaves — and the WAL refuses all further
// work with ErrWALCrashed, as a dead process would. Reopening the directory
// then exercises recovery's truncation path deterministically.
type WALCrash struct {
	Seed int64
	Rate float64
}

// Durability configures OpenEngine (recovery.go): where the log lives and how
// hard it pushes bytes to disk.
type Durability struct {
	// Dir is the data directory (created if missing).
	Dir string
	// Fsync is the sync policy (default FsyncAlways).
	Fsync FsyncPolicy
	// FsyncEvery is the FsyncInterval period (default 100ms).
	FsyncEvery time.Duration
	// SegmentBytes triggers rotation + checkpoint when the live segment
	// exceeds it (default 64 MiB).
	SegmentBytes int64
	// Crash enables seeded crashpoint injection (tests only).
	Crash *WALCrash
	// Tracer records the recovery span and is installed on the recovered
	// engine (nil: untraced).
	Tracer *obs.Tracer
}

const (
	defaultSegmentBytes = 64 << 20
	defaultFsyncEvery   = 100 * time.Millisecond

	// maxWALRecord bounds one record's payload. A length field above it is
	// corruption by definition (the writer never produces one), so the reader
	// can refuse it without attempting a giant allocation.
	maxWALRecord = 256 << 20

	walFrameHeader = 8 // 4B length + 4B CRC
)

// WALStats are cumulative WAL counters, read-through for the metrics registry.
type WALStats struct {
	Appends   int64
	Syncs     int64
	Rotations int64
	Bytes     int64
}

// WAL is the append side of the log. All methods are called with the engine
// mutex held (the engine serializes mutations), so the WAL itself needs no
// lock; the counters are atomics only so metrics can read them concurrently.
type WAL struct {
	dir          string
	fsync        FsyncPolicy
	fsyncEvery   time.Duration
	segmentBytes int64

	f        *os.File
	gen      uint64
	seq      uint64 // last record sequence written in the current segment
	size     int64
	lastSync time.Time

	crash   *WALCrash
	rng     *rand.Rand
	crashed bool

	appends   atomic.Int64
	syncs     atomic.Int64
	rotations atomic.Int64
	bytes     atomic.Int64
}

func (d Durability) withDefaults() Durability {
	if d.SegmentBytes <= 0 {
		d.SegmentBytes = defaultSegmentBytes
	}
	if d.FsyncEvery <= 0 {
		d.FsyncEvery = defaultFsyncEvery
	}
	return d
}

func walSegmentPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%06d.log", gen))
}

func walCheckpointPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("checkpoint-%06d.ckpt", gen))
}

// walGens scans the data directory and returns the generations that have a
// segment and/or a checkpoint, sorted ascending.
func walGens(dir string) (segs, ckpts []uint64, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	parse := func(name, prefix, suffix string) (uint64, bool) {
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
			return 0, false
		}
		mid := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
		n, err := strconv.ParseUint(mid, 10, 64)
		return n, err == nil
	}
	for _, ent := range ents {
		if g, ok := parse(ent.Name(), "wal-", ".log"); ok {
			segs = append(segs, g)
		}
		if g, ok := parse(ent.Name(), "checkpoint-", ".ckpt"); ok {
			ckpts = append(ckpts, g)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i] < ckpts[j] })
	return segs, ckpts, nil
}

// encodeWALFrame frames one gob payload: length, CRC, payload.
func encodeWALFrame(payload []byte) []byte {
	frame := make([]byte, walFrameHeader+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[walFrameHeader:], payload)
	return frame
}

// encodeWALRecord gob-encodes one record into a framed byte slice.
func encodeWALRecord(rec *walRecord) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		return nil, err
	}
	if buf.Len() > maxWALRecord {
		return nil, fmt.Errorf("remotedb: wal record of %d bytes exceeds the %d limit", buf.Len(), maxWALRecord)
	}
	return encodeWALFrame(buf.Bytes()), nil
}

// decodeWALRecord decodes one CRC-validated payload. A payload that passes its
// CRC but fails gob decoding is corruption (the bytes are provably what the
// writer wrote, so the record itself is damaged or alien).
func decodeWALRecord(payload []byte) (*walRecord, error) {
	var rec walRecord
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
		return nil, err
	}
	if rec.Kind < walCreateTable || rec.Kind > walRestart {
		return nil, fmt.Errorf("unknown wal record kind %d", rec.Kind)
	}
	return &rec, nil
}

// walScanResult is one segment's replay outcome.
type walScanResult struct {
	records   int   // valid records delivered
	truncated int64 // torn-tail bytes dropped (0: clean end)
	goodSize  int64 // offset of the end of the last valid record
	lastSeq   uint64
}

// scanWALSegment reads every record of one segment in order, delivering each
// to apply. final marks the last (live) segment: only there may a damaged
// frame at EOF be treated as a torn tail. The function never blocks beyond
// the file and never delivers a partially validated record.
func scanWALSegment(path string, final bool, apply func(*walRecord) error) (walScanResult, error) {
	res := walScanResult{}
	data, err := os.ReadFile(path)
	if err != nil {
		return res, err
	}
	off := int64(0)
	total := int64(len(data))
	corrupt := func(reason string) (walScanResult, error) {
		return res, &WALCorruptError{Path: path, Offset: off, Reason: reason}
	}
	tornOrCorrupt := func(reason string) (walScanResult, error) {
		if final {
			res.truncated = total - off
			res.goodSize = off
			return res, nil
		}
		return corrupt(reason)
	}
	var wantSeq uint64
	for off < total {
		rest := data[off:]
		if int64(len(rest)) < walFrameHeader {
			// A frame prefix shorter than its header: torn tail on the final
			// segment, corruption elsewhere.
			return tornOrCorrupt("short frame header")
		}
		length := int64(binary.BigEndian.Uint32(rest[0:4]))
		crc := binary.BigEndian.Uint32(rest[4:8])
		if length == 0 || length > maxWALRecord {
			// No torn write produces a garbage length (the header is the
			// frame's first bytes): refuse it anywhere, even at EOF.
			return corrupt(fmt.Sprintf("implausible record length %d", length))
		}
		if int64(len(rest)) < walFrameHeader+length {
			return tornOrCorrupt("short record payload")
		}
		payload := rest[walFrameHeader : walFrameHeader+length]
		if crc32.ChecksumIEEE(payload) != crc {
			if final && off+walFrameHeader+length == total {
				// The final frame of the final segment: a crash mid-write can
				// leave exactly this (blocks of one write can land out of
				// order), so it is a torn tail, not history damage.
				res.truncated = total - off
				res.goodSize = off
				return res, nil
			}
			return corrupt("record CRC mismatch")
		}
		rec, derr := decodeWALRecord(payload)
		if derr != nil {
			return corrupt(fmt.Sprintf("undecodable record: %v", derr))
		}
		if wantSeq != 0 && rec.Seq != wantSeq {
			return corrupt(fmt.Sprintf("sequence gap: record %d follows %d", rec.Seq, wantSeq-1))
		}
		wantSeq = rec.Seq + 1
		if err := apply(rec); err != nil {
			return res, err
		}
		off += walFrameHeader + length
		res.records++
		res.goodSize = off
		res.lastSeq = rec.Seq
	}
	return res, nil
}

// writeCheckpoint atomically writes one checkpoint file: temp file, fsync,
// rename, directory fsync — a crash at any point leaves either the old state
// or a complete new checkpoint, never a half-visible one.
func writeCheckpoint(dir string, ck *walCheckpoint) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ck); err != nil {
		return err
	}
	frame := encodeWALFrame(buf.Bytes())
	tmp, err := os.CreateTemp(dir, "checkpoint-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(frame); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), walCheckpointPath(dir, ck.Gen)); err != nil {
		return err
	}
	return syncDir(dir)
}

// readCheckpoint loads and validates one checkpoint file.
func readCheckpoint(dir string, gen uint64) (*walCheckpoint, error) {
	path := walCheckpointPath(dir, gen)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if int64(len(data)) < walFrameHeader {
		return nil, &WALCorruptError{Path: path, Reason: "short checkpoint"}
	}
	length := int64(binary.BigEndian.Uint32(data[0:4]))
	crc := binary.BigEndian.Uint32(data[4:8])
	if length <= 0 || length > maxWALRecord || walFrameHeader+length != int64(len(data)) {
		return nil, &WALCorruptError{Path: path, Reason: "checkpoint length mismatch"}
	}
	payload := data[walFrameHeader:]
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, &WALCorruptError{Path: path, Reason: "checkpoint CRC mismatch"}
	}
	var ck walCheckpoint
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&ck); err != nil {
		return nil, &WALCorruptError{Path: path, Reason: fmt.Sprintf("undecodable checkpoint: %v", err)}
	}
	return &ck, nil
}

// syncDir fsyncs a directory so renames/creates within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// openWALSegment opens (creating or appending to) the live segment of gen.
// size must be the validated length (recovery truncates a torn tail before
// appending after it).
func openWALSegment(d Durability, gen uint64, size int64, lastSeq uint64) (*WAL, error) {
	f, err := os.OpenFile(walSegmentPath(d.Dir, gen), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(size, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	w := &WAL{
		dir:          d.Dir,
		fsync:        d.Fsync,
		fsyncEvery:   d.FsyncEvery,
		segmentBytes: d.SegmentBytes,
		f:            f,
		gen:          gen,
		seq:          lastSeq,
		size:         size,
		crash:        d.Crash,
	}
	if d.Crash != nil {
		w.rng = rand.New(rand.NewSource(d.Crash.Seed))
	}
	return w, nil
}

// Append logs one record, assigning its sequence number, and syncs per the
// policy. The caller (the engine, holding its mutex) must not apply the
// mutation unless Append returns nil: log-before-apply is what makes an
// acknowledged write durable.
func (w *WAL) Append(rec *walRecord) error {
	if w.crashed {
		return ErrWALCrashed
	}
	rec.Seq = w.seq + 1
	frame, err := encodeWALRecord(rec)
	if err != nil {
		return err
	}
	if w.crash != nil && w.rng.Float64() < w.crash.Rate {
		// Injected crashpoint: die mid-write. A prefix of the frame lands on
		// disk (never the whole frame, so the record is provably torn) and
		// the WAL refuses everything afterwards, like the dead process would.
		torn := frame[:w.rng.Intn(len(frame)-1)+1]
		if len(torn) == len(frame) {
			torn = frame[:len(frame)-1]
		}
		w.f.Write(torn)
		w.f.Sync()
		w.crashed = true
		return ErrWALCrashed
	}
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("remotedb: wal append: %w", err)
	}
	w.seq = rec.Seq
	w.size += int64(len(frame))
	w.appends.Add(1)
	w.bytes.Add(int64(len(frame)))
	switch w.fsync {
	case FsyncAlways:
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("remotedb: wal sync: %w", err)
		}
		w.syncs.Add(1)
	case FsyncInterval:
		if now := time.Now(); now.Sub(w.lastSync) >= w.fsyncEvery {
			if err := w.f.Sync(); err != nil {
				return fmt.Errorf("remotedb: wal sync: %w", err)
			}
			w.syncs.Add(1)
			w.lastSync = now
		}
	}
	return nil
}

// shouldRotate reports whether the live segment has outgrown its budget.
func (w *WAL) shouldRotate() bool {
	return !w.crashed && w.size >= w.segmentBytes
}

// Rotate seals the live segment behind a checkpoint of the full engine state
// and starts the next generation, deleting the old files. The caller holds
// the engine mutex, so the snapshot is consistent with the log tail.
func (w *WAL) Rotate(ck *walCheckpoint) error {
	if w.crashed {
		return ErrWALCrashed
	}
	next := w.gen + 1
	ck.Gen = next
	if err := w.f.Sync(); err != nil {
		return err
	}
	if err := writeCheckpoint(w.dir, ck); err != nil {
		return err
	}
	f, err := os.OpenFile(walSegmentPath(w.dir, next), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	old := w.f
	oldGen := w.gen
	w.f, w.gen, w.size, w.seq = f, next, 0, 0
	w.lastSync = time.Time{}
	old.Close()
	os.Remove(walSegmentPath(w.dir, oldGen))
	os.Remove(walCheckpointPath(w.dir, oldGen))
	w.rotations.Add(1)
	return syncDir(w.dir)
}

// Stats returns cumulative counters (safe to call concurrently with appends).
func (w *WAL) Stats() WALStats {
	return WALStats{
		Appends:   w.appends.Load(),
		Syncs:     w.syncs.Load(),
		Rotations: w.rotations.Load(),
		Bytes:     w.bytes.Load(),
	}
}

// Close syncs and closes the live segment.
func (w *WAL) Close() error {
	if w.f == nil {
		return nil
	}
	if !w.crashed && w.fsync != FsyncOff {
		w.f.Sync()
	}
	err := w.f.Close()
	w.f = nil
	return err
}
