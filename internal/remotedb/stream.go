package remotedb

import (
	"context"

	"repro/internal/relation"
)

// TupleStream is an incrementally delivered exec result: the paper's "stream
// interface with buffering and pipelining" between the CMS and the remote
// DBMS. Tuples arrive in frames; Next hands them out one at a time, so the
// consumer sees the first tuple after one frame instead of after the whole
// relation, and peak memory is bounded by the in-flight frames rather than
// the result size.
//
// A TupleStream is single-consumer and not safe for concurrent use. It
// implements relation.Iterator plus the Err() error convention of
// relation.GuardIterator, so bridge.NewStream surfaces a mid-stream
// cancellation as a typed error instead of a silently short result.
//
// Ops and SimMS are defined only after the stream terminated (Next returned
// false): the server reports its operation count on the terminal frame, and
// the virtual cost of the request is charged at that point.
type TupleStream interface {
	relation.Iterator
	// Schema is the result schema, known from the header frame on.
	Schema() *relation.Schema
	// Name is the result relation's name as reported by the server.
	Name() string
	// Err reports why the stream stopped: nil for natural exhaustion, the
	// caller's context error for mid-stream cancellation, a transport or
	// semantic error otherwise. Valid once Next has returned false.
	Err() error
	// Close abandons the stream: a cancel frame tears down the server-side
	// producer for this one request while the connection keeps serving other
	// streams. Closing an exhausted stream is a no-op. Close is idempotent.
	Close() error
	// Ops is the server-side tuple operation count (terminal frame).
	Ops() int64
	// SimMS is the simulated cost charged for this request under the client's
	// cost model. Valid after the stream terminated.
	SimMS() float64
}

// StreamClient is implemented by clients that can deliver exec results
// incrementally (PoolClient over wire v2). ExecStream returns once the result
// header arrives; tuples then stream in frames.
type StreamClient interface {
	Client
	ExecStream(ctx context.Context, sql string) (TupleStream, error)
}

// ResumableClient is implemented by stream clients that can re-issue a
// streamed exec carrying a resume token (PoolClient over wire v2; FaultClient
// passes through). Skip is the number of result tuples the caller already
// delivered to its consumer: the server skips them when the pinned snapshot
// survives, and otherwise serves a fresh stream whose header reports
// Resumed=false so the caller skips them itself.
type ResumableClient interface {
	StreamClient
	ExecStreamResume(ctx context.Context, sql, token string, skip int64) (TupleStream, error)
}

// ResumeReporter is implemented by streams whose header carried resume state:
// the token pinning this stream's snapshot (empty for non-resumable results)
// and whether the server honored a token by skipping server-side.
type ResumeReporter interface {
	ResumeState() (token string, resumed bool)
}

// ExecStreamResumeContext re-issues sql with a resume token through c when it
// supports resumption; otherwise it opens a plain stream — which never
// implements ResumeReporter, so the caller treats it as a full restart and
// skips its delivered prefix client-side.
func ExecStreamResumeContext(ctx context.Context, c Client, sql, token string, skip int64) (TupleStream, error) {
	if rc, ok := c.(ResumableClient); ok && token != "" {
		return rc.ExecStreamResume(ctx, sql, token, skip)
	}
	return ExecStreamContext(ctx, c, sql)
}

// ExecStreamContext issues sql through c as a stream when the client supports
// it, and otherwise falls back to a materialized ExecContext whose result is
// replayed through the same TupleStream surface — so the CMS consumes every
// transport uniformly and streaming composes with the resilience and fault
// wrappers even when an inner layer is not stream-aware.
func ExecStreamContext(ctx context.Context, c Client, sql string) (TupleStream, error) {
	if sc, ok := c.(StreamClient); ok {
		return sc.ExecStream(ctx, sql)
	}
	res, err := ExecContext(ctx, c, sql)
	if err != nil {
		return nil, err
	}
	return NewMaterializedStream(res), nil
}

// materializedStream adapts a fully materialized Result to the TupleStream
// surface (the v1 / in-process fallback).
type materializedStream struct {
	res    *Result
	it     relation.Iterator
	schema *relation.Schema
	name   string
	closed bool
	err    error
}

// NewMaterializedStream wraps an already-materialized exec result in the
// stream surface. Ops is unknown at this layer (the wrapped client already
// accounted it) and reported as 0.
func NewMaterializedStream(res *Result) TupleStream {
	m := &materializedStream{res: res}
	if res.Rel != nil {
		m.schema = res.Rel.Schema()
		m.name = res.Rel.Name
		m.it = res.Rel.Iter()
	} else {
		m.it = relation.Empty()
	}
	return m
}

func (m *materializedStream) Next() (relation.Tuple, bool) {
	if m.closed {
		return nil, false
	}
	return m.it.Next()
}

func (m *materializedStream) Schema() *relation.Schema { return m.schema }
func (m *materializedStream) Name() string             { return m.name }
func (m *materializedStream) Err() error               { return m.err }
func (m *materializedStream) Ops() int64               { return 0 }
func (m *materializedStream) SimMS() float64           { return m.res.SimMS }

func (m *materializedStream) Close() error {
	if !m.closed {
		m.closed = true
		m.err = ErrStreamClosed
	}
	return nil
}

// DrainStream materializes a stream into a relation named name, bulk
// appending so hot decode paths validate arity once per batch. It returns the
// stream's terminal error, so a canceled stream can never be mistaken for a
// complete result.
func DrainStream(name string, st TupleStream) (*relation.Relation, error) {
	out := relation.New(name, st.Schema())
	const batch = 256
	buf := make([]relation.Tuple, 0, batch)
	for {
		t, ok := st.Next()
		if ok {
			buf = append(buf, t)
		}
		if len(buf) == batch || (!ok && len(buf) > 0) {
			if err := out.AppendAll(buf); err != nil {
				st.Close()
				return nil, err
			}
			buf = buf[:0]
		}
		if !ok {
			break
		}
	}
	if err := st.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
