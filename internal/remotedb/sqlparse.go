package remotedb

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/relation"
)

// ParseSQL parses one DML statement.
func ParseSQL(src string) (*Statement, error) {
	toks, err := sqlLex(src)
	if err != nil {
		return nil, err
	}
	p := &sqlParser{toks: toks}
	st, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() && !p.atPunct(";") {
		return nil, fmt.Errorf("remotedb: trailing input at %q", p.cur().text)
	}
	return st, nil
}

type sqlTokKind int

const (
	sqlEOF sqlTokKind = iota
	sqlWord
	sqlNumber
	sqlString
	sqlPunct
)

type sqlToken struct {
	kind sqlTokKind
	text string // words are uppercased; raw preserved for identifiers via orig
	orig string
}

func sqlLex(src string) ([]sqlToken, error) {
	var toks []sqlToken
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for {
				if j >= len(src) {
					return nil, fmt.Errorf("remotedb: unterminated string literal")
				}
				if src[j] == '\'' {
					if j+1 < len(src) && src[j+1] == '\'' { // doubled quote escape
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(src[j])
				j++
			}
			toks = append(toks, sqlToken{kind: sqlString, text: sb.String()})
			i = j + 1
		case c >= '0' && c <= '9' || (c == '-' && i+1 < len(src) && src[i+1] >= '0' && src[i+1] <= '9'):
			j := i + 1
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.' || src[j] == 'e' || src[j] == 'E') {
				j++
			}
			toks = append(toks, sqlToken{kind: sqlNumber, text: src[i:j]})
			i = j
		case isSQLWordStart(c):
			j := i + 1
			for j < len(src) && isSQLWordPart(src[j]) {
				j++
			}
			w := src[i:j]
			toks = append(toks, sqlToken{kind: sqlWord, text: strings.ToUpper(w), orig: w})
			i = j
		default:
			for _, p := range []string{"<=", ">=", "<>", "!="} {
				if strings.HasPrefix(src[i:], p) {
					toks = append(toks, sqlToken{kind: sqlPunct, text: p})
					i += len(p)
					goto next
				}
			}
			switch c {
			case '(', ')', ',', '*', '.', '=', '<', '>', ';':
				toks = append(toks, sqlToken{kind: sqlPunct, text: string(c)})
				i++
			default:
				return nil, fmt.Errorf("remotedb: unexpected character %q", string(c))
			}
		next:
		}
	}
	toks = append(toks, sqlToken{kind: sqlEOF})
	return toks, nil
}

func isSQLWordStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isSQLWordPart(c byte) bool {
	return isSQLWordStart(c) || c >= '0' && c <= '9'
}

type sqlParser struct {
	toks []sqlToken
	pos  int
}

func (p *sqlParser) cur() sqlToken { return p.toks[p.pos] }
func (p *sqlParser) advance()      { p.pos++ }
func (p *sqlParser) atEOF() bool   { return p.cur().kind == sqlEOF }

func (p *sqlParser) atWord(w string) bool {
	t := p.cur()
	return t.kind == sqlWord && t.text == w
}

func (p *sqlParser) atPunct(s string) bool {
	t := p.cur()
	return t.kind == sqlPunct && t.text == s
}

func (p *sqlParser) expectWord(w string) error {
	if !p.atWord(w) {
		return fmt.Errorf("remotedb: expected %s, found %q", w, p.cur().text)
	}
	p.advance()
	return nil
}

func (p *sqlParser) expectPunct(s string) error {
	if !p.atPunct(s) {
		return fmt.Errorf("remotedb: expected %q, found %q", s, p.cur().text)
	}
	p.advance()
	return nil
}

func (p *sqlParser) identifier() (string, error) {
	t := p.cur()
	if t.kind != sqlWord {
		return "", fmt.Errorf("remotedb: expected identifier, found %q", t.text)
	}
	p.advance()
	return strings.ToLower(t.orig), nil
}

func (p *sqlParser) parseStatement() (*Statement, error) {
	switch {
	case p.atWord("EXPLAIN"):
		p.advance()
		analyze := false
		if p.atWord("ANALYZE") {
			p.advance()
			analyze = true
		}
		if !p.atWord("SELECT") {
			return nil, fmt.Errorf("remotedb: EXPLAIN expects SELECT, found %q", p.cur().text)
		}
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &Statement{Select: sel, Explain: true, Analyze: analyze}, nil
	case p.atWord("CREATE"):
		c, err := p.parseCreate()
		if err != nil {
			return nil, err
		}
		return &Statement{Create: c}, nil
	case p.atWord("INSERT"):
		ins, err := p.parseInsert()
		if err != nil {
			return nil, err
		}
		return &Statement{Insert: ins}, nil
	case p.atWord("SELECT"):
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &Statement{Select: sel}, nil
	default:
		return nil, fmt.Errorf("remotedb: expected CREATE, INSERT, or SELECT, found %q", p.cur().text)
	}
}

func (p *sqlParser) parseCreate() (*CreateStmt, error) {
	p.advance() // CREATE
	if err := p.expectWord("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.identifier()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var attrs []relation.Attr
	for {
		col, err := p.identifier()
		if err != nil {
			return nil, err
		}
		t := p.cur()
		if t.kind != sqlWord {
			return nil, fmt.Errorf("remotedb: expected type for column %s", col)
		}
		var kind relation.Kind
		switch t.text {
		case "INT", "INTEGER", "BIGINT":
			kind = relation.KindInt
		case "FLOAT", "REAL", "DOUBLE":
			kind = relation.KindFloat
		case "TEXT", "VARCHAR", "CHAR", "STRING":
			kind = relation.KindString
		case "BOOL", "BOOLEAN":
			kind = relation.KindBool
		default:
			return nil, fmt.Errorf("remotedb: unknown column type %q", t.orig)
		}
		p.advance()
		// Ignore an optional length like VARCHAR(20).
		if p.atPunct("(") {
			p.advance()
			if p.cur().kind != sqlNumber {
				return nil, fmt.Errorf("remotedb: expected length after type")
			}
			p.advance()
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
		}
		attrs = append(attrs, relation.Attr{Name: col, Kind: kind})
		if p.atPunct(",") {
			p.advance()
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return &CreateStmt{Table: name, Schema: relation.NewSchema(attrs...)}, nil
}

func (p *sqlParser) parseInsert() (*InsertStmt, error) {
	p.advance() // INSERT
	if err := p.expectWord("INTO"); err != nil {
		return nil, err
	}
	name, err := p.identifier()
	if err != nil {
		return nil, err
	}
	if err := p.expectWord("VALUES"); err != nil {
		return nil, err
	}
	ins := &InsertStmt{Table: name}
	for {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var row relation.Tuple
		for {
			v, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if p.atPunct(",") {
				p.advance()
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if p.atPunct(",") {
			p.advance()
			continue
		}
		break
	}
	return ins, nil
}

func (p *sqlParser) parseLiteral() (relation.Value, error) {
	t := p.cur()
	switch t.kind {
	case sqlString:
		p.advance()
		return relation.Str(t.text), nil
	case sqlNumber:
		p.advance()
		if i, err := strconv.ParseInt(t.text, 10, 64); err == nil {
			return relation.Int(i), nil
		}
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return relation.Value{}, fmt.Errorf("remotedb: bad number %q", t.text)
		}
		return relation.Float(f), nil
	case sqlWord:
		switch t.text {
		case "TRUE":
			p.advance()
			return relation.Bool(true), nil
		case "FALSE":
			p.advance()
			return relation.Bool(false), nil
		case "NULL":
			p.advance()
			return relation.Null(), nil
		}
	}
	return relation.Value{}, fmt.Errorf("remotedb: expected literal, found %q", t.text)
}

func (p *sqlParser) parseSelect() (*SelectStmt, error) {
	p.advance() // SELECT
	sel := &SelectStmt{Limit: -1}
	if p.atWord("DISTINCT") {
		sel.Distinct = true
		p.advance()
	}
	// Select items.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if p.atPunct(",") {
			p.advance()
			continue
		}
		break
	}
	if err := p.expectWord("FROM"); err != nil {
		return nil, err
	}
	for {
		table, err := p.identifier()
		if err != nil {
			return nil, err
		}
		ref := TableRef{Table: table, Alias: table}
		if p.atWord("AS") {
			p.advance()
			alias, err := p.identifier()
			if err != nil {
				return nil, err
			}
			ref.Alias = alias
		} else if p.cur().kind == sqlWord && !isSQLKeyword(p.cur().text) {
			alias, _ := p.identifier()
			ref.Alias = alias
		}
		sel.From = append(sel.From, ref)
		if p.atPunct(",") {
			p.advance()
			continue
		}
		break
	}
	if p.atWord("WHERE") {
		p.advance()
		for {
			cond, err := p.parseCond()
			if err != nil {
				return nil, err
			}
			sel.Where = append(sel.Where, cond)
			if p.atWord("AND") {
				p.advance()
				continue
			}
			break
		}
	}
	if p.atWord("GROUP") {
		p.advance()
		if err := p.expectWord("BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, c)
			if p.atPunct(",") {
				p.advance()
				continue
			}
			break
		}
	}
	if p.atWord("ORDER") {
		p.advance()
		if err := p.expectWord("BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			sel.OrderBy = append(sel.OrderBy, c)
			if p.atPunct(",") {
				p.advance()
				continue
			}
			break
		}
	}
	if p.atWord("LIMIT") {
		p.advance()
		t := p.cur()
		if t.kind != sqlNumber {
			return nil, fmt.Errorf("remotedb: expected LIMIT count")
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("remotedb: bad LIMIT %q", t.text)
		}
		sel.Limit = n
		p.advance()
	}
	return sel, nil
}

func isSQLKeyword(w string) bool {
	switch w {
	case "SELECT", "FROM", "WHERE", "AND", "GROUP", "ORDER", "BY", "LIMIT", "AS", "DISTINCT", "INSERT", "INTO", "VALUES", "CREATE", "TABLE", "EXPLAIN":
		return true
	}
	return false
}

func (p *sqlParser) parseSelectItem() (SelectItem, error) {
	if p.atPunct("*") {
		p.advance()
		return SelectItem{Star: true}, nil
	}
	t := p.cur()
	if t.kind == sqlWord {
		if op, err := relation.ParseAggOp(t.text); err == nil && p.toks[p.pos+1].kind == sqlPunct && p.toks[p.pos+1].text == "(" {
			p.advance() // agg name
			p.advance() // (
			item := SelectItem{IsAgg: true, Agg: op}
			if p.atPunct("*") {
				if op != relation.AggCount {
					return SelectItem{}, fmt.Errorf("remotedb: only COUNT accepts *")
				}
				item.AggStar = true
				p.advance()
			} else {
				col, err := p.parseColRef()
				if err != nil {
					return SelectItem{}, err
				}
				item.Col = col
			}
			if err := p.expectPunct(")"); err != nil {
				return SelectItem{}, err
			}
			return item, nil
		}
	}
	col, err := p.parseColRef()
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Col: col}, nil
}

func (p *sqlParser) parseColRef() (ColRef, error) {
	first, err := p.identifier()
	if err != nil {
		return ColRef{}, err
	}
	if p.atPunct(".") {
		p.advance()
		col, err := p.identifier()
		if err != nil {
			return ColRef{}, err
		}
		return ColRef{Qualifier: first, Column: col}, nil
	}
	return ColRef{Column: first}, nil
}

func (p *sqlParser) parseCond() (SQLCond, error) {
	left, err := p.parseColRef()
	if err != nil {
		return SQLCond{}, err
	}
	t := p.cur()
	if t.kind != sqlPunct {
		return SQLCond{}, fmt.Errorf("remotedb: expected comparison operator, found %q", t.text)
	}
	op, err := relation.ParseCmpOp(t.text)
	if err != nil {
		return SQLCond{}, err
	}
	p.advance()
	cond := SQLCond{Left: left, Op: op}
	rt := p.cur()
	if rt.kind == sqlWord && rt.text != "TRUE" && rt.text != "FALSE" && rt.text != "NULL" {
		col, err := p.parseColRef()
		if err != nil {
			return SQLCond{}, err
		}
		cond.RightIsCol = true
		cond.RightCol = col
		return cond, nil
	}
	v, err := p.parseLiteral()
	if err != nil {
		return SQLCond{}, err
	}
	cond.RightVal = v
	return cond, nil
}
