package remotedb

import (
	"context"
	"errors"

	"repro/internal/relation"
)

// ResilientStream extends the resilience policy past stream establishment:
// before it, a connection dying after frame 3 of 40 surfaced as a hard
// Stream.Err to the consumer, even though the other 37 frames were one
// re-issue away. The wrapper repairs a mid-stream transport failure in place:
//
//   - the consumer's delivered-tuple count is tracked HERE, not in the inner
//     stream — tuples the transport buffered but never handed out must be
//     re-fetched, so the count that matters is what crossed Next();
//   - on a transient inner failure, the statement is re-dispatched through
//     the owning ResilientClient's doCtx (breaker, backoff, retries — a
//     re-dispatch is a request like any other) carrying the stream's resume
//     token and the delivered count, landing on another pooled connection
//     (the dead one is quarantined);
//   - when the server honored the token (header Resumed=true), it already
//     skipped the delivered prefix; when it could not (snapshot gone — the
//     table was replaced), it served a fresh stream and the wrapper skips the
//     prefix itself. The scan path's emission order is deterministic, so both
//     concatenations equal the uninterrupted delivery (resume_test.go);
//   - the consumer observes none of this: each tuple is delivered exactly
//     once, in order, across any number of connection deaths.
//
// Only streams that carry a resume token are repaired. A tokenless stream
// (materialized execution path, v1 peer) has no determinism guarantee to skip
// against, so its mid-stream failure still surfaces as Err — exactly the old
// behavior.
//
// Termination: each successful resume must make progress (the finite result
// shrinks), so delivery completes even under repeated kills. A resume that
// delivers NOTHING new before dying again burns one of MaxRetries+1
// no-progress attempts, bounding the pathological kill-every-header case.
type ResilientStream struct {
	r   *ResilientClient
	ctx context.Context
	sql string

	inner  TupleStream
	schema *relation.Schema
	name   string

	token     string
	delivered int64 // tuples handed to the consumer across all inners
	skipLocal int64 // prefix of the current inner to drop (client-side skip)

	// lastDelivered/noProgress bound resumes that deliver nothing new.
	lastDelivered int64
	noProgress    int

	ops  int64
	sim  float64
	err  error
	done bool
}

// newResilientStream wraps a freshly established stream. A stream without a
// resume token is returned unwrapped — there is nothing the wrapper could
// repair, and the extra indirection would only cost.
func newResilientStream(r *ResilientClient, ctx context.Context, sql string, inner TupleStream) TupleStream {
	rr, ok := inner.(ResumeReporter)
	if !ok {
		return inner
	}
	token, _ := rr.ResumeState()
	if token == "" {
		return inner
	}
	return &ResilientStream{
		r:      r,
		ctx:    ctx,
		sql:    sql,
		inner:  inner,
		schema: inner.Schema(),
		name:   inner.Name(),
		token:  token,
	}
}

// Next implements relation.Iterator: tuples flow from the current inner
// stream, transparently spliced across resumes.
func (rs *ResilientStream) Next() (relation.Tuple, bool) {
	for {
		if rs.done {
			return nil, false
		}
		t, ok := rs.inner.Next()
		if ok {
			if rs.skipLocal > 0 {
				// Replay of the delivered prefix (full-restart fallback):
				// drop without delivering.
				rs.skipLocal--
				continue
			}
			rs.delivered++
			return t, true
		}
		err := rs.inner.Err()
		rs.account()
		if err == nil {
			rs.done = true
			return nil, false
		}
		if !rs.repairable(err) {
			rs.done = true
			rs.err = err
			return nil, false
		}
		if rerr := rs.resume(err); rerr != nil {
			rs.done = true
			rs.err = rerr
			return nil, false
		}
	}
}

// repairable decides whether a terminated inner stream is worth resuming:
// transient transport failure only — a semantic error or the CALLER's own
// cancellation/close is a verdict, not a fault.
func (rs *ResilientStream) repairable(err error) bool {
	if rs.ctx.Err() != nil {
		return false
	}
	if errors.Is(err, ErrStreamClosed) {
		return false
	}
	return IsTransient(err)
}

// resume re-dispatches the statement with the resume token through the
// resilience policy and splices the new stream in.
func (rs *ResilientStream) resume(cause error) error {
	if rs.delivered == rs.lastDelivered {
		rs.noProgress++
		if rs.noProgress > rs.r.cfg.MaxRetries {
			return &UnavailableError{Reason: "stream resume made no progress", Cause: cause}
		}
	} else {
		rs.lastDelivered = rs.delivered
		rs.noProgress = 0
	}
	skip := rs.delivered
	v, err := rs.r.doCtx(rs.ctx, "exec", func() (any, error) {
		return ExecStreamResumeContext(rs.ctx, rs.r.inner, rs.sql, rs.token, skip)
	})
	if err != nil {
		return err
	}
	st := v.(TupleStream)
	rs.inner = st
	rs.r.noteStreamResume()

	resumed := false
	if rr, ok := st.(ResumeReporter); ok {
		var token string
		token, resumed = rr.ResumeState()
		if token != "" {
			// The fresh header re-pins the snapshot for the NEXT failure.
			rs.token = token
		}
	}
	if resumed {
		rs.skipLocal = 0 // server already skipped the delivered prefix
	} else {
		rs.skipLocal = skip // full restart: drop the replayed prefix here
	}
	return nil
}

// account folds one terminated inner stream's cost into the whole.
func (rs *ResilientStream) account() {
	rs.ops += rs.inner.Ops()
	rs.sim += rs.inner.SimMS()
}

// Schema implements TupleStream (stable across resumes: same statement, same
// snapshot).
func (rs *ResilientStream) Schema() *relation.Schema { return rs.schema }

// Name implements TupleStream.
func (rs *ResilientStream) Name() string { return rs.name }

// Err implements TupleStream: nil after natural exhaustion — however many
// resumes it took — and the terminal error once repair was impossible or
// gave up.
func (rs *ResilientStream) Err() error { return rs.err }

// Ops implements TupleStream: the sum over every inner stream, so repeated
// partial deliveries are charged for the server work they actually caused.
func (rs *ResilientStream) Ops() int64 { return rs.ops }

// SimMS implements TupleStream: summed like Ops — resuming is not free, each
// re-dispatch pays the per-request cost again.
func (rs *ResilientStream) SimMS() float64 { return rs.sim }

// ResumeState implements ResumeReporter (for stacking and introspection).
func (rs *ResilientStream) ResumeState() (string, bool) { return rs.token, rs.skipLocal == 0 }

// Close implements TupleStream: closing an unfinished stream abandons the
// current inner (cancel frame upstream) and stops any further repair.
func (rs *ResilientStream) Close() error {
	if rs.done {
		return nil
	}
	rs.done = true
	err := rs.inner.Close()
	rs.account()
	if rs.err == nil {
		rs.err = rs.inner.Err()
	}
	return err
}
