// Package remotedb implements BrAID's remote DBMS substrate: a from-scratch
// relational engine with a SQL subset, a catalog with statistics, and two
// transports (in-process and TCP). It stands in for the INGRES / Britton-Lee
// IDM-500 servers of the paper's prototype.
//
// Because the experiments measure *relative* costs (requests issued, tuples
// shipped, response time), the package includes a deterministic virtual cost
// model: every request is charged a fixed per-request latency (the paper's
// "cost of communicating with remote DBMS is significant", Section 5.3.3(c)),
// a per-tuple transfer cost, and a per-tuple server processing cost. The
// simulated time is reported alongside real results so benchmark shapes are
// reproducible independent of host hardware.
package remotedb

// Costs is the virtual cost model, in simulated milliseconds. The defaults
// model a late-1980s workstation/Ethernet/database-server setup scaled to
// convenient magnitudes: a remote round trip is ~50 ms, shipping a tuple
// ~0.2 ms, a server-side tuple operation ~0.02 ms, and a local (CMS) tuple
// operation ~0.005 ms (main memory).
type Costs struct {
	// PerRequest is the fixed cost of one round trip to the remote DBMS.
	PerRequest float64
	// PerTuple is the cost of transferring one result tuple to the caller.
	PerTuple float64
	// PerServerOp is the cost of one tuple operation (scan, probe, insert)
	// executed by the remote DBMS.
	PerServerOp float64
	// PerLocalOp is the cost of one tuple operation executed locally by the
	// CMS query processor. It lives here so that a single Costs value
	// describes the entire cost landscape of an experiment.
	PerLocalOp float64
}

// DefaultCosts returns the standard experiment cost model.
func DefaultCosts() Costs {
	return Costs{
		PerRequest:  50,
		PerTuple:    0.2,
		PerServerOp: 0.02,
		PerLocalOp:  0.005,
	}
}

// RequestCost returns the simulated cost of a request that returned tuples
// result tuples and performed ops tuple operations on the server.
func (c Costs) RequestCost(tuples, ops int64) float64 {
	return c.PerRequest + float64(tuples)*c.PerTuple + float64(ops)*c.PerServerOp
}

// Stats accumulates transfer statistics for a client connection. All fields
// are cumulative since the connection opened. The frame/stream counters are
// populated by the v2 framed transport (PoolClient) and stay zero on the
// monolithic v1 path.
type Stats struct {
	// Requests is the number of DML requests issued.
	Requests int64
	// TuplesReturned is the total number of result tuples shipped.
	TuplesReturned int64
	// ServerOps is the total number of server-side tuple operations.
	ServerOps int64
	// SimMS is the accumulated simulated time in milliseconds.
	SimMS float64

	// FramesSent is the number of protocol frames written (requests, cancels).
	FramesSent int64
	// FramesRecv is the number of protocol frames received (headers, batches,
	// ends).
	FramesRecv int64
	// Streams is the number of streamed exec results opened.
	Streams int64
	// StreamsCanceled is how many streams were torn down mid-flight by caller
	// cancellation or Close (only that stream dies; the connection survives).
	StreamsCanceled int64
	// FirstTupleNS is the cumulative wall-clock time from issuing a streamed
	// exec to its first payload frame, over Streams streams; divide for the
	// mean first-tuple latency.
	FirstTupleNS int64

	// HealthProbes is the number of liveness pings issued by the pool's
	// active health loop (PoolOptions.HealthInterval).
	HealthProbes int64
	// ProbeFailures is how many probes found a dead connection, evicting it
	// before any request had to discover the death.
	ProbeFailures int64
	// Reconnects is the number of background re-dial attempts for broken
	// connections (successful or not; failures re-quarantine).
	Reconnects int64

	// Epoch is the highest server catalog epoch this client has observed on
	// any response (0: the peer predates epochs). It is a high-water mark,
	// not a sum: Add keeps the max.
	Epoch uint64
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Requests += o.Requests
	s.TuplesReturned += o.TuplesReturned
	s.ServerOps += o.ServerOps
	s.SimMS += o.SimMS
	s.FramesSent += o.FramesSent
	s.FramesRecv += o.FramesRecv
	s.Streams += o.Streams
	s.StreamsCanceled += o.StreamsCanceled
	s.FirstTupleNS += o.FirstTupleNS
	s.HealthProbes += o.HealthProbes
	s.ProbeFailures += o.ProbeFailures
	s.Reconnects += o.Reconnects
	if o.Epoch > s.Epoch {
		s.Epoch = o.Epoch
	}
}
