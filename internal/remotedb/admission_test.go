package remotedb

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestServerShedsOverMaxInflight saturates a MaxInflight=1 server with a
// slow (injected-delay) request and checks that a second request is shed
// immediately with the typed overload wire code, leaving both connections
// usable.
func TestServerShedsOverMaxInflight(t *testing.T) {
	e := newTestEngine(t)
	srv := NewServerWithOptions(e, ServerOptions{
		MaxInflight: 1,
		// Every request stalls 300ms inside the admission scope, modeling
		// slow server work that holds its in-flight slot.
		Faults: &ListenerFaults{Seed: 1, DelayRate: 1, Delay: 300 * time.Millisecond},
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c1, err := DialTCP(addr, DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := DialTCP(addr, DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := c1.Exec("SELECT * FROM emp"); err != nil {
			t.Errorf("slow request failed: %v", err)
		}
	}()
	time.Sleep(100 * time.Millisecond) // c1 is mid-delay, holding the slot
	_, err = c2.Exec("SELECT * FROM emp")
	if !IsOverloaded(err) {
		t.Fatalf("saturated server returned %v, want ErrOverloaded", err)
	}
	if !IsTransient(err) {
		t.Fatal("shed requests must be transient (retryable after backoff)")
	}
	wg.Wait()
	if st := srv.ServerStats(); st.Shed != 1 {
		t.Fatalf("server shed count = %d, want 1", st.Shed)
	}
	// A shed response leaves the gob stream intact: the same connection
	// works once load clears.
	if _, err := c2.Exec("SELECT * FROM emp"); err != nil {
		t.Fatalf("connection unusable after shed: %v", err)
	}
}

// TestServerRequestTimeout checks that a request still executing at the
// server's deadline is abandoned and answered with the typed deadline wire
// code, quickly.
func TestServerRequestTimeout(t *testing.T) {
	e := newTestEngine(t)
	srv := NewServerWithOptions(e, ServerOptions{
		RequestTimeout: 50 * time.Millisecond,
		Faults:         &ListenerFaults{Seed: 1, DelayRate: 1, Delay: 2 * time.Second},
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := DialTCP(addr, DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, err = c.Exec("SELECT * FROM emp")
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("timed-out request returned %v, want ErrDeadlineExceeded", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("deadline response took %v, want ~50ms", d)
	}
	if st := srv.ServerStats(); st.Timeouts != 1 {
		t.Fatalf("server timeout count = %d, want 1", st.Timeouts)
	}
}

// TestTCPExecCtxCancel checks that a caller deadline interrupts a blocked
// socket read (the server is stalling), surfaces the context error as the
// transport cause, and that redial restores service afterwards.
func TestTCPExecCtxCancel(t *testing.T) {
	e := newTestEngine(t)
	srv := NewServerWithOptions(e, ServerOptions{
		Faults: &ListenerFaults{Seed: 1, DelayRate: 1, Delay: 300 * time.Millisecond},
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := DialTCPOpts(addr, TCPOptions{Costs: DefaultCosts(), Redial: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.ExecCtx(ctx, "SELECT * FROM emp")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("canceled round trip returned %v, want context.DeadlineExceeded cause", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("cancellation took %v, want ~50ms", d)
	}
	// The interrupted exchange desynced the stream; the next call redials.
	if _, err := c.Exec("SELECT * FROM emp"); err != nil {
		t.Fatalf("redial after cancellation failed: %v", err)
	}
	if c.Redials() < 2 {
		t.Fatalf("redials = %d, want the post-cancel call to have redialed", c.Redials())
	}
}
