package remotedb

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// Server exposes an Engine over TCP with a gob-encoded request/response
// protocol. This realizes the paper's deployment: the DBMS "is realized on a
// separate system (database server)" reached via "a standard communication
// protocol" (Section 5.5). Each accepted connection is served concurrently.
type Server struct {
	engine *Engine

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]bool
	closed   bool
	wg       sync.WaitGroup
}

// NewServer wraps the engine in a protocol server.
func NewServer(engine *Engine) *Server {
	return &Server{engine: engine, conns: make(map[net.Conn]bool)}
}

// Listen binds the server to addr (e.g. "127.0.0.1:0") and starts accepting
// connections in the background. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req wireRequest
		if err := dec.Decode(&req); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				// Protocol error: best effort to report, then drop.
				_ = enc.Encode(wireResponse{Err: fmt.Sprintf("protocol: %v", err)})
			}
			return
		}
		resp := s.handle(&req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *Server) handle(req *wireRequest) wireResponse {
	switch req.Op {
	case "exec":
		rel, ops, err := s.engine.ExecuteSQL(req.SQL)
		if err != nil {
			return wireResponse{Err: err.Error()}
		}
		return wireResponse{Rel: toWireRelation(rel), Ops: ops}
	case "schema":
		sch, err := s.engine.Schema(req.Name)
		if err != nil {
			return wireResponse{Err: err.Error()}
		}
		var attrs []wireAttr
		for _, a := range sch.Attrs() {
			attrs = append(attrs, wireAttr{Name: a.Name, Kind: uint8(a.Kind)})
		}
		return wireResponse{Attrs: attrs}
	case "stats":
		st, err := s.engine.Stats(req.Name)
		if err != nil {
			return wireResponse{Err: err.Error()}
		}
		return wireResponse{Stats: st}
	case "tables":
		return wireResponse{Tables: s.engine.Tables()}
	default:
		return wireResponse{Err: fmt.Sprintf("remotedb: unknown op %q", req.Op)}
	}
}

// Close stops accepting, closes all connections, and waits for handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}
