package remotedb

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Server exposes an Engine over TCP with a gob-encoded request/response
// protocol. This realizes the paper's deployment: the DBMS "is realized on a
// separate system (database server)" reached via "a standard communication
// protocol" (Section 5.5). Each accepted connection is served concurrently.
type Server struct {
	engine *Engine
	opts   ServerOptions

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]bool
	closed   bool
	wg       sync.WaitGroup

	faultMu  sync.Mutex
	faultRng *rand.Rand
}

// ServerOptions configures connection handling and fault injection.
type ServerOptions struct {
	// IdleTimeout drops a connection whose peer sends no request for this
	// long, so dead peers don't pin handler goroutines forever (0: never).
	IdleTimeout time.Duration
	// Faults, when non-nil, makes the listener flaky for fault-tolerance
	// experiments: requests are delayed or their connection dropped from a
	// deterministically seeded stream.
	Faults *ListenerFaults
}

// ListenerFaults parameterizes server-side fault injection, the counterpart
// of the client-side FaultClient for experiments that need the *wire* to
// fail (dropped connections exercise client redial; delays exercise client
// deadlines).
type ListenerFaults struct {
	// Seed seeds the deterministic fault stream.
	Seed int64
	// DropRate is the per-request probability of closing the connection
	// without responding.
	DropRate float64
	// DelayRate is the per-request probability of stalling for Delay before
	// handling the request.
	DelayRate float64
	// Delay is the stall duration for delay faults.
	Delay time.Duration
}

// NewServer wraps the engine in a protocol server with default options.
func NewServer(engine *Engine) *Server {
	return NewServerWithOptions(engine, ServerOptions{})
}

// NewServerWithOptions wraps the engine in a protocol server.
func NewServerWithOptions(engine *Engine, opts ServerOptions) *Server {
	s := &Server{engine: engine, opts: opts, conns: make(map[net.Conn]bool)}
	if opts.Faults != nil {
		s.faultRng = rand.New(rand.NewSource(opts.Faults.Seed))
	}
	return s
}

// Listen binds the server to addr (e.g. "127.0.0.1:0") and starts accepting
// connections in the background. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// rollFault decides the fate of one request on a flaky listener: drop the
// connection (return false), possibly after a delay.
func (s *Server) rollFault() (keep bool) {
	f := s.opts.Faults
	if f == nil {
		return true
	}
	s.faultMu.Lock()
	roll := s.faultRng.Float64()
	s.faultMu.Unlock()
	switch {
	case roll < f.DropRate:
		return false
	case roll < f.DropRate+f.DelayRate:
		time.Sleep(f.Delay)
	}
	return true
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		if s.opts.IdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout))
		}
		var req wireRequest
		if err := dec.Decode(&req); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !isTimeout(err) {
				// Protocol error: best effort to report, then drop.
				_ = enc.Encode(wireResponse{Err: fmt.Sprintf("protocol: %v", err)})
			}
			return
		}
		if !s.rollFault() {
			return // injected dropped connection
		}
		resp := s.handle(&req)
		if err := enc.Encode(resp); err != nil {
			return
		}
		s.mu.Lock()
		draining := s.closed
		s.mu.Unlock()
		if draining {
			return // shutdown: response written, now let go of the conn
		}
	}
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

func (s *Server) handle(req *wireRequest) wireResponse {
	switch req.Op {
	case "exec":
		rel, ops, err := s.engine.ExecuteSQL(req.SQL)
		if err != nil {
			return wireResponse{Err: err.Error()}
		}
		return wireResponse{Rel: toWireRelation(rel), Ops: ops}
	case "schema":
		sch, err := s.engine.Schema(req.Name)
		if err != nil {
			return wireResponse{Err: err.Error()}
		}
		var attrs []wireAttr
		for _, a := range sch.Attrs() {
			attrs = append(attrs, wireAttr{Name: a.Name, Kind: uint8(a.Kind)})
		}
		return wireResponse{Attrs: attrs}
	case "stats":
		st, err := s.engine.Stats(req.Name)
		if err != nil {
			return wireResponse{Err: err.Error()}
		}
		return wireResponse{Stats: st}
	case "tables":
		return wireResponse{Tables: s.engine.Tables()}
	default:
		return wireResponse{Err: fmt.Sprintf("remotedb: unknown op %q", req.Op)}
	}
}

// Close stops accepting, closes all connections immediately, and waits for
// handlers to exit. In-flight requests are aborted; use Shutdown to drain
// them first.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Shutdown stops accepting and drains gracefully: in-flight requests finish
// and their responses are written, while idle connections are unblocked by
// an immediate read deadline. Connections still busy after grace are closed
// forcibly (grace <= 0 waits forever).
func (s *Server) Shutdown(grace time.Duration) error {
	s.mu.Lock()
	s.closed = true
	ln := s.listener
	now := time.Now()
	for c := range s.conns {
		// Unblock pending reads; writes (in-flight responses) still proceed.
		c.SetReadDeadline(now)
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	if grace <= 0 {
		<-done
		return err
	}
	timer := time.NewTimer(grace)
	defer timer.Stop()
	select {
	case <-done:
	case <-timer.C:
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
	}
	return err
}
