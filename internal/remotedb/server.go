package remotedb

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Server exposes an Engine over TCP with a gob-encoded request/response
// protocol. This realizes the paper's deployment: the DBMS "is realized on a
// separate system (database server)" reached via "a standard communication
// protocol" (Section 5.5). Each accepted connection is served concurrently.
type Server struct {
	engine *Engine
	opts   ServerOptions

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]bool
	closed   bool
	wg       sync.WaitGroup

	// inflight is the admission semaphore (nil: unbounded).
	inflight chan struct{}
	shed     atomic.Int64
	timeouts atomic.Int64

	framesSent      atomic.Int64
	streamsCanceled atomic.Int64
	streamKills     atomic.Int64
	streamResumes   atomic.Int64

	// frameLat observes per-frame write latency in microseconds (nil when no
	// metrics registry is configured — the write path then takes no timestamps).
	frameLat *obs.Histogram

	faultMu  sync.Mutex
	faultRng *rand.Rand
}

// ServerOptions configures connection handling, admission control, and fault
// injection.
type ServerOptions struct {
	// IdleTimeout drops a connection whose peer sends no request for this
	// long, so dead peers don't pin handler goroutines forever (0: never).
	IdleTimeout time.Duration
	// WriteTimeout bounds writing one response; a peer that stops reading
	// breaks its connection instead of pinning a handler (0: never).
	WriteTimeout time.Duration
	// MaxInflight bounds concurrently executing requests across all
	// connections; excess requests are shed immediately with a distinct wire
	// code (overloaded), which clients surface as ErrOverloaded (0: no bound).
	MaxInflight int
	// RequestTimeout bounds one request's engine execution; a request still
	// running at the deadline is abandoned (it finishes in the background;
	// its result is discarded) and answered with a deadline wire code
	// (0: no bound).
	RequestTimeout time.Duration
	// Faults, when non-nil, makes the listener flaky for fault-tolerance
	// experiments: requests are delayed or their connection dropped from a
	// deterministically seeded stream.
	Faults *ListenerFaults
	// MaxProto caps the wire protocol version this server negotiates
	// (0: the build's maximum). Set 1 to force every connection onto the
	// legacy monolithic protocol regardless of what clients offer.
	MaxProto int
	// FrameTuples is the default response frame size, in tuples, for framed
	// (v2) connections whose client sent no preference (0: DefaultFrameTuples).
	FrameTuples int
	// ConnStreams bounds how many requests of one framed connection execute
	// concurrently (0: 1). The default of one engine slot per connection
	// models the paper's session-oriented DBMS: a connection is a session and
	// its requests are served in order, while the *transfer* of results still
	// interleaves at frame granularity. Pool clients get parallelism by
	// opening more connections, not by widening one.
	ConnStreams int
	// Tracer, when non-nil, records a server-side span per framed request.
	// Requests carrying a wire trace ID (wireRequest.Trace) stitch those spans
	// into the client's trace.
	Tracer *obs.Tracer
	// Metrics, when non-nil, receives the server's admission/stream counters
	// (read-through over the existing atomics) and a frame-write latency
	// histogram under the braid_server_* namespace.
	Metrics *obs.Registry
	// SlowQuery enables the structured slow-query log: an exec request whose
	// end-to-end handling takes at least this long is logged to SlowLog with
	// its statement hash, plan-cache outcome, row/frame counts, and duration
	// (0: disabled; the hot path then takes no timestamps).
	SlowQuery time.Duration
	// SlowLog is the destination of the slow-query log (nil with SlowQuery
	// set: slog.Default()).
	SlowLog *slog.Logger
}

// ServerStats are cumulative admission/deadline/streaming counters.
type ServerStats struct {
	Shed     int64 // requests rejected by the MaxInflight admission limit
	Timeouts int64 // requests abandoned at RequestTimeout
	// FramesSent counts v2 protocol frames written (headers, batches, ends).
	FramesSent int64
	// StreamsCanceled counts v2 streams torn down mid-flight by a client
	// cancel frame or connection-context cancellation.
	StreamsCanceled int64
	// StreamKills counts connections killed mid-stream by injected stream
	// faults (ListenerFaults.StreamKillRate).
	StreamKills int64
	// StreamResumes counts re-issued streamed requests the server honored by
	// skipping already-delivered tuples server-side (header Resumed=true).
	StreamResumes int64
}

// ListenerFaults parameterizes server-side fault injection, the counterpart
// of the client-side FaultClient for experiments that need the *wire* to
// fail (dropped connections exercise client redial; delays exercise client
// deadlines).
type ListenerFaults struct {
	// Seed seeds the deterministic fault stream.
	Seed int64
	// DropRate is the per-request probability of closing the connection
	// without responding.
	DropRate float64
	// DelayRate is the per-request probability of stalling for Delay before
	// handling the request.
	DelayRate float64
	// Delay is the stall duration for delay faults.
	Delay time.Duration
	// StreamKillRate is the per-stream probability (v2 streamed results only)
	// of killing the CONNECTION mid-stream, after StreamKillAfter response
	// frames — the fault resumable streams exist to survive. Unlike DropRate,
	// which drops before any response, a stream kill leaves the client holding
	// a delivered prefix.
	StreamKillRate float64
	// StreamKillAfter is the number of response frames (header included) to
	// deliver before a stream-kill fault severs the connection (<=0: 1, so the
	// client always holds at least the header).
	StreamKillAfter int
}

// NewServer wraps the engine in a protocol server with default options.
func NewServer(engine *Engine) *Server {
	return NewServerWithOptions(engine, ServerOptions{})
}

// NewServerWithOptions wraps the engine in a protocol server.
func NewServerWithOptions(engine *Engine, opts ServerOptions) *Server {
	s := &Server{engine: engine, opts: opts, conns: make(map[net.Conn]bool)}
	if opts.MaxInflight > 0 {
		s.inflight = make(chan struct{}, opts.MaxInflight)
	}
	if opts.Faults != nil {
		s.faultRng = rand.New(rand.NewSource(opts.Faults.Seed))
	}
	if opts.SlowQuery > 0 && opts.SlowLog == nil {
		s.opts.SlowLog = slog.Default()
	}
	if reg := opts.Metrics; reg != nil {
		// Read-through counters: the atomics on Server stay authoritative, the
		// registry samples them at scrape time — no double accounting.
		reg.CounterFunc("braid_server_shed_total",
			"Requests rejected by the MaxInflight admission limit.", s.shed.Load)
		reg.CounterFunc("braid_server_timeouts_total",
			"Requests abandoned at the server request deadline.", s.timeouts.Load)
		reg.CounterFunc("braid_server_frames_sent_total",
			"Wire v2 response frames written (headers, batches, ends).", s.framesSent.Load)
		reg.CounterFunc("braid_server_streams_canceled_total",
			"Wire v2 streams torn down mid-flight by cancel or disconnect.", s.streamsCanceled.Load)
		reg.CounterFunc("braid_server_stream_kills_total",
			"Connections severed mid-stream by injected stream faults.", s.streamKills.Load)
		reg.CounterFunc("braid_server_stream_resumes_total",
			"Re-issued streamed requests honored with a server-side skip.", s.streamResumes.Load)
		reg.CounterFunc("braid_server_plan_cache_hits_total",
			"Compiled plans served from the statement-hash plan cache.",
			func() int64 { return engine.PlanCacheStats().Hits })
		reg.CounterFunc("braid_server_plan_cache_misses_total",
			"SELECT statements compiled because no live cached plan matched.",
			func() int64 { return engine.PlanCacheStats().Misses })
		reg.GaugeFunc("braid_server_plan_cache_hit_rate",
			"Plan-cache hits / (hits + misses) over the server's lifetime.",
			func() float64 {
				st := engine.PlanCacheStats()
				if total := st.Hits + st.Misses; total > 0 {
					return float64(st.Hits) / float64(total)
				}
				return 0
			})
		s.frameLat = reg.Histogram("braid_server_frame_write_us",
			"Latency of one response frame write, microseconds.")
		reg.CounterFunc("braid_engine_parallel_streams_total",
			"Plan executions that ran on the morsel-parallel worker pool.",
			func() int64 { return engine.ParallelStats().Streams })
		reg.CounterFunc("braid_engine_parallel_morsels_total",
			"Morsels claimed by parallel workers across all executions.",
			func() int64 { return engine.ParallelStats().Morsels })
		reg.CounterFunc("braid_engine_parallel_workers_total",
			"Parallel worker goroutines launched across all executions.",
			func() int64 { return engine.ParallelStats().Workers })
		reg.CounterFunc("braid_engine_parallel_fallbacks_total",
			"Parallel-eligible plans executed serially (below the row threshold or parallelism 1).",
			func() int64 { return engine.ParallelStats().SerialFallbacks })
		reg.GaugeFunc("braid_engine_parallelism",
			"Configured worker-pool bound for morsel-parallel execution.",
			func() float64 { return float64(engine.Parallelism()) })
	}
	return s
}

// ServerStats returns the cumulative admission/deadline counters.
func (s *Server) ServerStats() ServerStats {
	return ServerStats{
		Shed:            s.shed.Load(),
		Timeouts:        s.timeouts.Load(),
		FramesSent:      s.framesSent.Load(),
		StreamsCanceled: s.streamsCanceled.Load(),
		StreamKills:     s.streamKills.Load(),
		StreamResumes:   s.streamResumes.Load(),
	}
}

// maxProto is the highest protocol version this server will accept.
func (s *Server) maxProto() int {
	if s.opts.MaxProto > 0 {
		return s.opts.MaxProto
	}
	return protoMax
}

// Listen binds the server to addr (e.g. "127.0.0.1:0") and starts accepting
// connections in the background. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// rollFault decides the fate of one request on a flaky listener: drop the
// connection (return false), possibly after a delay.
func (s *Server) rollFault() (keep bool) {
	keep, delay := s.rollFault2()
	if delay > 0 {
		time.Sleep(delay)
	}
	return keep
}

// rollFault2 is the split form used by the framed path: the drop decision is
// made synchronously (it closes the connection) while the delay is returned
// for the caller to serve inside its deadline-bounded execution, so injected
// delays model slow server work under the request clock on both protocols.
func (s *Server) rollFault2() (keep bool, delay time.Duration) {
	f := s.opts.Faults
	if f == nil {
		return true, 0
	}
	s.faultMu.Lock()
	roll := s.faultRng.Float64()
	s.faultMu.Unlock()
	switch {
	case roll < f.DropRate:
		return false, 0
	case roll < f.DropRate+f.DelayRate:
		return true, f.Delay
	}
	return true, 0
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		if s.opts.IdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout))
		}
		var req wireRequest
		if err := dec.Decode(&req); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !isTimeout(err) {
				// Protocol error: best effort to report, then drop.
				_ = enc.Encode(wireResponse{Err: fmt.Sprintf("protocol: %v", err)})
			}
			return
		}
		if req.Op == "hello" {
			// Protocol negotiation rides the v1 exchange, so it works before
			// either side knows the other's version. Agreeing on v2 flips this
			// connection into framed mode on the same encoder/decoder pair.
			proto := protoV1
			if s.maxProto() >= protoV2 && req.Proto >= protoV2 {
				proto = protoV2
			}
			if s.opts.WriteTimeout > 0 {
				conn.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
			}
			if err := enc.Encode(wireResponse{Proto: proto}); err != nil {
				return
			}
			if s.opts.WriteTimeout > 0 {
				conn.SetWriteDeadline(time.Time{})
			}
			if proto >= protoV2 {
				s.serveFramed(conn, enc, dec, clampFrameTuples(req.FrameTuples, s.opts.FrameTuples))
				return
			}
			continue
		}
		resp, keep := s.dispatch(&req)
		if !keep {
			return // injected dropped connection
		}
		resp.Epoch = s.engine.Epoch()
		if s.opts.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
		if s.opts.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Time{})
		}
		s.mu.Lock()
		draining := s.closed
		s.mu.Unlock()
		if draining {
			return // shutdown: response written, now let go of the conn
		}
	}
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// dispatch runs one request through admission control, fault injection, and
// the request deadline. keep=false means an injected fault dropped the
// connection. Fault delays run inside the admission scope — they model slow
// server work, so they hold an in-flight slot and can push the server into
// shedding, which is exactly what overload tests need.
func (s *Server) dispatch(req *wireRequest) (resp wireResponse, keep bool) {
	release := func() {}
	if s.inflight != nil {
		select {
		case s.inflight <- struct{}{}:
			release = func() { <-s.inflight }
		default:
			s.shed.Add(1)
			return wireResponse{Code: wireCodeOverloaded, Err: ErrOverloaded.Error()}, true
		}
	}
	if s.opts.RequestTimeout <= 0 {
		defer release()
		if !s.rollFault() {
			return wireResponse{}, false // injected dropped connection
		}
		return s.handle(context.Background(), req), true
	}
	// Deadline-bounded execution: fault delays and the engine call both run
	// under the request clock (an injected delay models slow server work).
	// Work still running at the deadline is abandoned — it completes in the
	// background and releases its slot then, so abandoned work keeps counting
	// against MaxInflight while it burns CPU.
	type outcome struct {
		resp wireResponse
		keep bool
	}
	ch := make(chan outcome, 1)
	go func() {
		defer release()
		if !s.rollFault() {
			ch <- outcome{wireResponse{}, false} // injected dropped connection
			return
		}
		ch <- outcome{s.handle(context.Background(), req), true}
	}()
	timer := time.NewTimer(s.opts.RequestTimeout)
	defer timer.Stop()
	select {
	case o := <-ch:
		return o.resp, o.keep
	case <-timer.C:
		s.timeouts.Add(1)
		return wireResponse{Code: wireCodeDeadline, Err: ErrDeadlineExceeded.Error()}, true
	}
}

// slowClock returns the start timestamp for the slow-query log, zero when the
// log is disabled so the hot path pays no time.Now when off.
func (s *Server) slowClock() time.Time {
	if s.opts.SlowQuery <= 0 {
		return time.Time{}
	}
	return time.Now()
}

// logSlow emits one slow-query record when logging is enabled and the request
// ran at least SlowQuery. start is the slowClock() value (zero: disabled).
// dop is the degree of parallelism the statement executed with (1: serial),
// so a slow record shows whether the parallel path was even in play.
func (s *Server) logSlow(start time.Time, sql string, cached bool, rows, frames int64, dop int) {
	if start.IsZero() {
		return
	}
	d := time.Since(start)
	if d < s.opts.SlowQuery {
		return
	}
	s.opts.SlowLog.Info("slow query",
		"stmt_hash", fmt.Sprintf("%016x", StatementHash(sql)),
		"plan_cache_hit", cached,
		"rows", rows,
		"frames", frames,
		"dop", dop,
		"dur_ms", float64(d.Nanoseconds())/1e6,
	)
}

func (s *Server) handle(ctx context.Context, req *wireRequest) wireResponse {
	switch req.Op {
	case "exec":
		start := s.slowClock()
		rel, ops, err := s.engine.ExecuteSQLCtx(ctx, req.SQL)
		if err != nil {
			return wireResponse{Err: err.Error()}
		}
		var rows int64
		if rel != nil {
			rows = int64(len(rel.Tuples()))
		}
		s.logSlow(start, req.SQL, false, rows, 0, 1)
		return wireResponse{Rel: toWireRelation(rel), Ops: ops}
	case "schema":
		sch, err := s.engine.Schema(req.Name)
		if err != nil {
			return wireResponse{Err: err.Error()}
		}
		var attrs []wireAttr
		for _, a := range sch.Attrs() {
			attrs = append(attrs, wireAttr{Name: a.Name, Kind: uint8(a.Kind)})
		}
		return wireResponse{Attrs: attrs}
	case "stats":
		st, err := s.engine.Stats(req.Name)
		if err != nil {
			return wireResponse{Err: err.Error()}
		}
		return wireResponse{Stats: st}
	case "tables":
		return wireResponse{Tables: s.engine.Tables()}
	case "ping":
		// Liveness probe: succeed without touching the engine. Old servers
		// answer with their unknown-op error, which probes also accept as
		// proof of life (wire.go).
		return wireResponse{}
	default:
		return wireResponse{Err: fmt.Sprintf("remotedb: unknown op %q", req.Op)}
	}
}

// Close stops accepting, closes all connections immediately, and waits for
// handlers to exit. In-flight requests are aborted; use Shutdown to drain
// them first.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Shutdown stops accepting and drains gracefully: in-flight requests finish
// and their responses are written, while idle connections are unblocked by
// an immediate read deadline. Connections still busy after grace are closed
// forcibly (grace <= 0 waits forever).
func (s *Server) Shutdown(grace time.Duration) error {
	s.mu.Lock()
	s.closed = true
	ln := s.listener
	now := time.Now()
	for c := range s.conns {
		// Unblock pending reads; writes (in-flight responses) still proceed.
		c.SetReadDeadline(now)
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	if grace <= 0 {
		<-done
		return err
	}
	timer := time.NewTimer(grace)
	defer timer.Stop()
	select {
	case <-done:
	case <-timer.C:
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
	}
	return err
}
