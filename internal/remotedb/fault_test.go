package remotedb

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/relation"
)

// collectFaults runs n Execs against a freshly seeded FaultClient and
// returns which requests failed.
func collectFaults(t *testing.T, seed int64, n int) []bool {
	t.Helper()
	e := newTestEngine(t)
	fc := NewFaultClient(NewInProcClient(e, DefaultCosts()), FaultConfig{
		Seed:      seed,
		ErrorRate: 0.3,
		DropRate:  0.1,
	})
	out := make([]bool, n)
	for i := range out {
		_, err := fc.Exec("SELECT * FROM dept")
		out[i] = err != nil
	}
	return out
}

func TestFaultClientDeterministic(t *testing.T) {
	a := collectFaults(t, 42, 200)
	b := collectFaults(t, 42, 200)
	failures := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault stream diverged at request %d", i)
		}
		if a[i] {
			failures++
		}
	}
	if failures == 0 || failures == len(a) {
		t.Fatalf("fault mix degenerate: %d/%d failed", failures, len(a))
	}
	c := collectFaults(t, 43, 200)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical fault streams")
	}
}

func TestFaultClientDownAndTransience(t *testing.T) {
	e := newTestEngine(t)
	fc := NewFaultClient(NewInProcClient(e, DefaultCosts()), FaultConfig{Seed: 1})
	if _, err := fc.Exec("SELECT * FROM dept"); err != nil {
		t.Fatalf("no faults configured, exec should work: %v", err)
	}
	fc.SetDown(true)
	_, err := fc.Exec("SELECT * FROM dept")
	if err == nil {
		t.Fatal("down server should refuse")
	}
	if !IsTransient(err) || !IsUnavailable(err) {
		t.Fatalf("down error should be transient and unavailable: %v", err)
	}
	if _, err := fc.Tables(); err == nil {
		t.Fatal("all remote ops should fail while down")
	}
	fc.SetDown(false)
	if _, err := fc.Exec("SELECT * FROM dept"); err != nil {
		t.Fatalf("restart should restore service: %v", err)
	}
	if fc.Counts().Refusals != 2 {
		t.Fatalf("refusals = %d, want 2", fc.Counts().Refusals)
	}
}

func TestResilientAbsorbsTransientFaults(t *testing.T) {
	e := newTestEngine(t)
	fc := NewFaultClient(NewInProcClient(e, DefaultCosts()), FaultConfig{
		Seed:      7,
		ErrorRate: 0.25,
		DropRate:  0.05,
	})
	rc := NewResilientClient(fc, Resilience{
		MaxRetries:      6,
		BaseBackoff:     time.Microsecond,
		BreakerFailures: -1, // isolate retry behaviour
		Sleep:           func(time.Duration) {},
	})
	failed := 0
	for i := 0; i < 100; i++ {
		if _, err := rc.Exec("SELECT * FROM dept"); err != nil {
			failed++
		}
	}
	st := rc.ResilienceStats()
	if st.Retries == 0 {
		t.Fatal("expected retries under 30% fault rate")
	}
	// P(7 consecutive faults) ≈ 0.3^7; the deterministic seed yields none.
	if failed != 0 {
		t.Fatalf("%d requests failed despite 6 retries (retries=%d)", failed, st.Retries)
	}
	if got := fc.Counts(); got.Errors+got.Drops == 0 {
		t.Fatal("fault client injected nothing")
	}
}

func TestResilientSemanticErrorsPassThrough(t *testing.T) {
	e := newTestEngine(t)
	rc := NewResilientClient(NewInProcClient(e, DefaultCosts()), Resilience{
		MaxRetries: 5,
		Sleep:      func(time.Duration) {},
	})
	_, err := rc.Exec("SELECT * FROM missing")
	if err == nil {
		t.Fatal("unknown table should error")
	}
	if IsUnavailable(err) {
		t.Fatalf("semantic error misclassified as unavailability: %v", err)
	}
	st := rc.ResilienceStats()
	if st.Retries != 0 || st.Failures != 0 || st.BreakerOpens != 0 {
		t.Fatalf("semantic error should not touch retry/breaker counters: %+v", st)
	}
	if rc.Breaker() != BreakerClosed {
		t.Fatalf("breaker = %v, want closed", rc.Breaker())
	}
}

// flakyStub is a Client stub whose Exec fails with a transport error while
// failing is set, and counts calls that reach it.
type flakyStub struct {
	mu      sync.Mutex
	failing bool
	hang    time.Duration
	calls   int
}

func (s *flakyStub) Exec(string) (*Result, error) {
	s.mu.Lock()
	s.calls++
	failing, hang := s.failing, s.hang
	s.mu.Unlock()
	if hang > 0 {
		time.Sleep(hang)
	}
	if failing {
		return nil, &TransportError{Op: "exec", Err: errors.New("stub down")}
	}
	return &Result{SimMS: 1}, nil
}
func (s *flakyStub) set(failing bool) {
	s.mu.Lock()
	s.failing = failing
	s.mu.Unlock()
}

func (s *flakyStub) callCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

func TestBreakerLifecycle(t *testing.T) {
	stub := &flakyStub{failing: true}
	now := time.Unix(0, 0)
	var nowMu sync.Mutex
	clock := func() time.Time {
		nowMu.Lock()
		defer nowMu.Unlock()
		return now
	}
	tick := func(d time.Duration) {
		nowMu.Lock()
		now = now.Add(d)
		nowMu.Unlock()
	}
	rc := NewResilientClient(clientStub{stub}, Resilience{
		MaxRetries:      -1, // no retries: one attempt per request
		BreakerFailures: 2,
		BreakerCooldown: time.Second,
		Sleep:           func(time.Duration) {},
		Now:             clock,
	})

	// Two consecutive failures open the breaker.
	for i := 0; i < 2; i++ {
		if _, err := rc.Exec("x"); !IsUnavailable(err) {
			t.Fatalf("request %d: want unavailable, got %v", i, err)
		}
	}
	if rc.Breaker() != BreakerOpen {
		t.Fatalf("breaker = %v, want open", rc.Breaker())
	}
	if rc.ResilienceStats().BreakerOpens != 1 {
		t.Fatalf("opens = %d, want 1", rc.ResilienceStats().BreakerOpens)
	}
	if rc.Available() {
		t.Fatal("open breaker inside cooldown should report unavailable")
	}

	// While open, requests fail fast without reaching the inner client.
	calls := stub.callCount()
	if _, err := rc.Exec("x"); !IsUnavailable(err) {
		t.Fatalf("want fail-fast unavailable, got %v", err)
	}
	if stub.callCount() != calls {
		t.Fatal("open breaker let a request through")
	}
	if rc.ResilienceStats().FastFails != 1 {
		t.Fatalf("fastFails = %d, want 1", rc.ResilienceStats().FastFails)
	}

	// After the cooldown a probe goes through; still failing -> reopen.
	tick(time.Second + time.Millisecond)
	if _, err := rc.Exec("x"); !IsUnavailable(err) {
		t.Fatalf("probe should fail: %v", err)
	}
	if stub.callCount() != calls+1 {
		t.Fatal("half-open should admit exactly one probe")
	}
	if rc.Breaker() != BreakerOpen || rc.ResilienceStats().BreakerOpens != 2 {
		t.Fatalf("failed probe should reopen: %v opens=%d", rc.Breaker(), rc.ResilienceStats().BreakerOpens)
	}

	// Server recovers; after the next cooldown the probe closes the breaker.
	stub.set(false)
	tick(time.Second + time.Millisecond)
	if _, err := rc.Exec("x"); err != nil {
		t.Fatalf("recovered probe should succeed: %v", err)
	}
	if rc.Breaker() != BreakerClosed || !rc.Available() {
		t.Fatalf("breaker = %v, want closed and available", rc.Breaker())
	}
	if _, err := rc.Exec("x"); err != nil {
		t.Fatalf("closed breaker should serve normally: %v", err)
	}
}

func TestResilientDeadlineCatchesHangs(t *testing.T) {
	stub := &flakyStub{hang: 2 * time.Second}
	rc := NewResilientClient(clientStub{stub}, Resilience{
		Deadline:        30 * time.Millisecond,
		MaxRetries:      -1,
		BreakerFailures: 1,
		BreakerCooldown: time.Minute,
		Sleep:           func(time.Duration) {},
	})
	start := time.Now()
	_, err := rc.Exec("x")
	elapsed := time.Since(start)
	if !IsUnavailable(err) || !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("want unavailable wrapping deadline, got %v", err)
	}
	if elapsed > time.Second {
		t.Fatalf("deadline did not bound the hang: %v", elapsed)
	}
	st := rc.ResilienceStats()
	if st.DeadlinesExceeded != 1 || st.Failures != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Breaker opened on the hang: the next call fails instantly.
	start = time.Now()
	if _, err := rc.Exec("x"); !IsUnavailable(err) {
		t.Fatalf("want fail-fast, got %v", err)
	}
	if time.Since(start) > 10*time.Millisecond {
		t.Fatal("fail-fast was not fast")
	}
}

// TestResilientFaultMatrix exercises the resilient client against every
// injected fault kind at once: errors, drops, latency spikes, and hangs
// caught by the deadline.
func TestResilientFaultMatrix(t *testing.T) {
	e := newTestEngine(t)
	fc := NewFaultClient(NewInProcClient(e, DefaultCosts()), FaultConfig{
		Seed:        99,
		ErrorRate:   0.15,
		DropRate:    0.05,
		HangRate:    0.05,
		HangFor:     300 * time.Millisecond,
		LatencyRate: 0.2,
		Latency:     time.Millisecond,
	})
	rc := NewResilientClient(fc, Resilience{
		Deadline:        60 * time.Millisecond,
		MaxRetries:      5,
		BaseBackoff:     time.Microsecond,
		BreakerFailures: -1,
		Sleep:           func(time.Duration) {},
	})
	failed := 0
	for i := 0; i < 60; i++ {
		start := time.Now()
		_, err := rc.Exec("SELECT * FROM emp")
		if err != nil {
			failed++
			if !IsUnavailable(err) {
				t.Fatalf("request %d: unexpected error class: %v", i, err)
			}
		}
		if d := time.Since(start); d > 2*time.Second {
			t.Fatalf("request %d took %v despite deadline", i, d)
		}
	}
	st := rc.ResilienceStats()
	counts := fc.Counts()
	if counts.Errors == 0 || counts.Latencies == 0 {
		t.Fatalf("fault mix not exercised: %+v", counts)
	}
	if st.Retries == 0 {
		t.Fatal("no retries under a 25% fault rate")
	}
	if failed > 5 {
		t.Fatalf("%d/60 failed despite retries (stats %+v)", failed, st)
	}
}

// clientStub adapts flakyStub (which only implements Exec meaningfully) to
// the full Client interface.
type clientStub struct{ s *flakyStub }

func (c clientStub) Exec(sql string) (*Result, error) { return c.s.Exec(sql) }
func (c clientStub) RelationSchema(string, int) (*relation.Schema, error) {
	return nil, errors.New("unused")
}
func (c clientStub) TableStats(string) (TableStats, error) { return TableStats{}, nil }
func (c clientStub) Tables() ([]string, error)             { return nil, nil }
func (c clientStub) Stats() Stats                          { return Stats{} }
func (c clientStub) Close() error                          { return nil }
