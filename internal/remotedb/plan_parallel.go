package remotedb

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/relation"
)

// Morsel-driven parallel execution. A compiled Plan stays a single immutable
// tree; what parallelizes is a *section* of it — the driver scan at the
// bottom of the left (probe) spine, the equi-join/filter/project chain above
// it, and optionally the aggregation that tops the chain. The driver's bound
// snapshot is split into fixed-size morsels claimed from an atomic cursor by
// a bounded pool of workers; each worker runs a private copy of the section
// pipeline (per-worker arenas, per-worker op counters, per-worker
// cancellation checkpoints) and feeds a bounded exchange channel the
// single-threaded consumer pulls from. Join build sides are drained once on
// the consumer, hash-partitioned, and their per-partition tables built in
// parallel; the finished table is read-only, so probes take no lock.
// Aggregations run as per-worker partial accumulators merged at the final
// exchange (relation.AggAccum).
//
// The optimizer decides serial vs parallel: LIMIT/TopN-dominated shapes
// (where pull-based short-circuiting beats fan-out) and plans whose driver
// is estimated under Engine.ParallelMinRows stay serial. Parallel plans keep
// the v2 streaming contract but carry no resume token — their emission order
// is nondeterministic — so a mid-stream failure surfaces as an error rather
// than a corrupt skip-based resume (resilient_stream.go leaves tokenless
// streams unwrapped by design).

const (
	// defaultMorselTuples is the scan split granularity: large enough that
	// cursor contention and channel traffic are noise, small enough that a
	// skewed filter cannot strand one worker with the whole table.
	defaultMorselTuples = 1024
	// parDefaultMinRows is the optimizer's serial/parallel threshold on the
	// driver scan's estimated rows: below it, one goroutine finishes before
	// workers would spin up.
	parDefaultMinRows = 8192
	// parBatchTuples is the exchange granularity: workers hand tuples to the
	// consumer in batches so the channel synchronizes per batch, not per
	// tuple. The channel is bounded at 2 batches per worker — backpressure: a
	// slow consumer (or a stalled wire) parks the workers instead of letting
	// results pile up in memory.
	parBatchTuples = 128
)

// parSection is the parallelizable slice of a plan, found at build time.
type parSection struct {
	driver *scanNode   // morsel source: the scan at the bottom of the probe spine
	joins  []*joinNode // equi-joins along the spine, bottom-up (build sides partition-built)
	top    planNode    // top of the worker pipeline (excluding agg)
	agg    *aggNode    // non-nil: workers accumulate partials, the consumer merges
	// estRows is the driver's examine estimate at plan time, the input to
	// the optimizer's serial/parallel threshold.
	estRows float64
}

// findParSection walks the plan and returns its parallel section, or nil
// when the shape must stay serial: LIMIT/TopN without a blocking aggregate
// underneath (short-circuiting beats fan-out), non-equi join spines, or any
// operator the worker pipeline does not mirror (e.g. a wide sort below the
// projection).
func findParSection(root planNode, examine map[*scanNode]float64) *parSection {
	n := root
	sawLimit := false
unwrap:
	for {
		switch t := n.(type) {
		case *limitNode:
			sawLimit = true
			n = t.child
		case *sortNode:
			if t.limit >= 0 {
				sawLimit = true // TopN: bounded heap, serial wins
			}
			n = t.child
		case *distinctNode:
			n = t.child
		default:
			break unwrap
		}
	}
	sec := &parSection{}
	if a, ok := n.(*aggNode); ok {
		sec.agg = a
		n = a.child
	}
	if sawLimit && sec.agg == nil {
		// A LIMIT/TopN over a streaming pipeline short-circuits: the pull
		// model stops the scan after ~LIMIT matches, which no degree of
		// parallelism beats. Over an aggregate the limit cannot short-circuit
		// through the blocking agg, so parallelism still applies.
		return nil
	}
	sec.top = n
	for {
		switch t := n.(type) {
		case *projectNode:
			n = t.child
		case *filterNode:
			n = t.child
		case *joinNode:
			if len(t.eq) == 0 {
				return nil // nested-loop/cross spine: stays serial
			}
			sec.joins = append(sec.joins, t)
			n = t.left
		case *scanNode:
			sec.driver = t
			sec.estRows = examine[t]
			for i, j := 0, len(sec.joins)-1; i < j; i, j = i+1, j-1 {
				sec.joins[i], sec.joins[j] = sec.joins[j], sec.joins[i]
			}
			return sec
		default:
			return nil
		}
	}
}

// planDOP is the open-time half of the DOP decision: the configured worker
// bound, gated by the optimizer's row threshold. The morsel count clamps it
// further once the driver snapshot is bound (parExec.start).
func (e *Engine) planDOP(p *Plan) int {
	if p.par == nil {
		return 1
	}
	dop := e.Parallelism()
	if dop <= 1 {
		return 1
	}
	if p.par.estRows < float64(e.ParallelMinRows()) {
		return 1
	}
	return dop
}

// parWorkerStats is one worker's accounting: written only by that worker,
// read by the consumer after the worker pool has drained (the exchange close
// and the merge both happen after wg.Wait, so the reads are ordered). They
// feed EXPLAIN ANALYZE's per-worker lines, where partition skew shows up as
// unbalanced rows/ops across workers.
type parWorkerStats struct {
	rows    int64 // tuples the worker's pipeline emitted
	ops     int64 // tuple operations charged by the worker
	morsels int64 // morsels claimed
}

// parExec is the per-execution state of a morsel-parallel plan run.
type parExec struct {
	e      *Engine
	plan   *Plan
	run    *planRun
	sec    *parSection
	dop    int
	morsel int
	stall  time.Duration

	ctx    context.Context
	cancel context.CancelFunc

	rows   []relation.Tuple // bound driver snapshot (or index lookup result)
	cursor atomic.Int64     // next morsel offset

	tables map[*joinNode]*relation.PartitionedTable

	out         chan []relation.Tuple
	wg          sync.WaitGroup
	started     bool
	interrupted atomic.Bool  // a worker stopped at a cancellation checkpoint
	workerOps   atomic.Int64 // per-worker ops, flushed at worker exit
	workers     []parWorkerStats
	aggs        []*relation.AggAccum

	tail     relation.Iterator // consumer chain above the section
	curBatch []relation.Tuple
	curIdx   int
	done     bool
	failErr  error
}

// start binds the driver rows, runs the partitioned join builds, and
// launches the worker pool. Called lazily on the first pull, like the serial
// path's blocking prefix.
func (px *parExec) start() error {
	px.started = true
	px.e.parStreams.Add(1)

	// Bind the driver exactly as the serial scan would: index lookup when
	// the access path survived binding, else the full snapshot.
	b := px.run.scans[px.sec.driver]
	if b.ix != nil {
		px.rows = b.ix.Lookup(px.sec.driver.idxVals)
	} else {
		px.rows = b.rows
	}
	// Clamp the pool to the morsel count: fewer morsels than workers would
	// leave goroutines idle from birth.
	if m := (len(px.rows) + px.morsel - 1) / px.morsel; m > 0 && m < px.dop {
		px.dop = m
	}
	if px.dop < 1 {
		px.dop = 1
	}

	// Partitioned parallel builds, bottom-up. The build subtree itself runs
	// serially on this goroutine with the plan's ordinary accounting (it may
	// contain anything, including its own joins); only the hash-table
	// construction fans out, one goroutine per partition, each touching only
	// its own partition. The finished tables are read-only — probes by any
	// number of workers take no lock.
	px.tables = make(map[*joinNode]*relation.PartitionedTable, len(px.sec.joins))
	for _, jn := range px.sec.joins {
		pt := relation.NewPartitionedTable(jn.eq, px.dop)
		build := relation.NewGuardIterator(
			px.run.counted(px.run.openNode(jn.right)), 0,
			func() error { return px.ctx.Err() })
		for t, ok := build.Next(); ok; t, ok = build.Next() {
			pt.Add(t)
		}
		if err := build.Err(); err != nil {
			return err
		}
		var bwg sync.WaitGroup
		for i := 0; i < pt.Parts(); i++ {
			bwg.Add(1)
			go func(i int) {
				defer bwg.Done()
				pt.BuildPart(i)
			}(i)
		}
		bwg.Wait()
		px.tables[jn] = pt
	}

	px.workers = make([]parWorkerStats, px.dop)
	if px.sec.agg != nil {
		px.aggs = make([]*relation.AggAccum, px.dop)
	} else {
		px.out = make(chan []relation.Tuple, px.dop*2)
	}
	px.wg.Add(px.dop)
	for w := 0; w < px.dop; w++ {
		px.e.parWorkerRt.Add(1)
		go px.runWorker(w)
	}
	if px.out != nil {
		go func() {
			px.wg.Wait()
			close(px.out)
		}()
	}
	return nil
}

// runWorker is one worker: a private pipeline over claimed morsels, guarded
// by a per-worker cancellation checkpoint every DefaultGuardEvery tuples (the
// guard-iterator contract holds per worker, not per plan), feeding either the
// exchange or a per-worker aggregation partial.
func (px *parExec) runWorker(w int) {
	defer px.wg.Done()
	_, sp := px.e.tracer.Load().Start(px.ctx, "engine.parallel_worker")
	sp.Set("worker", strconv.Itoa(w))
	defer sp.End()
	ws := &px.workers[w]
	guard := relation.NewGuardIterator(px.workerIter(ws, px.sec.top), relation.DefaultGuardEvery,
		func() error { return px.ctx.Err() })

	if px.sec.agg != nil {
		acc := relation.NewAggAccum(px.sec.agg.groupCols, px.sec.agg.specs)
		for {
			t, ok := guard.Next()
			if !ok {
				break
			}
			ws.ops++ // serial parity: the agg charges one op per input tuple
			ws.rows++
			acc.Add(t)
		}
		px.aggs[w] = acc
	} else {
		batch := make([]relation.Tuple, 0, parBatchTuples)
		send := func() bool {
			if len(batch) == 0 {
				return true
			}
			select {
			case px.out <- batch:
				batch = make([]relation.Tuple, 0, parBatchTuples)
				return true
			case <-px.ctx.Done():
				return false
			}
		}
		for {
			t, ok := guard.Next()
			if !ok {
				break
			}
			ws.rows++
			batch = append(batch, t)
			if len(batch) == parBatchTuples && !send() {
				break
			}
		}
		send()
	}
	if px.ctx.Err() != nil {
		px.interrupted.Store(true)
	}
	px.workerOps.Add(ws.ops)
}

// workerIter builds worker w's private pipeline for the section: morsel scan
// at the bottom, lock-free probes of the shared partitioned tables above,
// filters/projections in between. Op accounting mirrors the serial
// operators' exactly (each operator charges its input), so a parallel run's
// total ops equal the serial run's.
func (px *parExec) workerIter(ws *parWorkerStats, n planNode) relation.Iterator {
	switch t := n.(type) {
	case *scanNode:
		return px.morselIter(ws)
	case *projectNode:
		in := px.workerIter(ws, t.child)
		if t.counted {
			in = countInto(ws, in)
		}
		return relation.Project(in, t.cols)
	case *filterNode:
		return relation.Select(countInto(ws, px.workerIter(ws, t.child)), t.conds)
	case *joinNode:
		left := countInto(ws, px.workerIter(ws, t.left))
		it := px.tables[t].Probe(left)
		if len(t.post) > 0 {
			it = relation.Select(it, t.post)
		}
		return it
	default:
		panic(fmt.Sprintf("remotedb: parallel worker pipeline reached %T, which findParSection excludes", n))
	}
}

// morselIter claims morsels from the shared cursor and scans them with the
// driver's pushed-down predicates, charging one op per examined row like the
// serial scan. The claim loop checks the context, so cancellation latency is
// bounded by one morsel even before the guard's checkpoint fires.
func (px *parExec) morselIter(ws *parWorkerStats) relation.Iterator {
	sn := px.sec.driver
	var cur []relation.Tuple
	pos := 0
	return relation.IteratorFunc(func() (relation.Tuple, bool) {
		for {
			for pos < len(cur) {
				t := cur[pos]
				pos++
				ws.ops++
				if relation.EvalAll(sn.conds, t) {
					return t, true
				}
			}
			if px.ctx.Err() != nil {
				return nil, false
			}
			lo := int(px.cursor.Add(int64(px.morsel))) - px.morsel
			if lo >= len(px.rows) {
				return nil, false
			}
			hi := lo + px.morsel
			if hi > len(px.rows) {
				hi = len(px.rows)
			}
			if px.stall > 0 {
				time.Sleep(px.stall) // experiment service-time model (SetMorselStall)
			}
			ws.morsels++
			px.e.parMorselsCt.Add(1)
			cur, pos = px.rows[lo:hi], 0
		}
	})
}

// countInto charges one worker op per pulled tuple, the parallel counterpart
// of planRun.counted.
func countInto(ws *parWorkerStats, in relation.Iterator) relation.Iterator {
	return relation.IteratorFunc(func() (relation.Tuple, bool) {
		t, ok := in.Next()
		if ok {
			ws.ops++
		}
		return t, ok
	})
}

// next is the consumer side: it lazily starts the pool, then drives the
// consumer chain (the plan nodes above the section — sort, distinct, limit —
// run single-threaded here, pulling from the exchange or the merged
// aggregate). A cancellation never truncates silently: the stream ends and
// err() reports why.
func (px *parExec) next() (relation.Tuple, bool) {
	if px.done {
		return nil, false
	}
	if !px.started {
		if err := px.start(); err != nil {
			px.done, px.failErr = true, err
			px.cancel()
			return nil, false
		}
	}
	if px.tail == nil {
		px.tail = px.consumerIter(px.plan.root)
	}
	t, ok := px.tail.Next()
	if !ok {
		px.done = true
		if px.failErr == nil && px.interrupted.Load() {
			px.failErr = px.ctx.Err()
			if px.failErr == nil {
				px.failErr = context.Canceled
			}
		}
		px.cancel() // release the derived context on natural completion too
	}
	return t, ok
}

// consumerIter mirrors the serial open for the nodes above the section,
// substituting the exchange (or the merged aggregate) at the boundary. Op
// accounting matches the serial operators': sort and distinct charge their
// input, limit does not.
func (px *parExec) consumerIter(n planNode) relation.Iterator {
	var boundary planNode = px.sec.top
	if px.sec.agg != nil {
		boundary = px.sec.agg
	}
	if n == boundary {
		if px.sec.agg != nil {
			return px.aggMergeIter()
		}
		return px.exchangeIter()
	}
	switch t := n.(type) {
	case *limitNode:
		return t.openOn(px.consumerIter(t.child))
	case *sortNode:
		return t.openOn(px.run.counted(px.consumerIter(t.child)))
	case *distinctNode:
		return t.openOn(px.run.counted(px.consumerIter(t.child)))
	default:
		panic(fmt.Sprintf("remotedb: parallel consumer chain reached %T, which findParSection excludes", n))
	}
}

// aggMergeIter waits for every worker's partial and merges them in worker
// order. An interrupted pool emits nothing — next() surfaces the
// cancellation as an error instead of a partial aggregate.
func (px *parExec) aggMergeIter() relation.Iterator {
	px.wg.Wait()
	if px.interrupted.Load() {
		return relation.NewSliceIterator(nil)
	}
	merged := relation.NewAggAccum(px.sec.agg.groupCols, px.sec.agg.specs)
	for _, acc := range px.aggs {
		merged.Merge(acc)
	}
	return relation.NewSliceIterator(merged.Emit())
}

// exchangeIter pulls batches off the bounded exchange. The channel is closed
// after wg.Wait, so exhaustion means every worker has exited and their stats
// and interrupted flags are visible.
func (px *parExec) exchangeIter() relation.Iterator {
	return relation.IteratorFunc(func() (relation.Tuple, bool) {
		for {
			if px.curIdx < len(px.curBatch) {
				t := px.curBatch[px.curIdx]
				px.curIdx++
				return t, true
			}
			b, ok := <-px.out
			if !ok {
				return nil, false
			}
			px.curBatch, px.curIdx = b, 0
		}
	})
}

// shutdown tears the pool down: cancel unparks every worker (they select on
// the exchange send vs ctx.Done, and their guards checkpoint every 64
// tuples), then wait for all of them. Idempotent; safe before the first pull.
func (px *parExec) shutdown() {
	px.done = true
	if !px.started {
		px.cancel()
		return
	}
	px.cancel()
	px.wg.Wait()
}

// err reports why the stream stopped early (nil for a complete delivery).
func (px *parExec) err() error { return px.failErr }

// ops returns the workers' accumulated tuple operations.
func (px *parExec) ops() int64 { return px.workerOps.Load() }

// workerLines renders the per-worker actuals for EXPLAIN ANALYZE: skewed
// partitions show up as unbalanced rows/ops across workers. Call after the
// stream has drained.
func (px *parExec) workerLines() []string {
	total := int64(0)
	for i := range px.workers {
		total += px.workers[i].morsels
	}
	lines := make([]string, 0, len(px.workers)+1)
	lines = append(lines, fmt.Sprintf("parallel: dop %d | morsel %d tuples | %d morsels dispatched", px.dop, px.morsel, total))
	for i := range px.workers {
		ws := &px.workers[i]
		lines = append(lines, fmt.Sprintf("  worker %d: rows %d, ops %d, morsels %d", i, ws.rows, ws.ops, ws.morsels))
	}
	return lines
}
