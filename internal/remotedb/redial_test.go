package remotedb

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestTCPBrokenConnFailsFast(t *testing.T) {
	addr, _, cleanup := startTestServer(t)
	c, err := DialTCP(addr, DefaultCosts()) // no redial
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec("SELECT * FROM dept"); err != nil {
		t.Fatal(err)
	}
	cleanup() // kill the server mid-session

	// First call after the kill fails at I/O level and breaks the stream.
	_, err = c.Exec("SELECT * FROM dept")
	if err == nil {
		t.Fatal("exec against dead server should fail")
	}
	if !IsTransient(err) {
		t.Fatalf("I/O failure should be transient: %v", err)
	}
	// Subsequent calls fail fast with the typed broken-conn error instead of
	// decoding from a desynced gob stream.
	start := time.Now()
	_, err = c.Exec("SELECT * FROM dept")
	if !errors.Is(err, ErrBrokenConn) {
		t.Fatalf("want ErrBrokenConn, got %v", err)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("broken-conn failure was not fast")
	}
}

func TestTCPRedialAcrossServerRestart(t *testing.T) {
	addr, engine, cleanup := startTestServer(t)
	c, err := DialTCPOpts(addr, TCPOptions{
		Costs:       DefaultCosts(),
		Redial:      true,
		DialTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec("SELECT * FROM dept"); err != nil {
		t.Fatal(err)
	}

	cleanup()
	if _, err := c.Exec("SELECT * FROM dept"); err == nil {
		t.Fatal("exec against dead server should fail")
	}
	// Server still down: the redial itself fails, transiently.
	if _, err := c.Exec("SELECT * FROM dept"); !IsTransient(err) {
		t.Fatalf("failed redial should be transient: %v", err)
	}

	// Restart on the same address; the next call redials transparently.
	srv2 := NewServer(engine)
	if _, err := srv2.Listen(addr); err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	defer srv2.Close()
	res, err := c.Exec("SELECT * FROM dept")
	if err != nil {
		t.Fatalf("exec after restart should redial and succeed: %v", err)
	}
	if res.Rel.Len() != 3 {
		t.Fatalf("rows = %d, want 3", res.Rel.Len())
	}
	if c.Redials() < 2 {
		t.Fatalf("redials = %d, want >= 2 (initial + reconnect)", c.Redials())
	}
	// Close still wins over redial.
	c.Close()
	if _, err := c.Exec("SELECT * FROM dept"); err == nil {
		t.Fatal("closed client must not redial")
	}
}

func TestServerIdleTimeoutDropsDeadPeers(t *testing.T) {
	e := newTestEngine(t)
	srv := NewServerWithOptions(e, ServerOptions{IdleTimeout: 50 * time.Millisecond})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialTCP(addr, DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec("SELECT * FROM dept"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond) // exceed the idle deadline
	if _, err := c.Exec("SELECT * FROM dept"); err == nil {
		t.Fatal("server should have dropped the idle connection")
	}
	// An active client inside the idle window is unaffected.
	c2, err := DialTCP(addr, DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for i := 0; i < 5; i++ {
		if _, err := c2.Exec("SELECT * FROM dept"); err != nil {
			t.Fatalf("active connection dropped: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerCloseUnderLoad drives concurrent clients and closes the server
// mid-flight: Close must return promptly, and every client must observe a
// connection error rather than a hang.
func TestServerCloseUnderLoad(t *testing.T) {
	e := newTestEngine(t)
	srvRef := NewServer(e)
	addr, err := srvRef.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var stopped atomic.Bool
	var wg sync.WaitGroup
	errCount := int64(0)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := DialTCP(addr, DefaultCosts())
			if err != nil {
				return
			}
			defer c.Close()
			for !stopped.Load() {
				if _, err := c.Exec("SELECT e.name FROM emp e, dept d WHERE e.dept = d.id"); err != nil {
					atomic.AddInt64(&errCount, 1)
					return // connection error, as expected after Close
				}
			}
		}()
	}
	time.Sleep(30 * time.Millisecond) // let the load build

	closed := make(chan error, 1)
	go func() { closed <- srvRef.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("close under load: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Server.Close hung with in-flight requests")
	}
	stopped.Store(true)

	waitDone := make(chan struct{})
	go func() { wg.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(5 * time.Second):
		t.Fatal("clients hung after server close")
	}
	// New connections must be refused.
	if _, err := DialTCP(addr, DefaultCosts()); err == nil {
		t.Fatal("dial after close should fail")
	}
}

// TestServerShutdownDrains verifies the graceful path: an in-flight request
// gets its response before the connection is released.
func TestServerShutdownDrains(t *testing.T) {
	e := newTestEngine(t)
	srv := NewServer(e)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := DialTCP(addr, DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	results := make(chan error, 1)
	go func() {
		_, err := c.Exec("SELECT e.name FROM emp e, dept d WHERE e.dept = d.id")
		results <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if err := srv.Shutdown(2 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case err := <-results:
		// The in-flight request either completed (drained before the read
		// deadline landed) or failed with a connection error; it must not
		// have hung.
		_ = err
	case <-time.After(3 * time.Second):
		t.Fatal("in-flight request hung across Shutdown")
	}
	// The drained server accepts no further work.
	if _, err := c.Exec("SELECT * FROM dept"); err == nil {
		t.Fatal("exec after shutdown should fail")
	}
}
