package remotedb

import (
	"context"

	"repro/internal/relation"
)

// This file is the engine half of streamed (wire v2) execution: a SELECT
// whose evaluation is a per-tuple pipeline — one table, per-tuple WHERE
// conditions, plain projection — does not need to materialize its result
// before the first tuple can ship. ExecuteSQLStream recognizes such
// statements and returns a pull-based ScanStream over an immutable snapshot
// of the table, so the framed server can emit the first response frame after
// frameTuples tuples of work instead of after the whole scan. Everything
// else (joins, aggregation, DISTINCT, ORDER BY) falls back to the
// materializing Execute path and is framed post hoc.
//
// Because a ScanStream's emission order is a deterministic function of its
// snapshot (rows in base order, filtered by the same conditions), it is the
// *resumable* execution path: ResumeSQLStream rebuilds the same scan, pins
// it to the original snapshot length, and fast-forwards past the tuples a
// broken connection already delivered (resume.go).

// ScanStream is an incrementally produced SELECT result. It is single
// consumer and must not be shared between goroutines.
type ScanStream struct {
	name   string
	schema *relation.Schema
	rows   []relation.Tuple // immutable snapshot of the base extension
	conds  []relation.Cond
	proj   []int // projection column positions; nil = identity (no copy)
	limit  int   // max tuples to emit; -1 = unbounded

	// token pins the snapshot for mid-stream resume (resume.go).
	token ResumeToken
	// skip is how many matching tuples to fast-forward past before emitting
	// (a resumed stream's already-delivered prefix). Skipped tuples count
	// against limit and ops exactly as if they had been emitted, so a
	// resumed delivery is the tail of the uninterrupted one.
	skip int64

	pos     int
	emitted int
	ops     int64
}

// Schema is the result schema (after projection).
func (s *ScanStream) Schema() *relation.Schema { return s.schema }

// Name is the result relation name.
func (s *ScanStream) Name() string { return s.name }

// Ops is the number of tuple operations performed so far; it reaches the
// cost-model total once the scan is exhausted.
func (s *ScanStream) Ops() int64 { return s.ops }

// ResumeToken identifies the snapshot this scan reads, for the header frame
// of a resumable stream.
func (s *ScanStream) ResumeToken() ResumeToken { return s.token }

// Next produces the next result tuple.
func (s *ScanStream) Next() (relation.Tuple, bool) {
	for s.pos < len(s.rows) {
		if s.limit >= 0 && s.emitted >= s.limit {
			return nil, false
		}
		t := s.rows[s.pos]
		s.pos++
		s.ops++
		if !relation.EvalAll(s.conds, t) {
			continue
		}
		s.emitted++
		s.ops++ // emit counts one op, matching the materialized projection cost
		if s.skip > 0 {
			// Fast-forward a resumed scan: the tuple was already delivered by
			// the broken stream, so it is accounted but not re-emitted.
			s.skip--
			continue
		}
		if s.proj == nil {
			return t, true
		}
		out := make(relation.Tuple, len(s.proj))
		for i, c := range s.proj {
			out[i] = t[c]
		}
		return out, true
	}
	return nil, false
}

// EngineStream is a pull-based SELECT result: tuples are produced
// incrementally, so the framed server can ship the first frame as soon as
// the stream's blocking prefix (if any) completes. ScanStream (resumable
// single-table pipelines) and PlanStream (optimized join/aggregate
// pipelines) both implement it.
type EngineStream interface {
	Next() (relation.Tuple, bool)
	Schema() *relation.Schema
	Name() string
	Ops() int64
}

// ExecuteSQLPipeline returns a pull-based stream for any SELECT the engine
// can execute incrementally: the resumable single-table ScanStream when the
// statement qualifies, otherwise a cost-based PlanStream (optimizer on only
// — with the optimizer off every non-trivial SELECT deliberately falls back
// to the materializing executor, the E16 control arm). ok=false sends the
// caller to the materializing Execute path, which also owns error
// reporting: parse and resolution errors surface there, not here.
func (e *Engine) ExecuteSQLPipeline(src string) (EngineStream, bool) {
	return e.ExecuteSQLPipelineCtx(context.Background(), src)
}

// ExecuteSQLPipelineCtx is ExecuteSQLPipeline with a context: plan-cache
// and optimize spans started under it stitch into the caller's trace (the
// framed server passes a context carrying the wire-adopted trace ID).
func (e *Engine) ExecuteSQLPipelineCtx(ctx context.Context, src string) (EngineStream, bool) {
	if sc, ok := e.ExecuteSQLStream(src); ok {
		return sc, true
	}
	if !e.OptimizerEnabled() {
		return nil, false
	}
	st, err := ParseSQL(src)
	if err != nil || st.Select == nil || st.Explain {
		return nil, false
	}
	ps, err := e.openPlan(ctx, st.Select, false)
	if err != nil {
		return nil, false
	}
	return ps, true
}

// ExecuteSQLStream returns a ScanStream when src parses to a streamable
// statement, and ok=false otherwise — including on parse and resolution
// errors, so the caller falls back to Execute and reports the error through
// the ordinary path. The snapshot is taken under the engine lock; the
// relation representation is append-only, so the captured prefix stays
// consistent while concurrent inserts land.
func (e *Engine) ExecuteSQLStream(src string) (*ScanStream, bool) {
	return e.buildScanStream(src, nil)
}

// ResumeSQLStream rebuilds the scan pinned by a resume token and
// fast-forwards past skip already-delivered tuples. It returns
// resumed=false — and the caller falls back to a fresh ExecuteSQLStream —
// when the token does not belong to src, the table has mutated since the
// token was minted (version mismatch: replacement, append, or a crash
// recovery), or the pinned snapshot exceeds the current extension
// (impossible under append-only; defends against forged tokens).
func (e *Engine) ResumeSQLStream(src string, tok ResumeToken, skip int64) (*ScanStream, bool) {
	if skip < 0 || tok.StmtHash != StatementHash(src) {
		return nil, false
	}
	sc, ok := e.buildScanStream(src, &tok)
	if !ok {
		return nil, false
	}
	sc.skip = skip
	return sc, true
}

// buildScanStream compiles src into a pull-based scan. With a non-nil pin,
// the scan is bound to the pinned snapshot (same table, same version, first
// SnapLen rows) and ok=false reports the snapshot is gone.
func (e *Engine) buildScanStream(src string, pin *ResumeToken) (*ScanStream, bool) {
	st, err := ParseSQL(src)
	if err != nil || st.Select == nil || st.Explain {
		return nil, false
	}
	sel := st.Select
	if len(sel.From) != 1 || sel.Distinct ||
		len(sel.GroupBy) > 0 || len(sel.OrderBy) > 0 {
		return nil, false
	}
	for _, it := range sel.Items {
		if it.IsAgg {
			return nil, false
		}
	}

	e.mu.RLock()
	defer e.mu.RUnlock()
	table := sel.From[0].Table
	base, ok := e.tables[table]
	if !ok {
		return nil, false
	}
	rows := base.Tuples()
	version := e.versions[table]
	if pin != nil {
		if pin.Table != table || pin.Version != version ||
			pin.SnapLen < 0 || pin.SnapLen > int64(len(rows)) {
			return nil, false
		}
		rows = rows[:pin.SnapLen]
	}
	sch := base.Schema()
	alias := sel.From[0].Alias

	resolve := func(c ColRef) (int, bool) {
		if c.Qualifier != "" && c.Qualifier != alias {
			return 0, false
		}
		i := sch.ColIndex(c.Column)
		return i, i >= 0
	}

	var conds []relation.Cond
	for _, c := range sel.Where {
		lc, ok := resolve(c.Left)
		if !ok {
			return nil, false
		}
		if c.RightIsCol {
			rc, ok := resolve(c.RightCol)
			if !ok {
				return nil, false
			}
			conds = append(conds, relation.ColCol(lc, c.Op, rc))
		} else {
			conds = append(conds, relation.ColConst(lc, c.Op, c.RightVal))
		}
	}

	var proj []int
	var attrs []relation.Attr
	if len(sel.Items) == 1 && sel.Items[0].Star {
		attrs = sch.Attrs() // identity: ship base tuples without copying
	} else {
		for _, it := range sel.Items {
			if it.Star {
				return nil, false
			}
			p, ok := resolve(it.Col)
			if !ok {
				return nil, false
			}
			proj = append(proj, p)
			attrs = append(attrs, sch.Attr(p))
		}
	}

	return &ScanStream{
		name:   "result",
		schema: relation.NewSchema(attrs...),
		rows:   rows,
		conds:  conds,
		proj:   proj,
		limit:  sel.Limit,
		token: ResumeToken{
			StmtHash: StatementHash(src),
			Table:    table,
			Version:  version,
			SnapLen:  int64(len(rows)),
		},
	}, true
}
