package remotedb

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"repro/internal/relation"
)

// FaultClient wraps any Client and injects transport faults — errors, dropped
// connections, latency spikes, hangs, and a hard "server down" switch — from
// a deterministically seeded stream, so fault-tolerance experiments (e11) and
// tests are exactly reproducible. It is the client-side counterpart of the
// server's ListenerFaults.
//
// Each remote-touching call (Exec, RelationSchema, TableStats, Tables) rolls
// once against the configured rates, in order: error, drop, hang, latency.
// Stats and Close are never faulted.
type FaultClient struct {
	inner Client
	cfg   FaultConfig

	mu     sync.Mutex
	rng    *rand.Rand
	down   bool
	counts FaultCounts
}

// FaultConfig parameterizes the injected fault mix. Rates are probabilities
// in [0,1] applied per request; their sum should not exceed 1 (excess is
// clamped by evaluation order).
type FaultConfig struct {
	// Seed seeds the deterministic fault stream.
	Seed int64
	// ErrorRate injects a transport error (request lost, no side effects).
	ErrorRate float64
	// DropRate injects a dropped connection: the request fails and, when the
	// inner client is a *TCPClient, its connection is torn down so redial
	// machinery is exercised.
	DropRate float64
	// HangRate makes the request stall for HangFor before completing
	// normally — the shape a per-request deadline must catch.
	HangRate float64
	// HangFor is the stall duration for hang faults.
	HangFor time.Duration
	// LatencyRate adds Latency to the request before completing normally.
	LatencyRate float64
	// Latency is the added delay for latency faults.
	Latency time.Duration
	// PanicRate makes the request panic instead of returning — the shape the
	// CMS's per-query/per-worker panic isolation must contain.
	PanicRate float64
	// Sleep is the delay implementation (tests and fast experiments stub it
	// out). Nil means time.Sleep.
	Sleep func(time.Duration)

	// The Stream* rates are a second, per-STREAM fault dimension, rolled once
	// per successfully established stream (the establishment rates above
	// already cover pre-header failure). They model the transfer dying after
	// tuples were delivered — the case resumable streams exist for.

	// StreamKillRate kills the stream after StreamKillAfter tuples: the
	// underlying pooled connection is torn down (so redial/health machinery
	// is exercised) and the stream fails with a transport error.
	StreamKillRate float64
	// StreamStallRate stalls delivery once, for HangFor, after
	// StreamKillAfter tuples, then continues normally — the shape a per-frame
	// wait deadline must catch.
	StreamStallRate float64
	// StreamCorruptRate fails the stream with a protocol error after
	// StreamKillAfter tuples, as a corrupted frame would.
	StreamCorruptRate float64
	// StreamKillAfter is the number of tuples delivered before a stream fault
	// fires (0: before the first tuple).
	StreamKillAfter int
}

// FaultCounts tallies injected faults by kind.
type FaultCounts struct {
	Errors    int64 // injected transport errors
	Drops     int64 // injected dropped connections
	Hangs     int64 // injected hangs
	Latencies int64 // injected latency spikes
	Panics    int64 // injected panics
	Refusals  int64 // requests refused while SetDown(true)

	StreamKills    int64 // established streams killed mid-transfer
	StreamStalls   int64 // established streams stalled mid-transfer
	StreamCorrupts int64 // established streams failed with a protocol error
}

// NewFaultClient wraps inner with the configured fault stream.
func NewFaultClient(inner Client, cfg FaultConfig) *FaultClient {
	return &FaultClient{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// SetDown simulates the remote server being killed (true) or restarted
// (false): while down, every request fails with a transport error.
func (f *FaultClient) SetDown(down bool) {
	f.mu.Lock()
	f.down = down
	f.mu.Unlock()
}

// Counts returns the injected-fault tallies so far.
func (f *FaultClient) Counts() FaultCounts {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts
}

// Inner returns the wrapped client.
func (f *FaultClient) Inner() Client { return f.inner }

// maybeFault rolls the fault die for one request. It returns a non-nil error
// for error/drop faults and performs any configured delay for hang/latency
// faults before returning nil.
func (f *FaultClient) maybeFault(op string) error {
	f.mu.Lock()
	if f.down {
		f.counts.Refusals++
		f.mu.Unlock()
		return &TransportError{Op: op, Err: ErrRemoteUnavailable}
	}
	roll := f.rng.Float64()
	var delay time.Duration
	var err error
	switch {
	case roll < f.cfg.ErrorRate:
		f.counts.Errors++
		err = &TransportError{Op: op, Err: errInjected}
	case roll < f.cfg.ErrorRate+f.cfg.DropRate:
		f.counts.Drops++
		err = &TransportError{Op: op, Err: errInjectedDrop}
	case roll < f.cfg.ErrorRate+f.cfg.DropRate+f.cfg.HangRate:
		f.counts.Hangs++
		delay = f.cfg.HangFor
	case roll < f.cfg.ErrorRate+f.cfg.DropRate+f.cfg.HangRate+f.cfg.LatencyRate:
		f.counts.Latencies++
		delay = f.cfg.Latency
	case roll < f.cfg.ErrorRate+f.cfg.DropRate+f.cfg.HangRate+f.cfg.LatencyRate+f.cfg.PanicRate:
		f.counts.Panics++
		f.mu.Unlock()
		panic("injected fault: panic in " + op)
	}
	f.mu.Unlock()

	if err != nil {
		if _, isDrop := errorIsDrop(err); isDrop {
			switch c := f.inner.(type) {
			case *TCPClient:
				c.breakConn()
			case *PoolClient:
				c.breakConn()
			}
		}
		return err
	}
	if delay > 0 {
		f.sleep(delay)
	}
	return nil
}

var (
	errInjected        = &injectedFault{kind: "error"}
	errInjectedDrop    = &injectedFault{kind: "dropped connection"}
	errInjectedCorrupt = &injectedFault{kind: "corrupted stream"}
)

// injectedFault marks an artificial fault (distinguishable in logs).
type injectedFault struct{ kind string }

func (e *injectedFault) Error() string { return "injected fault: " + e.kind }

func errorIsDrop(err error) (*injectedFault, bool) {
	te, ok := err.(*TransportError)
	if !ok {
		return nil, false
	}
	f, ok := te.Err.(*injectedFault)
	return f, ok && f == errInjectedDrop
}

func (f *FaultClient) sleep(d time.Duration) {
	if f.cfg.Sleep != nil {
		f.cfg.Sleep(d)
		return
	}
	time.Sleep(d)
}

// Exec implements Client.
func (f *FaultClient) Exec(sql string) (*Result, error) {
	if err := f.maybeFault("exec"); err != nil {
		return nil, err
	}
	return f.inner.Exec(sql)
}

// ExecCtx implements ContextClient, so cancellation survives the wrapper.
func (f *FaultClient) ExecCtx(ctx context.Context, sql string) (*Result, error) {
	if err := f.maybeFault("exec"); err != nil {
		return nil, err
	}
	return ExecContext(ctx, f.inner, sql)
}

// ExecStream implements StreamClient: establishment is faulted exactly like a
// monolithic exec; an established stream then rolls once against the
// per-stream fault dimension (kill/stall/corrupt after N tuples).
func (f *FaultClient) ExecStream(ctx context.Context, sql string) (TupleStream, error) {
	if err := f.maybeFault("exec"); err != nil {
		return nil, err
	}
	st, err := ExecStreamContext(ctx, f.inner, sql)
	if err != nil {
		return nil, err
	}
	return f.maybeFaultStream(st), nil
}

// ExecStreamResume implements ResumableClient by passing resume state through
// to the inner client. The re-issue is faulted like any request — including
// the stream dimension, so a resumed stream can be killed again, exercising
// repeated-recovery paths.
func (f *FaultClient) ExecStreamResume(ctx context.Context, sql, token string, skip int64) (TupleStream, error) {
	if err := f.maybeFault("exec"); err != nil {
		return nil, err
	}
	st, err := ExecStreamResumeContext(ctx, f.inner, sql, token, skip)
	if err != nil {
		return nil, err
	}
	return f.maybeFaultStream(st), nil
}

// Stream fault kinds.
const (
	streamFaultKill uint8 = iota + 1
	streamFaultStall
	streamFaultCorrupt
)

// maybeFaultStream rolls the per-stream fault die once for an established
// stream and, on a hit, wraps it in the armed fault.
func (f *FaultClient) maybeFaultStream(st TupleStream) TupleStream {
	cfg := f.cfg
	if cfg.StreamKillRate+cfg.StreamStallRate+cfg.StreamCorruptRate <= 0 {
		return st
	}
	f.mu.Lock()
	roll := f.rng.Float64()
	var kind uint8
	switch {
	case roll < cfg.StreamKillRate:
		kind = streamFaultKill
		f.counts.StreamKills++
	case roll < cfg.StreamKillRate+cfg.StreamStallRate:
		kind = streamFaultStall
		f.counts.StreamStalls++
	case roll < cfg.StreamKillRate+cfg.StreamStallRate+cfg.StreamCorruptRate:
		kind = streamFaultCorrupt
		f.counts.StreamCorrupts++
	default:
		f.mu.Unlock()
		return st
	}
	f.mu.Unlock()
	return &faultStream{inner: st, f: f, kind: kind, after: cfg.StreamKillAfter}
}

// faultStream is one established stream with an armed mid-transfer fault: it
// delivers `after` tuples faithfully, fires once, and then either fails
// terminally (kill, corrupt) or continues (stall).
type faultStream struct {
	inner TupleStream
	f     *FaultClient
	kind  uint8
	after int

	seen  int
	fired bool
	err   error
}

// Next implements relation.Iterator.
func (fs *faultStream) Next() (relation.Tuple, bool) {
	if fs.err != nil {
		return nil, false
	}
	if !fs.fired && fs.seen >= fs.after {
		fs.fired = true
		switch fs.kind {
		case streamFaultKill:
			// A killed stream is a killed CONNECTION: tear one down in the
			// pooled inner client (exercising quarantine + redial) and fail
			// this stream with the transport error its consumer would see.
			fs.inner.Close()
			switch c := fs.f.inner.(type) {
			case *TCPClient:
				c.breakConn()
			case *PoolClient:
				c.breakConn()
			}
			fs.err = &TransportError{Op: "exec", Err: errInjectedDrop}
			return nil, false
		case streamFaultCorrupt:
			fs.inner.Close()
			fs.err = &ProtocolError{Op: "exec", Err: errInjectedCorrupt}
			return nil, false
		case streamFaultStall:
			fs.f.sleep(fs.f.cfg.HangFor)
		}
	}
	t, ok := fs.inner.Next()
	if ok {
		fs.seen++
	}
	return t, ok
}

// Err implements TupleStream: the injected terminal error wins; otherwise the
// inner stream's verdict stands.
func (fs *faultStream) Err() error {
	if fs.err != nil {
		return fs.err
	}
	return fs.inner.Err()
}

// ResumeState implements ResumeReporter by forwarding, so resume tokens
// survive the fault wrapper and ResilientStream can repair injected kills.
func (fs *faultStream) ResumeState() (string, bool) {
	if rr, ok := fs.inner.(ResumeReporter); ok {
		return rr.ResumeState()
	}
	return "", false
}

// Schema implements TupleStream.
func (fs *faultStream) Schema() *relation.Schema { return fs.inner.Schema() }

// Name implements TupleStream.
func (fs *faultStream) Name() string { return fs.inner.Name() }

// Ops implements TupleStream.
func (fs *faultStream) Ops() int64 { return fs.inner.Ops() }

// SimMS implements TupleStream.
func (fs *faultStream) SimMS() float64 { return fs.inner.SimMS() }

// Close implements TupleStream.
func (fs *faultStream) Close() error { return fs.inner.Close() }

// RelationSchema implements Client.
func (f *FaultClient) RelationSchema(name string, arity int) (*relation.Schema, error) {
	if err := f.maybeFault("schema"); err != nil {
		return nil, err
	}
	return f.inner.RelationSchema(name, arity)
}

// TableStats implements Client.
func (f *FaultClient) TableStats(name string) (TableStats, error) {
	if err := f.maybeFault("stats"); err != nil {
		return TableStats{}, err
	}
	return f.inner.TableStats(name)
}

// Tables implements Client.
func (f *FaultClient) Tables() ([]string, error) {
	if err := f.maybeFault("tables"); err != nil {
		return nil, err
	}
	return f.inner.Tables()
}

// Stats implements Client (never faulted).
func (f *FaultClient) Stats() Stats { return f.inner.Stats() }

// Close implements Client (never faulted).
func (f *FaultClient) Close() error { return f.inner.Close() }
