package remotedb

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"repro/internal/relation"
)

// FaultClient wraps any Client and injects transport faults — errors, dropped
// connections, latency spikes, hangs, and a hard "server down" switch — from
// a deterministically seeded stream, so fault-tolerance experiments (e11) and
// tests are exactly reproducible. It is the client-side counterpart of the
// server's ListenerFaults.
//
// Each remote-touching call (Exec, RelationSchema, TableStats, Tables) rolls
// once against the configured rates, in order: error, drop, hang, latency.
// Stats and Close are never faulted.
type FaultClient struct {
	inner Client
	cfg   FaultConfig

	mu     sync.Mutex
	rng    *rand.Rand
	down   bool
	counts FaultCounts
}

// FaultConfig parameterizes the injected fault mix. Rates are probabilities
// in [0,1] applied per request; their sum should not exceed 1 (excess is
// clamped by evaluation order).
type FaultConfig struct {
	// Seed seeds the deterministic fault stream.
	Seed int64
	// ErrorRate injects a transport error (request lost, no side effects).
	ErrorRate float64
	// DropRate injects a dropped connection: the request fails and, when the
	// inner client is a *TCPClient, its connection is torn down so redial
	// machinery is exercised.
	DropRate float64
	// HangRate makes the request stall for HangFor before completing
	// normally — the shape a per-request deadline must catch.
	HangRate float64
	// HangFor is the stall duration for hang faults.
	HangFor time.Duration
	// LatencyRate adds Latency to the request before completing normally.
	LatencyRate float64
	// Latency is the added delay for latency faults.
	Latency time.Duration
	// PanicRate makes the request panic instead of returning — the shape the
	// CMS's per-query/per-worker panic isolation must contain.
	PanicRate float64
	// Sleep is the delay implementation (tests and fast experiments stub it
	// out). Nil means time.Sleep.
	Sleep func(time.Duration)
}

// FaultCounts tallies injected faults by kind.
type FaultCounts struct {
	Errors    int64 // injected transport errors
	Drops     int64 // injected dropped connections
	Hangs     int64 // injected hangs
	Latencies int64 // injected latency spikes
	Panics    int64 // injected panics
	Refusals  int64 // requests refused while SetDown(true)
}

// NewFaultClient wraps inner with the configured fault stream.
func NewFaultClient(inner Client, cfg FaultConfig) *FaultClient {
	return &FaultClient{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// SetDown simulates the remote server being killed (true) or restarted
// (false): while down, every request fails with a transport error.
func (f *FaultClient) SetDown(down bool) {
	f.mu.Lock()
	f.down = down
	f.mu.Unlock()
}

// Counts returns the injected-fault tallies so far.
func (f *FaultClient) Counts() FaultCounts {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts
}

// Inner returns the wrapped client.
func (f *FaultClient) Inner() Client { return f.inner }

// maybeFault rolls the fault die for one request. It returns a non-nil error
// for error/drop faults and performs any configured delay for hang/latency
// faults before returning nil.
func (f *FaultClient) maybeFault(op string) error {
	f.mu.Lock()
	if f.down {
		f.counts.Refusals++
		f.mu.Unlock()
		return &TransportError{Op: op, Err: ErrRemoteUnavailable}
	}
	roll := f.rng.Float64()
	var delay time.Duration
	var err error
	switch {
	case roll < f.cfg.ErrorRate:
		f.counts.Errors++
		err = &TransportError{Op: op, Err: errInjected}
	case roll < f.cfg.ErrorRate+f.cfg.DropRate:
		f.counts.Drops++
		err = &TransportError{Op: op, Err: errInjectedDrop}
	case roll < f.cfg.ErrorRate+f.cfg.DropRate+f.cfg.HangRate:
		f.counts.Hangs++
		delay = f.cfg.HangFor
	case roll < f.cfg.ErrorRate+f.cfg.DropRate+f.cfg.HangRate+f.cfg.LatencyRate:
		f.counts.Latencies++
		delay = f.cfg.Latency
	case roll < f.cfg.ErrorRate+f.cfg.DropRate+f.cfg.HangRate+f.cfg.LatencyRate+f.cfg.PanicRate:
		f.counts.Panics++
		f.mu.Unlock()
		panic("injected fault: panic in " + op)
	}
	f.mu.Unlock()

	if err != nil {
		if _, isDrop := errorIsDrop(err); isDrop {
			switch c := f.inner.(type) {
			case *TCPClient:
				c.breakConn()
			case *PoolClient:
				c.breakConn()
			}
		}
		return err
	}
	if delay > 0 {
		f.sleep(delay)
	}
	return nil
}

var (
	errInjected     = &injectedFault{kind: "error"}
	errInjectedDrop = &injectedFault{kind: "dropped connection"}
)

// injectedFault marks an artificial fault (distinguishable in logs).
type injectedFault struct{ kind string }

func (e *injectedFault) Error() string { return "injected fault: " + e.kind }

func errorIsDrop(err error) (*injectedFault, bool) {
	te, ok := err.(*TransportError)
	if !ok {
		return nil, false
	}
	f, ok := te.Err.(*injectedFault)
	return f, ok && f == errInjectedDrop
}

func (f *FaultClient) sleep(d time.Duration) {
	if f.cfg.Sleep != nil {
		f.cfg.Sleep(d)
		return
	}
	time.Sleep(d)
}

// Exec implements Client.
func (f *FaultClient) Exec(sql string) (*Result, error) {
	if err := f.maybeFault("exec"); err != nil {
		return nil, err
	}
	return f.inner.Exec(sql)
}

// ExecCtx implements ContextClient, so cancellation survives the wrapper.
func (f *FaultClient) ExecCtx(ctx context.Context, sql string) (*Result, error) {
	if err := f.maybeFault("exec"); err != nil {
		return nil, err
	}
	return ExecContext(ctx, f.inner, sql)
}

// ExecStream implements StreamClient: establishment is faulted exactly like a
// monolithic exec; once established, the stream is the inner client's.
func (f *FaultClient) ExecStream(ctx context.Context, sql string) (TupleStream, error) {
	if err := f.maybeFault("exec"); err != nil {
		return nil, err
	}
	return ExecStreamContext(ctx, f.inner, sql)
}

// RelationSchema implements Client.
func (f *FaultClient) RelationSchema(name string, arity int) (*relation.Schema, error) {
	if err := f.maybeFault("schema"); err != nil {
		return nil, err
	}
	return f.inner.RelationSchema(name, arity)
}

// TableStats implements Client.
func (f *FaultClient) TableStats(name string) (TableStats, error) {
	if err := f.maybeFault("stats"); err != nil {
		return TableStats{}, err
	}
	return f.inner.TableStats(name)
}

// Tables implements Client.
func (f *FaultClient) Tables() ([]string, error) {
	if err := f.maybeFault("tables"); err != nil {
		return nil, err
	}
	return f.inner.Tables()
}

// Stats implements Client (never faulted).
func (f *FaultClient) Stats() Stats { return f.inner.Stats() }

// Close implements Client (never faulted).
func (f *FaultClient) Close() error { return f.inner.Close() }
