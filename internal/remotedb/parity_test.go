package remotedb

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/relation"
)

// The golden parity corpus: a table-driven suite asserting that the
// cost-based planner (and its streamed execution path) returns result sets
// identical to the naive materializing executor — as bags always, and in
// order where an ORDER BY key makes the order deterministic. The whole
// corpus runs twice, with and without indexes, so both access paths are held
// to the same oracle.

type parityCase struct {
	sql string
	// ordered marks statements whose ORDER BY key is unique per row, so the
	// full tuple order (not just the bag) must match.
	ordered bool
	// unlimited, when set, is the statement without its LIMIT clause: a LIMIT
	// with no ORDER BY over a join returns an executor-dependent subset, so
	// parity means "N rows, each drawn (with multiplicity) from the full
	// result", not bag equality.
	unlimited string
}

var parityCorpus = []parityCase{
	// Single table: scans, predicates, projection, distinct, order, limit.
	{sql: "SELECT * FROM po"},
	{sql: "SELECT id, amt FROM po WHERE grp = 3"},
	{sql: "SELECT id FROM po WHERE amt > 500.0 AND grp != 2"},
	{sql: "SELECT DISTINCT grp FROM po"},
	{sql: "SELECT id, grp FROM po ORDER BY id", ordered: true},
	{sql: "SELECT id FROM po ORDER BY id LIMIT 7", ordered: true},
	{sql: "SELECT id, grp FROM po LIMIT 5"},
	{sql: "SELECT grp FROM po WHERE cust = 4"},
	// ORDER BY on a non-projected column (satellite fix): sort runs wide.
	{sql: "SELECT grp FROM po ORDER BY id", ordered: false},
	{sql: "SELECT grp, amt FROM po ORDER BY id LIMIT 9", ordered: false},
	// Two-table equi-joins, both directions, with pushdown-able predicates.
	{sql: "SELECT po.id, cu.cname FROM po, cu WHERE po.cust = cu.id"},
	{sql: "SELECT po.id, cu.cname FROM po, cu WHERE po.cust = cu.id AND cu.tier = 1"},
	{sql: "SELECT cu.cname, po.amt FROM cu, po WHERE cu.id = po.cust AND po.grp = 2"},
	{sql: "SELECT po.id, cu.cname FROM po, cu WHERE po.cust = cu.id ORDER BY po.id", ordered: true},
	{sql: "SELECT po.id FROM po, cu WHERE po.cust = cu.id AND cu.tier = 0 ORDER BY po.id LIMIT 6", ordered: true},
	// Three-table chain (join reordering has real choices here).
	{sql: "SELECT po.id, cu.cname, re.rname FROM po, cu, re WHERE po.cust = cu.id AND cu.region = re.id"},
	{sql: "SELECT po.id FROM po, cu, re WHERE po.cust = cu.id AND cu.region = re.id AND re.rname = 'north' ORDER BY po.id", ordered: true},
	// Theta join and cross product.
	{sql: "SELECT a.id, b.id FROM cu a, cu b WHERE a.tier > b.tier AND a.region = b.region"},
	{sql: "SELECT po.id, re.id FROM po, re WHERE po.grp = 1"},
	// Aggregates: grouped, global, joined, ordered, limited.
	{sql: "SELECT grp, COUNT(*), SUM(amt) FROM po GROUP BY grp ORDER BY grp", ordered: true},
	{sql: "SELECT COUNT(*), MIN(amt), MAX(amt), AVG(amt) FROM po"},
	{sql: "SELECT cust, COUNT(*) FROM po GROUP BY cust ORDER BY cust LIMIT 4", ordered: true},
	{sql: "SELECT cu.region, COUNT(*) FROM po, cu WHERE po.cust = cu.id GROUP BY cu.region ORDER BY region", ordered: true},
	{sql: "SELECT grp, MAX(amt) FROM po WHERE amt < 800.0 GROUP BY grp ORDER BY grp", ordered: true},
	// DISTINCT interactions.
	{sql: "SELECT DISTINCT cu.region FROM po, cu WHERE po.cust = cu.id"},
	{sql: "SELECT DISTINCT grp FROM po ORDER BY grp LIMIT 3", ordered: true},
	// LIMIT without ORDER BY over a join (short-circuit pipelines).
	{sql: "SELECT po.id, cu.cname FROM po, cu WHERE po.cust = cu.id LIMIT 5",
		unlimited: "SELECT po.id, cu.cname FROM po, cu WHERE po.cust = cu.id"},
	{sql: "SELECT * FROM po WHERE grp = 0 LIMIT 2"},
	// Indexed-equality shapes (exercise index access under the indexed run).
	{sql: "SELECT id, amt FROM po WHERE cust = 7"},
	{sql: "SELECT po.id FROM po, cu WHERE po.cust = cu.id AND po.cust = 7"},
}

// newParityEngine loads a deterministic three-table workload: po (orders,
// 300 rows) -> cu (customers, 20) -> re (regions, 4).
func newParityEngine(t *testing.T, indexed bool) *Engine {
	t.Helper()
	e := NewEngine()
	mustExec := func(sql string) {
		t.Helper()
		if _, _, err := e.ExecuteSQL(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustExec("CREATE TABLE re (id INT, rname TEXT)")
	mustExec("INSERT INTO re VALUES (0,'north'),(1,'south'),(2,'east'),(3,'west')")
	mustExec("CREATE TABLE cu (id INT, cname TEXT, region INT, tier INT)")
	var cu []string
	for i := 0; i < 20; i++ {
		cu = append(cu, fmt.Sprintf("(%d,'c%02d',%d,%d)", i, i, i%4, i%3))
	}
	mustExec("INSERT INTO cu VALUES " + strings.Join(cu, ","))
	mustExec("CREATE TABLE po (id INT, cust INT, grp INT, amt FLOAT)")
	var po []string
	rng := uint64(42)
	for i := 0; i < 300; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		cust := int(rng>>33) % 20
		grp := int(rng>>21) % 5
		amt := float64(int(rng>>11)%1000) + 0.5
		po = append(po, fmt.Sprintf("(%d,%d,%d,%g)", i, cust, grp, amt))
	}
	mustExec("INSERT INTO po VALUES " + strings.Join(po, ","))
	if indexed {
		if err := e.CreateIndex("po", []int{1}); err != nil { // po.cust
			t.Fatal(err)
		}
		if err := e.CreateIndex("cu", []int{0}); err != nil { // cu.id
			t.Fatal(err)
		}
	}
	return e
}

func runParity(t *testing.T, indexed bool) {
	e := newParityEngine(t, indexed)
	for _, tc := range parityCorpus {
		t.Run(tc.sql, func(t *testing.T) {
			e.SetOptimizer(false)
			want, _, err := e.ExecuteSQL(tc.sql)
			if err != nil {
				t.Fatalf("naive: %v", err)
			}
			var full *relation.Relation
			if tc.unlimited != "" {
				if full, _, err = e.ExecuteSQL(tc.unlimited); err != nil {
					t.Fatalf("naive unlimited: %v", err)
				}
			}
			e.SetOptimizer(true)
			got, _, err := e.ExecuteSQL(tc.sql)
			if err != nil {
				t.Fatalf("planned: %v", err)
			}
			check := func(label string, res *relation.Relation) {
				t.Helper()
				if full != nil {
					assertSubsetOf(t, label, res, full, want.Len())
					return
				}
				assertSameResult(t, label, want, res, tc.ordered)
			}
			check("planned", got)

			// The streamed path must agree too when it accepts the statement.
			if st, ok := e.ExecuteSQLPipeline(tc.sql); ok {
				streamed := relation.Drain(st.Name(), st.Schema(), st)
				check("streamed", streamed)
			} else {
				t.Fatalf("pipeline declined %q with optimizer on", tc.sql)
			}

			// EXPLAIN must render without error for every corpus statement.
			plan, _, err := e.ExecuteSQL("EXPLAIN " + tc.sql)
			if err != nil {
				t.Fatalf("explain: %v", err)
			}
			if plan.Len() < 2 {
				t.Fatalf("explain produced %d lines", plan.Len())
			}
		})
	}
}

func TestParityCorpus(t *testing.T)        { runParity(t, false) }
func TestParityCorpusIndexed(t *testing.T) { runParity(t, true) }

// TestParityCorpusParallel runs the whole corpus with morsel-parallel
// execution forced on (row threshold 1, 32-tuple morsels, so the 300-row po
// splits into ~10 morsels and a dop-4 pool gets real concurrency) at DOP 1
// and 4. Every statement must bag-match the naive oracle on both the planned
// and streamed paths, report no stream error, and charge exactly the serial
// planned run's op count — the parallel agg merge and the partitioned join
// build are the high-risk paths this pins down.
func TestParityCorpusParallel(t *testing.T) {
	for _, dop := range []int{1, 4} {
		t.Run(fmt.Sprintf("dop%d", dop), func(t *testing.T) {
			e := newParityEngine(t, false)
			e.SetParallelMinRows(1)
			e.SetMorselSize(32)
			for _, tc := range parityCorpus {
				t.Run(tc.sql, func(t *testing.T) {
					e.SetOptimizer(false)
					want, _, err := e.ExecuteSQL(tc.sql)
					if err != nil {
						t.Fatalf("naive: %v", err)
					}
					var full *relation.Relation
					if tc.unlimited != "" {
						if full, _, err = e.ExecuteSQL(tc.unlimited); err != nil {
							t.Fatalf("naive unlimited: %v", err)
						}
					}
					e.SetOptimizer(true)
					e.SetParallelism(1)
					_, serialOps, err := e.ExecuteSQL(tc.sql)
					if err != nil {
						t.Fatalf("serial planned: %v", err)
					}
					e.SetParallelism(dop)
					got, parOps, err := e.ExecuteSQL(tc.sql)
					if err != nil {
						t.Fatalf("parallel planned: %v", err)
					}
					check := func(label string, res *relation.Relation) {
						t.Helper()
						if full != nil {
							assertSubsetOf(t, label, res, full, want.Len())
							return
						}
						assertSameResult(t, label, want, res, tc.ordered)
					}
					check("parallel planned", got)
					if parOps != serialOps {
						t.Errorf("ops diverge: parallel %d, serial %d", parOps, serialOps)
					}

					// The streamed path: plan streams must drain clean (nil
					// Err) and agree; Close joins any worker pool.
					st, ok := e.ExecuteSQLPipeline(tc.sql)
					if !ok {
						t.Fatalf("pipeline declined %q with optimizer on", tc.sql)
					}
					streamed := relation.Drain(st.Name(), st.Schema(), st)
					if ps, ok := st.(*PlanStream); ok {
						if err := ps.Err(); err != nil {
							t.Fatalf("streamed: %v", err)
						}
						ps.Close()
					}
					check("parallel streamed", streamed)
				})
			}
		})
	}
}

func assertSameResult(t *testing.T, label string, want, got *relation.Relation, ordered bool) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: rows = %d, want %d", label, got.Len(), want.Len())
	}
	if !got.EqualAsBag(want) {
		t.Fatalf("%s: bag mismatch:\n got %v\nwant %v", label, got.Tuples(), want.Tuples())
	}
	if ordered {
		for i := range want.Tuples() {
			if !got.Tuple(i).Equal(want.Tuple(i)) {
				t.Fatalf("%s: order mismatch at row %d: got %v want %v", label, i, got.Tuple(i), want.Tuple(i))
			}
		}
	}
}

// assertSubsetOf checks a LIMIT-without-ORDER result: same row count as the
// oracle's, and every tuple drawn (with multiplicity) from the full result.
func assertSubsetOf(t *testing.T, label string, got, full *relation.Relation, wantLen int) {
	t.Helper()
	if got.Len() != wantLen {
		t.Fatalf("%s: rows = %d, want %d", label, got.Len(), wantLen)
	}
	avail := make(map[string]int, full.Len())
	for _, tu := range full.Tuples() {
		avail[tu.Key()]++
	}
	for _, tu := range got.Tuples() {
		k := tu.Key()
		if avail[k] == 0 {
			t.Fatalf("%s: tuple %v not in (or over-drawn from) the full result", label, tu)
		}
		avail[k]--
	}
}

// The parser must accept EXPLAIN only before SELECT.
func TestExplainParse(t *testing.T) {
	if _, err := ParseSQL("EXPLAIN SELECT * FROM t"); err != nil {
		t.Fatalf("EXPLAIN SELECT: %v", err)
	}
	if st, _ := ParseSQL("EXPLAIN SELECT * FROM t"); !st.Explain || st.Select == nil {
		t.Fatal("EXPLAIN flag not set")
	}
	if _, err := ParseSQL("EXPLAIN CREATE TABLE t (a INT)"); err == nil {
		t.Fatal("EXPLAIN CREATE accepted")
	}
}

// EXPLAIN output reflects the optimizer's choices: index access paths,
// hash joins with small build sides, pushed-down predicates, TopN fusing.
func TestExplainShowsPlanChoices(t *testing.T) {
	e := newParityEngine(t, true)
	explain := func(sql string) string {
		t.Helper()
		r, _, err := e.ExecuteSQL("EXPLAIN " + sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		var b strings.Builder
		for _, tu := range r.Tuples() {
			b.WriteString(tu[0].AsString())
			b.WriteByte('\n')
		}
		return b.String()
	}

	out := explain("SELECT id FROM po WHERE cust = 7")
	if !strings.Contains(out, "via index(cust)") {
		t.Fatalf("no index access path:\n%s", out)
	}
	out = explain("SELECT po.id, cu.cname FROM po, cu WHERE po.cust = cu.id AND cu.tier = 1")
	if !strings.Contains(out, "hash join") {
		t.Fatalf("no hash join:\n%s", out)
	}
	if !strings.Contains(out, "(build cu, probe streams)") {
		t.Fatalf("build side should be the small filtered cu:\n%s", out)
	}
	if !strings.Contains(out, "where [tier = 1]") {
		t.Fatalf("predicate not pushed into the cu scan:\n%s", out)
	}
	out = explain("SELECT id FROM po ORDER BY id LIMIT 7")
	if !strings.Contains(out, "topn") {
		t.Fatalf("LIMIT not fused into TopN:\n%s", out)
	}
	out = explain("SELECT po.id, cu.cname FROM po, cu WHERE po.cust = cu.id")
	if !strings.Contains(out, "prune po to (id, cust)") {
		t.Fatalf("po not column-pruned:\n%s", out)
	}
}

// The plan cache: repeated statements hit, any catalog mutation invalidates,
// capacity is bounded with LRU eviction.
func TestPlanCache(t *testing.T) {
	e := newParityEngine(t, false)
	base := e.PlanCacheStats()
	const sql = "SELECT grp, COUNT(*) FROM po GROUP BY grp ORDER BY grp"
	for i := 0; i < 10; i++ {
		if _, _, err := e.ExecuteSQL(sql); err != nil {
			t.Fatal(err)
		}
	}
	st := e.PlanCacheStats()
	if misses := st.Misses - base.Misses; misses != 1 {
		t.Fatalf("misses = %d, want 1", misses)
	}
	if hits := st.Hits - base.Hits; hits != 9 {
		t.Fatalf("hits = %d, want 9", hits)
	}

	// Any DML/DDL bumps the epoch and forces a replan.
	if err := e.Insert("re", []relation.Tuple{{relation.Int(9), relation.Str("far")}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.ExecuteSQL(sql); err != nil {
		t.Fatal(err)
	}
	st2 := e.PlanCacheStats()
	if st2.Misses != st.Misses+1 {
		t.Fatalf("insert did not invalidate: misses %d -> %d", st.Misses, st2.Misses)
	}
	if err := e.CreateIndex("po", []int{2}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.ExecuteSQL(sql); err != nil {
		t.Fatal(err)
	}
	if st3 := e.PlanCacheStats(); st3.Misses != st2.Misses+1 {
		t.Fatalf("create index did not invalidate: misses %d -> %d", st2.Misses, st3.Misses)
	}

	// LRU: the cache never exceeds its capacity.
	for i := 0; i < planCacheCap+20; i++ {
		if _, _, err := e.ExecuteSQL(fmt.Sprintf("SELECT id FROM po WHERE id = %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if n := e.PlanCacheStats().Entries; n > planCacheCap {
		t.Fatalf("cache entries = %d > cap %d", n, planCacheCap)
	}
}

// Optimizer-off parity for ops accounting: the planner's single-table op
// counts match the naive executor's conventions exactly (the streaming suite
// already pins ScanStream to Execute; this pins planned to naive).
func TestPlannedOpsMatchNaiveSingleTable(t *testing.T) {
	e := newParityEngine(t, false)
	for _, sql := range []string{
		"SELECT * FROM po",
		"SELECT id, amt FROM po WHERE grp = 3",
		"SELECT id FROM po ORDER BY id",
		"SELECT grp, COUNT(*) FROM po GROUP BY grp",
		"SELECT DISTINCT grp FROM po",
	} {
		e.SetOptimizer(false)
		_, naiveOps, err := e.ExecuteSQL(sql)
		if err != nil {
			t.Fatal(err)
		}
		e.SetOptimizer(true)
		_, planOps, err := e.ExecuteSQL(sql)
		if err != nil {
			t.Fatal(err)
		}
		if naiveOps != planOps {
			t.Errorf("%s: planned ops %d != naive ops %d", sql, planOps, naiveOps)
		}
	}
}

// Error parity: the planner reports the same resolution errors as the naive
// executor.
func TestPlannedErrorParity(t *testing.T) {
	e := newParityEngine(t, false)
	for _, sql := range []string{
		"SELECT nosuch FROM po",
		"SELECT po.nosuch FROM po",
		"SELECT x.id FROM po",
		"SELECT id FROM po, cu",                   // ambiguous
		"SELECT id, * FROM po",                    // star not alone
		"SELECT grp, COUNT(*) FROM po GROUP BY grp ORDER BY amt", // not in result
		"SELECT id FROM nosuch",
	} {
		e.SetOptimizer(false)
		_, _, naiveErr := e.ExecuteSQL(sql)
		e.SetOptimizer(true)
		_, _, planErr := e.ExecuteSQL(sql)
		if naiveErr == nil || planErr == nil {
			t.Fatalf("%s: expected errors, naive=%v planned=%v", sql, naiveErr, planErr)
		}
		if naiveErr.Error() != planErr.Error() {
			t.Errorf("%s: error mismatch:\n naive   %v\n planned %v", sql, naiveErr, planErr)
		}
	}
}
