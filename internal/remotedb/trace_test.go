package remotedb

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// waitSpans polls the tracer until pred sees the spans it wants — the
// server's deferred span commits race with the client observing the final
// frame, so assertions on the server ring need a grace window.
func waitSpans(t *testing.T, tr *obs.Tracer, pred func([]*obs.Span) bool) []*obs.Span {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		spans := tr.Spans()
		if pred(spans) {
			return spans
		}
		if time.Now().After(deadline) {
			var names []string
			for _, s := range spans {
				names = append(names, s.Name)
			}
			t.Fatalf("spans never matched; ring has %v", names)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWireTracePropagationV2: a client span's trace ID rides the v2 exec
// request, so the server's stream and engine spans land in the SAME trace —
// the client and server rings stitch into one cross-tier timeline.
func TestWireTracePropagationV2(t *testing.T) {
	e := newTestEngine(t)
	serverTr := obs.NewTracer(1, 64)
	e.SetTracer(serverTr)
	srv := NewServerWithOptions(e, ServerOptions{Tracer: serverTr})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	p := dialTestPool(t, addr, PoolOptions{})

	clientTr := obs.NewTracer(1, 16)
	ctx, root := clientTr.Start(context.Background(), "client.query")
	if root == nil {
		t.Fatal("client root span not sampled at 1-in-1")
	}
	st, err := p.ExecStream(ctx, "SELECT e.name, d.dname FROM emp e, dept d WHERE e.dept = d.id")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, ok := st.Next(); ok; _, ok = st.Next() {
		n++
	}
	if st.Err() != nil || n != 4 {
		t.Fatalf("join over wire: n=%d err=%v", n, st.Err())
	}
	root.End()

	spans := waitSpans(t, serverTr, func(spans []*obs.Span) bool {
		for _, s := range spans {
			if s.Name == "server.stream" && s.TraceID == root.TraceID {
				return true
			}
		}
		return false
	})
	// The join is planned, so engine spans must have joined the trace too.
	joined := map[string]bool{}
	for _, s := range spans {
		if s.TraceID == root.TraceID {
			joined[s.Name] = true
		}
	}
	if !joined["engine.plancache"] && !joined["engine.optimize"] && !joined["engine.execute"] {
		t.Fatalf("no engine span joined trace %x; server recorded %v", root.TraceID, joined)
	}
}

// TestWireTraceV1Graceful: a v1 peer has no Trace field on the wire; the
// traced client still works against it and the server simply records nothing
// in the client's trace.
func TestWireTraceV1Graceful(t *testing.T) {
	e := newTestEngine(t)
	serverTr := obs.NewTracer(1, 64)
	srv := NewServerWithOptions(e, ServerOptions{MaxProto: 1, Tracer: serverTr})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	p := dialTestPool(t, addr, PoolOptions{})
	if p.Proto() != protoV1 {
		t.Fatalf("negotiated proto = %d, want v1", p.Proto())
	}

	clientTr := obs.NewTracer(1, 16)
	ctx, root := clientTr.Start(context.Background(), "client.query")
	res, err := p.ExecCtx(ctx, "SELECT * FROM dept")
	if err != nil || res.Rel.Len() != 3 {
		t.Fatalf("traced exec against v1 server: %v %v", res, err)
	}
	root.End()
	for _, s := range serverTr.Spans() {
		if s.TraceID == root.TraceID {
			t.Fatalf("v1 server unexpectedly joined client trace: %+v", s)
		}
	}
}

// TestStreamResumeKeepsTraceID: a resumed stream re-issues the request under
// the ORIGINAL trace ID, so the kill-and-resume pair shows up as two
// server.stream spans in one trace rather than a fresh unexplained stream.
func TestStreamResumeKeepsTraceID(t *testing.T) {
	e := NewEngine()
	loadBigTable(t, e, 120)
	serverTr := obs.NewTracer(1, 64)
	srv := NewServerWithOptions(e, ServerOptions{FrameTuples: 8, Tracer: serverTr})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	p := dialTestPool(t, addr, PoolOptions{FrameTuples: 8, Redial: true})

	const traceID = 0xBEEF
	ctx := obs.WithTraceID(context.Background(), traceID)
	const src = "SELECT v FROM big WHERE k < 100"
	st, err := p.ExecStream(ctx, src)
	if err != nil {
		t.Fatal(err)
	}
	token, _ := st.(ResumeReporter).ResumeState()
	if token == "" {
		t.Fatal("no resume token on the scan header")
	}
	var head int64
	for i := 0; i < 37; i++ {
		if _, ok := st.Next(); !ok {
			t.Fatalf("tuple %d missing: %v", i, st.Err())
		}
		head++
	}
	p.breakConn()
	st.Close()

	var re TupleStream
	for attempt := 0; ; attempt++ {
		re, err = p.ExecStreamResume(ctx, src, token, head)
		if err == nil {
			break
		}
		if attempt > 50 || !IsTransient(err) {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := drainTuples(re); err != nil {
		t.Fatal(err)
	}

	waitSpans(t, serverTr, func(spans []*obs.Span) bool {
		n := 0
		for _, s := range spans {
			if s.Name == "server.stream" && s.TraceID == traceID {
				n++
			}
		}
		return n >= 2
	})
}

// TestExplainAnalyzeJoinOverWire: EXPLAIN ANALYZE on a 2-table join reports
// per-node estimated vs actual rows/ops/time, both engine-direct and over
// the pooled wire transport (the `.explain` path braid-repl uses).
func TestExplainAnalyzeJoinOverWire(t *testing.T) {
	e := newTestEngine(t)
	srv := NewServerWithOptions(e, ServerOptions{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const stmt = "EXPLAIN ANALYZE SELECT e.name, d.dname FROM emp e, dept d WHERE e.dept = d.id"
	check := func(where string, rel fmt.Stringer) {
		t.Helper()
		out := rel.String()
		for _, want := range []string{"est rows", "actual rows", "ops", "time", "plan cache"} {
			if !strings.Contains(out, want) {
				t.Fatalf("%s EXPLAIN ANALYZE missing %q:\n%s", where, want, out)
			}
		}
	}

	rel, _, err := e.ExecuteSQL(stmt)
	if err != nil {
		t.Fatal(err)
	}
	check("engine", rel)

	p := dialTestPool(t, addr, PoolOptions{})
	res, err := p.Exec(stmt)
	if err != nil {
		t.Fatal(err)
	}
	check("wire", res.Rel)
	// Header (est vs actual totals) plus at least a join node and two scans.
	if res.Rel.Len() < 4 {
		t.Fatalf("EXPLAIN ANALYZE of a join returned %d lines, want >= 4:\n%s",
			res.Rel.Len(), res.Rel)
	}
}

// TestPoolStatsSnapshotUnderLoad reads client and server stats snapshots
// while streams are in flight; under -race this proves the counters are
// genuinely atomic rather than racily summed.
func TestPoolStatsSnapshotUnderLoad(t *testing.T) {
	e := newTestEngine(t)
	srv := NewServerWithOptions(e, ServerOptions{FrameTuples: 1})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	p := dialTestPool(t, addr, PoolOptions{Size: 2, FrameTuples: 1})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st, err := p.ExecStream(context.Background(), "SELECT * FROM emp")
				if err != nil {
					continue
				}
				for _, ok := st.Next(); ok; _, ok = st.Next() {
				}
			}
		}()
	}
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		_ = p.Stats()
		_ = srv.ServerStats()
	}
	close(stop)
	wg.Wait()
	if st := p.Stats(); st.Streams == 0 || st.FramesRecv == 0 {
		t.Fatalf("no traffic recorded: %+v", st)
	}
}
