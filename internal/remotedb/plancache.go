package remotedb

import "sync"

// The plan cache maps canonical statement text (hashed with StatementHash)
// to compiled Plans. Entries carry the catalog epoch they were built
// against; any DDL or data mutation (CreateTable, LoadTable, Insert,
// CreateIndex) bumps the engine epoch, which lazily invalidates every older
// entry on its next lookup. Eviction is least-recently-used over a small
// fixed capacity — the cache exists to make repeated statements cheap, not
// to remember every statement ever seen.

// planCacheCap bounds the number of cached plans per engine.
const planCacheCap = 256

type planCache struct {
	mu      sync.Mutex
	cap     int
	tick    uint64 // logical clock for LRU
	entries map[uint64]*planEntry
}

type planEntry struct {
	p    *Plan
	used uint64
}

func newPlanCache(capacity int) *planCache {
	return &planCache{cap: capacity, entries: make(map[uint64]*planEntry)}
}

// get returns the cached plan for key if it was built at the given epoch,
// dropping (and missing on) any stale entry.
func (c *planCache) get(key, epoch uint64) *Plan {
	c.mu.Lock()
	defer c.mu.Unlock()
	en := c.entries[key]
	if en == nil {
		return nil
	}
	if en.p.epoch != epoch {
		delete(c.entries, key)
		return nil
	}
	c.tick++
	en.used = c.tick
	return en.p
}

func (c *planCache) put(key uint64, p *Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; !ok && len(c.entries) >= c.cap {
		var lruKey uint64
		var lruUsed uint64
		first := true
		for k, en := range c.entries {
			if first || en.used < lruUsed {
				lruKey, lruUsed, first = k, en.used, false
			}
		}
		delete(c.entries, lruKey)
	}
	c.tick++
	c.entries[key] = &planEntry{p: p, used: c.tick}
}

func (c *planCache) remove(key uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.entries, key)
}

func (c *planCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// PlanCacheStats is a point-in-time snapshot of plan-cache effectiveness.
type PlanCacheStats struct {
	Hits, Misses int64
	Entries      int
}

// PlanCacheStats reports cumulative plan-cache hits/misses and the current
// entry count.
func (e *Engine) PlanCacheStats() PlanCacheStats {
	return PlanCacheStats{
		Hits:    e.planHits.Load(),
		Misses:  e.planMisses.Load(),
		Entries: e.plans.size(),
	}
}
