package remotedb

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/relation"
)

// openDurable opens a durable engine on dir with fsync=always, failing the
// test on error.
func openDurable(t *testing.T, dir string, mut func(*Durability)) (*Engine, *RecoveryStats) {
	t.Helper()
	d := Durability{Dir: dir, Fsync: FsyncAlways}
	if mut != nil {
		mut(&d)
	}
	e, st, err := OpenEngine(d)
	if err != nil {
		t.Fatalf("OpenEngine(%s): %v", dir, err)
	}
	return e, st
}

// tableStrings drains a table's first column as strings via a full scan.
func tableStrings(t *testing.T, e *Engine, table string) []string {
	t.Helper()
	rel, _, err := e.ExecuteSQL("SELECT * FROM " + table)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, tu := range rel.Tuples() {
		out = append(out, tu[0].String())
	}
	return out
}

// TestRecoveryRoundTrip: every mutation kind — CreateTable, Insert, LoadTable,
// CreateIndex — lands in the log and is rebuilt by a reopen, with the restart
// record bumping versions and epoch past anything the first process minted.
func TestRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	e, st := openDurable(t, dir, nil)
	if st.Replayed != 0 || st.CheckpointTables != 0 || st.Epoch != 0 {
		t.Fatalf("fresh directory recovered state: %+v", st)
	}
	if _, _, err := e.ExecuteSQL("CREATE TABLE emp (id INT, name TEXT)"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.ExecuteSQL("INSERT INTO emp VALUES (1,'ada'),(2,'bob')"); err != nil {
		t.Fatal(err)
	}
	dept := relation.New("dept", relation.NewSchema(
		relation.Attr{Name: "d", Kind: relation.KindInt},
		relation.Attr{Name: "title", Kind: relation.KindString},
	))
	dept.MustAppend(relation.Tuple{relation.Int(10), relation.Str("eng")})
	e.LoadTable(dept)
	if err := e.CreateIndex("emp", []int{0}); err != nil {
		t.Fatal(err)
	}
	epochBefore := e.Epoch()
	wantEmp := tableStrings(t, e, "emp")
	wantDept := tableStrings(t, e, "dept")
	if err := e.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	r, st2 := openDurable(t, dir, nil)
	defer r.CloseWAL()
	if st2.Replayed == 0 {
		t.Fatalf("reopen replayed nothing: %+v", st2)
	}
	if got := tableStrings(t, r, "emp"); !equalStrings(got, wantEmp) {
		t.Fatalf("emp after recovery: %v, want %v", got, wantEmp)
	}
	if got := tableStrings(t, r, "dept"); !equalStrings(got, wantDept) {
		t.Fatalf("dept after recovery: %v, want %v", got, wantDept)
	}
	if len(r.indexes["emp"]) != 1 || r.indexes["emp"][0].Cols()[0] != 0 {
		t.Fatal("index on emp(id) did not survive recovery")
	}
	if st2.Epoch <= epochBefore {
		t.Fatalf("recovery epoch %d not past pre-restart epoch %d", st2.Epoch, epochBefore)
	}
	// The recovered engine keeps working durably.
	if _, _, err := r.ExecuteSQL("INSERT INTO emp VALUES (3,'eve')"); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryTornTail: a partial frame at the end of the live segment —
// what a crash mid-write leaves — is truncated (counted in the stats and cut
// from the file), and every record before it is recovered.
func TestRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	e, _ := openDurable(t, dir, nil)
	if _, _, err := e.ExecuteSQL("CREATE TABLE t (k INT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, _, err := e.ExecuteSQL(fmt.Sprintf("INSERT INTO t VALUES (%d)", i)); err != nil {
			t.Fatal(err)
		}
	}
	e.CloseWAL()

	seg := walSegmentPath(dir, 0)
	clean, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the torn write: a partial frame header after the clean log.
	torn := append(append([]byte(nil), clean...), 0x00, 0x00, 0x01)
	if err := os.WriteFile(seg, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	r, st := openDurable(t, dir, nil)
	defer r.CloseWAL()
	if st.TruncatedBytes != 3 {
		t.Fatalf("TruncatedBytes = %d, want 3", st.TruncatedBytes)
	}
	if got := tableStrings(t, r, "t"); len(got) != 5 {
		t.Fatalf("recovered %d rows, want 5", len(got))
	}
	// The tail was physically cut before the restart record was appended, so
	// the segment is valid again: a third open must see no new truncation.
	r.CloseWAL()
	_, st2 := openDurable(t, dir, nil)
	if st2.TruncatedBytes != 0 {
		t.Fatalf("second recovery still truncating: %+v", st2)
	}
}

// TestRecoveryRefusesMidLogCorruption: damage before the final frame aborts
// recovery with ErrWALCorrupt instead of silently dropping acknowledged
// writes.
func TestRecoveryRefusesMidLogCorruption(t *testing.T) {
	dir := t.TempDir()
	e, _ := openDurable(t, dir, nil)
	if _, _, err := e.ExecuteSQL("CREATE TABLE t (k INT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, _, err := e.ExecuteSQL(fmt.Sprintf("INSERT INTO t VALUES (%d)", i)); err != nil {
			t.Fatal(err)
		}
	}
	e.CloseWAL()

	seg := walSegmentPath(dir, 0)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the FIRST record — unambiguously mid-log (five
	// acknowledged records follow it). A flip landing in a length field can
	// masquerade as a torn tail; a payload CRC mismatch cannot.
	data[walFrameHeader+5] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenEngine(Durability{Dir: dir}); !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("OpenEngine on corrupt log: err=%v, want ErrWALCorrupt", err)
	}
}

// TestRecoveryAfterInjectedCrash: the seeded crashpoint tears an append
// mid-frame and kills the WAL; reopening the directory recovers exactly the
// acknowledged prefix — the torn record is truncated, never half-applied.
func TestRecoveryAfterInjectedCrash(t *testing.T) {
	dir := t.TempDir()
	e, _ := openDurable(t, dir, func(d *Durability) {
		d.Crash = &WALCrash{Seed: 7, Rate: 0.2}
	})
	if _, _, err := e.ExecuteSQL("CREATE TABLE t (k INT, v TEXT)"); err != nil {
		t.Fatal(err)
	}
	var acked []string
	crashed := false
	for i := 0; i < 200; i++ {
		_, _, err := e.ExecuteSQL(fmt.Sprintf("INSERT INTO t VALUES (%d,'v%d')", i, i))
		if err == nil {
			acked = append(acked, fmt.Sprintf("%d", i))
			continue
		}
		if !errors.Is(err, ErrWALCrashed) {
			t.Fatalf("insert %d: %v", i, err)
		}
		crashed = true
		// Everything after the crashpoint is refused, like a dead process.
		if _, _, err := e.ExecuteSQL("INSERT INTO t VALUES (999,'x')"); err == nil {
			t.Fatal("insert accepted after the WAL crashed")
		}
		break
	}
	if !crashed {
		t.Fatal("crashpoint never fired at rate 0.2 over 200 appends")
	}

	r, st := openDurable(t, dir, nil)
	defer r.CloseWAL()
	if st.TruncatedBytes == 0 {
		t.Fatal("crashpoint left no torn tail to truncate")
	}
	got := tableStrings(t, r, "t")
	if !equalStrings(got, acked) {
		t.Fatalf("recovered %d rows, want the %d acked (prefix durability): %v vs %v",
			len(got), len(acked), got, acked)
	}
}

// TestRecoveryBatchAtomicity: a multi-row INSERT is one WAL record; a crash
// tearing it recovers NONE of its rows — never a partially applied batch.
func TestRecoveryBatchAtomicity(t *testing.T) {
	dir := t.TempDir()
	e, _ := openDurable(t, dir, func(d *Durability) {
		d.Crash = &WALCrash{Seed: 1, Rate: 1} // next append tears
	})
	// The crashpoint fires on the very first append (CREATE TABLE), so set up
	// schema first WITHOUT the crash, then reopen with it.
	_, _, err := e.ExecuteSQL("CREATE TABLE t (k INT)")
	if !errors.Is(err, ErrWALCrashed) {
		t.Fatalf("rate-1 crashpoint did not fire: %v", err)
	}

	// Fresh directory: schema durable first, then the torn batch.
	dir2 := t.TempDir()
	e2, _ := openDurable(t, dir2, nil)
	if _, _, err := e2.ExecuteSQL("CREATE TABLE t (k INT)"); err != nil {
		t.Fatal(err)
	}
	e2.CloseWAL()
	// Reopening non-empty state appends a restart record, which draws from the
	// crash RNG too: seed 0 at rate 0.5 lets that first append through
	// (draw 0.945) and tears the second — the batch insert (draw 0.245).
	e3, _ := openDurable(t, dir2, func(d *Durability) {
		d.Crash = &WALCrash{Seed: 0, Rate: 0.5}
	})
	if _, _, err := e3.ExecuteSQL("INSERT INTO t VALUES (1),(2),(3)"); !errors.Is(err, ErrWALCrashed) {
		t.Fatalf("batch insert under rate-1 crashpoint: %v", err)
	}
	r, _ := openDurable(t, dir2, nil)
	defer r.CloseWAL()
	if got := tableStrings(t, r, "t"); len(got) != 0 {
		t.Fatalf("torn batch partially recovered: %v", got)
	}
}

// TestRecoveryInvalidatesResumeTokens: a resume token minted before a crash is
// refused after recovery — and stays refused across a SECOND crash, because
// the restart record that bumps the version is itself logged.
func TestRecoveryInvalidatesResumeTokens(t *testing.T) {
	dir := t.TempDir()
	e, _ := openDurable(t, dir, nil)
	if _, _, err := e.ExecuteSQL("CREATE TABLE t (k INT)"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.ExecuteSQL("INSERT INTO t VALUES (1),(2),(3)"); err != nil {
		t.Fatal(err)
	}
	const src = "SELECT k FROM t"
	sc, ok := e.ExecuteSQLStream(src)
	if !ok {
		t.Fatalf("%q not streamable", src)
	}
	drainScan(sc)
	tok := sc.ResumeToken()
	e.CloseWAL()

	r1, _ := openDurable(t, dir, nil)
	if _, ok := r1.ResumeSQLStream(src, tok, 1); ok {
		t.Fatal("pre-crash resume token accepted after first recovery")
	}
	tok1 := mustToken(t, r1, src)
	r1.CloseWAL()

	// Second crash cycle: the first recovery's token must ALSO be dead, and
	// the original one must still be dead (versions move strictly forward).
	r2, _ := openDurable(t, dir, nil)
	defer r2.CloseWAL()
	if _, ok := r2.ResumeSQLStream(src, tok, 1); ok {
		t.Fatal("pre-crash resume token accepted after second recovery")
	}
	if _, ok := r2.ResumeSQLStream(src, tok1, 1); ok {
		t.Fatal("first recovery's token accepted after second recovery")
	}
	if _, ok := r2.ResumeSQLStream(src, mustToken(t, r2, src), 1); !ok {
		t.Fatal("a token minted by the live engine must resume")
	}
}

func mustToken(t *testing.T, e *Engine, src string) ResumeToken {
	t.Helper()
	sc, ok := e.ExecuteSQLStream(src)
	if !ok {
		t.Fatalf("%q not streamable", src)
	}
	drainScan(sc)
	return sc.ResumeToken()
}

// TestRecoveryRotationBoundsLog: with a tiny segment budget the WAL rotates
// behind checkpoints, old generations are deleted, and recovery from
// checkpoint + tail rebuilds the same state as replaying everything would.
func TestRecoveryRotationBoundsLog(t *testing.T) {
	dir := t.TempDir()
	e, _ := openDurable(t, dir, func(d *Durability) {
		d.SegmentBytes = 4 << 10
	})
	if _, _, err := e.ExecuteSQL("CREATE TABLE t (k INT, v TEXT)"); err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		if _, _, err := e.ExecuteSQL(fmt.Sprintf("INSERT INTO t VALUES (%d,'v%d')", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	// The index goes on last: inserts invalidate indexes (they are snapshots),
	// so only a post-insert index exists at close to survive recovery.
	if err := e.CreateIndex("t", []int{0}); err != nil {
		t.Fatal(err)
	}
	ws := e.WALStats()
	if ws.Rotations == 0 {
		t.Fatalf("no rotations over %d bytes of appends with a 4KiB budget", ws.Bytes)
	}
	e.CloseWAL()

	// Exactly one generation remains on disk.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs, ckpts int
	for _, ent := range ents {
		switch filepath.Ext(ent.Name()) {
		case ".log":
			segs++
		case ".ckpt":
			ckpts++
		}
	}
	if segs != 1 || ckpts != 1 {
		t.Fatalf("directory holds %d segments and %d checkpoints, want 1 and 1", segs, ckpts)
	}

	r, st := openDurable(t, dir, nil)
	defer r.CloseWAL()
	if st.CheckpointTables != 1 || st.Gen == 0 {
		t.Fatalf("recovery did not start from a rotated checkpoint: %+v", st)
	}
	if got := tableStrings(t, r, "t"); len(got) != n {
		t.Fatalf("recovered %d rows, want %d", len(got), n)
	}
	if len(r.indexes["t"]) != 1 {
		t.Fatal("index did not survive checkpointed recovery")
	}
}

// TestRecoveryFsyncPolicies: interval and off policies still recover a cleanly
// closed log (Close syncs); the flag parser round-trips every policy.
func TestRecoveryFsyncPolicies(t *testing.T) {
	for _, pol := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncOff} {
		parsed, err := ParseFsyncPolicy(pol.String())
		if err != nil || parsed != pol {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v", pol.String(), parsed, err)
		}
		dir := t.TempDir()
		e, _ := openDurable(t, dir, func(d *Durability) { d.Fsync = pol })
		if _, _, err := e.ExecuteSQL("CREATE TABLE t (k INT)"); err != nil {
			t.Fatal(err)
		}
		if _, _, err := e.ExecuteSQL("INSERT INTO t VALUES (1),(2)"); err != nil {
			t.Fatal(err)
		}
		e.CloseWAL()
		r, _ := openDurable(t, dir, nil)
		if got := tableStrings(t, r, "t"); len(got) != 2 {
			t.Fatalf("policy %v: recovered %d rows, want 2", pol, len(got))
		}
		r.CloseWAL()
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseFsyncPolicy accepted garbage")
	}
}

// TestWALStickyError: after any WAL failure the engine refuses all further
// mutations instead of diverging from its log.
func TestWALStickyError(t *testing.T) {
	dir := t.TempDir()
	e, _ := openDurable(t, dir, func(d *Durability) {
		d.Crash = &WALCrash{Seed: 3, Rate: 1}
	})
	if _, _, err := e.ExecuteSQL("CREATE TABLE t (k INT)"); !errors.Is(err, ErrWALCrashed) {
		t.Fatalf("want ErrWALCrashed, got %v", err)
	}
	// The failed mutation must not have been applied...
	if _, err := e.Schema("t"); err == nil {
		t.Fatal("crashed CREATE TABLE was applied in memory")
	}
	// ...and every later mutation fails fast on the sticky error.
	if err := e.CreateIndex("t", []int{0}); err == nil {
		t.Fatal("mutation accepted after a WAL failure")
	}
}
