package remotedb

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// walTestRecords is one record of every kind, with the fields that kind uses
// populated — the framing round-trip corpus.
func walTestRecords() []*walRecord {
	return []*walRecord{
		{Kind: walCreateTable, Name: "emp", Attrs: []wireAttr{{Name: "id", Kind: 1}, {Name: "name", Kind: 3}}},
		{Kind: walLoadTable, Rel: &wireRelation{
			Name:   "dept",
			Attrs:  []wireAttr{{Name: "d", Kind: 1}, {Name: "title", Kind: 3}},
			Tuples: [][]wireValue{{{Kind: 1, I: 1}, {Kind: 3, S: "eng"}}, {{Kind: 1, I: 2}, {Kind: 3, S: "ops"}}},
		}},
		{Kind: walInsert, Name: "emp", Rows: [][]wireValue{
			{{Kind: 1, I: 7}, {Kind: 3, S: "ada"}},
			{{Kind: 1, I: 8}, {Kind: 3, S: "käte"}}, // non-ASCII survives framing
			{{Kind: 1, I: -1}, {Kind: 0}},           // NULL value
		}},
		{Kind: walCreateIndex, Name: "emp", Cols: []int{0, 1}},
		{Kind: walRestart},
	}
}

// writeWALFile frames recs (assigning contiguous sequence numbers from 1) into
// one segment file and returns its path.
func writeWALFile(t *testing.T, recs []*walRecord) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal-000000.log")
	var data []byte
	for i, rec := range recs {
		rec.Seq = uint64(i + 1)
		frame, err := encodeWALRecord(rec)
		if err != nil {
			t.Fatalf("encode record %d: %v", i, err)
		}
		data = append(data, frame...)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// scanAll scans path collecting every delivered record.
func scanAll(t *testing.T, path string, final bool) ([]*walRecord, walScanResult, error) {
	t.Helper()
	var got []*walRecord
	res, err := scanWALSegment(path, final, func(rec *walRecord) error {
		got = append(got, rec)
		return nil
	})
	return got, res, err
}

// TestWALFrameRoundTripAllKinds: every record kind survives encode → scan with
// all fields intact.
func TestWALFrameRoundTripAllKinds(t *testing.T) {
	recs := walTestRecords()
	path := writeWALFile(t, recs)
	got, res, err := scanAll(t, path, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.truncated != 0 || res.records != len(recs) || len(got) != len(recs) {
		t.Fatalf("scan of clean log: %+v, %d records delivered", res, len(got))
	}
	for i, rec := range recs {
		g := got[i]
		if g.Seq != rec.Seq || g.Kind != rec.Kind || g.Name != rec.Name {
			t.Fatalf("record %d header mismatch: got %+v want %+v", i, g, rec)
		}
		switch rec.Kind {
		case walCreateTable:
			if len(g.Attrs) != len(rec.Attrs) || g.Attrs[1] != rec.Attrs[1] {
				t.Fatalf("CreateTable attrs mismatch: %+v", g.Attrs)
			}
		case walLoadTable:
			if g.Rel == nil || g.Rel.Name != rec.Rel.Name || len(g.Rel.Tuples) != len(rec.Rel.Tuples) {
				t.Fatalf("LoadTable relation mismatch: %+v", g.Rel)
			}
		case walInsert:
			if len(g.Rows) != len(rec.Rows) || g.Rows[1][1].S != rec.Rows[1][1].S || g.Rows[2][1].Kind != 0 {
				t.Fatalf("Insert rows mismatch: %+v", g.Rows)
			}
		case walCreateIndex:
			if len(g.Cols) != 2 || g.Cols[0] != 0 || g.Cols[1] != 1 {
				t.Fatalf("CreateIndex cols mismatch: %+v", g.Cols)
			}
		}
	}
}

// TestWALScanTruncation: for EVERY strict prefix of a valid log, the final
// segment scan recovers exactly the fully framed records and reports the rest
// as a torn tail — while a non-final segment refuses the same damage as
// corruption. No prefix may hang, panic, or deliver a partial record.
func TestWALScanTruncation(t *testing.T) {
	recs := walTestRecords()
	path := writeWALFile(t, recs)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Frame boundaries: offsets at which a prefix is a whole number of records.
	bounds := map[int]int{0: 0} // prefix length → records contained
	off, n := 0, 0
	for off < len(full) {
		length := int(binary.BigEndian.Uint32(full[off : off+4]))
		off += walFrameHeader + length
		n++
		bounds[off] = n
	}

	cut := filepath.Join(t.TempDir(), "wal-000000.log")
	for i := 0; i <= len(full); i++ {
		if err := os.WriteFile(cut, full[:i], 0o644); err != nil {
			t.Fatal(err)
		}
		got, res, err := scanAll(t, cut, true)
		if err != nil {
			t.Fatalf("prefix %d/%d: final-segment scan errored: %v", i, len(full), err)
		}
		wantRecs, whole := boundsBelow(bounds, i)
		if len(got) != wantRecs || res.records != wantRecs {
			t.Fatalf("prefix %d: delivered %d records, want %d", i, len(got), wantRecs)
		}
		if whole && res.truncated != 0 {
			t.Fatalf("prefix %d is whole records but reported %d truncated bytes", i, res.truncated)
		}
		if !whole && res.truncated == 0 {
			t.Fatalf("prefix %d ends mid-frame but reported no truncation", i)
		}
		if res.goodSize+res.truncated != int64(i) {
			t.Fatalf("prefix %d: goodSize %d + truncated %d != file size", i, res.goodSize, res.truncated)
		}

		// The same prefix as a NON-final segment: mid-frame damage is
		// corruption, whole-record prefixes are clean.
		_, _, err = scanAll(t, cut, false)
		if whole && err != nil {
			t.Fatalf("prefix %d: non-final scan of whole records errored: %v", i, err)
		}
		if !whole && !errors.Is(err, ErrWALCorrupt) {
			t.Fatalf("prefix %d: non-final scan of torn frame: err=%v, want ErrWALCorrupt", i, err)
		}
	}
}

// boundsBelow returns the record count of the longest whole-record boundary at
// or below i, and whether i itself is a boundary.
func boundsBelow(bounds map[int]int, i int) (recs int, whole bool) {
	if n, ok := bounds[i]; ok {
		return n, true
	}
	best := 0
	for off, n := range bounds {
		if off < i && n > best {
			best = n
		}
	}
	return best, false
}

// TestWALScanMidLogCorruption: a bit flip anywhere before the final frame is
// refused with ErrWALCorrupt even on the final segment — torn writes only
// damage the tail, so mid-log damage means acknowledged history is gone.
func TestWALScanMidLogCorruption(t *testing.T) {
	recs := walTestRecords()
	path := writeWALFile(t, recs)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Find the start of the final frame.
	off, lastStart := 0, 0
	for off < len(full) {
		lastStart = off
		length := int(binary.BigEndian.Uint32(full[off : off+4]))
		off += walFrameHeader + length
	}

	cut := filepath.Join(t.TempDir(), "wal-000000.log")
	for _, pos := range []int{4, walFrameHeader + 2, lastStart - 3} {
		mut := append([]byte(nil), full...)
		mut[pos] ^= 0xff
		if err := os.WriteFile(cut, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, err := scanAll(t, cut, true)
		if !errors.Is(err, ErrWALCorrupt) {
			t.Fatalf("flip at %d: err=%v, want ErrWALCorrupt", pos, err)
		}
		var ce *WALCorruptError
		if !errors.As(err, &ce) || ce.Path != cut {
			t.Fatalf("flip at %d: error %v is not a located WALCorruptError", pos, err)
		}
	}

	// A CRC mismatch on the FINAL frame of the final segment is a torn tail
	// (out-of-order block writeback), not corruption.
	mut := append([]byte(nil), full...)
	mut[len(mut)-1] ^= 0xff
	if err := os.WriteFile(cut, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	got, res, err := scanAll(t, cut, true)
	if err != nil {
		t.Fatalf("final-frame flip: %v", err)
	}
	if len(got) != len(recs)-1 || res.truncated == 0 {
		t.Fatalf("final-frame flip: %d records, %d truncated; want %d records and a torn tail",
			len(got), res.truncated, len(recs)-1)
	}
	// But the same flip mid-segment (non-final) is corruption.
	if _, _, err := scanAll(t, cut, false); !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("final-frame flip on non-final segment: err=%v, want ErrWALCorrupt", err)
	}
}

// TestWALScanGarbageLength: a zero or implausibly large length field is
// corruption ANYWHERE, including at EOF of the final segment — no torn write
// produces one, and honoring it would attempt a giant allocation.
func TestWALScanGarbageLength(t *testing.T) {
	recs := walTestRecords()
	path := writeWALFile(t, recs)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := filepath.Join(t.TempDir(), "wal-000000.log")
	for name, length := range map[string]uint32{"zero": 0, "huge": 1 << 31} {
		garbage := make([]byte, walFrameHeader)
		binary.BigEndian.PutUint32(garbage[0:4], length)
		mut := append(append([]byte(nil), full...), garbage...)
		if err := os.WriteFile(cut, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		got, _, err := scanAll(t, cut, true)
		if !errors.Is(err, ErrWALCorrupt) {
			t.Fatalf("%s length at EOF: err=%v, want ErrWALCorrupt", name, err)
		}
		if len(got) != len(recs) {
			t.Fatalf("%s length: %d records delivered before refusal, want %d", name, len(got), len(recs))
		}
	}
}

// TestWALScanUndecodablePayload: a payload whose CRC is valid but whose bytes
// do not gob-decode to a walRecord is corruption (the bytes are provably what
// the writer wrote, so the record is alien).
func TestWALScanUndecodablePayload(t *testing.T) {
	junk := encodeWALFrame([]byte("not a gob stream at all"))
	path := filepath.Join(t.TempDir(), "wal-000000.log")
	if err := os.WriteFile(path, junk, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := scanAll(t, path, true); !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("CRC-valid garbage payload: err=%v, want ErrWALCorrupt", err)
	}
}

// TestWALScanSequenceGap: records must be contiguous; a gap means a record
// went missing and the log cannot be trusted.
func TestWALScanSequenceGap(t *testing.T) {
	recs := walTestRecords()
	path := writeWALFile(t, recs)
	// Re-frame with a gap: drop the middle record's frame bytes entirely.
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var offs []int
	off := 0
	for off < len(full) {
		offs = append(offs, off)
		off += walFrameHeader + int(binary.BigEndian.Uint32(full[off:off+4]))
	}
	gapped := append(append([]byte(nil), full[:offs[1]]...), full[offs[2]:]...)
	cut := filepath.Join(t.TempDir(), "wal-000000.log")
	if err := os.WriteFile(cut, gapped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := scanAll(t, cut, true); !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("sequence gap: err=%v, want ErrWALCorrupt", err)
	}
}

// TestCheckpointRoundTrip: a checkpoint survives write → read, and damage to
// any single byte is refused with ErrWALCorrupt.
func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ck := &walCheckpoint{
		Gen:      3,
		Epoch:    17,
		Versions: map[string]uint64{"emp": 4, "dept": 1},
		Tables: []*wireRelation{{
			Name:   "emp",
			Attrs:  []wireAttr{{Name: "id", Kind: 1}},
			Tuples: [][]wireValue{{{Kind: 1, I: 42}}},
		}},
		Indexes: map[string][][]int{"emp": {{0}}},
	}
	if err := writeCheckpoint(dir, ck); err != nil {
		t.Fatal(err)
	}
	got, err := readCheckpoint(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got.Gen != 3 || got.Epoch != 17 || got.Versions["emp"] != 4 ||
		len(got.Tables) != 1 || got.Tables[0].Tuples[0][0].I != 42 ||
		len(got.Indexes["emp"]) != 1 {
		t.Fatalf("checkpoint round trip mismatch: %+v", got)
	}

	path := walCheckpointPath(dir, 3)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range []int{0, 5, walFrameHeader + 1, len(full) - 1} {
		mut := append([]byte(nil), full...)
		mut[pos] ^= 0xff
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := readCheckpoint(dir, 3); !errors.Is(err, ErrWALCorrupt) {
			t.Fatalf("checkpoint flip at %d: err=%v, want ErrWALCorrupt", pos, err)
		}
	}
	// Truncated checkpoint (torn rename cannot produce this — the write is
	// atomic via rename — but a damaged disk can): refused, not replayed.
	if err := os.WriteFile(path, full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readCheckpoint(dir, 3); !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("truncated checkpoint: err=%v, want ErrWALCorrupt", err)
	}
}

// FuzzScanWALSegment: arbitrary file bytes must never panic the scanner, never
// hang it, and never deliver a record from an invalid frame. Mirrors the wire
// frame fuzz (PR 5): the decoder's attack surface is the raw file.
func FuzzScanWALSegment(f *testing.F) {
	recs := walTestRecords()
	var valid []byte
	for i, rec := range recs {
		rec.Seq = uint64(i + 1)
		frame, err := encodeWALRecord(rec)
		if err != nil {
			f.Fatal(err)
		}
		valid = append(valid, frame...)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "wal-000000.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		for _, final := range []bool{true, false} {
			res, err := scanWALSegment(path, final, func(rec *walRecord) error {
				// Every delivered record passed length, CRC, decode, and kind
				// validation; re-encoding it must produce a valid frame.
				if rec.Kind < walCreateTable || rec.Kind > walRestart {
					t.Fatalf("delivered record with invalid kind %d", rec.Kind)
				}
				if _, err := encodeWALRecord(rec); err != nil {
					t.Fatalf("delivered record does not re-encode: %v", err)
				}
				return nil
			})
			if err != nil {
				if !errors.Is(err, ErrWALCorrupt) {
					t.Fatalf("scan error is not ErrWALCorrupt: %v", err)
				}
				continue
			}
			if res.goodSize+res.truncated > int64(len(data)) {
				t.Fatalf("goodSize %d + truncated %d exceeds input %d", res.goodSize, res.truncated, len(data))
			}
			if !final && res.truncated != 0 {
				t.Fatal("non-final scan reported a torn tail instead of corruption")
			}
		}
	})
}
