package remotedb

import (
	"strings"
	"testing"

	"repro/internal/relation"
)

func TestParseCreate(t *testing.T) {
	st, err := ParseSQL("CREATE TABLE emp (id INT, name VARCHAR(20), salary FLOAT, active BOOL)")
	if err != nil {
		t.Fatal(err)
	}
	c := st.Create
	if c == nil || c.Table != "emp" || c.Schema.Arity() != 4 {
		t.Fatalf("create parse wrong: %+v", st)
	}
	if c.Schema.Attr(0).Kind != relation.KindInt ||
		c.Schema.Attr(1).Kind != relation.KindString ||
		c.Schema.Attr(2).Kind != relation.KindFloat ||
		c.Schema.Attr(3).Kind != relation.KindBool {
		t.Fatalf("kinds wrong: %v", c.Schema)
	}
}

func TestParseInsert(t *testing.T) {
	st, err := ParseSQL("INSERT INTO emp VALUES (1, 'alice', 10.5, TRUE), (2, 'bo''b', 9.0, FALSE)")
	if err != nil {
		t.Fatal(err)
	}
	ins := st.Insert
	if ins == nil || len(ins.Rows) != 2 {
		t.Fatalf("insert parse wrong: %+v", st)
	}
	if ins.Rows[1][1].AsString() != "bo'b" {
		t.Fatalf("escaped quote wrong: %v", ins.Rows[1][1])
	}
}

func TestParseSelectFull(t *testing.T) {
	src := "SELECT DISTINCT a.x, b.y FROM emp AS a, dept b WHERE a.id = b.id AND a.x > 3 AND b.name = 'eng' ORDER BY x LIMIT 10"
	st, err := ParseSQL(src)
	if err != nil {
		t.Fatal(err)
	}
	sel := st.Select
	if sel == nil || !sel.Distinct || len(sel.Items) != 2 || len(sel.From) != 2 || len(sel.Where) != 3 {
		t.Fatalf("select parse wrong: %+v", sel)
	}
	if sel.From[1].Alias != "b" || sel.From[1].Table != "dept" {
		t.Fatalf("implicit alias wrong: %+v", sel.From[1])
	}
	if sel.Limit != 10 || len(sel.OrderBy) != 1 {
		t.Fatalf("order/limit wrong: %+v", sel)
	}
	// Round trip through String.
	st2, err := ParseSQL(sel.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", sel.String(), err)
	}
	if st2.Select.String() != sel.String() {
		t.Errorf("string round trip: %q vs %q", sel.String(), st2.Select.String())
	}
}

func TestParseSelectAggregates(t *testing.T) {
	st, err := ParseSQL("SELECT dept, COUNT(*), SUM(salary) FROM emp GROUP BY dept")
	if err != nil {
		t.Fatal(err)
	}
	sel := st.Select
	if len(sel.Items) != 3 || sel.Items[0].IsAgg || !sel.Items[1].IsAgg || !sel.Items[1].AggStar || sel.Items[2].Agg != relation.AggSum {
		t.Fatalf("aggregate parse wrong: %+v", sel.Items)
	}
	if len(sel.GroupBy) != 1 || sel.GroupBy[0].Column != "dept" {
		t.Fatalf("group by wrong: %+v", sel.GroupBy)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"DROP TABLE x",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t WHERE x ==",
		"CREATE TABLE t (x BLOB)",
		"INSERT INTO t VALUES (1,)",
		"SELECT * FROM t LIMIT -1",
		"SELECT SUM(*) FROM t",
		"SELECT * FROM t WHERE x = 'unterminated",
	}
	for _, src := range bad {
		if _, err := ParseSQL(src); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}

func TestSQLCondString(t *testing.T) {
	c := SQLCond{Left: ColRef{Qualifier: "a", Column: "x"}, Op: relation.OpNe, RightVal: relation.Str("o'k")}
	if got := c.String(); got != "a.x <> 'o''k'" {
		t.Errorf("cond string = %q", got)
	}
	if !strings.Contains((&SelectStmt{Items: []SelectItem{{Star: true}}, From: []TableRef{{Table: "t", Alias: "t"}}, Limit: -1}).String(), "SELECT * FROM t") {
		t.Error("select star string wrong")
	}
}
