package remotedb

import (
	"fmt"

	"repro/internal/relation"
)

// Wire representation for the TCP protocol. relation.Value keeps its fields
// unexported (by design), so the protocol uses explicit, versionable mirror
// types encoded with encoding/gob.

type wireValue struct {
	Kind uint8
	I    int64
	F    float64
	S    string
	B    bool
}

func toWireValue(v relation.Value) wireValue {
	switch v.Kind() {
	case relation.KindInt:
		return wireValue{Kind: 1, I: v.AsInt()}
	case relation.KindFloat:
		return wireValue{Kind: 2, F: v.AsFloat()}
	case relation.KindString:
		return wireValue{Kind: 3, S: v.AsString()}
	case relation.KindBool:
		return wireValue{Kind: 4, B: v.AsBool()}
	default:
		return wireValue{Kind: 0}
	}
}

func fromWireValue(w wireValue) (relation.Value, error) {
	switch w.Kind {
	case 0:
		return relation.Null(), nil
	case 1:
		return relation.Int(w.I), nil
	case 2:
		return relation.Float(w.F), nil
	case 3:
		return relation.Str(w.S), nil
	case 4:
		return relation.Bool(w.B), nil
	default:
		return relation.Value{}, fmt.Errorf("remotedb: bad wire value kind %d", w.Kind)
	}
}

type wireAttr struct {
	Name string
	Kind uint8
}

type wireRelation struct {
	Name   string
	Attrs  []wireAttr
	Tuples [][]wireValue
}

func toWireRelation(r *relation.Relation) *wireRelation {
	if r == nil {
		return nil
	}
	w := &wireRelation{Name: r.Name}
	for _, a := range r.Schema().Attrs() {
		w.Attrs = append(w.Attrs, wireAttr{Name: a.Name, Kind: uint8(a.Kind)})
	}
	for _, t := range r.Tuples() {
		w.Tuples = append(w.Tuples, toWireTuple(t))
	}
	return w
}

// toWireTuple converts one tuple to its wire form.
func toWireTuple(t relation.Tuple) []wireValue {
	row := make([]wireValue, len(t))
	for i, v := range t {
		row[i] = toWireValue(v)
	}
	return row
}

func fromWireRelation(w *wireRelation) (*relation.Relation, error) {
	if w == nil {
		return nil, nil
	}
	attrs := make([]relation.Attr, len(w.Attrs))
	for i, a := range w.Attrs {
		attrs[i] = relation.Attr{Name: a.Name, Kind: relation.Kind(a.Kind)}
	}
	r := relation.New(w.Name, relation.NewSchema(attrs...))
	tuples, err := fromWireTuples(w.Tuples)
	if err != nil {
		return nil, err
	}
	// Bulk append: one arity validation pass and one slice growth for the
	// whole payload instead of per-tuple checks on the hot decode path.
	if err := r.AppendAll(tuples); err != nil {
		return nil, err
	}
	return r, nil
}

// wireRequest is one protocol request. Op selects the action.
//
// Op "hello" is the protocol negotiation handshake introduced with wire v2:
// a v2 client opens every connection with hello carrying its highest
// supported version in Proto; a v2 server answers with the version it
// accepts for this connection (wireResponse.Proto) and, when that is >= 2,
// both sides switch the connection to framed mode (frame.go). A v1 server
// answers hello with its usual "unknown op" semantic error, which a v2
// client treats as a successful negotiation of v1 — so new clients
// interoperate with old servers, and old clients (which never send hello)
// keep speaking v1 to new servers.
// Op "ping" is a liveness probe: the server answers with an empty success
// response (v1) or an empty frameEnd (v2) without touching the engine. A v1
// or pre-ping server answers with its "unknown op" semantic error — which is
// still a response, so probes treat ANY reply as proof of liveness and only
// transport/protocol failures as death.
type wireRequest struct {
	Op   string // "exec", "schema", "stats", "tables", "hello", "ping"
	SQL  string
	Name string
	// Proto is the client's highest supported protocol version (hello only).
	Proto int
	// FrameTuples is the client's preferred response frame size in tuples
	// (hello only; 0 lets the server choose). The server clamps it.
	FrameTuples int
	// Resume is the encoded resume token of a re-issued streamed request
	// ("exec" over v2 only): the client saw the original stream die after
	// delivering Skip tuples and asks the server to serve the remainder of
	// the same snapshot. A server that cannot honor it (snapshot gone, bad
	// token) serves a fresh stream and clears the header's Resumed flag.
	Resume string
	// Skip is the number of result tuples the client already delivered to its
	// consumer before the stream died (meaningful with Resume).
	Skip int64
	// Trace is the client's trace ID for this request (0: untraced). The
	// server adopts it for the spans its execution records, stitching client
	// and server into one distributed trace. Gob ignores fields the peer
	// doesn't know, so v1/older binaries interoperate unchanged.
	Trace uint64
}

// Protocol versions.
const (
	protoV1 = 1 // monolithic request/response, one outstanding request per conn
	protoV2 = 2 // framed: streamed tuple batches, request-ID multiplexing

	// protoMax is the highest version this build speaks.
	protoMax = protoV2
)

// Wire error codes: Err carries the human-readable message, Code the machine
// classification, so clients can distinguish overload shedding, server
// deadlines, and stream cancellation from semantic failures without string
// matching.
const (
	wireCodeNone       = 0 // no error, or a semantic error (Err set)
	wireCodeOverloaded = 1 // request shed by the server's admission limit
	wireCodeDeadline   = 2 // request abandoned at the server's deadline
	wireCodeCanceled   = 3 // stream stopped by a client cancel frame (v2)
)

// wireResponse is one protocol response.
type wireResponse struct {
	Err    string
	Code   int // wireCode* classification of Err
	Rel    *wireRelation
	Ops    int64
	Attrs  []wireAttr
	Stats  TableStats
	Tables []string
	// Proto is the server's accepted protocol version (hello response only).
	Proto int
	// Epoch is the server's catalog generation when the response was built.
	// Like wireRequest.Trace, it is a gob-level extension: pre-epoch peers
	// decode responses carrying it by ignoring the unknown field, and gob
	// omits the zero value entirely, so old servers cost new clients nothing.
	// The CMS uses it to detect that cached views predate the backend state.
	Epoch uint64
}

// toWireTuples converts a slice of tuples to wire rows (one response frame's
// payload).
func toWireTuples(tuples []relation.Tuple) [][]wireValue {
	rows := make([][]wireValue, len(tuples))
	for i, t := range tuples {
		row := make([]wireValue, len(t))
		for j, v := range t {
			row[j] = toWireValue(v)
		}
		rows[i] = row
	}
	return rows
}

// fromWireTuples decodes wire rows into tuples without schema revalidation
// (the caller bulk-appends via Relation.AppendAll, which validates arity once
// per batch).
func fromWireTuples(rows [][]wireValue) ([]relation.Tuple, error) {
	out := make([]relation.Tuple, len(rows))
	for i, row := range rows {
		t := make(relation.Tuple, len(row))
		for j, wv := range row {
			v, err := fromWireValue(wv)
			if err != nil {
				return nil, err
			}
			t[j] = v
		}
		out[i] = t
	}
	return out, nil
}
