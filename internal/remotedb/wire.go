package remotedb

import (
	"fmt"

	"repro/internal/relation"
)

// Wire representation for the TCP protocol. relation.Value keeps its fields
// unexported (by design), so the protocol uses explicit, versionable mirror
// types encoded with encoding/gob.

type wireValue struct {
	Kind uint8
	I    int64
	F    float64
	S    string
	B    bool
}

func toWireValue(v relation.Value) wireValue {
	switch v.Kind() {
	case relation.KindInt:
		return wireValue{Kind: 1, I: v.AsInt()}
	case relation.KindFloat:
		return wireValue{Kind: 2, F: v.AsFloat()}
	case relation.KindString:
		return wireValue{Kind: 3, S: v.AsString()}
	case relation.KindBool:
		return wireValue{Kind: 4, B: v.AsBool()}
	default:
		return wireValue{Kind: 0}
	}
}

func fromWireValue(w wireValue) (relation.Value, error) {
	switch w.Kind {
	case 0:
		return relation.Null(), nil
	case 1:
		return relation.Int(w.I), nil
	case 2:
		return relation.Float(w.F), nil
	case 3:
		return relation.Str(w.S), nil
	case 4:
		return relation.Bool(w.B), nil
	default:
		return relation.Value{}, fmt.Errorf("remotedb: bad wire value kind %d", w.Kind)
	}
}

type wireAttr struct {
	Name string
	Kind uint8
}

type wireRelation struct {
	Name   string
	Attrs  []wireAttr
	Tuples [][]wireValue
}

func toWireRelation(r *relation.Relation) *wireRelation {
	if r == nil {
		return nil
	}
	w := &wireRelation{Name: r.Name}
	for _, a := range r.Schema().Attrs() {
		w.Attrs = append(w.Attrs, wireAttr{Name: a.Name, Kind: uint8(a.Kind)})
	}
	for _, t := range r.Tuples() {
		row := make([]wireValue, len(t))
		for i, v := range t {
			row[i] = toWireValue(v)
		}
		w.Tuples = append(w.Tuples, row)
	}
	return w
}

func fromWireRelation(w *wireRelation) (*relation.Relation, error) {
	if w == nil {
		return nil, nil
	}
	attrs := make([]relation.Attr, len(w.Attrs))
	for i, a := range w.Attrs {
		attrs[i] = relation.Attr{Name: a.Name, Kind: relation.Kind(a.Kind)}
	}
	r := relation.New(w.Name, relation.NewSchema(attrs...))
	for _, row := range w.Tuples {
		t := make(relation.Tuple, len(row))
		for i, wv := range row {
			v, err := fromWireValue(wv)
			if err != nil {
				return nil, err
			}
			t[i] = v
		}
		if err := r.Append(t); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// wireRequest is one protocol request. Op selects the action.
type wireRequest struct {
	Op   string // "exec", "schema", "stats", "tables"
	SQL  string
	Name string
}

// Wire error codes: Err carries the human-readable message, Code the machine
// classification, so clients can distinguish overload shedding and server
// deadlines from semantic failures without string matching.
const (
	wireCodeNone       = 0 // no error, or a semantic error (Err set)
	wireCodeOverloaded = 1 // request shed by the server's admission limit
	wireCodeDeadline   = 2 // request abandoned at the server's deadline
)

// wireResponse is one protocol response.
type wireResponse struct {
	Err    string
	Code   int // wireCode* classification of Err
	Rel    *wireRelation
	Ops    int64
	Attrs  []wireAttr
	Stats  TableStats
	Tables []string
}
