package remotedb

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/relation"
)

// Crash recovery: OpenEngine rebuilds an engine from a data directory —
// newest checkpoint first, then the WAL tail replayed record by record
// through the same apply functions live mutations use (so replay cannot
// drift from the live semantics). See wal.go for the on-disk format and the
// torn-tail-vs-corruption rules.

// RecoveryStats describes one recovery pass; the server exports them as
// braid_engine_recovery_* metrics and braid-server prints them at boot.
type RecoveryStats struct {
	// Replayed counts WAL records applied (excluding the checkpoint).
	Replayed int
	// CheckpointTables counts tables restored from the checkpoint (0: no
	// checkpoint, generation-zero log).
	CheckpointTables int
	// TruncatedBytes is the torn tail dropped from the final segment (0:
	// clean shutdown or empty log).
	TruncatedBytes int64
	// WallTime is the end-to-end recovery duration.
	WallTime time.Duration
	// Gen is the live segment generation after recovery.
	Gen uint64
	// Epoch is the catalog epoch after recovery (past every epoch the
	// pre-crash engine could have acknowledged, given fsync=always).
	Epoch uint64
}

// OpenEngine opens (or creates) a durable engine on d.Dir: it recovers the
// persisted state, truncates a torn tail, appends a restart record that
// durably invalidates pre-crash resume tokens, and leaves the WAL open for
// the engine's subsequent mutations. Mid-log damage aborts with
// ErrWALCorrupt — recovery never silently drops acknowledged history.
func OpenEngine(d Durability) (*Engine, *RecoveryStats, error) {
	d = d.withDefaults()
	start := time.Now()
	_, sp := d.Tracer.Start(context.Background(), "engine.recover")
	defer sp.End()
	sp.Set("dir", d.Dir)

	if err := os.MkdirAll(d.Dir, 0o755); err != nil {
		return nil, nil, err
	}
	segs, ckpts, err := walGens(d.Dir)
	if err != nil {
		return nil, nil, err
	}

	// The live generation is the newest checkpoint's (rotation writes the
	// checkpoint before the new segment, so a crash mid-rotation leaves a
	// checkpoint whose segment does not exist yet — an empty tail). With no
	// checkpoint at all the engine is on generation zero: either a fresh
	// directory or a log that never rotated.
	var gen uint64
	var ck *walCheckpoint
	if len(ckpts) > 0 {
		gen = ckpts[len(ckpts)-1]
		ck, err = readCheckpoint(d.Dir, gen)
		if err != nil {
			return nil, nil, err
		}
	} else if len(segs) > 0 {
		gen = segs[len(segs)-1]
	}

	e := NewEngine()
	st := &RecoveryStats{}
	recovered := false

	if ck != nil {
		for _, wr := range ck.Tables {
			r, err := fromWireRelation(wr)
			if err != nil {
				return nil, nil, &WALCorruptError{Path: walCheckpointPath(d.Dir, gen), Reason: fmt.Sprintf("checkpoint table %s: %v", wr.Name, err)}
			}
			e.tables[r.Name] = r
			e.meta[r.Name] = buildTableMeta(r)
		}
		for n, v := range ck.Versions {
			e.versions[n] = v
		}
		for n, colsets := range ck.Indexes {
			t, ok := e.tables[n]
			if !ok {
				continue
			}
			for _, cols := range colsets {
				e.indexes[n] = append(e.indexes[n], relation.BuildIndex(t, cols))
			}
		}
		e.epoch.Store(ck.Epoch)
		st.CheckpointTables = len(ck.Tables)
		recovered = true
	}

	// Replay the live segment's tail through the normal apply path.
	var lastSeq uint64
	var segSize int64
	segPath := walSegmentPath(d.Dir, gen)
	if _, err := os.Stat(segPath); err == nil {
		res, err := scanWALSegment(segPath, true, func(rec *walRecord) error {
			return e.replayRecord(rec)
		})
		if err != nil {
			return nil, nil, err
		}
		if res.truncated > 0 {
			if err := os.Truncate(segPath, res.goodSize); err != nil {
				return nil, nil, err
			}
		}
		st.Replayed = res.records
		st.TruncatedBytes = res.truncated
		lastSeq = res.lastSeq
		segSize = res.goodSize
		if res.records > 0 {
			recovered = true
		}
	} else if !os.IsNotExist(err) {
		return nil, nil, err
	}

	w, err := openWALSegment(d, gen, segSize, lastSeq)
	if err != nil {
		return nil, nil, err
	}
	e.wal = w
	if d.Tracer != nil {
		e.SetTracer(d.Tracer)
	}

	// One restart record per recovery of non-empty state: replaying it bumps
	// every table version and the epoch, so tokens and epochs minted before
	// the crash are refused — durably, because the bump itself is logged.
	if recovered {
		if err := e.logLocked(&walRecord{Kind: walRestart}); err != nil {
			w.Close()
			return nil, nil, err
		}
		if e.wal.fsync != FsyncAlways {
			// The restart record is a correctness barrier regardless of
			// policy: sync it even when ordinary appends do not.
			if err := w.f.Sync(); err != nil {
				w.Close()
				return nil, nil, err
			}
			w.syncs.Add(1)
		}
		e.applyRestart()
	}

	st.WallTime = time.Since(start)
	st.Gen = gen
	st.Epoch = e.epoch.Load()
	sp.Set("replayed", fmt.Sprintf("%d", st.Replayed))
	sp.Set("checkpoint_tables", fmt.Sprintf("%d", st.CheckpointTables))
	sp.Set("truncated_bytes", fmt.Sprintf("%d", st.TruncatedBytes))
	sp.Set("epoch", fmt.Sprintf("%d", st.Epoch))
	return e, st, nil
}

// replayRecord applies one logged mutation during recovery. Replay trusts
// the log's validation (rows were coerced before logging) but still refuses
// structurally impossible records — a decodable record referencing a table
// that never existed means the log is not the one this state was written by.
func (e *Engine) replayRecord(rec *walRecord) error {
	switch rec.Kind {
	case walCreateTable:
		attrs := make([]relation.Attr, len(rec.Attrs))
		for i, a := range rec.Attrs {
			attrs[i] = relation.Attr{Name: a.Name, Kind: relation.Kind(a.Kind)}
		}
		e.applyCreateTable(rec.Name, relation.NewSchema(attrs...))
	case walLoadTable:
		r, err := fromWireRelation(rec.Rel)
		if err != nil {
			return fmt.Errorf("%w: replay load: %v", ErrWALCorrupt, err)
		}
		e.applyLoadTable(r)
	case walInsert:
		if _, ok := e.tables[rec.Name]; !ok {
			return fmt.Errorf("%w: replay insert into unknown table %s", ErrWALCorrupt, rec.Name)
		}
		rows, err := fromWireTuples(rec.Rows)
		if err != nil {
			return fmt.Errorf("%w: replay insert into %s: %v", ErrWALCorrupt, rec.Name, err)
		}
		e.applyInsert(rec.Name, rows)
	case walCreateIndex:
		if _, ok := e.tables[rec.Name]; !ok {
			return fmt.Errorf("%w: replay index on unknown table %s", ErrWALCorrupt, rec.Name)
		}
		e.applyCreateIndex(rec.Name, rec.Cols)
	case walRestart:
		e.applyRestart()
	default:
		return fmt.Errorf("%w: replay of unknown record kind %d", ErrWALCorrupt, rec.Kind)
	}
	return nil
}
