package remotedb

import (
	"fmt"
	"strings"

	"repro/internal/relation"
)

// The DML of the remote DBMS: a small SQL subset. The Remote DBMS Interface
// of the CMS translates CAQL queries into this language (Section 5.5: "The
// CMS-DBMS language interface is given by the DML of the remote DBMS").
//
// Supported statements:
//
//	CREATE TABLE t (a INT, b TEXT, ...)
//	INSERT INTO t VALUES (1, 'x'), (2, 'y')
//	SELECT [DISTINCT] items FROM t1 [AS] a1, t2 [AS] a2
//	       [WHERE cond AND cond ...]
//	       [GROUP BY col, ...]
//	       [ORDER BY col, ...] [LIMIT n]
//
// Select items are qualified columns (a1.x), bare columns (unambiguous), *,
// or aggregates COUNT(*), COUNT(c), SUM(c), MIN(c), MAX(c), AVG(c).
// Conditions are col OP col or col OP literal with OP in = != < <= > >=.
// Notably absent (by design, mirroring 1990 DBMS limits the paper leans on):
// OR, NOT, subqueries, unions, recursion — those are CMS-only capabilities.

// Statement is a parsed DML statement: exactly one field is non-nil.
// Explain marks an EXPLAIN SELECT: the engine returns the compiled plan of
// the wrapped SELECT (as a one-column relation) instead of executing it.
// Analyze additionally executes the plan and annotates every node with the
// actual rows/ops/wall-time it produced (EXPLAIN ANALYZE SELECT).
type Statement struct {
	Create  *CreateStmt
	Insert  *InsertStmt
	Select  *SelectStmt
	Explain bool
	Analyze bool
}

// CreateStmt is CREATE TABLE.
type CreateStmt struct {
	Table  string
	Schema *relation.Schema
}

// InsertStmt is INSERT INTO ... VALUES.
type InsertStmt struct {
	Table string
	Rows  []relation.Tuple
}

// SelectStmt is a conjunctive select-project-join with optional aggregation.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    []SQLCond
	GroupBy  []ColRef
	OrderBy  []ColRef
	Limit    int // -1 when absent
}

// TableRef names a table and its alias (alias defaults to the table name).
type TableRef struct {
	Table string
	Alias string
}

// ColRef is a possibly-qualified column reference.
type ColRef struct {
	Qualifier string // alias; empty if bare
	Column    string
}

// String renders "qualifier.column" or "column".
func (c ColRef) String() string {
	if c.Qualifier == "" {
		return c.Column
	}
	return c.Qualifier + "." + c.Column
}

// SelectItem is one output column: a column reference, a star, or an
// aggregate.
type SelectItem struct {
	Star bool
	Col  ColRef
	// Agg is non-zero-valued when the item is an aggregate; AggStar marks
	// COUNT(*).
	IsAgg   bool
	Agg     relation.AggOp
	AggStar bool
}

// SQLCond is a conjunct of the WHERE clause.
type SQLCond struct {
	Left ColRef
	Op   relation.CmpOp
	// RightCol is valid when RightIsCol; otherwise RightVal holds a literal.
	RightIsCol bool
	RightCol   ColRef
	RightVal   relation.Value
}

// String renders the condition in SQL syntax.
func (c SQLCond) String() string {
	op := c.Op.String()
	if op == "!=" {
		op = "<>"
	}
	if c.RightIsCol {
		return fmt.Sprintf("%s %s %s", c.Left, op, c.RightCol)
	}
	return fmt.Sprintf("%s %s %s", c.Left, op, sqlLiteral(c.RightVal))
}

// sqlLiteral renders a value as a SQL literal (single-quoted strings).
func sqlLiteral(v relation.Value) string {
	if v.Kind() == relation.KindString {
		return "'" + strings.ReplaceAll(v.AsString(), "'", "''") + "'"
	}
	if v.Kind() == relation.KindBool {
		if v.AsBool() {
			return "TRUE"
		}
		return "FALSE"
	}
	return v.String()
}

// String renders the statement back to SQL text.
func (s *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		switch {
		case it.Star:
			b.WriteByte('*')
		case it.IsAgg && it.AggStar:
			fmt.Fprintf(&b, "%s(*)", it.Agg)
		case it.IsAgg:
			fmt.Fprintf(&b, "%s(%s)", it.Agg, it.Col)
		default:
			b.WriteString(it.Col.String())
		}
	}
	b.WriteString(" FROM ")
	for i, t := range s.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.Table)
		if t.Alias != "" && t.Alias != t.Table {
			b.WriteString(" AS ")
			b.WriteString(t.Alias)
		}
	}
	if len(s.Where) > 0 {
		b.WriteString(" WHERE ")
		for i, c := range s.Where {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(c.String())
		}
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, c := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.String())
		}
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, c := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.String())
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	return b.String()
}
