package remotedb

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestPoolCloseNoGoroutineLeak brackets the pool's background machinery:
// Close racing the HealthInterval probe/redial loop, in-flight requests, and
// injected connection breaks must leave no goroutine behind — not the health
// loop, not a readLoop resurrected by a background redial that lost the race
// with Close. Run under -race this also shakes out the teardown/redial
// ordering (the generation guard in teardownGen).
func TestPoolCloseNoGoroutineLeak(t *testing.T) {
	addr, _, cleanup := startTestServer(t)
	defer cleanup()

	// Warm up one full cycle so lazily initialized runtime goroutines (timer
	// wheels, network poller) are excluded from the baseline.
	warm := dialLeakPool(t, addr)
	warm.Exec("SELECT * FROM dept")
	warm.Close()
	time.Sleep(20 * time.Millisecond)
	base := runtime.NumGoroutine()

	for round := 0; round < 25; round++ {
		p := dialLeakPool(t, addr)
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 6; i++ {
					p.Exec("SELECT * FROM dept") // errors expected once Close lands
				}
			}()
		}
		// Break connections mid-flight so the health loop's background redial
		// is active exactly when Close arrives.
		p.breakConn()
		if round%2 == 0 {
			// Close while requests are still in flight: the nastier ordering.
			time.Sleep(time.Millisecond)
			p.Close()
			wg.Wait()
		} else {
			wg.Wait()
			p.Close()
		}
		// Closing twice must be a no-op, not a double-teardown.
		p.Close()
	}

	// Goroutines wind down asynchronously (readLoops observe the closed
	// socket); poll with a deadline instead of asserting instantly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked: %d now vs %d baseline\n%s", n, base, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func dialLeakPool(t *testing.T, addr string) *PoolClient {
	t.Helper()
	p, err := DialPool(addr, PoolOptions{
		Size:           3,
		Redial:         true,
		HealthInterval: time.Millisecond,
		RequestTimeout: 2 * time.Second,
		Costs:          DefaultCosts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}
