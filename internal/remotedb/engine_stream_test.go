package remotedb

import (
	"testing"

	"repro/internal/relation"
)

func newScanEngine(t *testing.T) *Engine {
	t.Helper()
	r := relation.New("t", relation.NewSchema(
		relation.Attr{Name: "id", Kind: relation.KindInt},
		relation.Attr{Name: "grp", Kind: relation.KindInt},
		relation.Attr{Name: "tag", Kind: relation.KindString}))
	tags := []string{"a", "b", "c"}
	for i := 0; i < 200; i++ {
		r.MustAppend(relation.Tuple{
			relation.Int(int64(i)), relation.Int(int64(i % 5)), relation.Str(tags[i%3])})
	}
	e := NewEngine()
	e.LoadTable(r)
	return e
}

// TestScanStreamMatchesExecute: on every streamable statement the pull-based
// scan produces exactly the tuples (and operation count) of the materializing
// executor.
func TestScanStreamMatchesExecute(t *testing.T) {
	e := newScanEngine(t)
	for _, sql := range []string{
		"SELECT * FROM t",
		"SELECT id FROM t",
		"SELECT tag, id FROM t WHERE grp = 2",
		"SELECT * FROM t WHERE id >= 100 AND tag = 'b'",
		"SELECT id FROM t WHERE grp != 0 AND id < 50",
		"SELECT * FROM t WHERE id = grp",
	} {
		sc, ok := e.ExecuteSQLStream(sql)
		if !ok {
			t.Fatalf("%q should be streamable", sql)
		}
		want, wantOps, err := e.ExecuteSQL(sql)
		if err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
		var got []relation.Tuple
		for {
			tu, ok := sc.Next()
			if !ok {
				break
			}
			got = append(got, tu)
		}
		if len(got) != want.Len() {
			t.Fatalf("%q: streamed %d tuples, executor %d", sql, len(got), want.Len())
		}
		for i, tu := range got {
			for j := range tu {
				if !tu[j].Equal(want.Tuple(i)[j]) {
					t.Fatalf("%q: tuple %d mismatch: %v vs %v", sql, i, tu, want.Tuple(i))
				}
			}
		}
		if sc.Ops() != wantOps {
			t.Errorf("%q: streamed ops %d, executor %d", sql, sc.Ops(), wantOps)
		}
		if sc.Schema().Arity() != want.Schema().Arity() {
			t.Errorf("%q: schema arity mismatch", sql)
		}
	}
}

// TestScanStreamFallbacks: statements the pipeline cannot stream are refused
// so the server falls back to the materializing path.
func TestScanStreamFallbacks(t *testing.T) {
	e := newScanEngine(t)
	for _, sql := range []string{
		"SELECT id FROM t ORDER BY id",
		"SELECT DISTINCT grp FROM t",
		"SELECT COUNT(*) FROM t",
		"SELECT grp, COUNT(*) FROM t GROUP BY grp",
		"SELECT * FROM t a, t b WHERE a.id = b.grp",
		"SELECT * FROM missing",
		"not sql at all",
	} {
		if _, ok := e.ExecuteSQLStream(sql); ok {
			t.Errorf("%q must not be streamable", sql)
		}
	}
}

// TestScanStreamLimit: LIMIT stops the scan early instead of scanning the
// whole extension.
func TestScanStreamLimit(t *testing.T) {
	e := newScanEngine(t)
	sc, ok := e.ExecuteSQLStream("SELECT * FROM t LIMIT 3")
	if !ok {
		t.Fatal("LIMIT scan should be streamable")
	}
	n := 0
	for {
		if _, ok := sc.Next(); !ok {
			break
		}
		n++
	}
	if n != 3 {
		t.Fatalf("limit scan emitted %d tuples, want 3", n)
	}
	if sc.Ops() >= 200 {
		t.Fatalf("limit scan should stop early, did %d ops", sc.Ops())
	}
}
