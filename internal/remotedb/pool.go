package remotedb

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/relation"
)

// PoolClient is the wire-v2 transport: a pool of TCP connections, each
// carrying any number of in-flight requests as tagged frames, with responses
// streamed back as tuple batches. It subsumes TCPClient (which remains as the
// v1 legacy transport) and adds:
//
//   - streaming: ExecStream returns after the result header frame; tuples
//     arrive in frames of the negotiated size, so first-tuple latency is one
//     frame, not one relation, and client memory is bounded by the frame
//     window rather than the result.
//   - multiplexing: request-ID-tagged frames let many requests share one
//     connection; responses interleave at frame granularity.
//   - a pool: requests are dispatched to the least-loaded connection, so K
//     concurrent sessions spread over N sockets instead of convoying behind
//     one (the v1 client serializes a connection per round trip).
//   - mid-stream cancellation: canceling one stream sends a cancel frame and
//     tears down only that stream's server-side producer; the connection and
//     every other stream keep going.
//
// Protocol version is negotiated per connection (wire.go "hello"): against a
// v1 peer every pool connection degrades to serialized round trips, so the
// pool still provides N-way parallelism with no streaming.
type PoolClient struct {
	addr string
	opts PoolOptions

	nextID atomic.Uint64

	mu     sync.Mutex
	conns  []*muxConn
	closed bool
	// shut mirrors closed as an atomic so muxConn.ensure / dialLocked can
	// refuse to (re)dial after Close without taking p.mu under c.mu —
	// Proto() holds p.mu while taking c.mu, so the reverse order would
	// deadlock. Without this check, pick or a health probe racing Close can
	// redial a connection Close already tore down, leaking the socket and
	// its read-loop goroutine.
	shut atomic.Bool

	// done stops the background health loop; wg waits for it on Close so the
	// pool provably leaks no goroutines (asserted in pool_test.go).
	done     chan struct{}
	healthWg sync.WaitGroup

	stats statsRec
}

// statsRec is the pool's counter store: one atomic per Stats field, so the
// hot path (every frame, every request) never takes a lock and a Stats()
// snapshot during load is race-free. SimMS, the one float, accumulates via
// CAS on its bit pattern.
type statsRec struct {
	requests        atomic.Int64
	tuplesReturned  atomic.Int64
	serverOps       atomic.Int64
	framesSent      atomic.Int64
	framesRecv      atomic.Int64
	streams         atomic.Int64
	streamsCanceled atomic.Int64
	firstTupleNS    atomic.Int64
	healthProbes    atomic.Int64
	probeFailures   atomic.Int64
	reconnects      atomic.Int64
	simMSBits       atomic.Uint64
	epoch           atomic.Uint64
}

// noteEpoch records a server catalog epoch observed on a response, keeping
// the high-water mark (responses from pooled connections can arrive out of
// order relative to the server-side mutations that stamped them).
func (r *statsRec) noteEpoch(e uint64) {
	for {
		old := r.epoch.Load()
		if e <= old || r.epoch.CompareAndSwap(old, e) {
			return
		}
	}
}

func (r *statsRec) addSimMS(d float64) {
	for {
		old := r.simMSBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + d)
		if r.simMSBits.CompareAndSwap(old, nv) {
			return
		}
	}
}

func (r *statsRec) snapshot() Stats {
	return Stats{
		Requests:        r.requests.Load(),
		TuplesReturned:  r.tuplesReturned.Load(),
		ServerOps:       r.serverOps.Load(),
		SimMS:           math.Float64frombits(r.simMSBits.Load()),
		FramesSent:      r.framesSent.Load(),
		FramesRecv:      r.framesRecv.Load(),
		Streams:         r.streams.Load(),
		StreamsCanceled: r.streamsCanceled.Load(),
		FirstTupleNS:    r.firstTupleNS.Load(),
		HealthProbes:    r.healthProbes.Load(),
		ProbeFailures:   r.probeFailures.Load(),
		Reconnects:      r.reconnects.Load(),
		Epoch:           r.epoch.Load(),
	}
}

// PoolOptions configures a PoolClient.
type PoolOptions struct {
	// Size is the number of pooled connections (default 1).
	Size int
	// Proto is the highest protocol version to negotiate (default: the
	// build's maximum). Set 1 to force the legacy monolithic protocol.
	Proto int
	// FrameTuples is the preferred response frame size in tuples, sent as a
	// hint at negotiation (0: server default). The server clamps it.
	FrameTuples int
	// StreamWindow is how many undelivered response frames one stream may
	// buffer client-side before backpressure stalls the connection's reader
	// (and, through TCP, the server's writer). Default 8.
	StreamWindow int
	// Costs is the virtual cost model charged per request.
	Costs Costs
	// Redial re-establishes broken connections on the next request instead of
	// failing fast forever.
	Redial bool
	// DialTimeout bounds connection establishment (0: no bound).
	DialTimeout time.Duration
	// RequestTimeout bounds one v1 round trip, the v2 handshake, and each
	// wait for the next frame of a v2 stream (0: no bound).
	RequestTimeout time.Duration
	// HealthInterval enables active health management (0: disabled, death is
	// discovered lazily per request). Every interval a background loop probes
	// each live connection with a lightweight ping — any answer, even a
	// semantic error from an old server, proves liveness — evicts connections
	// whose probe fails at the transport level, and (when Redial is set)
	// re-dials broken connections in the background. Re-dial attempts honor
	// the same jittered per-connection backoff that quarantines flapping
	// connections from pick, so a dead server is probed, not hammered.
	HealthInterval time.Duration
	// HealthSeed seeds the quarantine backoff jitter stream.
	HealthSeed int64
}

func (o PoolOptions) withDefaults() PoolOptions {
	if o.Size <= 0 {
		o.Size = 1
	}
	if o.Proto <= 0 {
		o.Proto = protoMax
	}
	if o.StreamWindow <= 0 {
		o.StreamWindow = 8
	}
	return o
}

// DialPool connects a pool of opts.Size connections to a Server at addr and
// negotiates the protocol on each. The first connection is dialed eagerly (so
// an unreachable address fails fast); the rest are dialed on demand.
func DialPool(addr string, opts PoolOptions) (*PoolClient, error) {
	opts = opts.withDefaults()
	p := &PoolClient{addr: addr, opts: opts, done: make(chan struct{})}
	p.conns = make([]*muxConn, opts.Size)
	for i := range p.conns {
		p.conns[i] = &muxConn{p: p, broken: true, jitter: rand.New(rand.NewSource(opts.HealthSeed + int64(i)))}
	}
	if err := p.conns[0].ensure(context.Background()); err != nil {
		return nil, err
	}
	if opts.HealthInterval > 0 {
		p.healthWg.Add(1)
		go p.healthLoop()
	}
	return p, nil
}

// healthLoop is the pool's active health manager: it periodically probes live
// connections and re-dials broken ones, so `pick` finds connections already
// known good instead of rediscovering death one failed request at a time.
func (p *PoolClient) healthLoop() {
	defer p.healthWg.Done()
	ticker := time.NewTicker(p.opts.HealthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-p.done:
			return
		case <-ticker.C:
			p.healthPass()
		}
	}
}

// healthPass runs one round of probes and background reconnections.
func (p *PoolClient) healthPass() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	conns := append([]*muxConn(nil), p.conns...)
	p.mu.Unlock()
	now := time.Now()
	for _, c := range conns {
		c.mu.Lock()
		broken := c.broken || c.conn == nil
		c.mu.Unlock()
		if broken {
			// Background reconnection, throttled by the connection's failure
			// backoff: a request arriving later finds the socket warm instead
			// of paying the dial.
			if !p.opts.Redial || c.quarantined(now) {
				continue
			}
			p.stats.reconnects.Add(1)
			c.ensure(context.Background()) // a failed dial re-quarantines (dialLocked)
			continue
		}
		p.stats.healthProbes.Add(1)
		if err := c.probe(); err != nil {
			// The connection is dead but nothing was in flight to notice:
			// evict it now so pick never dispatches onto it.
			p.stats.probeFailures.Add(1)
			c.teardown(&TransportError{Op: "ping", Err: err})
		}
	}
}

// Proto returns the protocol version negotiated on the first live
// connection (0 if none is up yet).
func (p *PoolClient) Proto() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.conns {
		c.mu.Lock()
		proto, broken := c.proto, c.broken
		c.mu.Unlock()
		if !broken {
			return proto
		}
	}
	return 0
}

// pick returns the live (or redialable) connection with the fewest in-flight
// requests — the pool's fair dispatch: sessions hashing onto a hot connection
// migrate to idle ones instead of convoying. Connections in failure
// quarantine (recent consecutive transport failures, muxConn.noteFailure) are
// passed over so a flapping connection doesn't eat a request per flap; when
// every connection is quarantined the least-loaded one is used anyway, since
// failing the request outright would be strictly worse than trying.
func (p *PoolClient) pick(ctx context.Context) (*muxConn, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, errors.New("remotedb: client closed")
	}
	now := time.Now()
	var best, bestAny *muxConn
	var bestLoad, bestAnyLoad int64
	for _, c := range p.conns {
		l := c.load.Load()
		if bestAny == nil || l < bestAnyLoad {
			bestAny, bestAnyLoad = c, l
		}
		if c.quarantined(now) {
			continue
		}
		if best == nil || l < bestLoad {
			best, bestLoad = c, l
		}
	}
	p.mu.Unlock()
	if best == nil {
		best = bestAny
	}
	if err := best.ensure(ctx); err != nil {
		return nil, err
	}
	return best, nil
}

// Stats implements Client. The snapshot is assembled from per-field atomics,
// so it is safe (and exact per field) while requests are in flight.
func (p *PoolClient) Stats() Stats {
	return p.stats.snapshot()
}

// Close implements Client: every connection is torn down; in-flight streams
// fail with a transport error.
func (p *PoolClient) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.shut.Store(true)
	conns := append([]*muxConn(nil), p.conns...)
	p.mu.Unlock()
	close(p.done)
	p.healthWg.Wait()
	for _, c := range conns {
		c.teardown(&TransportError{Op: "close", Err: net.ErrClosed})
	}
	return nil
}

// ObservedEpoch implements EpochReporter: the highest server catalog epoch
// seen on any response through this pool.
func (p *PoolClient) ObservedEpoch() uint64 { return p.stats.epoch.Load() }

// breakConn tears down one pooled connection without closing the pool — the
// fault-injection hook FaultClient uses to model a dropped connection, so the
// redial machinery is exercised on the pooled transport too.
func (p *PoolClient) breakConn() {
	p.mu.Lock()
	if len(p.conns) == 0 {
		p.mu.Unlock()
		return
	}
	c := p.conns[int(p.nextID.Add(1))%len(p.conns)]
	p.mu.Unlock()
	c.teardown(&TransportError{Op: "exec", Err: ErrBrokenConn})
}

// Exec implements Client.
func (p *PoolClient) Exec(sql string) (*Result, error) {
	return p.ExecCtx(context.Background(), sql)
}

// ExecCtx implements ContextClient by draining the stream into a materialized
// Result — callers that want incremental delivery use ExecStream.
func (p *PoolClient) ExecCtx(ctx context.Context, sql string) (*Result, error) {
	st, err := p.ExecStream(ctx, sql)
	if err != nil {
		return nil, err
	}
	rel, err := DrainStream(st.Name(), st)
	if err != nil {
		return nil, err
	}
	return &Result{Rel: rel, SimMS: st.SimMS()}, nil
}

// ExecStream implements StreamClient: it returns once the result header (or
// a terminal error) arrives; tuples then stream in frames. The context
// governs the whole stream life: cancellation mid-stream sends a cancel frame
// and surfaces the typed context error from the stream's Err.
func (p *PoolClient) ExecStream(ctx context.Context, sql string) (TupleStream, error) {
	return p.ExecStreamResume(ctx, sql, "", 0)
}

// ExecStreamResume implements ResumableClient: it re-issues sql carrying the
// resume token of a stream that died after delivering skip tuples. The pool's
// pick naturally lands the re-issue on a different (healthy) connection,
// because the one that died is quarantined. An empty token is a plain
// ExecStream.
func (p *PoolClient) ExecStreamResume(ctx context.Context, sql, token string, skip int64) (TupleStream, error) {
	if err := ctx.Err(); err != nil {
		return nil, &TransportError{Op: "exec", Err: err}
	}
	conn, err := p.pick(ctx)
	if err != nil {
		return nil, &TransportError{Op: "exec", Err: err}
	}
	return conn.execStream(ctx, sql, token, skip)
}

// roundTrip dispatches one non-exec catalog request.
func (p *PoolClient) roundTrip(req *wireRequest) (*wireResponse, error) {
	conn, err := p.pick(context.Background())
	if err != nil {
		return nil, &TransportError{Op: req.Op, Err: err}
	}
	return conn.request(context.Background(), req)
}

// RelationSchema implements Client.
func (p *PoolClient) RelationSchema(name string, arity int) (*relation.Schema, error) {
	resp, err := p.roundTrip(&wireRequest{Op: "schema", Name: name})
	if err != nil {
		return nil, err
	}
	attrs := make([]relation.Attr, len(resp.Attrs))
	for i, a := range resp.Attrs {
		attrs[i] = relation.Attr{Name: a.Name, Kind: relation.Kind(a.Kind)}
	}
	sch := relation.NewSchema(attrs...)
	if arity >= 0 && sch.Arity() != arity {
		return nil, errArity(name, sch.Arity(), arity)
	}
	return sch, nil
}

// TableStats implements Client.
func (p *PoolClient) TableStats(name string) (TableStats, error) {
	resp, err := p.roundTrip(&wireRequest{Op: "stats", Name: name})
	if err != nil {
		return TableStats{}, err
	}
	return resp.Stats, nil
}

// Tables implements Client.
func (p *PoolClient) Tables() ([]string, error) {
	resp, err := p.roundTrip(&wireRequest{Op: "tables"})
	if err != nil {
		return nil, err
	}
	return resp.Tables, nil
}

// muxConn is one pooled connection: a shared write path (wmu serializes frame
// writes), a reader goroutine that demultiplexes response frames to streams
// by request ID (v2), and fallback serialized round trips (v1 peer).
type muxConn struct {
	p *PoolClient

	// load counts in-flight requests for the pool's least-loaded dispatch.
	load atomic.Int64

	mu      sync.Mutex // connection state + stream registry
	conn    net.Conn
	enc     *gob.Encoder
	dec     *gob.Decoder
	proto   int
	broken  bool
	streams map[uint64]*muxStream
	// gen counts successful dials. Teardown requests that originate from a
	// particular connection (its read loop, a failed write on it) carry the
	// generation they belong to and are dropped if a redial has since
	// replaced it — otherwise a stale read loop waking up on its closed
	// socket would tear down the fresh connection it never owned.
	gen uint64

	// Failure accounting for health management: consecutive transport
	// failures back the connection off (jittered exponential quarantine, so
	// pick and the background re-dialer avoid a flapping connection), reset
	// only by a COMPLETED request or probe — a successful dial is not
	// evidence of health, or a connection that dials fine and dies mid-request
	// would never stop flapping.
	healthMu  sync.Mutex
	failures  int
	quarUntil time.Time // quarantined until this instant
	jitter    *rand.Rand

	wmu sync.Mutex // serializes frame writes (v2)
	rmu sync.Mutex // serializes round trips (v1 fallback)
}

// Quarantine backoff bounds: the first failure backs a connection off ~10ms,
// each consecutive failure doubles it, capped at 2s — long enough that a dead
// server isn't hammered, short enough that recovery is noticed fast.
const (
	quarBase = 10 * time.Millisecond
	quarMax  = 2 * time.Second
)

// noteFailure records one transport-level failure: the connection enters (or
// extends) quarantine with jittered exponential backoff.
func (c *muxConn) noteFailure() {
	c.healthMu.Lock()
	defer c.healthMu.Unlock()
	d := quarBase << uint(min(c.failures, 20))
	if d <= 0 || d > quarMax {
		d = quarMax
	}
	c.failures++
	frac := 1.0
	if c.jitter != nil {
		frac = 0.5 + 0.5*c.jitter.Float64() // [0.5, 1.0)
	}
	c.quarUntil = time.Now().Add(time.Duration(float64(d) * frac))
}

// noteSuccess records a completed request or probe, clearing quarantine.
func (c *muxConn) noteSuccess() {
	c.healthMu.Lock()
	c.failures = 0
	c.quarUntil = time.Time{}
	c.healthMu.Unlock()
}

// quarantined reports whether the connection is inside its failure backoff.
func (c *muxConn) quarantined(now time.Time) bool {
	c.healthMu.Lock()
	defer c.healthMu.Unlock()
	return now.Before(c.quarUntil)
}

// probe checks liveness with a "ping" round trip. ANY answer — including a
// semantic error from a server predating the ping op — proves the connection
// alive; only a transport/protocol failure condemns it. The probe is bounded
// by RequestTimeout when set, else by the health interval, so a wedged
// connection cannot stall the health loop forever.
func (c *muxConn) probe() error {
	timeout := c.p.opts.RequestTimeout
	if timeout <= 0 {
		timeout = c.p.opts.HealthInterval
	}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	_, err := c.request(ctx, &wireRequest{Op: "ping"})
	if err == nil || !IsTransient(err) {
		c.noteSuccess()
		return nil
	}
	return err
}

// ensure makes the connection usable, dialing or redialing as allowed.
func (c *muxConn) ensure(ctx context.Context) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.p.shut.Load() {
		// pick released p.mu before calling ensure, so Close may have torn
		// everything down in between; dialing now would resurrect a
		// connection nobody will ever tear down again.
		return errors.New("remotedb: client closed")
	}
	if !c.broken && c.conn != nil {
		return nil
	}
	if c.conn != nil && !c.p.opts.Redial {
		return ErrBrokenConn
	}
	return c.dialLocked(ctx)
}

// dialLocked (re)establishes the connection and negotiates the protocol.
// Caller holds c.mu.
func (c *muxConn) dialLocked(ctx context.Context) error {
	opts := c.p.opts
	if c.conn != nil {
		c.conn.Close()
	}
	d := net.Dialer{Timeout: opts.DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", c.p.addr)
	if err != nil {
		c.conn, c.enc, c.dec = nil, nil, nil
		c.broken = true
		c.noteFailure()
		return err
	}
	enc, dec := gob.NewEncoder(conn), gob.NewDecoder(conn)
	proto := protoV1
	if opts.Proto >= protoV2 {
		// Negotiate: a v2 server answers with its accepted version; a v1
		// server reports hello as an unknown op, which IS the v1 answer.
		if opts.RequestTimeout > 0 {
			conn.SetDeadline(time.Now().Add(opts.RequestTimeout))
		}
		hello := &wireRequest{Op: "hello", Proto: opts.Proto, FrameTuples: opts.FrameTuples}
		var resp wireResponse
		if err := enc.Encode(hello); err == nil {
			err = dec.Decode(&resp)
		}
		if err != nil {
			conn.Close()
			c.conn, c.enc, c.dec = nil, nil, nil
			c.broken = true
			c.noteFailure()
			return &ProtocolError{Op: "hello", Err: err}
		}
		conn.SetDeadline(time.Time{})
		if resp.Err == "" && resp.Proto >= protoV2 {
			proto = protoV2
		}
	}
	if c.p.shut.Load() {
		// Close ran while we were dialing (it cannot hold c.mu across our
		// dial): this connection is already past its teardown, so finish the
		// job ourselves instead of leaking the socket.
		conn.Close()
		c.conn, c.enc, c.dec = nil, nil, nil
		c.broken = true
		return errors.New("remotedb: client closed")
	}
	c.conn, c.enc, c.dec = conn, enc, dec
	c.proto = proto
	c.broken = false
	c.streams = make(map[uint64]*muxStream)
	c.gen++
	if proto >= protoV2 {
		go c.readLoop(conn, dec, c.gen)
	}
	return nil
}

// teardown breaks the connection and fails every in-flight stream with err.
// A torn-down connection enters failure quarantine so pick steers around it
// until it proves itself with a completed request.
func (c *muxConn) teardown(err error) {
	c.noteFailure()
	c.mu.Lock()
	if c.conn != nil {
		c.conn.Close()
	}
	c.conn, c.enc, c.dec = nil, nil, nil
	c.broken = true
	streams := c.streams
	c.streams = nil
	c.mu.Unlock()
	for _, st := range streams {
		st.fail(err)
	}
}

// teardownGen is teardown gated on the connection generation: a read loop
// whose connection has already been replaced by a redial must not tear down
// the replacement. The stale loop's own socket is closed (that is what woke
// it), and its streams were failed by the teardown that preceded the redial.
func (c *muxConn) teardownGen(err error, gen uint64) {
	c.mu.Lock()
	stale := c.gen != gen
	c.mu.Unlock()
	if stale {
		return
	}
	c.teardown(err)
}

// readLoop is the demultiplexer: one goroutine per v2 connection routes
// response frames to their stream. Delivery blocks when a stream's window is
// full — that is the client half of end-to-end backpressure (the stalled
// reader stops draining the socket, TCP fills, the server's writer blocks).
// A dead stream never blocks the loop: its gone channel drops late frames.
func (c *muxConn) readLoop(conn net.Conn, dec *gob.Decoder, gen uint64) {
	for {
		f, err := readFrame(dec)
		if err != nil {
			c.teardownGen(&TransportError{Op: "read", Err: err}, gen)
			return
		}
		c.p.stats.framesRecv.Add(1)
		if f.Epoch > 0 {
			c.p.stats.noteEpoch(f.Epoch)
		}
		c.mu.Lock()
		st := c.streams[f.ID]
		if st != nil && f.Kind == frameEnd {
			delete(c.streams, f.ID)
		}
		c.mu.Unlock()
		if st == nil {
			continue // canceled stream's late frames
		}
		select {
		case st.frames <- f:
		case <-st.gone:
		}
	}
}

// writeFrame writes one frame on the shared encoder; an encode error means
// the gob stream is desynchronized, so the whole connection is torn down.
func (c *muxConn) writeFrame(f *wireFrame) error {
	c.wmu.Lock()
	c.mu.Lock()
	conn, enc, broken, gen := c.conn, c.enc, c.broken, c.gen
	c.mu.Unlock()
	if broken || conn == nil {
		c.wmu.Unlock()
		return ErrBrokenConn
	}
	err := writeFrame(enc, f)
	c.wmu.Unlock()
	if err != nil {
		c.teardownGen(&TransportError{Op: "write", Err: err}, gen)
		return err
	}
	c.p.stats.framesSent.Add(1)
	return nil
}

// execStream starts one streamed exec request (v2), or falls back to a
// monolithic round trip replayed through the stream surface (v1 peer — which
// ignores resume state, so a resuming caller sees no ResumeReporter and
// skips client-side).
func (c *muxConn) execStream(ctx context.Context, sql, resume string, skip int64) (TupleStream, error) {
	c.mu.Lock()
	proto := c.proto
	c.mu.Unlock()
	if proto < protoV2 {
		res, err := c.execV1(ctx, sql)
		if err != nil {
			return nil, err
		}
		return NewMaterializedStream(res), nil
	}

	id := c.p.nextID.Add(1)
	st := &muxStream{
		c:      c,
		id:     id,
		ctx:    ctx,
		frames: make(chan *wireFrame, c.p.opts.StreamWindow),
		gone:   make(chan struct{}),
		issued: time.Now(),
	}
	c.mu.Lock()
	if c.broken || c.streams == nil {
		c.mu.Unlock()
		return nil, &TransportError{Op: "exec", Err: ErrBrokenConn}
	}
	c.streams[id] = st
	c.mu.Unlock()
	c.load.Add(1)

	// The context's trace ID (the CMS-side span's trace, or one adopted
	// upstream) rides the request so server spans stitch into the same
	// trace. A v1 peer never reaches here; gob drops the field for old
	// binaries that predate it.
	req := &wireRequest{Op: "exec", SQL: sql, Resume: resume, Skip: skip, Trace: obs.TraceID(ctx)}
	if err := c.writeFrame(&wireFrame{ID: id, Kind: frameReq, Req: req}); err != nil {
		c.unregister(id)
		c.load.Add(-1)
		return nil, &TransportError{Op: "exec", Err: err}
	}
	c.p.stats.requests.Add(1)
	c.p.stats.streams.Add(1)

	// Wait for the header (or a terminal error) so the caller gets a stream
	// with a known schema, and so establishment errors are returned as plain
	// errors that the resilience layer can retry.
	f, err := st.wait()
	if err != nil {
		st.abort(err)
		return nil, err
	}
	switch f.Kind {
	case frameHeader:
		attrs := make([]relation.Attr, len(f.Attrs))
		for i, a := range f.Attrs {
			attrs[i] = relation.Attr{Name: a.Name, Kind: relation.Kind(a.Kind)}
		}
		st.schema = relation.NewSchema(attrs...)
		st.name = f.Name
		st.resume, st.resumed = f.Resume, f.Resumed
		return st, nil
	case frameEnd:
		err := endError(f)
		if err == nil {
			err = &ProtocolError{Op: "exec", Err: errors.New("stream ended before its header")}
		}
		st.finish(err)
		return nil, err
	default:
		err := &ProtocolError{Op: "exec", Err: fmt.Errorf("unexpected frame kind %d before header", f.Kind)}
		st.abort(err)
		return nil, err
	}
}

// endError maps a terminal frame to the client-side error surface (nil for a
// clean end). The classification mirrors the v1 response codes.
func endError(f *wireFrame) error {
	switch f.Code {
	case wireCodeOverloaded:
		return &TransportError{Op: "exec", Err: ErrOverloaded}
	case wireCodeDeadline:
		return &TransportError{Op: "exec", Err: ErrDeadlineExceeded}
	case wireCodeCanceled:
		return &TransportError{Op: "exec", Err: context.Canceled}
	}
	if f.Err != "" {
		return errors.New(f.Err) // semantic: the server answered and said no
	}
	return nil
}

// unregister removes a stream from the demux table; late frames for its ID
// are dropped by the read loop.
func (c *muxConn) unregister(id uint64) {
	c.mu.Lock()
	if c.streams != nil {
		delete(c.streams, id)
	}
	c.mu.Unlock()
}

// request performs one non-exec catalog round trip.
func (c *muxConn) request(ctx context.Context, req *wireRequest) (*wireResponse, error) {
	c.mu.Lock()
	proto := c.proto
	c.mu.Unlock()
	if proto < protoV2 {
		return c.roundTripV1(ctx, req)
	}
	id := c.p.nextID.Add(1)
	st := &muxStream{
		c:      c,
		id:     id,
		ctx:    ctx,
		frames: make(chan *wireFrame, 1),
		gone:   make(chan struct{}),
		issued: time.Now(),
	}
	c.mu.Lock()
	if c.broken || c.streams == nil {
		c.mu.Unlock()
		return nil, &TransportError{Op: req.Op, Err: ErrBrokenConn}
	}
	c.streams[id] = st
	c.mu.Unlock()
	c.load.Add(1)
	defer c.load.Add(-1)
	if err := c.writeFrame(&wireFrame{ID: id, Kind: frameReq, Req: req}); err != nil {
		c.unregister(id)
		return nil, &TransportError{Op: req.Op, Err: err}
	}
	f, err := st.wait()
	if err != nil {
		st.abort(err)
		return nil, err
	}
	if f.Kind != frameEnd {
		err := &ProtocolError{Op: req.Op, Err: fmt.Errorf("unexpected frame kind %d for %s", f.Kind, req.Op)}
		st.abort(err)
		return nil, err
	}
	c.noteSuccess()
	if err := endError(f); err != nil {
		return nil, err
	}
	if f.Err != "" {
		return nil, errors.New(f.Err)
	}
	return &wireResponse{Attrs: f.Attrs, Stats: f.Stats, Tables: f.Tables, Ops: f.Ops}, nil
}

// execV1 is the monolithic fallback exec against a v1 peer.
func (c *muxConn) execV1(ctx context.Context, sql string) (*Result, error) {
	resp, err := c.roundTripV1(ctx, &wireRequest{Op: "exec", SQL: sql})
	if err != nil {
		return nil, err
	}
	rel, err := fromWireRelation(resp.Rel)
	if err != nil {
		return nil, err
	}
	var tuples int64
	if rel != nil {
		tuples = int64(rel.Len())
	}
	sim := c.p.opts.Costs.RequestCost(tuples, resp.Ops)
	c.p.stats.requests.Add(1)
	c.p.stats.tuplesReturned.Add(tuples)
	c.p.stats.serverOps.Add(resp.Ops)
	c.p.stats.addSimMS(sim)
	return &Result{Rel: rel, SimMS: sim}, nil
}

// roundTripV1 is one serialized request/response exchange against a v1 peer
// (the same discipline as TCPClient: one outstanding request per connection).
func (c *muxConn) roundTripV1(ctx context.Context, req *wireRequest) (*wireResponse, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	c.mu.Lock()
	conn, enc, dec, broken := c.conn, c.enc, c.dec, c.broken
	c.mu.Unlock()
	if broken || conn == nil {
		return nil, &TransportError{Op: req.Op, Err: ErrBrokenConn}
	}
	if err := ctx.Err(); err != nil {
		return nil, &TransportError{Op: req.Op, Err: err}
	}
	deadline := time.Time{}
	if c.p.opts.RequestTimeout > 0 {
		deadline = time.Now().Add(c.p.opts.RequestTimeout)
	}
	ctxOwns := false
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline, ctxOwns = d, true
	}
	var stopWatch chan struct{}
	if ctx.Done() != nil {
		stopWatch = make(chan struct{})
		go func() {
			select {
			case <-ctx.Done():
				conn.SetDeadline(time.Now())
			case <-stopWatch:
			}
		}()
		defer close(stopWatch)
	}
	if !deadline.IsZero() {
		conn.SetDeadline(deadline)
	}
	ctxErr := func(err error) error {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if ctxOwns && isTimeout(err) {
			return context.DeadlineExceeded
		}
		return err
	}
	var resp wireResponse
	err := enc.Encode(req)
	if err == nil {
		err = dec.Decode(&resp)
	}
	if err != nil {
		c.teardown(&TransportError{Op: req.Op, Err: ErrBrokenConn})
		return nil, &TransportError{Op: req.Op, Err: ctxErr(err)}
	}
	if !deadline.IsZero() {
		conn.SetDeadline(time.Time{})
	}
	c.noteSuccess()
	if resp.Epoch > 0 {
		c.p.stats.noteEpoch(resp.Epoch)
	}
	switch resp.Code {
	case wireCodeOverloaded:
		return nil, &TransportError{Op: req.Op, Err: ErrOverloaded}
	case wireCodeDeadline:
		return nil, &TransportError{Op: req.Op, Err: ErrDeadlineExceeded}
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	return &resp, nil
}

// muxStream is one in-flight v2 request's client side. Not safe for
// concurrent use (single consumer), except fail/abort which may race from the
// read loop and are serialized by deadOnce.
type muxStream struct {
	c      *muxConn
	id     uint64
	ctx    context.Context
	frames chan *wireFrame
	issued time.Time

	gone     chan struct{} // closed once when the stream dies early
	deadOnce sync.Once
	goneErr  error

	schema *relation.Schema
	name   string

	// resume is the header's resume token ("" for non-resumable results);
	// resumed reports that the server honored a re-issued token server-side.
	resume  string
	resumed bool

	cur []relation.Tuple
	pos int

	tuples     int64
	ops        int64
	sim        float64
	firstSeen  bool
	done       bool
	settled    bool
	termErr    error
}

// wait blocks for the next frame, honoring the stream context, the
// per-frame-wait RequestTimeout, and early death (connection failure).
func (st *muxStream) wait() (*wireFrame, error) {
	var timerC <-chan time.Time
	if rt := st.c.p.opts.RequestTimeout; rt > 0 {
		timer := time.NewTimer(rt)
		defer timer.Stop()
		timerC = timer.C
	}
	select {
	case f := <-st.frames:
		return f, nil
	case <-st.gone:
		return nil, st.goneErr
	case <-timerC:
		return nil, &TransportError{Op: "exec", Err: ErrDeadlineExceeded}
	case <-st.ctx.Done():
		return nil, &TransportError{Op: "exec", Err: st.ctx.Err()}
	}
}

// Next implements relation.Iterator.
func (st *muxStream) Next() (relation.Tuple, bool) {
	for {
		if st.pos < len(st.cur) {
			t := st.cur[st.pos]
			st.pos++
			return t, true
		}
		if st.done {
			return nil, false
		}
		f, err := st.wait()
		if err != nil {
			st.abort(err)
			return nil, false
		}
		switch f.Kind {
		case frameBatch:
			st.noteFirst()
			tuples, derr := fromWireTuples(f.Tuples)
			if derr != nil {
				st.abort(&ProtocolError{Op: "exec", Err: derr})
				return nil, false
			}
			st.tuples += int64(len(tuples))
			st.cur, st.pos = tuples, 0
		case frameEnd:
			st.noteFirst()
			st.ops = f.Ops
			st.finish(endError(f))
			return nil, false
		default:
			st.abort(&ProtocolError{Op: "exec", Err: fmt.Errorf("unexpected mid-stream frame kind %d", f.Kind)})
			return nil, false
		}
	}
}

// noteFirst records the first-payload-frame latency once.
func (st *muxStream) noteFirst() {
	if st.firstSeen {
		return
	}
	st.firstSeen = true
	st.c.p.stats.firstTupleNS.Add(time.Since(st.issued).Nanoseconds())
}

// ResumeState implements ResumeReporter.
func (st *muxStream) ResumeState() (token string, resumed bool) {
	return st.resume, st.resumed
}

// finish settles a naturally terminated stream (clean end or server-reported
// terminal error). Either way the server answered, which is proof the
// connection works: clear its failure quarantine.
func (st *muxStream) finish(err error) {
	if st.done {
		return
	}
	st.done = true
	st.termErr = err
	st.c.noteSuccess()
	st.settle()
}

// abort settles a stream that died early (cancellation, timeout, transport
// failure): it tears down the server-side producer with a cancel frame and
// unregisters locally so late frames are dropped.
func (st *muxStream) abort(err error) {
	if st.done {
		return
	}
	st.done = true
	st.termErr = err
	st.c.unregister(st.id)
	st.deadOnce.Do(func() {
		st.goneErr = err
		close(st.gone)
	})
	// Best-effort cancel so the server stops producing for this ID; a broken
	// connection needs no cancel (the whole conn is gone).
	st.c.writeFrame(&wireFrame{ID: st.id, Kind: frameCancel})
	st.c.p.stats.streamsCanceled.Add(1)
	st.settle()
}

// fail is called by the read loop / teardown when the connection dies under
// the stream; the consumer observes it on its next wait.
func (st *muxStream) fail(err error) {
	st.deadOnce.Do(func() {
		st.goneErr = err
		close(st.gone)
	})
}

// settle charges the virtual cost model once, for what was actually shipped.
func (st *muxStream) settle() {
	if st.settled {
		return
	}
	st.settled = true
	st.c.load.Add(-1)
	st.sim = st.c.p.opts.Costs.RequestCost(st.tuples, st.ops)
	st.c.p.stats.tuplesReturned.Add(st.tuples)
	st.c.p.stats.serverOps.Add(st.ops)
	st.c.p.stats.addSimMS(st.sim)
}

// Schema implements TupleStream.
func (st *muxStream) Schema() *relation.Schema { return st.schema }

// Name implements TupleStream.
func (st *muxStream) Name() string { return st.name }

// Err implements TupleStream.
func (st *muxStream) Err() error {
	if st.termErr != nil {
		return st.termErr
	}
	return nil
}

// Ops implements TupleStream.
func (st *muxStream) Ops() int64 { return st.ops }

// SimMS implements TupleStream.
func (st *muxStream) SimMS() float64 { return st.sim }

// Close implements TupleStream: abandoning an unfinished stream cancels it
// mid-flight (typed ErrStreamClosed); closing a finished stream is a no-op.
func (st *muxStream) Close() error {
	if !st.done {
		st.abort(&TransportError{Op: "exec", Err: ErrStreamClosed})
	}
	return nil
}
