package remotedb

import (
	"fmt"

	"repro/internal/relation"
)

// Per-column catalog statistics, maintained incrementally at LoadTable and
// Insert so the cost-based optimizer (optimizer.go) never has to scan a table
// to plan a query against it. Each column tracks an exact distinct-value set
// up to statsNDVCap values (beyond which the NDV becomes a saturated lower
// bound) and the min/max of everything ever inserted. The accumulators are
// add-only, matching the engine's append-only extensions: deletes do not
// exist, and wholesale replacement (LoadTable) rebuilds the accumulator.

// statsNDVCap bounds the per-column distinct-value tracking set. Below the
// cap NDV is exact; at the cap it saturates into a lower bound. 1<<16 keeps
// the bench workloads (tens of thousands of rows) exact while bounding the
// catalog to ~64k keys per column.
const statsNDVCap = 1 << 16

// colAcc accumulates one column's statistics.
type colAcc struct {
	seen      map[string]struct{}
	saturated bool
	min, max  relation.Value
	any       bool
}

func (c *colAcc) add(v relation.Value) {
	if !c.saturated {
		if c.seen == nil {
			c.seen = make(map[string]struct{})
		}
		c.seen[v.Key()] = struct{}{}
		if len(c.seen) >= statsNDVCap {
			c.saturated = true
		}
	}
	if !c.any {
		c.min, c.max, c.any = v, v, true
		return
	}
	if v.Less(c.min) {
		c.min = v
	}
	if c.max.Less(v) {
		c.max = v
	}
}

// ndv returns the distinct-value count (never below 1 for a non-empty
// column, so selectivity divisions are safe).
func (c *colAcc) ndv() int {
	n := len(c.seen)
	if n == 0 && c.any {
		return 1
	}
	return n
}

// tableMeta is the per-table statistics record.
type tableMeta struct {
	rows int
	cols []colAcc
}

func newTableMeta(arity int) *tableMeta {
	return &tableMeta{cols: make([]colAcc, arity)}
}

func buildTableMeta(r *relation.Relation) *tableMeta {
	m := newTableMeta(r.Schema().Arity())
	for _, t := range r.Tuples() {
		m.addRow(t)
	}
	return m
}

func (m *tableMeta) addRow(t relation.Tuple) {
	m.rows++
	for i := range m.cols {
		if i < len(t) {
			m.cols[i].add(t[i])
		}
	}
}

// exact reports whether every column's NDV is exact and the row count
// matches the live extension (false when a relation was mutated behind the
// engine's back, e.g. appended to after LoadTable).
func (m *tableMeta) exact(liveRows int) bool {
	if m == nil || m.rows != liveRows {
		return false
	}
	for i := range m.cols {
		if m.cols[i].saturated {
			return false
		}
	}
	return true
}

// ColStats is one column's catalog statistics as exposed to callers (and to
// the experiments harness).
type ColStats struct {
	// NDV is the number of distinct values observed; a lower bound when
	// Exact is false (tracking saturated at statsNDVCap).
	NDV   int
	Exact bool
	// Min and Max bound the observed values; valid when HasMinMax.
	Min, Max  relation.Value
	HasMinMax bool
}

// ColStats returns the maintained per-column statistics of a table.
func (e *Engine) ColStats(name string) ([]ColStats, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if _, ok := e.tables[name]; !ok {
		return nil, fmt.Errorf("remotedb: unknown table %s", name)
	}
	m := e.meta[name]
	if m == nil {
		return nil, nil
	}
	out := make([]ColStats, len(m.cols))
	for i := range m.cols {
		c := &m.cols[i]
		out[i] = ColStats{
			NDV:       c.ndv(),
			Exact:     !c.saturated,
			Min:       c.min,
			Max:       c.max,
			HasMinMax: c.any,
		}
	}
	return out, nil
}
