package remotedb

import (
	"context"
	"encoding/gob"
	"errors"
	"net"
	"sync"
	"time"

	"repro/internal/relation"
)

// TCPClient is a Client over the TCP wire protocol. Requests are serialized
// per connection (one outstanding request at a time), matching the paper's
// session-oriented DBMS interface; the CMS opens several clients when it
// wants genuine parallelism against the server.
//
// The same virtual cost model as InProcClient is charged, so experiments can
// switch transports without changing cost semantics (real network time is on
// top, visible in wall-clock benchmarks).
//
// Fault behaviour: any encode/decode error leaves the gob stream
// desynchronized, so the connection is marked broken and torn down — further
// calls fail fast with ErrBrokenConn instead of decoding garbage. With
// TCPOptions.Redial the next call transparently dials a fresh connection
// instead, which is how a session survives a server restart.
type TCPClient struct {
	addr string
	opts TCPOptions

	mu      sync.Mutex
	conn    net.Conn
	enc     *gob.Encoder
	dec     *gob.Decoder
	closed  bool // Close was called; never redial
	broken  bool // stream desynced or torn down; redial or fail fast
	redials int64
	costs   Costs
	stats   Stats
}

// TCPOptions configures the transport-level fault behaviour of a TCPClient.
type TCPOptions struct {
	// Costs is the virtual cost model charged per request.
	Costs Costs
	// Redial re-establishes a broken connection on the next request instead
	// of failing fast forever.
	Redial bool
	// DialTimeout bounds connection establishment (0: no bound).
	DialTimeout time.Duration
	// RequestTimeout is a per-round-trip I/O deadline on the connection; a
	// request that cannot complete within it breaks the connection (0: no
	// deadline). This is the transport-level backstop under the
	// ResilientClient's per-request deadline.
	RequestTimeout time.Duration
}

// DialTCP connects to a Server at addr with default (fail-fast, no redial)
// transport options.
func DialTCP(addr string, costs Costs) (*TCPClient, error) {
	return DialTCPOpts(addr, TCPOptions{Costs: costs})
}

// DialTCPOpts connects to a Server at addr with explicit transport options.
func DialTCPOpts(addr string, opts TCPOptions) (*TCPClient, error) {
	c := &TCPClient{addr: addr, opts: opts, costs: opts.Costs}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.redialLocked(context.Background()); err != nil {
		return nil, &TransportError{Op: "dial", Err: err}
	}
	return c, nil
}

// redialLocked (re)establishes the connection, honoring ctx during the dial.
// Caller holds c.mu.
func (c *TCPClient) redialLocked(ctx context.Context) error {
	if c.conn != nil {
		c.conn.Close()
	}
	d := net.Dialer{Timeout: c.opts.DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		c.conn, c.enc, c.dec = nil, nil, nil
		c.broken = true
		return err
	}
	c.conn = conn
	c.enc = gob.NewEncoder(conn)
	c.dec = gob.NewDecoder(conn)
	c.broken = false
	c.redials++
	return nil
}

// Redials returns how many times the client (re)dialed, including the
// initial dial.
func (c *TCPClient) Redials() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.redials
}

// breakConn marks the connection dead and tears it down (also used by
// FaultClient to simulate a dropped connection).
func (c *TCPClient) breakConn() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.breakLocked()
}

func (c *TCPClient) breakLocked() {
	if c.conn != nil {
		c.conn.Close()
	}
	c.conn, c.enc, c.dec = nil, nil, nil
	c.broken = true
}

func (c *TCPClient) roundTrip(req *wireRequest) (*wireResponse, error) {
	return c.roundTripCtx(context.Background(), req)
}

// roundTripCtx performs one request/response exchange. The effective I/O
// deadline is the tighter of RequestTimeout and ctx's deadline; a canceled
// context is reported as the transport cause so callers see the typed
// cancellation. A round trip interrupted mid-exchange leaves the gob stream
// desynchronized, so the connection is broken either way.
func (c *TCPClient) roundTripCtx(ctx context.Context, req *wireRequest) (*wireResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errors.New("remotedb: client closed")
	}
	if err := ctx.Err(); err != nil {
		return nil, &TransportError{Op: req.Op, Err: err}
	}
	if c.broken || c.conn == nil {
		if !c.opts.Redial {
			return nil, &TransportError{Op: req.Op, Err: ErrBrokenConn}
		}
		if err := c.redialLocked(ctx); err != nil {
			return nil, &TransportError{Op: req.Op, Err: err}
		}
	}
	deadline := time.Time{}
	if c.opts.RequestTimeout > 0 {
		deadline = time.Now().Add(c.opts.RequestTimeout)
	}
	ctxOwnsDeadline := false
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
		ctxOwnsDeadline = true
	}
	// A cancelable (but deadline-free) context still needs the blocking read
	// unblocked: a watcher goroutine slams the deadline shut on cancellation.
	var stopWatch chan struct{}
	if ctx.Done() != nil {
		stopWatch = make(chan struct{})
		conn := c.conn
		go func() {
			select {
			case <-ctx.Done():
				conn.SetDeadline(time.Now())
			case <-stopWatch:
			}
		}()
		defer close(stopWatch)
	}
	if !deadline.IsZero() {
		c.conn.SetDeadline(deadline)
	}
	ctxErr := func(err error) error {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		// The conn deadline was the ctx's own deadline, so an I/O timeout IS
		// the ctx expiring — the socket timer can just fire a hair before the
		// ctx timer flips Err() non-nil.
		if ctxOwnsDeadline && isTimeout(err) {
			return context.DeadlineExceeded
		}
		return err
	}
	if err := c.enc.Encode(req); err != nil {
		c.breakLocked()
		return nil, &TransportError{Op: req.Op, Err: ctxErr(err)}
	}
	var resp wireResponse
	if err := c.dec.Decode(&resp); err != nil {
		c.breakLocked()
		return nil, &TransportError{Op: req.Op, Err: ctxErr(err)}
	}
	if !deadline.IsZero() {
		c.conn.SetDeadline(time.Time{})
	}
	if resp.Epoch > c.stats.Epoch {
		c.stats.Epoch = resp.Epoch
	}
	switch resp.Code {
	case wireCodeOverloaded:
		// Admission shed: the server is healthy but saturated. The stream is
		// intact; the typed sentinel tells clients to back off, not degrade.
		return nil, &TransportError{Op: req.Op, Err: ErrOverloaded}
	case wireCodeDeadline:
		// The server abandoned the request at its own deadline.
		return nil, &TransportError{Op: req.Op, Err: ErrDeadlineExceeded}
	}
	if resp.Err != "" {
		// Semantic error reported by the server; the stream is intact.
		return nil, errors.New(resp.Err)
	}
	return &resp, nil
}

// Exec implements Client.
func (c *TCPClient) Exec(sql string) (*Result, error) {
	return c.ExecCtx(context.Background(), sql)
}

// ExecCtx implements ContextClient.
func (c *TCPClient) ExecCtx(ctx context.Context, sql string) (*Result, error) {
	resp, err := c.roundTripCtx(ctx, &wireRequest{Op: "exec", SQL: sql})
	if err != nil {
		return nil, err
	}
	rel, err := fromWireRelation(resp.Rel)
	if err != nil {
		return nil, err
	}
	var tuples int64
	if rel != nil {
		tuples = int64(rel.Len())
	}
	sim := c.costs.RequestCost(tuples, resp.Ops)
	c.mu.Lock()
	c.stats.Requests++
	c.stats.TuplesReturned += tuples
	c.stats.ServerOps += resp.Ops
	c.stats.SimMS += sim
	c.mu.Unlock()
	return &Result{Rel: rel, SimMS: sim}, nil
}

// RelationSchema implements Client.
func (c *TCPClient) RelationSchema(name string, arity int) (*relation.Schema, error) {
	resp, err := c.roundTrip(&wireRequest{Op: "schema", Name: name})
	if err != nil {
		return nil, err
	}
	attrs := make([]relation.Attr, len(resp.Attrs))
	for i, a := range resp.Attrs {
		attrs[i] = relation.Attr{Name: a.Name, Kind: relation.Kind(a.Kind)}
	}
	sch := relation.NewSchema(attrs...)
	if arity >= 0 && sch.Arity() != arity {
		return nil, errArity(name, sch.Arity(), arity)
	}
	return sch, nil
}

// TableStats implements Client.
func (c *TCPClient) TableStats(name string) (TableStats, error) {
	resp, err := c.roundTrip(&wireRequest{Op: "stats", Name: name})
	if err != nil {
		return TableStats{}, err
	}
	return resp.Stats, nil
}

// Tables implements Client.
func (c *TCPClient) Tables() ([]string, error) {
	resp, err := c.roundTrip(&wireRequest{Op: "tables"})
	if err != nil {
		return nil, err
	}
	return resp.Tables, nil
}

// Stats implements Client.
func (c *TCPClient) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// ObservedEpoch implements EpochReporter.
func (c *TCPClient) ObservedEpoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats.Epoch
}

// Close implements Client.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	var err error
	if c.conn != nil {
		err = c.conn.Close()
	}
	c.conn, c.enc, c.dec = nil, nil, nil
	return err
}
