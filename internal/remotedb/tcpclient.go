package remotedb

import (
	"encoding/gob"
	"errors"
	"net"
	"sync"

	"repro/internal/relation"
)

// TCPClient is a Client over the TCP wire protocol. Requests are serialized
// per connection (one outstanding request at a time), matching the paper's
// session-oriented DBMS interface; the CMS opens several clients when it
// wants genuine parallelism against the server.
//
// The same virtual cost model as InProcClient is charged, so experiments can
// switch transports without changing cost semantics (real network time is on
// top, visible in wall-clock benchmarks).
type TCPClient struct {
	mu    sync.Mutex
	conn  net.Conn
	enc   *gob.Encoder
	dec   *gob.Decoder
	costs Costs
	stats Stats
}

// DialTCP connects to a Server at addr.
func DialTCP(addr string, costs Costs) (*TCPClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &TCPClient{
		conn:  conn,
		enc:   gob.NewEncoder(conn),
		dec:   gob.NewDecoder(conn),
		costs: costs,
	}, nil
}

func (c *TCPClient) roundTrip(req *wireRequest) (*wireResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil, errors.New("remotedb: client closed")
	}
	if err := c.enc.Encode(req); err != nil {
		return nil, err
	}
	var resp wireResponse
	if err := c.dec.Decode(&resp); err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	return &resp, nil
}

// Exec implements Client.
func (c *TCPClient) Exec(sql string) (*Result, error) {
	resp, err := c.roundTrip(&wireRequest{Op: "exec", SQL: sql})
	if err != nil {
		return nil, err
	}
	rel, err := fromWireRelation(resp.Rel)
	if err != nil {
		return nil, err
	}
	var tuples int64
	if rel != nil {
		tuples = int64(rel.Len())
	}
	sim := c.costs.RequestCost(tuples, resp.Ops)
	c.mu.Lock()
	c.stats.Requests++
	c.stats.TuplesReturned += tuples
	c.stats.ServerOps += resp.Ops
	c.stats.SimMS += sim
	c.mu.Unlock()
	return &Result{Rel: rel, SimMS: sim}, nil
}

// RelationSchema implements Client.
func (c *TCPClient) RelationSchema(name string, arity int) (*relation.Schema, error) {
	resp, err := c.roundTrip(&wireRequest{Op: "schema", Name: name})
	if err != nil {
		return nil, err
	}
	attrs := make([]relation.Attr, len(resp.Attrs))
	for i, a := range resp.Attrs {
		attrs[i] = relation.Attr{Name: a.Name, Kind: relation.Kind(a.Kind)}
	}
	sch := relation.NewSchema(attrs...)
	if arity >= 0 && sch.Arity() != arity {
		return nil, errArity(name, sch.Arity(), arity)
	}
	return sch, nil
}

// TableStats implements Client.
func (c *TCPClient) TableStats(name string) (TableStats, error) {
	resp, err := c.roundTrip(&wireRequest{Op: "stats", Name: name})
	if err != nil {
		return TableStats{}, err
	}
	return resp.Stats, nil
}

// Tables implements Client.
func (c *TCPClient) Tables() ([]string, error) {
	resp, err := c.roundTrip(&wireRequest{Op: "tables"})
	if err != nil {
		return nil, err
	}
	return resp.Tables, nil
}

// Stats implements Client.
func (c *TCPClient) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Close implements Client.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}
