package remotedb

import (
	"errors"
	"fmt"
	"io"
	"net"
)

// This file defines the error taxonomy of the remote path. The CMS needs to
// distinguish two failure classes that a bare error value conflates:
//
//   - semantic errors — the server understood the request and rejected it
//     (unknown table, SQL syntax, arity mismatch). Retrying is pointless and
//     the connection is fine.
//   - transport errors — the request may never have reached the server, or
//     the response never came back (dropped connection, timeout, refused
//     dial, injected fault). These are retryable and, when persistent, mean
//     the remote DBMS is unavailable and the CMS should degrade to
//     cache-only service.
//
// Transport-level failures are wrapped in *TransportError by every client;
// ResilientClient converts persistent transport failure into
// *UnavailableError, which matches ErrRemoteUnavailable under errors.Is.

// ErrRemoteUnavailable is the sentinel the CMS and IE test for with
// errors.Is: the remote DBMS cannot be reached right now (circuit open,
// retries exhausted, or deadline exceeded). Queries answerable from the
// cache keep working while this condition holds.
var ErrRemoteUnavailable = errors.New("remotedb: remote DBMS unavailable")

// ErrDeadlineExceeded reports that a request exceeded its configured
// per-request deadline.
var ErrDeadlineExceeded = errors.New("remotedb: request deadline exceeded")

// ErrBrokenConn reports a connection known to be desynchronized or dead; the
// client fails fast instead of reading from a corrupt stream.
var ErrBrokenConn = errors.New("remotedb: connection broken")

// ErrOverloaded reports that the server's admission controller shed the
// request (distinct wire code, not a failure: the server is healthy but
// saturated). It is transient — backing off and retrying is the right client
// response, and ResilientClient does exactly that.
var ErrOverloaded = errors.New("remotedb: server overloaded, request shed")

// ErrProtocol is the sentinel for wire-protocol violations on the framed (v2)
// transport: a corrupted or truncated frame, an unknown frame kind, a frame
// for the wrong direction. A protocol error always desynchronizes the gob
// stream, so the connection is torn down. Match with errors.Is.
var ErrProtocol = errors.New("remotedb: wire protocol violation")

// ErrStreamClosed reports a read from a tuple stream that was explicitly
// closed by its consumer.
var ErrStreamClosed = errors.New("remotedb: stream closed by consumer")

// ProtocolError wraps the cause of one wire-protocol violation. It matches
// ErrProtocol under errors.Is and is transient for retry purposes (the
// request can be replayed on a fresh connection).
type ProtocolError struct {
	Op  string // "read frame", "write frame", "hello"
	Err error
}

// Error implements error.
func (e *ProtocolError) Error() string {
	return fmt.Sprintf("%v (%s): %v", ErrProtocol, e.Op, e.Err)
}

// Unwrap exposes the underlying cause.
func (e *ProtocolError) Unwrap() error { return e.Err }

// Is matches ErrProtocol so callers can classify without the concrete type.
func (e *ProtocolError) Is(target error) bool { return target == ErrProtocol }

// TransportError wraps an I/O-level failure of one request. It is retryable:
// the request may not have produced a semantic answer at all.
type TransportError struct {
	Op  string // protocol op ("exec", "schema", "stats", "tables", "dial")
	Err error
}

// Error implements error.
func (e *TransportError) Error() string {
	return fmt.Sprintf("remotedb: transport failure (%s): %v", e.Op, e.Err)
}

// Unwrap exposes the underlying cause.
func (e *TransportError) Unwrap() error { return e.Err }

// UnavailableError is the typed failure ResilientClient returns when it gives
// up on a request: the circuit breaker is open, or retries were exhausted.
// It matches ErrRemoteUnavailable under errors.Is.
type UnavailableError struct {
	Reason string // "circuit open", "retries exhausted", ...
	Cause  error  // last underlying error (may be nil for fail-fast)
}

// Error implements error.
func (e *UnavailableError) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("%v (%s): %v", ErrRemoteUnavailable, e.Reason, e.Cause)
	}
	return fmt.Sprintf("%v (%s)", ErrRemoteUnavailable, e.Reason)
}

// Unwrap exposes the last underlying error.
func (e *UnavailableError) Unwrap() error { return e.Cause }

// Is matches ErrRemoteUnavailable so callers can use errors.Is without
// knowing the concrete type.
func (e *UnavailableError) Is(target error) bool { return target == ErrRemoteUnavailable }

// IsTransient reports whether err is a retryable transport-level failure (as
// opposed to a semantic error from the engine, which retrying cannot fix).
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	var te *TransportError
	if errors.As(err, &te) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	return errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) ||
		errors.Is(err, ErrDeadlineExceeded) ||
		errors.Is(err, ErrBrokenConn) ||
		errors.Is(err, ErrOverloaded) ||
		errors.Is(err, ErrProtocol) ||
		errors.Is(err, ErrRemoteUnavailable)
}

// IsOverloaded reports whether err is a server shed response, so callers can
// distinguish overload (back off, retry later) from failure.
func IsOverloaded(err error) bool { return errors.Is(err, ErrOverloaded) }

// IsUnavailable reports whether err means the remote DBMS is unavailable
// (the typed fail-fast condition the CMS degrades on).
func IsUnavailable(err error) bool { return errors.Is(err, ErrRemoteUnavailable) }

// AvailabilityReporter is implemented by clients that track remote health
// (ResilientClient via its circuit breaker). The CMS consults it to decide
// whether to suppress prefetch/eager work and count degraded-mode hits.
type AvailabilityReporter interface {
	// Available reports whether the client would currently attempt a remote
	// request (breaker closed or half-open) rather than fail fast.
	Available() bool
}

// ResilienceReporter is implemented by clients that keep retry/breaker
// counters (ResilientClient); the CMS folds these into its stats surface.
type ResilienceReporter interface {
	ResilienceStats() ResilienceStats
}
