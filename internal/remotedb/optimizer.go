package remotedb

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/relation"
)

// The cost-based optimizer: compiles a SELECT into a Plan tree (plan.go)
// using the catalog statistics maintained in stats.go. The rewrites, in
// order:
//
//   - predicate pushdown: every single-alias WHERE conjunct evaluates inside
//     that alias's scan, below any join;
//   - index-aware access paths: equality-constant conjuncts select the most
//     selective covering hash index (estimated by the product of the indexed
//     columns' NDVs);
//   - join reordering: left-deep orders enumerated exhaustively up to
//     joinEnumLimit aliases (greedily beyond), costed with per-step
//     build+probe+output cardinalities; ties break toward the largest probe
//     side, so small relations build and large ones stream (small-drives-large);
//   - column pruning: each scan in a multi-table plan projects away columns
//     nothing downstream reads, narrowing hash-table entries and shipped
//     intermediates;
//   - LIMIT/TopN pushdown: a LIMIT over an ORDER BY fuses into a bounded-heap
//     TopN sort; a bare LIMIT short-circuits naturally because execution is
//     pull-based.
//
// The planner mirrors the naive executor's semantics exactly (the golden
// parity suite in parity_test.go holds it to that), including its resolution
// error messages, via the shared analyzeSelect.

// joinEnumLimit caps exhaustive join-order enumeration (n! permutations).
const joinEnumLimit = 6

// aliasAccess is the chosen access path and cardinality estimates for one
// FROM alias.
type aliasAccess struct {
	alias string
	table string
	sch   *relation.Schema
	conds []relation.Cond
	meta  *tableMeta

	idxCols []int
	idxVals []relation.Value

	examineEst float64 // rows the access path reads
	outEst     float64 // rows surviving the pushed-down predicates
}

// colKey names one resolved column: (alias, column offset in its base table).
type colKey struct {
	alias string
	col   int
}

// buildPlan compiles sel against the current catalog. It acquires the engine
// read lock itself (plans are built rarely; executions hit the cache).
func (e *Engine) buildPlan(sel *SelectStmt) (*Plan, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	epoch := e.epoch.Load()

	scope, err := e.analyzeSelect(sel)
	if err != nil {
		return nil, err
	}
	attrName := func(k colKey) string { return scope.aliases[k.alias].Schema().Attr(k.col).Name }

	// --- Resolution (same order and error strings as the naive executor) ---
	hasAgg := false
	for _, it := range sel.Items {
		if it.IsAgg {
			hasAgg = true
		}
	}

	var groupRefs []colKey
	type aggItem struct {
		op   relation.AggOp
		star bool
		ref  colKey
	}
	var aggItems []aggItem
	star := false
	var itemRefs []colKey

	if hasAgg {
		for _, g := range sel.GroupBy {
			a, i, err := scope.resolve(g)
			if err != nil {
				return nil, err
			}
			groupRefs = append(groupRefs, colKey{a, i})
		}
		for _, it := range sel.Items {
			if !it.IsAgg {
				continue // non-aggregate items must be group-by columns; they are re-emitted first
			}
			ai := aggItem{op: it.Agg, star: it.AggStar}
			if !it.AggStar {
				a, i, err := scope.resolve(it.Col)
				if err != nil {
					return nil, err
				}
				ai.ref = colKey{a, i}
			}
			aggItems = append(aggItems, ai)
		}
	} else {
		star = len(sel.Items) == 1 && sel.Items[0].Star
		if star {
			for _, a := range scope.order {
				for i := 0; i < scope.aliases[a].Schema().Arity(); i++ {
					itemRefs = append(itemRefs, colKey{a, i})
				}
			}
		} else {
			for _, it := range sel.Items {
				if it.Star {
					return nil, fmt.Errorf("remotedb: * must be the only select item")
				}
				a, i, err := scope.resolve(it.Col)
				if err != nil {
					return nil, err
				}
				itemRefs = append(itemRefs, colKey{a, i})
			}
		}
	}

	// Projection attributes (non-agg) and ORDER BY resolution. Like the naive
	// executor, an ORDER BY column resolves against the projection by bare
	// name first (matched on base attribute names; the output schema itself
	// is derived from the join-deduplicated wide schema below); one the
	// projection dropped resolves against the wide schema and forces the
	// sort below the projection. Aggregate ORDER BY resolves later, against
	// the aggregate output schema.
	var projAttrs []relation.Attr
	for _, r := range itemRefs {
		projAttrs = append(projAttrs, scope.aliases[r.alias].Schema().Attr(r.col))
	}
	var sortResIdx []int    // projection positions, when every sort col is projected
	var sortWideRefs []colKey // all sort cols as wide refs, when any is not projected
	needWide := false
	if !hasAgg {
		for _, c := range sel.OrderBy {
			found := -1
			for i, a := range projAttrs {
				if a.Name == c.Column {
					found = i
					break
				}
			}
			if found >= 0 {
				sortResIdx = append(sortResIdx, found)
				sortWideRefs = append(sortWideRefs, itemRefs[found])
				continue
			}
			needWide = true
			a, i, err := scope.resolve(c)
			if err != nil {
				return nil, err
			}
			sortWideRefs = append(sortWideRefs, colKey{a, i})
		}
	}

	// --- Access paths and per-alias estimates ---
	accs := make(map[string]*aliasAccess, len(scope.order))
	for _, a := range scope.order {
		accs[a] = e.accessFor(scope, a)
	}

	// --- Join order ---
	best := e.chooseJoinOrder(scope, accs)
	estOps, wideEst := joinOrderCost(scope, accs, best)

	// --- Column pruning: which base columns does anything above the joins
	// read? (Only meaningful with 2+ aliases; single-table plans prune via
	// the final projection itself.) ---
	needed := make(map[string]map[int]bool, len(scope.order))
	mark := func(k colKey) {
		if needed[k.alias] == nil {
			needed[k.alias] = make(map[int]bool)
		}
		needed[k.alias][k.col] = true
	}
	for _, r := range itemRefs {
		mark(r)
	}
	for _, r := range groupRefs {
		mark(r)
	}
	for _, ai := range aggItems {
		if !ai.star {
			mark(ai.ref)
		}
	}
	for _, r := range sortWideRefs {
		mark(r)
	}
	for _, c := range scope.cross {
		mark(colKey{c.la, c.lc})
		mark(colKey{c.ra, c.rc})
	}

	// nodeEst stamps the optimizer's output-cardinality estimate on every
	// node as it is built; EXPLAIN ANALYZE renders it against actuals.
	nodeEst := make(map[planNode]float64)

	// --- Per-alias subtrees: scan (+ prune) ---
	subtree := make(map[string]planNode, len(scope.order))
	prunedCols := make(map[string][]int, len(scope.order))
	scanExamine := make(map[*scanNode]float64, len(scope.order))
	for _, a := range scope.order {
		acc := accs[a]
		sn := &scanNode{
			table:   acc.table,
			alias:   a,
			sch:     acc.sch,
			conds:   acc.conds,
			idxCols: acc.idxCols,
			idxVals: acc.idxVals,
			desc:    scanDesc(acc),
		}
		scanExamine[sn] = acc.examineEst
		var node planNode = sn
		arity := acc.sch.Arity()
		keep := make([]int, 0, arity)
		if len(scope.order) > 1 && len(needed[a]) < arity {
			for i := 0; i < arity; i++ {
				if needed[a][i] {
					keep = append(keep, i)
				}
			}
			names := make([]string, len(keep))
			for i, c := range keep {
				names[i] = acc.sch.Attr(c).Name
			}
			node = &projectNode{
				child: sn,
				cols:  keep,
				sch:   acc.sch.Project(keep),
				desc:  fmt.Sprintf("prune %s to (%s)", a, strings.Join(names, ", ")),
			}
		} else {
			for i := 0; i < arity; i++ {
				keep = append(keep, i)
			}
		}
		nodeEst[sn] = acc.outEst
		if node != planNode(sn) {
			nodeEst[node] = acc.outEst
		}
		prunedCols[a] = keep
		subtree[a] = node
	}
	rankIn := func(k colKey) int {
		for i, c := range prunedCols[k.alias] {
			if c == k.col {
				return i
			}
		}
		return -1
	}

	// --- Left-deep join tree in the chosen order; each cross-alias conjunct
	// folds into the join that completes it (equi-joins into the hash join's
	// key, theta conditions as post-filters). ---
	offs := map[string]int{best[0]: 0}
	joined := map[string]bool{best[0]: true}
	cur := subtree[best[0]]
	wideArity := len(prunedCols[best[0]])
	consumed := make([]bool, len(scope.cross))
	leftEst := accs[best[0]].outEst
	for _, a := range best[1:] {
		right := subtree[a]
		// Per-step output estimate, mirroring joinOrderCost's recurrence
		// (joined does not yet include a here).
		stepOut := leftEst * accs[a].outEst * joinStepSelectivity(scope, accs, joined, a)
		var eq []relation.JoinCond
		var post []relation.Cond
		var condStrs []string
		for ci, c := range scope.cross {
			if consumed[ci] {
				continue
			}
			lk, rk := colKey{c.la, c.lc}, colKey{c.ra, c.rc}
			switch {
			case c.la == a && joined[c.ra]:
				if c.op == relation.OpEq {
					eq = append(eq, relation.JoinCond{Left: offs[c.ra] + rankIn(rk), Right: rankIn(lk)})
				} else {
					post = append(post, relation.Cond{Left: wideArity + rankIn(lk), Op: c.op, Right: offs[c.ra] + rankIn(rk)})
				}
			case c.ra == a && joined[c.la]:
				if c.op == relation.OpEq {
					eq = append(eq, relation.JoinCond{Left: offs[c.la] + rankIn(lk), Right: rankIn(rk)})
				} else {
					post = append(post, relation.Cond{Left: offs[c.la] + rankIn(lk), Op: c.op, Right: wideArity + rankIn(rk)})
				}
			default:
				continue
			}
			consumed[ci] = true
			condStrs = append(condStrs, fmt.Sprintf("%s.%s %s %s.%s", c.la, attrName(lk), c.op, c.ra, attrName(rk)))
		}
		kind := "hash join"
		if len(eq) == 0 {
			kind = "nested-loop join"
			if len(post) == 0 {
				condStrs = append(condStrs, "cross")
			}
		}
		jn := &joinNode{
			left:  cur,
			right: right,
			eq:    eq,
			post:  post,
			sch:   cur.Schema().Concat(right.Schema()),
			desc:  fmt.Sprintf("%s [%s] (build %s, probe streams)", kind, strings.Join(condStrs, " AND "), a),
		}
		nodeEst[jn] = stepOut
		leftEst = stepOut
		offs[a] = wideArity
		wideArity += len(prunedCols[a])
		cur = jn
		joined[a] = true
	}
	// Defensive: a conjunct not folded above (cannot normally happen) applies
	// as a residual filter over the full wide tuple.
	var leftover []relation.Cond
	for ci, c := range scope.cross {
		if !consumed[ci] {
			leftover = append(leftover, relation.Cond{
				Left:  offs[c.la] + rankIn(colKey{c.la, c.lc}),
				Op:    c.op,
				Right: offs[c.ra] + rankIn(colKey{c.ra, c.rc}),
			})
		}
	}
	if len(leftover) > 0 {
		cur = &filterNode{child: cur, conds: leftover, desc: fmt.Sprintf("filter (%d residual conds)", len(leftover))}
		nodeEst[cur] = wideEst
	}

	pos := func(k colKey) int { return offs[k.alias] + rankIn(k) }

	// --- Tail: aggregation or projection, then distinct / sort / limit ---
	est := wideEst
	var schema *relation.Schema
	if hasAgg {
		var groupCols []int
		groupNDV := 1.0
		for _, r := range groupRefs {
			groupCols = append(groupCols, pos(r))
			groupNDV *= float64(colNDV(accs[r.alias].meta, r.col))
		}
		var specs []relation.AggSpec
		var attrs []relation.Attr
		var specStrs []string
		for _, g := range groupCols {
			attrs = append(attrs, cur.Schema().Attr(g))
		}
		for _, ai := range aggItems {
			spec := relation.AggSpec{Op: ai.op, Col: -1}
			if !ai.star {
				spec.Col = pos(ai.ref)
				specStrs = append(specStrs, fmt.Sprintf("%s(%s)", ai.op, attrName(ai.ref)))
			} else {
				specStrs = append(specStrs, fmt.Sprintf("%s(*)", ai.op))
			}
			specs = append(specs, spec)
		}
		for i, s := range specs {
			kind := relation.KindFloat
			if s.Op == relation.AggCount {
				kind = relation.KindInt
			} else if (s.Op == relation.AggMin || s.Op == relation.AggMax) && s.Col >= 0 {
				kind = cur.Schema().Attr(s.Col).Kind
			}
			attrs = append(attrs, relation.Attr{Name: fmt.Sprintf("agg%d", i), Kind: kind})
		}
		aggSch := relation.NewSchema(attrs...)
		groupNames := make([]string, len(groupCols))
		for i, g := range groupCols {
			groupNames[i] = cur.Schema().Attr(g).Name
		}
		estOps += est
		if len(groupCols) > 0 {
			est = math.Min(est, groupNDV)
		} else {
			est = 1
		}
		cur = &aggNode{
			child: cur, groupCols: groupCols, specs: specs, sch: aggSch,
			desc: fmt.Sprintf("aggregate group by (%s) [%s]", strings.Join(groupNames, ", "), strings.Join(specStrs, ", ")),
		}
		nodeEst[cur] = est
		if sel.Distinct {
			estOps += est
			cur = &distinctNode{child: cur, desc: "distinct"}
			nodeEst[cur] = est
		}
		if len(sel.OrderBy) > 0 {
			var cols []int
			var names []string
			for _, c := range sel.OrderBy {
				i := aggSch.ColIndex(c.Column)
				if i < 0 {
					return nil, fmt.Errorf("remotedb: ORDER BY column %s not in result", c.Column)
				}
				cols = append(cols, i)
				names = append(names, c.Column)
			}
			estOps += est
			sn := &sortNode{child: cur, cols: cols, limit: -1, desc: "sort (" + strings.Join(names, ", ") + ")"}
			if sel.Limit >= 0 { // distinct runs below the sort, so TopN fusing is safe
				sn.limit = sel.Limit
				sn.desc = fmt.Sprintf("topn (%s) limit %d", strings.Join(names, ", "), sel.Limit)
			}
			cur = sn
			nodeEst[cur] = est
		}
		schema = aggSch
	} else {
		cols := make([]int, len(itemRefs))
		for i, r := range itemRefs {
			cols[i] = pos(r)
		}
		// Derive the output schema from the wide (join-concatenated) schema so
		// duplicate base names carry the same disambiguating suffixes a
		// materialized join would give them.
		projSch := cur.Schema().Project(cols)
		projNames := make([]string, projSch.Arity())
		for i := range projNames {
			projNames[i] = projSch.Attr(i).Name
		}
		projDesc := "project (" + strings.Join(projNames, ", ") + ")"

		if needWide {
			// Satellite semantics: ORDER BY names a non-projected column, so
			// the sort runs below the projection, over the wide tuples.
			widePoss := make([]int, len(sortWideRefs))
			names := make([]string, len(sortWideRefs))
			for i, r := range sortWideRefs {
				widePoss[i] = pos(r)
				names[i] = attrName(r)
			}
			estOps += est
			sn := &sortNode{child: cur, cols: widePoss, limit: -1, desc: "sort wide (" + strings.Join(names, ", ") + ")"}
			if sel.Limit >= 0 && !sel.Distinct { // projection is 1-1, so TopN below it is safe
				sn.limit = sel.Limit
				sn.desc = fmt.Sprintf("topn wide (%s) limit %d", strings.Join(names, ", "), sel.Limit)
			}
			cur = sn
			nodeEst[cur] = est
			estOps += est
			cur = &projectNode{child: cur, cols: cols, sch: projSch, counted: true, desc: projDesc}
			nodeEst[cur] = est
			if sel.Distinct {
				estOps += est
				cur = &distinctNode{child: cur, desc: "distinct"}
				nodeEst[cur] = est
			}
		} else {
			estOps += est
			cur = &projectNode{child: cur, cols: cols, sch: projSch, counted: true, desc: projDesc}
			nodeEst[cur] = est
			if sel.Distinct {
				estOps += est
				cur = &distinctNode{child: cur, desc: "distinct"}
				nodeEst[cur] = est
			}
			if len(sortResIdx) > 0 {
				names := make([]string, len(sortResIdx))
				for i, p := range sortResIdx {
					names[i] = projAttrs[p].Name
				}
				estOps += est
				sn := &sortNode{child: cur, cols: sortResIdx, limit: -1, desc: "sort (" + strings.Join(names, ", ") + ")"}
				if sel.Limit >= 0 { // distinct (if any) runs below the sort
					sn.limit = sel.Limit
					sn.desc = fmt.Sprintf("topn (%s) limit %d", strings.Join(names, ", "), sel.Limit)
				}
				cur = sn
				nodeEst[cur] = est
			}
		}
		schema = projSch
	}
	if sel.Limit >= 0 {
		est = math.Min(est, float64(sel.Limit))
		cur = &limitNode{child: cur, n: sel.Limit, desc: fmt.Sprintf("limit %d", sel.Limit)}
		nodeEst[cur] = est
	}

	return &Plan{
		root:    cur,
		schema:  schema,
		epoch:   epoch,
		estRows: est,
		estOps:  estOps,
		nodeEst: nodeEst,
		// Parallel eligibility is a pure shape property, so it is decided
		// here, once per plan; the per-execution DOP decision stays at open
		// time where the engine's settings are known.
		par: findParSection(cur, scanExamine),
	}, nil
}

// accessFor picks the access path for one alias: the most selective covering
// hash index when an equality-constant conjunct matches one, else a full
// scan. The caller holds e.mu.
func (e *Engine) accessFor(scope *selScope, a string) *aliasAccess {
	base := scope.aliases[a]
	m := e.meta[base.Name]
	rows := float64(base.Len())
	conds := scope.perAlias[a]
	selv := 1.0
	for _, c := range conds {
		selv *= condSelectivity(m, c)
	}
	acc := &aliasAccess{
		alias: a, table: base.Name, sch: base.Schema(), conds: conds, meta: m,
		examineEst: rows,
		outEst:     math.Max(rows*selv, 0),
	}
	pairs := scope.eqConsts[a]
	if len(pairs) == 0 {
		return acc
	}
	var best *relation.Index
	bestNDV := 0.0
	for _, ix := range e.indexes[base.Name] {
		if !indexCovered(ix, pairs) {
			continue
		}
		nd := 1.0
		for _, col := range ix.Cols() {
			nd *= float64(colNDV(m, col))
		}
		if best == nil || nd > bestNDV {
			best, bestNDV = ix, nd
		}
	}
	if best == nil {
		return acc
	}
	acc.idxCols = append([]int(nil), best.Cols()...)
	acc.idxVals = make([]relation.Value, len(acc.idxCols))
	for i, col := range acc.idxCols {
		for _, p := range pairs {
			if p[0].(int) == col {
				acc.idxVals[i] = p[1].(relation.Value)
			}
		}
	}
	if bestNDV > 0 {
		acc.examineEst = rows / bestNDV
	}
	return acc
}

// indexCovered reports whether every indexed column has an equality pair.
func indexCovered(ix *relation.Index, pairs [][2]any) bool {
	for _, col := range ix.Cols() {
		found := false
		for _, p := range pairs {
			if p[0].(int) == col {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// colNDV returns the column's distinct-value estimate (a default guess of 10
// without statistics; never below 1).
func colNDV(m *tableMeta, col int) int {
	if m == nil || col < 0 || col >= len(m.cols) {
		return 10
	}
	n := m.cols[col].ndv()
	if n < 1 {
		return 1
	}
	return n
}

// condSelectivity estimates the fraction of rows a pushed-down conjunct
// keeps: 1/NDV for equality against a constant (0 when the constant falls
// outside the observed min/max), (NDV-1)/NDV for inequality, a min/max
// interpolated fraction for numeric ranges, 1/3 otherwise.
func condSelectivity(m *tableMeta, c relation.Cond) float64 {
	if c.Right >= 0 { // column vs column within one table
		nd := float64(maxInt(colNDV(m, c.Left), colNDV(m, c.Right)))
		switch c.Op {
		case relation.OpEq:
			return 1 / nd
		case relation.OpNe:
			return 1 - 1/nd
		default:
			return 1.0 / 3
		}
	}
	nd := float64(colNDV(m, c.Left))
	var acc *colAcc
	if m != nil && c.Left >= 0 && c.Left < len(m.cols) {
		acc = &m.cols[c.Left]
	}
	switch c.Op {
	case relation.OpEq:
		if acc != nil && acc.any && (c.Const.Less(acc.min) || acc.max.Less(c.Const)) {
			return 0
		}
		return 1 / nd
	case relation.OpNe:
		return (nd - 1) / nd
	default:
		return rangeSelectivity(acc, c.Op, c.Const)
	}
}

// rangeSelectivity interpolates a range predicate's selectivity between the
// column's observed min and max (numeric columns only; 1/3 otherwise).
func rangeSelectivity(acc *colAcc, op relation.CmpOp, v relation.Value) float64 {
	if acc == nil || !acc.any || !acc.min.IsNumeric() || !acc.max.IsNumeric() || !v.IsNumeric() {
		return 1.0 / 3
	}
	lo, hi := acc.min.AsFloat(), acc.max.AsFloat()
	if hi <= lo {
		return 0.5
	}
	f := (v.AsFloat() - lo) / (hi - lo)
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	switch op {
	case relation.OpLt, relation.OpLe:
		return f
	case relation.OpGt, relation.OpGe:
		return 1 - f
	}
	return 1.0 / 3
}

// joinStepSelectivity estimates the selectivity of the cross-alias conjuncts
// that joining `next` into `joined` completes: 1/max(NDV) per equi-join, 1/3
// per theta condition.
func joinStepSelectivity(scope *selScope, accs map[string]*aliasAccess, joined map[string]bool, next string) float64 {
	s := 1.0
	for _, c := range scope.cross {
		if !((c.la == next && joined[c.ra]) || (c.ra == next && joined[c.la])) {
			continue
		}
		if c.op == relation.OpEq {
			d := float64(maxInt(colNDV(accs[c.la].meta, c.lc), colNDV(accs[c.ra].meta, c.rc)))
			if d < 1 {
				d = 1
			}
			s /= d
		} else {
			s /= 3
		}
	}
	return s
}

// joinOrderCost costs one left-deep order: each step pays the new alias's
// access path, the probe stream, the build, and the estimated output.
func joinOrderCost(scope *selScope, accs map[string]*aliasAccess, order []string) (cost, outRows float64) {
	joined := map[string]bool{order[0]: true}
	cost = accs[order[0]].examineEst
	left := accs[order[0]].outEst
	for _, a := range order[1:] {
		b := accs[a]
		out := left * b.outEst * joinStepSelectivity(scope, accs, joined, a)
		cost += b.examineEst + left + b.outEst + out
		left = out
		joined[a] = true
	}
	return cost, left
}

// chooseJoinOrder picks the cheapest left-deep order: exhaustively for up to
// joinEnumLimit aliases, greedily beyond. Cost ties break toward the larger
// first (probe) side so the big relation streams and small ones build.
func (e *Engine) chooseJoinOrder(scope *selScope, accs map[string]*aliasAccess) []string {
	n := len(scope.order)
	if n <= 1 {
		return scope.order
	}
	if n <= joinEnumLimit {
		best := append([]string(nil), scope.order...)
		bestCost, _ := joinOrderCost(scope, accs, best)
		bestProbe := accs[best[0]].outEst
		permutations(scope.order, func(p []string) {
			c, _ := joinOrderCost(scope, accs, p)
			probe := accs[p[0]].outEst
			const eps = 1e-9
			if c < bestCost-eps || (math.Abs(c-bestCost) <= eps && probe > bestProbe) {
				bestCost, bestProbe = c, probe
				copy(best, p)
			}
		})
		return best
	}
	// Greedy: start from the largest filtered alias (it streams as the probe
	// side), then repeatedly add the cheapest next step.
	rest := append([]string(nil), scope.order...)
	sort.SliceStable(rest, func(i, j int) bool { return accs[rest[i]].outEst > accs[rest[j]].outEst })
	order := []string{rest[0]}
	joined := map[string]bool{rest[0]: true}
	left := accs[rest[0]].outEst
	rest = rest[1:]
	for len(rest) > 0 {
		bestI := 0
		bestStep := math.Inf(1)
		bestOut := 0.0
		for i, a := range rest {
			b := accs[a]
			out := left * b.outEst * joinStepSelectivity(scope, accs, joined, a)
			step := b.examineEst + left + b.outEst + out
			if step < bestStep {
				bestI, bestStep, bestOut = i, step, out
			}
		}
		a := rest[bestI]
		rest = append(rest[:bestI], rest[bestI+1:]...)
		order = append(order, a)
		joined[a] = true
		left = bestOut
	}
	return order
}

// permutations visits every permutation of items (the identity first).
func permutations(items []string, visit func([]string)) {
	perm := append([]string(nil), items...)
	var rec func(k int)
	rec = func(k int) {
		if k == len(perm) {
			visit(perm)
			return
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
}

// scanDesc renders a scan node's EXPLAIN line.
func scanDesc(acc *aliasAccess) string {
	var b strings.Builder
	fmt.Fprintf(&b, "scan %s", acc.table)
	if acc.alias != acc.table {
		fmt.Fprintf(&b, " AS %s", acc.alias)
	}
	if len(acc.idxCols) > 0 {
		names := make([]string, len(acc.idxCols))
		for i, c := range acc.idxCols {
			names[i] = acc.sch.Attr(c).Name
		}
		fmt.Fprintf(&b, " via index(%s)", strings.Join(names, ", "))
	}
	if len(acc.conds) > 0 {
		strs := make([]string, len(acc.conds))
		for i, c := range acc.conds {
			strs[i] = c.String(acc.sch)
		}
		fmt.Fprintf(&b, " where [%s]", strings.Join(strs, " AND "))
	}
	fmt.Fprintf(&b, " (examine~%.0f, emit~%.0f)", acc.examineEst, acc.outEst)
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
