package remotedb

import (
	"context"
	"encoding/gob"
	"net"
	"runtime"
	"sync"
	"time"

	"repro/internal/obs"
)

// This file is the server half of wire protocol v2 (frame.go): after the
// hello handshake flips a connection into framed mode, serveFramed reads
// request/cancel frames, runs each request in its own goroutine gated by a
// per-connection execution slot, and streams exec results back as
// header/batch/end frames. The write path is shared (one mutex), so responses
// of concurrent requests interleave at frame granularity — a large result
// never monopolizes the connection, and the client sees first tuples after
// one frame.
//
// Backpressure is the transport's: a frame write blocks when the peer's TCP
// window is full, which happens exactly when the client-side stream buffer is
// full and its consumer is slow. The server therefore never buffers more than
// one frame per stream beyond the socket.

// framedConn is the per-connection state of one v2 session.
type framedConn struct {
	s    *Server
	conn net.Conn
	enc  *gob.Encoder

	wmu         sync.Mutex // serializes frame writes on the shared encoder
	frameTuples int

	mu      sync.Mutex
	cancels map[uint64]context.CancelFunc
	active  int

	wg  sync.WaitGroup
	sem chan struct{} // per-connection execution slots (ConnStreams)
}

// serveFramed serves one negotiated v2 connection until the peer goes away or
// violates the protocol. On return, in-flight streams are canceled and their
// handlers drained (on server shutdown they are instead allowed to finish, so
// responses in flight are written before the connection drops).
func (s *Server) serveFramed(conn net.Conn, enc *gob.Encoder, dec *gob.Decoder, frameTuples int) {
	connStreams := s.opts.ConnStreams
	if connStreams <= 0 {
		connStreams = 1
	}
	base, cancelAll := context.WithCancel(context.Background())
	fc := &framedConn{
		s:           s,
		conn:        conn,
		enc:         enc,
		frameTuples: frameTuples,
		cancels:     make(map[uint64]context.CancelFunc),
		sem:         make(chan struct{}, connStreams),
	}
	defer func() {
		cancelAll()
		fc.wg.Wait()
	}()
	for {
		// The idle timeout only guards a connection with nothing in flight;
		// while streams are active the read loop must stay blocked on the
		// socket indefinitely so cancel frames remain deliverable.
		fc.mu.Lock()
		idle := fc.active == 0
		fc.mu.Unlock()
		if s.opts.IdleTimeout > 0 && idle {
			conn.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout))
		} else {
			conn.SetReadDeadline(time.Time{})
		}
		f, err := readFrame(dec)
		if err != nil {
			s.mu.Lock()
			draining := s.closed
			s.mu.Unlock()
			if draining {
				// Graceful shutdown unblocked the read; let in-flight streams
				// finish writing before the deferred teardown.
				fc.wg.Wait()
			}
			return
		}
		switch f.Kind {
		case frameReq:
			ctx, cancel := context.WithCancel(base)
			fc.mu.Lock()
			fc.cancels[f.ID] = cancel
			fc.active++
			fc.mu.Unlock()
			fc.wg.Add(1)
			go fc.handleStream(ctx, f.ID, f.Req)
		case frameCancel:
			fc.mu.Lock()
			if cancel := fc.cancels[f.ID]; cancel != nil {
				cancel()
			}
			fc.mu.Unlock()
		default:
			// The client sent a server-direction frame: protocol violation,
			// the connection cannot be trusted anymore.
			return
		}
	}
}

// write sends one frame on the shared encoder under the write timeout. A
// failed write desynchronizes the gob stream, so the connection is closed
// (which also unblocks the read loop).
func (fc *framedConn) write(f *wireFrame) error {
	if f.Kind == frameHeader || f.Kind == frameEnd {
		// The catalog epoch rides every header and end frame (batch frames
		// skip it — gob omits the zero value, and once per stream suffices).
		f.Epoch = fc.s.engine.Epoch()
	}
	fc.wmu.Lock()
	defer fc.wmu.Unlock()
	if fc.s.opts.WriteTimeout > 0 {
		fc.conn.SetWriteDeadline(time.Now().Add(fc.s.opts.WriteTimeout))
	}
	var t0 time.Time
	if fc.s.frameLat != nil {
		t0 = time.Now()
	}
	err := writeFrame(fc.enc, f)
	if fc.s.frameLat != nil {
		fc.s.frameLat.Observe(time.Since(t0).Microseconds())
	}
	if fc.s.opts.WriteTimeout > 0 {
		fc.conn.SetWriteDeadline(time.Time{})
	}
	if err != nil {
		fc.conn.Close()
		return err
	}
	fc.s.framesSent.Add(1)
	// Yield after every frame: a producer that never parks would otherwise
	// starve co-located consumers (loopback deployments, the bench harness)
	// until the runtime's coarse preemption tick, turning the first-frame
	// advantage of streaming into a scheduling artifact.
	runtime.Gosched()
	return nil
}

// writeEnd sends a terminal frame for stream id.
func (fc *framedConn) writeEnd(id uint64, code int, errMsg string, ops int64) {
	fc.write(&wireFrame{ID: id, Kind: frameEnd, Code: code, Err: errMsg, Ops: ops})
}

// handleStream runs one framed request end to end: per-connection execution
// slot, admission control, fault injection, deadline-bounded engine execution,
// then streamed (exec) or single-frame (catalog) response.
func (fc *framedConn) handleStream(ctx context.Context, id uint64, req *wireRequest) {
	s := fc.s
	defer fc.wg.Done()
	defer func() {
		fc.mu.Lock()
		if cancel := fc.cancels[id]; cancel != nil {
			cancel()
			delete(fc.cancels, id)
		}
		fc.active--
		fc.mu.Unlock()
	}()

	// Adopt the trace ID the request carried so every span recorded under ctx
	// — the server span here and the engine's plan-cache/optimize/execute
	// spans below — stitches into the client's distributed trace. A zero ID
	// (untraced request, v1-era client) leaves the context unchanged.
	ctx = obs.WithTraceID(ctx, req.Trace)
	sctx, sp := s.opts.Tracer.Start(ctx, "server.stream")
	sp.Set("op", req.Op)
	defer sp.End()
	ctx = sctx

	// Per-connection execution slot: by default requests of one session
	// execute serially, in arrival order. A queued request is still
	// cancelable while it waits.
	select {
	case fc.sem <- struct{}{}:
	case <-ctx.Done():
		s.streamsCanceled.Add(1)
		fc.writeEnd(id, wireCodeCanceled, context.Canceled.Error(), 0)
		return
	}
	release := func() { <-fc.sem }

	// Admission control shares the server-wide semaphore with the v1 path.
	if s.inflight != nil {
		select {
		case s.inflight <- struct{}{}:
			inner := release
			release = func() { <-s.inflight; inner() }
		default:
			release()
			s.shed.Add(1)
			fc.writeEnd(id, wireCodeOverloaded, ErrOverloaded.Error(), 0)
			return
		}
	}

	// A drop fault is a wire-level failure: the whole connection dies, as it
	// would on the v1 path.
	keep, delay := s.rollFault2()
	if !keep {
		release()
		fc.conn.Close()
		return
	}

	// A stream-kill fault severs the connection after a budget of response
	// frames — the mid-transfer death that resume tokens exist to survive.
	// Rolled once per exec request so kill probability is per-stream, not
	// per-frame.
	var killer *streamKiller
	if req.Op == "exec" {
		if kill, after := s.rollStreamFault(); kill {
			killer = &streamKiller{fc: fc, remaining: after}
		}
	}

	// Streamable SELECTs bypass materialization entirely: the engine yields
	// tuples on demand and frames ship as the scan advances, so the client's
	// first tuple costs one frame of work, not the whole result.
	if req.Op == "exec" {
		start := s.slowClock()
		if req.Resume != "" {
			// Re-issued request carrying a resume token: serve the remainder
			// of the pinned snapshot when it still exists. Any failure —
			// malformed token, statement mismatch, table replaced — falls
			// through to a fresh stream whose header says Resumed=false, and
			// the client skips its delivered prefix itself.
			if tok, err := ParseResumeToken(req.Resume); err == nil {
				if sc, ok := s.engine.ResumeSQLStream(req.SQL, tok, req.Skip); ok {
					s.streamResumes.Add(1)
					rows, frames := fc.streamScan(ctx, id, sc, delay, release, true, killer)
					s.logSlow(start, req.SQL, false, rows, frames, 1)
					return
				}
			}
		}
		if sc, ok := s.engine.ExecuteSQLPipelineCtx(ctx, req.SQL); ok {
			rows, frames := fc.streamScan(ctx, id, sc, delay, release, false, killer)
			cached, dop := false, 1
			if ps, ok := sc.(*PlanStream); ok {
				cached = ps.Cached()
				dop = ps.DOP()
			}
			s.logSlow(start, req.SQL, cached, rows, frames, dop)
			return
		}
		resp, canceled := s.runBounded(ctx, req, delay, release)
		if canceled {
			s.streamsCanceled.Add(1)
			fc.writeEnd(id, wireCodeCanceled, context.Canceled.Error(), 0)
			return
		}
		if resp.Err != "" {
			fc.writeEnd(id, resp.Code, resp.Err, resp.Ops)
			return
		}
		rows, frames := fc.streamResult(ctx, id, &resp, killer)
		s.logSlow(start, req.SQL, false, rows, frames, 1)
		return
	}

	resp, canceled := s.runBounded(ctx, req, delay, release)
	if canceled {
		s.streamsCanceled.Add(1)
		fc.writeEnd(id, wireCodeCanceled, context.Canceled.Error(), 0)
		return
	}
	// Errors and the small catalog ops fit in the terminal frame.
	fc.write(&wireFrame{
		ID:     id,
		Kind:   frameEnd,
		Code:   resp.Code,
		Err:    resp.Err,
		Ops:    resp.Ops,
		Attrs:  resp.Attrs,
		Stats:  resp.Stats,
		Tables: resp.Tables,
	})
}

// rollStreamFault decides whether one stream's connection dies mid-transfer
// and after how many response frames (ListenerFaults.StreamKillRate/After).
func (s *Server) rollStreamFault() (kill bool, after int) {
	f := s.opts.Faults
	if f == nil || f.StreamKillRate <= 0 {
		return false, 0
	}
	s.faultMu.Lock()
	roll := s.faultRng.Float64()
	s.faultMu.Unlock()
	if roll >= f.StreamKillRate {
		return false, 0
	}
	after = f.StreamKillAfter
	if after <= 0 {
		after = 1
	}
	return true, after
}

// streamKiller is an armed stream-kill fault: after remaining more response
// frames have been written for its stream, it severs the whole connection —
// every multiplexed stream on it dies, exactly like a real connection loss.
type streamKiller struct {
	fc        *framedConn
	remaining int
}

// afterWrite burns one frame of the kill budget; when it is spent, the
// connection is severed and true is returned so the caller stops producing.
// Nil-safe: a nil killer never kills.
func (k *streamKiller) afterWrite() (killed bool) {
	if k == nil {
		return false
	}
	k.remaining--
	if k.remaining > 0 {
		return false
	}
	k.fc.s.streamKills.Add(1)
	// Sever the write side first (flush + FIN) and leave the fd to the
	// handler's normal teardown: a bare Close would send an RST whenever
	// another multiplexed stream's request sat unread in the receive buffer,
	// and the RST retroactively destroys the frames this fault just promised
	// the client it delivered. The client still observes exactly a mid-stream
	// connection death; its next read is EOF and its next write fails.
	type closeWriter interface{ CloseWrite() error }
	if cw, ok := k.fc.conn.(closeWriter); ok {
		cw.CloseWrite()
	} else {
		k.fc.conn.Close()
	}
	return true
}

// runBounded executes one request under the request deadline and the stream
// context, honoring an injected fault delay as slow server work. Work still
// running at the deadline or at cancellation is abandoned — it completes in
// the background and releases its execution/admission slots then, so
// abandoned work keeps counting against the limits while it burns CPU (same
// semantics as the v1 dispatch path).
func (s *Server) runBounded(ctx context.Context, req *wireRequest, delay time.Duration, release func()) (wireResponse, bool) {
	ch := make(chan wireResponse, 1)
	go func() {
		defer release()
		if delay > 0 {
			time.Sleep(delay)
		}
		ch <- s.handle(ctx, req)
	}()
	var timerC <-chan time.Time
	if s.opts.RequestTimeout > 0 {
		timer := time.NewTimer(s.opts.RequestTimeout)
		defer timer.Stop()
		timerC = timer.C
	}
	select {
	case resp := <-ch:
		return resp, false
	case <-timerC:
		s.timeouts.Add(1)
		return wireResponse{Code: wireCodeDeadline, Err: ErrDeadlineExceeded.Error()}, false
	case <-ctx.Done():
		return wireResponse{}, true
	}
}

// streamScan pipelines a streamed SELECT — a resumable single-table
// ScanStream or an optimized PlanStream — shipping tuples in frames as they
// are produced. The request deadline bounds production, checked at frame
// granularity; an injected delay fault models slow server work before the
// first tuple, interruptible by the deadline and by cancellation as on the
// materialized path. It returns the tuples and frames shipped, for the
// slow-query log.
func (fc *framedConn) streamScan(ctx context.Context, id uint64, sc EngineStream, delay time.Duration, release func(), resumed bool, killer *streamKiller) (rows, frames int64) {
	s := fc.s
	defer release()
	// Parallel plan streams own worker goroutines; closing on every exit path
	// (deadline, cancel, write failure, kill fault, normal end) joins them, so
	// an abandoned stream leaks nothing. Serial streams have a no-op Close.
	defer func() {
		if c, ok := sc.(interface{ Close() error }); ok {
			c.Close()
		}
	}()
	var timerC <-chan time.Time
	if s.opts.RequestTimeout > 0 {
		timer := time.NewTimer(s.opts.RequestTimeout)
		defer timer.Stop()
		timerC = timer.C
	}
	if delay > 0 {
		dt := time.NewTimer(delay)
		select {
		case <-dt.C:
		case <-timerC:
			dt.Stop()
			s.timeouts.Add(1)
			fc.writeEnd(id, wireCodeDeadline, ErrDeadlineExceeded.Error(), 0)
			return
		case <-ctx.Done():
			dt.Stop()
			s.streamsCanceled.Add(1)
			fc.writeEnd(id, wireCodeCanceled, context.Canceled.Error(), 0)
			return
		}
	}
	var attrs []wireAttr
	for _, a := range sc.Schema().Attrs() {
		attrs = append(attrs, wireAttr{Name: a.Name, Kind: uint8(a.Kind)})
	}
	// The header of a resumable scan carries the resume token pinning its
	// snapshot; a client that loses the connection mid-transfer re-issues the
	// statement with it. Resumed acknowledges a honored token (server-side
	// skip); on a fresh stream it tells a resuming client to skip client-side.
	// Plan streams carry no token: their emission order is only deterministic
	// per snapshot binding, so a resuming client restarts and skips locally.
	resume := ""
	if rs, ok := sc.(*ScanStream); ok {
		resume = rs.ResumeToken().Encode()
	}
	if fc.write(&wireFrame{
		ID: id, Kind: frameHeader, Name: sc.Name(), Attrs: attrs,
		Resume: resume, Resumed: resumed,
	}) != nil {
		return
	}
	frames++
	if killer.afterWrite() {
		return
	}
	// The batch buffer is reused across frames: writeFrame serializes
	// synchronously, so the tuples are on the wire before the next fill.
	batch := make([][]wireValue, 0, fc.frameTuples)
	for done := false; !done; {
		batch = batch[:0]
		for len(batch) < fc.frameTuples {
			t, ok := sc.Next()
			if !ok {
				done = true
				break
			}
			batch = append(batch, toWireTuple(t))
		}
		select {
		case <-ctx.Done():
			s.streamsCanceled.Add(1)
			fc.writeEnd(id, wireCodeCanceled, context.Canceled.Error(), 0)
			return
		case <-timerC:
			s.timeouts.Add(1)
			fc.writeEnd(id, wireCodeDeadline, ErrDeadlineExceeded.Error(), 0)
			return
		default:
		}
		if len(batch) > 0 {
			if fc.write(&wireFrame{ID: id, Kind: frameBatch, Tuples: batch}) != nil {
				return
			}
			rows += int64(len(batch))
			frames++
			if killer.afterWrite() {
				return
			}
		}
	}
	// A stream that stopped early (a parallel worker hit its cancellation
	// checkpoint) must not read as a complete result: report it as canceled,
	// never as a silently truncated ok-end.
	if es, ok := sc.(interface{ Err() error }); ok {
		if err := es.Err(); err != nil {
			s.streamsCanceled.Add(1)
			fc.writeEnd(id, wireCodeCanceled, err.Error(), sc.Ops())
			frames++
			return rows, frames
		}
	}
	fc.writeEnd(id, wireCodeNone, "", sc.Ops())
	frames++
	return rows, frames
}

// streamResult ships an exec result as header + tuple batches + end,
// checking for cancellation between batches so a canceled stream stops
// producing after at most one more frame. It returns the tuples and frames
// shipped, for the slow-query log.
func (fc *framedConn) streamResult(ctx context.Context, id uint64, resp *wireResponse, killer *streamKiller) (sent, frames int64) {
	var (
		name  string
		attrs []wireAttr
		rows  [][]wireValue
	)
	if resp.Rel != nil {
		name, attrs, rows = resp.Rel.Name, resp.Rel.Attrs, resp.Rel.Tuples
	}
	// Materialized results carry no resume token: their tuple order is not
	// guaranteed deterministic across executions (hash aggregation), so a
	// skip-based resume could silently corrupt the result. A client resuming
	// such a stream restarts it and skips client-side.
	if fc.write(&wireFrame{ID: id, Kind: frameHeader, Name: name, Attrs: attrs}) != nil {
		return
	}
	frames++
	if killer.afterWrite() {
		return
	}
	for start := 0; start < len(rows); start += fc.frameTuples {
		if ctx.Err() != nil {
			fc.s.streamsCanceled.Add(1)
			fc.writeEnd(id, wireCodeCanceled, context.Canceled.Error(), 0)
			return
		}
		end := min(start+fc.frameTuples, len(rows))
		if fc.write(&wireFrame{ID: id, Kind: frameBatch, Tuples: rows[start:end]}) != nil {
			return
		}
		sent += int64(end - start)
		frames++
		if killer.afterWrite() {
			return
		}
	}
	fc.writeEnd(id, wireCodeNone, "", resp.Ops)
	frames++
	return sent, frames
}
