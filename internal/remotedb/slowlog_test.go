package remotedb

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func fmtHash(h uint64) string { return fmt.Sprintf("%016x", h) }

// syncBuffer serializes handler writes against the test's reads (the slow
// log emits from server goroutines).
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestSlowQueryLog: with a 1ns threshold every statement is "slow"; the
// structured record must carry the statement hash, row/frame counts, and the
// wall duration. With the log disabled (the default) nothing is emitted.
func TestSlowQueryLog(t *testing.T) {
	e := newTestEngine(t)
	var buf syncBuffer
	srv := NewServerWithOptions(e, ServerOptions{
		SlowQuery: time.Nanosecond,
		SlowLog:   slog.New(slog.NewJSONHandler(&buf, nil)),
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	p := dialTestPool(t, addr, PoolOptions{})

	const sql = "SELECT * FROM emp"
	st, err := p.ExecStream(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, ok := st.Next(); ok; _, ok = st.Next() {
		n++
	}
	if st.Err() != nil || n != 4 {
		t.Fatalf("stream: n=%d err=%v", n, st.Err())
	}

	deadline := time.Now().Add(2 * time.Second)
	var line string
	for {
		if out := buf.String(); strings.Contains(out, "slow query") {
			line = strings.SplitN(out, "\n", 2)[0]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no slow-query record emitted; log: %q", buf.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("record is not JSON: %v\n%s", err, line)
	}
	wantHash := StatementHash(sql)
	if got, _ := rec["stmt_hash"].(string); got == "" || got != fmtHash(wantHash) {
		t.Fatalf("stmt_hash = %v, want %s", rec["stmt_hash"], fmtHash(wantHash))
	}
	if rows, _ := rec["rows"].(float64); int(rows) != 4 {
		t.Fatalf("rows = %v, want 4", rec["rows"])
	}
	if frames, _ := rec["frames"].(float64); frames < 2 {
		t.Fatalf("frames = %v, want >= 2 (header + end)", rec["frames"])
	}
	if _, ok := rec["dur_ms"].(float64); !ok {
		t.Fatalf("dur_ms missing: %v", rec)
	}
}
