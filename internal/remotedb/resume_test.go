package remotedb

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/relation"
)

// loadBigTable creates table big(k INT, v TEXT) with n rows (k = 0..n-1,
// v = "v<k>") on e. Insertion order is the scan order, so expected streamed
// deliveries can be computed directly from k.
func loadBigTable(t *testing.T, e *Engine, n int) {
	t.Helper()
	if _, _, err := e.ExecuteSQL("CREATE TABLE big (k INT, v TEXT)"); err != nil {
		t.Fatal(err)
	}
	const batch = 250
	for lo := 0; lo < n; lo += batch {
		hi := min(lo+batch, n)
		var sb strings.Builder
		sb.WriteString("INSERT INTO big VALUES ")
		for i := lo; i < hi; i++ {
			if i > lo {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "(%d,'v%d')", i, i)
		}
		if _, _, err := e.ExecuteSQL(sb.String()); err != nil {
			t.Fatal(err)
		}
	}
}

// drainScan collects a ScanStream's delivery as strings (first column).
func drainScan(sc *ScanStream) []string {
	var out []string
	for tup, ok := sc.Next(); ok; tup, ok = sc.Next() {
		out = append(out, tup[0].String())
	}
	return out
}

// drainTuples collects a TupleStream's delivery as strings (first column),
// returning the terminal error.
func drainTuples(st TupleStream) ([]string, error) {
	var out []string
	for tup, ok := st.Next(); ok; tup, ok = st.Next() {
		out = append(out, tup[0].String())
	}
	return out, st.Err()
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestResumeTokenRoundTrip(t *testing.T) {
	for _, tok := range []ResumeToken{
		{StmtHash: 0, Table: "t", Version: 0, SnapLen: 0},
		{StmtHash: StatementHash("SELECT * FROM big"), Table: "big", Version: 7, SnapLen: 123456},
		{StmtHash: ^uint64(0), Table: "weird:name:with:colons", Version: ^uint64(0), SnapLen: 1<<62 - 1},
	} {
		got, err := ParseResumeToken(tok.Encode())
		if err != nil {
			t.Fatalf("round trip of %+v: %v", tok, err)
		}
		if got != tok {
			t.Fatalf("round trip of %+v returned %+v", tok, got)
		}
	}
}

func TestResumeTokenRejectsMalformed(t *testing.T) {
	valid := ResumeToken{StmtHash: StatementHash("SELECT v FROM big"), Table: "big", Version: 3, SnapLen: 500}.Encode()
	cases := []string{
		"",
		"brt1",
		"brt2:" + strings.TrimPrefix(valid, "brt1:"), // unknown version tag
		"brt1:zz:big:3:1f4:0",                        // bad hex
		strings.Replace(valid, "big", "bag", 1),      // table mutated: checksum mismatch
		valid + "0",                                  // checksum extended
		"brt1::" + strings.Repeat("x", 5000),         // oversized
	}
	// Every strict prefix of a valid encoding must be rejected (truncation in
	// transit), never panic, and never yield a token.
	for i := 0; i < len(valid); i++ {
		cases = append(cases, valid[:i])
	}
	for _, c := range cases {
		tok, err := ParseResumeToken(c)
		if err == nil {
			t.Fatalf("ParseResumeToken(%q) accepted, token %+v", c, tok)
		}
		if !errors.Is(err, ErrResumeToken) {
			t.Fatalf("ParseResumeToken(%q) error %v does not match ErrResumeToken", c, err)
		}
	}
}

func FuzzParseResumeToken(f *testing.F) {
	valid := ResumeToken{StmtHash: StatementHash("SELECT v FROM big WHERE k < 100"), Table: "big", Version: 2, SnapLen: 1000}
	enc := valid.Encode()
	f.Add(enc)
	f.Add(enc[:len(enc)/2])
	f.Add(strings.Replace(enc, "b", "c", 1))
	f.Add("brt1:0:t:0:0:0")
	f.Add(ResumeToken{Table: "a:b:c", SnapLen: 1}.Encode())
	f.Add("brt1:::::")
	f.Add(strings.Repeat(":", 64))
	f.Fuzz(func(t *testing.T, s string) {
		tok, err := ParseResumeToken(s) // must never panic
		if err != nil {
			return
		}
		// Any accepted token must survive a canonical re-encode round trip.
		again, err := ParseResumeToken(tok.Encode())
		if err != nil || again != tok {
			t.Fatalf("accepted token %+v does not round trip: %+v, %v", tok, again, err)
		}
		if tok.SnapLen < 0 || tok.Table == "" {
			t.Fatalf("accepted token violates invariants: %+v", tok)
		}
	})
}

// TestScanResumeEqualsUninterrupted is the core determinism property at the
// engine layer: for random statements and random interruption points, the
// prefix delivered before the kill plus the resumed remainder equals the
// uninterrupted delivery — no duplicates, no gaps, order preserved.
func TestScanResumeEqualsUninterrupted(t *testing.T) {
	e := NewEngine()
	loadBigTable(t, e, 700)
	rng := rand.New(rand.NewSource(42))
	stmts := []string{
		"SELECT v FROM big",
		"SELECT v FROM big WHERE k < 500",
		"SELECT v, k FROM big WHERE k >= 100",
		"SELECT * FROM big WHERE k < 650",
	}
	for trial := 0; trial < 60; trial++ {
		src := stmts[rng.Intn(len(stmts))]
		full, ok := e.ExecuteSQLStream(src)
		if !ok {
			t.Fatalf("%q not streamable", src)
		}
		want := drainScan(full)
		tok := full.ResumeToken()

		kill := rng.Intn(len(want) + 1)
		sc, ok := e.ResumeSQLStream(src, tok, int64(kill))
		if !ok {
			t.Fatalf("trial %d: resume of %q at %d refused", trial, src, kill)
		}
		got := drainScan(sc)
		if !equalStrings(got, want[kill:]) {
			t.Fatalf("trial %d: resume of %q at %d: got %d tuples, want %d (tail mismatch)",
				trial, src, kill, len(got), len(want)-kill)
		}
	}
}

// TestScanResumeInvalidatedByAppend: a durable Insert is a mutation like any
// other — a resume token minted against the pre-insert extension is refused,
// not silently resumed against a table whose state has moved on. Correctness
// is preserved end to end because a refused token falls back to a fresh
// stream plus client-side skip, and the append-only representation makes the
// re-read prefix byte-identical (asserted here).
func TestScanResumeInvalidatedByAppend(t *testing.T) {
	e := NewEngine()
	loadBigTable(t, e, 100)
	const src = "SELECT v FROM big"
	full, _ := e.ExecuteSQLStream(src)
	want := drainScan(full)
	tok := full.ResumeToken()

	if _, _, err := e.ExecuteSQL("INSERT INTO big VALUES (100,'late'),(101,'later')"); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.ResumeSQLStream(src, tok, 40); ok {
		t.Fatal("token minted before the insert was accepted after it")
	}

	// The client-side-skip fallback: a fresh stream's first len(want) rows
	// are byte-identical to the pre-insert delivery (append-only prefix), so
	// skipping the delivered count loses and duplicates nothing.
	fresh, ok := e.ExecuteSQLStream(src)
	if !ok {
		t.Fatalf("%q not streamable after append", src)
	}
	got := drainScan(fresh)
	if len(got) != len(want)+2 {
		t.Fatalf("fresh stream has %d rows, want %d", len(got), len(want)+2)
	}
	if !equalStrings(got[:len(want)], want) {
		t.Fatal("append changed the already-delivered prefix; client-side skip would corrupt")
	}
	if fresh.ResumeToken().Version == tok.Version {
		t.Fatalf("append did not bump the version: %+v vs %+v", fresh.ResumeToken(), tok)
	}
}

// TestInsertDuringScanStreamByteStable: an Insert landing while a ScanStream
// is mid-delivery must not disturb the stream — the snapshot pinned at open
// time delivers exactly the pre-insert rows, in order, and never sees the new
// ones. (The append-only relation representation is what makes the pinned
// prefix immutable; this is the test that holds that property in place.)
func TestInsertDuringScanStreamByteStable(t *testing.T) {
	e := NewEngine()
	loadBigTable(t, e, 120)
	const src = "SELECT v FROM big"

	ref, _ := e.ExecuteSQLStream(src)
	want := drainScan(ref)

	sc, ok := e.ExecuteSQLStream(src)
	if !ok {
		t.Fatalf("%q not streamable", src)
	}
	var got []string
	for i := 0; i < 50; i++ {
		tu, more := sc.Next()
		if !more {
			t.Fatalf("stream ended early at %d", i)
		}
		got = append(got, tu[0].String())
	}

	// Mutate mid-stream: both a plain append and a second batch.
	if _, _, err := e.ExecuteSQL("INSERT INTO big VALUES (120,'mid')"); err != nil {
		t.Fatal(err)
	}
	if err := e.Insert("big", []relation.Tuple{{relation.Int(121), relation.Str("mid2")}}); err != nil {
		t.Fatal(err)
	}

	for {
		tu, more := sc.Next()
		if !more {
			break
		}
		got = append(got, tu[0].String())
	}
	if !equalStrings(got, want) {
		t.Fatalf("mid-stream insert disturbed delivery: got %d tuples, want %d", len(got), len(want))
	}
	// And the stream's own token — minted against the pre-insert snapshot —
	// is refused afterwards rather than silently reused.
	if _, ok := e.ResumeSQLStream(src, sc.ResumeToken(), 10); ok {
		t.Fatal("pre-insert token accepted after the inserts")
	}
}

func TestResumeSQLStreamRefusals(t *testing.T) {
	e := NewEngine()
	loadBigTable(t, e, 50)
	const src = "SELECT v FROM big WHERE k < 40"
	sc, _ := e.ExecuteSQLStream(src)
	tok := sc.ResumeToken()

	if _, ok := e.ResumeSQLStream("SELECT v FROM big", tok, 0); ok {
		t.Fatal("token accepted for a different statement")
	}
	if _, ok := e.ResumeSQLStream(src, tok, -1); ok {
		t.Fatal("negative skip accepted")
	}
	forged := tok
	forged.SnapLen = 10_000 // beyond the extension: impossible under append-only
	if _, ok := e.ResumeSQLStream(src, forged, 0); ok {
		t.Fatal("forged SnapLen accepted")
	}

	// Wholesale replacement bumps the version: the pinned snapshot is gone.
	repl := relation.New("big", relation.NewSchema(
		relation.Attr{Name: "k", Kind: relation.KindInt},
		relation.Attr{Name: "v", Kind: relation.KindString}))
	repl.MustAppend(relation.Tuple{relation.Int(0), relation.Str("fresh")})
	e.LoadTable(repl)
	if _, ok := e.ResumeSQLStream(src, tok, 0); ok {
		t.Fatal("token accepted after the table was replaced")
	}
	// A fresh stream over the replaced table works and carries the new version.
	sc2, ok := e.ExecuteSQLStream(src)
	if !ok || sc2.ResumeToken().Version == tok.Version {
		t.Fatalf("replacement did not bump the version: %+v vs %+v", sc2.ResumeToken(), tok)
	}
}

// TestPoolStreamResumeServerSide drives the wire path by hand: establish a
// stream, consume part of it, sever the connection, then re-issue with the
// header's token — the server must skip the delivered prefix (Resumed=true)
// and the concatenation must equal the uninterrupted delivery.
func TestPoolStreamResumeServerSide(t *testing.T) {
	e := NewEngine()
	loadBigTable(t, e, 120)
	srv := NewServerWithOptions(e, ServerOptions{FrameTuples: 8})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	p := dialTestPool(t, addr, PoolOptions{FrameTuples: 8, Redial: true})

	const src = "SELECT v FROM big WHERE k < 100"
	baseline, err := p.ExecStream(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	want, err := drainTuples(baseline)
	if err != nil || len(want) != 100 {
		t.Fatalf("baseline: %d tuples, err %v", len(want), err)
	}

	st, err := p.ExecStream(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	token, _ := st.(ResumeReporter).ResumeState()
	if token == "" {
		t.Fatal("scan stream header carried no resume token")
	}
	var head []string
	for i := 0; i < 37; i++ {
		tup, ok := st.Next()
		if !ok {
			t.Fatalf("tuple %d missing: %v", i, st.Err())
		}
		head = append(head, tup[0].String())
	}
	p.breakConn()
	st.Close()

	// The raw pool does not retry (that is ResilientClient's job) and the
	// break races with teardown noticing it, so re-issue by hand until a
	// redialed connection serves the resume.
	var re TupleStream
	for attempt := 0; ; attempt++ {
		re, err = p.ExecStreamResume(context.Background(), src, token, int64(len(head)))
		if err == nil {
			break
		}
		if attempt > 50 || !IsTransient(err) {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if tok2, resumed := re.(ResumeReporter).ResumeState(); !resumed || tok2 == "" {
		t.Fatalf("server did not honor the token: resumed=%v token=%q", resumed, tok2)
	}
	tail, err := drainTuples(re)
	if err != nil {
		t.Fatal(err)
	}
	if got := append(head, tail...); !equalStrings(got, want) {
		t.Fatalf("resumed delivery != uninterrupted: %d+%d tuples vs %d", len(head), len(tail), len(want))
	}
	// >= 1, not == 1: a retried re-issue can reach the server even when the
	// client-side call that carried it failed.
	if srv.ServerStats().StreamResumes < 1 {
		t.Fatalf("server StreamResumes = %d, want >= 1", srv.ServerStats().StreamResumes)
	}
}

// TestPoolStreamResumeFallbackFreshStream: when the pinned snapshot is gone
// (table replaced between kill and resume), the server serves a FRESH stream
// and the header says Resumed=false, telling the client to skip client-side.
func TestPoolStreamResumeFallbackFreshStream(t *testing.T) {
	e := NewEngine()
	loadBigTable(t, e, 60)
	srv := NewServerWithOptions(e, ServerOptions{FrameTuples: 8})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	p := dialTestPool(t, addr, PoolOptions{FrameTuples: 8, Redial: true})

	const src = "SELECT v FROM big"
	st, err := p.ExecStream(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	token, _ := st.(ResumeReporter).ResumeState()
	if _, ok := st.Next(); !ok {
		t.Fatal(st.Err())
	}
	st.Close()

	// Replace the table: version bump, snapshot gone.
	repl := relation.New("big", relation.NewSchema(
		relation.Attr{Name: "k", Kind: relation.KindInt},
		relation.Attr{Name: "v", Kind: relation.KindString}))
	for i := 0; i < 25; i++ {
		repl.MustAppend(relation.Tuple{relation.Int(int64(i)), relation.Str(fmt.Sprintf("new%d", i))})
	}
	e.LoadTable(repl)

	re, err := p.ExecStreamResume(context.Background(), src, token, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, resumed := re.(ResumeReporter).ResumeState(); resumed {
		t.Fatal("server claimed to honor a token whose snapshot is gone")
	}
	rows, err := drainTuples(re)
	if err != nil || len(rows) != 25 || rows[0] != `"new0"` {
		t.Fatalf("fallback fresh stream wrong: %d rows, err %v", len(rows), err)
	}
	if srv.ServerStats().StreamResumes != 0 {
		t.Fatal("fallback must not count as a server-side resume")
	}
}

// ---- ResilientStream unit property: exactly-once under scripted failures ----

// scriptedStream is a TupleStream over a fixed row set that dies with a
// transient transport error after dieAt deliveries (-1: never).
type scriptedStream struct {
	rows    []relation.Tuple
	schema  *relation.Schema
	pos     int
	dieAt   int
	token   string
	resumed bool
	err     error
	closed  bool
}

func (s *scriptedStream) Next() (relation.Tuple, bool) {
	if s.err != nil || s.closed {
		return nil, false
	}
	if s.dieAt >= 0 && s.pos >= s.dieAt {
		s.err = &TransportError{Op: "exec", Err: errors.New("scripted mid-stream death")}
		return nil, false
	}
	if s.pos >= len(s.rows) {
		return nil, false
	}
	t := s.rows[s.pos]
	s.pos++
	return t, true
}

func (s *scriptedStream) Schema() *relation.Schema        { return s.schema }
func (s *scriptedStream) Name() string                    { return "result" }
func (s *scriptedStream) Err() error                      { return s.err }
func (s *scriptedStream) Ops() int64                      { return int64(s.pos) }
func (s *scriptedStream) SimMS() float64                  { return 0.25 }
func (s *scriptedStream) Close() error                    { s.closed = true; return nil }
func (s *scriptedStream) ResumeState() (string, bool)     { return s.token, s.resumed }

// scriptedClient serves scripted streams over a fixed row set, injecting a
// bounded number of mid-stream deaths and honoring resume tokens with
// probability honorRate (otherwise it serves a full fresh stream with
// Resumed=false, forcing the wrapper's client-side skip path).
type scriptedClient struct {
	rows      []relation.Tuple
	schema    *relation.Schema
	rng       *rand.Rand
	deaths    int
	honorRate float64

	resumeCalls int
	honored     int
	fresh       int
}

func (c *scriptedClient) newStream(rows []relation.Tuple, resumed bool) *scriptedStream {
	die := -1
	if c.deaths > 0 {
		c.deaths--
		die = c.rng.Intn(len(rows) + 1)
	}
	return &scriptedStream{rows: rows, schema: c.schema, dieAt: die, token: "tok", resumed: resumed}
}

func (c *scriptedClient) ExecStream(ctx context.Context, sql string) (TupleStream, error) {
	return c.newStream(c.rows, false), nil
}

func (c *scriptedClient) ExecStreamResume(ctx context.Context, sql, token string, skip int64) (TupleStream, error) {
	c.resumeCalls++
	if c.rng.Float64() < c.honorRate {
		c.honored++
		return c.newStream(c.rows[skip:], true), nil
	}
	c.fresh++
	return c.newStream(c.rows, false), nil
}

func (c *scriptedClient) Exec(sql string) (*Result, error) { return nil, errors.New("unused") }
func (c *scriptedClient) RelationSchema(name string, arity int) (*relation.Schema, error) {
	return c.schema, nil
}
func (c *scriptedClient) TableStats(name string) (TableStats, error) { return TableStats{}, nil }
func (c *scriptedClient) Tables() ([]string, error)                  { return nil, nil }
func (c *scriptedClient) Stats() Stats                               { return Stats{} }
func (c *scriptedClient) Close() error                               { return nil }

// TestResilientStreamExactlyOnceProperty: for random row counts, random kill
// points, and a random mix of server-side skip (token honored) and full
// restart (client-side skip), the wrapper's delivery always equals the
// uninterrupted sequence exactly once, in order.
func TestResilientStreamExactlyOnceProperty(t *testing.T) {
	schema := relation.NewSchema(relation.Attr{Name: "v", Kind: relation.KindString})
	rng := rand.New(rand.NewSource(7))
	sawHonored, sawFresh := false, false
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(41)
		rows := make([]relation.Tuple, n)
		want := make([]string, n)
		for i := range rows {
			rows[i] = relation.Tuple{relation.Str(fmt.Sprintf("v%d", i))}
			want[i] = rows[i][0].String()
		}
		sc := &scriptedClient{
			rows:      rows,
			schema:    schema,
			rng:       rand.New(rand.NewSource(int64(trial) * 31)),
			deaths:    rng.Intn(7),
			honorRate: rng.Float64(),
		}
		rc := NewResilientClient(sc, Resilience{
			MaxRetries: 100, // deaths are bounded; never give up first
			Sleep:      func(time.Duration) {},
		})
		st, err := rc.ExecStream(context.Background(), "SELECT v FROM big")
		if err != nil {
			t.Fatalf("trial %d: establish: %v", trial, err)
		}
		got, err := drainTuples(st)
		if err != nil {
			t.Fatalf("trial %d: terminal err %v (deaths=%d honors=%d fresh=%d)",
				trial, err, sc.resumeCalls, sc.honored, sc.fresh)
		}
		if !equalStrings(got, want) {
			t.Fatalf("trial %d: delivery corrupted: got %d tuples want %d (resumes=%d honored=%d fresh=%d)",
				trial, len(got), len(want), sc.resumeCalls, sc.honored, sc.fresh)
		}
		sawHonored = sawHonored || sc.honored > 0
		sawFresh = sawFresh || sc.fresh > 0
	}
	if !sawHonored || !sawFresh {
		t.Fatalf("property too weak: honored-path=%v fresh-path=%v", sawHonored, sawFresh)
	}
}

// ---- End-to-end kill storms over the wire ----

// TestResilientStreamSurvivesKillStorm: EVERY stream is killed after two
// response frames (header + one batch), so completing a 150-row result takes
// dozens of resumes, each landing on another pooled connection. The consumer
// must still see the exact uninterrupted delivery and a nil terminal error.
func TestResilientStreamSurvivesKillStorm(t *testing.T) {
	e := NewEngine()
	loadBigTable(t, e, 150)

	before := runtime.NumGoroutine()

	// Baseline from a fault-free server.
	srv0 := NewServerWithOptions(e, ServerOptions{FrameTuples: 4})
	addr0, err := srv0.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p0 := dialTestPool(t, addr0, PoolOptions{FrameTuples: 4})
	const src = "SELECT v FROM big WHERE k < 140"
	st0, err := p0.ExecStream(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	want, err := drainTuples(st0)
	if err != nil || len(want) != 140 {
		t.Fatalf("baseline: %d tuples, %v", len(want), err)
	}
	p0.Close()
	srv0.Close()

	srv := NewServerWithOptions(e, ServerOptions{
		FrameTuples: 4,
		Faults:      &ListenerFaults{Seed: 11, StreamKillRate: 1.0, StreamKillAfter: 2},
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	p := dialTestPool(t, addr, PoolOptions{Size: 2, FrameTuples: 4, Redial: true, HealthSeed: 3})
	// MaxRetries is generous: a killed connection can discard the response
	// frames the client had not yet drained, so individual lives may deliver
	// nothing — the storm only needs the bound to exceed any plausible run of
	// zero-progress lives, not to be tight.
	rc := NewResilientClient(p, Resilience{
		JitterSeed: 1,
		MaxRetries: 50,
		Sleep:      func(time.Duration) {},
	})

	st, err := rc.ExecStream(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := drainTuples(st)
	if err != nil {
		t.Fatalf("storm stream terminal err: %v (resumes=%d)", err, rc.ResilienceStats().StreamResumes)
	}
	if !equalStrings(got, want) {
		t.Fatalf("storm delivery != baseline: %d vs %d tuples", len(got), len(want))
	}
	rs := rc.ResilienceStats()
	if rs.StreamResumes < 10 {
		t.Fatalf("StreamResumes = %d; a kill-every-stream storm should force many", rs.StreamResumes)
	}
	ss := srv.ServerStats()
	if ss.StreamKills == 0 || ss.StreamResumes == 0 {
		t.Fatalf("server counters not exercised: %+v", ss)
	}

	// Goroutine hygiene across dozens of kills, redials, and resumes.
	rc.Close()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before+2 {
		buf := make([]byte, 1<<16)
		n := runtime.Stack(buf, true)
		t.Fatalf("goroutine leak after kill storm: before=%d now=%d\n%s", before, now, buf[:n])
	}
}

// TestResilientStreamDisableResume is E15's control arm in miniature: the same
// kill storm with resume off must surface the mid-stream failure.
func TestResilientStreamDisableResume(t *testing.T) {
	e := NewEngine()
	loadBigTable(t, e, 150)
	srv := NewServerWithOptions(e, ServerOptions{
		FrameTuples: 4,
		Faults:      &ListenerFaults{Seed: 11, StreamKillRate: 1.0, StreamKillAfter: 2},
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	p := dialTestPool(t, addr, PoolOptions{Size: 2, FrameTuples: 4, Redial: true})
	rc := NewResilientClient(p, Resilience{
		MaxRetries:          4,
		Sleep:               func(time.Duration) {},
		DisableStreamResume: true,
	})
	st, err := rc.ExecStream(context.Background(), "SELECT v FROM big")
	if err != nil {
		return // establishment itself may die under the storm: also a surfaced failure
	}
	rows, err := drainTuples(st)
	if err == nil {
		t.Fatalf("resume disabled, yet a kill-every-stream storm delivered %d tuples cleanly", len(rows))
	}
	if !IsTransient(err) && !IsUnavailable(err) {
		t.Fatalf("surfaced error is not transport-classed: %v", err)
	}
	if rc.ResilienceStats().StreamResumes != 0 {
		t.Fatal("resume disabled but StreamResumes counted")
	}
}

// TestResilientStreamNoProgressBound: killing every stream right after its
// header means no resume ever delivers a tuple; the wrapper must give up with
// a typed unavailability error instead of resuming forever.
func TestResilientStreamNoProgressBound(t *testing.T) {
	e := NewEngine()
	loadBigTable(t, e, 50)
	srv := NewServerWithOptions(e, ServerOptions{
		FrameTuples: 4,
		Faults:      &ListenerFaults{Seed: 5, StreamKillRate: 1.0, StreamKillAfter: 1},
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	p := dialTestPool(t, addr, PoolOptions{Size: 2, FrameTuples: 4, Redial: true})
	rc := NewResilientClient(p, Resilience{
		MaxRetries: 2,
		Sleep:      func(time.Duration) {},
	})
	st, err := rc.ExecStream(context.Background(), "SELECT v FROM big")
	if err != nil {
		// The header-then-kill race can also fail establishment; both give-up
		// paths must end in the typed unavailability error.
		if !IsUnavailable(err) && !IsTransient(err) {
			t.Fatalf("establishment gave up with an untyped error: %v", err)
		}
		return
	}
	rows, err := drainTuples(st)
	if err == nil {
		t.Fatalf("kill-after-header storm completed with %d tuples; should be impossible", len(rows))
	}
	if !IsUnavailable(err) {
		t.Fatalf("no-progress give-up error = %v, want unavailability", err)
	}
}
