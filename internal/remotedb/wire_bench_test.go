package remotedb

import (
	"encoding/gob"
	"fmt"
	"io"
	"testing"

	"repro/internal/relation"
)

// benchFrame builds a representative response frame: one batch of n tuples of
// (int, int, string) — the shape the framed transport ships on every scan.
func benchFrame(n int) *wireFrame {
	tuples := make([][]wireValue, n)
	for i := range tuples {
		tuples[i] = []wireValue{
			{Kind: 1, I: int64(i)},
			{Kind: 1, I: int64(i % 97)},
			{Kind: 3, S: fmt.Sprintf("tag-%03d", i%251)},
		}
	}
	return &wireFrame{ID: 7, Kind: frameBatch, Tuples: tuples}
}

// BenchmarkGobEncoderReuse measures why the transport keeps one gob encoder
// per connection: gob sends a type descriptor the first time a type crosses
// an encoder, so a fresh encoder per message re-pays descriptor encoding and
// transmission on every frame.
func BenchmarkGobEncoderReuse(b *testing.B) {
	f := benchFrame(512)
	b.Run("fresh-encoder-per-frame", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := gob.NewEncoder(io.Discard).Encode(f); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reused-encoder", func(b *testing.B) {
		b.ReportAllocs()
		enc := gob.NewEncoder(io.Discard)
		if err := enc.Encode(f); err != nil { // descriptors paid once, up front
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := enc.Encode(f); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRelationBulkAppend measures the frame-decode materialization path:
// AppendAll validates arities then grows the tuple slice once per batch,
// where per-tuple Append pays amortized regrowth and a schema check per call.
func BenchmarkRelationBulkAppend(b *testing.B) {
	schema := relation.NewSchema(
		relation.Attr{Name: "id", Kind: relation.KindInt},
		relation.Attr{Name: "grp", Kind: relation.KindInt},
	)
	batch := make([]relation.Tuple, 512)
	for i := range batch {
		batch[i] = relation.Tuple{relation.Int(int64(i)), relation.Int(int64(i % 7))}
	}
	b.Run("append-per-tuple", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r := relation.New("out", schema)
			for _, t := range batch {
				if err := r.Append(t); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("append-all", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r := relation.New("out", schema)
			if err := r.AppendAll(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
}
