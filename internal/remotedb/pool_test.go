package remotedb

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func dialTestPool(t *testing.T, addr string, opts PoolOptions) *PoolClient {
	t.Helper()
	if opts.Costs == (Costs{}) {
		opts.Costs = DefaultCosts()
	}
	p, err := DialPool(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestPoolNegotiatesV2(t *testing.T) {
	addr, _, cleanup := startTestServer(t)
	defer cleanup()
	p := dialTestPool(t, addr, PoolOptions{})
	if got := p.Proto(); got != protoV2 {
		t.Fatalf("negotiated proto = %d, want %d", got, protoV2)
	}

	res, err := p.Exec("SELECT name FROM emp WHERE dept = 10 ORDER BY name")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Len() != 2 || res.Rel.Tuple(0)[0].AsString() != "alice" {
		t.Fatalf("pool exec result wrong: %v", res.Rel)
	}
	if res.SimMS <= 0 {
		t.Fatal("sim cost not charged")
	}

	sch, err := p.RelationSchema("emp", 4)
	if err != nil || sch.ColIndex("salary") != 3 {
		t.Fatalf("schema over pool wrong: %v %v", sch, err)
	}
	st, err := p.TableStats("dept")
	if err != nil || st.Rows != 3 {
		t.Fatalf("stats over pool wrong: %+v %v", st, err)
	}
	tables, err := p.Tables()
	if err != nil || len(tables) != 2 {
		t.Fatalf("tables over pool wrong: %v %v", tables, err)
	}

	stats := p.Stats()
	if stats.Requests != 1 || stats.TuplesReturned != 2 {
		t.Fatalf("pool stats wrong: %+v", stats)
	}
	if stats.Streams != 1 || stats.FramesSent == 0 || stats.FramesRecv == 0 {
		t.Fatalf("stream/frame counters not populated: %+v", stats)
	}
	if stats.FirstTupleNS <= 0 {
		t.Fatalf("first-tuple latency not recorded: %+v", stats)
	}
}

func TestPoolFallsBackToV1(t *testing.T) {
	e := newTestEngine(t)
	srv := NewServerWithOptions(e, ServerOptions{MaxProto: 1})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	p := dialTestPool(t, addr, PoolOptions{Size: 2})
	if got := p.Proto(); got != protoV1 {
		t.Fatalf("negotiated proto = %d, want %d (fallback)", got, protoV1)
	}
	res, err := p.Exec("SELECT * FROM dept")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Len() != 3 {
		t.Fatalf("v1-fallback exec wrong: %v", res.Rel)
	}
	// Streaming surface still works (materialized under the hood).
	st, err := p.ExecStream(context.Background(), "SELECT * FROM dept")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, ok := st.Next(); ok; _, ok = st.Next() {
		n++
	}
	if n != 3 || st.Err() != nil {
		t.Fatalf("v1-fallback stream wrong: n=%d err=%v", n, st.Err())
	}
	if sch, err := p.RelationSchema("emp", 4); err != nil || sch.Arity() != 4 {
		t.Fatalf("v1-fallback schema wrong: %v %v", sch, err)
	}
}

func TestPoolLegacyClientAgainstV2Server(t *testing.T) {
	// The old monolithic client must keep working against a v2-capable
	// server: it never says hello, so the connection stays v1.
	addr, _, cleanup := startTestServer(t)
	defer cleanup()
	c, err := DialTCP(addr, DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Exec("SELECT * FROM dept")
	if err != nil || res.Rel.Len() != 3 {
		t.Fatalf("legacy client against v2 server: %v %v", res, err)
	}
}

func TestPoolStreamDelivery(t *testing.T) {
	e := newTestEngine(t)
	srv := NewServerWithOptions(e, ServerOptions{FrameTuples: 2})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	p := dialTestPool(t, addr, PoolOptions{FrameTuples: 2})
	st, err := p.ExecStream(context.Background(), "SELECT name FROM emp ORDER BY name")
	if err != nil {
		t.Fatal(err)
	}
	if st.Schema() == nil || st.Schema().Arity() != 1 {
		t.Fatalf("stream schema wrong: %v", st.Schema())
	}
	var names []string
	for tup, ok := st.Next(); ok; tup, ok = st.Next() {
		names = append(names, tup[0].AsString())
	}
	if st.Err() != nil {
		t.Fatalf("stream err: %v", st.Err())
	}
	if len(names) < 3 {
		t.Fatalf("streamed too few tuples: %v", names)
	}
	if st.Ops() <= 0 {
		t.Fatal("server ops not reported on terminal frame")
	}
	if st.SimMS() <= 0 {
		t.Fatal("stream cost not settled")
	}
	// With frame size 2 and >=3 tuples there must be >=2 batch frames plus
	// header and end.
	if stats := p.Stats(); stats.FramesRecv < 4 {
		t.Fatalf("expected multiple frames, got %+v", stats)
	}
}

func TestPoolSemanticErrorKeepsConnection(t *testing.T) {
	addr, _, cleanup := startTestServer(t)
	defer cleanup()
	p := dialTestPool(t, addr, PoolOptions{})
	if _, err := p.Exec("SELECT * FROM missing"); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("expected semantic error, got %v", err)
	}
	if IsTransient(errors.New("x")) {
		t.Fatal("sanity")
	}
	if _, err := p.Exec("SELECT * FROM dept"); err != nil {
		t.Fatalf("connection unusable after semantic error: %v", err)
	}
}

func TestPoolMidStreamCancel(t *testing.T) {
	e := newTestEngine(t)
	// Small frames so the stream has many frames to cancel between.
	srv := NewServerWithOptions(e, ServerOptions{FrameTuples: 1})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	before := runtime.NumGoroutine()
	p := dialTestPool(t, addr, PoolOptions{FrameTuples: 1, StreamWindow: 1})

	ctx, cancel := context.WithCancel(context.Background())
	st, err := p.ExecStream(ctx, "SELECT * FROM emp")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Next(); !ok {
		t.Fatalf("first tuple missing: %v", st.Err())
	}
	cancel()
	for _, ok := st.Next(); ok; _, ok = st.Next() {
	}
	if err := st.Err(); err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled stream err = %v, want context.Canceled", err)
	}
	if got := p.Stats().StreamsCanceled; got != 1 {
		t.Fatalf("StreamsCanceled = %d, want 1", got)
	}

	// Only the canceled stream died: the same connection serves new requests.
	if _, err := p.Exec("SELECT * FROM dept"); err != nil {
		t.Fatalf("connection dead after mid-stream cancel: %v", err)
	}

	// No goroutine leaks: the demux reader is the only long-lived goroutine,
	// and it dies with the pool.
	p.Close()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("goroutine leak after cancel+close: before=%d now=%d", before, now)
	}
}

func TestPoolStreamCloseCancels(t *testing.T) {
	e := newTestEngine(t)
	srv := NewServerWithOptions(e, ServerOptions{FrameTuples: 1})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	p := dialTestPool(t, addr, PoolOptions{FrameTuples: 1})
	st, err := p.ExecStream(context.Background(), "SELECT * FROM emp")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Next(); !ok {
		t.Fatal("no first tuple")
	}
	st.Close()
	if err := st.Err(); !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("closed stream err = %v, want ErrStreamClosed", err)
	}
	if _, err := p.Exec("SELECT * FROM dept"); err != nil {
		t.Fatalf("connection dead after Close: %v", err)
	}
}

func TestPoolConcurrentSessions(t *testing.T) {
	addr, _, cleanup := startTestServer(t)
	defer cleanup()
	p := dialTestPool(t, addr, PoolOptions{Size: 4})
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 4; j++ {
				res, err := p.ExecCtx(context.Background(), "SELECT * FROM emp")
				if err != nil {
					errs <- fmt.Errorf("session %d: %w", i, err)
					return
				}
				if res.Rel.Len() == 0 {
					errs <- fmt.Errorf("session %d: empty result", i)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if stats := p.Stats(); stats.Requests != 32 || stats.Streams != 32 {
		t.Fatalf("stats after concurrent sessions: %+v", stats)
	}
}

func TestPoolRedial(t *testing.T) {
	e := newTestEngine(t)
	srv := NewServerWithOptions(e, ServerOptions{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := dialTestPool(t, addr, PoolOptions{Redial: true, DialTimeout: time.Second, RequestTimeout: 2 * time.Second})
	if _, err := p.Exec("SELECT * FROM dept"); err != nil {
		t.Fatal(err)
	}
	srv.Close()

	// Server gone: requests fail with a transport error.
	if _, err := p.Exec("SELECT * FROM dept"); err == nil || !IsTransient(err) {
		t.Fatalf("expected transient failure, got %v", err)
	}

	// Server back on the same address: redial restores service.
	srv2 := NewServer(e)
	if _, err := srv2.Listen(addr); err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	var last error
	for i := 0; i < 20; i++ {
		if _, last = p.Exec("SELECT * FROM dept"); last == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if last != nil {
		t.Fatalf("redial did not recover: %v", last)
	}
}

func TestPoolServerDeadline(t *testing.T) {
	e := newTestEngine(t)
	srv := NewServerWithOptions(e, ServerOptions{
		RequestTimeout: 10 * time.Millisecond,
		Faults:         &ListenerFaults{Seed: 7, DelayRate: 1.0, Delay: 200 * time.Millisecond},
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	p := dialTestPool(t, addr, PoolOptions{})
	_, err = p.Exec("SELECT * FROM dept")
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("expected deadline error, got %v", err)
	}
	if srv.ServerStats().Timeouts == 0 {
		t.Fatal("server did not count the timeout")
	}
}

func TestPoolServerShed(t *testing.T) {
	e := newTestEngine(t)
	srv := NewServerWithOptions(e, ServerOptions{
		MaxInflight: 1,
		ConnStreams: 4,
		Faults:      &ListenerFaults{Seed: 3, DelayRate: 1.0, Delay: 100 * time.Millisecond},
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	p := dialTestPool(t, addr, PoolOptions{Size: 2})
	var wg sync.WaitGroup
	var shedSeen flagBool
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.Exec("SELECT * FROM dept"); err != nil && IsOverloaded(err) {
				shedSeen.set()
			}
		}()
	}
	wg.Wait()
	if !shedSeen.get() && srv.ServerStats().Shed == 0 {
		t.Fatal("admission control never shed under overload")
	}
}

type flagBool struct {
	mu sync.Mutex
	v  bool
}

func (b *flagBool) set() { b.mu.Lock(); b.v = true; b.mu.Unlock() }
func (b *flagBool) get() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.v
}

// TestPoolHealthBackgroundReconnect: with active health management on, a
// broken connection is repaired in the BACKGROUND — no request has to trip
// over it first — and the health loop's goroutines all drain on Close.
func TestPoolHealthBackgroundReconnect(t *testing.T) {
	addr, _, cleanup := startTestServer(t)
	defer cleanup()
	before := runtime.NumGoroutine() // after server start: bracket the pool side only
	p := dialTestPool(t, addr, PoolOptions{
		Size:           2,
		Redial:         true,
		HealthInterval: 5 * time.Millisecond,
		HealthSeed:     1,
	})
	p.breakConn()

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		st := p.Stats()
		if st.Reconnects >= 1 && st.HealthProbes >= 1 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	st := p.Stats()
	if st.Reconnects < 1 {
		t.Fatalf("health loop never redialed the broken connection: %+v", st)
	}
	if st.HealthProbes < 1 {
		t.Fatalf("health loop never probed a live connection: %+v", st)
	}
	// The repaired pool serves requests without a request-path redial stall.
	if _, err := p.Exec("SELECT * FROM dept"); err != nil {
		t.Fatalf("exec after background repair: %v", err)
	}

	p.Close()
	leakDeadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(leakDeadline) && runtime.NumGoroutine() > before {
		time.Sleep(5 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		buf := make([]byte, 1<<16)
		n := runtime.Stack(buf, true)
		t.Fatalf("goroutine leak after health-managed pool close: before=%d now=%d\n%s", before, now, buf[:n])
	}
}

// TestPoolHealthEvictsUnresponsiveConn: a connection that still accepts bytes
// but answers nothing (here: a server stalling every request far past the
// probe budget) is detected by the probe timeout and torn down proactively.
func TestPoolHealthEvictsUnresponsiveConn(t *testing.T) {
	srv := NewServerWithOptions(newTestEngine(t), ServerOptions{
		Faults: &ListenerFaults{Seed: 9, DelayRate: 1.0, Delay: 300 * time.Millisecond},
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	before := runtime.NumGoroutine() // after server start: bracket the pool side only
	// Redial off: once evicted, the conn stays down, so ProbeFailures is
	// observable without racing a background repair.
	p := dialTestPool(t, addr, PoolOptions{
		Size:           1,
		HealthInterval: 20 * time.Millisecond,
		HealthSeed:     2,
	})

	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && p.Stats().ProbeFailures == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	if st := p.Stats(); st.ProbeFailures < 1 {
		t.Fatalf("probe never evicted the unresponsive connection: %+v", st)
	}

	p.Close()
	leakDeadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(leakDeadline) && runtime.NumGoroutine() > before {
		time.Sleep(5 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		buf := make([]byte, 1<<16)
		n := runtime.Stack(buf, true)
		t.Fatalf("goroutine leak after probe eviction: before=%d now=%d\n%s", before, now, buf[:n])
	}
}
