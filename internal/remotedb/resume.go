package remotedb

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Mid-stream failure recovery (wire v2): when a connection dies after frame N
// of a stream, the tuples already delivered are gone from the server's point
// of view — re-issuing the statement replays the whole result, and a naive
// client either drops the partial prefix (lost work) or concatenates two
// overlapping prefixes (duplicates). A resume token makes the re-issue safe:
//
//   - the server attaches a token to the header frame of every *resumable*
//     stream (the pull-based scan path of engine_stream.go, whose emission
//     order is a deterministic function of an append-only snapshot);
//   - the token pins the statement (hash), the scanned table, the table's
//     version (bumped only when the extension is replaced wholesale), and the
//     snapshot length (appends after the snapshot must not leak into a
//     resumed delivery);
//   - a client that lost the connection after delivering K tuples re-issues
//     the statement with the token and Skip=K; the server rebuilds the same
//     scan, bounds it to the pinned snapshot, skips the first K emitted
//     tuples, and the concatenation of the two deliveries is byte-identical
//     to an uninterrupted run (resume_test.go proves this by property test);
//   - when the pinned snapshot is gone (table replaced: version mismatch, or
//     truncated below the pinned length), the server serves a fresh stream
//     instead and says so (header Resumed=false), leaving the client to skip
//     already-delivered tuples itself — full restart + client-side skip.
//
// The token is opaque to the client: it round-trips the header's string
// verbatim. The codec below therefore defends the *server* against tokens
// that were truncated, corrupted, or forged in transit: a version tag, a
// field checksum, and strict field validation make ParseResumeToken reject
// malformed input with a typed error instead of resuming the wrong scan
// (fuzzed in resume_test.go).

// ResumeToken identifies a resumable point of one streamed scan.
type ResumeToken struct {
	// StmtHash is the FNV-1a hash of the statement text; a resume request
	// whose SQL does not hash to it is rejected (the token belongs to a
	// different statement).
	StmtHash uint64
	// Table is the scanned base table.
	Table string
	// Version is the table's extension version at snapshot time. Appends do
	// not change it (the snapshot prefix stays valid under the append-only
	// representation); wholesale replacement does.
	Version uint64
	// SnapLen is the snapshot length in base tuples: the resumed scan must
	// not read past it, or tuples appended after the original snapshot would
	// appear in the resumed half but not in an uninterrupted delivery.
	SnapLen int64
}

// resumeTokenPrefix tags the codec version; unknown tags are rejected.
const resumeTokenPrefix = "brt1"

// ErrResumeToken is the sentinel for malformed or mismatched resume tokens.
// Match with errors.Is. A bad token is NOT a request failure: the server
// falls back to a fresh stream, exactly as if no token had been sent.
var ErrResumeToken = errors.New("remotedb: bad resume token")

// StatementHash hashes a statement's text (FNV-1a) for resume-token identity.
func StatementHash(sql string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(sql); i++ {
		h ^= uint64(sql[i])
		h *= prime64
	}
	return h
}

// checksum guards the encoded fields against corruption in transit. It is an
// integrity check, not authentication: FNV-1a over the payload.
func (t ResumeToken) checksum() uint64 {
	return StatementHash(fmt.Sprintf("%x|%s|%x|%x", t.StmtHash, t.Table, t.Version, t.SnapLen))
}

// Encode renders the token as the opaque string carried on header frames.
// Table names are SQL identifiers (no separator characters), but the codec
// does not rely on that: Parse splits from the fixed-position ends so a
// hostile table name cannot shift fields.
func (t ResumeToken) Encode() string {
	return fmt.Sprintf("%s:%x:%s:%x:%x:%x",
		resumeTokenPrefix, t.StmtHash, t.Table, t.Version, t.SnapLen, t.checksum())
}

// ParseResumeToken decodes and validates an encoded token. Every failure is a
// typed error matching ErrResumeToken; the function never panics on arbitrary
// input (fuzzed).
func ParseResumeToken(s string) (ResumeToken, error) {
	var t ResumeToken
	if len(s) > 4096 {
		return t, fmt.Errorf("%w: oversized (%d bytes)", ErrResumeToken, len(s))
	}
	parts := strings.Split(s, ":")
	if len(parts) < 6 {
		return t, fmt.Errorf("%w: %d fields, want 6", ErrResumeToken, len(parts))
	}
	if parts[0] != resumeTokenPrefix {
		return t, fmt.Errorf("%w: unknown version tag %q", ErrResumeToken, parts[0])
	}
	// The table name is the only free-form field; rejoin any interior colons
	// so the numeric fields always parse from the fixed positions.
	n := len(parts)
	table := strings.Join(parts[2:n-3], ":")
	stmtHash, err := strconv.ParseUint(parts[1], 16, 64)
	if err != nil {
		return t, fmt.Errorf("%w: statement hash: %v", ErrResumeToken, err)
	}
	version, err := strconv.ParseUint(parts[n-3], 16, 64)
	if err != nil {
		return t, fmt.Errorf("%w: version: %v", ErrResumeToken, err)
	}
	snapLen, err := strconv.ParseUint(parts[n-2], 16, 63)
	if err != nil {
		return t, fmt.Errorf("%w: snapshot length: %v", ErrResumeToken, err)
	}
	sum, err := strconv.ParseUint(parts[n-1], 16, 64)
	if err != nil {
		return t, fmt.Errorf("%w: checksum: %v", ErrResumeToken, err)
	}
	t = ResumeToken{StmtHash: stmtHash, Table: table, Version: version, SnapLen: int64(snapLen)}
	if t.checksum() != sum {
		return ResumeToken{}, fmt.Errorf("%w: checksum mismatch", ErrResumeToken)
	}
	if t.Table == "" {
		return ResumeToken{}, fmt.Errorf("%w: empty table", ErrResumeToken)
	}
	return t, nil
}
