package remotedb

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/relation"
)

func benchEngine(b *testing.B, rows int) *Engine {
	b.Helper()
	e := NewEngine()
	rng := rand.New(rand.NewSource(1))
	emp := relation.New("emp", relation.NewSchema(
		relation.Attr{Name: "id", Kind: relation.KindInt},
		relation.Attr{Name: "dept", Kind: relation.KindInt},
		relation.Attr{Name: "salary", Kind: relation.KindFloat}))
	for i := 0; i < rows; i++ {
		emp.MustAppend(relation.Tuple{
			relation.Int(int64(i)),
			relation.Int(int64(rng.Intn(50))),
			relation.Float(float64(30000 + rng.Intn(100000)))})
	}
	dept := relation.New("dept", relation.NewSchema(
		relation.Attr{Name: "id", Kind: relation.KindInt},
		relation.Attr{Name: "name", Kind: relation.KindString}))
	for i := 0; i < 50; i++ {
		dept.MustAppend(relation.Tuple{relation.Int(int64(i)), relation.Str("d")})
	}
	e.LoadTable(emp)
	e.LoadTable(dept)
	return e
}

func BenchmarkSQLParse(b *testing.B) {
	src := "SELECT e.id, d.name FROM emp e, dept d WHERE e.dept = d.id AND e.salary > 50000 ORDER BY id LIMIT 100"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseSQL(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSQLSelectJoin(b *testing.B) {
	e := benchEngine(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.ExecuteSQL("SELECT e.id, d.name FROM emp e, dept d WHERE e.dept = d.id AND e.salary > 90000"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSQLAggregate(b *testing.B) {
	e := benchEngine(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.ExecuteSQL("SELECT dept, COUNT(*), AVG(salary) FROM emp GROUP BY dept"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTCPRoundTrip(b *testing.B) {
	e := benchEngine(b, 1000)
	srv := NewServer(e)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := DialTCP(addr, DefaultCosts())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Exec("SELECT id FROM emp WHERE dept = 7"); err != nil {
			b.Fatal(err)
		}
	}
}

// SQL parser robustness.
func TestSQLParserNoPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(304))
	alphabet := "SELECT FROM WHERE abz09_.,*()='<>! "
	for i := 0; i < 3000; i++ {
		var sb strings.Builder
		for j := 0; j < rng.Intn(60); j++ {
			sb.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		src := sb.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			ParseSQL(src)
		}()
	}
}
