package remotedb

import (
	"bytes"
	"encoding/gob"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

// randomValue draws one relation.Value covering every wire kind, including
// Null.
func randomValue(rng *rand.Rand) relation.Value {
	switch rng.Intn(5) {
	case 0:
		return relation.Null()
	case 1:
		return relation.Int(rng.Int63() - rng.Int63())
	case 2:
		return relation.Float(rng.NormFloat64() * 1e6)
	case 3:
		n := rng.Intn(24)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(rng.Intn(256)) // arbitrary bytes, not just printable
		}
		return relation.Str(string(b))
	default:
		return relation.Bool(rng.Intn(2) == 0)
	}
}

// TestQuickWireValueRoundTrip: toWireValue/fromWireValue is the identity on
// every value kind.
func TestQuickWireValueRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func() bool {
		v := randomValue(rng)
		got, err := fromWireValue(toWireValue(v))
		return err == nil && got.Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestWireValueAllKinds pins each kind explicitly (quick sampling aside), and
// rejects unknown kinds with an error instead of guessing.
func TestWireValueAllKinds(t *testing.T) {
	for _, v := range []relation.Value{
		relation.Null(),
		relation.Int(-1 << 62),
		relation.Float(3.5),
		relation.Str(""),
		relation.Str("héllo\x00wörld"),
		relation.Bool(true),
		relation.Bool(false),
	} {
		got, err := fromWireValue(toWireValue(v))
		if err != nil || !got.Equal(v) {
			t.Errorf("round trip of %v: got %v, err %v", v, got, err)
		}
	}
	if _, err := fromWireValue(wireValue{Kind: 99}); err == nil {
		t.Error("unknown wire kind must be rejected")
	}
}

// TestQuickWireTupleRoundTrip: whole tuples survive batch conversion.
func TestQuickWireTupleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func() bool {
		n := rng.Intn(6)
		in := make(relation.Tuple, n)
		for i := range in {
			in[i] = randomValue(rng)
		}
		out, err := fromWireTuples([][]wireValue{toWireTuple(in)})
		if err != nil || len(out) != 1 || len(out[0]) != n {
			return false
		}
		for i := range in {
			if !out[0][i].Equal(in[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// encodeFrames gob-encodes a handshake-free frame sequence the way a
// connection would: one shared encoder.
func encodeFrames(t *testing.T, frames ...*wireFrame) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	for _, f := range frames {
		if err := writeFrame(enc, f); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func sampleFrames() []*wireFrame {
	return []*wireFrame{
		{ID: 1, Kind: frameHeader, Name: "result", Attrs: []wireAttr{{Name: "x", Kind: 1}}},
		{ID: 1, Kind: frameBatch, Tuples: [][]wireValue{{{Kind: 1, I: 42}}, {{Kind: 0}}}},
		{ID: 1, Kind: frameEnd, Ops: 2},
	}
}

// TestFrameDecodeTruncated: every proper prefix of a valid frame stream
// decodes its complete frames and then fails fast with io.EOF (clean cut at a
// frame boundary) or a typed *ProtocolError (cut mid-frame) — never a hang,
// never a silent success.
func TestFrameDecodeTruncated(t *testing.T) {
	full := encodeFrames(t, sampleFrames()...)
	for cut := 0; cut < len(full); cut++ {
		dec := gob.NewDecoder(bytes.NewReader(full[:cut]))
		for i := 0; ; i++ {
			f, err := readFrame(dec)
			if err == nil {
				if i >= 3 {
					t.Fatalf("cut %d: decoded more frames than were encoded", cut)
				}
				if f.Kind < frameHeader || f.Kind > frameEnd {
					t.Fatalf("cut %d: bad decoded frame %+v", cut, f)
				}
				continue
			}
			var pe *ProtocolError
			if !errors.Is(err, io.EOF) && !errors.As(err, &pe) {
				t.Fatalf("cut %d: untyped decode error %v", cut, err)
			}
			if errors.As(err, &pe) && !errors.Is(err, ErrProtocol) {
				t.Fatalf("cut %d: ProtocolError does not match ErrProtocol", cut)
			}
			break
		}
	}
}

// TestFrameDecodeCorrupted: flipping any byte of the stream either still
// yields structurally valid frames or fails with a typed *ProtocolError —
// corruption is never mistaken for a clean EOF mid-stream and never panics.
func TestFrameDecodeCorrupted(t *testing.T) {
	full := encodeFrames(t, sampleFrames()...)
	for pos := 0; pos < len(full); pos++ {
		mut := append([]byte(nil), full...)
		mut[pos] ^= 0xff
		dec := gob.NewDecoder(bytes.NewReader(mut))
		for i := 0; i < 8; i++ { // a corrupted stream yields at most the 3 originals
			_, err := readFrame(dec)
			if err == nil {
				continue
			}
			var pe *ProtocolError
			if !errors.Is(err, io.EOF) && !errors.As(err, &pe) {
				t.Fatalf("flip at %d: untyped decode error %v", pos, err)
			}
			break
		}
	}
}

// TestFrameDecodeGarbage: arbitrary bytes that never were a gob stream fail
// fast with a typed error.
func TestFrameDecodeGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		junk := make([]byte, rng.Intn(256))
		for i := range junk {
			junk[i] = byte(rng.Intn(256))
		}
		_, err := readFrame(gob.NewDecoder(bytes.NewReader(junk)))
		if err == nil {
			t.Fatalf("trial %d: garbage decoded as a frame", trial)
		}
		var pe *ProtocolError
		if !errors.Is(err, io.EOF) && !errors.As(err, &pe) {
			t.Fatalf("trial %d: untyped decode error %v", trial, err)
		}
	}
}

// TestFrameRejectsUnknownKind: a structurally valid gob message with an
// out-of-range frame kind is a protocol violation, not a decodable frame.
func TestFrameRejectsUnknownKind(t *testing.T) {
	raw := encodeFrames(t, &wireFrame{ID: 3, Kind: 200})
	_, err := readFrame(gob.NewDecoder(bytes.NewReader(raw)))
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("unknown kind: got %v, want ErrProtocol", err)
	}
	// A request frame must carry a request payload.
	raw = encodeFrames(t, &wireFrame{ID: 4, Kind: frameReq})
	if _, err := readFrame(gob.NewDecoder(bytes.NewReader(raw))); !errors.Is(err, ErrProtocol) {
		t.Fatalf("req frame without request: got %v, want ErrProtocol", err)
	}
}
