package remotedb

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/relation"
)

// This file defines the explicit Plan tree the cost-based optimizer
// (optimizer.go) produces for a SELECT: an operator DAG (left-deep tree) of
// scans, pipelined hash joins, filters, projections, aggregation, sort/TopN,
// distinct, and limit. A Plan is immutable once built and safe for concurrent
// reuse out of the plan cache (plancache.go): all per-execution state lives
// in a planRun, and base-table snapshots are bound at open time under the
// engine lock (plan_exec.go). EXPLAIN renders the tree one node per line.

// Plan is a compiled, optimizer-chosen execution strategy for one SELECT.
type Plan struct {
	root   planNode
	schema *relation.Schema
	key    uint64 // StatementHash of the canonical statement text (cache key)
	epoch  uint64 // catalog epoch the plan was built against

	estRows float64 // estimated result cardinality
	estOps  float64 // estimated server-side tuple operations

	// nodeEst is the optimizer's per-node output-cardinality estimate,
	// stamped at build time and rendered against actuals by EXPLAIN ANALYZE.
	// Read-only after buildPlan, like the tree itself.
	nodeEst map[planNode]float64

	// par is the plan's parallelizable section (plan_parallel.go), or nil
	// when the shape must stay serial. Eligibility is decided at build time;
	// whether a given execution actually runs parallel is decided at open
	// time from the engine's Parallelism and ParallelMinRows settings.
	par *parSection
}

// EstRows is the optimizer's estimate of the result cardinality.
func (p *Plan) EstRows() float64 { return p.estRows }

// EstOps is the optimizer's estimate of server-side tuple operations.
func (p *Plan) EstOps() float64 { return p.estOps }

// EstCost is the plan's simulated cost under the virtual cost model: one
// round trip, the estimated result tuples shipped, the estimated server ops.
func (p *Plan) EstCost(c Costs) float64 {
	return c.RequestCost(int64(p.estRows), int64(p.estOps))
}

// Explain renders the plan tree, one line per operator, children indented
// under their parent.
func (p *Plan) Explain() []string {
	var lines []string
	explainNode(p.root, 0, &lines)
	return lines
}

func explainNode(n planNode, depth int, out *[]string) {
	prefix := ""
	for i := 0; i < depth; i++ {
		prefix += "  "
	}
	*out = append(*out, prefix+n.describe())
	for _, c := range n.children() {
		explainNode(c, depth+1, out)
	}
}

// errPlanStale reports that a plan's catalog epoch no longer matches the
// engine; the caller drops the cache entry and replans.
var errPlanStale = errors.New("remotedb: plan stale")

// errNotSelect reports that PlanForSQL was handed a non-SELECT statement.
var errNotSelect = errors.New("remotedb: not a SELECT statement")

// planNode is one operator of a compiled plan.
type planNode interface {
	Schema() *relation.Schema
	// open builds the operator's pull iterator over the run's bound
	// snapshots. Blocking operators (hash-join build, sort, aggregation) do
	// their blocking work when opened, which happens on the first pull of
	// the root — so a streamed plan's first-tuple latency includes exactly
	// the blocking prefix the plan could not avoid.
	open(run *planRun) relation.Iterator
	describe() string
	children() []planNode
}

// scanNode reads one base table: a full snapshot scan or an index equality
// lookup, with every pushed-down per-alias predicate applied in the same
// pass. The node stores names, not snapshots: the extension and the index
// are re-bound to the live catalog each run, so cached plans survive
// appends (via replanning: the epoch check fails) and never dangle.
type scanNode struct {
	table, alias string
	sch          *relation.Schema
	conds        []relation.Cond
	// idxCols/idxVals select an index access path when non-empty: bind looks
	// up an index on exactly idxCols, falling back to the full scan (conds
	// still include the equality predicates) if it no longer exists.
	idxCols []int
	idxVals []relation.Value
	desc    string
}

func (n *scanNode) Schema() *relation.Schema { return n.sch }
func (n *scanNode) children() []planNode     { return nil }
func (n *scanNode) describe() string         { return n.desc }

// joinNode joins two subtrees. The left side is the probe input and
// streams; the right side is the build input, drained into a hash table
// (equi-join) or a buffer (cross/theta join) when the node opens.
type joinNode struct {
	left, right planNode
	eq          []relation.JoinCond // probe position = Left, build position = Right
	post        []relation.Cond     // residual theta conditions over the concatenated tuple
	sch         *relation.Schema
	desc        string
}

func (n *joinNode) Schema() *relation.Schema { return n.sch }
func (n *joinNode) children() []planNode     { return []planNode{n.left, n.right} }
func (n *joinNode) describe() string         { return n.desc }

// projectNode projects each input tuple onto cols. counted distinguishes the
// final projection (accounted as one tuple operation per tuple, matching the
// materializing executor) from column pruning below a join (bookkeeping the
// optimizer inserted; the join's own input accounting already covers it).
type projectNode struct {
	child   planNode
	cols    []int
	sch     *relation.Schema
	counted bool
	desc    string
}

func (n *projectNode) Schema() *relation.Schema { return n.sch }
func (n *projectNode) children() []planNode     { return []planNode{n.child} }
func (n *projectNode) describe() string         { return n.desc }

// filterNode applies residual conditions (defensive; ordinarily residuals
// fold into the join that completes them).
type filterNode struct {
	child planNode
	conds []relation.Cond
	desc  string
}

func (n *filterNode) Schema() *relation.Schema { return n.child.Schema() }
func (n *filterNode) children() []planNode     { return []planNode{n.child} }
func (n *filterNode) describe() string         { return n.desc }

// aggNode drains its input into grouped aggregation and emits the group rows
// incrementally.
type aggNode struct {
	child     planNode
	groupCols []int
	specs     []relation.AggSpec
	sch       *relation.Schema
	desc      string
}

func (n *aggNode) Schema() *relation.Schema { return n.sch }
func (n *aggNode) children() []planNode     { return []planNode{n.child} }
func (n *aggNode) describe() string         { return n.desc }

// sortNode sorts its input stably by cols. With limit >= 0 it runs as a
// bounded-heap TopN: the LIMIT was pushed into the sort, so memory and
// comparisons are O(limit) instead of O(input).
type sortNode struct {
	child planNode
	cols  []int
	limit int // -1: full sort; else TopN
	desc  string
}

func (n *sortNode) Schema() *relation.Schema { return n.child.Schema() }
func (n *sortNode) children() []planNode     { return []planNode{n.child} }
func (n *sortNode) describe() string         { return n.desc }

// distinctNode deduplicates, streaming first occurrences through.
type distinctNode struct {
	child planNode
	desc  string
}

func (n *distinctNode) Schema() *relation.Schema { return n.child.Schema() }
func (n *distinctNode) children() []planNode     { return []planNode{n.child} }
func (n *distinctNode) describe() string         { return n.desc }

// limitNode truncates the stream after n tuples; because execution is
// pull-based, upstream operators simply stop being asked for more.
type limitNode struct {
	child planNode
	n     int
	desc  string
}

func (n *limitNode) Schema() *relation.Schema { return n.child.Schema() }
func (n *limitNode) children() []planNode     { return []planNode{n.child} }
func (n *limitNode) describe() string         { return n.desc }

// explainSelect renders the plan for sel as a one-column relation, the
// wire-transparent form of EXPLAIN <select>: it flows through every client
// and transport like an ordinary result.
func (e *Engine) explainSelect(sel *SelectStmt) (*relation.Relation, int64, error) {
	p, _, err := e.planFor(context.Background(), sel)
	if err != nil {
		return nil, 0, err
	}
	mode := "on"
	if !e.OptimizerEnabled() {
		mode = "off (naive materializing executor runs this statement)"
	}
	header := fmt.Sprintf("optimizer: %s | plan epoch %d | est rows %.0f | est cost %.1f sim-ms",
		mode, p.epoch, p.estRows, p.EstCost(DefaultCosts()))
	if p.par != nil {
		if dop := e.planDOP(p); dop > 1 {
			header += fmt.Sprintf(" | parallel dop %d (driver est %.0f rows, morsel %d)",
				dop, p.par.estRows, e.MorselSize())
		} else {
			header += fmt.Sprintf(" | parallel eligible, serial chosen (driver est %.0f rows, min %d, parallelism %d)",
				p.par.estRows, e.ParallelMinRows(), e.Parallelism())
		}
	}
	lines := []string{header}
	lines = append(lines, p.Explain()...)
	return planLinesRelation(lines), int64(len(lines)), nil
}

// planLinesRelation wraps EXPLAIN output as a one-column relation so it
// flows through every client and transport like an ordinary result.
func planLinesRelation(lines []string) *relation.Relation {
	out := relation.New("plan", relation.NewSchema(relation.Attr{Name: "plan", Kind: relation.KindString}))
	for _, l := range lines {
		out.MustAppend(relation.Tuple{relation.Str(l)})
	}
	return out
}

// explainAnalyze renders the plan tree with the optimizer's per-node
// estimates against the run's recorded actuals: rows emitted, input tuple
// operations (scan rows examined; for interior nodes the sum of child
// emissions), and inclusive wall time.
func (p *Plan) explainAnalyze(run *planRun) []string {
	var lines []string
	var walk func(n planNode, depth int)
	walk = func(n planNode, depth int) {
		line := strings.Repeat("  ", depth) + n.describe()
		if est, ok := p.nodeEst[n]; ok {
			line += fmt.Sprintf(" (est rows %.0f)", est)
		}
		if na := run.analyze[n]; na != nil {
			ops := na.examined
			for _, c := range n.children() {
				if ca := run.analyze[c]; ca != nil {
					ops += ca.rows
				}
			}
			line += fmt.Sprintf(" (actual rows %d, ops %d, time %.3fms)",
				na.rows, ops, float64(na.wallNS)/1e6)
		}
		lines = append(lines, line)
		for _, c := range n.children() {
			walk(c, depth+1)
		}
	}
	walk(p.root, 0)
	return lines
}

// explainAnalyzeSelect executes sel with per-node instrumentation and
// renders estimated-vs-actual rows/ops/time for every plan node (EXPLAIN
// ANALYZE SELECT). With the optimizer off, the statement runs through the
// naive materializing executor and only statement totals are reported —
// there is no plan tree to attribute time to.
func (e *Engine) explainAnalyzeSelect(ctx context.Context, sel *SelectStmt) (*relation.Relation, int64, error) {
	if !e.OptimizerEnabled() {
		t0 := time.Now()
		rel, ops, err := e.executeSelectNaive(sel)
		if err != nil {
			return nil, 0, err
		}
		lines := []string{
			fmt.Sprintf("optimizer: off | naive materializing executor | actual rows %d | ops %d | time %.3fms",
				rel.Len(), ops, float64(time.Since(t0).Nanoseconds())/1e6),
			"(per-node timings require the cost-based optimizer)",
		}
		return planLinesRelation(lines), ops, nil
	}
	ps, err := e.openPlan(ctx, sel, true)
	if err != nil {
		return nil, 0, err
	}
	defer ps.Close()
	t0 := time.Now()
	rows := int64(0)
	for {
		if _, ok := ps.Next(); !ok {
			break
		}
		rows++
	}
	wall := time.Since(t0)
	if err := ps.Err(); err != nil {
		return nil, 0, err
	}
	p := ps.plan
	cache := "miss"
	if ps.cached {
		cache = "hit"
	}
	lines := []string{fmt.Sprintf(
		"optimizer: on | plan epoch %d | plan cache %s | est rows %.0f | actual rows %d | ops %d | time %.3fms | dop %d",
		p.epoch, cache, p.estRows, rows, ps.Ops(), float64(wall.Nanoseconds())/1e6, ps.DOP())}
	if ps.DOP() > 1 {
		// Per-worker actuals: skewed partitions show up here as unbalanced
		// rows/ops across workers, which node-level wall time cannot reveal.
		lines = append(lines, ps.par.workerLines()...)
	}
	lines = append(lines, p.explainAnalyze(ps.run)...)
	return planLinesRelation(lines), ps.Ops(), nil
}
