package remotedb

import (
	"fmt"

	"repro/internal/caql"
	"repro/internal/relation"
)

// Translation is the output of translating a CAQL conjunctive query into the
// remote DBMS's DML, plus the reassembly recipe for rebuilding the CAQL head
// row from a SQL result row (SQL's select list cannot carry constants or
// duplicate a column, so the translator projects each distinct head variable
// once and the reassembly step re-expands).
type Translation struct {
	// Stmt is the translated SELECT.
	Stmt *SelectStmt
	// SQL is Stmt rendered as text (what actually crosses the wire).
	SQL string
	// HeadIdx maps each CAQL head position to an index in the SQL select
	// list, or -1 when the position is a constant.
	HeadIdx []int
	// Consts holds the constant for each head position with HeadIdx -1.
	Consts []relation.Value
}

// TranslateCAQL compiles a CAQL conjunctive query into the SQL subset. Every
// relational atom becomes an aliased table reference; constants in atoms
// become equality conditions; shared variables become join conditions;
// comparison atoms become WHERE conjuncts. The caller supplies base relation
// schemas through src.
func TranslateCAQL(q *caql.Query, src caql.SchemaSource) (*Translation, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	sel := &SelectStmt{Limit: -1}
	// varSite maps each variable to its first (alias, column-name) site.
	type site struct {
		alias string
		col   string
	}
	varSite := make(map[string]site)

	for ai, atom := range q.Rels {
		sch, err := src.RelationSchema(atom.Pred, len(atom.Args))
		if err != nil {
			return nil, err
		}
		alias := fmt.Sprintf("t%d", ai)
		sel.From = append(sel.From, TableRef{Table: atom.Pred, Alias: alias})
		for i, t := range atom.Args {
			colName := sch.Attr(i).Name
			ref := ColRef{Qualifier: alias, Column: colName}
			if t.IsConst() {
				sel.Where = append(sel.Where, SQLCond{Left: ref, Op: relation.OpEq, RightVal: t.Const})
				continue
			}
			if prev, ok := varSite[t.Var]; ok {
				sel.Where = append(sel.Where, SQLCond{
					Left:       ColRef{Qualifier: prev.alias, Column: prev.col},
					Op:         relation.OpEq,
					RightIsCol: true,
					RightCol:   ref,
				})
			} else {
				varSite[t.Var] = site{alias: alias, col: colName}
			}
		}
	}

	for _, c := range q.Cmps {
		l, r := c.Args[0], c.Args[1]
		op := c.CmpOp()
		switch {
		case l.IsVar() && r.IsVar():
			ls, rs := varSite[l.Var], varSite[r.Var]
			sel.Where = append(sel.Where, SQLCond{
				Left:       ColRef{Qualifier: ls.alias, Column: ls.col},
				Op:         op,
				RightIsCol: true,
				RightCol:   ColRef{Qualifier: rs.alias, Column: rs.col},
			})
		case l.IsVar():
			ls := varSite[l.Var]
			sel.Where = append(sel.Where, SQLCond{
				Left: ColRef{Qualifier: ls.alias, Column: ls.col}, Op: op, RightVal: r.Const,
			})
		case r.IsVar():
			rs := varSite[r.Var]
			sel.Where = append(sel.Where, SQLCond{
				Left: ColRef{Qualifier: rs.alias, Column: rs.col}, Op: op.Flip(), RightVal: l.Const,
			})
		default:
			if !op.Eval(l.Const, r.Const) {
				// Statically false: emit an impossible condition so the DBMS
				// returns an empty result (the subset has no FALSE literal).
				first := sel.From[0].Alias
				sch, _ := src.RelationSchema(q.Rels[0].Pred, len(q.Rels[0].Args))
				col := sch.Attr(0).Name
				sel.Where = append(sel.Where,
					SQLCond{Left: ColRef{Qualifier: first, Column: col}, Op: relation.OpNe,
						RightIsCol: true, RightCol: ColRef{Qualifier: first, Column: col}})
			}
		}
	}

	tr := &Translation{
		Stmt:    sel,
		HeadIdx: make([]int, len(q.Head.Args)),
		Consts:  make([]relation.Value, len(q.Head.Args)),
	}
	// Select each distinct head variable once, in first-appearance order.
	selIdx := make(map[string]int)
	for i, t := range q.Head.Args {
		if t.IsConst() {
			tr.HeadIdx[i] = -1
			tr.Consts[i] = t.Const
			continue
		}
		if idx, ok := selIdx[t.Var]; ok {
			tr.HeadIdx[i] = idx
			continue
		}
		s, ok := varSite[t.Var]
		if !ok {
			return nil, fmt.Errorf("remotedb: head variable %s not bound in body", t.Var)
		}
		idx := len(sel.Items)
		sel.Items = append(sel.Items, SelectItem{Col: ColRef{Qualifier: s.alias, Column: s.col}})
		selIdx[t.Var] = idx
		tr.HeadIdx[i] = idx
	}
	if len(sel.Items) == 0 {
		// All head positions are constants: select an arbitrary column so the
		// SQL is well-formed; reassembly ignores it (row multiplicity is what
		// matters).
		s, _ := src.RelationSchema(q.Rels[0].Pred, len(q.Rels[0].Args))
		sel.Items = append(sel.Items, SelectItem{Col: ColRef{Qualifier: sel.From[0].Alias, Column: s.Attr(0).Name}})
	}
	tr.SQL = sel.String()
	return tr, nil
}

// ReassembleTuple rebuilds one CAQL head row from one SQL result row using
// the translation's head recipe. It is the per-tuple kernel of Reassemble,
// exposed so streamed results can be reassembled lazily as frames arrive
// instead of after full materialization.
func (tr *Translation) ReassembleTuple(row relation.Tuple) (relation.Tuple, error) {
	t := make(relation.Tuple, len(tr.HeadIdx))
	for i, idx := range tr.HeadIdx {
		if idx < 0 {
			t[i] = tr.Consts[i]
		} else {
			if idx >= len(row) {
				return nil, fmt.Errorf("remotedb: SQL row too short for reassembly")
			}
			t[i] = row[idx]
		}
	}
	return t, nil
}

// Reassemble rebuilds the CAQL result extension from the SQL result using
// the translation's head recipe.
func (tr *Translation) Reassemble(name string, schema *relation.Schema, sqlResult *relation.Relation) (*relation.Relation, error) {
	if schema.Arity() != len(tr.HeadIdx) {
		return nil, fmt.Errorf("remotedb: reassembly schema arity %d != head arity %d", schema.Arity(), len(tr.HeadIdx))
	}
	out := relation.New(name, schema)
	out.Grow(sqlResult.Len())
	for _, row := range sqlResult.Tuples() {
		t, err := tr.ReassembleTuple(row)
		if err != nil {
			return nil, err
		}
		if err := out.Append(t); err != nil {
			return nil, err
		}
	}
	return out, nil
}
