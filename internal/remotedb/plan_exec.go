package remotedb

import (
	"sort"

	"repro/internal/relation"
)

// Plan execution. A Plan is a reusable template; each execution gets a
// planRun holding the base-table snapshots bound under the engine lock and
// the server-op counter. The iterator tree itself is built lazily on the
// first pull (outside the lock — snapshots are immutable), so opening a
// stream is cheap and first-tuple latency pays only for the blocking prefix
// (hash-join builds, sorts, aggregation) the plan actually contains.

// planRun is the per-execution state of a plan.
type planRun struct {
	ops   int64
	scans map[*scanNode]scanBinding
}

// scanBinding is a scan's snapshot of the live catalog: the table extension
// and, for an index access path, the index (nil when it has been
// invalidated — the scan then falls back to filtering the full extension,
// which is always correct because the scan's conds include the equality
// predicates the index served).
type scanBinding struct {
	rows []relation.Tuple
	ix   *relation.Index
}

// counted wraps an iterator so every pulled tuple counts as one server-side
// operation, the unit the virtual cost model charges.
func (run *planRun) counted(in relation.Iterator) relation.Iterator {
	return relation.IteratorFunc(func() (relation.Tuple, bool) {
		t, ok := in.Next()
		if ok {
			run.ops++
		}
		return t, ok
	})
}

// open binds the plan to the live catalog. It fails with errPlanStale when
// the catalog epoch moved past the plan (the caller drops the cache entry
// and replans).
func (p *Plan) open(e *Engine) (*PlanStream, error) {
	run := &planRun{scans: make(map[*scanNode]scanBinding)}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.epoch.Load() != p.epoch {
		return nil, errPlanStale
	}
	if err := bindScans(p.root, e, run); err != nil {
		return nil, err
	}
	return &PlanStream{plan: p, run: run}, nil
}

func bindScans(n planNode, e *Engine, run *planRun) error {
	if sn, ok := n.(*scanNode); ok {
		t, ok := e.tables[sn.table]
		if !ok {
			return errPlanStale
		}
		b := scanBinding{rows: t.Tuples()}
		if len(sn.idxCols) > 0 {
			for _, ix := range e.indexes[sn.table] {
				if sameCols(ix.Cols(), sn.idxCols) {
					b.ix = ix
					break
				}
			}
		}
		run.scans[sn] = b
		return nil
	}
	for _, c := range n.children() {
		if err := bindScans(c, e, run); err != nil {
			return err
		}
	}
	return nil
}

func sameCols(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// --- Node iterators ---

func (n *scanNode) open(run *planRun) relation.Iterator {
	b := run.scans[n]
	var src relation.Iterator
	if b.ix != nil {
		src = relation.NewSliceIterator(b.ix.Lookup(n.idxVals))
	} else {
		src = relation.NewSliceIterator(b.rows)
	}
	return relation.Select(run.counted(src), n.conds)
}

func (n *joinNode) open(run *planRun) relation.Iterator {
	left := run.counted(n.left.open(run))
	right := run.counted(n.right.open(run))
	if len(n.eq) > 0 {
		it := relation.HashJoin(left, right, n.eq)
		if len(n.post) > 0 {
			it = relation.Select(it, n.post)
		}
		return it
	}
	return relation.NestedLoopJoin(left, right, n.left.Schema().Arity(), n.post)
}

func (n *projectNode) open(run *planRun) relation.Iterator {
	in := n.child.open(run)
	if n.counted {
		in = run.counted(in)
	}
	return relation.Project(in, n.cols)
}

func (n *filterNode) open(run *planRun) relation.Iterator {
	return relation.Select(run.counted(n.child.open(run)), n.conds)
}

func (n *aggNode) open(run *planRun) relation.Iterator {
	rows := relation.Aggregate(run.counted(n.child.open(run)), n.groupCols, n.specs)
	return relation.NewSliceIterator(rows)
}

func (n *sortNode) open(run *planRun) relation.Iterator {
	in := run.counted(n.child.open(run))
	if n.limit >= 0 {
		return relation.NewSliceIterator(relation.TopN(in, n.cols, n.limit))
	}
	var rows []relation.Tuple
	for {
		t, ok := in.Next()
		if !ok {
			break
		}
		rows = append(rows, t)
	}
	sort.SliceStable(rows, func(i, j int) bool {
		for _, c := range n.cols {
			switch rows[i][c].Compare(rows[j][c]) {
			case -1:
				return true
			case 1:
				return false
			}
		}
		return false
	})
	return relation.NewSliceIterator(rows)
}

func (n *distinctNode) open(run *planRun) relation.Iterator {
	return relation.Distinct(run.counted(n.child.open(run)))
}

func (n *limitNode) open(run *planRun) relation.Iterator {
	return relation.Limit(n.child.open(run), n.n)
}

// PlanStream executes a bound plan as a pull stream: Next drives the
// iterator tree directly, so a consumer sees the first tuple as soon as the
// plan's blocking prefix allows — no full materialization. It implements
// EngineStream alongside ScanStream.
type PlanStream struct {
	plan *Plan
	run  *planRun
	it   relation.Iterator
}

// Schema returns the result schema.
func (s *PlanStream) Schema() *relation.Schema { return s.plan.schema }

// Name returns the result relation name.
func (s *PlanStream) Name() string { return "result" }

// Ops returns the server-side tuple operations performed so far.
func (s *PlanStream) Ops() int64 { return s.run.ops }

// Plan returns the compiled plan backing this stream.
func (s *PlanStream) Plan() *Plan { return s.plan }

// Next returns the next result tuple. The iterator tree is built on the
// first call; hash-join builds and sorts run then.
func (s *PlanStream) Next() (relation.Tuple, bool) {
	if s.it == nil {
		s.it = s.plan.root.open(s.run)
	}
	return s.it.Next()
}

// planFor returns the cached plan for sel, compiling (and caching) it on a
// miss. Stale-epoch entries count as misses.
func (e *Engine) planFor(sel *SelectStmt) (*Plan, error) {
	key := StatementHash(sel.String())
	if p := e.plans.get(key, e.epoch.Load()); p != nil {
		e.planHits.Add(1)
		return p, nil
	}
	e.planMisses.Add(1)
	p, err := e.buildPlan(sel)
	if err != nil {
		return nil, err
	}
	p.key = key
	e.plans.put(key, p)
	return p, nil
}

// PlanForSQL compiles (or fetches from the plan cache) the plan for a
// SELECT statement without executing it. It is the programmatic face of
// EXPLAIN: experiments and tooling use it to read the optimizer's cost
// estimate and plan shape.
func (e *Engine) PlanForSQL(src string) (*Plan, error) {
	st, err := ParseSQL(src)
	if err != nil {
		return nil, err
	}
	if st.Select == nil {
		return nil, errNotSelect
	}
	return e.planFor(st.Select)
}

// openPlan fetches-or-builds the plan for sel and binds it to the live
// catalog, replanning when a concurrent mutation raced the bind.
func (e *Engine) openPlan(sel *SelectStmt) (*PlanStream, error) {
	for attempt := 0; ; attempt++ {
		p, err := e.planFor(sel)
		if err != nil {
			return nil, err
		}
		ps, err := p.open(e)
		if err == errPlanStale && attempt < 4 {
			e.plans.remove(p.key)
			continue
		}
		if err != nil {
			return nil, err
		}
		return ps, nil
	}
}

// executeSelectPlanned runs a SELECT through the cost-based planner and
// materializes the streamed result (the Execute API returns whole
// relations; the v2 wire path streams the PlanStream directly).
func (e *Engine) executeSelectPlanned(sel *SelectStmt) (*relation.Relation, int64, error) {
	ps, err := e.openPlan(sel)
	if err != nil {
		return nil, 0, err
	}
	rel := relation.Drain("result", ps.Schema(), ps)
	return rel, ps.Ops(), nil
}
