package remotedb

import (
	"context"
	"sort"
	"time"

	"repro/internal/relation"
)

// Plan execution. A Plan is a reusable template; each execution gets a
// planRun holding the base-table snapshots bound under the engine lock and
// the server-op counter. The iterator tree itself is built lazily on the
// first pull (outside the lock — snapshots are immutable), so opening a
// stream is cheap and first-tuple latency pays only for the blocking prefix
// (hash-join builds, sorts, aggregation) the plan actually contains.

// planRun is the per-execution state of a plan.
type planRun struct {
	ops   int64
	scans map[*scanNode]scanBinding
	// morsel is the scan split granularity; stall, when non-zero, is the
	// simulated per-morsel fetch latency (Engine.SetMorselStall) experiments
	// use as a service-time model. The serial scan pays the same stall per
	// morselful of examined rows as a parallel worker pays per claimed
	// morsel, so measured speedups isolate genuine overlap.
	morsel int
	stall  time.Duration
	// analyze, when non-nil, collects per-node actuals (rows emitted,
	// inclusive wall time, scan rows examined) for EXPLAIN ANALYZE. It is nil
	// on ordinary executions, so the hot path pays nothing.
	analyze map[planNode]*nodeActual
}

// nodeActual is what one plan node actually did during an analyzed run.
type nodeActual struct {
	rows     int64 // tuples the node emitted
	examined int64 // scan only: snapshot/index rows read before filtering
	wallNS   int64 // inclusive wall time (open + pulls, children included)
}

// actualFor returns (allocating) the node's actuals; nil when not analyzing.
func (run *planRun) actualFor(n planNode) *nodeActual {
	if run.analyze == nil {
		return nil
	}
	na := run.analyze[n]
	if na == nil {
		na = &nodeActual{}
		run.analyze[n] = na
	}
	return na
}

// scanBinding is a scan's snapshot of the live catalog: the table extension
// and, for an index access path, the index (nil when it has been
// invalidated — the scan then falls back to filtering the full extension,
// which is always correct because the scan's conds include the equality
// predicates the index served).
type scanBinding struct {
	rows []relation.Tuple
	ix   *relation.Index
}

// counted wraps an iterator so every pulled tuple counts as one server-side
// operation, the unit the virtual cost model charges.
func (run *planRun) counted(in relation.Iterator) relation.Iterator {
	return relation.IteratorFunc(func() (relation.Tuple, bool) {
		t, ok := in.Next()
		if ok {
			run.ops++
		}
		return t, ok
	})
}

// openNode opens a node's iterator, and — when analyzing — times the open
// (where blocking operators do their work) and wraps the iterator so emitted
// rows and pull time accrue to the node. Wall times are inclusive of
// children, PostgreSQL-style.
func (run *planRun) openNode(n planNode) relation.Iterator {
	if run.analyze == nil {
		return n.open(run)
	}
	na := run.actualFor(n)
	t0 := time.Now()
	it := n.open(run)
	na.wallNS += time.Since(t0).Nanoseconds()
	return relation.IteratorFunc(func() (relation.Tuple, bool) {
		p0 := time.Now()
		t, ok := it.Next()
		na.wallNS += time.Since(p0).Nanoseconds()
		if ok {
			na.rows++
		}
		return t, ok
	})
}

// open binds the plan to the live catalog. With analyze set, the run records
// per-node actuals. It fails with errPlanStale when the catalog epoch moved
// past the plan (the caller drops the cache entry and replans). When the plan
// has a parallel section and the open-time DOP decision picks parallelism,
// the stream carries a parExec; otherwise it runs the ordinary serial tree.
func (p *Plan) open(ctx context.Context, e *Engine, analyze bool) (*PlanStream, error) {
	run := &planRun{
		scans:  make(map[*scanNode]scanBinding),
		morsel: e.MorselSize(),
		stall:  e.MorselStall(),
	}
	if analyze {
		run.analyze = make(map[planNode]*nodeActual)
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.epoch.Load() != p.epoch {
		return nil, errPlanStale
	}
	if err := bindScans(p.root, e, run); err != nil {
		return nil, err
	}
	ps := &PlanStream{plan: p, run: run}
	if p.par != nil {
		if dop := e.planDOP(p); dop > 1 {
			if ctx == nil {
				ctx = context.Background()
			}
			pctx, cancel := context.WithCancel(ctx)
			ps.par = &parExec{
				e: e, plan: p, run: run, sec: p.par,
				dop: dop, morsel: run.morsel, stall: run.stall,
				ctx: pctx, cancel: cancel,
			}
		} else {
			e.parFallbacks.Add(1)
		}
	}
	return ps, nil
}

func bindScans(n planNode, e *Engine, run *planRun) error {
	if sn, ok := n.(*scanNode); ok {
		t, ok := e.tables[sn.table]
		if !ok {
			return errPlanStale
		}
		b := scanBinding{rows: t.Tuples()}
		if len(sn.idxCols) > 0 {
			for _, ix := range e.indexes[sn.table] {
				if sameCols(ix.Cols(), sn.idxCols) {
					b.ix = ix
					break
				}
			}
		}
		run.scans[sn] = b
		return nil
	}
	for _, c := range n.children() {
		if err := bindScans(c, e, run); err != nil {
			return err
		}
	}
	return nil
}

func sameCols(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// --- Node iterators ---

func (n *scanNode) open(run *planRun) relation.Iterator {
	b := run.scans[n]
	var src relation.Iterator
	if b.ix != nil {
		src = relation.NewSliceIterator(b.ix.Lookup(n.idxVals))
	} else {
		src = relation.NewSliceIterator(b.rows)
	}
	if run.stall > 0 {
		// Serial arm of the experiment service-time model: one simulated fetch
		// stall per morselful of examined rows, the same total a parallel run
		// pays across its workers (one stall per claimed morsel).
		inner, n := src, 0
		src = relation.IteratorFunc(func() (relation.Tuple, bool) {
			t, ok := inner.Next()
			if ok {
				if n%run.morsel == 0 {
					time.Sleep(run.stall)
				}
				n++
			}
			return t, ok
		})
	}
	src = run.counted(src)
	if na := run.actualFor(n); na != nil {
		inner := src
		src = relation.IteratorFunc(func() (relation.Tuple, bool) {
			t, ok := inner.Next()
			if ok {
				na.examined++
			}
			return t, ok
		})
	}
	return relation.Select(src, n.conds)
}

func (n *joinNode) open(run *planRun) relation.Iterator {
	left := run.counted(run.openNode(n.left))
	right := run.counted(run.openNode(n.right))
	if len(n.eq) > 0 {
		it := relation.HashJoin(left, right, n.eq)
		if len(n.post) > 0 {
			it = relation.Select(it, n.post)
		}
		return it
	}
	return relation.NestedLoopJoin(left, right, n.left.Schema().Arity(), n.post)
}

func (n *projectNode) open(run *planRun) relation.Iterator {
	in := run.openNode(n.child)
	if n.counted {
		in = run.counted(in)
	}
	return relation.Project(in, n.cols)
}

func (n *filterNode) open(run *planRun) relation.Iterator {
	return relation.Select(run.counted(run.openNode(n.child)), n.conds)
}

func (n *aggNode) open(run *planRun) relation.Iterator {
	rows := relation.Aggregate(run.counted(run.openNode(n.child)), n.groupCols, n.specs)
	return relation.NewSliceIterator(rows)
}

func (n *sortNode) open(run *planRun) relation.Iterator {
	return n.openOn(run.counted(run.openNode(n.child)))
}

// openOn runs the sort over an explicit input iterator; the parallel
// consumer chain substitutes the exchange here.
func (n *sortNode) openOn(in relation.Iterator) relation.Iterator {
	if n.limit >= 0 {
		return relation.NewSliceIterator(relation.TopN(in, n.cols, n.limit))
	}
	var rows []relation.Tuple
	for {
		t, ok := in.Next()
		if !ok {
			break
		}
		rows = append(rows, t)
	}
	sort.SliceStable(rows, func(i, j int) bool {
		for _, c := range n.cols {
			switch rows[i][c].Compare(rows[j][c]) {
			case -1:
				return true
			case 1:
				return false
			}
		}
		return false
	})
	return relation.NewSliceIterator(rows)
}

func (n *distinctNode) open(run *planRun) relation.Iterator {
	return n.openOn(run.counted(run.openNode(n.child)))
}

func (n *distinctNode) openOn(in relation.Iterator) relation.Iterator {
	return relation.Distinct(in)
}

func (n *limitNode) open(run *planRun) relation.Iterator {
	return n.openOn(run.openNode(n.child))
}

func (n *limitNode) openOn(in relation.Iterator) relation.Iterator {
	return relation.Limit(in, n.n)
}

// PlanStream executes a bound plan as a pull stream: Next drives the
// iterator tree directly, so a consumer sees the first tuple as soon as the
// plan's blocking prefix allows — no full materialization. It implements
// EngineStream alongside ScanStream.
type PlanStream struct {
	plan   *Plan
	run    *planRun
	it     relation.Iterator
	cached bool // the plan came out of the plan cache (slow-query log field)
	// par, when non-nil, executes the plan's parallel section on a morsel
	// worker pool (plan_parallel.go); nil means the ordinary serial tree.
	par *parExec
}

// Schema returns the result schema.
func (s *PlanStream) Schema() *relation.Schema { return s.plan.schema }

// Name returns the result relation name.
func (s *PlanStream) Name() string { return "result" }

// Ops returns the server-side tuple operations performed so far (for a
// parallel run: the consumer chain's plus every finished worker's).
func (s *PlanStream) Ops() int64 {
	if s.par != nil {
		return s.run.ops + s.par.ops()
	}
	return s.run.ops
}

// Plan returns the compiled plan backing this stream.
func (s *PlanStream) Plan() *Plan { return s.plan }

// Cached reports whether the plan was served from the plan cache.
func (s *PlanStream) Cached() bool { return s.cached }

// Next returns the next result tuple. The iterator tree is built on the
// first call; hash-join builds and sorts run then.
func (s *PlanStream) Next() (relation.Tuple, bool) {
	if s.par != nil {
		return s.par.next()
	}
	if s.it == nil {
		s.it = s.run.openNode(s.plan.root)
	}
	return s.it.Next()
}

// Err reports why the stream stopped before delivering every tuple — a
// cancellation observed at a worker checkpoint, for a parallel run — or nil
// for a complete result. Consumers that drain a PlanStream must check Err
// before treating the result as complete: parallel streams carry no resume
// token, so this is what keeps an interrupted run from reading as a
// silently truncated one.
func (s *PlanStream) Err() error {
	if s.par != nil {
		return s.par.err()
	}
	return nil
}

// DOP returns the degree of parallelism the stream executes with (1 for the
// serial tree).
func (s *PlanStream) DOP() int {
	if s.par != nil {
		return s.par.dop
	}
	return 1
}

// Close releases the stream's resources. For a parallel run it cancels and
// joins every morsel worker — abandoning a partially-drained stream leaks no
// goroutines. Serial streams have nothing to release. Idempotent.
func (s *PlanStream) Close() error {
	if s.par != nil {
		s.par.shutdown()
	}
	return nil
}

// planFor returns the cached plan for sel, compiling (and caching) it on a
// miss. Stale-epoch entries count as misses. hit reports a cache hit (the
// slow-query log and EXPLAIN ANALYZE header surface it).
func (e *Engine) planFor(ctx context.Context, sel *SelectStmt) (p *Plan, hit bool, err error) {
	_, probe := e.tracer.Load().Start(ctx, "engine.plancache")
	key := StatementHash(sel.String())
	if p := e.plans.get(key, e.epoch.Load()); p != nil {
		e.planHits.Add(1)
		probe.Set("hit", "true")
		probe.End()
		return p, true, nil
	}
	e.planMisses.Add(1)
	probe.Set("hit", "false")
	probe.End()
	_, opt := e.tracer.Load().Start(ctx, "engine.optimize")
	p, err = e.buildPlan(sel)
	opt.End()
	if err != nil {
		return nil, false, err
	}
	p.key = key
	e.plans.put(key, p)
	return p, false, nil
}

// PlanForSQL compiles (or fetches from the plan cache) the plan for a
// SELECT statement without executing it. It is the programmatic face of
// EXPLAIN: experiments and tooling use it to read the optimizer's cost
// estimate and plan shape.
func (e *Engine) PlanForSQL(src string) (*Plan, error) {
	st, err := ParseSQL(src)
	if err != nil {
		return nil, err
	}
	if st.Select == nil {
		return nil, errNotSelect
	}
	p, _, err := e.planFor(context.Background(), st.Select)
	return p, err
}

// openPlan fetches-or-builds the plan for sel and binds it to the live
// catalog, replanning when a concurrent mutation raced the bind. With
// analyze set the returned stream records per-node actuals.
func (e *Engine) openPlan(ctx context.Context, sel *SelectStmt, analyze bool) (*PlanStream, error) {
	for attempt := 0; ; attempt++ {
		p, hit, err := e.planFor(ctx, sel)
		if err != nil {
			return nil, err
		}
		ps, err := p.open(ctx, e, analyze)
		if err == errPlanStale && attempt < 4 {
			e.plans.remove(p.key)
			continue
		}
		if err != nil {
			return nil, err
		}
		ps.cached = hit
		return ps, nil
	}
}

// executeSelectPlanned runs a SELECT through the cost-based planner and
// materializes the streamed result (the Execute API returns whole
// relations; the v2 wire path streams the PlanStream directly).
func (e *Engine) executeSelectPlanned(ctx context.Context, sel *SelectStmt) (*relation.Relation, int64, error) {
	ps, err := e.openPlan(ctx, sel, false)
	if err != nil {
		return nil, 0, err
	}
	defer ps.Close()
	rel := relation.Drain("result", ps.Schema(), ps)
	if err := ps.Err(); err != nil {
		return nil, 0, err
	}
	return rel, ps.Ops(), nil
}
