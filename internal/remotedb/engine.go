package remotedb

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/relation"
)

// Engine is the remote DBMS proper: a thread-safe store of base relations
// with a conjunctive select-project-join executor, hash indexes, and catalog
// statistics. It is deliberately a *conventional* engine: it supports only
// its SQL subset, keeping the "the remote DBMS does not support all CAQL
// operations, but the CMS does" asymmetry of Section 5.3.3(d).
type Engine struct {
	mu      sync.RWMutex
	tables  map[string]*relation.Relation
	indexes map[string][]*relation.Index
	// versions tracks each table's extension version for stream resume
	// tokens: every durable mutation of a table — replacement AND append —
	// bumps it, invalidating outstanding tokens. An in-flight stream's
	// captured snapshot stays byte-stable regardless (the relation
	// representation is append-only), but a token minted against the
	// pre-mutation extension is refused rather than silently resumed against
	// a different table state; the client-side-skip fallback re-reads the
	// (identical) prefix instead.
	versions map[string]uint64
	// meta holds per-table column statistics (NDV, min/max), maintained at
	// CreateTable/LoadTable/Insert for the cost-based optimizer.
	meta map[string]*tableMeta

	// epoch is the catalog generation: any DDL/DML that could change a
	// cached plan's validity (new rows shift statistics and invalidate
	// indexes; new indexes open access paths) bumps it, and plan-cache
	// lookups require an exact match.
	epoch atomic.Uint64
	// noOpt disables the cost-based planner, routing every SELECT through
	// the naive materializing executor (SetOptimizer; the experiments'
	// control arm).
	noOpt      atomic.Bool
	plans      *planCache
	planHits   atomic.Int64
	planMisses atomic.Int64

	// tracer records engine-side spans (plan-cache probe, optimize, execute).
	// Nil (the default) disables tracing at near-zero cost; the atomic
	// pointer lets a server install it after construction without a lock.
	tracer atomic.Pointer[obs.Tracer]

	// wal, when non-nil, makes every mutation durable: each is logged (and
	// synced per the fsync policy) BEFORE it is applied in memory, so an
	// acknowledged write is on disk by the time its reply leaves the engine.
	// Guarded by mu, like the catalog it protects.
	wal *WAL
	// walErr is the sticky durability failure: once an append or rotation
	// fails, every subsequent mutation returns it rather than silently
	// diverging memory from the log. Guarded by mu.
	walErr error

	// Morsel-driven parallel execution knobs (plan_parallel.go). parallelism
	// is the worker-pool bound for eligible plans (<= 1: serial); parMinRows
	// is the optimizer's cost threshold — a plan whose driver scan is
	// estimated below it stays serial, so tiny inputs never pay fan-out
	// overhead; morselSize is the scan split granularity (and the chunk at
	// which the simulated per-morsel stall applies on the serial path).
	parallelism atomic.Int32
	parMinRows  atomic.Int64
	morselSize  atomic.Int64
	// morselStall is the per-morsel service-time model for experiments
	// (E19), the same device E14 used for pooled QPS: each morsel charges a
	// fixed simulated fetch latency on whichever executor reads it, so DOP
	// scaling is measurable on any machine. Zero (the default) disables it.
	morselStall atomic.Int64

	// Parallel-execution counters (read-through metrics + ParallelStats).
	parStreams   atomic.Int64 // executions that ran morsel-parallel
	parMorselsCt atomic.Int64 // morsels dispatched to workers
	parWorkerRt  atomic.Int64 // worker goroutines launched
	parFallbacks atomic.Int64 // eligible plans that chose serial at open
}

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	e := &Engine{
		tables:   make(map[string]*relation.Relation),
		indexes:  make(map[string][]*relation.Index),
		versions: make(map[string]uint64),
		meta:     make(map[string]*tableMeta),
		plans:    newPlanCache(planCacheCap),
	}
	e.parallelism.Store(int32(runtime.NumCPU()))
	e.parMinRows.Store(parDefaultMinRows)
	e.morselSize.Store(defaultMorselTuples)
	return e
}

// SetTracer installs (or, with nil, removes) the tracer recording
// engine-side spans. Safe to call while the engine serves queries.
func (e *Engine) SetTracer(t *obs.Tracer) { e.tracer.Store(t) }

// SetOptimizer toggles the cost-based planner. It is on by default; off, the
// engine executes every SELECT with the naive materializing executor (the
// unoptimized baseline the golden parity suite and experiment E16 compare
// against).
func (e *Engine) SetOptimizer(on bool) { e.noOpt.Store(!on) }

// OptimizerEnabled reports whether the cost-based planner is active.
func (e *Engine) OptimizerEnabled() bool { return !e.noOpt.Load() }

// SetParallelism bounds the morsel-execution worker pool for eligible plans.
// Values <= 1 force serial execution. The default is runtime.NumCPU(). Safe
// to call while the engine serves queries; cached plans pick the new degree
// up at their next open.
func (e *Engine) SetParallelism(n int) { e.parallelism.Store(int32(n)) }

// Parallelism returns the configured worker-pool bound.
func (e *Engine) Parallelism() int { return int(e.parallelism.Load()) }

// SetParallelMinRows sets the optimizer's serial/parallel cost threshold: a
// plan whose driver scan is estimated to read fewer rows stays serial, so
// small inputs never pay worker fan-out for work one goroutine finishes
// first. Tests and experiments lower it to force the parallel path on small
// corpora.
func (e *Engine) SetParallelMinRows(n int64) { e.parMinRows.Store(n) }

// ParallelMinRows returns the serial/parallel row threshold.
func (e *Engine) ParallelMinRows() int64 { return e.parMinRows.Load() }

// SetMorselSize sets the scan split granularity in tuples (<= 0 restores the
// default). Smaller morsels improve load balance and cancellation latency at
// the cost of more dispatch operations.
func (e *Engine) SetMorselSize(n int) {
	if n <= 0 {
		n = defaultMorselTuples
	}
	e.morselSize.Store(int64(n))
}

// MorselSize returns the scan split granularity in tuples.
func (e *Engine) MorselSize() int { return int(e.morselSize.Load()) }

// SetMorselStall installs the experiment service-time model: every morsel of
// base-table rows charges d of simulated fetch latency on whichever executor
// reads it — the serial scan sleeps per morselSize rows, parallel workers
// sleep per claimed morsel — so both arms of a DOP sweep pay identical total
// stall and the measured speedup is genuine overlap (E19; the analogue of
// E14's 1ms service-time model). Zero disables it; production paths never
// set it.
func (e *Engine) SetMorselStall(d time.Duration) { e.morselStall.Store(int64(d)) }

// MorselStall returns the per-morsel simulated fetch latency.
func (e *Engine) MorselStall() time.Duration { return time.Duration(e.morselStall.Load()) }

// ParallelStats are cumulative morsel-execution counters.
type ParallelStats struct {
	Streams         int64 // executions that ran morsel-parallel
	Morsels         int64 // morsels dispatched to workers
	Workers         int64 // worker goroutines launched
	SerialFallbacks int64 // eligible plans that chose serial at open time
}

// ParallelStats returns the cumulative morsel-execution counters.
func (e *Engine) ParallelStats() ParallelStats {
	return ParallelStats{
		Streams:         e.parStreams.Load(),
		Morsels:         e.parMorselsCt.Load(),
		Workers:         e.parWorkerRt.Load(),
		SerialFallbacks: e.parFallbacks.Load(),
	}
}

// Epoch returns the current catalog generation. It rides wire responses so
// clients (and through them the CMS) can detect that the backend has moved
// past the state their cached views were built from.
func (e *Engine) Epoch() uint64 { return e.epoch.Load() }

// logLocked appends one record to the WAL (a no-op for in-memory engines).
// A failure is sticky: the engine refuses all further mutations rather than
// let memory diverge from the log. Called with e.mu held.
func (e *Engine) logLocked(rec *walRecord) error {
	if e.walErr != nil {
		return e.walErr
	}
	if e.wal == nil {
		return nil
	}
	if err := e.wal.Append(rec); err != nil {
		e.walErr = err
		return err
	}
	return nil
}

// rotateLocked rotates the WAL behind a full-state checkpoint once the live
// segment outgrows its budget. Called with e.mu held, after a successful
// mutation, so the snapshot is consistent with the log tail.
func (e *Engine) rotateLocked() {
	if e.wal == nil || e.walErr != nil || !e.wal.shouldRotate() {
		return
	}
	if err := e.wal.Rotate(e.checkpointLocked()); err != nil {
		e.walErr = err
	}
}

// checkpointLocked snapshots the full engine state for a checkpoint file.
func (e *Engine) checkpointLocked() *walCheckpoint {
	ck := &walCheckpoint{
		Epoch:    e.epoch.Load(),
		Versions: make(map[string]uint64, len(e.versions)),
		Indexes:  make(map[string][][]int),
	}
	for n, v := range e.versions {
		ck.Versions[n] = v
	}
	names := make([]string, 0, len(e.tables))
	for n := range e.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		ck.Tables = append(ck.Tables, toWireRelation(e.tables[n]))
	}
	for n, ixs := range e.indexes {
		for _, ix := range ixs {
			ck.Indexes[n] = append(ck.Indexes[n], ix.Cols())
		}
	}
	return ck
}

// WALStats returns the engine's WAL counters (zero for in-memory engines).
func (e *Engine) WALStats() WALStats {
	e.mu.RLock()
	w := e.wal
	e.mu.RUnlock()
	if w == nil {
		return WALStats{}
	}
	return w.Stats()
}

// CloseWAL syncs and closes the WAL (a no-op for in-memory engines). The
// engine keeps serving reads; further mutations fail.
func (e *Engine) CloseWAL() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.wal == nil {
		return nil
	}
	err := e.wal.Close()
	if e.walErr == nil {
		e.walErr = fmt.Errorf("remotedb: wal closed")
	}
	return err
}

// CreateTable registers an empty table.
func (e *Engine) CreateTable(name string, schema *relation.Schema) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.tables[name]; dup {
		return fmt.Errorf("remotedb: table %s already exists", name)
	}
	attrs := make([]wireAttr, 0, schema.Arity())
	for _, a := range schema.Attrs() {
		attrs = append(attrs, wireAttr{Name: a.Name, Kind: uint8(a.Kind)})
	}
	if err := e.logLocked(&walRecord{Kind: walCreateTable, Name: name, Attrs: attrs}); err != nil {
		return err
	}
	e.applyCreateTable(name, schema)
	e.rotateLocked()
	return nil
}

func (e *Engine) applyCreateTable(name string, schema *relation.Schema) {
	e.tables[name] = relation.New(name, schema)
	e.versions[name]++
	e.meta[name] = newTableMeta(schema.Arity())
	e.epoch.Add(1)
}

// LoadTable registers a table with its extension (replacing any previous
// definition); a bulk-load convenience for workload generators. On a durable
// engine a WAL failure leaves the table unchanged and surfaces as the sticky
// error on the next erroring mutation (the signature predates durability and
// its twenty-odd callers are bulk loaders that check nothing).
func (e *Engine) LoadTable(r *relation.Relation) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.logLocked(&walRecord{Kind: walLoadTable, Rel: toWireRelation(r)}); err != nil {
		return
	}
	e.applyLoadTable(r)
	e.rotateLocked()
}

func (e *Engine) applyLoadTable(r *relation.Relation) {
	e.tables[r.Name] = r
	delete(e.indexes, r.Name)
	e.versions[r.Name]++
	e.meta[r.Name] = buildTableMeta(r)
	e.epoch.Add(1)
}

// Insert appends rows to a table, validating kinds (ints coerce to float
// columns). Validation happens before logging: a rejected batch mutates
// nothing — not the table, not the epoch, not the log.
func (e *Engine) Insert(table string, rows []relation.Tuple) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.tables[table]
	if !ok {
		return fmt.Errorf("remotedb: unknown table %s", table)
	}
	schema := t.Schema()
	coerced := make([]relation.Tuple, len(rows))
	for r, row := range rows {
		if len(row) != schema.Arity() {
			return fmt.Errorf("remotedb: insert arity %d into %s%s", len(row), table, schema)
		}
		crow := make(relation.Tuple, len(row))
		for i, v := range row {
			cv, err := coerce(v, schema.Attr(i).Kind)
			if err != nil {
				return fmt.Errorf("remotedb: column %s of %s: %w", schema.Attr(i).Name, table, err)
			}
			crow[i] = cv
		}
		coerced[r] = crow
	}
	if err := e.logLocked(&walRecord{Kind: walInsert, Name: table, Rows: toWireTuples(coerced)}); err != nil {
		return err
	}
	e.applyInsert(table, coerced)
	e.rotateLocked()
	return nil
}

// applyInsert applies pre-validated rows. The whole batch lands under one
// mutex hold and one WAL record: concurrent readers (and crash recovery) see
// all of it or none of it, never a half-applied batch.
func (e *Engine) applyInsert(table string, rows []relation.Tuple) {
	t := e.tables[table]
	m := e.meta[table]
	for _, row := range rows {
		t.MustAppend(row)
		if m != nil {
			m.addRow(row)
		}
	}
	delete(e.indexes, table) // indexes are snapshots; invalidate
	e.versions[table]++      // a durable append invalidates outstanding resume tokens
	e.epoch.Add(1)
}

func coerce(v relation.Value, kind relation.Kind) (relation.Value, error) {
	if v.IsNull() || v.Kind() == kind {
		return v, nil
	}
	if v.Kind() == relation.KindInt && kind == relation.KindFloat {
		return relation.Float(v.AsFloat()), nil
	}
	return relation.Value{}, fmt.Errorf("kind %s does not fit column kind %s", v.Kind(), kind)
}

// CreateIndex builds a hash index on the given columns of a table. The
// executor uses it for equality selections.
func (e *Engine) CreateIndex(table string, cols []int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.tables[table]; !ok {
		return fmt.Errorf("remotedb: unknown table %s", table)
	}
	if err := e.logLocked(&walRecord{Kind: walCreateIndex, Name: table, Cols: cols}); err != nil {
		return err
	}
	e.applyCreateIndex(table, cols)
	e.rotateLocked()
	return nil
}

func (e *Engine) applyCreateIndex(table string, cols []int) {
	e.indexes[table] = append(e.indexes[table], relation.BuildIndex(e.tables[table], cols))
	e.epoch.Add(1)
}

// applyRestart is the walRestart record's effect: every table version (and
// the epoch) moves past anything the pre-crash engine handed out, so resume
// tokens and cached-plan epochs from before the crash are refused durably —
// across any number of crash/recover cycles, because the record itself is in
// the log.
func (e *Engine) applyRestart() {
	for name := range e.versions {
		e.versions[name]++
	}
	e.epoch.Add(1)
}

// Tables returns the table names, sorted.
func (e *Engine) Tables() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.tables))
	for n := range e.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Schema returns the schema of the named table.
func (e *Engine) Schema(name string) (*relation.Schema, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.tables[name]
	if !ok {
		return nil, fmt.Errorf("remotedb: unknown table %s", name)
	}
	return t.Schema(), nil
}

// TableStats carries the catalog statistics the IE's problem-graph shaper
// consumes ("cardinality and selectivity information from the DBMS schema",
// Section 4.1).
type TableStats struct {
	Rows     int
	Distinct []int // per-column distinct value counts
}

// Stats computes catalog statistics for a table. When the maintained
// per-column accumulators (stats.go) are exact they are served in O(columns);
// the full-scan fallback covers saturated NDV tracking and relations mutated
// behind the engine's back.
func (e *Engine) Stats(name string) (TableStats, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.tables[name]
	if !ok {
		return TableStats{}, fmt.Errorf("remotedb: unknown table %s", name)
	}
	if m := e.meta[name]; m.exact(t.Len()) {
		st := TableStats{Rows: m.rows, Distinct: make([]int, len(m.cols))}
		for i := range m.cols {
			st.Distinct[i] = len(m.cols[i].seen)
		}
		return st, nil
	}
	st := TableStats{Rows: t.Len(), Distinct: make([]int, t.Schema().Arity())}
	for c := 0; c < t.Schema().Arity(); c++ {
		seen := make(map[string]bool)
		for _, tu := range t.Tuples() {
			seen[tu[c].Key()] = true
		}
		st.Distinct[c] = len(seen)
	}
	return st, nil
}

// Execute runs a parsed statement, returning the result relation (nil for
// DDL/DML) and the number of server-side tuple operations performed (the
// cost-model input).
func (e *Engine) Execute(st *Statement) (*relation.Relation, int64, error) {
	return e.ExecuteCtx(context.Background(), st)
}

// ExecuteCtx is Execute with a context: engine spans started here parent
// under the caller's span (or join a trace ID adopted from the wire).
func (e *Engine) ExecuteCtx(ctx context.Context, st *Statement) (*relation.Relation, int64, error) {
	switch {
	case st.Create != nil:
		return nil, 1, e.CreateTable(st.Create.Table, st.Create.Schema)
	case st.Insert != nil:
		return nil, int64(len(st.Insert.Rows)), e.Insert(st.Insert.Table, st.Insert.Rows)
	case st.Select != nil:
		if st.Explain {
			if st.Analyze {
				return e.explainAnalyzeSelect(ctx, st.Select)
			}
			return e.explainSelect(st.Select)
		}
		return e.executeSelect(ctx, st.Select)
	default:
		return nil, 0, fmt.Errorf("remotedb: empty statement")
	}
}

// ExecuteSQL parses and runs a statement.
func (e *Engine) ExecuteSQL(src string) (*relation.Relation, int64, error) {
	return e.ExecuteSQLCtx(context.Background(), src)
}

// ExecuteSQLCtx parses and runs a statement under ctx (span parenting and
// wire-adopted trace IDs flow through).
func (e *Engine) ExecuteSQLCtx(ctx context.Context, src string) (*relation.Relation, int64, error) {
	ctx, bind := e.tracer.Load().Start(ctx, "engine.bind")
	st, err := ParseSQL(src)
	bind.End()
	if err != nil {
		return nil, 0, err
	}
	return e.ExecuteCtx(ctx, st)
}

// executeSelect dispatches a SELECT: through the cost-based planner when the
// optimizer is on (plan cache, predicate pushdown, join reordering —
// optimizer.go), or through the naive materializing executor when it is off.
func (e *Engine) executeSelect(ctx context.Context, sel *SelectStmt) (*relation.Relation, int64, error) {
	ctx, sp := e.tracer.Load().Start(ctx, "engine.execute")
	defer sp.End()
	if e.OptimizerEnabled() {
		return e.executeSelectPlanned(ctx, sel)
	}
	return e.executeSelectNaive(sel)
}

// selScope is the resolved FROM/WHERE of one SELECT: alias bindings plus the
// WHERE conjuncts classified into per-alias filters, index-usable equality
// constants, and cross-alias conditions. The naive executor and the planner
// share it so both report identical resolution errors.
type selScope struct {
	aliases  map[string]*relation.Relation
	order    []string // aliases in FROM order
	perAlias map[string][]relation.Cond
	eqConsts map[string][][2]any // alias -> (col, value) equality pairs, for index use
	cross    []crossCond
}

// crossCond is a WHERE conjunct spanning two aliases.
type crossCond struct {
	la string
	lc int
	op relation.CmpOp
	ra string
	rc int
}

// resolve binds a possibly-qualified column reference to (alias, column).
func (sc *selScope) resolve(c ColRef) (string, int, error) {
	if c.Qualifier != "" {
		t, ok := sc.aliases[c.Qualifier]
		if !ok {
			return "", 0, fmt.Errorf("remotedb: unknown alias %s", c.Qualifier)
		}
		i := t.Schema().ColIndex(c.Column)
		if i < 0 {
			return "", 0, fmt.Errorf("remotedb: no column %s in %s", c.Column, c.Qualifier)
		}
		return c.Qualifier, i, nil
	}
	found := ""
	idx := -1
	for a, t := range sc.aliases {
		if i := t.Schema().ColIndex(c.Column); i >= 0 {
			if found != "" {
				return "", 0, fmt.Errorf("remotedb: ambiguous column %s", c.Column)
			}
			found, idx = a, i
		}
	}
	if found == "" {
		return "", 0, fmt.Errorf("remotedb: unknown column %s", c.Column)
	}
	return found, idx, nil
}

// analyzeSelect resolves the FROM clause and classifies the WHERE conjuncts:
// per-alias (col-const or col-col within one alias) vs cross-alias
// equi-joins and theta residuals. The caller must hold e.mu.
func (e *Engine) analyzeSelect(sel *SelectStmt) (*selScope, error) {
	if len(sel.From) == 0 {
		return nil, fmt.Errorf("remotedb: SELECT without FROM")
	}
	sc := &selScope{
		aliases:  make(map[string]*relation.Relation, len(sel.From)),
		perAlias: make(map[string][]relation.Cond),
		eqConsts: make(map[string][][2]any),
	}
	for _, ref := range sel.From {
		t, ok := e.tables[ref.Table]
		if !ok {
			return nil, fmt.Errorf("remotedb: unknown table %s", ref.Table)
		}
		if _, dup := sc.aliases[ref.Alias]; dup {
			return nil, fmt.Errorf("remotedb: duplicate alias %s", ref.Alias)
		}
		sc.aliases[ref.Alias] = t
		sc.order = append(sc.order, ref.Alias)
	}
	for _, c := range sel.Where {
		la, lc, err := sc.resolve(c.Left)
		if err != nil {
			return nil, err
		}
		if !c.RightIsCol {
			sc.perAlias[la] = append(sc.perAlias[la], relation.ColConst(lc, c.Op, c.RightVal))
			if c.Op == relation.OpEq {
				sc.eqConsts[la] = append(sc.eqConsts[la], [2]any{lc, c.RightVal})
			}
			continue
		}
		ra, rc, err := sc.resolve(c.RightCol)
		if err != nil {
			return nil, err
		}
		if la == ra {
			sc.perAlias[la] = append(sc.perAlias[la], relation.ColCol(lc, c.Op, rc))
			continue
		}
		sc.cross = append(sc.cross, crossCond{la: la, lc: lc, op: c.Op, ra: ra, rc: rc})
	}
	return sc, nil
}

// executeSelectNaive is the unoptimized materializing executor: filter each
// alias (index-aware), join greedily smallest-first, then project, aggregate,
// order, and limit over fully materialized intermediates. It is the semantic
// oracle the golden parity suite holds the planner to, and the optimizer-off
// control arm of experiment E16.
func (e *Engine) executeSelectNaive(sel *SelectStmt) (*relation.Relation, int64, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var ops int64

	scope, err := e.analyzeSelect(sel)
	if err != nil {
		return nil, ops, err
	}
	order := scope.order
	cross := scope.cross
	resolve := scope.resolve

	// Filter each alias's extension, preferring an index when an equality
	// constant condition matches one.
	filtered := make(map[string]*relation.Relation, len(order))
	for _, a := range order {
		base := scope.aliases[a]
		conds := scope.perAlias[a]
		var out *relation.Relation
		if pairs := scope.eqConsts[a]; len(pairs) > 0 {
			if ix := e.findIndex(base.Name, pairs); ix != nil {
				vals := make([]relation.Value, len(ix.Cols()))
				for i, col := range ix.Cols() {
					for _, p := range pairs {
						if p[0].(int) == col {
							vals[i] = p[1].(relation.Value)
						}
					}
				}
				matched := ix.Lookup(vals)
				ops += int64(len(matched))
				out = relation.Drain(base.Name, base.Schema(),
					relation.Select(relation.NewSliceIterator(matched), conds))
				filtered[a] = out
				continue
			}
		}
		ops += int64(base.Len())
		out = relation.SelectRel(base, conds)
		filtered[a] = out
	}

	// Greedy join order: repeatedly join the smallest relation that has an
	// equi-join condition with the current result (or the smallest overall
	// for a cross product when none connects).
	remaining := append([]string(nil), order...)
	sort.SliceStable(remaining, func(i, j int) bool {
		return filtered[remaining[i]].Len() < filtered[remaining[j]].Len()
	})

	// colPos maps alias -> base offset in the wide tuple.
	colPos := make(map[string]int)
	var wide *relation.Relation
	takeConds := func(joined map[string]bool, next string) (eq []relation.JoinCond, later []crossCond) {
		for _, c := range cross {
			switch {
			case joined[c.la] && c.ra == next && c.op == relation.OpEq:
				eq = append(eq, relation.JoinCond{Left: colPos[c.la] + c.lc, Right: c.rc})
			case joined[c.ra] && c.la == next && c.op == relation.OpEq:
				eq = append(eq, relation.JoinCond{Left: colPos[c.ra] + c.rc, Right: c.lc})
			default:
				later = append(later, c)
			}
		}
		return eq, later
	}

	joined := make(map[string]bool)
	for len(remaining) > 0 {
		// Pick next: prefer one connected by an equi-join.
		pick := -1
		if wide != nil {
			for i, a := range remaining {
				for _, c := range cross {
					if (joined[c.la] && c.ra == a || joined[c.ra] && c.la == a) && c.op == relation.OpEq {
						pick = i
						break
					}
				}
				if pick >= 0 {
					break
				}
			}
		}
		if pick < 0 {
			pick = 0
		}
		next := remaining[pick]
		remaining = append(remaining[:pick], remaining[pick+1:]...)
		nextRel := filtered[next]
		if wide == nil {
			wide = nextRel
			colPos[next] = 0
			joined[next] = true
			continue
		}
		eq, later := takeConds(joined, next)
		ops += int64(wide.Len() + nextRel.Len())
		schema := wide.Schema().Concat(nextRel.Schema())
		w := relation.Drain("j", schema, relation.HashJoin(wide.Iter(), nextRel.Iter(), eq))
		colPos[next] = wide.Schema().Arity()
		wide = w
		joined[next] = true
		cross = later
		// Apply any theta conditions now fully available.
		var now []relation.Cond
		var still []crossCond
		for _, c := range cross {
			if joined[c.la] && joined[c.ra] {
				now = append(now, relation.ColCol(colPos[c.la]+c.lc, c.op, colPos[c.ra]+c.rc))
			} else {
				still = append(still, c)
			}
		}
		if len(now) > 0 {
			ops += int64(wide.Len())
			wide = relation.SelectRel(wide, now)
		}
		cross = still
	}
	if len(cross) > 0 {
		// All aliases joined; any remaining conds apply now.
		var now []relation.Cond
		for _, c := range cross {
			now = append(now, relation.ColCol(colPos[c.la]+c.lc, c.op, colPos[c.ra]+c.rc))
		}
		ops += int64(wide.Len())
		wide = relation.SelectRel(wide, now)
	}

	widePos := func(c ColRef) (int, error) {
		a, i, err := resolve(c)
		if err != nil {
			return 0, err
		}
		return colPos[a] + i, nil
	}

	// Aggregation vs plain projection.
	hasAgg := false
	for _, it := range sel.Items {
		if it.IsAgg {
			hasAgg = true
		}
	}
	if hasAgg {
		var groupCols []int
		for _, g := range sel.GroupBy {
			p, err := widePos(g)
			if err != nil {
				return nil, ops, err
			}
			groupCols = append(groupCols, p)
		}
		var specs []relation.AggSpec
		var attrs []relation.Attr
		for _, g := range groupCols {
			attrs = append(attrs, wide.Schema().Attr(g))
		}
		for _, it := range sel.Items {
			if !it.IsAgg {
				continue // non-aggregate items must be group-by columns; they are re-emitted first
			}
			spec := relation.AggSpec{Op: it.Agg, Col: -1}
			if !it.AggStar {
				p, err := widePos(it.Col)
				if err != nil {
					return nil, ops, err
				}
				spec.Col = p
			}
			specs = append(specs, spec)
		}
		ops += int64(wide.Len())
		tuples := relation.Aggregate(wide.Iter(), groupCols, specs)
		for i, s := range specs {
			kind := relation.KindFloat
			if s.Op == relation.AggCount {
				kind = relation.KindInt
			} else if (s.Op == relation.AggMin || s.Op == relation.AggMax) && s.Col >= 0 {
				kind = wide.Schema().Attr(s.Col).Kind
			}
			attrs = append(attrs, relation.Attr{Name: fmt.Sprintf("agg%d", i), Kind: kind})
		}
		result := relation.FromTuples("result", relation.NewSchema(attrs...), tuples)
		if sel.Distinct {
			ops += int64(result.Len())
			result = relation.DistinctRel(result)
		}
		if len(sel.OrderBy) > 0 {
			// An aggregate's ORDER BY resolves against the group output only:
			// sorting its input by a pre-aggregation column is meaningless.
			var cols []int
			for _, c := range sel.OrderBy {
				i := result.Schema().ColIndex(c.Column)
				if i < 0 {
					return nil, ops, fmt.Errorf("remotedb: ORDER BY column %s not in result", c.Column)
				}
				cols = append(cols, i)
			}
			ops += int64(result.Len())
			result.SortBy(cols)
		}
		if sel.Limit >= 0 && result.Len() > sel.Limit {
			result = relation.FromTuples(result.Name, result.Schema(), result.Tuples()[:sel.Limit])
		}
		return result, ops, nil
	}

	// Plain projection.
	var cols []int
	if len(sel.Items) == 1 && sel.Items[0].Star {
		for i := 0; i < wide.Schema().Arity(); i++ {
			cols = append(cols, i)
		}
	} else {
		for _, it := range sel.Items {
			if it.Star {
				return nil, ops, fmt.Errorf("remotedb: * must be the only select item")
			}
			p, err := widePos(it.Col)
			if err != nil {
				return nil, ops, err
			}
			cols = append(cols, p)
		}
	}
	projSchema := wide.Schema().Project(cols)

	// ORDER BY columns resolve against the projection by bare column name;
	// a column the projection dropped instead resolves against the wide
	// (pre-projection) schema, and the sort then runs before projection.
	var sortRes, sortWide []int
	needWide := false
	for _, c := range sel.OrderBy {
		if i := projSchema.ColIndex(c.Column); i >= 0 {
			sortRes = append(sortRes, i)
			sortWide = append(sortWide, cols[i])
			continue
		}
		needWide = true
		p, err := widePos(c)
		if err != nil {
			return nil, ops, err
		}
		sortWide = append(sortWide, p)
	}

	var result *relation.Relation
	if sel.Limit >= 0 && len(sel.OrderBy) == 0 {
		// LIMIT without ORDER BY short-circuits: the lazy pipeline is pulled
		// only until the limit is satisfied instead of materializing the
		// whole result and slicing it.
		pulled := 0
		src := wide.Iter()
		counted := relation.IteratorFunc(func() (relation.Tuple, bool) {
			t, ok := src.Next()
			if ok {
				pulled++
			}
			return t, ok
		})
		var pipe relation.Iterator = relation.Project(counted, cols)
		if sel.Distinct {
			pipe = relation.Distinct(pipe)
		}
		result = relation.Drain("result", projSchema, relation.Limit(pipe, sel.Limit))
		ops += int64(pulled)
		if sel.Distinct {
			ops += int64(result.Len())
		}
		return result, ops, nil
	}
	if needWide {
		ops += int64(wide.Len())
		wide.SortBy(sortWide)
		ops += int64(wide.Len())
		result = relation.ProjectRel(wide, cols)
		result.Name = "result"
		if sel.Distinct {
			ops += int64(result.Len())
			result = relation.DistinctRel(result)
		}
	} else {
		ops += int64(wide.Len())
		result = relation.ProjectRel(wide, cols)
		result.Name = "result"
		if sel.Distinct {
			ops += int64(result.Len())
			result = relation.DistinctRel(result)
		}
		if len(sortRes) > 0 {
			ops += int64(result.Len())
			result.SortBy(sortRes)
		}
	}
	if sel.Limit >= 0 && result.Len() > sel.Limit {
		result = relation.FromTuples(result.Name, result.Schema(), result.Tuples()[:sel.Limit])
	}
	return result, ops, nil
}

// findIndex returns an index of the table whose columns are all covered by
// the equality pairs, or nil.
func (e *Engine) findIndex(table string, pairs [][2]any) *relation.Index {
	for _, ix := range e.indexes[table] {
		covered := true
		for _, col := range ix.Cols() {
			found := false
			for _, p := range pairs {
				if p[0].(int) == col {
					found = true
					break
				}
			}
			if !found {
				covered = false
				break
			}
		}
		if covered {
			return ix
		}
	}
	return nil
}
