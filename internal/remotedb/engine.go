package remotedb

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/relation"
)

// Engine is the remote DBMS proper: a thread-safe store of base relations
// with a conjunctive select-project-join executor, hash indexes, and catalog
// statistics. It is deliberately a *conventional* engine: it supports only
// its SQL subset, keeping the "the remote DBMS does not support all CAQL
// operations, but the CMS does" asymmetry of Section 5.3.3(d).
type Engine struct {
	mu      sync.RWMutex
	tables  map[string]*relation.Relation
	indexes map[string][]*relation.Index
	// versions tracks each table's extension version for stream resume
	// tokens: appends leave it unchanged (the relation representation is
	// append-only, so a captured snapshot prefix stays valid), while
	// wholesale replacement bumps it, invalidating outstanding tokens.
	versions map[string]uint64
}

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	return &Engine{
		tables:   make(map[string]*relation.Relation),
		indexes:  make(map[string][]*relation.Index),
		versions: make(map[string]uint64),
	}
}

// CreateTable registers an empty table.
func (e *Engine) CreateTable(name string, schema *relation.Schema) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.tables[name]; dup {
		return fmt.Errorf("remotedb: table %s already exists", name)
	}
	e.tables[name] = relation.New(name, schema)
	e.versions[name]++
	return nil
}

// LoadTable registers a table with its extension (replacing any previous
// definition); a bulk-load convenience for workload generators.
func (e *Engine) LoadTable(r *relation.Relation) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.tables[r.Name] = r
	delete(e.indexes, r.Name)
	e.versions[r.Name]++
}

// Insert appends rows to a table, validating kinds (ints coerce to float
// columns).
func (e *Engine) Insert(table string, rows []relation.Tuple) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.tables[table]
	if !ok {
		return fmt.Errorf("remotedb: unknown table %s", table)
	}
	schema := t.Schema()
	for _, row := range rows {
		if len(row) != schema.Arity() {
			return fmt.Errorf("remotedb: insert arity %d into %s%s", len(row), table, schema)
		}
		coerced := make(relation.Tuple, len(row))
		for i, v := range row {
			cv, err := coerce(v, schema.Attr(i).Kind)
			if err != nil {
				return fmt.Errorf("remotedb: column %s of %s: %w", schema.Attr(i).Name, table, err)
			}
			coerced[i] = cv
		}
		t.MustAppend(coerced)
	}
	delete(e.indexes, table) // indexes are snapshots; invalidate
	return nil
}

func coerce(v relation.Value, kind relation.Kind) (relation.Value, error) {
	if v.IsNull() || v.Kind() == kind {
		return v, nil
	}
	if v.Kind() == relation.KindInt && kind == relation.KindFloat {
		return relation.Float(v.AsFloat()), nil
	}
	return relation.Value{}, fmt.Errorf("kind %s does not fit column kind %s", v.Kind(), kind)
}

// CreateIndex builds a hash index on the given columns of a table. The
// executor uses it for equality selections.
func (e *Engine) CreateIndex(table string, cols []int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.tables[table]
	if !ok {
		return fmt.Errorf("remotedb: unknown table %s", table)
	}
	e.indexes[table] = append(e.indexes[table], relation.BuildIndex(t, cols))
	return nil
}

// Tables returns the table names, sorted.
func (e *Engine) Tables() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.tables))
	for n := range e.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Schema returns the schema of the named table.
func (e *Engine) Schema(name string) (*relation.Schema, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.tables[name]
	if !ok {
		return nil, fmt.Errorf("remotedb: unknown table %s", name)
	}
	return t.Schema(), nil
}

// TableStats carries the catalog statistics the IE's problem-graph shaper
// consumes ("cardinality and selectivity information from the DBMS schema",
// Section 4.1).
type TableStats struct {
	Rows     int
	Distinct []int // per-column distinct value counts
}

// Stats computes catalog statistics for a table.
func (e *Engine) Stats(name string) (TableStats, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.tables[name]
	if !ok {
		return TableStats{}, fmt.Errorf("remotedb: unknown table %s", name)
	}
	st := TableStats{Rows: t.Len(), Distinct: make([]int, t.Schema().Arity())}
	for c := 0; c < t.Schema().Arity(); c++ {
		seen := make(map[string]bool)
		for _, tu := range t.Tuples() {
			seen[tu[c].Key()] = true
		}
		st.Distinct[c] = len(seen)
	}
	return st, nil
}

// Execute runs a parsed statement, returning the result relation (nil for
// DDL/DML) and the number of server-side tuple operations performed (the
// cost-model input).
func (e *Engine) Execute(st *Statement) (*relation.Relation, int64, error) {
	switch {
	case st.Create != nil:
		return nil, 1, e.CreateTable(st.Create.Table, st.Create.Schema)
	case st.Insert != nil:
		return nil, int64(len(st.Insert.Rows)), e.Insert(st.Insert.Table, st.Insert.Rows)
	case st.Select != nil:
		return e.executeSelect(st.Select)
	default:
		return nil, 0, fmt.Errorf("remotedb: empty statement")
	}
}

// ExecuteSQL parses and runs a statement.
func (e *Engine) ExecuteSQL(src string) (*relation.Relation, int64, error) {
	st, err := ParseSQL(src)
	if err != nil {
		return nil, 0, err
	}
	return e.Execute(st)
}

// binding of an alias in a running plan.
type aliasInfo struct {
	alias  string
	rel    *relation.Relation // filtered extension
	schema *relation.Schema
}

func (e *Engine) executeSelect(sel *SelectStmt) (*relation.Relation, int64, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var ops int64

	if len(sel.From) == 0 {
		return nil, 0, fmt.Errorf("remotedb: SELECT without FROM")
	}
	// Resolve aliases.
	aliases := make(map[string]*relation.Relation, len(sel.From))
	order := make([]string, 0, len(sel.From))
	for _, ref := range sel.From {
		t, ok := e.tables[ref.Table]
		if !ok {
			return nil, ops, fmt.Errorf("remotedb: unknown table %s", ref.Table)
		}
		if _, dup := aliases[ref.Alias]; dup {
			return nil, ops, fmt.Errorf("remotedb: duplicate alias %s", ref.Alias)
		}
		aliases[ref.Alias] = t
		order = append(order, ref.Alias)
	}

	resolve := func(c ColRef) (string, int, error) {
		if c.Qualifier != "" {
			t, ok := aliases[c.Qualifier]
			if !ok {
				return "", 0, fmt.Errorf("remotedb: unknown alias %s", c.Qualifier)
			}
			i := t.Schema().ColIndex(c.Column)
			if i < 0 {
				return "", 0, fmt.Errorf("remotedb: no column %s in %s", c.Column, c.Qualifier)
			}
			return c.Qualifier, i, nil
		}
		found := ""
		idx := -1
		for a, t := range aliases {
			if i := t.Schema().ColIndex(c.Column); i >= 0 {
				if found != "" {
					return "", 0, fmt.Errorf("remotedb: ambiguous column %s", c.Column)
				}
				found, idx = a, i
			}
		}
		if found == "" {
			return "", 0, fmt.Errorf("remotedb: unknown column %s", c.Column)
		}
		return found, idx, nil
	}

	// Classify WHERE conjuncts: per-alias (col-const or col-col within one
	// alias) vs cross-alias equi-joins vs cross-alias theta residuals.
	type resolvedCond struct {
		la   string
		lc   int
		op   relation.CmpOp
		isCC bool
		ra   string
		rc   int
		val  relation.Value
	}
	perAlias := make(map[string][]relation.Cond)
	eqConsts := make(map[string][][2]any) // alias -> (col, value) equality pairs, for index use
	var cross []resolvedCond
	for _, c := range sel.Where {
		la, lc, err := resolve(c.Left)
		if err != nil {
			return nil, ops, err
		}
		if !c.RightIsCol {
			perAlias[la] = append(perAlias[la], relation.ColConst(lc, c.Op, c.RightVal))
			if c.Op == relation.OpEq {
				eqConsts[la] = append(eqConsts[la], [2]any{lc, c.RightVal})
			}
			continue
		}
		ra, rc, err := resolve(c.RightCol)
		if err != nil {
			return nil, ops, err
		}
		if la == ra {
			perAlias[la] = append(perAlias[la], relation.ColCol(lc, c.Op, rc))
			continue
		}
		cross = append(cross, resolvedCond{la: la, lc: lc, op: c.Op, isCC: true, ra: ra, rc: rc})
	}

	// Filter each alias's extension, preferring an index when an equality
	// constant condition matches one.
	filtered := make(map[string]*relation.Relation, len(order))
	for _, a := range order {
		base := aliases[a]
		conds := perAlias[a]
		var out *relation.Relation
		if pairs := eqConsts[a]; len(pairs) > 0 {
			if ix := e.findIndex(base.Name, pairs); ix != nil {
				vals := make([]relation.Value, len(ix.Cols()))
				for i, col := range ix.Cols() {
					for _, p := range pairs {
						if p[0].(int) == col {
							vals[i] = p[1].(relation.Value)
						}
					}
				}
				matched := ix.Lookup(vals)
				ops += int64(len(matched))
				out = relation.Drain(base.Name, base.Schema(),
					relation.Select(relation.NewSliceIterator(matched), conds))
				filtered[a] = out
				continue
			}
		}
		ops += int64(base.Len())
		out = relation.SelectRel(base, conds)
		filtered[a] = out
	}

	// Greedy join order: repeatedly join the smallest relation that has an
	// equi-join condition with the current result (or the smallest overall
	// for a cross product when none connects).
	remaining := append([]string(nil), order...)
	sort.SliceStable(remaining, func(i, j int) bool {
		return filtered[remaining[i]].Len() < filtered[remaining[j]].Len()
	})

	// colPos maps alias -> base offset in the wide tuple.
	colPos := make(map[string]int)
	var wide *relation.Relation
	takeConds := func(joined map[string]bool, next string) (eq []relation.JoinCond, later []resolvedCond) {
		for _, c := range cross {
			switch {
			case joined[c.la] && c.ra == next && c.op == relation.OpEq:
				eq = append(eq, relation.JoinCond{Left: colPos[c.la] + c.lc, Right: c.rc})
			case joined[c.ra] && c.la == next && c.op == relation.OpEq:
				eq = append(eq, relation.JoinCond{Left: colPos[c.ra] + c.rc, Right: c.lc})
			default:
				later = append(later, c)
			}
		}
		return eq, later
	}

	joined := make(map[string]bool)
	for len(remaining) > 0 {
		// Pick next: prefer one connected by an equi-join.
		pick := -1
		if wide != nil {
			for i, a := range remaining {
				for _, c := range cross {
					if (joined[c.la] && c.ra == a || joined[c.ra] && c.la == a) && c.op == relation.OpEq {
						pick = i
						break
					}
				}
				if pick >= 0 {
					break
				}
			}
		}
		if pick < 0 {
			pick = 0
		}
		next := remaining[pick]
		remaining = append(remaining[:pick], remaining[pick+1:]...)
		nextRel := filtered[next]
		if wide == nil {
			wide = nextRel
			colPos[next] = 0
			joined[next] = true
			continue
		}
		eq, later := takeConds(joined, next)
		ops += int64(wide.Len() + nextRel.Len())
		schema := wide.Schema().Concat(nextRel.Schema())
		w := relation.Drain("j", schema, relation.HashJoin(wide.Iter(), nextRel.Iter(), eq))
		colPos[next] = wide.Schema().Arity()
		wide = w
		joined[next] = true
		cross = later
		// Apply any theta conditions now fully available.
		var now []relation.Cond
		var still []resolvedCond
		for _, c := range cross {
			if joined[c.la] && joined[c.ra] {
				now = append(now, relation.ColCol(colPos[c.la]+c.lc, c.op, colPos[c.ra]+c.rc))
			} else {
				still = append(still, c)
			}
		}
		if len(now) > 0 {
			ops += int64(wide.Len())
			wide = relation.SelectRel(wide, now)
		}
		cross = still
	}
	if len(cross) > 0 {
		// All aliases joined; any remaining conds apply now.
		var now []relation.Cond
		for _, c := range cross {
			now = append(now, relation.ColCol(colPos[c.la]+c.lc, c.op, colPos[c.ra]+c.rc))
		}
		ops += int64(wide.Len())
		wide = relation.SelectRel(wide, now)
	}

	widePos := func(c ColRef) (int, error) {
		a, i, err := resolve(c)
		if err != nil {
			return 0, err
		}
		return colPos[a] + i, nil
	}

	// Aggregation vs plain projection.
	hasAgg := false
	for _, it := range sel.Items {
		if it.IsAgg {
			hasAgg = true
		}
	}
	var result *relation.Relation
	switch {
	case hasAgg:
		var groupCols []int
		for _, g := range sel.GroupBy {
			p, err := widePos(g)
			if err != nil {
				return nil, ops, err
			}
			groupCols = append(groupCols, p)
		}
		var specs []relation.AggSpec
		var attrs []relation.Attr
		for _, g := range groupCols {
			attrs = append(attrs, wide.Schema().Attr(g))
		}
		for _, it := range sel.Items {
			if !it.IsAgg {
				continue // non-aggregate items must be group-by columns; they are re-emitted first
			}
			spec := relation.AggSpec{Op: it.Agg, Col: -1}
			if !it.AggStar {
				p, err := widePos(it.Col)
				if err != nil {
					return nil, ops, err
				}
				spec.Col = p
			}
			specs = append(specs, spec)
		}
		ops += int64(wide.Len())
		tuples := relation.Aggregate(wide.Iter(), groupCols, specs)
		for i, s := range specs {
			kind := relation.KindFloat
			if s.Op == relation.AggCount {
				kind = relation.KindInt
			} else if (s.Op == relation.AggMin || s.Op == relation.AggMax) && s.Col >= 0 {
				kind = wide.Schema().Attr(s.Col).Kind
			}
			attrs = append(attrs, relation.Attr{Name: fmt.Sprintf("agg%d", i), Kind: kind})
		}
		result = relation.FromTuples("result", relation.NewSchema(attrs...), tuples)
	default:
		var cols []int
		if len(sel.Items) == 1 && sel.Items[0].Star {
			for i := 0; i < wide.Schema().Arity(); i++ {
				cols = append(cols, i)
			}
		} else {
			for _, it := range sel.Items {
				if it.Star {
					return nil, ops, fmt.Errorf("remotedb: * must be the only select item")
				}
				p, err := widePos(it.Col)
				if err != nil {
					return nil, ops, err
				}
				cols = append(cols, p)
			}
		}
		ops += int64(wide.Len())
		result = relation.ProjectRel(wide, cols)
		result.Name = "result"
	}
	if sel.Distinct {
		ops += int64(result.Len())
		result = relation.DistinctRel(result)
	}
	if len(sel.OrderBy) > 0 {
		var cols []int
		for _, c := range sel.OrderBy {
			i := result.Schema().ColIndex(c.Column)
			if i < 0 {
				return nil, ops, fmt.Errorf("remotedb: ORDER BY column %s not in result", c.Column)
			}
			cols = append(cols, i)
		}
		ops += int64(result.Len())
		result.SortBy(cols)
	}
	if sel.Limit >= 0 && result.Len() > sel.Limit {
		result = relation.FromTuples(result.Name, result.Schema(), result.Tuples()[:sel.Limit])
	}
	return result, ops, nil
}

// findIndex returns an index of the table whose columns are all covered by
// the equality pairs, or nil.
func (e *Engine) findIndex(table string, pairs [][2]any) *relation.Index {
	for _, ix := range e.indexes[table] {
		covered := true
		for _, col := range ix.Cols() {
			found := false
			for _, p := range pairs {
				if p[0].(int) == col {
					found = true
					break
				}
			}
			if !found {
				covered = false
				break
			}
		}
		if covered {
			return ix
		}
	}
	return nil
}
