package remotedb

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// Tests for morsel-driven parallel execution (plan_parallel.go): section
// detection, forced-parallel correctness on data large enough for real
// worker concurrency, cancellation teardown, and goroutine-leak brackets
// around abandoned and canceled streams.

// newParallelEngine loads a two-table workload big enough that a morsel size
// of 64 gives every worker of a dop-4 pool many morsels to claim.
func newParallelEngine(t *testing.T, rows int) *Engine {
	t.Helper()
	e := NewEngine()
	mustExec := func(sql string) {
		t.Helper()
		if _, _, err := e.ExecuteSQL(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustExec("CREATE TABLE dim (g INT, dname TEXT)")
	var dim []string
	for g := 0; g < 16; g++ {
		dim = append(dim, fmt.Sprintf("(%d,'d%02d')", g, g))
	}
	mustExec("INSERT INTO dim VALUES " + strings.Join(dim, ","))
	mustExec("CREATE TABLE big (id INT, g INT, v FLOAT)")
	var vals []string
	rng := uint64(7)
	for i := 0; i < rows; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		vals = append(vals, fmt.Sprintf("(%d,%d,%g)", i, int(rng>>33)%16, float64(int(rng>>11)%1000)+0.25))
		if len(vals) == 500 {
			mustExec("INSERT INTO big VALUES " + strings.Join(vals, ","))
			vals = vals[:0]
		}
	}
	if len(vals) > 0 {
		mustExec("INSERT INTO big VALUES " + strings.Join(vals, ","))
	}
	return e
}

// forcePar makes every eligible plan run parallel at the given dop: the row
// threshold drops to 1 and morsels shrink so the pool has real contention.
func forcePar(e *Engine, dop int) {
	e.SetParallelism(dop)
	e.SetParallelMinRows(1)
	e.SetMorselSize(64)
}

// leakBracket retries until the goroutine count settles back to the
// baseline, dumping stacks on timeout (background runtime goroutines get a
// small slack, abandoned timers a moment to unwind).
func leakBracket(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d -> %d\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Parallel scan/join/agg results must equal the serial planner's on a table
// big enough for genuine multi-morsel concurrency, and the parallel-stream
// counters must move.
func TestParallelExecutionMatchesSerial(t *testing.T) {
	e := newParallelEngine(t, 4000)
	queries := []string{
		"SELECT id, v FROM big WHERE g < 11",
		"SELECT big.id, dim.dname FROM big, dim WHERE big.g = dim.g AND big.v < 700.0",
		"SELECT g, COUNT(*), SUM(v), MIN(v), MAX(v), AVG(v) FROM big GROUP BY g ORDER BY g",
		"SELECT COUNT(*), SUM(v) FROM big",
		"SELECT DISTINCT g FROM big WHERE v > 100.0",
		"SELECT dim.dname, COUNT(*) FROM big, dim WHERE big.g = dim.g GROUP BY dim.dname ORDER BY dname",
	}
	for _, sql := range queries {
		t.Run(sql, func(t *testing.T) {
			e.SetParallelism(1)
			want, serialOps, err := e.ExecuteSQL(sql)
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			forcePar(e, 4)
			base := e.ParallelStats()
			got, parOps, err := e.ExecuteSQL(sql)
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			if !got.EqualAsBag(want) {
				t.Fatalf("bag mismatch: parallel %d rows, serial %d rows", got.Len(), want.Len())
			}
			if parOps != serialOps {
				t.Errorf("ops diverge: parallel %d, serial %d", parOps, serialOps)
			}
			st := e.ParallelStats()
			if st.Streams != base.Streams+1 {
				t.Fatalf("parallel streams %d -> %d, want +1", base.Streams, st.Streams)
			}
			if st.Workers <= base.Workers || st.Morsels <= base.Morsels {
				t.Fatalf("workers/morsels did not advance: %+v -> %+v", base, st)
			}
		})
	}
}

// Below the row threshold an eligible plan must fall back to the serial tree
// and count the fallback.
func TestParallelRowThresholdFallback(t *testing.T) {
	e := newParallelEngine(t, 500)
	e.SetParallelism(4)
	e.SetParallelMinRows(100000)
	base := e.ParallelStats()
	if _, _, err := e.ExecuteSQL("SELECT g, COUNT(*) FROM big GROUP BY g"); err != nil {
		t.Fatal(err)
	}
	st := e.ParallelStats()
	if st.Streams != base.Streams {
		t.Fatalf("ran parallel below the row threshold")
	}
	if st.SerialFallbacks != base.SerialFallbacks+1 {
		t.Fatalf("fallbacks %d -> %d, want +1", base.SerialFallbacks, st.SerialFallbacks)
	}
}

// LIMIT/TopN-dominated shapes without an aggregate must not be parallel
// eligible (pull-based short-circuit beats fan-out; first-tuple latency must
// not regress), while a LIMIT above a blocking aggregate stays eligible.
func TestParallelSectionLimitRules(t *testing.T) {
	e := newParallelEngine(t, 500)
	planOf := func(sql string) *Plan {
		t.Helper()
		p, err := e.PlanForSQL(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		return p
	}
	for _, sql := range []string{
		"SELECT id FROM big LIMIT 5",
		"SELECT id FROM big ORDER BY id LIMIT 5",
		"SELECT big.id FROM big, dim WHERE big.g = dim.g LIMIT 5",
	} {
		if planOf(sql).par != nil {
			t.Errorf("%s: LIMIT shape marked parallel eligible", sql)
		}
	}
	for _, sql := range []string{
		"SELECT id, v FROM big WHERE g = 3",
		"SELECT g, COUNT(*) FROM big GROUP BY g ORDER BY g LIMIT 4",
		"SELECT big.id, dim.dname FROM big, dim WHERE big.g = dim.g",
	} {
		if planOf(sql).par == nil {
			t.Errorf("%s: shape not parallel eligible", sql)
		}
	}
	// Cross/theta spines stay serial.
	if planOf("SELECT big.id, dim.dname FROM big, dim WHERE big.v > 900.0").par != nil {
		t.Error("cross join marked parallel eligible")
	}
}

// Abandoning a partially-drained parallel stream and closing it must tear
// down every worker goroutine.
func TestParallelCloseAfterPartialDrainLeaksNothing(t *testing.T) {
	e := newParallelEngine(t, 4000)
	forcePar(e, 4)
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		sc, ok := e.ExecuteSQLPipelineCtx(context.Background(), "SELECT big.id, dim.dname FROM big, dim WHERE big.g = dim.g")
		if !ok {
			t.Fatal("pipeline declined the join")
		}
		ps := sc.(*PlanStream)
		if ps.DOP() < 2 {
			t.Fatalf("dop = %d, want parallel", ps.DOP())
		}
		for j := 0; j < 10; j++ {
			if _, ok := ps.Next(); !ok {
				t.Fatal("stream ended before partial drain")
			}
		}
		ps.Close()
	}
	leakBracket(t, before)
}

// Context cancellation mid-stream must stop the workers at their guard
// checkpoints, end the stream, surface a non-nil Err (never a silent
// truncation), and leak nothing.
func TestParallelCancelMidStream(t *testing.T) {
	e := newParallelEngine(t, 4000)
	forcePar(e, 4)
	// A stall slows morsel claims enough that cancellation always lands
	// while workers are mid-flight.
	e.SetMorselStall(2 * time.Millisecond)
	defer e.SetMorselStall(0)
	before := runtime.NumGoroutine()

	// Single-table SELECTs stream as resumable serial ScanStreams by
	// precedence, so the parallel exchange path needs a join shape.
	ctx, cancel := context.WithCancel(context.Background())
	sc, ok := e.ExecuteSQLPipelineCtx(ctx, "SELECT big.id, dim.dname FROM big, dim WHERE big.g = dim.g")
	if !ok {
		t.Fatal("pipeline declined the join")
	}
	ps := sc.(*PlanStream)
	if _, ok := ps.Next(); !ok {
		t.Fatalf("no first tuple: %v", ps.Err())
	}
	cancel()
	for {
		if _, ok := ps.Next(); !ok {
			break
		}
	}
	if err := ps.Err(); err == nil {
		t.Fatal("canceled stream reported a complete (nil-Err) result")
	}
	ps.Close()
	leakBracket(t, before)

	// Cancellation before the first pull: the pool never starts; Close alone
	// must still release the derived context.
	ctx2, cancel2 := context.WithCancel(context.Background())
	sc2, ok := e.ExecuteSQLPipelineCtx(ctx2, "SELECT g, COUNT(*) FROM big GROUP BY g")
	if !ok {
		t.Fatal("pipeline declined the agg")
	}
	cancel2()
	sc2.(*PlanStream).Close()
	leakBracket(t, before)
}

// A canceled parallel aggregation must surface an error, not a partial
// aggregate built from whichever morsels finished.
func TestParallelAggCancelYieldsErrorNotPartial(t *testing.T) {
	e := newParallelEngine(t, 4000)
	forcePar(e, 4)
	e.SetMorselStall(2 * time.Millisecond)
	defer e.SetMorselStall(0)

	ctx, cancel := context.WithCancel(context.Background())
	sc, ok := e.ExecuteSQLPipelineCtx(ctx, "SELECT g, COUNT(*), SUM(v) FROM big GROUP BY g")
	if !ok {
		t.Fatal("pipeline declined the agg")
	}
	ps := sc.(*PlanStream)
	// Cancel while the workers are still chewing morsels: the agg boundary
	// blocks the first pull until the pool drains, so fire the cancel from a
	// timer racing that first pull.
	timer := time.AfterFunc(3*time.Millisecond, cancel)
	defer timer.Stop()
	rows := 0
	for {
		if _, ok := ps.Next(); !ok {
			break
		}
		rows++
	}
	if err := ps.Err(); err == nil && rows < 16 {
		t.Fatalf("cancel produced a partial aggregate (%d of 16 groups) with nil Err", rows)
	}
	ps.Close()
}

// EXPLAIN ANALYZE on a parallel run must report the chosen DOP and
// per-worker rows/ops/morsels so partition skew is visible.
func TestExplainAnalyzeShowsWorkers(t *testing.T) {
	e := newParallelEngine(t, 4000)
	forcePar(e, 4)
	rel, _, err := e.ExecuteSQL("EXPLAIN ANALYZE SELECT g, COUNT(*) FROM big GROUP BY g")
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	for _, tu := range rel.Tuples() {
		out.WriteString(tu[0].AsString())
		out.WriteByte('\n')
	}
	text := out.String()
	if !strings.Contains(text, "dop 4") {
		t.Fatalf("no dop in header:\n%s", text)
	}
	if !strings.Contains(text, "parallel: dop 4") || !strings.Contains(text, "worker 0:") || !strings.Contains(text, "worker 3:") {
		t.Fatalf("no per-worker lines:\n%s", text)
	}
	// EXPLAIN (without ANALYZE) advertises the open-time decision.
	rel, _, err = e.ExecuteSQL("EXPLAIN SELECT g, COUNT(*) FROM big GROUP BY g")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rel.Tuple(0)[0].AsString(), "parallel dop 4") {
		t.Fatalf("EXPLAIN header missing parallel decision: %s", rel.Tuple(0)[0].AsString())
	}
}

// The serial morsel stall (the experiment's service-time model) must charge
// the serial arm the same per-morsel latency the parallel arm pays, without
// changing results or ops.
func TestMorselStallPreservesResults(t *testing.T) {
	e := newParallelEngine(t, 600)
	e.SetParallelism(1)
	want, wantOps, err := e.ExecuteSQL("SELECT g, COUNT(*) FROM big GROUP BY g ORDER BY g")
	if err != nil {
		t.Fatal(err)
	}
	e.SetMorselSize(128)
	e.SetMorselStall(time.Millisecond)
	defer e.SetMorselStall(0)
	t0 := time.Now()
	got, gotOps, err := e.ExecuteSQL("SELECT g, COUNT(*) FROM big GROUP BY g ORDER BY g")
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualAsBag(want) || gotOps != wantOps {
		t.Fatalf("stall changed the result (ops %d vs %d)", gotOps, wantOps)
	}
	// 600 rows / 128-row morsels = 5 stalls of 1ms minimum.
	if d := time.Since(t0); d < 4*time.Millisecond {
		t.Fatalf("stall not applied on the serial scan: %v", d)
	}
}
