package remotedb

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/relation"
)

// Result is the response to one DML request: the result extension (nil for
// DDL) plus the simulated cost of the request under the client's cost model.
type Result struct {
	Rel   *relation.Relation
	SimMS float64
}

// Client is the connection surface the CMS's Remote DBMS Interface uses.
// Implementations: InProcClient (direct engine calls with simulated costs)
// and TCPClient (a real wire protocol over net). Both account identical
// request/tuple statistics so experiments can run on either transport.
type Client interface {
	// Exec parses and executes one DML statement.
	Exec(sql string) (*Result, error)
	// RelationSchema resolves a base relation schema (caql.SchemaSource).
	RelationSchema(name string, arity int) (*relation.Schema, error)
	// TableStats returns catalog statistics for a table.
	TableStats(name string) (TableStats, error)
	// Tables lists the table names.
	Tables() ([]string, error)
	// Stats returns cumulative transfer statistics.
	Stats() Stats
	// Close releases the connection.
	Close() error
}

// ContextClient is implemented by clients whose requests honor a caller
// context: cancellation or deadline expiry aborts the request (dial, write,
// read, backoff sleeps) instead of letting it run to completion. All the
// package's clients implement it; ExecContext is the uniform entry point that
// degrades gracefully for clients that do not.
type ContextClient interface {
	Client
	// ExecCtx is Exec bounded by ctx: a done context aborts the request with
	// a transient TransportError wrapping ctx.Err().
	ExecCtx(ctx context.Context, sql string) (*Result, error)
}

// EpochReporter is implemented by clients that observe the server's catalog
// epoch on responses (PoolClient, TCPClient, InProcClient). The CMS uses the
// high-water mark to detect that cached views were built against a backend
// state the server has since moved past.
type EpochReporter interface {
	// ObservedEpoch returns the highest catalog epoch seen on any response
	// so far; 0 means the transport (or peer) predates epochs.
	ObservedEpoch() uint64
}

// InnerClient is implemented by decorating clients (FaultClient,
// ResilientClient) so capability probes can reach the transport underneath.
type InnerClient interface {
	Inner() Client
}

// ObservedEpoch unwraps decorators until it finds an EpochReporter; 0 for
// transports that never report (the defense degrades to off, exactly like
// talking to a pre-epoch server).
func ObservedEpoch(c Client) uint64 {
	for c != nil {
		if r, ok := c.(EpochReporter); ok {
			return r.ObservedEpoch()
		}
		w, ok := c.(InnerClient)
		if !ok {
			return 0
		}
		c = w.Inner()
	}
	return 0
}

// ExecContext issues sql through c, honoring ctx when the client supports it.
// For a plain Client the context is checked before dispatch only (the request
// itself cannot be interrupted).
func ExecContext(ctx context.Context, c Client, sql string) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cc, ok := c.(ContextClient); ok {
		return cc.ExecCtx(ctx, sql)
	}
	if err := ctx.Err(); err != nil {
		return nil, &TransportError{Op: "exec", Err: err}
	}
	return c.Exec(sql)
}

// InProcClient is a Client bound directly to an Engine in the same process,
// charging the virtual cost model for every request. It is the default
// transport for deterministic experiments.
type InProcClient struct {
	engine *Engine
	costs  Costs

	// epoch is the engine epoch as of this client's last fetch — NOT the
	// engine's live epoch. The staleness defense is specified as "on
	// observing a newer epoch from any fetch", and the in-process transport
	// keeps that contract so its cache dynamics match the wire transports'.
	epoch atomic.Uint64

	mu    sync.Mutex
	stats Stats
}

// NewInProcClient connects to the engine with the given cost model.
func NewInProcClient(engine *Engine, costs Costs) *InProcClient {
	return &InProcClient{engine: engine, costs: costs}
}

// Engine exposes the underlying engine (for loading fixtures).
func (c *InProcClient) Engine() *Engine { return c.engine }

// Costs returns the client's cost model.
func (c *InProcClient) Costs() Costs { return c.costs }

// ExecCtx implements ContextClient. The in-process engine is synchronous and
// CPU-bound, so the context is checked before dispatch and after completion
// (a request canceled mid-execution returns the cancellation, not the
// now-unwanted result, matching the remote transports' semantics).
func (c *InProcClient) ExecCtx(ctx context.Context, sql string) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, &TransportError{Op: "exec", Err: err}
	}
	res, err := c.Exec(sql)
	if cerr := ctx.Err(); cerr != nil {
		return nil, &TransportError{Op: "exec", Err: cerr}
	}
	return res, err
}

// ObservedEpoch implements EpochReporter.
func (c *InProcClient) ObservedEpoch() uint64 { return c.epoch.Load() }

func (c *InProcClient) noteEpoch() {
	e := c.engine.Epoch()
	for {
		old := c.epoch.Load()
		if e <= old || c.epoch.CompareAndSwap(old, e) {
			return
		}
	}
}

// Exec implements Client.
func (c *InProcClient) Exec(sql string) (*Result, error) {
	rel, ops, err := c.engine.ExecuteSQL(sql)
	defer c.noteEpoch()
	if err != nil {
		return nil, err
	}
	var tuples int64
	if rel != nil {
		tuples = int64(rel.Len())
	}
	sim := c.costs.RequestCost(tuples, ops)
	c.mu.Lock()
	c.stats.Requests++
	c.stats.TuplesReturned += tuples
	c.stats.ServerOps += ops
	c.stats.SimMS += sim
	c.mu.Unlock()
	return &Result{Rel: rel, SimMS: sim}, nil
}

// RelationSchema implements Client.
func (c *InProcClient) RelationSchema(name string, arity int) (*relation.Schema, error) {
	sch, err := c.engine.Schema(name)
	if err != nil {
		return nil, err
	}
	if arity >= 0 && sch.Arity() != arity {
		return nil, errArity(name, sch.Arity(), arity)
	}
	return sch, nil
}

// TableStats implements Client.
func (c *InProcClient) TableStats(name string) (TableStats, error) {
	return c.engine.Stats(name)
}

// Tables implements Client.
func (c *InProcClient) Tables() ([]string, error) { return c.engine.Tables(), nil }

// Stats implements Client.
func (c *InProcClient) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Close implements Client (a no-op for the in-process transport).
func (c *InProcClient) Close() error { return nil }

func errArity(name string, have, want int) error {
	return &ArityError{Name: name, Have: have, Want: want}
}

// ArityError reports a schema arity mismatch.
type ArityError struct {
	Name       string
	Have, Want int
}

// Error implements error.
func (e *ArityError) Error() string {
	return "remotedb: relation " + e.Name + " has arity " + itoa(e.Have) + ", caller expected " + itoa(e.Want)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
