package remotedb

import (
	"math/rand"
	"testing"

	"repro/internal/caql"
	"repro/internal/logic"
	"repro/internal/relation"
)

func newTestEngine(t *testing.T) *Engine {
	t.Helper()
	e := NewEngine()
	mustExec := func(sql string) {
		t.Helper()
		if _, _, err := e.ExecuteSQL(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustExec("CREATE TABLE emp (id INT, name TEXT, dept INT, salary FLOAT)")
	mustExec("CREATE TABLE dept (id INT, dname TEXT)")
	mustExec("INSERT INTO emp VALUES (1,'alice',10,100.0),(2,'bob',10,80.0),(3,'carol',20,120.0),(4,'dave',30,60.0)")
	mustExec("INSERT INTO dept VALUES (10,'eng'),(20,'ops'),(30,'hr')")
	return e
}

func TestEngineSelectProjectWhere(t *testing.T) {
	e := newTestEngine(t)
	r, _, err := e.ExecuteSQL("SELECT name FROM emp WHERE dept = 10")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("rows = %d, want 2", r.Len())
	}
}

func TestEngineJoin(t *testing.T) {
	e := newTestEngine(t)
	r, _, err := e.ExecuteSQL("SELECT e.name, d.dname FROM emp e, dept d WHERE e.dept = d.id AND d.dname = 'eng'")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("join rows = %d, want 2: %v", r.Len(), r)
	}
	for _, tu := range r.Tuples() {
		if tu[1].AsString() != "eng" {
			t.Fatalf("bad join row %v", tu)
		}
	}
}

func TestEngineThetaJoin(t *testing.T) {
	e := newTestEngine(t)
	r, _, err := e.ExecuteSQL("SELECT e.id, f.id FROM emp e, emp f WHERE e.salary > f.salary AND e.dept = f.dept")
	if err != nil {
		t.Fatal(err)
	}
	// Within dept 10: alice(100) > bob(80). Only one pair.
	if r.Len() != 1 || r.Tuple(0)[0].AsInt() != 1 || r.Tuple(0)[1].AsInt() != 2 {
		t.Fatalf("theta join wrong: %v", r)
	}
}

func TestEngineCrossProduct(t *testing.T) {
	e := newTestEngine(t)
	r, _, err := e.ExecuteSQL("SELECT e.id, d.id FROM emp e, dept d")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 12 {
		t.Fatalf("cross rows = %d, want 12", r.Len())
	}
}

func TestEngineAggregates(t *testing.T) {
	e := newTestEngine(t)
	r, _, err := e.ExecuteSQL("SELECT dept, COUNT(*), AVG(salary) FROM emp GROUP BY dept ORDER BY dept")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3 {
		t.Fatalf("groups = %d", r.Len())
	}
	first := r.Tuple(0)
	if first[0].AsInt() != 10 || first[1].AsInt() != 2 || first[2].AsFloat() != 90 {
		t.Fatalf("group row wrong: %v", first)
	}
	// Global aggregate.
	g, _, err := e.ExecuteSQL("SELECT COUNT(*), MAX(salary) FROM emp")
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 || g.Tuple(0)[0].AsInt() != 4 || g.Tuple(0)[1].AsFloat() != 120 {
		t.Fatalf("global agg wrong: %v", g)
	}
}

func TestEngineDistinctOrderLimit(t *testing.T) {
	e := newTestEngine(t)
	r, _, err := e.ExecuteSQL("SELECT DISTINCT dept FROM emp ORDER BY dept LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 || r.Tuple(0)[0].AsInt() != 10 || r.Tuple(1)[0].AsInt() != 20 {
		t.Fatalf("distinct/order/limit wrong: %v", r)
	}
}

func TestEngineStar(t *testing.T) {
	e := newTestEngine(t)
	r, _, err := e.ExecuteSQL("SELECT * FROM dept ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3 || r.Schema().Arity() != 2 {
		t.Fatalf("star wrong: %v", r)
	}
}

func TestEngineErrors(t *testing.T) {
	e := newTestEngine(t)
	for _, sql := range []string{
		"SELECT * FROM nosuch",
		"SELECT nosuchcol FROM emp",
		"SELECT id FROM emp, dept",           // ambiguous
		"SELECT e.nosuch FROM emp e",         //
		"SELECT * FROM emp e, emp e",         // duplicate alias
		"INSERT INTO emp VALUES (1,2)",       // arity
		"INSERT INTO emp VALUES ('x',1,2,3)", // kind
		"CREATE TABLE emp (x INT)",           // duplicate table
		"SELECT x.y FROM emp e WHERE x.y = 1",
	} {
		if _, _, err := e.ExecuteSQL(sql); err == nil {
			t.Errorf("expected error for %q", sql)
		}
	}
}

func TestEngineIndexUse(t *testing.T) {
	e := NewEngine()
	if _, _, err := e.ExecuteSQL("CREATE TABLE big (k INT, v INT)"); err != nil {
		t.Fatal(err)
	}
	rows := make([]relation.Tuple, 0, 1000)
	for i := 0; i < 1000; i++ {
		rows = append(rows, relation.Tuple{relation.Int(int64(i % 100)), relation.Int(int64(i))})
	}
	if err := e.Insert("big", rows); err != nil {
		t.Fatal(err)
	}
	_, opsScan, err := e.ExecuteSQL("SELECT v FROM big WHERE k = 7")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.CreateIndex("big", []int{0}); err != nil {
		t.Fatal(err)
	}
	r, opsIdx, err := e.ExecuteSQL("SELECT v FROM big WHERE k = 7")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 10 {
		t.Fatalf("indexed rows = %d, want 10", r.Len())
	}
	if opsIdx >= opsScan {
		t.Fatalf("index should reduce ops: scan=%d idx=%d", opsScan, opsIdx)
	}
	// Index invalidated by insert; results stay correct.
	if err := e.Insert("big", []relation.Tuple{{relation.Int(7), relation.Int(9999)}}); err != nil {
		t.Fatal(err)
	}
	r2, _, err := e.ExecuteSQL("SELECT v FROM big WHERE k = 7")
	if err != nil {
		t.Fatal(err)
	}
	if r2.Len() != 11 {
		t.Fatalf("post-insert rows = %d, want 11", r2.Len())
	}
}

func TestEngineStats(t *testing.T) {
	e := newTestEngine(t)
	st, err := e.Stats("emp")
	if err != nil {
		t.Fatal(err)
	}
	if st.Rows != 4 || st.Distinct[2] != 3 {
		t.Fatalf("stats wrong: %+v", st)
	}
	if _, err := e.Stats("nosuch"); err == nil {
		t.Error("stats of unknown table should error")
	}
}

func TestInProcClientCostAccounting(t *testing.T) {
	e := newTestEngine(t)
	costs := DefaultCosts()
	c := NewInProcClient(e, costs)
	res, err := c.Exec("SELECT * FROM emp")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Len() != 4 {
		t.Fatalf("rows = %d", res.Rel.Len())
	}
	st := c.Stats()
	if st.Requests != 1 || st.TuplesReturned != 4 {
		t.Fatalf("stats = %+v", st)
	}
	wantSim := costs.RequestCost(4, st.ServerOps)
	if st.SimMS != wantSim || res.SimMS != wantSim {
		t.Fatalf("sim time = %v, want %v", st.SimMS, wantSim)
	}
	if _, err := c.RelationSchema("emp", 4); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RelationSchema("emp", 2); err == nil {
		t.Error("arity mismatch should error")
	}
	tables, err := c.Tables()
	if err != nil || len(tables) != 2 {
		t.Fatalf("tables = %v, %v", tables, err)
	}
}

// Differential test: the engine's SQL execution against caql.Eval on random
// conjunctive queries routed through TranslateCAQL.
func TestEngineAgainstCAQLEval(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		e := NewEngine()
		src := caql.MapSource{}
		for _, name := range []string{"r", "s"} {
			rel := relation.New(name, relation.NewSchema(
				relation.Attr{Name: "a", Kind: relation.KindInt},
				relation.Attr{Name: "b", Kind: relation.KindInt}))
			for i := 0; i < 2+rng.Intn(12); i++ {
				rel.MustAppend(relation.Tuple{relation.Int(int64(rng.Intn(4))), relation.Int(int64(rng.Intn(4)))})
			}
			e.LoadTable(rel)
			src[name] = rel
		}
		varsPool := []string{"X", "Y", "Z"}
		term := func() logic.Term {
			if rng.Intn(4) == 0 {
				return logic.CInt(int64(rng.Intn(4)))
			}
			return logic.V(varsPool[rng.Intn(len(varsPool))])
		}
		var body []logic.Atom
		for i := 0; i < 1+rng.Intn(3); i++ {
			name := "r"
			if rng.Intn(2) == 0 {
				name = "s"
			}
			body = append(body, logic.A(name, term(), term()))
		}
		// Optional comparison.
		varSet := logic.VarsOf(body)
		var varList []string
		for _, v := range varsPool {
			if varSet[v] {
				varList = append(varList, v)
			}
		}
		if len(varList) == 0 {
			continue
		}
		if rng.Intn(2) == 0 {
			ops := []relation.CmpOp{relation.OpLt, relation.OpLe, relation.OpNe, relation.OpGe}
			body = append(body, logic.Cmp(
				logic.V(varList[rng.Intn(len(varList))]),
				ops[rng.Intn(len(ops))],
				logic.CInt(int64(rng.Intn(4)))))
		}
		var head []logic.Term
		for _, v := range varList {
			head = append(head, logic.V(v))
		}
		if rng.Intn(3) == 0 {
			head = append(head, logic.CInt(7)) // constant head position
		}
		q := caql.NewQuery(logic.A("q", head...), body)
		if q.Validate() != nil {
			continue
		}

		want, err := caql.Eval(q, src)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := TranslateCAQL(q, src)
		if err != nil {
			t.Fatalf("translate %s: %v", q, err)
		}
		sqlRes, _, err := e.ExecuteSQL(tr.SQL)
		if err != nil {
			t.Fatalf("execute %q: %v", tr.SQL, err)
		}
		got, err := tr.Reassemble("q", want.Schema(), sqlRes)
		if err != nil {
			t.Fatal(err)
		}
		if !got.EqualAsBag(want) {
			t.Fatalf("trial %d: SQL path disagrees with CAQL eval\nquery: %s\nsql: %s\ngot: %v\nwant: %v",
				trial, q, tr.SQL, got, want)
		}
	}
}

func TestTranslateConstOnlyHead(t *testing.T) {
	e := newTestEngine(t)
	src := caql.MapSource{}
	for _, n := range []string{"emp", "dept"} {
		sch, _ := e.Schema(n)
		src[n] = relation.New(n, sch)
	}
	q := caql.MustParse("d(1) :- dept(X, Y)")
	tr, err := TranslateCAQL(q, src)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := e.ExecuteSQL(tr.SQL)
	if err != nil {
		t.Fatal(err)
	}
	out, err := tr.Reassemble("d", relation.NewSchema(relation.Attr{Name: "c0", Kind: relation.KindInt}), res)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Fatalf("const head rows = %d, want 3", out.Len())
	}
	for _, tu := range out.Tuples() {
		if tu[0].AsInt() != 1 {
			t.Fatalf("const head value wrong: %v", tu)
		}
	}
}

func TestTranslateStaticallyFalse(t *testing.T) {
	e := newTestEngine(t)
	src := caql.MapSource{}
	sch, _ := e.Schema("dept")
	src["dept"] = relation.New("dept", sch)
	q := caql.MustParse("d(X) :- dept(X, Y) & 1 > 2")
	tr, err := TranslateCAQL(q, src)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := e.ExecuteSQL(tr.SQL)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Fatalf("statically false query returned %d rows", res.Len())
	}
}
