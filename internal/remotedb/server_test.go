package remotedb

import (
	"strings"
	"sync"
	"testing"
)

func startTestServer(t *testing.T) (addr string, e *Engine, cleanup func()) {
	t.Helper()
	e = newTestEngine(t)
	srv := NewServer(e)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return addr, e, func() { srv.Close() }
}

func TestTCPRoundTrip(t *testing.T) {
	addr, _, cleanup := startTestServer(t)
	defer cleanup()
	c, err := DialTCP(addr, DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	res, err := c.Exec("SELECT name FROM emp WHERE dept = 10 ORDER BY name")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Len() != 2 || res.Rel.Tuple(0)[0].AsString() != "alice" {
		t.Fatalf("tcp result wrong: %v", res.Rel)
	}
	if res.SimMS <= 0 {
		t.Fatal("sim cost not charged")
	}

	sch, err := c.RelationSchema("emp", 4)
	if err != nil || sch.ColIndex("salary") != 3 {
		t.Fatalf("schema over tcp wrong: %v %v", sch, err)
	}
	st, err := c.TableStats("dept")
	if err != nil || st.Rows != 3 {
		t.Fatalf("stats over tcp wrong: %+v %v", st, err)
	}
	tables, err := c.Tables()
	if err != nil || len(tables) != 2 {
		t.Fatalf("tables over tcp wrong: %v %v", tables, err)
	}
	if got := c.Stats(); got.Requests != 1 || got.TuplesReturned != 2 {
		t.Fatalf("client stats wrong: %+v", got)
	}
}

func TestTCPErrorPropagation(t *testing.T) {
	addr, _, cleanup := startTestServer(t)
	defer cleanup()
	c, err := DialTCP(addr, DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec("SELECT * FROM missing"); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("expected remote error, got %v", err)
	}
	// Connection still usable after an error.
	if _, err := c.Exec("SELECT * FROM dept"); err != nil {
		t.Fatalf("connection unusable after error: %v", err)
	}
	if _, err := c.RelationSchema("missing", -1); err == nil {
		t.Error("schema error should propagate")
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	addr, _, cleanup := startTestServer(t)
	defer cleanup()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := DialTCP(addr, DefaultCosts())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < 20; j++ {
				res, err := c.Exec("SELECT e.name FROM emp e, dept d WHERE e.dept = d.id")
				if err != nil {
					errs <- err
					return
				}
				if res.Rel.Len() != 4 {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestTCPClientClosed(t *testing.T) {
	addr, _, cleanup := startTestServer(t)
	defer cleanup()
	c, err := DialTCP(addr, DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("SELECT * FROM dept"); err == nil {
		t.Error("exec on closed client should error")
	}
	if err := c.Close(); err != nil {
		t.Error("double close should be fine")
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	addr, _, cleanup := startTestServer(t)
	c, err := DialTCP(addr, DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cleanup()
	if _, err := c.Exec("SELECT * FROM dept"); err == nil {
		t.Error("exec against closed server should error")
	}
}
