package ie

import (
	"fmt"
	"strings"

	"repro/internal/relation"
)

// Proof is the justification of one solution: the derivation tree the SLD
// search traversed. Rule identifiers are recorded exactly for the purpose
// the paper assigns them (Section 4.2.1: "the problems of debugging and
// answer justification").
type Proof struct {
	// Kind is "rule" (a clause application), "query" (a CAQL query answered
	// by the data layer, with the witnessing tuple), or "cmp" (a built-in
	// comparison evaluated by the IE).
	Kind string
	// Detail renders the step: the rule head and identifier, the CAQL query
	// text, or the comparison.
	Detail string
	// Tuple is the witnessing tuple for query steps.
	Tuple relation.Tuple
	// Children are the sub-derivations of a rule step.
	Children []*Proof
}

// String renders the proof as an indented tree.
func (p *Proof) String() string {
	var b strings.Builder
	p.render(&b, 0)
	return b.String()
}

func (p *Proof) render(b *strings.Builder, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	switch p.Kind {
	case "query":
		fmt.Fprintf(b, "%s  <- %s\n", p.Detail, p.Tuple)
	default:
		fmt.Fprintf(b, "%s\n", p.Detail)
	}
	for _, c := range p.Children {
		c.render(b, depth+1)
	}
}

// ProofRoot bundles the steps justifying one solution of the AI query.
func ProofRoot(goal string, steps []*Proof) *Proof {
	return &Proof{Kind: "rule", Detail: goal, Children: steps}
}
