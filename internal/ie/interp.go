package ie

import (
	"fmt"

	"repro/internal/bridge"
	"repro/internal/caql"
	"repro/internal/logic"
)

// runner executes the interpreted and conjunction-compiled strategies:
// depth-first SLD resolution with chronological backtracking (Section 4's
// "well-known depth-first with chronological backtracking strategy of
// Prolog"), where base-atom segments become CAQL queries whose result
// streams are consumed tuple-at-a-time. Variant-ancestor pruning guards
// against rule-level loops (like Prolog, cyclic *data* under recursive rules
// is the fully-compiled strategy's territory).
type runner struct {
	engine  *Engine
	prog    *program
	session bridge.Session
	sol     *Solutions
}

// emit delivers a solution; false stops the whole search (consumer closed).
func (r *runner) emit(s logic.Subst, proofs []*Proof) bool {
	var root *Proof
	if r.engine.opts.Explain {
		root = ProofRoot(r.prog.goal.String(), proofs)
	}
	select {
	case r.sol.ch <- answer{sub: s.Restrict(r.sol.vars), proof: root}:
		return true
	case <-r.sol.stop:
		return false
	}
}

func (r *runner) stopRequested() bool {
	select {
	case <-r.sol.stop:
		return true
	default:
		return false
	}
}

// runAll runs the goal items and emits every solution. Errors raised inside
// continuation callbacks tunnel out as searchError panics recovered here.
func (r *runner) runAll() error {
	_, err := r.runSafe(r.prog.goalItems, nil, logic.NewSubst(), 0, nil, nil, r.emit)
	return err
}

// run solves items left to right under s, calling k for each solution of the
// whole list. ren maps clause variables to their renamed instances (nil at
// the goal level). The bool result is false when the search was aborted by
// the consumer. anc carries canonical forms of the open ancestor goals for
// variant pruning.
func (r *runner) run(items []bodyItem, ren map[string]string, s logic.Subst, depth int, anc []string, acc []*Proof, k func(logic.Subst, []*Proof) bool) (bool, error) {
	if r.stopRequested() {
		return false, nil
	}
	if depth > r.engine.opts.MaxDepth {
		return false, fmt.Errorf("ie: SLD depth limit %d exceeded (non-terminating recursion?)", r.engine.opts.MaxDepth)
	}
	if len(items) == 0 {
		return k(s, acc), nil
	}
	head, rest := items[0], items[1:]
	explain := r.engine.opts.Explain
	cont := func(s2 logic.Subst, acc2 []*Proof) (bool, error) {
		return r.run(rest, ren, s2, depth, anc, acc2, k)
	}
	switch head.kind {
	case itemCmp:
		a := s.ApplyAtom(renameAtom(head.atom, ren))
		if !a.IsGround() {
			return false, fmt.Errorf("ie: comparison %s not ground at evaluation time (ordering bug?)", a)
		}
		if a.CmpOp().Eval(a.Args[0].Const, a.Args[1].Const) {
			acc2 := acc
			if explain {
				acc2 = appendProof(acc, &Proof{Kind: "cmp", Detail: a.String()})
			}
			return cont(s, acc2)
		}
		return true, nil

	case itemSegment:
		inst := r.instantiate(head.seg, ren, s)
		stream, err := r.session.Query(inst)
		if err != nil {
			return false, err
		}
		headArgs := inst.Head.Args
		for {
			if r.stopRequested() {
				return false, nil
			}
			tu, ok := stream.Next()
			if !ok {
				return true, nil
			}
			s2 := s
			bindOK := true
			for i, t := range headArgs {
				if t.IsVar() {
					bound := s2.Walk(t)
					if bound.IsConst() {
						if !bound.Const.Equal(tu[i]) {
							bindOK = false
							break
						}
						continue
					}
					s2 = s2.Bind(bound.Var, logic.C(tu[i]))
				}
			}
			if !bindOK {
				continue
			}
			acc2 := acc
			if explain {
				acc2 = appendProof(acc, &Proof{Kind: "query", Detail: inst.String(), Tuple: tu})
			}
			alive, err := cont(s2, acc2)
			if err != nil || !alive {
				return alive, err
			}
		}

	case itemCall:
		goal := s.ApplyAtom(renameAtom(head.atom, ren))
		key := canonicalGoal(goal)
		for _, a := range anc {
			if a == key {
				return true, nil // variant ancestor: prune this branch
			}
		}
		anc2 := append(anc, key)
		clauses := r.prog.clauses[goal.Ref()]
		for _, cc := range clauses {
			cc := cc
			renamed, mapping := renameClause(cc.clause)
			s2, ok := logic.Unify(renamed.Head, goal, s)
			if !ok {
				continue
			}
			alive, err := r.run(cc.items, mapping, s2, depth+1, anc2, nil, func(s3 logic.Subst, sub []*Proof) bool {
				acc2 := acc
				if explain {
					node := &Proof{
						Kind:     "rule",
						Detail:   fmt.Sprintf("%s by rule %s of %s", s3.ApplyAtom(goal), ruleIDOf(cc), cc.key.Pred),
						Children: sub,
					}
					acc2 = appendProof(acc, node)
				}
				ok, err := cont(s3, acc2)
				if err != nil {
					panic(searchError{err})
				}
				return ok
			})
			if err != nil || !alive {
				return alive, err
			}
		}
		return true, nil

	default:
		return false, fmt.Errorf("ie: unknown body item kind")
	}
}

// searchError tunnels an error out of a continuation callback.
type searchError struct{ err error }

// runAllSafe wraps run to convert tunneled errors (used by runAll's caller).
func (r *runner) runSafe(items []bodyItem, ren map[string]string, s logic.Subst, depth int, anc []string, acc []*Proof, k func(logic.Subst, []*Proof) bool) (alive bool, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			if se, ok := rec.(searchError); ok {
				alive, err = false, se.err
				return
			}
			panic(rec)
		}
	}()
	return r.run(items, ren, s, depth, anc, acc, k)
}

// appendProof appends without aliasing the accumulated slice across
// backtracking branches (full slice expression forces copy-on-append).
func appendProof(acc []*Proof, p *Proof) []*Proof {
	return append(acc[:len(acc):len(acc)], p)
}

// ruleIDOf renders the clause's rule identifier ("r1", "r2", ... in program
// order of the head predicate).
func ruleIDOf(cc *compiledClause) string {
	return fmt.Sprintf("r%d", cc.key.Index+1)
}

// instantiate builds the CAQL query for a segment occurrence: the template
// renamed into the current clause instance and closed under the current
// substitution.
func (r *runner) instantiate(vt *viewTemplate, ren map[string]string, s logic.Subst) *caql.Query {
	q := vt.query.Clone()
	apply := func(a logic.Atom) logic.Atom {
		return s.ApplyAtom(renameAtom(a, ren))
	}
	q.Head = apply(q.Head)
	for i := range q.Rels {
		q.Rels[i] = apply(q.Rels[i])
	}
	for i := range q.Cmps {
		q.Cmps[i] = apply(q.Cmps[i])
	}
	return q
}

// renameClause renames a clause apart and returns the original→fresh
// variable mapping so segment templates can be instantiated consistently.
func renameClause(c logic.Clause) (logic.Clause, map[string]string) {
	renamed := logic.RenameApart(c)
	mapping := make(map[string]string)
	// Recover the mapping positionally.
	var walk func(orig, fresh logic.Atom)
	walk = func(orig, fresh logic.Atom) {
		for i := range orig.Args {
			if orig.Args[i].IsVar() {
				mapping[orig.Args[i].Var] = fresh.Args[i].Var
			}
		}
	}
	walk(c.Head, renamed.Head)
	for i := range c.Body {
		walk(c.Body[i], renamed.Body[i])
	}
	return renamed, mapping
}

func renameAtom(a logic.Atom, ren map[string]string) logic.Atom {
	if ren == nil {
		return a
	}
	args := make([]logic.Term, len(a.Args))
	for i, t := range a.Args {
		if t.IsVar() {
			if n, ok := ren[t.Var]; ok {
				args[i] = logic.V(n)
				continue
			}
		}
		args[i] = t
	}
	return logic.Atom{Pred: a.Pred, Args: args}
}

// canonicalGoal renders a goal with variables numbered by first occurrence,
// for variant-ancestor pruning.
func canonicalGoal(a logic.Atom) string {
	names := make(map[string]int)
	out := a.Pred + "("
	for i, t := range a.Args {
		if i > 0 {
			out += ","
		}
		if t.IsVar() {
			n, ok := names[t.Var]
			if !ok {
				n = len(names)
				names[t.Var] = n
			}
			out += fmt.Sprintf("V%d", n)
		} else {
			out += t.Const.Key()
		}
	}
	return out + ")"
}
