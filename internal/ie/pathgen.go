package ie

import (
	"repro/internal/advice"
	"repro/internal/logic"
)

// The path expression creator (Section 4.2.2): traverse the compiled program
// from the AI query, emitting a query pattern per view occurrence, sequences
// for rule bodies, and alternations where alternatives are conditional. "All
// alternatives under decision points must be traversed because the path
// expression creator will not have available the DBMS contents on which the
// decision will be based."

// pathExpression builds the session's path expression.
func (p *program) pathExpression() advice.Expr {
	visited := make(map[logic.PredRef]bool)
	expr := p.exprForItems(p.goalItems, visited)
	if expr == nil {
		return nil
	}
	// The whole session processes the AI query once.
	if seq, ok := expr.(*advice.Sequence); ok && seq.Lo == 1 && seq.Hi.N == 1 && !seq.Hi.Unbounded() {
		return seq
	}
	return &advice.Sequence{Elems: []advice.Expr{expr}, Lo: 1, Hi: advice.Bound{N: 1}}
}

// exprForItems renders a rule body (or the goal) as a sequence: the first
// query-producing item, then the remainder wrapped in a repetition bounded
// by the first item's producer cardinality — the paper's
// (d1(Y^), (d2, d3)<0,|Y|>) shape: the tail re-runs once per binding the
// head of the sequence produces.
func (p *program) exprForItems(items []bodyItem, visited map[logic.PredRef]bool) advice.Expr {
	var exprs []advice.Expr
	var producers []string // producer var of the preceding pattern, if any
	for _, it := range items {
		switch it.kind {
		case itemSegment:
			exprs = append(exprs, p.patternFor(it.seg))
			producers = append(producers, firstProducer(it.seg))
		case itemCall:
			sub := p.exprForPred(it.atom.Ref(), visited)
			if sub != nil {
				exprs = append(exprs, sub)
				producers = append(producers, "")
			}
		}
	}
	switch len(exprs) {
	case 0:
		return nil
	case 1:
		return exprs[0]
	}
	// Fold: head, then tail repeated per binding of head's producer.
	head := exprs[0]
	var tail advice.Expr
	if len(exprs) == 2 {
		tail = exprs[1]
	} else {
		tail = &advice.Sequence{Elems: exprs[1:], Lo: 1, Hi: advice.Bound{N: 1}}
	}
	bound := advice.Bound{N: 1}
	lo := 1
	if pv := producers[0]; pv != "" {
		bound = advice.Bound{Sym: pv}
		lo = 0
	}
	tailSeq, ok := tail.(*advice.Sequence)
	if !ok {
		tailSeq = &advice.Sequence{Elems: []advice.Expr{tail}}
	}
	tailSeq.Lo, tailSeq.Hi = lo, bound
	return &advice.Sequence{Elems: []advice.Expr{head, tailSeq}, Lo: 1, Hi: advice.Bound{N: 1}}
}

// exprForPred renders the alternatives of a derived predicate. When any
// alternative is conditional — guarded by a leading IE-processed derived
// atom, as in the paper's Example 2 — the group is an alternation (with
// selection term 1 when the guards are pairwise mutually exclusive);
// otherwise a Prolog-style all-solutions traversal queries the alternatives
// in order, which is a sequence (Example 1).
func (p *program) exprForPred(ref logic.PredRef, visited map[logic.PredRef]bool) advice.Expr {
	if visited[ref] {
		return nil // recursive occurrence: a single instance appears
	}
	visited[ref] = true
	defer delete(visited, ref)

	var elems []advice.Expr
	conditional := false
	var guards []logic.Atom
	allGuarded := len(p.clauses[ref]) > 0
	for _, cc := range p.clauses[ref] {
		e := p.exprForItems(cc.items, visited)
		if e == nil {
			continue
		}
		elems = append(elems, e)
		// A leading derived atom makes the clause's queries conditional.
		guarded := false
		for _, it := range cc.items {
			if it.kind == itemCall {
				guarded = true
				guards = append(guards, it.atom)
			}
			if it.kind == itemSegment {
				break
			}
			if it.kind == itemCall {
				break
			}
		}
		if guarded {
			conditional = true
		} else {
			allGuarded = false
		}
	}
	switch len(elems) {
	case 0:
		return nil
	case 1:
		return elems[0]
	}
	if conditional {
		alt := &advice.Alternation{Elems: elems}
		if allGuarded && p.guardsMutex(guards) {
			alt.Select = 1
		}
		return alt
	}
	return &advice.Sequence{Elems: elems, Lo: 1, Hi: advice.Bound{N: 1}}
}

// guardsMutex reports whether the leading guard atoms are pairwise mutually
// exclusive over the same arguments (mutex SOAs, Section 4).
func (p *program) guardsMutex(guards []logic.Atom) bool {
	if len(guards) < 2 {
		return false
	}
	for i := 0; i < len(guards); i++ {
		for j := i + 1; j < len(guards); j++ {
			a, b := guards[i], guards[j]
			if !p.kb.MutuallyExclusive(a.Ref(), b.Ref()) {
				return false
			}
			if len(a.Args) != len(b.Args) || !sameArgs(a, b) {
				return false
			}
		}
	}
	return true
}

// patternFor renders a view template as a query pattern with annotations.
func (p *program) patternFor(vt *viewTemplate) *advice.Pattern {
	pat := &advice.Pattern{Name: vt.name}
	for i, t := range vt.query.Head.Args {
		arg := advice.PatArg{Name: t.String()}
		if i < len(vt.bindings) {
			arg.Binding = vt.bindings[i]
		}
		pat.Args = append(pat.Args, arg)
	}
	return pat
}

// firstProducer returns the first producer-annotated variable of a view, or
// "" when the view is all-consumer.
func firstProducer(vt *viewTemplate) string {
	for i, b := range vt.bindings {
		if b == advice.BindProducer && vt.query.Head.Args[i].IsVar() {
			return vt.query.Head.Args[i].Var
		}
	}
	return ""
}
