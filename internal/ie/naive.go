package ie

import (
	"fmt"

	"repro/internal/caql"
	"repro/internal/logic"
	"repro/internal/relation"
)

// BottomUp evaluates the knowledge base over base extensions to a fixpoint
// (set semantics), returning the derived extension of every reachable
// derived predicate. It is both the substrate of the fully-compiled
// strategy (set-at-a-time, all solutions) and the semantic reference the
// other strategies are differentially tested against.
//
// Evaluation is semi-naive in spirit: each round re-derives only rules whose
// body predicates changed in the previous round; tuples are deduplicated per
// predicate, so the iteration terminates on any finite database (Datalog).
func BottomUp(kb *logic.KB, base caql.RelationSource, roots []logic.PredRef) (map[logic.PredRef]*relation.Relation, error) {
	// Collect reachable derived predicates.
	reach := make(map[logic.PredRef]bool)
	var visit func(ref logic.PredRef)
	visit = func(ref logic.PredRef) {
		if reach[ref] || kb.IsBase(ref) {
			return
		}
		reach[ref] = true
		for _, c := range kb.Rules(ref) {
			for _, a := range c.Body {
				if !a.IsComparison() {
					visit(a.Ref())
				}
			}
		}
	}
	for _, r := range roots {
		visit(r)
	}

	derived := make(map[logic.PredRef]*relation.Relation)
	seen := make(map[logic.PredRef]map[string]bool)
	for ref := range reach {
		derived[ref] = relation.New(ref.Name, placeholderSchema(ref.Arity))
		seen[ref] = make(map[string]bool)
	}

	src := overlaySource{base: base, derived: derived}

	changed := make(map[logic.PredRef]bool, len(reach))
	for ref := range reach {
		changed[ref] = true
	}
	for round := 0; ; round++ {
		if round > 1_000_000 {
			return nil, fmt.Errorf("ie: bottom-up evaluation did not converge")
		}
		nextChanged := make(map[logic.PredRef]bool)
		for ref := range reach {
			for _, c := range kb.Rules(ref) {
				if round > 0 && !bodyTouches(kb, c, changed) {
					continue
				}
				q := caql.NewQuery(c.Head, c.Body)
				if err := q.Validate(); err != nil {
					return nil, fmt.Errorf("ie: rule %s: %w", c, err)
				}
				out, err := caql.Eval(q, src)
				if err != nil {
					return nil, fmt.Errorf("ie: rule %s: %w", c, err)
				}
				dst := derived[ref]
				grew := false
				for _, tu := range out.Tuples() {
					k := tu.Key()
					if !seen[ref][k] {
						seen[ref][k] = true
						dst.MustAppend(tu)
						grew = true
					}
				}
				if grew {
					nextChanged[ref] = true
					// Fix placeholder schema kinds from the first real rows.
					fixSchema(dst, out)
				}
			}
		}
		if len(nextChanged) == 0 {
			return derived, nil
		}
		changed = nextChanged
	}
}

func bodyTouches(kb *logic.KB, c logic.Clause, changed map[logic.PredRef]bool) bool {
	for _, a := range c.Body {
		if a.IsComparison() {
			continue
		}
		if changed[a.Ref()] {
			return true
		}
	}
	return false
}

// overlaySource resolves base relations through the base source and derived
// relations from the in-progress extensions.
type overlaySource struct {
	base    caql.RelationSource
	derived map[logic.PredRef]*relation.Relation
}

// RelationExtension implements caql.RelationSource.
func (o overlaySource) RelationExtension(name string, arity int) (*relation.Relation, error) {
	if r, ok := o.derived[logic.PredRef{Name: name, Arity: arity}]; ok {
		return r, nil
	}
	return o.base.RelationExtension(name, arity)
}

func placeholderSchema(arity int) *relation.Schema {
	attrs := make([]relation.Attr, arity)
	for i := range attrs {
		attrs[i] = relation.Attr{Name: fmt.Sprintf("a%d", i), Kind: relation.KindNull}
	}
	return relation.NewSchema(attrs...)
}

// fixSchema upgrades null-kinded placeholder attributes once real tuples
// show their kinds. Relations share schemas by pointer, so a fresh schema is
// swapped in via reconstruction.
func fixSchema(dst, sample *relation.Relation) {
	need := false
	for i := 0; i < dst.Schema().Arity(); i++ {
		if dst.Schema().Attr(i).Kind == relation.KindNull && sample.Schema().Attr(i).Kind != relation.KindNull {
			need = true
		}
	}
	if !need {
		return
	}
	attrs := make([]relation.Attr, dst.Schema().Arity())
	for i := range attrs {
		a := dst.Schema().Attr(i)
		if a.Kind == relation.KindNull {
			a.Kind = sample.Schema().Attr(i).Kind
		}
		attrs[i] = relation.Attr{Name: a.Name, Kind: a.Kind}
	}
	*dst = *relation.FromTuples(dst.Name, relation.NewSchema(attrs...), dst.Tuples())
}

// Answers filters a derived extension by unification with the (possibly
// partially bound) goal, returning the answer substitutions projected onto
// the goal's variables.
func Answers(goal logic.Atom, ext *relation.Relation) []logic.Subst {
	var out []logic.Subst
	for _, tu := range ext.Tuples() {
		s := logic.NewSubst()
		ok := true
		for i, t := range goal.Args {
			switch {
			case t.IsConst():
				if !t.Const.Equal(tu[i]) {
					ok = false
				}
			default:
				bound := s.Walk(t)
				if bound.IsConst() {
					if !bound.Const.Equal(tu[i]) {
						ok = false
					}
				} else {
					s.BindInPlace(bound.Var, logic.C(tu[i]))
				}
			}
			if !ok {
				break
			}
		}
		if ok {
			out = append(out, s)
		}
	}
	return out
}
