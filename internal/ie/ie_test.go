package ie

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/advice"
	"repro/internal/bridge"
	"repro/internal/caql"
	"repro/internal/logic"
	"repro/internal/relation"
	"repro/internal/remotedb"
)

// mapDS is a minimal bridge.DataSource over in-memory extensions: every
// query is evaluated directly (no caching, no remote). It isolates IE tests
// from the CMS.
type mapDS struct {
	src     caql.MapSource
	queries []string
}

func (m *mapDS) BeginSession(adv *advice.Advice) bridge.Session { return &mapSession{ds: m} }

func (m *mapDS) RelationSchema(name string, arity int) (*relation.Schema, error) {
	return m.src.RelationSchema(name, arity)
}

func (m *mapDS) RelationStats(name string) (remotedb.TableStats, error) {
	r, ok := m.src[name]
	if !ok {
		return remotedb.TableStats{}, fmt.Errorf("no relation %s", name)
	}
	st := remotedb.TableStats{Rows: r.Len(), Distinct: make([]int, r.Schema().Arity())}
	for c := 0; c < r.Schema().Arity(); c++ {
		seen := map[string]bool{}
		for _, tu := range r.Tuples() {
			seen[tu[c].Key()] = true
		}
		st.Distinct[c] = len(seen)
	}
	return st, nil
}

func (m *mapDS) Stats() bridge.SourceStats {
	return bridge.SourceStats{Queries: int64(len(m.queries))}
}

type mapSession struct{ ds *mapDS }

func (s *mapSession) Query(q *caql.Query) (*bridge.Stream, error) {
	s.ds.queries = append(s.ds.queries, q.String())
	it, schema, err := caql.EvalLazy(q, s.ds.src)
	if err != nil {
		return nil, err
	}
	return bridge.NewStream(schema, it, true), nil
}

func (s *mapSession) QueryCtx(ctx context.Context, q *caql.Query) (*bridge.Stream, error) {
	return s.Query(q)
}

func (s *mapSession) QueryText(src string) (*bridge.Stream, error) {
	q, err := caql.Parse(src)
	if err != nil {
		return nil, err
	}
	return s.Query(q)
}

func (s *mapSession) QueryTextCtx(ctx context.Context, src string) (*bridge.Stream, error) {
	return s.QueryText(src)
}

func (s *mapSession) End() {}

// example1KB is the paper's Example 1 (Section 4.2.2).
const example1KB = `
	:- base(b1/2).
	:- base(b2/2).
	:- base(b3/3).
	k1(X, Y) :- b1(c1, Y), k2(X, Y).
	k2(X, Y) :- b2(X, Z), b3(Z, c2, Y).
	k2(X, Y) :- b3(X, c3, Z), b1(Z, Y).
`

func example1Data(rng *rand.Rand, rows int) caql.MapSource {
	strs := []string{"c1", "c2", "c3", "d"}
	b1 := relation.New("b1", relation.NewSchema(
		relation.Attr{Name: "x", Kind: relation.KindString},
		relation.Attr{Name: "y", Kind: relation.KindInt}))
	for i := 0; i < rows; i++ {
		b1.MustAppend(relation.Tuple{relation.Str(strs[rng.Intn(len(strs))]), relation.Int(int64(rng.Intn(6)))})
	}
	b2 := relation.New("b2", relation.NewSchema(
		relation.Attr{Name: "x", Kind: relation.KindInt},
		relation.Attr{Name: "y", Kind: relation.KindInt}))
	for i := 0; i < rows; i++ {
		b2.MustAppend(relation.Tuple{relation.Int(int64(rng.Intn(6))), relation.Int(int64(rng.Intn(6)))})
	}
	b3 := relation.New("b3", relation.NewSchema(
		relation.Attr{Name: "x", Kind: relation.KindInt},
		relation.Attr{Name: "y", Kind: relation.KindString},
		relation.Attr{Name: "z", Kind: relation.KindInt}))
	for i := 0; i < rows*2; i++ {
		b3.MustAppend(relation.Tuple{relation.Int(int64(rng.Intn(6))), relation.Str(strs[rng.Intn(len(strs))]), relation.Int(int64(rng.Intn(6)))})
	}
	return caql.MapSource{"b1": b1, "b2": b2, "b3": b3}
}

func mustKB(t *testing.T, src string) *logic.KB {
	t.Helper()
	kb, err := logic.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	return kb
}

// TestExample1Advice reproduces the paper's Example 1 advice exactly: three
// view specifications and the path expression
// (d1(Y^), (d2(X^, Y?), d3(X^, Y?))<0,|Y|>)<1,1>.
func TestExample1Advice(t *testing.T) {
	kb := mustKB(t, example1KB)
	ds := &mapDS{src: example1Data(rand.New(rand.NewSource(1)), 10)}
	eng := New(kb, ds, Options{
		Strategy:       StrategyConjunction,
		Advice:         true,
		PathExpression: true,
	})
	adv, err := eng.Advice(logic.A("k1", logic.V("X"), logic.V("Y")))
	if err != nil {
		t.Fatal(err)
	}
	if len(adv.Views) != 3 {
		t.Fatalf("views = %d, want 3:\n%s", len(adv.Views), adv)
	}
	d1, d2, d3 := adv.Views[0], adv.Views[1], adv.Views[2]
	if got := d1.String(); got != `d1(Y^) :- b1(c1, Y) [r1].` {
		t.Errorf("d1 = %q", got)
	}
	if got := d2.String(); got != `d2(X^, Y?) :- b2(X, Z) & b3(Z, c2, Y) [r1].` {
		t.Errorf("d2 = %q", got)
	}
	if got := d3.String(); got != `d3(X^, Y?) :- b3(X, c3, Z) & b1(Z, Y) [r2].` {
		t.Errorf("d3 = %q", got)
	}
	if adv.Path == nil {
		t.Fatal("no path expression")
	}
	if got := adv.Path.String(); got != "(d1(Y^), (d2(X^, Y?), d3(X^, Y?))<0,|Y|>)<1,1>" {
		t.Errorf("path = %q", got)
	}
	if len(adv.BaseRels) != 3 {
		t.Errorf("base rels = %v", adv.BaseRels)
	}
}

// TestExample2Advice reproduces the paper's Example 2: guarded alternatives
// become an alternation, mutually exclusive guards give selection term 1.
func TestExample2Advice(t *testing.T) {
	kb := mustKB(t, `
		:- base(b1/2).
		:- base(b2/2).
		:- base(b3/3).
		:- mutex(k3/1, k4/1).
		k1(X, Y) :- b1(c1, Y), k2(X, Y).
		k2(X, Y) :- k3(X), b2(X, Z), b3(Z, c2, Y).
		k2(X, Y) :- k4(X), b3(X, c3, Z), b1(Z, Y).
		k3(1).
		k3(2).
		k4(3).
	`)
	ds := &mapDS{src: example1Data(rand.New(rand.NewSource(2)), 10)}
	eng := New(kb, ds, Options{Strategy: StrategyConjunction, Advice: true, PathExpression: true, Reorder: false})
	adv, err := eng.Advice(logic.A("k1", logic.V("X"), logic.V("Y")))
	if err != nil {
		t.Fatal(err)
	}
	got := adv.Path.String()
	if !strings.Contains(got, "[") || !strings.Contains(got, "]^1") {
		t.Errorf("expected mutually exclusive alternation in path, got %q", got)
	}
	if !strings.Contains(got, "<0,|Y|>") {
		t.Errorf("expected |Y| repetition bound, got %q", got)
	}
}

func answersOf(t *testing.T, eng *Engine, goal string) *relation.Relation {
	t.Helper()
	sol, err := eng.AskText(goal)
	if err != nil {
		t.Fatal(err)
	}
	out := sol.Tuples()
	if sol.Err() != nil {
		t.Fatalf("ask %s: %v", goal, sol.Err())
	}
	return relation.DistinctRel(out)
}

// TestStrategiesAgreeExample1 runs all three strategies on Example 1 and
// checks they produce the same solution set as direct bottom-up evaluation.
func TestStrategiesAgreeExample1(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	kb := mustKB(t, example1KB)
	src := example1Data(rng, 15)
	want := bottomUpAnswers(t, kb, src, "k1(X, Y)?")
	for _, strat := range []Strategy{StrategyInterpreted, StrategyConjunction, StrategyCompiled} {
		ds := &mapDS{src: src}
		eng := New(kb, ds, Options{Strategy: strat, Advice: true, PathExpression: true, Reorder: true})
		got := answersOf(t, eng, "k1(X, Y)?")
		if !got.EqualAsSet(want) {
			t.Fatalf("strategy %s disagrees:\ngot %v\nwant %v", strat, got.Sort(), want.Sort())
		}
	}
}

func bottomUpAnswers(t *testing.T, kb *logic.KB, src caql.MapSource, goal string) *relation.Relation {
	t.Helper()
	g, err := logic.ParseAtom(goal)
	if err != nil {
		t.Fatal(err)
	}
	derived, err := BottomUp(kb, src, []logic.PredRef{g.Ref()})
	if err != nil {
		t.Fatal(err)
	}
	ext := derived[g.Ref()]
	var vars []string
	seen := map[string]bool{}
	for _, tm := range g.Args {
		if tm.IsVar() && !seen[tm.Var] {
			seen[tm.Var] = true
			vars = append(vars, tm.Var)
		}
	}
	attrs := make([]relation.Attr, len(vars))
	for i, v := range vars {
		attrs[i] = relation.Attr{Name: v, Kind: relation.KindNull}
	}
	out := relation.New("want", relation.NewSchema(attrs...))
	for _, s := range Answers(g, ext) {
		tu := make(relation.Tuple, len(vars))
		for i, v := range vars {
			tm := s.Walk(logic.V(v))
			if tm.IsConst() {
				tu[i] = tm.Const
			}
		}
		out.MustAppend(tu)
	}
	return relation.DistinctRel(out)
}

// TestRecursionAncestor checks recursive programs across strategies on
// acyclic data (interpreted SLD is Prolog-like: cyclic data is the compiled
// strategy's territory).
func TestRecursionAncestor(t *testing.T) {
	kb := mustKB(t, `
		:- base(parent/2).
		anc(X, Y) :- parent(X, Y).
		anc(X, Y) :- parent(X, Z), anc(Z, Y).
	`)
	parent := relation.New("parent", relation.NewSchema(
		relation.Attr{Name: "p", Kind: relation.KindString},
		relation.Attr{Name: "c", Kind: relation.KindString}))
	for _, pc := range [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}, {"a", "e"}, {"e", "f"}} {
		parent.MustAppend(relation.Tuple{relation.Str(pc[0]), relation.Str(pc[1])})
	}
	src := caql.MapSource{"parent": parent}
	want := bottomUpAnswers(t, kb, src, "anc(X, Y)?")
	if want.Len() != 9 {
		t.Fatalf("bottom-up anc count = %d, want 9", want.Len())
	}
	for _, strat := range []Strategy{StrategyInterpreted, StrategyConjunction, StrategyCompiled} {
		eng := New(kb, &mapDS{src: src}, Options{Strategy: strat})
		got := answersOf(t, eng, "anc(X, Y)?")
		if !got.EqualAsSet(want) {
			t.Fatalf("strategy %s anc wrong:\ngot %v\nwant %v", strat, got.Sort(), want.Sort())
		}
	}
	// Bound query.
	wantA := bottomUpAnswers(t, kb, src, `anc("a", Y)?`)
	for _, strat := range []Strategy{StrategyInterpreted, StrategyCompiled} {
		eng := New(kb, &mapDS{src: src}, Options{Strategy: strat})
		got := answersOf(t, eng, `anc("a", Y)?`)
		if !got.EqualAsSet(wantA) {
			t.Fatalf("strategy %s anc(a,Y) wrong:\ngot %v\nwant %v", strat, got.Sort(), wantA.Sort())
		}
	}
}

// TestRecursionCyclicCompiled: the compiled strategy handles cyclic data.
func TestRecursionCyclicCompiled(t *testing.T) {
	kb := mustKB(t, `
		:- base(edge/2).
		reach(X, Y) :- edge(X, Y).
		reach(X, Y) :- edge(X, Z), reach(Z, Y).
	`)
	edge := relation.New("edge", relation.NewSchema(
		relation.Attr{Name: "a", Kind: relation.KindInt},
		relation.Attr{Name: "b", Kind: relation.KindInt}))
	for _, e := range [][2]int64{{1, 2}, {2, 3}, {3, 1}, {3, 4}} {
		edge.MustAppend(relation.Tuple{relation.Int(e[0]), relation.Int(e[1])})
	}
	src := caql.MapSource{"edge": edge}
	eng := New(kb, &mapDS{src: src}, Options{Strategy: StrategyCompiled})
	got := answersOf(t, eng, "reach(1, Y)?")
	// 1 reaches 2,3,1,4.
	if got.Len() != 4 {
		t.Fatalf("reach(1,Y) = %v", got.Sort())
	}
}

// TestRandomProgramsDifferential: random non-recursive programs over random
// data; all strategies must agree with bottom-up evaluation.
func TestRandomProgramsDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 25; trial++ {
		kbSrc, goal := randomProgram(rng)
		kb := mustKB(t, kbSrc)
		src := randomData(rng)
		want := bottomUpAnswers(t, kb, src, goal)
		for _, strat := range []Strategy{StrategyInterpreted, StrategyConjunction, StrategyCompiled} {
			eng := New(kb, &mapDS{src: src}, Options{Strategy: strat, Reorder: trial%2 == 0, Advice: true, PathExpression: true})
			got := answersOf(t, eng, goal)
			if !got.EqualAsSet(want) {
				t.Fatalf("trial %d strategy %s disagrees on %s\nKB:\n%s\ngot %v\nwant %v",
					trial, strat, goal, kbSrc, got.Sort(), want.Sort())
			}
		}
	}
}

// randomProgram builds a small stratified non-recursive program.
func randomProgram(rng *rand.Rand) (string, string) {
	var b strings.Builder
	b.WriteString(":- base(r/2).\n:- base(s/2).\n")
	// Layer 1: p1, p2 defined over base.
	layer1 := []string{"p1", "p2"}
	for _, p := range layer1 {
		n := 1 + rng.Intn(2)
		for i := 0; i < n; i++ {
			switch rng.Intn(3) {
			case 0:
				fmt.Fprintf(&b, "%s(X, Y) :- r(X, Y).\n", p)
			case 1:
				fmt.Fprintf(&b, "%s(X, Y) :- r(X, Z), s(Z, Y).\n", p)
			default:
				fmt.Fprintf(&b, "%s(X, Y) :- s(X, Y), X != Y.\n", p)
			}
		}
	}
	// Layer 2: q over layer 1 and base.
	switch rng.Intn(3) {
	case 0:
		b.WriteString("q(X, Y) :- p1(X, Z), p2(Z, Y).\n")
	case 1:
		b.WriteString("q(X, Y) :- p1(X, Y), r(Y, W), W >= 0.\n")
	default:
		b.WriteString("q(X, Y) :- r(X, Z), p2(Z, Y).\n")
	}
	goals := []string{"q(X, Y)?", "q(1, Y)?", "q(X, 2)?"}
	return b.String(), goals[rng.Intn(len(goals))]
}

func randomData(rng *rand.Rand) caql.MapSource {
	src := caql.MapSource{}
	for _, name := range []string{"r", "s"} {
		rel := relation.New(name, relation.NewSchema(
			relation.Attr{Name: "a", Kind: relation.KindInt},
			relation.Attr{Name: "b", Kind: relation.KindInt}))
		for i := 0; i < 3+rng.Intn(15); i++ {
			rel.MustAppend(relation.Tuple{relation.Int(int64(rng.Intn(5))), relation.Int(int64(rng.Intn(5)))})
		}
		src[name] = rel
	}
	return src
}

// TestSolutionsLaziness: the interpreted strategy produces the first answer
// without exhausting the search, and Close releases it.
func TestSolutionsLaziness(t *testing.T) {
	kb := mustKB(t, example1KB)
	src := example1Data(rand.New(rand.NewSource(5)), 30)
	ds := &mapDS{src: src}
	eng := New(kb, ds, Options{Strategy: StrategyInterpreted})
	sol, err := eng.AskText("k1(X, Y)?")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sol.Next(); !ok {
		sol.Close()
		t.Skip("no solutions with this data; adjust seed")
	}
	queriesAfterOne := len(ds.queries)
	sol.Close()
	// A full run issues more queries than stopping after one solution.
	ds2 := &mapDS{src: src}
	eng2 := New(kb, ds2, Options{Strategy: StrategyInterpreted})
	sol2, err := eng2.AskText("k1(X, Y)?")
	if err != nil {
		t.Fatal(err)
	}
	all := sol2.All()
	if len(all) == 0 {
		t.Fatal("expected solutions")
	}
	if len(ds2.queries) < queriesAfterOne {
		t.Fatalf("full run issued fewer queries (%d) than single-solution run (%d)?", len(ds2.queries), queriesAfterOne)
	}
}

func TestGraphStructureExample1(t *testing.T) {
	kb := mustKB(t, example1KB)
	sh := &Shaper{}
	g, err := Extract(kb, logic.A("k1", logic.V("X"), logic.V("Y")), sh)
	if err != nil {
		t.Fatal(err)
	}
	orN, andN := g.CountNodes()
	// k1 OR + (b1, k2) ORs + k2's two rules' (b2, b3) and (b3, b1) ORs.
	if orN != 7 || andN != 3 {
		t.Fatalf("graph shape: %d OR, %d AND", orN, andN)
	}
	if len(g.BaseRels) != 3 {
		t.Fatalf("base rels = %v", g.BaseRels)
	}
	leaves := 0
	g.Walk(func(n *ORNode) {
		if n.Base {
			leaves++
		}
	})
	if leaves != 5 {
		t.Fatalf("base leaves = %d, want 5", leaves)
	}
}

func TestGraphRecursionCut(t *testing.T) {
	kb := mustKB(t, `
		:- base(parent/2).
		anc(X, Y) :- parent(X, Y).
		anc(X, Y) :- parent(X, Z), anc(Z, Y).
	`)
	g, err := Extract(kb, logic.A("anc", logic.V("X"), logic.V("Y")), &Shaper{})
	if err != nil {
		t.Fatal(err)
	}
	cuts := 0
	g.Walk(func(n *ORNode) {
		if n.RecursiveCut {
			cuts++
		}
	})
	if cuts != 1 {
		t.Fatalf("recursive cuts = %d, want 1", cuts)
	}
}

func TestShaperGroundComparisonCulling(t *testing.T) {
	kb := mustKB(t, `
		:- base(b/1).
		p(X) :- b(X), 1 > 2.
		p(X) :- b(X), 2 > 1.
	`)
	g, err := Extract(kb, logic.A("p", logic.V("X")), &Shaper{})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Root.Rules) != 1 {
		t.Fatalf("contradictory rule should be culled: %d rules", len(g.Root.Rules))
	}
	// The surviving rule's true comparison is dropped.
	if len(g.Root.Rules[0].Body) != 1 {
		t.Fatalf("satisfied ground comparison should be dropped: %v", g.Root.Rules[0].Body)
	}
}

func TestShaperMutexCulling(t *testing.T) {
	kb := mustKB(t, `
		:- base(b/1).
		:- mutex(m/1, f/1).
		m(X) :- b(X).
		f(X) :- b(X).
		weird(X) :- m(X), f(X).
		fine(X) :- m(X).
	`)
	g, err := Extract(kb, logic.A("weird", logic.V("X")), &Shaper{})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Root.Rules) != 0 {
		t.Fatal("mutex-contradictory rule should be culled")
	}
	g2, _ := Extract(kb, logic.A("fine", logic.V("X")), &Shaper{})
	if len(g2.Root.Rules) != 1 {
		t.Fatal("fine rule should survive")
	}
}

func TestShaperReordering(t *testing.T) {
	// With reordering, the bound/selective atom should come first.
	kb := mustKB(t, `
		:- base(big/2).
		:- base(small/2).
		p(X, Y) :- big(X, Z), small(Z, Y).
	`)
	big := relation.New("big", relation.NewSchema(
		relation.Attr{Name: "a", Kind: relation.KindInt}, relation.Attr{Name: "b", Kind: relation.KindInt}))
	for i := 0; i < 1000; i++ {
		big.MustAppend(relation.Tuple{relation.Int(int64(i)), relation.Int(int64(i % 10))})
	}
	small := relation.New("small", relation.NewSchema(
		relation.Attr{Name: "a", Kind: relation.KindInt}, relation.Attr{Name: "b", Kind: relation.KindInt}))
	for i := 0; i < 5; i++ {
		small.MustAppend(relation.Tuple{relation.Int(int64(i)), relation.Int(int64(i))})
	}
	ds := &mapDS{src: caql.MapSource{"big": big, "small": small}}
	sh := &Shaper{Reorder: true, Stats: ds}
	g, err := Extract(kb, logic.A("p", logic.V("X"), logic.V("Y")), sh)
	if err != nil {
		t.Fatal(err)
	}
	body := g.Root.Rules[0].Body
	if body[0].Pred != "small" {
		t.Fatalf("expected small first after reordering, got %v", body)
	}
}

func TestFunctionalDependencyOrdering(t *testing.T) {
	// An FD-bound atom should be estimated at one row and scheduled early.
	kb := mustKB(t, `
		:- base(keyed/2).
		:- base(other/2).
		:- fd(keyed/2, [1] -> [2]).
		p(Y, W) :- other(5, W), keyed(W, Y).
	`)
	sh := &Shaper{Reorder: true}
	g, err := Extract(kb, logic.A("p", logic.V("Y"), logic.V("W")), sh)
	if err != nil {
		t.Fatal(err)
	}
	body := g.Root.Rules[0].Body
	// other(5, W) binds W; keyed(W, Y) then has a bound FD determinant.
	if body[0].Pred != "other" || body[1].Pred != "keyed" {
		t.Fatalf("FD ordering unexpected: %v", body)
	}
}

func TestViewSpecMinimalArgSet(t *testing.T) {
	// Paper example: k9(X,Y) <- k2(X,Z) & b1(Z,W) & b2(W,U) & b3(U,V) & k3(V,Y)
	// view over the b-run is d(Z,V).
	kb := mustKB(t, `
		:- base(b1/2).
		:- base(b2/2).
		:- base(b3/2).
		k2(X, Z) :- b1(X, Z).
		k3(V, Y) :- b1(V, Y).
		k9(X, Y) :- k2(X, Z), b1(Z, W), b2(W, U), b3(U, V), k3(V, Y).
	`)
	ds := &mapDS{src: caql.MapSource{}}
	eng := New(kb, ds, Options{Strategy: StrategyConjunction, Advice: true})
	adv, err := eng.Advice(logic.A("k9", logic.V("X"), logic.V("Y")))
	if err != nil {
		t.Fatal(err)
	}
	// Find the 3-atom view.
	var found *advice.ViewSpec
	for _, v := range adv.Views {
		if len(v.Query.Rels) == 3 {
			found = v
		}
	}
	if found == nil {
		t.Fatalf("no 3-atom view in:\n%s", adv)
	}
	vars := map[string]bool{}
	for _, tm := range found.Query.Head.Args {
		vars[tm.Var] = true
	}
	if len(vars) != 2 || !vars["Z"] || !vars["V"] {
		t.Fatalf("minimal argument set wrong: %v (want Z, V)", SortedVars(vars))
	}
}

func TestInterpretedIssuesPerAtomQueries(t *testing.T) {
	kb := mustKB(t, example1KB)
	src := example1Data(rand.New(rand.NewSource(6)), 10)
	dsI := &mapDS{src: src}
	New(kb, dsI, Options{Strategy: StrategyInterpreted}).mustAsk(t, "k1(X, Y)?")
	dsC := &mapDS{src: src}
	New(kb, dsC, Options{Strategy: StrategyConjunction}).mustAsk(t, "k1(X, Y)?")
	dsF := &mapDS{src: src}
	New(kb, dsF, Options{Strategy: StrategyCompiled}).mustAsk(t, "k1(X, Y)?")
	// Interpreted issues at least as many queries as conjunction-compiled,
	// which issues at least as many as fully compiled.
	if !(len(dsI.queries) >= len(dsC.queries) && len(dsC.queries) >= len(dsF.queries)) {
		t.Fatalf("query counts along I-C range not monotone: interp=%d conj=%d comp=%d",
			len(dsI.queries), len(dsC.queries), len(dsF.queries))
	}
	// Compiled issues exactly one per base relation.
	if len(dsF.queries) != 3 {
		t.Fatalf("compiled queries = %d, want 3", len(dsF.queries))
	}
}

func (e *Engine) mustAsk(t *testing.T, goal string) *relation.Relation {
	t.Helper()
	sol, err := e.AskText(goal)
	if err != nil {
		t.Fatal(err)
	}
	out := sol.Tuples()
	if sol.Err() != nil {
		t.Fatal(sol.Err())
	}
	return out
}

func TestAskErrors(t *testing.T) {
	kb := mustKB(t, ":- base(b/1).\np(X) :- b(X).")
	ds := &mapDS{src: caql.MapSource{}} // no relations: queries fail
	eng := New(kb, ds, Options{Strategy: StrategyInterpreted})
	sol, err := eng.AskText("p(X)?")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sol.Next(); ok {
		t.Fatal("expected failure, got a solution")
	}
	if sol.Err() == nil {
		t.Fatal("missing relation should surface as Err")
	}
	if _, err := eng.AskText("p(X"); err == nil {
		t.Fatal("parse error expected")
	}
	if _, err := eng.Ask(logic.Cmp(logic.V("X"), relation.OpLt, logic.CInt(3))); err == nil {
		t.Fatal("comparison goal should be rejected")
	}
}

func TestSolutionsCloseEarly(t *testing.T) {
	kb := mustKB(t, example1KB)
	src := example1Data(rand.New(rand.NewSource(7)), 40)
	eng := New(kb, &mapDS{src: src}, Options{Strategy: StrategyInterpreted})
	for i := 0; i < 20; i++ {
		sol, err := eng.AskText("k1(X, Y)?")
		if err != nil {
			t.Fatal(err)
		}
		sol.Next()
		sol.Close() // must not deadlock or leak
		if _, ok := sol.Next(); ok {
			t.Fatal("Next after Close should report exhaustion")
		}
	}
}

func TestBottomUpComparisons(t *testing.T) {
	kb := mustKB(t, `
		:- base(n/1).
		small(X) :- n(X), X < 3.
	`)
	n := relation.New("n", relation.NewSchema(relation.Attr{Name: "v", Kind: relation.KindInt}))
	for i := int64(0); i < 6; i++ {
		n.MustAppend(relation.Tuple{relation.Int(i)})
	}
	derived, err := BottomUp(kb, caql.MapSource{"n": n}, []logic.PredRef{{Name: "small", Arity: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if derived[logic.PredRef{Name: "small", Arity: 1}].Len() != 3 {
		t.Fatalf("small = %v", derived)
	}
}

func TestAnswersUnification(t *testing.T) {
	ext := relation.New("p", relation.NewSchema(
		relation.Attr{Name: "a", Kind: relation.KindInt},
		relation.Attr{Name: "b", Kind: relation.KindInt}))
	ext.MustAppend(relation.Tuple{relation.Int(1), relation.Int(1)})
	ext.MustAppend(relation.Tuple{relation.Int(1), relation.Int(2)})
	ext.MustAppend(relation.Tuple{relation.Int(2), relation.Int(2)})
	// p(X, X): only diagonal rows.
	got := Answers(logic.A("p", logic.V("X"), logic.V("X")), ext)
	if len(got) != 2 {
		t.Fatalf("diagonal answers = %d, want 2", len(got))
	}
	// p(1, Y).
	got = Answers(logic.A("p", logic.CInt(1), logic.V("Y")), ext)
	if len(got) != 2 {
		t.Fatalf("bound answers = %d, want 2", len(got))
	}
	sort.Slice(got, func(i, j int) bool { return got[i].String() < got[j].String() })
	if got[0].String() != "{Y=1}" {
		t.Fatalf("answer = %v", got[0])
	}
}
