package ie

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/advice"
	"repro/internal/bridge"
	"repro/internal/logic"
	"repro/internal/relation"
)

// Strategy selects the point on the interpreted-compiled range (the I-C
// range, Section 2) the engine realizes for a query.
type Strategy int

// Strategies along the I-C range.
const (
	// StrategyInterpreted is the fully interpretive extreme: depth-first SLD
	// resolution with chronological backtracking, requesting data one base
	// atom at a time and consuming results tuple-at-a-time (Prolog-style,
	// single solution on demand).
	StrategyInterpreted Strategy = iota
	// StrategyConjunction performs conjunction compilation: maximal runs of
	// base atoms in a rule body are shipped as one CAQL query (partial
	// compilation), with backtracking across runs.
	StrategyConjunction
	// StrategyCompiled is the fully compiled extreme: the relevant base
	// relations are requested set-at-a-time and the whole relevant rule set
	// is evaluated bottom-up to a fixpoint, producing all solutions.
	StrategyCompiled
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyInterpreted:
		return "interpreted"
	case StrategyConjunction:
		return "conjunction"
	case StrategyCompiled:
		return "compiled"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Options configures the engine.
type Options struct {
	Strategy Strategy
	// MaxConjSize bounds view-specification conjunction size (Section 4.1's
	// flattening parameter; 1 is forced by StrategyInterpreted, <=0 means
	// unlimited).
	MaxConjSize int
	// Reorder enables shaper conjunct reordering.
	Reorder bool
	// Advice controls whether view specifications and base-relation lists
	// are transmitted to the CMS at session start.
	Advice bool
	// PathExpression additionally transmits a path expression (requires
	// Advice).
	PathExpression bool
	// MaxDepth bounds SLD recursion depth as a runaway guard (default 4096).
	MaxDepth int
	// Explain records a justification (derivation tree) for each solution;
	// available through Solutions.NextProof. Compiled-strategy answers carry
	// a bottom-up summary instead of a full tree.
	Explain bool
}

// DefaultOptions returns the full-featured interpreted configuration.
func DefaultOptions() Options {
	return Options{
		Strategy:       StrategyInterpreted,
		Reorder:        true,
		Advice:         true,
		PathExpression: true,
		MaxDepth:       4096,
	}
}

// Engine is the inference engine: a knowledge base plus a data source (the
// CMS or a baseline). Engines are safe for concurrent Ask calls; each Ask
// opens its own session.
type Engine struct {
	kb   *logic.KB
	ds   bridge.DataSource
	opts Options
}

// New builds an engine.
func New(kb *logic.KB, ds bridge.DataSource, opts Options) *Engine {
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = 4096
	}
	if opts.Strategy == StrategyInterpreted {
		opts.MaxConjSize = 1
	}
	return &Engine{kb: kb, ds: ds, opts: opts}
}

// KB returns the engine's knowledge base.
func (e *Engine) KB() *logic.KB { return e.kb }

// answer pairs a solution with its optional justification.
type answer struct {
	sub   logic.Subst
	proof *Proof
}

// Solutions is the lazy stream of answers to an AI query: a single solution
// is produced on demand (the paper's single-solution strategy), and Close
// abandons the remaining search.
type Solutions struct {
	vars []string

	ch      chan answer
	errCh   chan error
	stop    chan struct{}
	stopped sync.Once
	err     error
	done    bool
}

// Vars returns the AI query's variable names, in order of appearance.
func (s *Solutions) Vars() []string { return append([]string(nil), s.vars...) }

// Next returns the next answer substitution; ok is false when the search is
// exhausted (check Err afterwards).
func (s *Solutions) Next() (logic.Subst, bool) {
	sub, _, ok := s.NextProof()
	return sub, ok
}

// NextProof returns the next answer with its justification (nil unless the
// engine runs with Options.Explain).
func (s *Solutions) NextProof() (logic.Subst, *Proof, bool) {
	if s.done {
		return nil, nil, false
	}
	select {
	case a, ok := <-s.ch:
		if !ok {
			s.done = true
			s.err = <-s.errCh
			return nil, nil, false
		}
		return a.sub, a.proof, true
	case err := <-s.errCh:
		s.done = true
		s.err = err
		return nil, nil, false
	}
}

// All drains the remaining answers.
func (s *Solutions) All() []logic.Subst {
	var out []logic.Subst
	for {
		sub, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, sub)
	}
}

// Err reports a search error (after Next returned false).
func (s *Solutions) Err() error { return s.err }

// Close abandons the search and releases the producer.
func (s *Solutions) Close() {
	s.stopped.Do(func() { close(s.stop) })
	// Drain so the producer unblocks and exits.
	for {
		_, ok := <-s.ch
		if !ok {
			break
		}
	}
	if !s.done {
		s.done = true
		s.err = <-s.errCh
	}
}

// Tuples renders answers as a relation over the query variables; a
// convenience for tests and examples.
func (s *Solutions) Tuples() *relation.Relation {
	attrs := make([]relation.Attr, len(s.vars))
	for i, v := range s.vars {
		attrs[i] = relation.Attr{Name: v, Kind: relation.KindNull}
	}
	out := relation.New("answers", relation.NewSchema(attrs...))
	for {
		sub, ok := s.Next()
		if !ok {
			break
		}
		tu := make(relation.Tuple, len(s.vars))
		for i, v := range s.vars {
			t := sub.Walk(logic.V(v))
			if t.IsConst() {
				tu[i] = t.Const
			}
		}
		out.MustAppend(tu)
	}
	return out
}

// AskText parses and asks an AI query ("k1(X, Y)?").
func (e *Engine) AskText(src string) (*Solutions, error) {
	goal, err := logic.ParseAtom(src)
	if err != nil {
		return nil, err
	}
	return e.Ask(goal)
}

// Ask answers an AI query: compile the problem graph and advice, open a
// session (transmitting the advice), and run the configured strategy. The
// result is a lazy solution stream.
func (e *Engine) Ask(goal logic.Atom) (*Solutions, error) {
	if goal.IsComparison() {
		return nil, fmt.Errorf("ie: AI query cannot be a comparison")
	}
	prog, err := compile(e.kb, goal, e.opts, e.ds)
	if err != nil {
		return nil, err
	}
	var adv *advice.Advice
	if e.opts.Advice {
		adv = prog.adviceBundle(e.opts)
		if err := adv.Validate(); err != nil {
			return nil, fmt.Errorf("ie: generated invalid advice: %w", err)
		}
	}
	session := e.ds.BeginSession(adv)

	sol := &Solutions{
		vars:  prog.goalVars,
		ch:    make(chan answer),
		errCh: make(chan error, 1),
		stop:  make(chan struct{}),
	}
	switch e.opts.Strategy {
	case StrategyCompiled:
		go func() {
			defer close(sol.ch)
			err := e.runCompiled(prog, session, sol)
			session.End()
			sol.errCh <- err
		}()
	default:
		r := &runner{
			engine:  e,
			prog:    prog,
			session: session,
			sol:     sol,
		}
		go func() {
			defer close(sol.ch)
			err := r.runAll()
			session.End()
			sol.errCh <- err
		}()
	}
	return sol, nil
}

// Advice compiles and returns the advice bundle for a query without running
// it (diagnostics, tests, cmd tools).
func (e *Engine) Advice(goal logic.Atom) (*advice.Advice, error) {
	prog, err := compile(e.kb, goal, e.opts, e.ds)
	if err != nil {
		return nil, err
	}
	return prog.adviceBundle(e.opts), nil
}

// Graph extracts and shapes the problem graph for a query (diagnostics).
func (e *Engine) Graph(goal logic.Atom) (*Graph, error) {
	sh := &Shaper{Reorder: e.opts.Reorder, Stats: e.ds}
	return Extract(e.kb, goal, sh)
}

// SortedVars is a test helper ordering variable names.
func SortedVars(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}
