package ie

import (
	"math/rand"
	"testing"

	"repro/internal/caql"
	"repro/internal/logic"
)

// TestMaxConjSizeSweep exercises Section 4.1's flattening parameter: "a
// parameter controls the maximum size of the conjunctions that can be
// transformed into view specifications (with 1 being the smallest possible
// value)". Answers are invariant; the number of CAQL queries decreases (or
// stays equal) as the bound grows.
func TestMaxConjSizeSweep(t *testing.T) {
	kb := mustKB(t, `
		:- base(b1/2).
		:- base(b2/2).
		:- base(b3/3).
		long(A, E) :- b1(A, B), b2(B, C), b3(C, "c2", D), b2(D, E).
	`)
	src := example1Data(rand.New(rand.NewSource(21)), 12)
	// Give b1 an int first column for this KB shape.
	b1 := src["b2"].Clone()
	b1.Name = "b1"
	src = caql.MapSource{"b1": b1, "b2": src["b2"], "b3": src["b3"]}

	var prevQueries int
	var prevAnswers int
	for i, size := range []int{1, 2, 4} {
		ds := &mapDS{src: src}
		eng := New(kb, ds, Options{Strategy: StrategyConjunction, MaxConjSize: size, Reorder: false})
		got := answersOf(t, eng, "long(A, E)?")
		if i > 0 {
			if got.Len() != prevAnswers {
				t.Fatalf("answers change with MaxConjSize %d: %d vs %d", size, got.Len(), prevAnswers)
			}
			if len(ds.queries) > prevQueries {
				t.Fatalf("queries should not increase with larger conjunctions: size %d issued %d > %d",
					size, len(ds.queries), prevQueries)
			}
		}
		prevQueries = len(ds.queries)
		prevAnswers = got.Len()
	}

	// Size 1 must produce single-atom views only.
	dsOne := &mapDS{src: src}
	engOne := New(kb, dsOne, Options{Strategy: StrategyConjunction, MaxConjSize: 1})
	adv, err := engOne.Advice(mustAtom(t, "long(A, E)?"))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range adv.Views {
		if len(v.Query.Rels) != 1 {
			t.Fatalf("MaxConjSize=1 produced multi-atom view %s", v)
		}
	}
	// Unlimited must produce one four-atom view.
	engAll := New(kb, &mapDS{src: src}, Options{Strategy: StrategyConjunction})
	advAll, err := engAll.Advice(mustAtom(t, "long(A, E)?"))
	if err != nil {
		t.Fatal(err)
	}
	max := 0
	for _, v := range advAll.Views {
		if len(v.Query.Rels) > max {
			max = len(v.Query.Rels)
		}
	}
	if max != 4 {
		t.Fatalf("unlimited conjunction size should reach 4 atoms, got %d", max)
	}
}

func mustAtom(t *testing.T, src string) logic.Atom {
	t.Helper()
	atom, err := logic.ParseAtom(src)
	if err != nil {
		t.Fatal(err)
	}
	return atom
}
