package ie

import (
	"fmt"

	"repro/internal/bridge"
	"repro/internal/caql"
	"repro/internal/logic"
	"repro/internal/relation"
)

// The fully-compiled strategy (the compiled extreme of the I-C range,
// Section 2): the relevant portion of the knowledge base is compiled into
// set-at-a-time data access — each relevant base relation is requested once
// as a whole (one large request per relation rather than one per binding) —
// and the rule set is evaluated bottom-up to a fixpoint, producing all
// solutions. Recursion is handled by the fixpoint itself (the role the paper
// assigns to second-order templates with a fixed-point operator).
func (e *Engine) runCompiled(prog *program, session bridge.Session, sol *Solutions) error {
	// Fetch every relevant base relation, set-at-a-time. Constants that
	// appear in *every* occurrence of a relation at the same position are
	// pushed into the fetch (a cheap magic-set-like restriction); otherwise
	// the full extension is requested.
	fetched := caql.MapSource{}
	for _, ref := range prog.graph.BaseRels {
		q, err := fetchQueryFor(prog, ref)
		if err != nil {
			return err
		}
		stream, err := session.Query(q)
		if err != nil {
			return err
		}
		rel := stream.Drain(ref.Name)
		rel.Name = ref.Name
		fetched[ref.Name] = rel
	}

	goalRef := prog.goal.Ref()
	var ext *relation.Relation
	if prog.kb.IsBase(goalRef) {
		ext = fetched[goalRef.Name]
		if ext == nil {
			// The goal relation itself (base query with no rules).
			q := caql.NewQuery(logic.A("d0", prog.goal.Args...), []logic.Atom{prog.goal})
			stream, err := session.Query(q)
			if err != nil {
				return err
			}
			ext = stream.Drain(goalRef.Name)
		}
	} else {
		derived, err := BottomUp(prog.kb, fetched, []logic.PredRef{goalRef})
		if err != nil {
			return err
		}
		ext = derived[goalRef]
		if ext == nil {
			return fmt.Errorf("ie: goal predicate %s not derivable", goalRef)
		}
	}

	for _, s := range Answers(prog.goal, ext) {
		var proof *Proof
		if e.opts.Explain {
			proof = ProofRoot(prog.goal.String(),
				[]*Proof{{Kind: "rule", Detail: "derived set-at-a-time by bottom-up fixpoint evaluation"}})
		}
		select {
		case sol.ch <- answer{sub: s.Restrict(sol.vars), proof: proof}:
		case <-sol.stop:
			return nil
		}
	}
	return nil
}

// fetchQueryFor builds the set-at-a-time fetch for a base relation: a full
// scan, restricted by constants common to all graph occurrences of the
// relation. Constant pushing is disabled entirely when the graph contains a
// recursive cut — a cut hides deeper occurrences whose bindings differ from
// the visible ones (e.g. transitive closure walks past the query's seed
// constant).
func fetchQueryFor(prog *program, ref logic.PredRef) (*caql.Query, error) {
	var occs []logic.Atom
	recursive := false
	prog.graph.Walk(func(n *ORNode) {
		if n.Base && n.Goal.Ref() == ref {
			occs = append(occs, n.Goal)
		}
		if n.RecursiveCut {
			recursive = true
		}
	})
	args := make([]logic.Term, ref.Arity)
	for i := 0; i < ref.Arity; i++ {
		var common *logic.Term
		consistent := !recursive && len(occs) > 0
		for oi := range occs {
			t := occs[oi].Args[i]
			if !t.IsConst() {
				consistent = false
				break
			}
			if common == nil {
				common = &occs[oi].Args[i]
			} else if !common.Equal(t) {
				consistent = false
				break
			}
		}
		if consistent && common != nil {
			args[i] = *common
		} else {
			args[i] = logic.V(fmt.Sprintf("X%d", i))
		}
	}
	// The head carries every position (constants included) so the fetched
	// extension has the relation's full arity for bottom-up evaluation.
	q := caql.NewQuery(logic.A("fetch_"+ref.Name, args...), []logic.Atom{logic.A(ref.Name, args...)})
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}
