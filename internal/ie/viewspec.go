package ie

import (
	"fmt"

	"repro/internal/advice"
	"repro/internal/caql"
	"repro/internal/logic"
)

// The view specifier (Section 4.2.1): clause bodies are segmented into
// maximal runs of base and evaluable atoms (bounded by MaxConjSize, 1 being
// the fully-interpreted extreme), each segment becoming a view specification
// d_i whose argument set is the minimal set A = (H ∪ B) ∩ D — the variables
// the rest of the deduction actually needs from the segment.

type itemKind uint8

const (
	itemSegment itemKind = iota
	itemCall
	itemCmp
)

// bodyItem is one execution step of a compiled clause body.
type bodyItem struct {
	kind itemKind
	seg  *viewTemplate // itemSegment
	atom logic.Atom    // itemCall / itemCmp (clause-variable space)
}

// viewTemplate is a view specification in clause-variable space; execution
// instantiates it under the current substitution and advice renders it with
// binding annotations.
type viewTemplate struct {
	name     string
	query    *caql.Query
	bindings []advice.Binding
	ruleID   string
	// annotated marks that the first-occurrence bound-set analysis has
	// filled in the bindings.
	annotated bool
}

// compiledClause is a shaped, segmented clause.
type compiledClause struct {
	key    ClauseKey
	clause logic.Clause // body in shaped order
	items  []bodyItem
}

// program is a compiled knowledge base slice for one AI query.
type program struct {
	kb      *logic.KB
	clauses map[logic.PredRef][]*compiledClause
	views   []*viewTemplate
	// goal execution: pseudo-clause items for the AI query.
	goalItems []bodyItem
	goalVars  []string
	goal      logic.Atom
	graph     *Graph
}

// compile builds the program for an AI query: extract and shape the problem
// graph, shape and segment every reachable clause, and name the views in
// first-reachable order.
func compile(kb *logic.KB, goal logic.Atom, opts Options, ds StatsSource) (*program, error) {
	sh := &Shaper{Reorder: opts.Reorder, Stats: ds}
	graph, err := Extract(kb, goal, sh)
	if err != nil {
		return nil, err
	}
	p := &program{
		kb:      kb,
		clauses: make(map[logic.PredRef][]*compiledClause),
		goal:    goal,
		graph:   graph,
	}

	maxConj := opts.MaxConjSize
	if maxConj <= 0 {
		maxConj = 1 << 30
	}

	// consumedCmps tracks comparisons folded into segments per clause.
	consumedCmps := make(map[ClauseKey][]logic.Atom)
	cmpConsumed := func(key ClauseKey, a logic.Atom) bool {
		for _, c := range consumedCmps[key] {
			if c.Equal(a) {
				return true
			}
		}
		return false
	}

	var compilePred func(ref logic.PredRef)
	nameCounter := 0
	newName := func() string {
		nameCounter++
		return fmt.Sprintf("d%d", nameCounter)
	}

	var segmentBody func(key ClauseKey, ruleID string, head logic.Atom, body []logic.Atom) []bodyItem
	segmentBody = func(key ClauseKey, ruleID string, head logic.Atom, body []logic.Atom) []bodyItem {
		var items []bodyItem
		var run []logic.Atom // current base-atom run
		flush := func(after []logic.Atom) {
			if len(run) == 0 {
				return
			}
			// Attach trailing comparisons whose variables all occur in the
			// run (the CMS evaluates them more cheaply than the IE); in
			// fully-interpreted mode (maxConj 1) comparisons stay in the IE.
			segAtoms := append([]logic.Atom(nil), run...)
			var segCmps []logic.Atom
			if maxConj > 1 {
				runVars := logic.VarsOf(run)
				for _, a := range after {
					if !a.IsComparison() {
						break
					}
					ok := true
					for _, t := range a.Args {
						if t.IsVar() && !runVars[t.Var] {
							ok = false
						}
					}
					if !ok {
						break
					}
					segCmps = append(segCmps, a)
				}
			}
			headVars := minimalArgSet(head, body, segAtoms)
			q := caql.NewQuery(logic.A(newName(), headVars...), append(segAtoms, segCmps...))
			vt := &viewTemplate{
				name:     q.Name(),
				query:    q,
				bindings: make([]advice.Binding, len(headVars)),
				ruleID:   ruleID,
			}
			p.views = append(p.views, vt)
			items = append(items, bodyItem{kind: itemSegment, seg: vt})
			// Comparisons folded into the segment are consumed.
			run = nil
			consumedCmps[key] = append(consumedCmps[key], segCmps...)
		}
		for i := 0; i < len(body); i++ {
			a := body[i]
			switch {
			case a.IsComparison():
				// Handled either by segment attachment (above) or as an IE
				// item; defer the decision to flush by checking consumption.
				flush(body[i:])
				if !cmpConsumed(key, a) {
					items = append(items, bodyItem{kind: itemCmp, atom: a})
				}
			case kb.IsBase(a.Ref()):
				run = append(run, a)
				if len(run) >= maxConj {
					flush(body[i+1:])
				}
			default:
				flush(body[i:])
				items = append(items, bodyItem{kind: itemCall, atom: a})
				compilePred(a.Ref())
			}
		}
		flush(nil)
		return items
	}

	compiledSet := make(map[logic.PredRef]bool)
	compilePred = func(ref logic.PredRef) {
		if compiledSet[ref] || kb.IsBase(ref) {
			return
		}
		compiledSet[ref] = true
		for idx, clause := range kb.Rules(ref) {
			shaped, ok := shapeClause(kb, sh, clause)
			if !ok {
				continue // statically culled
			}
			cc := &compiledClause{
				key:    ClauseKey{Pred: ref, Index: idx},
				clause: shaped,
			}
			consumedCmps[cc.key] = nil
			cc.items = segmentBody(cc.key, fmt.Sprintf("r%d", idx+1), shaped.Head, shaped.Body)
			p.clauses[ref] = append(p.clauses[ref], cc)
		}
	}

	// Compile the goal as a pseudo-clause __goal__(vars) :- goal.
	var goalVars []string
	seen := make(map[string]bool)
	for _, t := range goal.Args {
		if t.IsVar() && !seen[t.Var] {
			seen[t.Var] = true
			goalVars = append(goalVars, t.Var)
		}
	}
	p.goalVars = goalVars
	headTerms := make([]logic.Term, len(goalVars))
	for i, v := range goalVars {
		headTerms[i] = logic.V(v)
	}
	goalKey := ClauseKey{Pred: logic.PredRef{Name: "__goal__", Arity: len(goalVars)}}
	consumedCmps[goalKey] = nil
	p.goalItems = segmentBody(goalKey, "q", logic.A("__goal__", headTerms...), []logic.Atom{goal})

	p.annotate(opts)
	return p, nil
}

// shapeClause applies the shaper to a bare clause.
func shapeClause(kb *logic.KB, sh *Shaper, c logic.Clause) (logic.Clause, bool) {
	and := &ANDNode{Body: append([]logic.Atom(nil), c.Body...)}
	for i := range and.Body {
		and.Order = append(and.Order, i)
	}
	if !sh.shapeAND(kb, and) {
		return logic.Clause{}, false
	}
	return logic.Clause{Head: c.Head, Body: and.Body}, true
}

// minimalArgSet computes A = (H ∪ B) ∩ D: head variables union remaining
// body variables, intersected with the segment's variables (Section 4.2.1).
func minimalArgSet(head logic.Atom, body []logic.Atom, segment []logic.Atom) []logic.Term {
	segVars := logic.VarsOf(segment)
	hb := head.VarSet()
	// B: body variables after deleting the segment atoms (each atom once).
	used := make(map[int]bool)
	for _, a := range body {
		skip := false
		for j, s := range segment {
			if !used[j] && a.Equal(s) {
				used[j] = true
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		for _, t := range a.Args {
			if t.IsVar() {
				hb[t.Var] = true
			}
		}
	}
	// Argument order: first occurrence within the segment, for readability.
	var ordered []string
	seen := make(map[string]bool)
	for _, a := range segment {
		for _, t := range a.Args {
			if t.IsVar() && segVars[t.Var] && hb[t.Var] && !seen[t.Var] {
				seen[t.Var] = true
				ordered = append(ordered, t.Var)
			}
		}
	}
	out := make([]logic.Term, len(ordered))
	for i, v := range ordered {
		out[i] = logic.V(v)
	}
	if len(out) == 0 {
		// Fully ground segment: the paper's smallest view arity is 0; keep a
		// 0-ary head (existence test).
		return nil
	}
	return out
}

// annotate runs the bound-set analysis from the AI query, filling producer
// ("^") and consumer ("?") annotations on each view's first occurrence.
func (p *program) annotate(opts Options) {
	type visitKey struct {
		ref     logic.PredRef
		pattern string
	}
	visited := make(map[visitKey]bool)

	var visitItems func(items []bodyItem, bound map[string]bool)
	var visitPred func(ref logic.PredRef, boundPos []bool)

	visitItems = func(items []bodyItem, bound map[string]bool) {
		for _, it := range items {
			switch it.kind {
			case itemSegment:
				vt := it.seg
				if !vt.annotated {
					vt.annotated = true
					for i, t := range vt.query.Head.Args {
						if t.IsVar() && bound[t.Var] {
							vt.bindings[i] = advice.BindConsumer
						} else {
							vt.bindings[i] = advice.BindProducer
						}
					}
				}
				for _, t := range vt.query.Head.Args {
					if t.IsVar() {
						bound[t.Var] = true
					}
				}
			case itemCall:
				pos := make([]bool, len(it.atom.Args))
				for i, t := range it.atom.Args {
					pos[i] = t.IsConst() || (t.IsVar() && bound[t.Var])
				}
				visitPred(it.atom.Ref(), pos)
				for _, t := range it.atom.Args {
					if t.IsVar() {
						bound[t.Var] = true
					}
				}
			case itemCmp:
				// comparisons bind nothing
			}
		}
	}

	visitPred = func(ref logic.PredRef, boundPos []bool) {
		key := visitKey{ref: ref, pattern: fmt.Sprint(boundPos)}
		if visited[key] {
			return
		}
		visited[key] = true
		for _, cc := range p.clauses[ref] {
			bound := make(map[string]bool)
			for i, t := range cc.clause.Head.Args {
				if i < len(boundPos) && boundPos[i] && t.IsVar() {
					bound[t.Var] = true
				}
			}
			visitItems(cc.items, bound)
		}
	}

	// Goal: constants in the AI query are already constants in the pseudo-
	// clause; no variables start bound.
	visitItems(p.goalItems, make(map[string]bool))

	// Any view never reached by the analysis (dead code) defaults to
	// producers.
	for _, vt := range p.views {
		if !vt.annotated {
			for i := range vt.bindings {
				vt.bindings[i] = advice.BindProducer
			}
		}
	}
}

// adviceBundle assembles the session advice: view specifications, the path
// expression, and the base relation list.
func (p *program) adviceBundle(opts Options) *advice.Advice {
	a := &advice.Advice{BaseRels: append([]logic.PredRef(nil), p.graph.BaseRels...)}
	for _, vt := range p.views {
		a.Views = append(a.Views, &advice.ViewSpec{
			Query:    vt.query,
			Bindings: append([]advice.Binding(nil), vt.bindings...),
			Rules:    []string{vt.ruleID},
		})
	}
	if opts.PathExpression {
		a.Path = p.pathExpression()
	}
	return a
}
