package ie

import (
	"sort"

	"repro/internal/logic"
	"repro/internal/remotedb"
)

// Shaper implements the problem graph shaper (Section 4.1): eager
// constraining of the problem graph before any systematic traversal.
//
//   - Constant propagation: constants from the AI query and the knowledge
//     base are pushed along unification arcs (performed during extraction,
//     since subgoals are built under the unifier) and ground comparisons are
//     evaluated immediately, culling contradictory rule applications.
//   - Mutual-exclusion culling: a rule body containing two mutually
//     exclusive predicates over the same arguments can never succeed.
//   - Conjunct ordering: producer-consumer relationships derived from
//     catalog cardinality/selectivity statistics and functional-dependency
//     SOAs order each rule body cheapest-first (bound-most-first).
type Shaper struct {
	// Reorder enables conjunct reordering (off reproduces strict program
	// order, Prolog-style).
	Reorder bool
	// Stats supplies catalog statistics; nil degrades ordering to the
	// bound-count heuristic.
	Stats StatsSource
}

// StatsSource resolves base relation statistics; bridge.DataSource satisfies
// it.
type StatsSource interface {
	RelationStats(name string) (remotedb.TableStats, error)
}

// shapeAND constrains one rule application in place. It returns false when
// the node is culled (statically contradictory).
func (sh *Shaper) shapeAND(kb *logic.KB, and *ANDNode) bool {
	// Evaluate ground comparisons; drop satisfied ones, cull on violation.
	var body []logic.Atom
	var order []int
	for i, a := range and.Body {
		if a.IsComparison() && a.IsGround() {
			if !a.CmpOp().Eval(a.Args[0].Const, a.Args[1].Const) {
				return false
			}
			continue // statically true: drop
		}
		body = append(body, a)
		order = append(order, and.Order[i])
	}
	and.Body, and.Order = body, order

	// Mutual-exclusion culling: p(t...) and q(t...) with mutex(p, q) in one
	// conjunction is a contradiction.
	for i := 0; i < len(and.Body); i++ {
		for j := i + 1; j < len(and.Body); j++ {
			a, b := and.Body[i], and.Body[j]
			if a.IsComparison() || b.IsComparison() {
				continue
			}
			if !kb.MutuallyExclusive(a.Ref(), b.Ref()) {
				continue
			}
			if len(a.Args) == len(b.Args) && sameArgs(a, b) {
				return false
			}
		}
	}

	if sh.Reorder {
		sh.reorder(kb, and)
	}
	return true
}

func sameArgs(a, b logic.Atom) bool {
	for i := range a.Args {
		if !a.Args[i].Equal(b.Args[i]) {
			return false
		}
	}
	return true
}

// reorder greedily picks the next cheapest conjunct under the current bound
// set: comparisons as soon as their variables are bound, then atoms by
// estimated result cardinality (catalog rows divided by the distinct counts
// of bound columns; functional dependencies cap the estimate at 1 when a
// determinant is bound). Derived atoms estimate pessimistically.
func (sh *Shaper) reorder(kb *logic.KB, and *ANDNode) {
	n := len(and.Body)
	if n <= 1 {
		return
	}
	// Head variables bound by the caller's goal were unified with constants
	// during extraction, so they already appear as constants in the body;
	// the initial bound set is empty and constants count as bound positions
	// directly.
	bound := make(map[string]bool)
	used := make([]bool, n)
	var newBody []logic.Atom
	var newOrder []int
	for len(newBody) < n {
		best := -1
		bestCost := 0.0
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			a := and.Body[i]
			if a.IsComparison() {
				ready := true
				for _, t := range a.Args {
					if t.IsVar() && !bound[t.Var] {
						ready = false
					}
				}
				if ready {
					best = i
					bestCost = 0
					break
				}
				continue
			}
			cost := sh.estimate(kb, a, bound)
			if best < 0 || cost < bestCost {
				best, bestCost = i, cost
			}
		}
		if best < 0 {
			// Only unready comparisons remain; emit them in order.
			for i := 0; i < n; i++ {
				if !used[i] {
					best = i
					break
				}
			}
		}
		used[best] = true
		newBody = append(newBody, and.Body[best])
		newOrder = append(newOrder, and.Order[best])
		for _, t := range and.Body[best].Args {
			if t.IsVar() {
				bound[t.Var] = true
			}
		}
	}
	and.Body, and.Order = newBody, newOrder
}

// estimate approximates the number of bindings an atom will produce given
// the bound variable set.
func (sh *Shaper) estimate(kb *logic.KB, a logic.Atom, bound map[string]bool) float64 {
	boundPos := make(map[int]bool)
	nBound := 0
	for i, t := range a.Args {
		if t.IsConst() || (t.IsVar() && bound[t.Var]) {
			boundPos[i] = true
			nBound++
		}
	}
	ref := a.Ref()
	if !kb.IsBase(ref) {
		// Derived atom: prefer after base atoms; scale down with bound args.
		return 1e6 / float64(1+nBound)
	}
	// Functional dependencies: a bound determinant caps output at one row.
	for _, fd := range kb.FDs(ref) {
		allBound := len(fd.From) > 0
		for _, c := range fd.From {
			if !boundPos[c] {
				allBound = false
			}
		}
		if allBound {
			return 1
		}
	}
	rows := 1000.0
	var distinct []int
	if sh.Stats != nil {
		if st, err := sh.Stats.RelationStats(a.Pred); err == nil {
			rows = float64(st.Rows)
			distinct = st.Distinct
		}
	}
	est := rows
	for i := range a.Args {
		if !boundPos[i] {
			continue
		}
		d := 10.0
		if i < len(distinct) && distinct[i] > 0 {
			d = float64(distinct[i])
		}
		est /= d
	}
	if est < 1 {
		est = 1
	}
	return est
}

// SelectivityRank orders predicate references by ascending estimated
// cardinality; a helper for diagnostics and tests.
func (sh *Shaper) SelectivityRank(kb *logic.KB, atoms []logic.Atom) []int {
	idx := make([]int, len(atoms))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool {
		return sh.estimate(kb, atoms[idx[i]], nil) < sh.estimate(kb, atoms[idx[j]], nil)
	})
	return idx
}
