// Package ie implements BrAID's inference engine (Section 4 of the paper):
// the query translator, problem graph extractor, problem graph shaper, view
// specifier, path expression creator, and inference strategy controller
// (Figure 4). The engine is logic-based and function-free (Datalog with
// typed constants), and — like the FDE the paper builds on — realizes
// several inference strategies along the interpreted-compiled range from one
// set of component functions.
package ie

import (
	"fmt"

	"repro/internal/logic"
)

// ORNode is a subgoal (relation occurrence): its children are the rules
// (AND nodes) that define the relation. Leaves are database relations,
// built-in relations, or cut-off recursive occurrences.
type ORNode struct {
	Goal logic.Atom
	// Base marks database-relation leaves; Builtin marks comparison leaves;
	// RecursiveCut marks a recursive occurrence not expanded further ("only
	// a single instance of the recursive definition will appear in the
	// subgraph for each recursive relation occurrence").
	Base         bool
	Builtin      bool
	RecursiveCut bool
	Rules        []*ANDNode
}

// Leaf reports whether the node has no rule expansion.
func (o *ORNode) Leaf() bool { return o.Base || o.Builtin || o.RecursiveCut }

// ANDNode is one rule application: the rule's head unifies with the parent
// goal, and the (shaped) body antecedents are its successor OR nodes.
type ANDNode struct {
	// RuleID identifies the source rule ("r1", "r2", ... in program order of
	// the head predicate) for human consumption in advice.
	RuleID string
	// ClauseKey identifies the KB clause (predicate + index) so execution
	// strategies can map graph decisions back to clauses.
	ClauseKey ClauseKey
	// Body is the rule body after constant propagation from the goal, in
	// shaped (possibly reordered) order.
	Body []logic.Atom
	// Order[i] gives the original body position of shaped atom i.
	Order []int
	// Subgoals mirror Body positionally; comparison atoms have Builtin OR
	// nodes, base atoms Base OR nodes, and derived atoms carry expansions.
	Subgoals []*ORNode
}

// ClauseKey identifies a clause in the KB.
type ClauseKey struct {
	Pred  logic.PredRef
	Index int
}

// String renders "pred/arity#i".
func (k ClauseKey) String() string { return fmt.Sprintf("%s#%d", k.Pred, k.Index) }

// Graph is the problem graph for one AI query.
type Graph struct {
	Root  *ORNode
	Query logic.Atom
	// BaseRels lists the base relations referenced anywhere in the graph
	// (the "simplest kind of advice", Section 4.2).
	BaseRels []logic.PredRef
}

// Extract builds the problem graph for the AI query by partial evaluation:
// user-defined relations are expanded through their rules (recursive
// occurrences once), while database and built-in relations remain leaves
// (Section 4.1, "problem graph extractor").
func Extract(kb *logic.KB, query logic.Atom, sh *Shaper) (*Graph, error) {
	if query.IsComparison() {
		return nil, fmt.Errorf("ie: AI query cannot be a bare comparison")
	}
	g := &Graph{Query: query}
	seenBase := make(map[logic.PredRef]bool)
	var build func(goal logic.Atom, path map[logic.PredRef]bool) *ORNode
	build = func(goal logic.Atom, path map[logic.PredRef]bool) *ORNode {
		node := &ORNode{Goal: goal}
		if goal.IsComparison() {
			node.Builtin = true
			return node
		}
		ref := goal.Ref()
		if kb.IsBase(ref) {
			node.Base = true
			if !seenBase[ref] {
				seenBase[ref] = true
				g.BaseRels = append(g.BaseRels, ref)
			}
			return node
		}
		if path[ref] {
			node.RecursiveCut = true
			return node
		}
		path[ref] = true
		defer delete(path, ref)
		for idx, clause := range kb.Rules(ref) {
			renamed := logic.RenameApart(clause)
			s, ok := logic.Unify(renamed.Head, goal, logic.NewSubst())
			if !ok {
				continue
			}
			body := s.ApplyAtoms(renamed.Body)
			and := &ANDNode{
				RuleID:    fmt.Sprintf("r%d", idx+1),
				ClauseKey: ClauseKey{Pred: ref, Index: idx},
				Body:      body,
			}
			for i := range body {
				and.Order = append(and.Order, i)
			}
			if sh != nil {
				if !sh.shapeAND(kb, and) {
					continue // culled (contradiction)
				}
			}
			for _, a := range and.Body {
				and.Subgoals = append(and.Subgoals, build(a, path))
			}
			node.Rules = append(node.Rules, and)
		}
		return node
	}
	g.Root = build(query, map[logic.PredRef]bool{})
	return g, nil
}

// Walk visits every OR node of the graph depth-first.
func (g *Graph) Walk(visit func(*ORNode)) {
	var rec func(*ORNode)
	seen := make(map[*ORNode]bool)
	rec = func(n *ORNode) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		visit(n)
		for _, and := range n.Rules {
			for _, sub := range and.Subgoals {
				rec(sub)
			}
		}
	}
	rec(g.Root)
}

// CountNodes returns (OR nodes, AND nodes) for diagnostics.
func (g *Graph) CountNodes() (orN, andN int) {
	g.Walk(func(n *ORNode) {
		orN++
		andN += len(n.Rules)
	})
	return
}
