package ie

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/caql"
	"repro/internal/logic"
	"repro/internal/relation"
)

// relationOfPairs builds a small binary integer relation.
func relationOfPairs(name string, pairs [][2]int64) *relation.Relation {
	r := relation.New(name, relation.NewSchema(
		relation.Attr{Name: "a", Kind: relation.KindInt},
		relation.Attr{Name: "b", Kind: relation.KindInt}))
	for _, p := range pairs {
		r.MustAppend(relation.Tuple{relation.Int(p[0]), relation.Int(p[1])})
	}
	return r
}

func TestExplainedSolutions(t *testing.T) {
	kb := mustKB(t, example1KB)
	src := example1Data(rand.New(rand.NewSource(9)), 15)
	eng := New(kb, &mapDS{src: src}, Options{Strategy: StrategyConjunction, Explain: true})
	sol, err := eng.AskText("k1(X, Y)?")
	if err != nil {
		t.Fatal(err)
	}
	defer sol.Close()
	sub, proof, ok := sol.NextProof()
	if !ok {
		t.Skip("no solutions with this seed")
	}
	if sub == nil || proof == nil {
		t.Fatal("expected both solution and proof")
	}
	rendered := proof.String()
	// The root cites the goal; rule steps cite rule identifiers; query steps
	// carry witnessing tuples.
	if !strings.Contains(rendered, "k1(X, Y)") {
		t.Errorf("proof missing goal:\n%s", rendered)
	}
	if !strings.Contains(rendered, "by rule r") {
		t.Errorf("proof missing rule identifiers:\n%s", rendered)
	}
	if !strings.Contains(rendered, "<-") {
		t.Errorf("proof missing query witnesses:\n%s", rendered)
	}
	// The k1 rule applies k2, so the proof must have a nested rule step.
	if !strings.Contains(rendered, "of k2/2") {
		t.Errorf("proof missing nested k2 rule step:\n%s", rendered)
	}
}

func TestExplainOffHasNilProofs(t *testing.T) {
	kb := mustKB(t, example1KB)
	src := example1Data(rand.New(rand.NewSource(9)), 15)
	eng := New(kb, &mapDS{src: src}, Options{Strategy: StrategyInterpreted})
	sol, err := eng.AskText("k1(X, Y)?")
	if err != nil {
		t.Fatal(err)
	}
	defer sol.Close()
	if _, proof, ok := sol.NextProof(); ok && proof != nil {
		t.Fatal("proofs must be nil when Explain is off")
	}
}

func TestExplainCompiledSummary(t *testing.T) {
	kb := mustKB(t, example1KB)
	src := example1Data(rand.New(rand.NewSource(9)), 15)
	eng := New(kb, &mapDS{src: src}, Options{Strategy: StrategyCompiled, Explain: true})
	sol, err := eng.AskText("k1(X, Y)?")
	if err != nil {
		t.Fatal(err)
	}
	defer sol.Close()
	if _, proof, ok := sol.NextProof(); ok {
		if proof == nil || !strings.Contains(proof.String(), "bottom-up") {
			t.Fatalf("compiled proof should be a bottom-up summary, got %v", proof)
		}
	}
}

// Proofs must not leak steps across backtracking branches: each solution's
// proof cites exactly the witnesses of its own derivation.
func TestProofPerSolutionIsolation(t *testing.T) {
	kb := mustKB(t, `
		:- base(p/2).
		q(X, Y) :- p(X, Z), p(Z, Y).
	`)
	p := relationOfPairs("p", [][2]int64{{1, 2}, {2, 3}, {1, 4}, {4, 5}})
	eng := New(kb, &mapDS{src: caql.MapSource{"p": p}},
		Options{Strategy: StrategyInterpreted, Explain: true})
	sol, err := eng.AskText("q(1, Y)?")
	if err != nil {
		t.Fatal(err)
	}
	defer sol.Close()
	seen := 0
	for {
		sub, proof, ok := sol.NextProof()
		if !ok {
			break
		}
		seen++
		y := sub.Walk(logic.V("Y"))
		rendered := proof.String()
		// The derivation via Z=2 must not appear in the Y=5 proof and vice
		// versa: count query steps (exactly 2 per solution).
		if got := strings.Count(rendered, "<-"); got != 2 {
			t.Fatalf("solution Y=%s has %d query witnesses, want 2:\n%s", y, got, rendered)
		}
		switch y.String() {
		case "3":
			if !strings.Contains(rendered, "(2, 3)") || strings.Contains(rendered, "(4, 5)") {
				t.Fatalf("Y=3 proof has wrong witnesses:\n%s", rendered)
			}
		case "5":
			if !strings.Contains(rendered, "(4, 5)") || strings.Contains(rendered, "(2, 3)") {
				t.Fatalf("Y=5 proof has wrong witnesses:\n%s", rendered)
			}
		}
	}
	if seen != 2 {
		t.Fatalf("solutions = %d, want 2", seen)
	}
}
