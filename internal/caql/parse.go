package caql

import (
	"fmt"
	"strings"

	"repro/internal/logic"
)

// Parse parses a single CAQL conjunctive query in clause syntax:
//
//	d2(X, Y) :- b2(X, Z) & b3(Z, c2, Y) & X < 10.
//
// Commas and ampersands are both accepted as conjunction separators. The
// query is validated for safety.
func Parse(src string) (*Query, error) {
	c, err := logic.ParseClause(ensurePeriod(src))
	if err != nil {
		return nil, fmt.Errorf("caql: %w", err)
	}
	q := NewQuery(c.Head, c.Body)
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// ParseUnion parses one or more conjunctive queries (a union when several
// share the head predicate).
func ParseUnion(src string) (*Union, error) {
	u := &Union{}
	for _, part := range splitClauses(src) {
		q, err := Parse(part)
		if err != nil {
			return nil, err
		}
		u.Queries = append(u.Queries, q)
	}
	if err := u.Validate(); err != nil {
		return nil, err
	}
	return u, nil
}

// MustParse is Parse that panics on error; for tests and fixed literals.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

func ensurePeriod(src string) string {
	s := strings.TrimSpace(src)
	if !strings.HasSuffix(s, ".") {
		s += "."
	}
	return s
}

// splitClauses splits on periods that terminate clauses (periods inside
// quoted strings are preserved).
func splitClauses(src string) []string {
	var parts []string
	var cur strings.Builder
	inStr := false
	for i := 0; i < len(src); i++ {
		c := src[i]
		switch {
		case inStr:
			cur.WriteByte(c)
			if c == '\\' && i+1 < len(src) {
				i++
				cur.WriteByte(src[i])
			} else if c == '"' {
				inStr = false
			}
		case c == '"':
			inStr = true
			cur.WriteByte(c)
		case c == '.':
			// A period followed by a digit is a decimal point.
			if i+1 < len(src) && src[i+1] >= '0' && src[i+1] <= '9' {
				cur.WriteByte(c)
				continue
			}
			cur.WriteByte(c)
			if s := strings.TrimSpace(cur.String()); s != "." {
				parts = append(parts, s)
			}
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if s := strings.TrimSpace(cur.String()); s != "" {
		parts = append(parts, s)
	}
	return parts
}
