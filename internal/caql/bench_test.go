package caql

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/relation"
)

func BenchmarkParse(b *testing.B) {
	src := `d2(X, Y) :- b2(X, Z) & b3(Z, "c2", Y) & X < 10 & Y != 3`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCanonical(b *testing.B) {
	q := MustParse(`d2(X, Y) :- b2(X, Z) & b3(Z, "c2", Y) & X < 10`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Canonical()
	}
}

func BenchmarkEvalJoin(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	src := MapSource{}
	for _, name := range []string{"r", "s"} {
		rel := relation.New(name, relation.NewSchema(
			relation.Attr{Name: "a", Kind: relation.KindInt},
			relation.Attr{Name: "b", Kind: relation.KindInt}))
		for i := 0; i < 5000; i++ {
			rel.MustAppend(relation.Tuple{relation.Int(int64(rng.Intn(500))), relation.Int(int64(rng.Intn(500)))})
		}
		src[name] = rel
	}
	q := MustParse("q(X, Z) :- r(X, Y) & s(Y, Z) & X < 100")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Eval(q, src); err != nil {
			b.Fatal(err)
		}
	}
}

// Parser robustness on garbage.
func TestCAQLParserNoPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	alphabet := `abXY09_(),.:-<>=!&"` + " "
	for i := 0; i < 3000; i++ {
		var sb strings.Builder
		for j := 0; j < rng.Intn(50); j++ {
			sb.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		src := sb.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			Parse(src)
			ParseUnion(src)
		}()
	}
}
