package caql

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/logic"
	"repro/internal/relation"
)

func fixtureSource() MapSource {
	b1 := relation.New("b1", relation.NewSchema(at("x", relation.KindString), at("y", relation.KindInt)))
	b1.MustAppend(relation.Tuple{relation.Str("c1"), relation.Int(1)})
	b1.MustAppend(relation.Tuple{relation.Str("c1"), relation.Int(2)})
	b1.MustAppend(relation.Tuple{relation.Str("d"), relation.Int(3)})
	b2 := relation.New("b2", relation.NewSchema(at("x", relation.KindInt), at("y", relation.KindInt)))
	b2.MustAppend(relation.Tuple{relation.Int(1), relation.Int(10)})
	b2.MustAppend(relation.Tuple{relation.Int(2), relation.Int(20)})
	b2.MustAppend(relation.Tuple{relation.Int(3), relation.Int(10)})
	b3 := relation.New("b3", relation.NewSchema(at("x", relation.KindInt), at("y", relation.KindString), at("z", relation.KindInt)))
	b3.MustAppend(relation.Tuple{relation.Int(10), relation.Str("c2"), relation.Int(100)})
	b3.MustAppend(relation.Tuple{relation.Int(10), relation.Str("zz"), relation.Int(200)})
	b3.MustAppend(relation.Tuple{relation.Int(20), relation.Str("c2"), relation.Int(300)})
	return MapSource{"b1": b1, "b2": b2, "b3": b3}
}

func TestParseAndString(t *testing.T) {
	q, err := Parse(`d2(X, Y) :- b2(X, Z) & b3(Z, "c2", Y)`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name() != "d2" || len(q.Rels) != 2 || len(q.Cmps) != 0 {
		t.Fatalf("parse shape wrong: %v", q)
	}
	// Re-parse of String.
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", q.String(), err)
	}
	if q2.String() != q.String() {
		t.Errorf("round trip: %q vs %q", q.String(), q2.String())
	}
}

func TestParseCommaSeparator(t *testing.T) {
	q, err := Parse("d(X) :- b2(X, Z), Z > 5.")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Rels) != 1 || len(q.Cmps) != 1 {
		t.Fatalf("comma-separated parse wrong: %v", q)
	}
}

func TestValidateSafety(t *testing.T) {
	if _, err := Parse("d(X, W) :- b2(X, Z)"); err == nil {
		t.Error("unbound head variable should be rejected")
	}
	if _, err := Parse("d(X) :- b2(X, Z) & W < 3"); err == nil {
		t.Error("unbound comparison variable should be rejected")
	}
	if _, err := Parse("d(X) :- X < 3"); err == nil {
		t.Error("no relational atoms should be rejected")
	}
}

func TestEvalSimpleSelect(t *testing.T) {
	src := fixtureSource()
	q := MustParse(`d1(Y) :- b1("c1", Y)`)
	out, err := Eval(q, src)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("d1 rows = %d, want 2", out.Len())
	}
}

func TestEvalJoin(t *testing.T) {
	src := fixtureSource()
	// d2(X, Y) :- b2(X, Z) & b3(Z, "c2", Y): joins b2.y = b3.x, selects y="c2".
	q := MustParse(`d2(X, Y) :- b2(X, Z) & b3(Z, "c2", Y)`)
	out, err := Eval(q, src)
	if err != nil {
		t.Fatal(err)
	}
	// b2: (1,10),(2,20),(3,10); b3 with c2: (10,100),(20,300)
	// -> X=1 Y=100; X=2 Y=300; X=3 Y=100
	want := map[string]bool{"1|100": true, "2|300": true, "3|100": true}
	if out.Len() != 3 {
		t.Fatalf("rows = %d, want 3: %v", out.Len(), out)
	}
	for _, tu := range out.Tuples() {
		k := tu[0].String() + "|" + tu[1].String()
		if !want[k] {
			t.Errorf("unexpected row %v", tu)
		}
	}
}

func TestEvalComparisons(t *testing.T) {
	src := fixtureSource()
	q := MustParse("d(X, Z) :- b2(X, Z) & Z >= 10 & Z < 20 & X != 3")
	out, err := Eval(q, src)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || out.Tuple(0)[0].AsInt() != 1 {
		t.Fatalf("comparison eval wrong: %v", out)
	}
}

func TestEvalRepeatedVariable(t *testing.T) {
	src := MapSource{"e": relation.FromTuples("e",
		relation.NewSchema(at("a", relation.KindInt), at("b", relation.KindInt)),
		[]relation.Tuple{
			{relation.Int(1), relation.Int(1)},
			{relation.Int(1), relation.Int(2)},
			{relation.Int(3), relation.Int(3)},
		})}
	q := MustParse("loop(X) :- e(X, X)")
	out, err := Eval(q, src)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("repeated-var rows = %d, want 2", out.Len())
	}
}

func TestEvalConstHead(t *testing.T) {
	src := fixtureSource()
	q := MustParse(`d(X, 42) :- b2(X, Z) & Z = 10`)
	out, err := Eval(q, src)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("rows = %d", out.Len())
	}
	for _, tu := range out.Tuples() {
		if tu[1].AsInt() != 42 {
			t.Fatalf("constant head col wrong: %v", tu)
		}
	}
}

func TestEvalLazyIsLazy(t *testing.T) {
	// A join whose left side streams: consuming one output tuple must not
	// drain the whole probe side.
	n := 0
	gen := relation.IteratorFunc(func() (relation.Tuple, bool) {
		n++
		if n > 1000 {
			return nil, false
		}
		return relation.Tuple{relation.Int(int64(n)), relation.Int(int64(n % 5))}, true
	})
	left := relation.Drain("b2", relation.NewSchema(at("x", relation.KindInt), at("y", relation.KindInt)), gen)
	src := fixtureSource()
	src["big"] = left
	q := MustParse("d(X) :- big(X, Y) & Y = 1")
	it, _, err := EvalLazy(q, src)
	if err != nil {
		t.Fatal(err)
	}
	got := relation.Take(it, 2)
	if len(got) != 2 {
		t.Fatalf("lazy eval got %d", len(got))
	}
}

func TestEvalUnion(t *testing.T) {
	src := fixtureSource()
	u, err := ParseUnion(`
		d(X) :- b2(X, Z) & Z = 10.
		d(X) :- b2(X, Z) & Z = 20.
	`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := EvalUnion(u, src)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Fatalf("union rows = %d, want 3", out.Len())
	}
}

func TestEvalAgg(t *testing.T) {
	src := fixtureSource()
	a := &AggQuery{
		Inner:   MustParse("d(Z, X) :- b2(X, Z)"),
		GroupBy: []int{0},
		Specs:   []relation.AggSpec{{Op: relation.AggCount, Col: -1}},
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	out, err := EvalAgg(a, src)
	if err != nil {
		t.Fatal(err)
	}
	// Z=10 has 2 rows, Z=20 has 1.
	if out.Len() != 2 {
		t.Fatalf("agg groups = %d", out.Len())
	}
}

func TestCanonicalRenamingInvariance(t *testing.T) {
	a := MustParse("d(X, Y) :- b2(X, Z) & b3(Z, Y, W) & X < 3")
	b := MustParse("d(P, Q) :- b2(P, R) & b3(R, Q, S) & P < 3")
	c := MustParse("d(X, Y) :- b2(X, Z) & b3(Z, Y, W) & X < 4")
	if a.Canonical() != b.Canonical() {
		t.Error("alpha-equivalent queries must share canonical key")
	}
	if a.Canonical() == c.Canonical() {
		t.Error("different constants must differ in canonical key")
	}
}

func TestInstantiateAndHeadBindings(t *testing.T) {
	q := MustParse("d(X, Y) :- b2(X, Z) & b3(Z, Y, W)")
	inst := q.Instantiate(map[string]relation.Value{"Y": relation.Int(7)})
	hb := HeadBindings(inst)
	if len(hb) != 1 || !hb[1].Equal(relation.Int(7)) {
		t.Fatalf("instantiate/head bindings wrong: %v", inst)
	}
	// Body occurrence of Y must be bound too.
	found := false
	for _, a := range inst.Rels {
		for _, tm := range a.Args {
			if tm.IsConst() && tm.Const.Equal(relation.Int(7)) {
				found = true
			}
		}
	}
	if !found {
		t.Error("instantiation did not reach the body")
	}
}

func TestGeneralize(t *testing.T) {
	src := fixtureSource()
	inst := MustParse(`d2(X, 100) :- b2(X, Z) & b3(Z, "c2", 100)`)
	gen := Generalize(inst, []int{1})
	if logicConstCount(gen) >= logicConstCount(inst) {
		t.Fatal("generalize should remove constants")
	}
	// Soundness: selecting the generalized result on the original constant
	// equals the original result.
	orig, err := Eval(inst, src)
	if err != nil {
		t.Fatal(err)
	}
	genOut, err := Eval(gen, src)
	if err != nil {
		t.Fatal(err)
	}
	sel := relation.SelectRel(genOut, []relation.Cond{relation.ColConst(1, relation.OpEq, relation.Int(100))})
	if !sel.EqualAsSet(orig) {
		t.Fatalf("generalization unsound:\norig %v\nsel %v", orig, sel)
	}
	if genOut.Len() < orig.Len() {
		t.Fatal("generalized result should be at least as large")
	}
}

func logicConstCount(q *Query) int {
	n := 0
	for _, a := range append(append([]logic.Atom{q.Head}, q.Rels...), q.Cmps...) {
		for _, t := range a.Args {
			if t.IsConst() {
				n++
			}
		}
	}
	return n
}

func TestOutputSchema(t *testing.T) {
	src := fixtureSource()
	q := MustParse(`d(Y, X, 5) :- b2(X, Z) & b3(Z, Y, W)`)
	sch, err := q.OutputSchema(src)
	if err != nil {
		t.Fatal(err)
	}
	if sch.Arity() != 3 {
		t.Fatalf("schema arity = %d", sch.Arity())
	}
	if sch.Attr(0).Kind != relation.KindString || sch.Attr(1).Kind != relation.KindInt || sch.Attr(2).Kind != relation.KindInt {
		t.Fatalf("schema kinds wrong: %v", sch)
	}
	// Eval's derived schema must agree.
	out, err := Eval(q, src)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Schema().Equal(sch) {
		t.Fatalf("eval schema %v != OutputSchema %v", out.Schema(), sch)
	}
}

func TestUnknownRelationError(t *testing.T) {
	src := fixtureSource()
	q := MustParse("d(X) :- nosuch(X)")
	if _, err := Eval(q, src); err == nil {
		t.Error("unknown relation should error")
	}
	if Evaluable(q, src) {
		t.Error("Evaluable should be false for unknown relation")
	}
	if !Evaluable(MustParse("d(X) :- b2(X, Y)"), src) {
		t.Error("Evaluable should be true for known relation")
	}
}

// Differential property test: EvalLazy (via Eval) against a brute-force
// substitution-based evaluator on random queries and databases.
func TestEvalAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		// Random database of two binary relations over a small domain.
		src := MapSource{}
		for _, name := range []string{"r", "s"} {
			rel := relation.New(name, relation.NewSchema(at("a", relation.KindInt), at("b", relation.KindInt)))
			for i := 0; i < rng.Intn(12); i++ {
				rel.MustAppend(relation.Tuple{relation.Int(int64(rng.Intn(4))), relation.Int(int64(rng.Intn(4)))})
			}
			src[name] = rel
		}
		// Random conjunctive query with up to 3 atoms over vars {X,Y,Z} and
		// small constants.
		varsPool := []string{"X", "Y", "Z"}
		term := func() logic.Term {
			if rng.Intn(4) == 0 {
				return logic.CInt(int64(rng.Intn(4)))
			}
			return logic.V(varsPool[rng.Intn(len(varsPool))])
		}
		nAtoms := 1 + rng.Intn(3)
		var body []logic.Atom
		for i := 0; i < nAtoms; i++ {
			name := "r"
			if rng.Intn(2) == 0 {
				name = "s"
			}
			body = append(body, logic.A(name, term(), term()))
		}
		// Head: all vars that occur in the body.
		varSet := logic.VarsOf(body)
		var head []logic.Term
		for _, v := range varsPool {
			if varSet[v] {
				head = append(head, logic.V(v))
			}
		}
		if len(head) == 0 {
			continue
		}
		q := NewQuery(logic.A("q", head...), body)
		if err := q.Validate(); err != nil {
			continue
		}

		got, err := Eval(q, src)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForce(q, src)
		gotSet := relation.DistinctRel(got)
		if !gotSet.EqualAsSet(want) {
			t.Fatalf("trial %d: Eval disagrees with brute force\nquery: %s\ngot: %v\nwant: %v",
				trial, q, gotSet, want)
		}
	}
}

// bruteForce enumerates all substitutions over the active domain and checks
// each against every atom.
func bruteForce(q *Query, src MapSource) *relation.Relation {
	// Active domain.
	domSet := map[string]relation.Value{}
	for _, rel := range src {
		for _, tu := range rel.Tuples() {
			for _, v := range tu {
				domSet[v.Key()] = v
			}
		}
	}
	var dom []relation.Value
	for _, v := range domSet {
		dom = append(dom, v)
	}
	var varNames []string
	for v := range q.VarSet() {
		varNames = append(varNames, v)
	}
	attrs := make([]relation.Attr, len(q.Head.Args))
	for i := range attrs {
		attrs[i] = relation.Attr{Name: string(rune('a' + i)), Kind: relation.KindInt}
	}
	out := relation.New("bf", relation.NewSchema(attrs...))

	assign := make(map[string]relation.Value)
	var try func(i int)
	try = func(i int) {
		if i == len(varNames) {
			s := logic.NewSubst()
			for v, val := range assign {
				s.BindInPlace(v, logic.C(val))
			}
			for _, a := range q.Rels {
				g := s.ApplyAtom(a)
				found := false
				rel := src[g.Pred]
				for _, tu := range rel.Tuples() {
					match := true
					for j, tm := range g.Args {
						if !tm.Const.Equal(tu[j]) {
							match = false
							break
						}
					}
					if match {
						found = true
						break
					}
				}
				if !found {
					return
				}
			}
			for _, c := range q.Cmps {
				g := s.ApplyAtom(c)
				if !g.CmpOp().Eval(g.Args[0].Const, g.Args[1].Const) {
					return
				}
			}
			row := make(relation.Tuple, len(q.Head.Args))
			for j, tm := range q.Head.Args {
				if tm.IsVar() {
					row[j] = assign[tm.Var]
				} else {
					row[j] = tm.Const
				}
			}
			out.MustAppend(row)
			return
		}
		for _, v := range dom {
			assign[varNames[i]] = v
			try(i + 1)
		}
		delete(assign, varNames[i])
	}
	try(0)
	return relation.DistinctRel(out)
}

func TestSplitClauses(t *testing.T) {
	parts := splitClauses(`a(X) :- b(X). c(Y) :- d(Y, "dot . inside").`)
	if len(parts) != 2 {
		t.Fatalf("splitClauses got %d parts: %q", len(parts), parts)
	}
	if !strings.Contains(parts[1], "dot . inside") {
		t.Errorf("string content mangled: %q", parts[1])
	}
	// Decimal points must not split.
	parts = splitClauses("a(X) :- b(X, 3.5).")
	if len(parts) != 1 {
		t.Fatalf("decimal split wrong: %q", parts)
	}
}

func TestUnionValidate(t *testing.T) {
	if _, err := ParseUnion("d(X) :- b2(X, Y). d(X, Y) :- b2(X, Y)."); err == nil {
		t.Error("arity mismatch union should error")
	}
	u := &Union{}
	if err := u.Validate(); err == nil {
		t.Error("empty union should error")
	}
}

// at builds a keyed Attr literal (keeps go vet composites happy in tests).
func at(name string, kind relation.Kind) relation.Attr {
	return relation.Attr{Name: name, Kind: kind}
}

// Alpha-invariance of Canonical under systematic renaming, property-style.
func TestCanonicalAlphaInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	names := []string{"X", "Y", "Z", "W"}
	fresh := []string{"P1", "P2", "P3", "P4"}
	for trial := 0; trial < 200; trial++ {
		var body []logic.Atom
		for i := 0; i < 1+rng.Intn(3); i++ {
			args := make([]logic.Term, 2)
			for j := range args {
				if rng.Intn(4) == 0 {
					args[j] = logic.CInt(int64(rng.Intn(3)))
				} else {
					args[j] = logic.V(names[rng.Intn(len(names))])
				}
			}
			body = append(body, logic.A("r", args...))
		}
		varSet := logic.VarsOf(body)
		var head []logic.Term
		for _, v := range names {
			if varSet[v] {
				head = append(head, logic.V(v))
			}
		}
		if len(head) == 0 {
			continue
		}
		q := NewQuery(logic.A("q", head...), body)
		// Systematic renaming.
		ren := logic.NewSubst()
		for i, v := range names {
			ren.BindInPlace(v, logic.V(fresh[i]))
		}
		q2 := q.ApplySubst(ren)
		q2.Head.Pred = "zz" // head predicate must not matter either
		if q.Canonical() != q2.Canonical() {
			t.Fatalf("alpha variance: %s vs %s", q, q2)
		}
	}
}
