package caql

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/relation"
)

// RelationSource provides base relation extensions for evaluation. It is
// implemented by the remote DBMS engine, by the cache (over cached
// extensions), and by test fixtures.
type RelationSource interface {
	// RelationExtension returns the extension of the named base relation.
	RelationExtension(name string, arity int) (*relation.Relation, error)
}

// Eval evaluates the conjunctive query eagerly against src, returning the
// result extension. It is the semantic reference for every other evaluation
// path in the system (lazy pipelines, derivations from cache elements,
// remote SQL plans are all differentially tested against it).
func Eval(q *Query, src RelationSource) (*relation.Relation, error) {
	it, schema, err := EvalLazy(q, src)
	if err != nil {
		return nil, err
	}
	return relation.Drain(q.Name(), schema, it), nil
}

// EvalLazy builds a lazy iterator pipeline for the query: scans and hash
// joins over the base extensions with selections pushed down, producing head
// tuples on demand. The boolean laziness is real: consuming k tuples of the
// output performs only the work needed for those k tuples on the probe side
// of each join.
func EvalLazy(q *Query, src RelationSource) (relation.Iterator, *relation.Schema, error) {
	if err := q.Validate(); err != nil {
		return nil, nil, err
	}
	// colOf maps a variable to its column in the running wide tuple.
	colOf := make(map[string]int)
	varKind := make(map[string]relation.Kind)
	width := 0
	var pipe relation.Iterator

	for _, atom := range q.Rels {
		base, err := src.RelationExtension(atom.Pred, len(atom.Args))
		if err != nil {
			return nil, nil, err
		}
		if base.Schema().Arity() != len(atom.Args) {
			return nil, nil, fmt.Errorf("caql: atom %s arity %d does not match relation arity %d",
				atom, len(atom.Args), base.Schema().Arity())
		}
		// Push down constant and repeated-variable selections on this atom.
		var localConds []relation.Cond
		localSeen := make(map[string]int)
		var joinConds []relation.JoinCond
		var newVars []string
		for i, t := range atom.Args {
			switch {
			case t.IsConst():
				localConds = append(localConds, relation.ColConst(i, relation.OpEq, t.Const))
			case localSeen[t.Var] != 0:
				localConds = append(localConds, relation.ColCol(localSeen[t.Var]-1, relation.OpEq, i))
			default:
				localSeen[t.Var] = i + 1
				if prev, ok := colOf[t.Var]; ok {
					joinConds = append(joinConds, relation.JoinCond{Left: prev, Right: i})
				} else {
					newVars = append(newVars, t.Var)
					if _, ok := varKind[t.Var]; !ok {
						varKind[t.Var] = base.Schema().Attr(i).Kind
					}
				}
			}
		}
		scan := relation.Select(base.Iter(), localConds)
		if pipe == nil {
			pipe = scan
			for v, i := range localSeen {
				colOf[v] = i - 1
			}
			width = len(atom.Args)
			continue
		}
		pipe = relation.HashJoin(pipe, scan, joinConds)
		for v, i := range localSeen {
			if _, ok := colOf[v]; !ok {
				colOf[v] = width + i - 1
			}
		}
		width += len(atom.Args)
		_ = newVars
	}

	// Apply comparison atoms over the wide tuple.
	var cmpConds []relation.Cond
	for _, c := range q.Cmps {
		l, r := c.Args[0], c.Args[1]
		op := c.CmpOp()
		switch {
		case l.IsVar() && r.IsVar():
			cmpConds = append(cmpConds, relation.ColCol(colOf[l.Var], op, colOf[r.Var]))
		case l.IsVar():
			cmpConds = append(cmpConds, relation.ColConst(colOf[l.Var], op, r.Const))
		case r.IsVar():
			cmpConds = append(cmpConds, relation.ColConst(colOf[r.Var], op.Flip(), l.Const))
		default:
			if !op.Eval(l.Const, r.Const) {
				pipe = relation.Empty()
			}
		}
	}
	pipe = relation.Select(pipe, cmpConds)

	// Project onto the head.
	headCols := make([]int, len(q.Head.Args))
	headConst := make([]relation.Value, len(q.Head.Args))
	attrs := make([]relation.Attr, len(q.Head.Args))
	used := make(map[string]bool)
	for i, t := range q.Head.Args {
		var name string
		if t.IsVar() {
			headCols[i] = colOf[t.Var]
			name = t.Var
			attrs[i] = relation.Attr{Name: t.Var, Kind: varKind[t.Var]}
		} else {
			headCols[i] = -1
			headConst[i] = t.Const
			name = fmt.Sprintf("c%d", i)
			attrs[i] = relation.Attr{Name: name, Kind: t.Const.Kind()}
		}
		for used[attrs[i].Name] {
			attrs[i].Name += "_"
		}
		used[attrs[i].Name] = true
	}
	out := relation.IteratorFunc(func() (relation.Tuple, bool) {
		t, ok := pipe.Next()
		if !ok {
			return nil, false
		}
		row := make(relation.Tuple, len(headCols))
		for i, c := range headCols {
			if c < 0 {
				row[i] = headConst[i]
			} else {
				row[i] = t[c]
			}
		}
		return row, true
	})
	return out, relation.NewSchema(attrs...), nil
}

// EvalUnion evaluates a union eagerly with set semantics across branches.
func EvalUnion(u *Union, src RelationSource) (*relation.Relation, error) {
	var its []relation.Iterator
	var schema *relation.Schema
	for _, q := range u.Queries {
		it, sch, err := EvalLazy(q, src)
		if err != nil {
			return nil, err
		}
		if schema == nil {
			schema = sch
		}
		its = append(its, it)
	}
	return relation.Drain(u.Queries[0].Name(), schema, relation.Distinct(relation.Chain(its...))), nil
}

// EvalAgg evaluates an aggregation query eagerly.
func EvalAgg(a *AggQuery, src RelationSource) (*relation.Relation, error) {
	inner, err := Eval(a.Inner, src)
	if err != nil {
		return nil, err
	}
	return relation.AggregateRel(a.Inner.Name(), inner, a.GroupBy, a.Specs), nil
}

// MapSource is a RelationSource over a map of extensions; primarily a test
// and example fixture.
type MapSource map[string]*relation.Relation

// RelationExtension implements RelationSource.
func (m MapSource) RelationExtension(name string, arity int) (*relation.Relation, error) {
	r, ok := m[name]
	if !ok {
		return nil, fmt.Errorf("caql: unknown relation %s/%d", name, arity)
	}
	if r.Schema().Arity() != arity {
		return nil, fmt.Errorf("caql: relation %s has arity %d, query uses %d", name, r.Schema().Arity(), arity)
	}
	return r, nil
}

// RelationSchema implements SchemaSource.
func (m MapSource) RelationSchema(name string, arity int) (*relation.Schema, error) {
	r, err := m.RelationExtension(name, arity)
	if err != nil {
		return nil, err
	}
	return r.Schema(), nil
}

// Evaluable reports whether all variables in the head are produced by the
// body (already checked by Validate) and all atoms reference relations known
// to src; a convenience used by planners to test local evaluability.
func Evaluable(q *Query, src RelationSource) bool {
	for _, a := range q.Rels {
		if _, err := src.RelationExtension(a.Pred, len(a.Args)); err != nil {
			return false
		}
	}
	return true
}

// HeadBindings extracts the constant bindings of the head by position; used
// by exact-match caching and by generalization analysis.
func HeadBindings(q *Query) map[int]relation.Value {
	out := make(map[int]relation.Value)
	for i, t := range q.Head.Args {
		if t.IsConst() {
			out[i] = t.Const
		}
	}
	return out
}

// Generalize returns a copy of q with the given head argument positions
// turned into fresh variables (and the corresponding body occurrences left
// intact — the body shares the head's variables, so generalization replaces
// constants that appear in both). Positions holding variables already are
// ignored. This implements the paper's query generalization: "constants in
// the query [are] replaced with a more general form".
func Generalize(q *Query, positions []int) *Query {
	out := q.Clone()
	fresh := 0
	for _, pos := range positions {
		if pos < 0 || pos >= len(out.Head.Args) {
			continue
		}
		t := out.Head.Args[pos]
		if t.IsVar() {
			continue
		}
		c := t.Const
		name := fmt.Sprintf("G%d", fresh)
		for out.VarSet()[name] {
			fresh++
			name = fmt.Sprintf("G%d", fresh)
		}
		fresh++
		// Replace this constant everywhere it occurs in head and body. The
		// body occurrences must be replaced for the generalization to widen
		// the selection.
		v := logic.V(name)
		out.Head.Args[pos] = v
		for ai := range out.Rels {
			for ti, at := range out.Rels[ai].Args {
				if at.IsConst() && at.Const.Equal(c) {
					out.Rels[ai].Args[ti] = v
				}
			}
		}
		for ci := range out.Cmps {
			for ti, at := range out.Cmps[ci].Args {
				if at.IsConst() && at.Const.Equal(c) {
					out.Cmps[ci].Args[ti] = v
				}
			}
		}
	}
	return out
}
