// Package caql implements CAQL, BrAID's Cache Query Language (Section 5 of
// the paper): the language in which the inference engine expresses database
// access to the Cache Management System.
//
// A CAQL query is a well-formed formula in function-free first-order
// predicate calculus. Following Section 5.3.2, the core form handled by the
// subsumption machinery is the PSJ (project-select-join) conjunctive query:
// a head (projection) over a conjunction of relational atoms plus comparison
// atoms. Unions of conjunctive queries and second-order aggregation (the
// AGG/BAGOF/SETOF predicates) are layered on top; the CMS evaluates them even
// though the remote DBMS's DML may not support them.
package caql

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/logic"
	"repro/internal/relation"
)

// Query is a conjunctive PSJ query:
//
//	Head :- Rels & Cmps
//
// Head is an atom whose predicate names the query (the paper's d_i view
// identifiers) and whose arguments are the projection (variables, or
// constants for bound arguments). Rels are the relational atoms over base
// relations or views; Cmps are built-in comparison atoms.
type Query struct {
	Head logic.Atom
	Rels []logic.Atom
	Cmps []logic.Atom
}

// NewQuery assembles a query, splitting the body into relational and
// comparison atoms.
func NewQuery(head logic.Atom, body []logic.Atom) *Query {
	q := &Query{Head: head}
	for _, a := range body {
		if a.IsComparison() {
			q.Cmps = append(q.Cmps, a)
		} else {
			q.Rels = append(q.Rels, a)
		}
	}
	return q
}

// Name returns the query's head predicate (its view identifier).
func (q *Query) Name() string { return q.Head.Pred }

// Body returns the full body: relational atoms followed by comparisons.
func (q *Query) Body() []logic.Atom {
	out := make([]logic.Atom, 0, len(q.Rels)+len(q.Cmps))
	out = append(out, q.Rels...)
	out = append(out, q.Cmps...)
	return out
}

// Clone returns a deep copy.
func (q *Query) Clone() *Query {
	out := &Query{Head: cloneAtom(q.Head)}
	out.Rels = cloneAtoms(q.Rels)
	out.Cmps = cloneAtoms(q.Cmps)
	return out
}

func cloneAtom(a logic.Atom) logic.Atom {
	return logic.Atom{Pred: a.Pred, Args: append([]logic.Term(nil), a.Args...)}
}

func cloneAtoms(as []logic.Atom) []logic.Atom {
	out := make([]logic.Atom, len(as))
	for i, a := range as {
		out[i] = cloneAtom(a)
	}
	return out
}

// Validate checks the safety conditions: at least one relational atom, every
// head variable occurs in a relational atom, and every comparison variable
// occurs in a relational atom.
func (q *Query) Validate() error {
	if len(q.Rels) == 0 {
		return fmt.Errorf("caql: query %s has no relational atoms", q.Name())
	}
	relVars := logic.VarsOf(q.Rels)
	for _, t := range q.Head.Args {
		if t.IsVar() && !relVars[t.Var] {
			return fmt.Errorf("caql: head variable %s of %s not bound by any relational atom", t.Var, q.Name())
		}
	}
	for _, c := range q.Cmps {
		for _, t := range c.Args {
			if t.IsVar() && !relVars[t.Var] {
				return fmt.Errorf("caql: comparison variable %s of %s not bound by any relational atom", t.Var, q.Name())
			}
		}
	}
	for _, a := range q.Rels {
		if a.IsComparison() {
			return fmt.Errorf("caql: comparison %s classified as relational atom", a)
		}
	}
	return nil
}

// VarSet returns all variables of the query.
func (q *Query) VarSet() map[string]bool {
	s := logic.VarsOf(q.Rels)
	for v := range q.Head.VarSet() {
		s[v] = true
	}
	for _, c := range q.Cmps {
		for _, t := range c.Args {
			if t.IsVar() {
				s[t.Var] = true
			}
		}
	}
	return s
}

// Preds returns the multiset of relational predicate indicators, sorted.
func (q *Query) Preds() []string {
	out := make([]string, len(q.Rels))
	for i, a := range q.Rels {
		out[i] = a.Key()
	}
	sort.Strings(out)
	return out
}

// ApplySubst returns the query with the substitution applied throughout.
func (q *Query) ApplySubst(s logic.Subst) *Query {
	out := &Query{Head: s.ApplyAtom(q.Head)}
	out.Rels = s.ApplyAtoms(q.Rels)
	out.Cmps = s.ApplyAtoms(q.Cmps)
	return out
}

// Instantiate binds the i-th head argument to the given constant, returning
// the instantiated query: the paper's "IE-query is an instance of one of the
// view specifications with constant bindings".
func (q *Query) Instantiate(bindings map[string]relation.Value) *Query {
	s := logic.NewSubst()
	for v, val := range bindings {
		s.BindInPlace(v, logic.C(val))
	}
	return q.ApplySubst(s)
}

// String renders the query in clause syntax: "d(X, Y) :- b(X, Z) & b2(Z, Y) & X < 3."
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString(q.Head.String())
	b.WriteString(" :- ")
	all := q.Body()
	for i, a := range all {
		if i > 0 {
			b.WriteString(" & ")
		}
		b.WriteString(a.String())
	}
	b.WriteByte('.')
	return b.String()
}

// Canonical returns a renaming-invariant key for the query: variables are
// renumbered in order of first occurrence across head and body. Two queries
// that are identical up to variable renaming share a Canonical key. This is
// the exact-match test used by result caching (and by the BERMUDA-style
// baseline).
func (q *Query) Canonical() string {
	names := make(map[string]string)
	ren := func(t logic.Term) logic.Term {
		if !t.IsVar() {
			return t
		}
		n, ok := names[t.Var]
		if !ok {
			n = fmt.Sprintf("V%d", len(names))
			names[t.Var] = n
		}
		return logic.V(n)
	}
	renAtom := func(a logic.Atom) logic.Atom {
		args := make([]logic.Term, len(a.Args))
		for i, t := range a.Args {
			args[i] = ren(t)
		}
		return logic.Atom{Pred: a.Pred, Args: args}
	}
	var b strings.Builder
	// The head predicate is a view identifier chosen by the caller; exact
	// matching must ignore it (d2 and an alpha-variant j are the same query).
	head := renAtom(q.Head)
	head.Pred = "q"
	b.WriteString(head.String())
	b.WriteString(":-")
	for _, a := range q.Rels {
		b.WriteString(renAtom(a).String())
		b.WriteByte('&')
	}
	// Comparisons participate sorted so syntactic order does not matter.
	cmps := make([]string, 0, len(q.Cmps))
	for _, c := range q.Cmps {
		cmps = append(cmps, renAtom(c).String())
	}
	sort.Strings(cmps)
	for _, c := range cmps {
		b.WriteString(c)
		b.WriteByte('&')
	}
	return b.String()
}

// OutputSchema derives the relational schema of the query result, using the
// catalog to type variables by their positions in base relations. Constants
// in the head type themselves. Head argument names become attribute names
// (constants get synthetic names).
func (q *Query) OutputSchema(catalog SchemaSource) (*relation.Schema, error) {
	kinds := make(map[string]relation.Kind)
	for _, a := range q.Rels {
		sch, err := catalog.RelationSchema(a.Pred, len(a.Args))
		if err != nil {
			return nil, err
		}
		for i, t := range a.Args {
			if t.IsVar() {
				if _, ok := kinds[t.Var]; !ok {
					kinds[t.Var] = sch.Attr(i).Kind
				}
			}
		}
	}
	attrs := make([]relation.Attr, len(q.Head.Args))
	used := make(map[string]bool)
	for i, t := range q.Head.Args {
		var name string
		var kind relation.Kind
		if t.IsVar() {
			name = t.Var
			kind = kinds[t.Var]
		} else {
			name = fmt.Sprintf("c%d", i)
			kind = t.Const.Kind()
		}
		for used[name] {
			name += "_"
		}
		used[name] = true
		attrs[i] = relation.Attr{Name: name, Kind: kind}
	}
	return relation.NewSchema(attrs...), nil
}

// SchemaSource resolves base relation schemas; implemented by the remote
// DBMS catalog and by the CMS's copy of it.
type SchemaSource interface {
	RelationSchema(name string, arity int) (*relation.Schema, error)
}

// Union is a union of conjunctive queries sharing a head shape (the CMS
// evaluates unions locally; the paper's fully-compiled DAPs often involve
// union).
type Union struct {
	Queries []*Query
}

// Validate checks each branch and that arities agree.
func (u *Union) Validate() error {
	if len(u.Queries) == 0 {
		return fmt.Errorf("caql: empty union")
	}
	arity := len(u.Queries[0].Head.Args)
	for _, q := range u.Queries {
		if err := q.Validate(); err != nil {
			return err
		}
		if len(q.Head.Args) != arity {
			return fmt.Errorf("caql: union branches have differing arities")
		}
	}
	return nil
}

// String renders all branches.
func (u *Union) String() string {
	parts := make([]string, len(u.Queries))
	for i, q := range u.Queries {
		parts[i] = q.String()
	}
	return strings.Join(parts, "\n")
}

// AggQuery is a second-order aggregation over a conjunctive query (the AGG
// special predicate of Section 5): group the inner query's result by the
// GroupBy head positions and aggregate the Specs.
type AggQuery struct {
	Inner   *Query
	GroupBy []int
	Specs   []relation.AggSpec
}

// Validate checks the inner query and position bounds.
func (a *AggQuery) Validate() error {
	if err := a.Inner.Validate(); err != nil {
		return err
	}
	arity := len(a.Inner.Head.Args)
	for _, g := range a.GroupBy {
		if g < 0 || g >= arity {
			return fmt.Errorf("caql: AGG group-by position %d out of range", g)
		}
	}
	for _, s := range a.Specs {
		if s.Col >= arity || (s.Col < 0 && s.Op != relation.AggCount) {
			return fmt.Errorf("caql: AGG spec column %d out of range", s.Col)
		}
	}
	return nil
}
