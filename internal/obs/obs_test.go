package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("braid_test_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Get-or-create: the same name returns the same counter.
	if r.Counter("braid_test_total", "a counter") != c {
		t.Fatal("Counter is not idempotent per name")
	}
	g := r.Gauge("braid_test_gauge", "a gauge")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %g, want 2.5", got)
	}
	r.CounterFunc("braid_test_func_total", "read-through", func() int64 { return 7 })
	r.GaugeFunc("braid_test_func_gauge", "read-through", func() float64 { return 1.5 })

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE braid_test_total counter", "braid_test_total 5",
		"# TYPE braid_test_gauge gauge", "braid_test_gauge 2.5",
		"braid_test_func_total 7", "braid_test_func_gauge 1.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("braid_test_us", "latencies")
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d, want 1000", h.Count())
	}
	p50 := h.Quantile(0.50)
	if p50 < 256 || p50 > 1024 {
		t.Errorf("p50 = %g, want within the bucket holding 500 (256,1024]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 512 || p99 > 1024 {
		t.Errorf("p99 = %g, want in (512,1024]", p99)
	}
	if q := h.Quantile(1.0); q > 1024 {
		t.Errorf("p100 = %g, want <= 1024", q)
	}
	// Overflow bucket: huge values land in +Inf and report the last bound.
	h2 := r.Histogram("braid_test2_us", "overflow")
	h2.Observe(1 << 40)
	if q := h2.Quantile(0.5); q != float64(int64(1)<<(histBuckets-1)) {
		t.Errorf("overflow quantile = %g", q)
	}
	h2.Observe(-5) // clamps to 0, must not panic
}

func TestBucketFor(t *testing.T) {
	cases := map[int64]int{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11}
	for v, want := range cases {
		if got := bucketFor(v); got != want {
			t.Errorf("bucketFor(%d) = %d, want %d", v, got, want)
		}
	}
	if got := bucketFor(1 << 62); got != histBuckets {
		t.Errorf("bucketFor(1<<62) = %d, want overflow %d", got, histBuckets)
	}
}

// TestPrometheusFormatParses is a minimal exposition-format validator: every
// non-comment line must be "name[{labels}] value", histogram bucket counts
// must be cumulative and end in +Inf, and TYPE lines must precede samples.
func TestPrometheusFormatParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("braid_a_total", "a").Add(3)
	h := r.Histogram("braid_b_us", "b")
	h.Observe(10)
	h.Observe(100000)
	r.GaugeFunc("braid_c", "c", func() float64 { return 0.25 })
	var b strings.Builder
	r.WritePrometheus(&b)

	typed := map[string]bool{}
	lastBucket := map[string]int64{}
	sawInf := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("bad TYPE line %q", line)
			}
			typed[f[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("sample line without value: %q", line)
		}
		name, val := line[:sp], line[sp+1:]
		var f float64
		if _, err := fmt.Sscanf(val, "%g", &f); err != nil {
			t.Fatalf("unparseable value %q in %q: %v", val, line, err)
		}
		base := name
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		family := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(base,
			"_bucket"), "_sum"), "_count")
		if !typed[family] && !typed[base] {
			t.Errorf("sample %q has no preceding TYPE", line)
		}
		if strings.Contains(name, "_bucket{") {
			if int64(f) < lastBucket[family] {
				t.Errorf("bucket counts not cumulative at %q", line)
			}
			lastBucket[family] = int64(f)
			if strings.Contains(name, `le="+Inf"`) {
				sawInf[family] = true
			}
		}
	}
	if !sawInf["braid_b_us"] {
		t.Error("histogram missing +Inf bucket")
	}
}

func TestTracerSamplingAndParenting(t *testing.T) {
	tr := NewTracer(1, 64)
	ctx, root := tr.Start(context.Background(), "root")
	if root == nil {
		t.Fatal("sampleEvery=1 must record every root span")
	}
	_, child := tr.Start(ctx, "child")
	if child == nil {
		t.Fatal("child of a recorded span must record")
	}
	if child.TraceID != root.TraceID || child.ParentID != root.SpanID {
		t.Fatalf("child not stitched: %+v vs root %+v", child, root)
	}
	if TraceID(ctx) != root.TraceID {
		t.Fatal("TraceID(ctx) should report the active span's trace")
	}
	child.Set("k", "v")
	child.End()
	root.End()
	root.End() // idempotent
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("ring has %d spans, want 2", len(spans))
	}
	dump := tr.Dump()
	if !strings.Contains(dump, "root") || !strings.Contains(dump, "child") ||
		!strings.Contains(dump, "k=v") {
		t.Errorf("dump missing content:\n%s", dump)
	}
}

func TestTracerSampleEveryN(t *testing.T) {
	tr := NewTracer(10, 64)
	recorded := 0
	for i := 0; i < 100; i++ {
		_, s := tr.Start(context.Background(), "q")
		if s != nil {
			recorded++
			s.End()
		}
	}
	if recorded != 10 {
		t.Fatalf("1-in-10 sampler recorded %d of 100", recorded)
	}
}

func TestTracerAdoptedTraceID(t *testing.T) {
	// A server-side tracer sampling 1-in-1000 must still record spans whose
	// trace ID was adopted from the wire.
	tr := NewTracer(1000, 16)
	ctx := WithTraceID(context.Background(), 0xabc)
	if TraceID(ctx) != 0xabc {
		t.Fatal("WithTraceID/TraceID round trip failed")
	}
	_, s := tr.Start(ctx, "srv")
	if s == nil {
		t.Fatal("adopted trace ID must bypass the sampler")
	}
	if s.TraceID != 0xabc {
		t.Fatalf("span trace = %x, want adopted 0xabc", s.TraceID)
	}
	s.End()
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	ctx, s := tr.Start(context.Background(), "x")
	if s != nil {
		t.Fatal("nil tracer returned a span")
	}
	s.Set("k", "v")
	s.Setf("k", "%d", 1)
	s.End()
	if TraceID(ctx) != 0 {
		t.Fatal("nil tracer leaked a trace ID")
	}
	if tr.Spans() != nil || tr.Dump() == "" {
		// Dump on a nil tracer goes through Spans() -> empty message.
	}
	tr.Reset()
}

func TestTracerRingWraps(t *testing.T) {
	tr := NewTracer(1, 4)
	for i := 0; i < 10; i++ {
		_, s := tr.Start(context.Background(), fmt.Sprintf("s%d", i))
		s.End()
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d, want 4", len(spans))
	}
	if spans[0].Name != "s6" || spans[3].Name != "s9" {
		t.Fatalf("ring order wrong: %s..%s", spans[0].Name, spans[3].Name)
	}
	tr.Reset()
	if len(tr.Spans()) != 0 {
		t.Fatal("Reset did not clear the ring")
	}
}

func TestTraceJSONExport(t *testing.T) {
	tr := NewTracer(1, 8)
	ctx, root := tr.Start(context.Background(), "q")
	_, c := tr.Start(ctx, "c")
	c.End()
	root.End()
	var b strings.Builder
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var spans []Span
	if err := json.Unmarshal([]byte(b.String()), &spans); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(spans) != 2 || spans[0].TraceID != spans[1].TraceID {
		t.Fatalf("bad export: %+v", spans)
	}
}

// TestSnapshotDuringLoad hammers metric writes and tracer spans from many
// goroutines while scraping concurrently; run under -race this is the
// "stats races by omission" regression test.
func TestSnapshotDuringLoad(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(2, 256)
	c := r.Counter("braid_load_total", "")
	h := r.Histogram("braid_load_us", "")
	r.GaugeFunc("braid_load_gauge", "", func() float64 { return float64(c.Value()) })
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				h.Observe(int64(c.Value() % 5000))
				ctx, s := tr.Start(context.Background(), "load")
				_, cs := tr.Start(ctx, "inner")
				cs.End()
				s.End()
			}
		}()
	}
	for i := 0; i < 50; i++ {
		var b strings.Builder
		r.WritePrometheus(&b)
		h.Quantile(0.99)
		tr.Spans()
		_ = tr.Dump()
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
}

func TestAdminServer(t *testing.T) {
	r := NewRegistry()
	r.Counter("braid_admin_total", "smoke").Add(9)
	RegisterRuntime(r)
	tr := NewTracer(1, 8)
	_, s := tr.Start(context.Background(), "admin")
	s.End()
	a, err := ServeAdmin("127.0.0.1:0", r, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	get := func(path string) string {
		resp, err := http.Get("http://" + a.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}
	if out := get("/metrics"); !strings.Contains(out, "braid_admin_total 9") ||
		!strings.Contains(out, "braid_go_goroutines") {
		t.Errorf("/metrics missing expected series:\n%s", out)
	}
	if out := get("/debug/vars"); !strings.Contains(out, "memstats") {
		t.Error("/debug/vars is not expvar output")
	}
	var spans []Span
	if err := json.Unmarshal([]byte(get("/debug/traces")), &spans); err != nil || len(spans) != 1 {
		t.Errorf("/debug/traces bad payload: %v (%d spans)", err, len(spans))
	}
	if out := get("/debug/pprof/cmdline"); out == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
}
