// Package obs is BrAID's zero-dependency observability layer: a metrics
// registry (counters, gauges, log-bucketed histograms) with Prometheus text
// exposition, a lightweight context-propagated span tracer whose trace IDs
// ride the v2 wire protocol, and an admin HTTP listener that serves both
// plus expvar and pprof. Everything here is allocation-light and safe for
// concurrent use; a nil *Tracer or absent Registry disables the
// corresponding instrumentation at near-zero cost.
package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry names and serves a process's metrics. Metric constructors are
// get-or-create and safe for concurrent use, so independently initialized
// tiers (CMS, pool, server) can share one registry without coordination.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]metric
}

// metric is anything the registry can expose in Prometheus text format.
type metric interface {
	expose(w io.Writer, name string)
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]metric)}
}

func (r *Registry) register(name string, m metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.metrics[name]; ok {
		return old
	}
	r.metrics[name] = m
	return m
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (one # HELP / # TYPE pair per family), sorted by name
// so output is diffable.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for n := range r.metrics {
		names = append(names, n)
	}
	ms := make(map[string]metric, len(r.metrics))
	for n, m := range r.metrics {
		ms[n] = m
	}
	r.mu.Unlock()
	sort.Strings(names)
	for _, n := range names {
		ms[n].expose(w, n)
	}
}

// Counter is a monotonically increasing metric.
type Counter struct {
	help string
	v    atomic.Int64
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(name, &Counter{help: help})
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
	}
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the value to remain monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) expose(w io.Writer, name string) {
	header(w, name, c.help, "counter")
	fmt.Fprintf(w, "%s %d\n", name, c.v.Load())
}

// funcCounter exposes an existing atomic counter (e.g. the bridge
// StatsCounters or pool stats) without double accounting: the source stays
// authoritative and the registry reads it at scrape time.
type funcCounter struct {
	help string
	f    func() int64
}

// CounterFunc registers a read-through counter backed by f.
func (r *Registry) CounterFunc(name, help string, f func() int64) {
	r.register(name, &funcCounter{help: help, f: f})
}

func (c *funcCounter) expose(w io.Writer, name string) {
	header(w, name, c.help, "counter")
	fmt.Fprintf(w, "%s %d\n", name, c.f())
}

// Gauge is a metric that can go up and down.
type Gauge struct {
	help string
	bits atomic.Uint64
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(name, &Gauge{help: help})
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
	}
	return g
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) expose(w io.Writer, name string) {
	header(w, name, g.help, "gauge")
	fmt.Fprintf(w, "%s %g\n", name, g.Value())
}

// funcGauge exposes a computed value (hit rates, pool sizes, runtime stats)
// evaluated at scrape time.
type funcGauge struct {
	help string
	f    func() float64
}

// GaugeFunc registers a read-through gauge backed by f.
func (r *Registry) GaugeFunc(name, help string, f func() float64) {
	r.register(name, &funcGauge{help: help, f: f})
}

func (g *funcGauge) expose(w io.Writer, name string) {
	header(w, name, g.help, "gauge")
	fmt.Fprintf(w, "%s %g\n", name, g.f())
}

// histBuckets is the number of finite histogram buckets; upper bounds are
// the powers of two 1, 2, 4, ..., 2^(histBuckets-1), which in microsecond
// units spans 1us .. ~35min — wide enough for frame writes and whole-query
// latencies alike at a fixed 32 words of storage.
const histBuckets = 32

// Histogram is a log-bucketed (power-of-two bounds) histogram of int64
// observations. Observe is wait-free; quantile extraction walks the bucket
// counts with linear interpolation inside the target bucket.
type Histogram struct {
	help   string
	counts [histBuckets + 1]atomic.Int64 // [histBuckets] is the +Inf overflow
	sum    atomic.Int64
	n      atomic.Int64
}

// Histogram returns (creating if needed) the named histogram. Pick a unit
// suffix for the name (e.g. _us) — the buckets are unitless powers of two.
func (r *Registry) Histogram(name, help string) *Histogram {
	m := r.register(name, &Histogram{help: help})
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
	}
	return h
}

// bucketFor maps v to the smallest bucket whose upper bound is >= v.
func bucketFor(v int64) int {
	if v <= 1 {
		return 0
	}
	b := bits.Len64(uint64(v - 1)) // v <= 1<<b
	if b >= histBuckets {
		return histBuckets
	}
	return b
}

// Observe records one value. Negative observations clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketFor(v)].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Quantile returns the q-quantile (0 <= q <= 1) estimated by a cumulative
// walk with linear interpolation inside the matched bucket; observations in
// the overflow bucket report the largest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.n.Load()
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	cum := 0.0
	for i := 0; i <= histBuckets; i++ {
		c := float64(h.counts[i].Load())
		if c == 0 {
			continue
		}
		if cum+c >= target {
			lo, hi := bucketBounds(i)
			frac := (target - cum) / c
			if frac < 0 {
				frac = 0
			}
			return lo + frac*(hi-lo)
		}
		cum += c
	}
	_, hi := bucketBounds(histBuckets)
	return hi
}

// bucketBounds returns the [lower, upper] value range of bucket i.
func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 1
	}
	if i >= histBuckets {
		// Overflow: report the largest finite bound for both ends.
		b := math.Ldexp(1, histBuckets-1)
		return b, b
	}
	return math.Ldexp(1, i-1), math.Ldexp(1, i)
}

func (h *Histogram) expose(w io.Writer, name string) {
	header(w, name, h.help, "histogram")
	cum := int64(0)
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, int64(1)<<i, cum)
	}
	cum += h.counts[histBuckets].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %d\n", name, h.sum.Load())
	fmt.Fprintf(w, "%s_count %d\n", name, h.n.Load())
}

func header(w io.Writer, name, help, kind string) {
	if help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
}
