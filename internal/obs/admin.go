package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// AdminServer is the observability HTTP listener behind -admin: Prometheus
// text at /metrics, expvar at /debug/vars, the pprof suite at
// /debug/pprof/, and the tracer ring as JSON at /debug/traces.
type AdminServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeAdmin binds addr and serves the registry and tracer until Close.
// Either may be nil (the corresponding endpoint reports empty data).
func ServeAdmin(addr string, reg *Registry, tr *Tracer) (*AdminServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if reg != nil {
			reg.WritePrometheus(w)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	// net/http/pprof only self-registers on http.DefaultServeMux; wire its
	// handlers onto ours explicitly so the admin mux stays isolated.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if tr != nil {
			_ = tr.WriteJSON(w)
		} else {
			_, _ = w.Write([]byte("[]\n"))
		}
	})
	a := &AdminServer{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go func() { _ = a.srv.Serve(ln) }()
	return a, nil
}

// Addr returns the bound listen address (useful with ":0").
func (a *AdminServer) Addr() string { return a.ln.Addr().String() }

// Close stops the listener and in-flight handlers.
func (a *AdminServer) Close() error { return a.srv.Close() }

// RegisterRuntime adds process-level runtime gauges (goroutines, heap) to
// the registry.
func RegisterRuntime(reg *Registry) {
	reg.GaugeFunc("braid_go_goroutines", "number of live goroutines",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("braid_go_heap_alloc_bytes", "bytes of allocated heap objects",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
}
