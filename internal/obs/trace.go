package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer records lightweight spans into a fixed-size ring. Sampling is
// counter-based (every Nth root span starts a trace) so the hot path never
// touches a random source; child spans of a recorded parent are always
// recorded, and spans whose trace ID was adopted from the wire are recorded
// unconditionally — the client already made the sampling decision.
//
// All methods are nil-safe: a nil *Tracer starts no spans, and the nil
// *Span it returns ignores Set and End. Instrumented code therefore never
// branches on "is tracing on".
type Tracer struct {
	sampleEvery int64
	tick        atomic.Int64
	nextTrace   atomic.Uint64
	nextSpan    atomic.Uint64

	mu   sync.Mutex
	ring []*Span
	pos  int
	full bool
}

// NewTracer returns a tracer sampling one in every sampleEvery root spans
// (<= 1 samples everything) and retaining the last capacity completed spans.
func NewTracer(sampleEvery, capacity int) *Tracer {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	if capacity < 1 {
		capacity = 1024
	}
	t := &Tracer{sampleEvery: int64(sampleEvery), ring: make([]*Span, capacity)}
	// Seed the trace-ID space from the clock so traces from separate
	// processes (client and server rings) do not collide on small integers.
	t.nextTrace.Store(uint64(time.Now().UnixNano()))
	return t
}

// Span is one timed operation. Completed spans live in the tracer ring;
// fields are exported for JSON export and tests.
type Span struct {
	tr       *Tracer
	TraceID  uint64        `json:"trace"`
	SpanID   uint64        `json:"span"`
	ParentID uint64        `json:"parent,omitempty"`
	Name     string        `json:"name"`
	Begin    time.Time     `json:"begin"`
	Dur      time.Duration `json:"dur_ns"`
	Attrs    []Attr        `json:"attrs,omitempty"`
	done     atomic.Bool
}

// Attr is one span annotation.
type Attr struct {
	Key string `json:"k"`
	Val string `json:"v"`
}

type ctxKey int

const (
	ctxSpan    ctxKey = iota // the active *Span (parenting)
	ctxTraceID               // a trace ID adopted from the wire (server side)
)

// WithTraceID marks ctx as belonging to an existing trace (an ID received
// over the wire). Spans started under it are recorded with that trace ID
// regardless of the local sampler. A zero id is a no-op.
func WithTraceID(ctx context.Context, id uint64) context.Context {
	if id == 0 {
		return ctx
	}
	return context.WithValue(ctx, ctxTraceID, id)
}

// TraceID returns the trace ID the work under ctx belongs to: the active
// span's, or an adopted wire ID, or 0 when untraced.
func TraceID(ctx context.Context) uint64 {
	if ctx == nil {
		return 0
	}
	if s, ok := ctx.Value(ctxSpan).(*Span); ok && s != nil {
		return s.TraceID
	}
	if id, ok := ctx.Value(ctxTraceID).(uint64); ok {
		return id
	}
	return 0
}

// SpanFromContext returns the active span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxSpan).(*Span)
	return s
}

// Start begins a span named name. If ctx carries an active span the new
// span is its child (always recorded); if ctx carries an adopted trace ID
// the span joins that trace; otherwise the sampler decides whether a new
// trace begins. Returns ctx unchanged and a nil span when not recording.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	var trace, parent uint64
	if p, ok := ctx.Value(ctxSpan).(*Span); ok && p != nil {
		trace, parent = p.TraceID, p.SpanID
	} else if id, ok := ctx.Value(ctxTraceID).(uint64); ok && id != 0 {
		trace = id
	} else {
		if t.tick.Add(1)%t.sampleEvery != 0 {
			return ctx, nil
		}
		trace = t.nextTrace.Add(1)
	}
	s := &Span{
		tr:       t,
		TraceID:  trace,
		SpanID:   t.nextSpan.Add(1),
		ParentID: parent,
		Name:     name,
		Begin:    time.Now(),
	}
	return context.WithValue(ctx, ctxSpan, s), s
}

// Set annotates the span. Nil-safe.
func (s *Span) Set(key, val string) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Val: val})
}

// Setf annotates the span with a formatted value. Nil-safe.
func (s *Span) Setf(key, format string, args ...any) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Val: fmt.Sprintf(format, args...)})
}

// End completes the span and commits it to the tracer ring. Nil-safe and
// idempotent.
func (s *Span) End() {
	if s == nil || !s.done.CompareAndSwap(false, true) {
		return
	}
	s.Dur = time.Since(s.Begin)
	t := s.tr
	t.mu.Lock()
	t.ring[t.pos] = s
	t.pos++
	if t.pos == len(t.ring) {
		t.pos, t.full = 0, true
	}
	t.mu.Unlock()
}

// Spans returns a snapshot of the retained completed spans, oldest first.
func (t *Tracer) Spans() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []*Span
	if t.full {
		out = append(out, t.ring[t.pos:]...)
	}
	out = append(out, t.ring[:t.pos]...)
	return out
}

// Reset drops all retained spans.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	for i := range t.ring {
		t.ring[i] = nil
	}
	t.pos, t.full = 0, false
	t.mu.Unlock()
}

// Dump renders the retained spans grouped by trace, each trace as an
// indented tree ordered by start time — the `.trace` output in braid-repl.
func (t *Tracer) Dump() string {
	spans := t.Spans()
	if len(spans) == 0 {
		return "(no traces recorded)"
	}
	byTrace := map[uint64][]*Span{}
	var order []uint64
	for _, s := range spans {
		if _, ok := byTrace[s.TraceID]; !ok {
			order = append(order, s.TraceID)
		}
		byTrace[s.TraceID] = append(byTrace[s.TraceID], s)
	}
	var b strings.Builder
	for _, id := range order {
		ss := byTrace[id]
		sort.Slice(ss, func(i, j int) bool { return ss[i].Begin.Before(ss[j].Begin) })
		depth := map[uint64]int{}
		fmt.Fprintf(&b, "trace %016x (%d spans)\n", id, len(ss))
		for _, s := range ss {
			d := 0
			if s.ParentID != 0 {
				d = depth[s.ParentID] + 1
			}
			depth[s.SpanID] = d
			fmt.Fprintf(&b, "  %s%-24s %10.1fus", strings.Repeat("  ", d), s.Name,
				float64(s.Dur.Nanoseconds())/1e3)
			for _, a := range s.Attrs {
				fmt.Fprintf(&b, "  %s=%s", a.Key, a.Val)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// WriteJSON exports the retained spans as a JSON array, oldest first.
func (t *Tracer) WriteJSON(w io.Writer) error {
	spans := t.Spans()
	if spans == nil {
		spans = []*Span{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(spans)
}
