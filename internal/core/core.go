// Package core composes the three BrAID components of Figure 3 — inference
// engine, Cache Management System, and remote DBMS — into a runnable system,
// and provides the comparator configurations (loose coupling, exact-match
// caching, single-relation caching) used by the experiment suite.
package core

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/bridge"
	"repro/internal/cache"
	"repro/internal/ie"
	"repro/internal/logic"
	"repro/internal/remotedb"
)

// Comparator selects the data-layer configuration between the IE and the
// remote DBMS (the approaches of Figure 1 that share our query interface).
type Comparator string

// Comparator values.
const (
	// ComparatorBrAID is the full Cache Management System.
	ComparatorBrAID Comparator = "braid"
	// ComparatorLoose is loose coupling: no cache, every query remote.
	ComparatorLoose Comparator = "loose"
	// ComparatorExact is BERMUDA-style exact-match result caching.
	ComparatorExact Comparator = "exact"
	// ComparatorSingleRel is CERI86-style whole-relation caching.
	ComparatorSingleRel Comparator = "singlerel"
)

// Config assembles a system.
type Config struct {
	// Comparator picks the data layer (default ComparatorBrAID).
	Comparator Comparator
	// IE configures the inference engine (strategy, advice, shaping).
	IE ie.Options
	// CMS configures the BrAID cache (ignored by the other comparators
	// except CacheBytes and Costs).
	CMS cache.Options
}

// DefaultConfig is the full BrAID system with the interpreted strategy.
func DefaultConfig() Config {
	return Config{
		Comparator: ComparatorBrAID,
		IE:         ie.DefaultOptions(),
		CMS: cache.Options{
			Features: cache.AllFeatures(),
			Costs:    remotedb.DefaultCosts(),
		},
	}
}

// System is a wired BrAID instance: one knowledge base, one data layer, one
// remote client.
type System struct {
	KB     *logic.KB
	Engine *ie.Engine
	DS     bridge.DataSource
	Client remotedb.Client
	Config Config
}

// NewSystem wires a system over an existing remote client.
func NewSystem(kb *logic.KB, client remotedb.Client, cfg Config) (*System, error) {
	if cfg.Comparator == "" {
		cfg.Comparator = ComparatorBrAID
	}
	if cfg.CMS.Costs == (remotedb.Costs{}) {
		cfg.CMS.Costs = remotedb.DefaultCosts()
	}
	var ds bridge.DataSource
	switch cfg.Comparator {
	case ComparatorBrAID:
		ds = cache.New(client, cfg.CMS)
	case ComparatorLoose:
		ds = baseline.NewLooseCoupling(client)
	case ComparatorExact:
		ds = baseline.NewExactMatchCache(client, cfg.CMS.CacheBytes)
	case ComparatorSingleRel:
		ds = baseline.NewSingleRelationCache(client, cfg.CMS.CacheBytes)
	default:
		return nil, fmt.Errorf("core: unknown comparator %q", cfg.Comparator)
	}
	return &System{
		KB:     kb,
		Engine: ie.New(kb, ds, cfg.IE),
		DS:     ds,
		Client: client,
		Config: cfg,
	}, nil
}

// Ask runs an AI query through the inference engine.
func (s *System) Ask(goal logic.Atom) (*ie.Solutions, error) { return s.Engine.Ask(goal) }

// AskText parses and runs an AI query.
func (s *System) AskText(src string) (*ie.Solutions, error) { return s.Engine.AskText(src) }

// Stats returns the data layer's cumulative counters.
func (s *System) Stats() bridge.SourceStats { return s.DS.Stats() }

// CMS returns the cache when the comparator is BrAID-like, else nil.
func (s *System) CMS() *cache.CMS {
	if c, ok := s.DS.(*cache.CMS); ok {
		return c
	}
	if sr, ok := s.DS.(*baseline.SingleRelationCache); ok {
		return sr.CMS()
	}
	return nil
}
