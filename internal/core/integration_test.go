package core

import (
	"testing"

	"repro/internal/ie"
	"repro/internal/logic"
	"repro/internal/remotedb"
	"repro/internal/workload"
)

// The broad consistency sweep: every workload × strategy × comparator
// produces the same distinct answer sets as the bottom-up reference
// evaluation. This is the whole-system differential test.
func TestWorkloadsStrategiesComparatorsAgree(t *testing.T) {
	workloads := []*workload.Workload{
		workload.Kinship(101, 35),
		workload.Suppliers(102, 12),
		workload.Chain(103, 60, 12),
	}
	for _, w := range workloads {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			// Reference answers per query.
			want := make(map[string]map[string]bool)
			for _, q := range w.Queries {
				derived, err := ie.BottomUp(w.KB, w.Source(), []logic.PredRef{q.Ref()})
				if err != nil {
					t.Fatalf("reference %s: %v", q, err)
				}
				set := make(map[string]bool)
				for _, s := range ie.Answers(q, derived[q.Ref()]) {
					set[s.String()] = true
				}
				want[q.String()] = set
			}
			for _, strat := range []ie.Strategy{ie.StrategyInterpreted, ie.StrategyConjunction, ie.StrategyCompiled} {
				for _, comp := range []Comparator{ComparatorBrAID, ComparatorLoose, ComparatorExact, ComparatorSingleRel} {
					cfg := DefaultConfig()
					cfg.IE.Strategy = strat
					cfg.Comparator = comp
					client := remotedb.NewInProcClient(w.Engine(), remotedb.DefaultCosts())
					sys, err := NewSystem(w.KB, client, cfg)
					if err != nil {
						t.Fatal(err)
					}
					for _, q := range w.Queries {
						sol, err := sys.Ask(q)
						if err != nil {
							t.Fatalf("%s/%s: %s: %v", strat, comp, q, err)
						}
						got := make(map[string]bool)
						for {
							sub, ok := sol.Next()
							if !ok {
								break
							}
							got[sub.String()] = true
						}
						if sol.Err() != nil {
							t.Fatalf("%s/%s: %s: %v", strat, comp, q, sol.Err())
						}
						if !sameSet(got, want[q.String()]) {
							t.Fatalf("%s/%s: %s: got %d distinct answers, want %d",
								strat, comp, q, len(got), len(want[q.String()]))
						}
					}
				}
			}
		})
	}
}

func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// Sessions over TCP behave identically to in-process for a whole workload.
func TestWorkloadOverTCP(t *testing.T) {
	w := workload.Chain(104, 50, 10)
	srv := remotedb.NewServer(w.Engine())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := remotedb.DialTCP(addr, remotedb.DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	sys, err := NewSystem(w.KB, client, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range w.Queries {
		sol, err := sys.Ask(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		sol.All()
		if sol.Err() != nil {
			t.Fatalf("%s: %v", q, sol.Err())
		}
	}
	if sys.Stats().RemoteRequests == 0 {
		t.Fatal("expected TCP requests")
	}
}
