package core

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/ie"
	"repro/internal/remotedb"
	"repro/internal/workload"
)

func testSystem(t *testing.T, cfg Config) *System {
	t.Helper()
	w := workload.Kinship(3, 40)
	client := remotedb.NewInProcClient(w.Engine(), remotedb.DefaultCosts())
	sys, err := NewSystem(w.KB, client, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestDefaultConfigSystem(t *testing.T) {
	sys := testSystem(t, DefaultConfig())
	sol, err := sys.AskText("grandparent(X, Z)?")
	if err != nil {
		t.Fatal(err)
	}
	n := len(sol.All())
	if sol.Err() != nil {
		t.Fatal(sol.Err())
	}
	if n == 0 {
		t.Fatal("expected grandparent answers")
	}
	if sys.CMS() == nil {
		t.Fatal("BrAID comparator should expose the CMS")
	}
	if sys.Stats().Queries == 0 {
		t.Fatal("stats should count queries")
	}
}

func TestComparatorsProduceSameAnswers(t *testing.T) {
	var counts []int
	for _, comp := range []Comparator{ComparatorBrAID, ComparatorLoose, ComparatorExact, ComparatorSingleRel} {
		cfg := DefaultConfig()
		cfg.Comparator = comp
		sys := testSystem(t, cfg)
		sol, err := sys.AskText("uncle(X, Y)?")
		if err != nil {
			t.Fatalf("%s: %v", comp, err)
		}
		seen := map[string]bool{}
		for {
			sub, ok := sol.Next()
			if !ok {
				break
			}
			seen[sub.String()] = true
		}
		if sol.Err() != nil {
			t.Fatalf("%s: %v", comp, sol.Err())
		}
		counts = append(counts, len(seen))
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] != counts[0] {
			t.Fatalf("comparators disagree: %v", counts)
		}
	}
}

func TestComparatorCMSExposure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Comparator = ComparatorLoose
	sys := testSystem(t, cfg)
	if sys.CMS() == nil {
		t.Fatal("loose comparator is a featureless CMS; it should still be exposed")
	}
	cfg.Comparator = ComparatorSingleRel
	sys = testSystem(t, cfg)
	if sys.CMS() == nil {
		t.Fatal("singlerel wraps a CMS; it should be exposed")
	}
}

func TestUnknownComparator(t *testing.T) {
	w := workload.Kinship(3, 10)
	client := remotedb.NewInProcClient(w.Engine(), remotedb.DefaultCosts())
	if _, err := NewSystem(w.KB, client, Config{Comparator: "psychic"}); err == nil {
		t.Fatal("unknown comparator should error")
	}
}

func TestStrategyOverride(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IE.Strategy = ie.StrategyCompiled
	cfg.CMS = cache.Options{Features: cache.AllFeatures(), Costs: remotedb.DefaultCosts()}
	sys := testSystem(t, cfg)
	sol, err := sys.AskText(`anc("p000", Y)?`)
	if err != nil {
		t.Fatal(err)
	}
	sol.All()
	if sol.Err() != nil {
		t.Fatal(sol.Err())
	}
}
