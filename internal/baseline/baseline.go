// Package baseline implements the comparison systems of the paper's Figure 1
// taxonomy as bridge.DataSource implementations, so the same inference
// engine can run against each:
//
//   - LooseCoupling: every CAQL query goes to the remote DBMS; nothing is
//     cached ([ABAR86] KEE-Connection / [BOCC86] EDUCE style).
//   - ExactMatchCache: results are cached and reused only on an exact match
//     of a later query ([IOAN88] BERMUDA / [SELL87] style).
//   - SingleRelationCache: whole base relations are cached on first touch
//     and queries are answered from the local copies ([CERI86] style, where
//     cached elements contain only single relations).
//
// BrAID itself (internal/cache with all features) is the fourth point of the
// comparison.
package baseline

import (
	"context"
	"fmt"

	"repro/internal/advice"
	"repro/internal/bridge"
	"repro/internal/cache"
	"repro/internal/caql"
	"repro/internal/logic"
	"repro/internal/relation"
	"repro/internal/remotedb"
)

// NewLooseCoupling returns the no-cache baseline: a CMS with every feature
// disabled, so each query is translated and shipped remote.
func NewLooseCoupling(client remotedb.Client) bridge.DataSource {
	return cache.New(client, cache.Options{Features: cache.Features{}})
}

// NewExactMatchCache returns the BERMUDA-style result cache: exact-match
// reuse only — "the cached results must exactly match the query" — with no
// subsumption and no advice-driven techniques.
func NewExactMatchCache(client remotedb.Client, budget int64) bridge.DataSource {
	return cache.New(client, cache.Options{
		Features:   cache.Features{ExactMatch: true, ResultCaching: true},
		CacheBytes: budget,
	})
}

// SingleRelationCache caches whole base relations on first touch and answers
// queries from the local copies. Cached elements contain only single
// relations (no views over joins), per [CERI86].
type SingleRelationCache struct {
	cms *cache.CMS
}

var _ bridge.DataSource = (*SingleRelationCache)(nil)

// NewSingleRelationCache builds the [CERI86]-style baseline.
func NewSingleRelationCache(client remotedb.Client, budget int64) *SingleRelationCache {
	return &SingleRelationCache{cms: cache.New(client, cache.Options{
		Features: cache.Features{
			Subsumption:   true,
			ExactMatch:    true,
			ResultCaching: true,
		},
		CacheBytes: budget,
	})}
}

// CMS exposes the underlying cache for introspection in tests and benches.
func (s *SingleRelationCache) CMS() *cache.CMS { return s.cms }

// BeginSession implements bridge.DataSource.
func (s *SingleRelationCache) BeginSession(adv *advice.Advice) bridge.Session {
	// Advice is deliberately dropped: the baseline predates the technique.
	return &srSession{inner: s.cms.BeginSession(nil), ds: s, loaded: make(map[string]bool)}
}

// RelationSchema implements bridge.DataSource.
func (s *SingleRelationCache) RelationSchema(name string, arity int) (*relation.Schema, error) {
	return s.cms.RelationSchema(name, arity)
}

// RelationStats implements bridge.DataSource.
func (s *SingleRelationCache) RelationStats(name string) (remotedb.TableStats, error) {
	return s.cms.RelationStats(name)
}

// Stats implements bridge.DataSource.
func (s *SingleRelationCache) Stats() bridge.SourceStats { return s.cms.Stats() }

type srSession struct {
	inner  bridge.Session
	ds     *SingleRelationCache
	loaded map[string]bool
}

// Query loads each referenced base relation in full on first touch, then
// answers the query (the CMS's subsumption serves it from the full copies).
func (s *srSession) Query(q *caql.Query) (*bridge.Stream, error) {
	return s.QueryCtx(context.Background(), q)
}

// QueryCtx implements bridge.Session; the first-touch loads run under the
// same context as the query itself.
func (s *srSession) QueryCtx(ctx context.Context, q *caql.Query) (*bridge.Stream, error) {
	for _, a := range q.Rels {
		key := fmt.Sprintf("%s/%d", a.Pred, len(a.Args))
		if s.loaded[key] {
			continue
		}
		s.loaded[key] = true
		args := make([]logic.Term, len(a.Args))
		for i := range args {
			args[i] = logic.V(fmt.Sprintf("X%d", i))
		}
		load := caql.NewQuery(logic.A("load_"+a.Pred, args...), []logic.Atom{logic.A(a.Pred, args...)})
		stream, err := s.inner.QueryCtx(ctx, load)
		if err != nil {
			return nil, err
		}
		stream.Drain("load") // force the fetch; the CMS caches the element
	}
	return s.inner.QueryCtx(ctx, q)
}

// QueryText implements bridge.Session.
func (s *srSession) QueryText(src string) (*bridge.Stream, error) {
	return s.QueryTextCtx(context.Background(), src)
}

// QueryTextCtx implements bridge.Session.
func (s *srSession) QueryTextCtx(ctx context.Context, src string) (*bridge.Stream, error) {
	q, err := caql.Parse(src)
	if err != nil {
		return nil, err
	}
	return s.QueryCtx(ctx, q)
}

// End implements bridge.Session.
func (s *srSession) End() { s.inner.End() }
