package baseline

import (
	"testing"

	"repro/internal/caql"
	"repro/internal/relation"
	"repro/internal/remotedb"
)

func fixtureClient(t *testing.T) remotedb.Client {
	t.Helper()
	e := remotedb.NewEngine()
	b2 := relation.New("b2", relation.NewSchema(
		relation.Attr{Name: "x", Kind: relation.KindInt},
		relation.Attr{Name: "y", Kind: relation.KindInt}))
	for i := int64(0); i < 20; i++ {
		b2.MustAppend(relation.Tuple{relation.Int(i % 5), relation.Int(i)})
	}
	e.LoadTable(b2)
	return remotedb.NewInProcClient(e, remotedb.DefaultCosts())
}

func TestLooseCouplingAlwaysRemote(t *testing.T) {
	ds := NewLooseCoupling(fixtureClient(t))
	s := ds.BeginSession(nil)
	defer s.End()
	for i := 0; i < 3; i++ {
		st, err := s.QueryText("q(Y) :- b2(1, Y)")
		if err != nil {
			t.Fatal(err)
		}
		st.Drain("out")
	}
	if got := ds.Stats().RemoteRequests; got != 3 {
		t.Fatalf("loose coupling remote requests = %d, want 3", got)
	}
}

func TestExactMatchCacheReuse(t *testing.T) {
	ds := NewExactMatchCache(fixtureClient(t), 0)
	s := ds.BeginSession(nil)
	defer s.End()
	for i := 0; i < 3; i++ {
		st, err := s.QueryText("q(Y) :- b2(1, Y)")
		if err != nil {
			t.Fatal(err)
		}
		st.Drain("out")
	}
	// A specialization is NOT reused (no subsumption).
	st, err := s.QueryText("q(Y) :- b2(1, Y) & Y > 3")
	if err != nil {
		t.Fatal(err)
	}
	st.Drain("out")
	stats := ds.Stats()
	if stats.RemoteRequests != 2 {
		t.Fatalf("exact-match remote requests = %d, want 2", stats.RemoteRequests)
	}
	if stats.ExactHits != 2 {
		t.Fatalf("exact hits = %d, want 2", stats.ExactHits)
	}
}

func TestSingleRelationCache(t *testing.T) {
	ds := NewSingleRelationCache(fixtureClient(t), 0)
	s := ds.BeginSession(nil)
	defer s.End()
	// First query loads all of b2 (one remote request), then answers
	// locally; subsequent selections are all local.
	queries := []string{
		"q(Y) :- b2(1, Y)",
		"q(Y) :- b2(2, Y)",
		"q(X, Y) :- b2(X, Y) & Y < 10",
	}
	var results []*relation.Relation
	for _, q := range queries {
		st, err := s.QueryText(q)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, st.Drain("out"))
	}
	if got := ds.Stats().RemoteRequests; got != 1 {
		t.Fatalf("single-relation remote requests = %d, want 1 (the full load)", got)
	}
	// Correctness vs direct evaluation.
	e := remotedb.NewEngine()
	b2full, _, err := fixtureClient(t).(*remotedb.InProcClient).Engine().ExecuteSQL("SELECT * FROM b2")
	if err != nil {
		t.Fatal(err)
	}
	_ = e
	b2full.Name = "b2"
	src := caql.MapSource{"b2": b2full}
	for i, q := range queries {
		want, err := caql.Eval(caql.MustParse(q), src)
		if err != nil {
			t.Fatal(err)
		}
		if !results[i].EqualAsSet(want) {
			t.Fatalf("query %q wrong:\ngot %v\nwant %v", q, results[i], want)
		}
	}
	if _, err := ds.RelationSchema("b2", 2); err != nil {
		t.Fatal(err)
	}
	if st, err := ds.RelationStats("b2"); err != nil || st.Rows != 20 {
		t.Fatalf("stats: %+v %v", st, err)
	}
}

func TestSingleRelationCacheParseError(t *testing.T) {
	ds := NewSingleRelationCache(fixtureClient(t), 0)
	s := ds.BeginSession(nil)
	defer s.End()
	if _, err := s.QueryText("q(Y :-"); err == nil {
		t.Fatal("parse error expected")
	}
	if _, err := s.QueryText("q(Y) :- nosuch(Y)"); err == nil {
		t.Fatal("unknown relation error expected")
	}
}
