// Package logic implements the function-free first-order logic substrate of
// BrAID's inference engine: terms, atoms, substitutions, unification, Horn
// clauses, knowledge bases, and the limited second-order assertions (SOAs)
// of Section 4 of the paper (mutual exclusion, functional dependency, and
// recursive-structure assertions).
//
// The language is function-free (Datalog with typed constants), matching the
// paper's IDI lineage: "a function free Horn clause query language".
package logic

import (
	"strings"

	"repro/internal/relation"
)

// Term is either a variable or a constant. Function symbols are deliberately
// absent (function-free Horn clauses).
type Term struct {
	// Var is the variable name; empty for constants.
	Var string
	// Const is the constant value; meaningful only when Var is empty.
	Const relation.Value
}

// V returns a variable term.
func V(name string) Term { return Term{Var: name} }

// C returns a constant term.
func C(v relation.Value) Term { return Term{Const: v} }

// CInt returns an integer constant term.
func CInt(i int64) Term { return C(relation.Int(i)) }

// CStr returns a string constant term.
func CStr(s string) Term { return C(relation.Str(s)) }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

// IsConst reports whether the term is a constant.
func (t Term) IsConst() bool { return t.Var == "" }

// Equal reports structural equality.
func (t Term) Equal(o Term) bool {
	if t.IsVar() != o.IsVar() {
		return false
	}
	if t.IsVar() {
		return t.Var == o.Var
	}
	return t.Const.Equal(o.Const)
}

// String renders the term: variables by name, constants in literal syntax
// (identifier-like strings render bare, Prolog-style).
func (t Term) String() string {
	if t.IsVar() {
		return t.Var
	}
	if t.Const.Kind() == relation.KindString && isPlainAtom(t.Const.AsString()) {
		return t.Const.AsString()
	}
	return t.Const.String()
}

// isPlainAtom reports whether s can be written bare as a Prolog-style atom:
// lowercase letter followed by letters, digits, underscores.
func isPlainAtom(s string) bool {
	if s == "" {
		return false
	}
	c := s[0]
	if c < 'a' || c > 'z' {
		return false
	}
	for i := 1; i < len(s); i++ {
		c := s[i]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_') {
			return false
		}
	}
	// Avoid collision with reserved words.
	switch s {
	case "true", "false", "null":
		return false
	}
	return true
}

// IsVarName reports whether an identifier names a variable in the surface
// syntax: it starts with an uppercase letter or underscore.
func IsVarName(s string) bool {
	if s == "" {
		return false
	}
	return s[0] == '_' || (s[0] >= 'A' && s[0] <= 'Z')
}

// termsString renders a comma-separated argument list.
func termsString(args []Term) string {
	var b strings.Builder
	for i, a := range args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	return b.String()
}
