package logic

import (
	"fmt"
	"strings"
)

// Clause is a Horn clause: Head :- Body. A fact has an empty body.
type Clause struct {
	Head Atom
	Body []Atom
}

// IsFact reports whether the clause has an empty body.
func (c Clause) IsFact() bool { return len(c.Body) == 0 }

// Vars returns the set of variables appearing anywhere in the clause.
func (c Clause) Vars() map[string]bool {
	s := c.Head.VarSet()
	for _, a := range c.Body {
		for _, t := range a.Args {
			if t.IsVar() {
				s[t.Var] = true
			}
		}
	}
	return s
}

// IsRangeRestricted reports whether every head variable occurs in some
// non-comparison body atom (the Datalog safety condition); facts must be
// ground.
func (c Clause) IsRangeRestricted() bool {
	bodyVars := make(map[string]bool)
	for _, a := range c.Body {
		if a.IsComparison() {
			continue
		}
		for _, t := range a.Args {
			if t.IsVar() {
				bodyVars[t.Var] = true
			}
		}
	}
	for _, t := range c.Head.Args {
		if t.IsVar() && !bodyVars[t.Var] {
			return false
		}
	}
	// Comparison atoms must also be covered.
	for _, a := range c.Body {
		if !a.IsComparison() {
			continue
		}
		for _, t := range a.Args {
			if t.IsVar() && !bodyVars[t.Var] {
				return false
			}
		}
	}
	return true
}

// String renders the clause in surface syntax, with a trailing period.
func (c Clause) String() string {
	if c.IsFact() {
		return c.Head.String() + "."
	}
	var b strings.Builder
	b.WriteString(c.Head.String())
	b.WriteString(" :- ")
	b.WriteString(AtomsString(c.Body))
	b.WriteByte('.')
	return b.String()
}

// PredRef identifies a predicate by name and arity.
type PredRef struct {
	Name  string
	Arity int
}

// String returns "name/arity".
func (p PredRef) String() string { return fmt.Sprintf("%s/%d", p.Name, p.Arity) }

// Ref returns the PredRef of an atom.
func (a Atom) Ref() PredRef { return PredRef{Name: a.Pred, Arity: len(a.Args)} }
