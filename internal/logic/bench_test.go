package logic

import "testing"

func BenchmarkUnify(b *testing.B) {
	x := A("p", V("X"), CInt(1), V("Y"), CStr("a"), V("Z"))
	y := A("p", CStr("q"), V("A"), CInt(2), V("B"), V("C"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Unify(x, y, NewSubst())
	}
}

func BenchmarkRenameApart(b *testing.B) {
	c, err := ParseClause("p(X, Y) :- q(X, Z), r(Z, W), s(W, Y), X != Y.")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RenameApart(c)
	}
}

func BenchmarkParseProgram(b *testing.B) {
	src := `
		:- base(b1/2).
		:- base(b2/2).
		:- base(b3/3).
		k1(X, Y) :- b1(c1, Y), k2(X, Y).
		k2(X, Y) :- b2(X, Z), b3(Z, c2, Y).
		k2(X, Y) :- b3(X, c3, Z), b1(Z, Y).
	`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseProgram(src); err != nil {
			b.Fatal(err)
		}
	}
}
