package logic

import "sync/atomic"

// Unification for function-free terms. Without function symbols there is no
// occurs-check problem: a variable can only be bound to a constant or another
// variable, so unification is a union-find-style walk.

// UnifyTerms extends s so that a and b become equal, returning the extended
// substitution and true, or nil and false if they cannot be unified. s is not
// mutated.
func UnifyTerms(a, b Term, s Subst) (Subst, bool) {
	a, b = s.Walk(a), s.Walk(b)
	switch {
	case a.IsVar() && b.IsVar():
		if a.Var == b.Var {
			return s, true
		}
		return s.Bind(a.Var, b), true
	case a.IsVar():
		return s.Bind(a.Var, b), true
	case b.IsVar():
		return s.Bind(b.Var, a), true
	default:
		if a.Const.Equal(b.Const) {
			return s, true
		}
		return nil, false
	}
}

// Unify unifies two atoms under s. The atoms must have the same predicate and
// arity to unify.
func Unify(a, b Atom, s Subst) (Subst, bool) {
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return nil, false
	}
	out := s
	for i := range a.Args {
		var ok bool
		out, ok = UnifyTerms(a.Args[i], b.Args[i], out)
		if !ok {
			return nil, false
		}
	}
	return out, true
}

// MatchOneWay extends the raw mapping m so that pattern maps onto target,
// binding only variables of the pattern. Constants in the pattern must match
// the target exactly; target variables never get bound. This is the
// "unification in a single direction" of the paper's subsumption step
// (Section 5.3.2): a constant in the query matches the same constant or a
// variable in the cache element, but a query variable matches only a
// variable.
//
// The result is a plain mapping, deliberately not a Subst: pattern and
// target may share variable names (a cache element and a query often both
// use X), and walking bindings across the two namespaces would conflate
// them. Apply the mapping positionally, without chaining.
func MatchOneWay(pattern, target Atom, m map[string]Term) (map[string]Term, bool) {
	if pattern.Pred != target.Pred || len(pattern.Args) != len(target.Args) {
		return nil, false
	}
	out := make(map[string]Term, len(m)+len(pattern.Args))
	for k, v := range m {
		out[k] = v
	}
	for i := range pattern.Args {
		p := pattern.Args[i]
		tg := target.Args[i]
		switch {
		case p.IsVar():
			if prev, ok := out[p.Var]; ok {
				if !prev.Equal(tg) {
					return nil, false // pattern equates terms the target does not
				}
				continue
			}
			out[p.Var] = tg
		case tg.IsConst():
			if !p.Const.Equal(tg.Const) {
				return nil, false
			}
		default:
			// pattern has a constant where target has a variable: the
			// pattern (cache element) is more restricted.
			return nil, false
		}
	}
	return out, true
}

var renameCounter atomic.Int64

// RenameApart returns a copy of the clause with all its variables renamed to
// fresh names (standardize-apart), so that resolution never confuses
// variables from different rule applications.
func RenameApart(c Clause) Clause {
	suffix := int(renameCounter.Add(1))
	mapping := make(map[string]string)
	ren := func(t Term) Term {
		if !t.IsVar() {
			return t
		}
		n, ok := mapping[t.Var]
		if !ok {
			n = freshName(t.Var, suffix)
			mapping[t.Var] = n
		}
		return V(n)
	}
	renAtom := func(a Atom) Atom {
		args := make([]Term, len(a.Args))
		for i, t := range a.Args {
			args[i] = ren(t)
		}
		return Atom{Pred: a.Pred, Args: args}
	}
	out := Clause{Head: renAtom(c.Head)}
	out.Body = make([]Atom, len(c.Body))
	for i, a := range c.Body {
		out.Body[i] = renAtom(a)
	}
	return out
}

func freshName(base string, n int) string {
	// Strip a previous rename suffix so names do not grow unboundedly.
	for i := len(base) - 1; i > 0; i-- {
		if base[i] == '#' {
			base = base[:i]
			break
		}
	}
	return base + "#" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
