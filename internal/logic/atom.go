package logic

import (
	"fmt"
	"strings"

	"repro/internal/relation"
)

// Atom is a predicate applied to terms: p(t1, ..., tn). Comparison atoms use
// the operator symbol as the predicate name (e.g. "<"); IsComparison
// distinguishes them from ordinary relational atoms.
type Atom struct {
	Pred string
	Args []Term
}

// A constructs an atom.
func A(pred string, args ...Term) Atom { return Atom{Pred: pred, Args: args} }

// Cmp constructs a comparison atom l op r.
func Cmp(l Term, op relation.CmpOp, r Term) Atom {
	return Atom{Pred: op.String(), Args: []Term{l, r}}
}

// IsComparison reports whether the atom is a built-in comparison.
func (a Atom) IsComparison() bool {
	_, err := relation.ParseCmpOp(a.Pred)
	return err == nil && len(a.Args) == 2
}

// CmpOp returns the comparison operator of a comparison atom.
func (a Atom) CmpOp() relation.CmpOp {
	op, err := relation.ParseCmpOp(a.Pred)
	if err != nil {
		panic(fmt.Sprintf("logic: CmpOp on non-comparison atom %s", a))
	}
	return op
}

// Arity returns the number of arguments.
func (a Atom) Arity() int { return len(a.Args) }

// Key returns the predicate indicator "pred/arity".
func (a Atom) Key() string { return fmt.Sprintf("%s/%d", a.Pred, len(a.Args)) }

// Equal reports structural equality.
func (a Atom) Equal(o Atom) bool {
	if a.Pred != o.Pred || len(a.Args) != len(o.Args) {
		return false
	}
	for i := range a.Args {
		if !a.Args[i].Equal(o.Args[i]) {
			return false
		}
	}
	return true
}

// IsGround reports whether the atom contains no variables.
func (a Atom) IsGround() bool {
	for _, t := range a.Args {
		if t.IsVar() {
			return false
		}
	}
	return true
}

// Vars appends the names of variables occurring in the atom to dst (in
// occurrence order, with duplicates) and returns it.
func (a Atom) Vars(dst []string) []string {
	for _, t := range a.Args {
		if t.IsVar() {
			dst = append(dst, t.Var)
		}
	}
	return dst
}

// VarSet returns the set of variable names occurring in the atom.
func (a Atom) VarSet() map[string]bool {
	s := make(map[string]bool)
	for _, t := range a.Args {
		if t.IsVar() {
			s[t.Var] = true
		}
	}
	return s
}

// String renders the atom; comparison atoms render infix.
func (a Atom) String() string {
	if a.IsComparison() {
		return fmt.Sprintf("%s %s %s", a.Args[0], a.Pred, a.Args[1])
	}
	if len(a.Args) == 0 {
		return a.Pred
	}
	return fmt.Sprintf("%s(%s)", a.Pred, termsString(a.Args))
}

// AtomsString renders a conjunction of atoms separated by commas.
func AtomsString(atoms []Atom) string {
	var b strings.Builder
	for i, a := range atoms {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	return b.String()
}

// VarsOf returns the set of variables over a list of atoms.
func VarsOf(atoms []Atom) map[string]bool {
	s := make(map[string]bool)
	for _, a := range atoms {
		for _, t := range a.Args {
			if t.IsVar() {
				s[t.Var] = true
			}
		}
	}
	return s
}
