package logic

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/relation"
)

func TestTermBasics(t *testing.T) {
	if !V("X").IsVar() || V("X").IsConst() {
		t.Fatal("var classification broken")
	}
	if !CInt(3).IsConst() || CInt(3).IsVar() {
		t.Fatal("const classification broken")
	}
	if !V("X").Equal(V("X")) || V("X").Equal(V("Y")) || V("X").Equal(CStr("x")) {
		t.Fatal("term equality broken")
	}
	if !CInt(3).Equal(C(relation.Float(3))) {
		t.Fatal("numeric const equality should be cross-kind")
	}
}

func TestTermString(t *testing.T) {
	cases := map[string]Term{
		"X":      V("X"),
		"tom":    CStr("tom"),
		`"Tom"`:  CStr("Tom"), // uppercase needs quoting
		`"a b"`:  CStr("a b"),
		"42":     CInt(42),
		`"true"`: CStr("true"), // reserved word needs quoting
	}
	for want, term := range cases {
		if got := term.String(); got != want {
			t.Errorf("String(%#v) = %q, want %q", term, got, want)
		}
	}
}

func TestAtomBasics(t *testing.T) {
	a := A("p", V("X"), CInt(1))
	if a.Key() != "p/2" || a.Arity() != 2 {
		t.Fatal("atom key/arity broken")
	}
	if a.IsGround() {
		t.Fatal("atom with var is not ground")
	}
	if !A("p", CInt(1)).IsGround() {
		t.Fatal("ground atom misclassified")
	}
	c := Cmp(V("X"), relation.OpLt, CInt(5))
	if !c.IsComparison() || c.CmpOp() != relation.OpLt {
		t.Fatal("comparison atom broken")
	}
	if a.IsComparison() {
		t.Fatal("ordinary atom misclassified as comparison")
	}
	if c.String() != "X < 5" {
		t.Errorf("comparison string = %q", c.String())
	}
	if a.String() != "p(X, 1)" {
		t.Errorf("atom string = %q", a.String())
	}
}

func TestSubstWalkApply(t *testing.T) {
	s := NewSubst()
	s.BindInPlace("X", V("Y"))
	s.BindInPlace("Y", CInt(7))
	if got := s.Walk(V("X")); !got.Equal(CInt(7)) {
		t.Fatalf("walk chain = %v", got)
	}
	a := s.ApplyAtom(A("p", V("X"), V("Z")))
	if !a.Args[0].Equal(CInt(7)) || !a.Args[1].Equal(V("Z")) {
		t.Fatalf("apply = %v", a)
	}
	r := s.Restrict([]string{"X"})
	if len(r) != 1 || !r.Walk(V("X")).Equal(CInt(7)) {
		t.Fatalf("restrict = %v", r)
	}
}

func TestUnifyBasics(t *testing.T) {
	s, ok := Unify(A("p", V("X"), CInt(1)), A("p", CStr("a"), V("Y")), NewSubst())
	if !ok {
		t.Fatal("unify failed")
	}
	if !s.Walk(V("X")).Equal(CStr("a")) || !s.Walk(V("Y")).Equal(CInt(1)) {
		t.Fatalf("bindings = %v", s)
	}
	if _, ok := Unify(A("p", CInt(1)), A("p", CInt(2)), NewSubst()); ok {
		t.Fatal("conflicting constants should not unify")
	}
	if _, ok := Unify(A("p", CInt(1)), A("q", CInt(1)), NewSubst()); ok {
		t.Fatal("different predicates should not unify")
	}
	if _, ok := Unify(A("p", CInt(1)), A("p", CInt(1), CInt(2)), NewSubst()); ok {
		t.Fatal("different arities should not unify")
	}
	// Shared variable consistency.
	if _, ok := Unify(A("p", V("X"), V("X")), A("p", CInt(1), CInt(2)), NewSubst()); ok {
		t.Fatal("X cannot be both 1 and 2")
	}
	s, ok = Unify(A("p", V("X"), V("X")), A("p", CInt(1), V("Z")), NewSubst())
	if !ok || !s.Walk(V("Z")).Equal(CInt(1)) {
		t.Fatalf("shared var unify: %v ok=%v", s, ok)
	}
}

func randomAtomL(r *rand.Rand, pred string, arity int) Atom {
	args := make([]Term, arity)
	for i := range args {
		switch r.Intn(3) {
		case 0:
			args[i] = V(string(rune('X' + r.Intn(3))))
		case 1:
			args[i] = CInt(int64(r.Intn(3)))
		default:
			args[i] = CStr(string(rune('a' + r.Intn(3))))
		}
	}
	return A(pred, args...)
}

// Property: unification is symmetric (up to success), and the unifier makes
// the atoms equal.
func TestUnifyProperties(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 3000; i++ {
		a := randomAtomL(r, "p", 3)
		b := randomAtomL(r, "p", 3)
		s1, ok1 := Unify(a, b, NewSubst())
		_, ok2 := Unify(b, a, NewSubst())
		if ok1 != ok2 {
			t.Fatalf("unify asymmetric: %v / %v", a, b)
		}
		if ok1 {
			if !s1.ApplyAtom(a).Equal(s1.ApplyAtom(b)) {
				t.Fatalf("unifier does not equate: %v %v under %v", a, b, s1)
			}
		}
	}
}

// applyMapping rewrites a pattern atom through a raw one-way mapping,
// positionally and without chaining (target variables stay inert).
func applyMapping(a Atom, m map[string]Term) Atom {
	args := make([]Term, len(a.Args))
	for i, t := range a.Args {
		if t.IsVar() {
			if mt, ok := m[t.Var]; ok {
				args[i] = mt
				continue
			}
		}
		args[i] = t
	}
	return Atom{Pred: a.Pred, Args: args}
}

// Property: MatchOneWay succeeds only when pattern generalizes target, and
// applying the raw mapping to the pattern yields the target exactly.
func TestMatchOneWayProperties(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 3000; i++ {
		pat := randomAtomL(r, "p", 3)
		tgt := randomAtomL(r, "p", 3)
		m, ok := MatchOneWay(pat, tgt, nil)
		if ok {
			got := applyMapping(pat, m)
			if !got.Equal(tgt) {
				t.Fatalf("one-way match must map pattern onto target: %v -> %v (got %v)", pat, tgt, got)
			}
		} else if _, uok := Unify(pat, tgt, NewSubst()); uok {
			// If even unification fails there is nothing to check; if
			// unification succeeds but one-way match failed, the pattern must
			// have a constant where the target has a variable, or a repeated
			// pattern variable with conflicting targets.
			hasReason := false
			for j := range pat.Args {
				if pat.Args[j].IsConst() && tgt.Args[j].IsVar() {
					hasReason = true
				}
			}
			if !hasReason {
				// Repeated-variable conflicts also justify failure.
				seen := map[string]Term{}
				for j := range pat.Args {
					if pat.Args[j].IsVar() {
						if prev, dup := seen[pat.Args[j].Var]; dup && !prev.Equal(tgt.Args[j]) {
							hasReason = true
						}
						seen[pat.Args[j].Var] = tgt.Args[j]
					}
				}
			}
			if !hasReason {
				t.Fatalf("one-way match failed without reason: %v vs %v", pat, tgt)
			}
		}
	}
}

func TestMatchOneWayPaperExample(t *testing.T) {
	// Section 5.3.2: Q_c1 = b21(X,2); E1 = b21(X,Y) & ...; E2 = b21(3,Y);
	// E3 = b21(X,2) & ... — E1 and E3's b21 atoms subsume Q_c1, E2's does not.
	q := A("b21", V("X"), CInt(2))
	e1 := A("b21", V("X1"), V("Y1"))
	e2 := A("b21", CInt(3), V("Y2"))
	e3 := A("b21", V("X3"), CInt(2))
	if _, ok := MatchOneWay(e1, q, nil); !ok {
		t.Error("E1 atom should match Q_c1")
	}
	if _, ok := MatchOneWay(e2, q, nil); ok {
		t.Error("E2 atom should not match Q_c1 (constant 3 vs variable X)")
	}
	if _, ok := MatchOneWay(e3, q, nil); !ok {
		t.Error("E3 atom should match Q_c1")
	}
}

func TestRenameApart(t *testing.T) {
	c, err := ParseClause("p(X, Y) :- q(X, Z), r(Z, Y).")
	if err != nil {
		t.Fatal(err)
	}
	r1 := RenameApart(c)
	r2 := RenameApart(c)
	v1 := r1.Vars()
	v2 := r2.Vars()
	for v := range v1 {
		if v2[v] {
			t.Fatalf("renamed clauses share variable %s", v)
		}
		if c.Vars()[v] {
			t.Fatalf("renamed clause shares variable %s with original", v)
		}
	}
	// Structure is preserved.
	if r1.Head.Pred != "p" || len(r1.Body) != 2 {
		t.Fatal("rename changed structure")
	}
	// Shared variables remain shared.
	if r1.Body[0].Args[1].Var != r1.Body[1].Args[0].Var {
		t.Fatal("rename broke variable sharing")
	}
	// Repeated renaming does not grow names unboundedly.
	rn := c
	for i := 0; i < 50; i++ {
		rn = RenameApart(rn)
	}
	for v := range rn.Vars() {
		if len(v) > 25 {
			t.Fatalf("renamed variable name grew: %q", v)
		}
	}
}

func TestClauseRangeRestriction(t *testing.T) {
	ok, err := ParseClause("p(X) :- q(X).")
	if err != nil || !ok.IsRangeRestricted() {
		t.Fatal("safe clause misjudged")
	}
	bad := Clause{Head: A("p", V("X"))}
	if bad.IsRangeRestricted() {
		t.Fatal("non-ground fact should not be range-restricted")
	}
	cmp := Clause{Head: A("p", V("X")), Body: []Atom{A("q", V("X")), Cmp(V("Y"), relation.OpLt, CInt(3))}}
	if cmp.IsRangeRestricted() {
		t.Fatal("comparison with free var should not be range-restricted")
	}
}

func TestKBBasics(t *testing.T) {
	kb, err := ParseProgram(`
		% the paper's Example 1
		:- base(b1/2).
		:- base(b2/2).
		:- base(b3/3).
		k1(X, Y) :- b1(c1, Y), k2(X, Y).
		k2(X, Y) :- b2(X, Z), b3(Z, c2, Y).
		k2(X, Y) :- b3(X, c3, Z), b1(Z, Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if kb.NumClauses() != 3 {
		t.Fatalf("clauses = %d", kb.NumClauses())
	}
	k2 := PredRef{"k2", 2}
	if got := len(kb.Rules(k2)); got != 2 {
		t.Fatalf("k2 rules = %d", got)
	}
	if !kb.IsBase(PredRef{"b1", 2}) || kb.IsBase(k2) {
		t.Fatal("base classification broken")
	}
	// Undeclared predicate with no rules is treated as base.
	if !kb.IsBase(PredRef{"unknown", 1}) {
		t.Fatal("ruleless predicate should be base")
	}
	if kb.IsRecursive(k2) {
		t.Fatal("k2 is not recursive")
	}
}

func TestKBRecursion(t *testing.T) {
	kb, err := ParseProgram(`
		:- base(parent/2).
		anc(X, Y) :- parent(X, Y).
		anc(X, Y) :- parent(X, Z), anc(Z, Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if !kb.IsRecursive(PredRef{"anc", 2}) {
		t.Fatal("anc should be recursive")
	}
	// Mutual recursion.
	kb2, err := ParseProgram(`
		:- base(e/2).
		odd(X, Y) :- e(X, Z), even(Z, Y).
		even(X, X) :- e(X, X).
		even(X, Y) :- e(X, Z), odd(Z, Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if !kb2.IsRecursive(PredRef{"odd", 2}) || !kb2.IsRecursive(PredRef{"even", 2}) {
		t.Fatal("mutual recursion not detected")
	}
}

func TestKBSOAs(t *testing.T) {
	kb, err := ParseProgram(`
		:- base(b/2).
		:- mutex(male/1, female/1).
		:- fd(b/2, [1] -> [2]).
		:- recursive(anc/2).
		p(X) :- b(X, Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	m, f := PredRef{"male", 1}, PredRef{"female", 1}
	if !kb.MutuallyExclusive(m, f) || !kb.MutuallyExclusive(f, m) {
		t.Fatal("mutex symmetric lookup broken")
	}
	if kb.MutuallyExclusive(m, PredRef{"b", 2}) {
		t.Fatal("unrelated preds not mutex")
	}
	fds := kb.FDs(PredRef{"b", 2})
	if len(fds) != 1 || fds[0].From[0] != 0 || fds[0].To[0] != 1 {
		t.Fatalf("fd = %+v", fds)
	}
	if !fds[0].Determines(map[int]bool{0: true}, 1) {
		t.Fatal("FD Determines broken")
	}
	if fds[0].Determines(map[int]bool{}, 1) {
		t.Fatal("FD should require bound From")
	}
	if !kb.DeclaredRecursive(PredRef{"anc", 2}) {
		t.Fatal("recursive SOA lost")
	}
}

func TestKBErrors(t *testing.T) {
	if _, err := ParseProgram("p(X)."); err == nil {
		t.Error("non-ground fact should be rejected")
	}
	if _, err := ParseProgram(":- base(p/1). p(a)."); err == nil {
		t.Error("rule for base relation should be rejected")
	}
	if _, err := ParseProgram(":- unknown(p/1)."); err == nil {
		t.Error("unknown directive should error")
	}
	if _, err := ParseProgram("p(X :- q(X)."); err == nil {
		t.Error("syntax error should be reported")
	}
	if _, err := ParseProgram(`p(a) :- "unclosed.`); err == nil {
		t.Error("unterminated string should be reported")
	}
}

func TestParseClauseRoundTrip(t *testing.T) {
	srcs := []string{
		"p(X, Y) :- q(X, Z), r(Z, Y).",
		"likes(tom, wine).",
		`path(X, Y) :- edge(X, Y), X != Y.`,
		"bound(X) :- val(X), X >= 10, X < 20.",
		`name(X, "Mr. X") :- person(X).`,
		"zero.",
	}
	for _, src := range srcs {
		c, err := ParseClause(src)
		if err != nil {
			t.Fatalf("ParseClause(%q): %v", src, err)
		}
		re, err := ParseClause(c.String())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", c.String(), src, err)
		}
		if re.String() != c.String() {
			t.Errorf("round trip: %q -> %q", c.String(), re.String())
		}
	}
}

func TestParseAtomQueries(t *testing.T) {
	a, err := ParseAtom("k1(X, Y)?")
	if err != nil || a.Pred != "k1" || len(a.Args) != 2 {
		t.Fatalf("ParseAtom: %v %v", a, err)
	}
	if _, err := ParseAtom("k1(X,"); err == nil {
		t.Error("bad atom should error")
	}
	if _, err := ParseAtom("k1(X) extra"); err == nil {
		t.Error("trailing input should error")
	}
}

func TestKBString(t *testing.T) {
	src := `
		:- base(b/2).
		p(X) :- b(X, Y), Y > 3.
		:- mutex(m/1, f/1).
		:- fd(b/2, [1] -> [2]).
	`
	kb, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	out := kb.String()
	// The dump must itself re-parse (modulo base declarations, which String
	// does not emit because base-ness is implied by having no rules).
	if !strings.Contains(out, "p(X) :- b(X, Y), Y > 3.") {
		t.Errorf("missing rule in dump:\n%s", out)
	}
	if !strings.Contains(out, ":- mutex(m/1, f/1).") || !strings.Contains(out, "fd(b/2, [1] -> [2])") {
		t.Errorf("missing SOAs in dump:\n%s", out)
	}
}

func TestSubstEqualAndString(t *testing.T) {
	a := NewSubst()
	a.BindInPlace("X", CInt(1))
	a.BindInPlace("Y", V("Z"))
	b := NewSubst()
	b.BindInPlace("Y", V("Z"))
	b.BindInPlace("X", CInt(1))
	if !a.Equal(b) {
		t.Fatal("order-insensitive equality broken")
	}
	if a.String() != "{X=1, Y=Z}" {
		t.Errorf("subst string = %q", a.String())
	}
	c := a.Clone()
	c.BindInPlace("W", CInt(2))
	if len(a) != 2 {
		t.Fatal("clone aliases original")
	}
}
