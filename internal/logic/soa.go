package logic

import (
	"fmt"
	"strings"
)

// Second-order assertions (SOAs), Section 4 of the paper: in addition to
// first-order rules, the knowledge base contains limited second-order
// knowledge used for problem-graph culling and constraint.

// MutexSOA asserts that predicates P and Q are mutually exclusive: no
// argument tuple satisfies both. The shaper prunes OR branches guarded by a
// predicate mutually exclusive with one already established, and the path
// expression creator emits selection terms (at most one alternative fires).
type MutexSOA struct {
	P, Q PredRef
}

// String renders the SOA as a directive body.
func (m MutexSOA) String() string { return fmt.Sprintf("mutex(%s, %s)", m.P, m.Q) }

// FDSOA asserts a functional dependency on a predicate: the argument
// positions From (0-based) functionally determine the positions To. The
// shaper uses FDs to derive producer/consumer relationships and tighter
// cardinality estimates (a bound From-set yields at most one To-set value).
type FDSOA struct {
	Pred PredRef
	From []int
	To   []int
}

// String renders the SOA as "fd(pred/arity, [i,...] -> [j,...])" with
// 1-based positions (surface syntax).
func (f FDSOA) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fd(%s, [", f.Pred)
	for i, c := range f.From {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", c+1)
	}
	b.WriteString("] -> [")
	for i, c := range f.To {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", c+1)
	}
	b.WriteString("])")
	return b.String()
}

// Determines reports whether binding the given set of argument positions
// determines position target under this FD.
func (f FDSOA) Determines(bound map[int]bool, target int) bool {
	for _, c := range f.From {
		if !bound[c] {
			return false
		}
	}
	for _, c := range f.To {
		if c == target {
			return true
		}
	}
	return false
}
