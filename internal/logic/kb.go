package logic

import (
	"fmt"
	"sort"
	"strings"
)

// KB is a knowledge base: Horn clause rules indexed by head predicate, plus
// the second-order assertions of Section 4 (mutual exclusion, functional
// dependencies, recursive-structure declarations) and declarations of which
// predicates are base (database) relations.
type KB struct {
	rules   map[PredRef][]Clause
	order   []PredRef // rule insertion order, for deterministic iteration
	base    map[PredRef]bool
	mutex   []MutexSOA
	fds     []FDSOA
	recur   map[PredRef]bool
	clauses int
}

// NewKB returns an empty knowledge base.
func NewKB() *KB {
	return &KB{
		rules: make(map[PredRef][]Clause),
		base:  make(map[PredRef]bool),
		recur: make(map[PredRef]bool),
	}
}

// AddClause adds a rule or fact. It rejects clauses that are not
// range-restricted and clauses whose head is a comparison or a declared base
// relation.
func (kb *KB) AddClause(c Clause) error {
	if c.Head.IsComparison() {
		return fmt.Errorf("logic: clause head %s is a built-in comparison", c.Head)
	}
	ref := c.Head.Ref()
	if kb.base[ref] {
		return fmt.Errorf("logic: clause head %s is a declared base relation", ref)
	}
	if !c.IsRangeRestricted() {
		return fmt.Errorf("logic: clause %s is not range-restricted", c)
	}
	if _, ok := kb.rules[ref]; !ok {
		kb.order = append(kb.order, ref)
	}
	kb.rules[ref] = append(kb.rules[ref], c)
	kb.clauses++
	return nil
}

// DeclareBase marks a predicate as a base (database) relation: it is
// evaluated against the DBMS/cache, never expanded through rules.
func (kb *KB) DeclareBase(ref PredRef) error {
	if len(kb.rules[ref]) > 0 {
		return fmt.Errorf("logic: %s already has rules; cannot declare base", ref)
	}
	kb.base[ref] = true
	return nil
}

// IsBase reports whether the predicate is a declared base relation. A
// predicate with no rules and no declaration is also treated as base,
// matching the paper's setting where the leaves of the problem graph are
// database or built-in relations.
func (kb *KB) IsBase(ref PredRef) bool {
	if kb.base[ref] {
		return true
	}
	_, hasRules := kb.rules[ref]
	return !hasRules
}

// Rules returns the clauses whose head predicate matches ref, in program
// order.
func (kb *KB) Rules(ref PredRef) []Clause { return kb.rules[ref] }

// Preds returns all predicates that have rules, in first-definition order.
func (kb *KB) Preds() []PredRef { return append([]PredRef(nil), kb.order...) }

// BasePreds returns the declared base predicates, sorted.
func (kb *KB) BasePreds() []PredRef {
	out := make([]PredRef, 0, len(kb.base))
	for r := range kb.base {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Arity < out[j].Arity
	})
	return out
}

// NumClauses returns the number of clauses in the KB.
func (kb *KB) NumClauses() int { return kb.clauses }

// AddMutex records a mutual-exclusion SOA: p and q cannot both hold of the
// same arguments. The problem graph shaper uses these to cull OR branches.
func (kb *KB) AddMutex(p, q PredRef) { kb.mutex = append(kb.mutex, MutexSOA{P: p, Q: q}) }

// Mutexes returns the recorded mutual-exclusion SOAs.
func (kb *KB) Mutexes() []MutexSOA { return kb.mutex }

// MutuallyExclusive reports whether p and q are declared mutually exclusive.
func (kb *KB) MutuallyExclusive(p, q PredRef) bool {
	for _, m := range kb.mutex {
		if (m.P == p && m.Q == q) || (m.P == q && m.Q == p) {
			return true
		}
	}
	return false
}

// AddFD records a functional-dependency SOA on a predicate: the attribute
// positions From (0-based) determine the positions To.
func (kb *KB) AddFD(fd FDSOA) { kb.fds = append(kb.fds, fd) }

// FDs returns the functional dependencies declared for a predicate.
func (kb *KB) FDs(ref PredRef) []FDSOA {
	var out []FDSOA
	for _, fd := range kb.fds {
		if fd.Pred == ref {
			out = append(out, fd)
		}
	}
	return out
}

// DeclareRecursive records a recursive-structure SOA (cf. [OHAR87]): the
// predicate is known to be a recursive structure over other relations.
func (kb *KB) DeclareRecursive(ref PredRef) { kb.recur[ref] = true }

// DeclaredRecursive reports whether the predicate carries a
// recursive-structure SOA.
func (kb *KB) DeclaredRecursive(ref PredRef) bool { return kb.recur[ref] }

// DependsOn reports whether pred's definition (transitively) uses target.
func (kb *KB) DependsOn(pred, target PredRef) bool {
	seen := make(map[PredRef]bool)
	var walk func(p PredRef) bool
	walk = func(p PredRef) bool {
		if seen[p] {
			return false
		}
		seen[p] = true
		for _, c := range kb.rules[p] {
			for _, a := range c.Body {
				if a.IsComparison() {
					continue
				}
				r := a.Ref()
				if r == target || walk(r) {
					return true
				}
			}
		}
		return false
	}
	return walk(pred)
}

// IsRecursive reports whether the predicate is (directly or mutually)
// recursive by definition, or declared so by an SOA.
func (kb *KB) IsRecursive(ref PredRef) bool {
	return kb.recur[ref] || kb.DependsOn(ref, ref)
}

// String renders the whole KB in surface syntax.
func (kb *KB) String() string {
	var b strings.Builder
	for _, ref := range kb.order {
		for _, c := range kb.rules[ref] {
			b.WriteString(c.String())
			b.WriteByte('\n')
		}
	}
	for _, m := range kb.mutex {
		fmt.Fprintf(&b, ":- mutex(%s, %s).\n", m.P, m.Q)
	}
	for _, fd := range kb.fds {
		fmt.Fprintf(&b, ":- %s.\n", fd)
	}
	return b.String()
}
