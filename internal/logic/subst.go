package logic

import (
	"fmt"
	"sort"
	"strings"
)

// Subst is a substitution: a finite mapping from variable names to terms.
// Substitutions are persistent in spirit: Bind returns a new binding layered
// view by copying (bindings are small in SLD resolution over function-free
// programs).
type Subst map[string]Term

// NewSubst returns an empty substitution.
func NewSubst() Subst { return make(Subst) }

// Clone returns a copy of the substitution.
func (s Subst) Clone() Subst {
	out := make(Subst, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// Walk resolves a term through the substitution until it reaches a constant
// or an unbound variable. Binding chains that cycle (possible when two
// formulas share variable names, e.g. a cache element and a query both using
// X) terminate at an arbitrary variable of the cycle — all its members
// denote the same value.
func (s Subst) Walk(t Term) Term {
	for steps := 0; t.IsVar(); steps++ {
		next, ok := s[t.Var]
		if !ok || (next.IsVar() && next.Var == t.Var) || steps > len(s) {
			return t
		}
		t = next
	}
	return t
}

// Bind returns s extended with v -> t. It does not mutate s.
func (s Subst) Bind(v string, t Term) Subst {
	out := s.Clone()
	out[v] = t
	return out
}

// BindInPlace adds v -> t to s, mutating it.
func (s Subst) BindInPlace(v string, t Term) { s[v] = t }

// Apply rewrites a term, resolving variables to their bindings (transitively).
func (s Subst) Apply(t Term) Term { return s.Walk(t) }

// ApplyAtom rewrites all arguments of an atom.
func (s Subst) ApplyAtom(a Atom) Atom {
	args := make([]Term, len(a.Args))
	for i, t := range a.Args {
		args[i] = s.Walk(t)
	}
	return Atom{Pred: a.Pred, Args: args}
}

// ApplyAtoms rewrites a conjunction.
func (s Subst) ApplyAtoms(atoms []Atom) []Atom {
	out := make([]Atom, len(atoms))
	for i, a := range atoms {
		out[i] = s.ApplyAtom(a)
	}
	return out
}

// Restrict returns the substitution limited to the given variables, with
// each binding fully walked. Used to project an answer substitution onto the
// query variables.
func (s Subst) Restrict(vars []string) Subst {
	out := make(Subst, len(vars))
	for _, v := range vars {
		if _, ok := s[v]; ok {
			out[v] = s.Walk(V(v))
		}
	}
	return out
}

// Ground reports whether every binding resolves to a constant.
func (s Subst) Ground() bool {
	for v := range s {
		if s.Walk(V(v)).IsVar() {
			return false
		}
	}
	return true
}

// Equal reports whether two substitutions denote the same mapping over their
// union of domains (after walking).
func (s Subst) Equal(o Subst) bool {
	if len(s) != len(o) {
		return false
	}
	for v := range s {
		a := s.Walk(V(v))
		b, ok := o[v]
		if !ok {
			return false
		}
		if !a.Equal(o.Walk(b)) {
			return false
		}
	}
	return true
}

// String renders bindings sorted by variable name: {X=1, Y=Z}.
func (s Subst) String() string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%s", k, s.Walk(V(k)))
	}
	b.WriteByte('}')
	return b.String()
}
