package logic

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/relation"
)

// Parser for the knowledge-base surface syntax:
//
//	% rules and facts
//	k1(X, Y) :- b1(c1, Y), k2(X, Y).
//	likes(tom, wine).
//
//	% directives
//	:- base(b1/2).              declare a base (database) relation
//	:- mutex(k3/1, k4/1).       mutual-exclusion SOA
//	:- fd(emp/3, [1] -> [2]).   functional-dependency SOA (1-based positions)
//	:- recursive(anc/2).        recursive-structure SOA
//
// Variables begin with an uppercase letter or underscore; bare lowercase
// identifiers are symbolic (string) constants; numbers and quoted strings are
// typed constants. Comparison atoms are written infix: X < 5, X != Y.

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) advance()   { p.pos++ }
func (p *parser) at(text string) bool {
	t := p.cur()
	return t.kind == tokPunct && t.text == text
}

func (p *parser) expect(text string) error {
	if !p.at(text) {
		return fmt.Errorf("line %d: expected %q, found %q", p.cur().line, text, p.cur().text)
	}
	p.advance()
	return nil
}

// ParseProgram parses a whole knowledge-base source into a KB.
func ParseProgram(src string) (*KB, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	kb := NewKB()
	for p.cur().kind != tokEOF {
		if p.at(":-") {
			p.advance()
			if err := p.parseDirective(kb); err != nil {
				return nil, err
			}
			continue
		}
		c, err := p.parseClause()
		if err != nil {
			return nil, err
		}
		if err := kb.AddClause(c); err != nil {
			return nil, fmt.Errorf("line %d: %w", p.cur().line, err)
		}
	}
	return kb, nil
}

// ParseClause parses a single clause (rule or fact) from src.
func ParseClause(src string) (Clause, error) {
	toks, err := lex(src)
	if err != nil {
		return Clause{}, err
	}
	p := &parser{toks: toks}
	c, err := p.parseClause()
	if err != nil {
		return Clause{}, err
	}
	if p.cur().kind != tokEOF {
		return Clause{}, fmt.Errorf("line %d: trailing input after clause", p.cur().line)
	}
	return c, nil
}

// ParseAtom parses a single atom (e.g. an AI query) from src; a trailing
// period or question mark is permitted.
func ParseAtom(src string) (Atom, error) {
	src = strings.TrimSpace(src)
	src = strings.TrimSuffix(src, "?")
	toks, err := lex(src)
	if err != nil {
		return Atom{}, err
	}
	p := &parser{toks: toks}
	a, err := p.parseAtom()
	if err != nil {
		return Atom{}, err
	}
	if p.at(".") {
		p.advance()
	}
	if p.cur().kind != tokEOF {
		return Atom{}, fmt.Errorf("line %d: trailing input after atom", p.cur().line)
	}
	return a, nil
}

func (p *parser) parseClause() (Clause, error) {
	head, err := p.parseAtom()
	if err != nil {
		return Clause{}, err
	}
	if head.IsComparison() {
		return Clause{}, fmt.Errorf("line %d: clause head cannot be a comparison", p.cur().line)
	}
	c := Clause{Head: head}
	if p.at(":-") {
		p.advance()
		for {
			a, err := p.parseAtom()
			if err != nil {
				return Clause{}, err
			}
			c.Body = append(c.Body, a)
			if p.at(",") || p.at("&") {
				p.advance()
				continue
			}
			break
		}
	}
	if err := p.expect("."); err != nil {
		return Clause{}, err
	}
	return c, nil
}

// parseAtom parses either pred(args...) possibly followed by an infix
// comparison, or term cmp term.
func (p *parser) parseAtom() (Atom, error) {
	// An atom starting with a variable/number/string must be a comparison.
	t := p.cur()
	if t.kind == tokVar || t.kind == tokNumber || t.kind == tokString {
		left, err := p.parseTerm()
		if err != nil {
			return Atom{}, err
		}
		return p.parseComparisonRest(left)
	}
	if t.kind != tokIdent {
		return Atom{}, fmt.Errorf("line %d: expected atom, found %q", t.line, t.text)
	}
	pred := t.text
	p.advance()
	if !p.at("(") {
		// Could be a bare constant followed by a comparison (e.g. a != b),
		// or a 0-ary predicate.
		if cmpTok := p.cur(); cmpTok.kind == tokPunct && isCmpPunct(cmpTok.text) {
			return p.parseComparisonRest(CStr(pred))
		}
		return Atom{Pred: pred}, nil
	}
	p.advance()
	var args []Term
	if !p.at(")") {
		for {
			arg, err := p.parseTerm()
			if err != nil {
				return Atom{}, err
			}
			args = append(args, arg)
			if p.at(",") {
				p.advance()
				continue
			}
			break
		}
	}
	if err := p.expect(")"); err != nil {
		return Atom{}, err
	}
	return Atom{Pred: pred, Args: args}, nil
}

func (p *parser) parseComparisonRest(left Term) (Atom, error) {
	t := p.cur()
	if t.kind != tokPunct || !isCmpPunct(t.text) {
		return Atom{}, fmt.Errorf("line %d: expected comparison operator, found %q", t.line, t.text)
	}
	op := t.text
	p.advance()
	right, err := p.parseTerm()
	if err != nil {
		return Atom{}, err
	}
	// Normalize operator spelling through relation.ParseCmpOp.
	cmp, err := parseCmp(op)
	if err != nil {
		return Atom{}, fmt.Errorf("line %d: %w", t.line, err)
	}
	return Atom{Pred: cmp, Args: []Term{left, right}}, nil
}

func isCmpPunct(s string) bool {
	switch s {
	case "=", "==", "!=", "<>", "\\=", "<", "<=", "=<", ">", ">=":
		return true
	}
	return false
}

func parseCmp(s string) (string, error) {
	op, err := relation.ParseCmpOp(s)
	if err != nil {
		return "", err
	}
	return op.String(), nil
}

func (p *parser) parseTerm() (Term, error) {
	t := p.cur()
	switch t.kind {
	case tokVar:
		p.advance()
		return V(t.text), nil
	case tokIdent:
		p.advance()
		return CStr(t.text), nil
	case tokNumber:
		p.advance()
		if i, err := strconv.ParseInt(t.text, 10, 64); err == nil {
			return CInt(i), nil
		}
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return Term{}, fmt.Errorf("line %d: bad number %q", t.line, t.text)
		}
		return C(relation.Float(f)), nil
	case tokString:
		p.advance()
		u, err := strconv.Unquote(t.text)
		if err != nil {
			return Term{}, fmt.Errorf("line %d: bad string %q", t.line, t.text)
		}
		return CStr(u), nil
	default:
		return Term{}, fmt.Errorf("line %d: expected term, found %q", t.line, t.text)
	}
}

func (p *parser) parseDirective(kb *KB) error {
	t := p.cur()
	if t.kind != tokIdent {
		return fmt.Errorf("line %d: expected directive name, found %q", t.line, t.text)
	}
	name := t.text
	p.advance()
	if err := p.expect("("); err != nil {
		return err
	}
	switch name {
	case "base":
		ref, err := p.parsePredRef()
		if err != nil {
			return err
		}
		if err := p.expect(")"); err != nil {
			return err
		}
		if err := kb.DeclareBase(ref); err != nil {
			return err
		}
	case "mutex":
		a, err := p.parsePredRef()
		if err != nil {
			return err
		}
		if err := p.expect(","); err != nil {
			return err
		}
		b, err := p.parsePredRef()
		if err != nil {
			return err
		}
		if err := p.expect(")"); err != nil {
			return err
		}
		kb.AddMutex(a, b)
	case "recursive":
		ref, err := p.parsePredRef()
		if err != nil {
			return err
		}
		if err := p.expect(")"); err != nil {
			return err
		}
		kb.DeclareRecursive(ref)
	case "fd":
		ref, err := p.parsePredRef()
		if err != nil {
			return err
		}
		if err := p.expect(","); err != nil {
			return err
		}
		from, err := p.parsePosList()
		if err != nil {
			return err
		}
		if err := p.expect("->"); err != nil {
			return err
		}
		to, err := p.parsePosList()
		if err != nil {
			return err
		}
		if err := p.expect(")"); err != nil {
			return err
		}
		kb.AddFD(FDSOA{Pred: ref, From: from, To: to})
	default:
		return fmt.Errorf("line %d: unknown directive %q", t.line, name)
	}
	return p.expect(".")
}

func (p *parser) parsePredRef() (PredRef, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return PredRef{}, fmt.Errorf("line %d: expected predicate name, found %q", t.line, t.text)
	}
	name := t.text
	p.advance()
	if err := p.expect("/"); err != nil {
		return PredRef{}, err
	}
	n := p.cur()
	if n.kind != tokNumber {
		return PredRef{}, fmt.Errorf("line %d: expected arity, found %q", n.line, n.text)
	}
	arity, err := strconv.Atoi(n.text)
	if err != nil || arity < 0 {
		return PredRef{}, fmt.Errorf("line %d: bad arity %q", n.line, n.text)
	}
	p.advance()
	return PredRef{Name: name, Arity: arity}, nil
}

// parsePosList parses "[1,2,...]" of 1-based positions into 0-based ints.
func (p *parser) parsePosList() ([]int, error) {
	if err := p.expect("["); err != nil {
		return nil, err
	}
	var out []int
	for !p.at("]") {
		t := p.cur()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("line %d: expected position, found %q", t.line, t.text)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("line %d: bad position %q (positions are 1-based)", t.line, t.text)
		}
		out = append(out, n-1)
		p.advance()
		if p.at(",") {
			p.advance()
		}
	}
	p.advance() // ]
	return out, nil
}
