package logic

import (
	"math/rand"
	"strings"
	"testing"
)

// Parser robustness: arbitrary garbage must produce errors, never panics.
func TestParserNoPanicOnGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	alphabet := `abcXYZ09_(),.:-<>=!&[]/"\% ` + "\n\t"
	for i := 0; i < 3000; i++ {
		n := rng.Intn(60)
		var b strings.Builder
		for j := 0; j < n; j++ {
			b.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		src := b.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			ParseProgram(src)
			ParseClause(src)
			ParseAtom(src)
		}()
	}
}

// Mutations of valid programs also never panic.
func TestParserNoPanicOnMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	base := `
		:- base(b1/2).
		:- mutex(m/1, f/1).
		:- fd(b1/2, [1] -> [2]).
		k1(X, Y) :- b1(c1, Y), k2(X, Y), X != Y, Y >= 3.
	`
	for i := 0; i < 3000; i++ {
		mutated := []byte(base)
		for m := 0; m < 1+rng.Intn(4); m++ {
			pos := rng.Intn(len(mutated))
			switch rng.Intn(3) {
			case 0:
				mutated[pos] = byte(rng.Intn(94) + 33)
			case 1:
				mutated = append(mutated[:pos], mutated[pos+1:]...)
			default:
				mutated = append(mutated[:pos], append([]byte{byte(rng.Intn(94) + 33)}, mutated[pos:]...)...)
			}
		}
		src := string(mutated)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on mutation %q: %v", src, r)
				}
			}()
			ParseProgram(src)
		}()
	}
}
