package logic

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokKind enumerates lexical token kinds of the rule/query surface syntax.
type tokKind int

const (
	tokEOF    tokKind = iota
	tokIdent          // lowercase identifier (predicate or symbolic constant)
	tokVar            // uppercase/underscore identifier (variable)
	tokNumber         // integer or float literal
	tokString         // quoted string literal
	tokPunct          // punctuation or operator: ( ) , . :- -> [ ] / & ? ^ and comparisons
)

type token struct {
	kind tokKind
	text string
	pos  int // byte offset, for error messages
	line int
}

// lexer tokenizes the Datalog/CAQL-style surface syntax.
type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

// lex tokenizes src fully, returning the token stream.
func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, tok)
		if tok.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) errorf(format string, args ...any) error {
	return fmt.Errorf("line %d: %s", l.line, fmt.Sprintf(format, args...))
}

func (l *lexer) next() (token, error) {
	// Skip whitespace and comments.
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '%':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '#': // shell-style comments accepted too
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto body
		}
	}
body:
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos, line: l.line}, nil
	}
	start, line := l.pos, l.line
	c := l.src[l.pos]
	switch {
	case c == '"':
		l.pos++
		for l.pos < len(l.src) {
			if l.src[l.pos] == '\\' {
				l.pos += 2
				continue
			}
			if l.src[l.pos] == '"' {
				l.pos++
				return token{kind: tokString, text: l.src[start:l.pos], pos: start, line: line}, nil
			}
			if l.src[l.pos] == '\n' {
				l.line++
			}
			l.pos++
		}
		return token{}, l.errorf("unterminated string literal")
	case c >= '0' && c <= '9' || (c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9'):
		l.pos++
		for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]) || l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
			l.pos++
		}
		text := l.src[start:l.pos]
		if _, err := strconv.ParseFloat(text, 64); err != nil {
			return token{}, l.errorf("bad number %q", text)
		}
		return token{kind: tokNumber, text: text, pos: start, line: line}, nil
	case isIdentStart(rune(c)):
		l.pos++
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			l.pos++
		}
		text := l.src[start:l.pos]
		if IsVarName(text) {
			return token{kind: tokVar, text: text, pos: start, line: line}, nil
		}
		return token{kind: tokIdent, text: text, pos: start, line: line}, nil
	default:
		// Multi-char punctuation first.
		rest := l.src[l.pos:]
		for _, p := range []string{":-", "->", "<=", ">=", "=<", "!=", "<>", "\\=", "=="} {
			if strings.HasPrefix(rest, p) {
				l.pos += len(p)
				return token{kind: tokPunct, text: p, pos: start, line: line}, nil
			}
		}
		switch c {
		case '(', ')', ',', '.', '[', ']', '/', '&', '?', '^', '<', '>', '=', '|':
			l.pos++
			return token{kind: tokPunct, text: string(c), pos: start, line: line}, nil
		}
		return token{}, l.errorf("unexpected character %q", string(c))
	}
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
