// Package workload provides deterministic synthetic workloads for the
// experiment suite: a recursive kinship knowledge base (the classic
// expert-system family domain), a suppliers-and-parts domain (the relational
// classic), and the b1/b2/b3 chain shape of the paper's running example with
// controllable sizes and selectivities.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/caql"
	"repro/internal/logic"
	"repro/internal/relation"
	"repro/internal/remotedb"
)

// Workload bundles a knowledge base, the base relation extensions, and a
// representative AI query mix.
type Workload struct {
	Name    string
	KB      *logic.KB
	Tables  []*relation.Relation
	Queries []logic.Atom
}

// Engine loads the workload's tables into a fresh remote DBMS engine.
func (w *Workload) Engine() *remotedb.Engine {
	e := remotedb.NewEngine()
	for _, t := range w.Tables {
		e.LoadTable(t)
	}
	return e
}

// Source returns the extensions as a caql.MapSource (reference evaluation).
func (w *Workload) Source() caql.MapSource {
	src := caql.MapSource{}
	for _, t := range w.Tables {
		src[t.Name] = t
	}
	return src
}

func mustKB(src string) *logic.KB {
	kb, err := logic.ParseProgram(src)
	if err != nil {
		panic(fmt.Sprintf("workload: bad builtin KB: %v", err))
	}
	return kb
}

// Kinship builds a random family forest of the given size with the classic
// derived relations. Parent edges are acyclic by construction (children have
// strictly larger identifiers), so every strategy handles the recursion.
func Kinship(seed int64, people int) *Workload {
	rng := rand.New(rand.NewSource(seed))
	kb := mustKB(`
		:- base(parent/2).
		:- base(male/1).
		:- base(female/1).
		:- base(age/2).
		:- mutex(male/1, female/1).
		father(X, Y) :- parent(X, Y), male(X).
		mother(X, Y) :- parent(X, Y), female(X).
		grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
		grandfather(X, Z) :- grandparent(X, Z), male(X).
		sibling(X, Y) :- parent(P, X), parent(P, Y), X != Y.
		brother(X, Y) :- sibling(X, Y), male(X).
		uncle(X, Y) :- brother(X, P), parent(P, Y).
		cousin(X, Y) :- parent(P, X), parent(Q, Y), sibling(P, Q).
		anc(X, Y) :- parent(X, Y).
		anc(X, Y) :- parent(X, Z), anc(Z, Y).
		adult(X) :- age(X, A), A >= 18.
		elder_parent(X, Y) :- parent(X, Y), age(X, A), A >= 60.
	`)

	parent := relation.New("parent", relation.NewSchema(
		relation.Attr{Name: "p", Kind: relation.KindString},
		relation.Attr{Name: "c", Kind: relation.KindString}))
	male := relation.New("male", relation.NewSchema(relation.Attr{Name: "x", Kind: relation.KindString}))
	female := relation.New("female", relation.NewSchema(relation.Attr{Name: "x", Kind: relation.KindString}))
	age := relation.New("age", relation.NewSchema(
		relation.Attr{Name: "x", Kind: relation.KindString},
		relation.Attr{Name: "a", Kind: relation.KindInt}))

	name := func(i int) string { return fmt.Sprintf("p%03d", i) }
	for i := 0; i < people; i++ {
		if rng.Intn(2) == 0 {
			male.MustAppend(relation.Tuple{relation.Str(name(i))})
		} else {
			female.MustAppend(relation.Tuple{relation.Str(name(i))})
		}
		age.MustAppend(relation.Tuple{relation.Str(name(i)), relation.Int(int64(5 + rng.Intn(80)))})
		// Up to two parents with smaller identifiers (acyclic).
		if i > 0 {
			nParents := 1 + rng.Intn(2)
			seen := map[int]bool{}
			for k := 0; k < nParents; k++ {
				p := rng.Intn(i)
				if !seen[p] {
					seen[p] = true
					parent.MustAppend(relation.Tuple{relation.Str(name(p)), relation.Str(name(i))})
				}
			}
		}
	}

	queries := []logic.Atom{
		logic.A("grandparent", logic.V("X"), logic.V("Y")),
		logic.A("uncle", logic.V("X"), logic.V("Y")),
		logic.A("cousin", logic.V("X"), logic.V("Y")),
		logic.A("anc", logic.CStr(name(0)), logic.V("Y")),
		logic.A("elder_parent", logic.V("X"), logic.V("Y")),
	}
	return &Workload{Name: "kinship", KB: kb, Tables: []*relation.Relation{parent, male, female, age}, Queries: queries}
}

// Suppliers builds the suppliers/parts/shipments domain at the given scale
// (suppliers = scale, parts = 2*scale, shipments ≈ 8*scale).
func Suppliers(seed int64, scale int) *Workload {
	rng := rand.New(rand.NewSource(seed))
	kb := mustKB(`
		:- base(supplier/3).
		:- base(part/3).
		:- base(shipment/3).
		:- fd(supplier/3, [1] -> [2,3]).
		:- fd(part/3, [1] -> [2,3]).
		supplies(S, P) :- shipment(S, P, Q), Q > 0.
		red_part(P) :- part(P, "red", W).
		supplies_red(S) :- supplies(S, P), red_part(P).
		heavy_shipment(S, P) :- shipment(S, P, Q), part(P, C, W), W > 70.
		big_order(S, P) :- shipment(S, P, Q), Q >= 400.
		colocated(S1, S2) :- supplier(S1, N1, C), supplier(S2, N2, C), S1 != S2.
		local_red(S1, S2) :- colocated(S1, S2), supplies_red(S2).
		status_ok(S) :- supplier(S, N, C), shipment(S, P, Q), Q >= 100.
	`)

	cities := []string{"london", "paris", "athens", "oslo", "rome"}
	colors := []string{"red", "green", "blue"}

	supplier := relation.New("supplier", relation.NewSchema(
		relation.Attr{Name: "sid", Kind: relation.KindInt},
		relation.Attr{Name: "name", Kind: relation.KindString},
		relation.Attr{Name: "city", Kind: relation.KindString}))
	part := relation.New("part", relation.NewSchema(
		relation.Attr{Name: "pid", Kind: relation.KindInt},
		relation.Attr{Name: "color", Kind: relation.KindString},
		relation.Attr{Name: "weight", Kind: relation.KindFloat}))
	shipment := relation.New("shipment", relation.NewSchema(
		relation.Attr{Name: "sid", Kind: relation.KindInt},
		relation.Attr{Name: "pid", Kind: relation.KindInt},
		relation.Attr{Name: "qty", Kind: relation.KindInt}))

	for s := 0; s < scale; s++ {
		supplier.MustAppend(relation.Tuple{
			relation.Int(int64(s)),
			relation.Str(fmt.Sprintf("s%03d", s)),
			relation.Str(cities[rng.Intn(len(cities))])})
	}
	for p := 0; p < 2*scale; p++ {
		part.MustAppend(relation.Tuple{
			relation.Int(int64(p)),
			relation.Str(colors[rng.Intn(len(colors))]),
			relation.Float(float64(10 + rng.Intn(90)))})
	}
	for i := 0; i < 8*scale; i++ {
		shipment.MustAppend(relation.Tuple{
			relation.Int(int64(rng.Intn(scale))),
			relation.Int(int64(rng.Intn(2 * scale))),
			relation.Int(int64(rng.Intn(500)))})
	}

	queries := []logic.Atom{
		logic.A("supplies_red", logic.V("S")),
		logic.A("heavy_shipment", logic.V("S"), logic.V("P")),
		logic.A("local_red", logic.V("S1"), logic.V("S2")),
		logic.A("big_order", logic.V("S"), logic.V("P")),
		logic.A("status_ok", logic.V("S")),
	}
	return &Workload{Name: "suppliers", KB: kb, Tables: []*relation.Relation{supplier, part, shipment}, Queries: queries}
}

// Chain builds the paper's running-example shape: b1(string, int),
// b2(int, int), b3(int, string, int), with the Example 1 rules. domain
// controls join fanout (values drawn from [0, domain)).
func Chain(seed int64, rows, domain int) *Workload {
	rng := rand.New(rand.NewSource(seed))
	kb := mustKB(`
		:- base(b1/2).
		:- base(b2/2).
		:- base(b3/3).
		k1(X, Y) :- b1(c1, Y), k2(X, Y).
		k2(X, Y) :- b2(X, Z), b3(Z, c2, Y).
		k2(X, Y) :- b3(X, c3, Z), b1(Z, Y).
	`)
	tags := []string{"c1", "c2", "c3", "d1", "d2"}
	b1 := relation.New("b1", relation.NewSchema(
		relation.Attr{Name: "x", Kind: relation.KindString},
		relation.Attr{Name: "y", Kind: relation.KindInt}))
	b2 := relation.New("b2", relation.NewSchema(
		relation.Attr{Name: "x", Kind: relation.KindInt},
		relation.Attr{Name: "y", Kind: relation.KindInt}))
	b3 := relation.New("b3", relation.NewSchema(
		relation.Attr{Name: "x", Kind: relation.KindInt},
		relation.Attr{Name: "y", Kind: relation.KindString},
		relation.Attr{Name: "z", Kind: relation.KindInt}))
	for i := 0; i < rows; i++ {
		b1.MustAppend(relation.Tuple{relation.Str(tags[rng.Intn(len(tags))]), relation.Int(int64(rng.Intn(domain)))})
		b2.MustAppend(relation.Tuple{relation.Int(int64(rng.Intn(domain))), relation.Int(int64(rng.Intn(domain)))})
		b3.MustAppend(relation.Tuple{relation.Int(int64(rng.Intn(domain))), relation.Str(tags[rng.Intn(len(tags))]), relation.Int(int64(rng.Intn(domain)))})
		b3.MustAppend(relation.Tuple{relation.Int(int64(rng.Intn(domain))), relation.Str(tags[rng.Intn(len(tags))]), relation.Int(int64(rng.Intn(domain)))})
	}
	queries := []logic.Atom{
		logic.A("k1", logic.V("X"), logic.V("Y")),
		logic.A("k2", logic.V("X"), logic.V("Y")),
	}
	return &Workload{Name: "chain", KB: kb, Tables: []*relation.Relation{b1, b2, b3}, Queries: queries}
}
