package workload

import (
	"testing"

	"repro/internal/ie"
	"repro/internal/logic"
)

func TestKinshipDeterministic(t *testing.T) {
	a := Kinship(7, 50)
	b := Kinship(7, 50)
	for i := range a.Tables {
		if !a.Tables[i].EqualAsBag(b.Tables[i]) {
			t.Fatalf("kinship not deterministic for %s", a.Tables[i].Name)
		}
	}
	c := Kinship(8, 50)
	same := true
	for i := range a.Tables {
		if !a.Tables[i].EqualAsBag(c.Tables[i]) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestKinshipSemanticsSane(t *testing.T) {
	w := Kinship(3, 60)
	// Everyone is male xor female.
	male, female := w.Tables[1], w.Tables[2]
	seen := map[string]bool{}
	for _, tu := range male.Tuples() {
		seen[tu[0].AsString()] = true
	}
	for _, tu := range female.Tuples() {
		if seen[tu[0].AsString()] {
			t.Fatalf("person %s both male and female", tu[0].AsString())
		}
	}
	// grandparent answers exist and match bottom-up evaluation counts.
	derived, err := ie.BottomUp(w.KB, w.Source(), []logic.PredRef{{Name: "grandparent", Arity: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if derived[logic.PredRef{Name: "grandparent", Arity: 2}].Len() == 0 {
		t.Fatal("no grandparents in a 60-person forest (suspicious)")
	}
	// anc is acyclic: nobody is their own ancestor.
	derived, err = ie.BottomUp(w.KB, w.Source(), []logic.PredRef{{Name: "anc", Arity: 2}})
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range derived[logic.PredRef{Name: "anc", Arity: 2}].Tuples() {
		if tu[0].Equal(tu[1]) {
			t.Fatalf("cyclic ancestry: %v", tu)
		}
	}
}

func TestSuppliersQueriesAnswerable(t *testing.T) {
	w := Suppliers(5, 20)
	for _, q := range w.Queries {
		derived, err := ie.BottomUp(w.KB, w.Source(), []logic.PredRef{q.Ref()})
		if err != nil {
			t.Fatalf("query %s: %v", q, err)
		}
		if derived[q.Ref()] == nil {
			t.Fatalf("query %s has no extension", q)
		}
	}
}

func TestChainShape(t *testing.T) {
	w := Chain(1, 100, 20)
	if len(w.Tables) != 3 || w.Tables[2].Len() != 200 {
		t.Fatalf("chain tables wrong: %d, b3=%d", len(w.Tables), w.Tables[2].Len())
	}
	e := w.Engine()
	if len(e.Tables()) != 3 {
		t.Fatal("engine load failed")
	}
	st, err := e.Stats("b2")
	if err != nil || st.Rows != 100 {
		t.Fatalf("b2 stats: %+v %v", st, err)
	}
}
