package cache

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/advice"
	"repro/internal/caql"
)

// concurrentWorkload is the per-session query mix for the stress tests: exact
// repeats (result-cache hits), narrowing instances (subsumption), multi-atom
// queries sharing subexpressions (decomposition), and enough distinct results
// to force evictions under a tight budget. Queries are parameterized by the
// session index so sessions overlap on some views and diverge on others.
func concurrentWorkload(i int) []string {
	k := i % 4
	return []string{
		`w(X, Y) :- b2(X, Y)`,
		fmt.Sprintf(`w%d(X) :- b2(X, %d)`, k, k),
		`w(X, Y) :- b2(X, Y)`, // exact repeat: hit
		fmt.Sprintf(`n%d(X) :- b2(X, %d) & b2(X, X)`, k, k),
		fmt.Sprintf(`j%d(X, Z) :- b2(X, %d) & b3(X, "a", Z)`, k, k),
		fmt.Sprintf(`s%d(Y) :- b1("%c", Y)`, k, 'a'+byte(k)),
		fmt.Sprintf(`w%d(X) :- b2(X, %d)`, k, k), // repeat: hit or re-derive
		fmt.Sprintf(`big%d(X, Y, Z) :- b3(X, "%c", Y) & b2(Y, Z)`, i, 'a'+byte(i%4)),
	}
}

// TestConcurrentMixedWorkload runs 8 goroutine sessions of mixed workload (exact
// hits, subsumption, decomposition, and — with a tight budget — evictions)
// against one shared CMS and checks every answer against serial caql.Eval.
// Run under -race this is the concurrency soundness gate for the sharded
// manager, the atomic stats, and the async prefetch pipeline.
func TestConcurrentMixedWorkload(t *testing.T) {
	for _, budget := range []int64{0, 2048} {
		name := "unbounded"
		if budget > 0 {
			name = "tightBudget"
		}
		t.Run(name, func(t *testing.T) {
			e, src := fixtureEngine(t, 42, 40)
			cms := newCMS(t, e, Options{
				Features:    AllFeatures(),
				CacheBytes:  budget,
				ThinkTimeMS: 100,
			})

			const sessions = 8
			var wg sync.WaitGroup
			errs := make(chan error, sessions*16)
			for i := 0; i < sessions; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					adv := advice.MustParse(example1Advice)
					s := cms.BeginSession(adv).(*Session)
					defer s.End()
					for round := 0; round < 3; round++ {
						for _, qs := range concurrentWorkload(i) {
							q, err := caql.Parse(qs)
							if err != nil {
								errs <- err
								return
							}
							stream, err := s.Query(q)
							if err != nil {
								errs <- fmt.Errorf("session %d %q: %w", i, qs, err)
								return
							}
							got := stream.Drain("out")
							want, err := caql.Eval(q, src)
							if err != nil {
								errs <- err
								return
							}
							if !got.EqualAsSet(want) {
								errs <- fmt.Errorf("session %d %q: got %d tuples, want %d",
									i, qs, got.Len(), want.Len())
								return
							}
						}
					}
				}(i)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}

			st := cms.Stats()
			if st.CacheHits == 0 {
				t.Error("concurrent workload should produce cache hits")
			}
			if budget > 0 && st.Evictions == 0 {
				t.Error("tight budget should force evictions")
			}
			if budget > 0 && cms.Manager().SizeBytes() > budget {
				t.Errorf("cache over budget after run: %d > %d", cms.Manager().SizeBytes(), budget)
			}
			// Counter sanity: every query is accounted exactly once.
			if want := int64(sessions * 3 * len(concurrentWorkload(0))); st.Queries != want {
				t.Errorf("Queries = %d, want %d", st.Queries, want)
			}
		})
	}
}

// TestConcurrentHitRateParity: K concurrent sessions replaying the same
// workload against a shared cache must collectively hit at least as often as
// one serial session does on its own cache — sharing can only help (the
// prefetch visibility gate must not hide published elements).
func TestConcurrentHitRateParity(t *testing.T) {
	runOnce := func(sessions int) (hits, queries int64) {
		e, _ := fixtureEngine(t, 7, 40)
		cms := newCMS(t, e, Options{Features: AllFeatures(), ThinkTimeMS: 100})
		var wg sync.WaitGroup
		for i := 0; i < sessions; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				s := cms.BeginSession(advice.MustParse(example1Advice)).(*Session)
				defer s.End()
				for round := 0; round < 2; round++ {
					for _, qs := range concurrentWorkload(0) {
						stream, err := s.QueryText(qs)
						if err != nil {
							t.Error(err)
							return
						}
						stream.Drain("out")
					}
				}
			}()
		}
		wg.Wait()
		st := cms.Stats()
		return st.CacheHits + st.PartialHits, st.Queries
	}

	serialHits, serialQ := runOnce(1)
	concHits, concQ := runOnce(4)
	serialRate := float64(serialHits) / float64(serialQ)
	concRate := float64(concHits) / float64(concQ)
	// Cold-cache races allow ~one duplicate miss per session per view, so
	// parity is asserted up to a one-query-per-round tolerance.
	tol := 1.0 / float64(len(concurrentWorkload(0)))
	if concRate < serialRate-tol {
		t.Errorf("shared-cache hit rate %.3f below serial %.3f (tolerance %.3f)", concRate, serialRate, tol)
	}
}

// TestConcurrentEvictionUnderInsert hammers insert+evict from many sessions
// with a budget small enough that almost every insert sweeps, checking the
// manager's bookkeeping stays consistent (no negative sizes, len matches
// elements) — the lock-ordering stress for evictMu + shard locks.
func TestConcurrentEvictionUnderInsert(t *testing.T) {
	e, _ := fixtureEngine(t, 9, 30)
	cms := newCMS(t, e, Options{Features: AllFeatures(), CacheBytes: 4096})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := cms.BeginSession(nil).(*Session)
			defer s.End()
			for j := 0; j < 10; j++ {
				qs := fmt.Sprintf(`v%d_%d(X, Y) :- b3(X, "%c", Y)`, i, j, 'a'+byte((i+j)%4))
				stream, err := s.QueryText(qs)
				if err != nil {
					t.Error(err)
					return
				}
				stream.Drain("out")
			}
		}(i)
	}
	wg.Wait()
	m := cms.Manager()
	if got := m.SizeBytes(); got > 4096 {
		t.Errorf("cache over budget: %d", got)
	}
	if len(m.Elements()) != m.Len() {
		t.Errorf("element snapshot (%d) disagrees with Len (%d)", len(m.Elements()), m.Len())
	}
	if m.Evictions() == 0 {
		t.Error("expected evictions under 4KB budget")
	}
}
