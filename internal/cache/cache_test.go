package cache

import (
	"math/rand"
	"testing"

	"repro/internal/advice"
	"repro/internal/caql"
	"repro/internal/logic"
	"repro/internal/relation"
	"repro/internal/remotedb"
)

// fixtureEngine builds the paper's b1/b2/b3 shape: b1(string, int),
// b2(int, int), b3(int, string, int).
func fixtureEngine(t *testing.T, seed int64, rows int) (*remotedb.Engine, caql.MapSource) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	e := remotedb.NewEngine()
	src := caql.MapSource{}

	b1 := relation.New("b1", relation.NewSchema(
		relation.Attr{Name: "x", Kind: relation.KindString},
		relation.Attr{Name: "y", Kind: relation.KindInt}))
	for i := 0; i < rows; i++ {
		b1.MustAppend(relation.Tuple{relation.Str(string(rune('a' + rng.Intn(4)))), relation.Int(int64(rng.Intn(8)))})
	}
	b2 := relation.New("b2", relation.NewSchema(
		relation.Attr{Name: "x", Kind: relation.KindInt},
		relation.Attr{Name: "y", Kind: relation.KindInt}))
	for i := 0; i < rows; i++ {
		b2.MustAppend(relation.Tuple{relation.Int(int64(rng.Intn(8))), relation.Int(int64(rng.Intn(8)))})
	}
	b3 := relation.New("b3", relation.NewSchema(
		relation.Attr{Name: "x", Kind: relation.KindInt},
		relation.Attr{Name: "y", Kind: relation.KindString},
		relation.Attr{Name: "z", Kind: relation.KindInt}))
	for i := 0; i < rows*2; i++ {
		b3.MustAppend(relation.Tuple{relation.Int(int64(rng.Intn(8))), relation.Str(string(rune('a' + rng.Intn(4)))), relation.Int(int64(rng.Intn(8)))})
	}
	for _, r := range []*relation.Relation{b1, b2, b3} {
		e.LoadTable(r)
		src[r.Name] = r
	}
	return e, src
}

func newCMS(t *testing.T, e *remotedb.Engine, opts Options) *CMS {
	t.Helper()
	if opts.Costs == (remotedb.Costs{}) {
		opts.Costs = remotedb.DefaultCosts()
	}
	return New(remotedb.NewInProcClient(e, opts.Costs), opts)
}

func drainQ(t *testing.T, s *Session, src string) *relation.Relation {
	t.Helper()
	st, err := s.QueryText(src)
	if err != nil {
		t.Fatalf("query %q: %v", src, err)
	}
	return st.Drain("out")
}

func TestRemoteThenExactHit(t *testing.T) {
	e, src := fixtureEngine(t, 1, 30)
	cms := newCMS(t, e, Options{Features: AllFeatures()})
	s := cms.BeginSession(nil).(*Session)
	defer s.End()

	q := `d(X, Y) :- b2(X, Z) & b3(Z, "a", Y)`
	first := drainQ(t, s, q)
	want, err := caql.Eval(caql.MustParse(q), src)
	if err != nil {
		t.Fatal(err)
	}
	if !first.EqualAsSet(want) {
		t.Fatalf("remote answer wrong:\n%v\n%v", first, want)
	}
	st0 := cms.Stats()
	if st0.RemoteRequests != 1 || st0.CacheHits != 0 {
		t.Fatalf("unexpected stats after first query: %+v", st0)
	}
	second := drainQ(t, s, q)
	if !second.EqualAsSet(want) {
		t.Fatal("cached answer differs")
	}
	st1 := cms.Stats()
	if st1.RemoteRequests != 1 {
		t.Fatalf("second query went remote: %+v", st1)
	}
	if st1.CacheHits != 1 || st1.ExactHits != 1 {
		t.Fatalf("expected exact cache hit: %+v", st1)
	}
}

func TestSubsumptionHitFromGeneralElement(t *testing.T) {
	e, _ := fixtureEngine(t, 2, 40)
	cms := newCMS(t, e, Options{Features: AllFeatures()})
	s := cms.BeginSession(nil).(*Session)
	defer s.End()

	// Cache the general view, then ask a specialized instance.
	drainQ(t, s, "g(X, Y, Z) :- b3(X, Y, Z)")
	inst := drainQ(t, s, `i(X, Z) :- b3(X, "a", Z)`)
	st := cms.Stats()
	if st.RemoteRequests != 1 {
		t.Fatalf("instance should be served from cache: %+v", st)
	}
	if st.CacheHits != 1 {
		t.Fatalf("expected subsumption hit: %+v", st)
	}
	// Correctness.
	eng := caql.MapSource{}
	for _, name := range []string{"b3"} {
		sch, _ := e.Schema(name)
		_ = sch
		r, _, err := e.ExecuteSQL("SELECT * FROM b3")
		if err != nil {
			t.Fatal(err)
		}
		r.Name = name
		eng[name] = r
	}
	want, err := caql.Eval(caql.MustParse(`i(X, Z) :- b3(X, "a", Z)`), eng)
	if err != nil {
		t.Fatal(err)
	}
	if !inst.EqualAsSet(want) {
		t.Fatalf("subsumption answer wrong:\ngot %v\nwant %v", inst, want)
	}
}

func TestExactMatchOnlyNoSubsumption(t *testing.T) {
	e, _ := fixtureEngine(t, 3, 30)
	f := Features{ExactMatch: true, ResultCaching: true}
	cms := newCMS(t, e, Options{Features: f})
	s := cms.BeginSession(nil).(*Session)
	defer s.End()

	drainQ(t, s, "g(X, Y, Z) :- b3(X, Y, Z)")
	drainQ(t, s, `i(X, Z) :- b3(X, "a", Z)`)
	st := cms.Stats()
	if st.RemoteRequests != 2 {
		t.Fatalf("without subsumption the instance must go remote: %+v", st)
	}
	// But an alpha-variant repeats locally.
	drainQ(t, s, `j(P, R) :- b3(P, "a", R)`)
	st = cms.Stats()
	if st.RemoteRequests != 2 || st.ExactHits != 1 {
		t.Fatalf("alpha-variant should be an exact hit: %+v", st)
	}
}

func TestDecompositionPartialHit(t *testing.T) {
	e, src := fixtureEngine(t, 4, 30)
	cms := newCMS(t, e, Options{Features: AllFeatures()})
	s := cms.BeginSession(nil).(*Session)
	defer s.End()

	// Cache b2 fully; then ask a join of b2 and b3: b2 part from cache,
	// b3 part remote.
	drainQ(t, s, "all2(X, Y) :- b2(X, Y)")
	join := drainQ(t, s, `jq(X, W) :- b2(X, Z) & b3(Z, "a", W)`)
	st := cms.Stats()
	if st.PartialHits != 1 {
		t.Fatalf("expected a partial hit: %+v", st)
	}
	if st.RemoteRequests != 2 {
		t.Fatalf("expected exactly one residual fetch: %+v", st)
	}
	want, err := caql.Eval(caql.MustParse(`jq(X, W) :- b2(X, Z) & b3(Z, "a", W)`), src)
	if err != nil {
		t.Fatal(err)
	}
	if !join.EqualAsSet(want) {
		t.Fatalf("decomposed answer wrong:\ngot %v\nwant %v", join.Sort(), want.Sort())
	}
	// Residual tuples shipped should be fewer than the whole b3 table when a
	// selection is pushed (b3 filtered by "a").
	if st.RemoteTuples >= int64(src["b2"].Len()+src["b3"].Len()) {
		t.Logf("note: residual shipping did not reduce tuples (%d)", st.RemoteTuples)
	}
}

const example1Advice = `
	view d1(Y^) :- b1("a", Y) [r1].
	view d2(X^, Y?) :- b2(X, Z) & b3(Z, "a", Y) [r2].
	view d3(X^, Y?) :- b3(X, "b", Z) & b1(Z, Y) [r3].
	path (d1(Y^), (d2(X^, Y?), d3(X^, Y?))<0,|Y|>)<1,1>.
`

func TestPrefetchFollowers(t *testing.T) {
	e, _ := fixtureEngine(t, 5, 40)
	adv := advice.MustParse(example1Advice)
	cms := newCMS(t, e, Options{Features: AllFeatures(), ThinkTimeMS: 1000})
	s := cms.BeginSession(adv).(*Session)
	defer s.End()

	drainQ(t, s, `d1(Y) :- b1("a", Y)`)
	// Query d2 with a constant: its sequence follower d3 with the same
	// constant should be prefetched.
	drainQ(t, s, `d2(X, 3) :- b2(X, Z) & b3(Z, "a", 3)`)
	s.waitPrefetches() // prefetching is asynchronous; settle stats before reading
	st := cms.Stats()
	if st.Prefetches == 0 {
		t.Fatalf("expected a prefetch after d2: %+v", st)
	}
	before := st.ResponseSimMS
	out := drainQ(t, s, `d3(X, 3) :- b3(X, "b", Z) & b1(Z, 3)`)
	_ = out
	st = cms.Stats()
	if st.PrefetchHits == 0 {
		t.Fatalf("d3 should hit prefetched data: %+v", st)
	}
	// The d3 answer should cost (almost) nothing in response time: the
	// prefetch overlapped think time.
	d3Cost := st.ResponseSimMS - before
	if d3Cost > cms.opts.Costs.PerRequest {
		t.Fatalf("prefetched answer cost %.2fms, want < one round trip (%.2f)", d3Cost, cms.opts.Costs.PerRequest)
	}
}

func TestGeneralization(t *testing.T) {
	e, src := fixtureEngine(t, 6, 60)
	adv := advice.MustParse(example1Advice)
	f := AllFeatures()
	f.Prefetch = false // isolate generalization
	cms := newCMS(t, e, Options{Features: f})
	s := cms.BeginSession(adv).(*Session)
	defer s.End()

	drainQ(t, s, `d1(Y) :- b1("a", Y)`)
	// Repeated d2 instances with different constants: the first should be
	// generalized (path predicts up to |Y| repetitions), later ones served
	// from the generalized element.
	for c := 0; c < 4; c++ {
		q := caql.MustParse(`d2(X, Y) :- b2(X, Z) & b3(Z, "a", Y)`).Instantiate(
			map[string]relation.Value{"Y": relation.Int(int64(c))})
		out, err := s.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		got := out.Drain("got")
		want, err := caql.Eval(q, src)
		if err != nil {
			t.Fatal(err)
		}
		if !got.EqualAsSet(want) {
			t.Fatalf("instance %d wrong:\ngot %v\nwant %v", c, got, want)
		}
	}
	st := cms.Stats()
	if st.Generalizations == 0 {
		t.Fatalf("expected generalization: %+v", st)
	}
	// Remote requests: d1 + one generalized d2 fetch = 2.
	if st.RemoteRequests != 2 {
		t.Fatalf("generalization should collapse remote requests to 2, got %+v", st)
	}
	if st.CacheHits < 3 {
		t.Fatalf("later instances should be cache hits: %+v", st)
	}
}

func TestLazyStrictProducer(t *testing.T) {
	e, _ := fixtureEngine(t, 7, 200)
	adv := advice.MustParse(`view dp(X^, Y^) :- b2(X, Y).`)
	cms := newCMS(t, e, Options{Features: AllFeatures()})
	s := cms.BeginSession(adv).(*Session)
	defer s.End()

	// First query loads the data (remote, cached because no path expression
	// means no reuse prediction either way: strict producer + no tracker
	// caches by default).
	drainQ(t, s, "dp(X, Y) :- b2(X, Y)")
	st, err := s.QueryText("dp(X, Y) :- b2(X, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if !st.Lazy() {
		t.Fatal("strict-producer cached answer should be lazy")
	}
	stats0 := cms.Stats()
	if stats0.LazyAnswers != 1 {
		t.Fatalf("lazy answers = %d", stats0.LazyAnswers)
	}
	// Consuming one tuple must charge less local time than draining all.
	before := cms.Stats().LocalSimMS
	st.Take(1)
	oneCost := cms.Stats().LocalSimMS - before
	st2, _ := s.QueryText("dp(X, Y) :- b2(X, Y)")
	before = cms.Stats().LocalSimMS
	st2.Drain("all")
	allCost := cms.Stats().LocalSimMS - before
	if oneCost >= allCost {
		t.Fatalf("lazy single-tuple cost %.4f should be < full drain %.4f", oneCost, allCost)
	}
}

func TestIndexingFromConsumerAnnotation(t *testing.T) {
	e, _ := fixtureEngine(t, 8, 400)
	adv := advice.MustParse(`
		view dg(X^, Y^, Z^) :- b3(X, Y, Z).
		view di(X?, Z^) :- b3(X, "a", Z).
	`)
	f := AllFeatures()
	f.Lazy = false
	cms := newCMS(t, e, Options{Features: f})
	s := cms.BeginSession(adv).(*Session)
	defer s.End()

	drainQ(t, s, "dg(X, Y, Z) :- b3(X, Y, Z)") // load general element
	// Repeated consumer-bound selections against the cached element.
	for c := 0; c < 5; c++ {
		q := caql.MustParse(`di(X, Z) :- b3(X, "a", Z)`).Instantiate(
			map[string]relation.Value{"X": relation.Int(int64(c))})
		if _, err := s.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	st := cms.Stats()
	if st.IndexBuilds == 0 {
		t.Fatalf("expected an index build: %+v", st)
	}
	if st.RemoteRequests != 1 {
		t.Fatalf("instances should be cache hits: %+v", st)
	}
}

func TestReplacementAdviceProtection(t *testing.T) {
	e, _ := fixtureEngine(t, 9, 50)
	adv := advice.MustParse(`
		view d1(Y^) :- b1("a", Y).
		view d2(X^, Y^) :- b2(X, Y).
		path ((d1(Y^), d2(X^, Y^))<0,*>)<1,1>.
	`)
	// Budget fits roughly one element.
	f := AllFeatures()
	f.Prefetch = false
	f.Generalization = false
	f.Lazy = false

	// Without advice replacement: plain LRU evicts d1's element when filler
	// elements arrive.
	run := func(protect bool) bool {
		ff := f
		ff.AdviceReplacement = protect
		cms := newCMS(t, e, Options{Features: ff, CacheBytes: 6000})
		s := cms.BeginSession(adv).(*Session)
		defer s.End()
		drainQ(t, s, `d1(Y) :- b1("a", Y)`)
		// Filler queries with no advice linkage push the cache over budget.
		drainQ(t, s, "f1(X, Y, Z) :- b3(X, Y, Z)")
		drainQ(t, s, "f2(Z, X, Y) :- b3(X, Y, Z)")
		// Is d1 still served from cache?
		before := cms.Stats().RemoteRequests
		drainQ(t, s, `d1(Y) :- b1("a", Y)`)
		return cms.Stats().RemoteRequests == before
	}
	if run(false) {
		t.Skip("cache big enough that LRU kept d1; shrink budget to make the ablation meaningful")
	}
	if !run(true) {
		t.Fatal("advice protection should keep the predicted d1 element cached")
	}
}

func TestCacheModel(t *testing.T) {
	e, _ := fixtureEngine(t, 10, 20)
	cms := newCMS(t, e, Options{Features: AllFeatures()})
	s := cms.BeginSession(nil).(*Session)
	defer s.End()
	drainQ(t, s, "m1(X, Y) :- b2(X, Y)")
	drainQ(t, s, "m2(Y) :- b1(X, Y)")
	model := cms.Manager().Model()
	if model.Len() != 2 {
		t.Fatalf("cache model rows = %d, want 2", model.Len())
	}
	if model.Schema().ColIndex("e_def") != 1 {
		t.Fatal("cache model schema wrong")
	}
}

func TestBudgetEviction(t *testing.T) {
	e, _ := fixtureEngine(t, 11, 100)
	cms := newCMS(t, e, Options{Features: AllFeatures(), CacheBytes: 4000})
	s := cms.BeginSession(nil).(*Session)
	defer s.End()
	for i := 0; i < 8; i++ {
		q := caql.NewQuery(
			logic.A("q", logic.V("Y")),
			[]logic.Atom{logic.A("b2", logic.CInt(int64(i)), logic.V("Y"))})
		if _, err := s.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	if cms.Manager().SizeBytes() > 4000 {
		t.Fatalf("cache exceeds budget: %d", cms.Manager().SizeBytes())
	}
	if cms.Stats().Evictions == 0 {
		t.Fatal("expected evictions under pressure")
	}
}

func TestNoCachingFeatureOff(t *testing.T) {
	e, _ := fixtureEngine(t, 12, 20)
	cms := newCMS(t, e, Options{Features: Features{}}) // loose-coupling-like
	s := cms.BeginSession(nil).(*Session)
	defer s.End()
	drainQ(t, s, "q(X, Y) :- b2(X, Y)")
	drainQ(t, s, "q(X, Y) :- b2(X, Y)")
	st := cms.Stats()
	if st.RemoteRequests != 2 || st.CacheHits != 0 {
		t.Fatalf("all-off CMS must go remote each time: %+v", st)
	}
	if cms.Manager().Len() != 0 {
		t.Fatal("nothing should be cached")
	}
}

func TestSessionErrors(t *testing.T) {
	e, _ := fixtureEngine(t, 13, 10)
	cms := newCMS(t, e, Options{Features: AllFeatures()})
	s := cms.BeginSession(nil).(*Session)
	defer s.End()
	if _, err := s.QueryText("q(X) :- nosuch(X)"); err == nil {
		t.Error("unknown relation should error")
	}
	if _, err := s.QueryText("q(X) :- "); err == nil {
		t.Error("parse error should propagate")
	}
	if _, err := cms.RelationSchema("b2", 2); err != nil {
		t.Error(err)
	}
	if _, err := cms.RelationSchema("b2", 3); err == nil {
		t.Error("arity mismatch should error")
	}
}

// The big consistency property: under any feature combination, session
// answers equal direct evaluation against the remote data.
func TestCMSConsistencyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	features := []Features{
		{},
		{ExactMatch: true, ResultCaching: true},
		{Subsumption: true, ResultCaching: true},
		{Subsumption: true, ExactMatch: true, ResultCaching: true, Lazy: true},
		AllFeatures(),
	}
	for fi, f := range features {
		e, src := fixtureEngine(t, int64(50+fi), 25)
		cms := newCMS(t, e, Options{Features: f, CacheBytes: 50_000})
		s := cms.BeginSession(nil).(*Session)
		for trial := 0; trial < 60; trial++ {
			q := randomCacheQuery(rng)
			if q == nil {
				continue
			}
			stream, err := s.Query(q)
			if err != nil {
				t.Fatalf("features %d: query %s: %v", fi, q, err)
			}
			got := stream.Drain("got")
			want, err := caql.Eval(q, src)
			if err != nil {
				t.Fatal(err)
			}
			if !got.EqualAsSet(want) {
				t.Fatalf("features %+v: inconsistent answer for %s\ngot %v\nwant %v",
					f, q, relation.DistinctRel(got).Sort(), relation.DistinctRel(want).Sort())
			}
		}
		s.End()
	}
}

func randomCacheQuery(rng *rand.Rand) *caql.Query {
	preds := []struct {
		name  string
		arity int
	}{{"b1", 2}, {"b2", 2}, {"b3", 3}}
	varsPool := []string{"X", "Y", "Z", "W"}
	var body []logic.Atom
	n := 1 + rng.Intn(2)
	for i := 0; i < n; i++ {
		p := preds[rng.Intn(len(preds))]
		args := make([]logic.Term, p.arity)
		for j := range args {
			switch rng.Intn(6) {
			case 0:
				args[j] = logic.CInt(int64(rng.Intn(8)))
			case 1:
				args[j] = logic.CStr(string(rune('a' + rng.Intn(4))))
			default:
				args[j] = logic.V(varsPool[rng.Intn(len(varsPool))])
			}
		}
		body = append(body, logic.A(p.name, args...))
	}
	varSet := logic.VarsOf(body)
	var head []logic.Term
	for _, v := range varsPool {
		if varSet[v] {
			head = append(head, logic.V(v))
		}
	}
	if len(head) == 0 {
		return nil
	}
	q := caql.NewQuery(logic.A("q", head...), body)
	if q.Validate() != nil {
		return nil
	}
	// Type sanity: b1.x and b3.y are strings; comparing across kinds is fine
	// under the total order, so no further filtering is needed.
	return q
}

func TestGeneratorElementUpgrade(t *testing.T) {
	def := caql.MustParse("g(X) :- b2(X, Y)")
	produced := 0
	src := relation.IteratorFunc(func() (relation.Tuple, bool) {
		if produced >= 5 {
			return nil, false
		}
		produced++
		return relation.Tuple{relation.Int(int64(produced))}, true
	})
	schema := relation.NewSchema(relation.Attr{Name: "X", Kind: relation.KindInt})
	e := newGeneratorElement(1, def, schema, src)
	if e.Mode != ModeGenerator || e.Materialized() {
		t.Fatal("fresh generator element state wrong")
	}
	it := e.Iter()
	it.Next()
	if produced != 1 {
		t.Fatalf("generator should be lazy, produced %d", produced)
	}
	ext := e.Extension()
	if e.Mode != ModeExtension || ext.Len() != 5 || produced != 5 {
		t.Fatalf("upgrade wrong: mode=%v len=%d produced=%d", e.Mode, ext.Len(), produced)
	}
}

func TestManagerExactAndPredIndex(t *testing.T) {
	m := NewManager(0)
	def := caql.MustParse("g(X, Y) :- b2(X, Y)")
	ext := relation.New("g", relation.NewSchema(
		relation.Attr{Name: "X", Kind: relation.KindInt},
		relation.Attr{Name: "Y", Kind: relation.KindInt}))
	e := newExtensionElement(m.NewElementID(), def, ext)
	if !m.Insert(e) {
		t.Fatal("insert failed")
	}
	if m.ExactMatch(caql.MustParse("h(P, Q) :- b2(P, Q)")) == nil {
		t.Fatal("alpha-variant should exact-match")
	}
	if got := m.CandidatesFor(caql.MustParse("q(A) :- b2(A, B) & b1(A, C)")); len(got) != 1 {
		t.Fatalf("candidates = %d", len(got))
	}
	if got := m.CandidatesFor(caql.MustParse("q(A) :- b9(A)")); len(got) != 0 {
		t.Fatalf("unrelated candidates = %d", len(got))
	}
}
