package cache

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/advice"
	"repro/internal/caql"
	"repro/internal/relation"
	"repro/internal/remotedb"
)

// newResilientTCPCMS builds a CMS over ResilientClient(TCPClient-with-redial)
// against a live server for the fixture engine, returning the CMS and the
// server's address for restarts.
func newResilientTCPCMS(t *testing.T, seed int64) (*CMS, *remotedb.Server, string, caql.MapSource) {
	t.Helper()
	engine, src := fixtureEngine(t, seed, 25)
	srv := remotedb.NewServer(engine)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	costs := remotedb.DefaultCosts()
	tcp, err := remotedb.DialTCPOpts(addr, remotedb.TCPOptions{
		Costs:          costs,
		Redial:         true,
		DialTimeout:    500 * time.Millisecond,
		RequestTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	rc := remotedb.NewResilientClient(tcp, remotedb.Resilience{
		Deadline:        time.Second,
		MaxRetries:      1,
		BaseBackoff:     time.Millisecond,
		MaxBackoff:      5 * time.Millisecond,
		BreakerFailures: 1,
		BreakerCooldown: 100 * time.Millisecond,
	})
	cms := New(rc, Options{Features: AllFeatures(), Costs: costs})
	return cms, srv, addr, src
}

// TestDegradedCacheOnlyThenRecovery is the end-to-end fault story: kill the
// server mid-session, verify cached/subsumable queries still answer
// (degraded mode), verify remote-needing queries fail fast with the typed
// ErrRemoteUnavailable, then restart the server and verify the SAME session
// recovers without a new BeginSession.
func TestDegradedCacheOnlyThenRecovery(t *testing.T) {
	cms, srv, addr, src := newResilientTCPCMS(t, 81)
	s := cms.BeginSession(nil).(*Session)
	defer s.End()

	// Warm the cache over the live server.
	warm := `q(X, Y) :- b2(X, Y)`
	got := drainQ(t, s, warm)
	want, err := caql.Eval(caql.MustParse(warm), src)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualAsSet(want) {
		t.Fatal("warm answer wrong")
	}
	// Also warm a b3 slice so a subsumable variant is answerable later, and
	// so b3's schema is in the RDI schema cache.
	warm3 := `r(X, Z) :- b3(X, "a", Z)`
	drainQ(t, s, warm3)

	// ---- Kill the server mid-session. ----
	srv.Close()

	// A query that truly needs the remote fails fast with the typed error.
	start := time.Now()
	_, err = s.QueryText(`miss(X, Z) :- b3(X, "b", Z)`)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("remote-needing query should fail with the server down")
	}
	if !errors.Is(err, remotedb.ErrRemoteUnavailable) {
		t.Fatalf("want ErrRemoteUnavailable, got %v", err)
	}
	if elapsed > 8*time.Second {
		t.Fatalf("failure took %v; deadlines did not bound it", elapsed)
	}
	if !cms.Degraded() {
		t.Fatal("CMS should report degraded after the remote failure")
	}

	// Previously cached queries still answer, from the cache, while down.
	remoteBefore := cms.Stats().RemoteRequests
	got = drainQ(t, s, warm) // exact repeat
	if !got.EqualAsSet(want) {
		t.Fatal("degraded exact-hit answer wrong")
	}
	// A strictly narrower query is served via subsumption from the cached
	// b3 slice — no remote round trip.
	sub := drainQ(t, s, `rs(Z) :- b3(1, "a", Z)`)
	wantSub, err := caql.Eval(caql.MustParse(`rs(Z) :- b3(1, "a", Z)`), src)
	if err != nil {
		t.Fatal(err)
	}
	if !sub.EqualAsSet(wantSub) {
		t.Fatal("degraded subsumption answer wrong")
	}
	st := cms.Stats()
	if st.RemoteRequests != remoteBefore {
		t.Fatal("degraded hits must not issue remote requests")
	}
	if st.DegradedHits < 2 {
		t.Fatalf("DegradedHits = %d, want >= 2", st.DegradedHits)
	}
	if st.RemoteFailures == 0 {
		t.Fatal("RemoteFailures should count the failed fetch")
	}
	if st.BreakerOpens == 0 {
		t.Fatal("breaker should have opened")
	}

	// Fail-fast: with the breaker open, a remote-needing query errors
	// immediately (no dial/deadline wait).
	start = time.Now()
	if _, err := s.QueryText(`miss2(X, Z) :- b3(X, "c", Z)`); !errors.Is(err, remotedb.ErrRemoteUnavailable) {
		t.Fatalf("want fail-fast ErrRemoteUnavailable, got %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("open breaker did not fail fast")
	}

	// ---- Restart the server on the same address. ----
	engineBack, _ := fixtureEngineFromSource(t, src)
	srv2 := remotedb.NewServer(engineBack)
	if _, err := srv2.Listen(addr); err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	defer srv2.Close()
	time.Sleep(150 * time.Millisecond) // let the breaker cooldown elapse

	// The SAME session recovers: the half-open probe redials and succeeds.
	rec := drainQ(t, s, `miss(X, Z) :- b3(X, "b", Z)`)
	wantRec, err := caql.Eval(caql.MustParse(`miss(X, Z) :- b3(X, "b", Z)`), src)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.EqualAsSet(wantRec) {
		t.Fatal("post-recovery answer wrong")
	}
	if cms.Degraded() {
		t.Fatal("CMS should leave degraded mode after recovery")
	}
}

// fixtureEngineFromSource loads the fixture relations into a fresh engine
// (the "restarted server" has the same database).
func fixtureEngineFromSource(t *testing.T, src caql.MapSource) (*remotedb.Engine, caql.MapSource) {
	t.Helper()
	e := remotedb.NewEngine()
	for _, r := range src {
		e.LoadTable(r)
	}
	return e, src
}

// opCountingClient counts how many times each remote op reaches the wrapped
// client (placed between ResilientClient and the transport, it sees exactly
// the requests the CMS actually issued past the breaker).
type opCountingClient struct {
	remotedb.Client
	mu    sync.Mutex
	calls map[string]int
}

func (c *opCountingClient) note(op string) {
	c.mu.Lock()
	if c.calls == nil {
		c.calls = make(map[string]int)
	}
	c.calls[op]++
	c.mu.Unlock()
}

func (c *opCountingClient) count(op string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls[op]
}

func (c *opCountingClient) RelationSchema(name string, arity int) (*relation.Schema, error) {
	c.note("schema:" + name)
	return c.Client.RelationSchema(name, arity)
}

// TestDegradedSuppressesSpeculativeWork: while the remote is down, the CMS
// must not burn breaker probes on speculative work — prefetch of follower
// views and eager query generalization are suppressed; only demand queries
// touch the remote path (and fail fast there).
func TestDegradedSuppressesSpeculativeWork(t *testing.T) {
	engine, _ := fixtureEngine(t, 82, 20)
	costs := remotedb.DefaultCosts()
	fc := remotedb.NewFaultClient(remotedb.NewInProcClient(engine, costs), remotedb.FaultConfig{Seed: 3})
	counter := &opCountingClient{Client: fc}
	rc := remotedb.NewResilientClient(counter, remotedb.Resilience{
		MaxRetries:      -1,
		BreakerFailures: 1,
		BreakerCooldown: time.Minute,
		Sleep:           func(time.Duration) {},
	})
	cms := New(rc, Options{Features: AllFeatures(), Costs: costs, ThinkTimeMS: 10})
	// d3's base relation does not exist, so its prefetch is attempted on
	// every d2 answer (nothing ever gets cached for it) — a per-query probe
	// of whether the CMS still speculates.
	adv := advice.MustParse(`
		view d2(X^, Y?) :- b2(X, Y).
		view d3(Z^, Y?) :- nosuch(Y, Z).
		path (d2(X^, Y?), d3(Z^, Y?))<1,1>.
	`)
	s := cms.BeginSession(adv).(*Session)
	defer s.End()

	// Healthy: each d2 answer attempts the follower prefetch (visible as a
	// schema lookup for the missing base relation).
	drainQ(t, s, `d2(X, 1) :- b2(X, 1)`)
	s.waitPrefetches() // prefetches are asynchronous; let the probe land
	if counter.count("schema:nosuch") == 0 {
		t.Fatal("healthy session should attempt the follower prefetch")
	}
	drainQ(t, s, `d2(X, 1) :- b2(X, 1)`) // exact repeat: hit + prefetch attempt
	s.waitPrefetches()
	healthyProbes := counter.count("schema:nosuch")
	if healthyProbes < 2 {
		t.Fatalf("nosuch schema probes = %d, want >= 2", healthyProbes)
	}

	// Take the remote down and trip the breaker with a demand query.
	fc.SetDown(true)
	if _, err := s.QueryText(`nope(X, Z) :- b3(X, "zz", Z)`); err == nil {
		t.Fatal("expected failure with remote down")
	}
	if !cms.Degraded() {
		t.Fatal("should be degraded")
	}

	// A cached query while degraded: answered as a DegradedHit, with NO
	// speculative breaker traffic (no fast-fails beyond what the demand
	// queries cause) and nothing reaching the transport.
	ff0 := rc.ResilienceStats().FastFails
	drainQ(t, s, `d2(X, 1) :- b2(X, 1)`)
	if got := rc.ResilienceStats().FastFails; got != ff0 {
		t.Fatalf("prefetch not suppressed: %d breaker fast-fails during a cache hit", got-ff0)
	}
	if counter.count("schema:nosuch") != healthyProbes {
		t.Fatal("prefetch reached the transport while degraded")
	}
	if cms.Stats().DegradedHits == 0 {
		t.Fatal("cached answer while degraded should count as DegradedHit")
	}

	// Generalization is likewise suppressed: sibling instances of the same
	// generalized form would normally trigger a wide eager fetch; while
	// degraded the second sibling costs exactly one fast-fail (the demand
	// fetch), not two (generalization + demand).
	if _, err := s.QueryText(`c1(X, Z) :- b3(X, "x", Z)`); err == nil {
		t.Fatal("demand query should fail while down")
	}
	ff1 := rc.ResilienceStats().FastFails
	if _, err := s.QueryText(`c2(X, Z) :- b3(X, "y", Z)`); err == nil {
		t.Fatal("sibling demand query should fail while down")
	}
	if got := rc.ResilienceStats().FastFails - ff1; got != 1 {
		t.Fatalf("sibling query caused %d breaker interactions, want 1 (generalization suppressed)", got)
	}
}
