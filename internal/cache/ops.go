package cache

import (
	"context"
	"fmt"

	"repro/internal/bridge"
	"repro/internal/caql"
	"repro/internal/relation"
)

// Extended CAQL operations evaluated by the CMS itself. Section 5.3.3(d):
// "the DBMS and the CMS do not support the same set of operations (the
// remote DBMS does not support all CAQL operations, but the CMS does)" —
// union, aggregation (the AGG second-order predicate), and the fixed-point
// operator the paper proposes for compiled data access programs (Section 2:
// "we propose to use second-order templates along with specialized operators
// (e.g., a fixed point operator)").
//
// Each operation decomposes into conjunctive subqueries answered through the
// normal planning path (cache reuse, generalization, prefetching all apply),
// with the extra operator applied locally.

// QueryUnion answers a union of conjunctive queries with set semantics.
func (s *Session) QueryUnion(u *caql.Union) (*bridge.Stream, error) {
	return s.QueryUnionCtx(context.Background(), u)
}

// QueryUnionCtx is QueryUnion under the caller's context, which governs every
// branch subquery.
func (s *Session) QueryUnionCtx(ctx context.Context, u *caql.Union) (*bridge.Stream, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	var out *relation.Relation
	for _, q := range u.Queries {
		stream, err := s.QueryCtx(ctx, q)
		if err != nil {
			return nil, err
		}
		part, err := stream.DrainErr(q.Name())
		if err != nil {
			// A canceled branch would silently shrink the union; abort instead.
			return nil, err
		}
		if out == nil {
			out = relation.New(u.Queries[0].Name(), part.Schema())
		}
		for _, tu := range part.Tuples() {
			out.MustAppend(tu)
		}
	}
	s.advanceLocal(s.cms.opts.Costs.PerLocalOp * float64(out.Len()))
	return bridge.NewEagerStream(relation.DistinctRel(out)), nil
}

// QueryAgg answers an aggregation over a conjunctive query (the AGG special
// predicate): the inner query goes through the planner, the grouping and
// aggregation run in the CMS.
func (s *Session) QueryAgg(a *caql.AggQuery) (*bridge.Stream, error) {
	return s.QueryAggCtx(context.Background(), a)
}

// QueryAggCtx is QueryAgg under the caller's context.
func (s *Session) QueryAggCtx(ctx context.Context, a *caql.AggQuery) (*bridge.Stream, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	stream, err := s.QueryCtx(ctx, a.Inner)
	if err != nil {
		return nil, err
	}
	inner, err := stream.DrainErr(a.Inner.Name())
	if err != nil {
		// Aggregating a truncated inner stream would fabricate wrong totals.
		return nil, err
	}
	out := relation.AggregateRel(a.Inner.Name(), inner, a.GroupBy, a.Specs)
	s.advanceLocal(s.cms.opts.Costs.PerLocalOp * float64(inner.Len()+out.Len()))
	return bridge.NewEagerStream(out), nil
}

// QueryFixpoint computes the transitive closure of a binary view: the least
// fixpoint of R ∪ (R ∘ TC). The base view is answered through the planner;
// the semi-naive iteration runs in the CMS, and the closure is memoized per
// session under the view's canonical form.
func (s *Session) QueryFixpoint(q *caql.Query) (*bridge.Stream, error) {
	return s.QueryFixpointCtx(context.Background(), q)
}

// QueryFixpointCtx is QueryFixpoint under the caller's context; the
// semi-naive iteration itself checkpoints the context every round.
func (s *Session) QueryFixpointCtx(ctx context.Context, q *caql.Query) (*bridge.Stream, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if len(q.Head.Args) != 2 {
		return nil, fmt.Errorf("cache: fixpoint requires a binary view, got arity %d", len(q.Head.Args))
	}
	key := "tc:" + q.Canonical()
	if s.tcMemo == nil {
		s.tcMemo = make(map[string]*relation.Relation)
	}
	if memo, ok := s.tcMemo[key]; ok {
		s.cms.stats.CacheHits.Add(1)
		return bridge.NewEagerStream(memo), nil
	}

	stream, err := s.QueryCtx(ctx, q)
	if err != nil {
		return nil, err
	}
	base, err := stream.DrainErr(q.Name())
	if err != nil {
		return nil, err
	}
	base = relation.DistinctRel(base)

	// Semi-naive transitive closure: delta ∘ base joined each round.
	closure := base.Clone()
	seen := relation.NewTupleSet(base.Len())
	for _, tu := range base.Tuples() {
		seen.Add(tu)
	}
	delta := base
	var ops int
	for delta.Len() > 0 {
		if err := bridge.CtxError(ctx); err != nil {
			return nil, err
		}
		next := relation.New(q.Name(), base.Schema())
		joined := relation.HashJoin(delta.Iter(), base.Iter(), []relation.JoinCond{{Left: 1, Right: 0}})
		for {
			tu, ok := joined.Next()
			if !ok {
				break
			}
			ops++
			out := relation.Tuple{tu[0], tu[3]}
			if seen.Add(out) {
				next.MustAppend(out)
				closure.MustAppend(out)
			}
		}
		ops += delta.Len() + base.Len()
		delta = next
	}
	s.advanceLocal(s.cms.opts.Costs.PerLocalOp * float64(ops))
	s.tcMemo[key] = closure
	return bridge.NewEagerStream(closure), nil
}
