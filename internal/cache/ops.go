package cache

import (
	"fmt"

	"repro/internal/bridge"
	"repro/internal/caql"
	"repro/internal/relation"
)

// Extended CAQL operations evaluated by the CMS itself. Section 5.3.3(d):
// "the DBMS and the CMS do not support the same set of operations (the
// remote DBMS does not support all CAQL operations, but the CMS does)" —
// union, aggregation (the AGG second-order predicate), and the fixed-point
// operator the paper proposes for compiled data access programs (Section 2:
// "we propose to use second-order templates along with specialized operators
// (e.g., a fixed point operator)").
//
// Each operation decomposes into conjunctive subqueries answered through the
// normal planning path (cache reuse, generalization, prefetching all apply),
// with the extra operator applied locally.

// QueryUnion answers a union of conjunctive queries with set semantics.
func (s *Session) QueryUnion(u *caql.Union) (*bridge.Stream, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	var out *relation.Relation
	for _, q := range u.Queries {
		stream, err := s.Query(q)
		if err != nil {
			return nil, err
		}
		part := stream.Drain(q.Name())
		if out == nil {
			out = relation.New(u.Queries[0].Name(), part.Schema())
		}
		for _, tu := range part.Tuples() {
			out.MustAppend(tu)
		}
	}
	s.advanceLocal(s.cms.opts.Costs.PerLocalOp * float64(out.Len()))
	return bridge.NewEagerStream(relation.DistinctRel(out)), nil
}

// QueryAgg answers an aggregation over a conjunctive query (the AGG special
// predicate): the inner query goes through the planner, the grouping and
// aggregation run in the CMS.
func (s *Session) QueryAgg(a *caql.AggQuery) (*bridge.Stream, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	stream, err := s.Query(a.Inner)
	if err != nil {
		return nil, err
	}
	inner := stream.Drain(a.Inner.Name())
	out := relation.AggregateRel(a.Inner.Name(), inner, a.GroupBy, a.Specs)
	s.advanceLocal(s.cms.opts.Costs.PerLocalOp * float64(inner.Len()+out.Len()))
	return bridge.NewEagerStream(out), nil
}

// QueryFixpoint computes the transitive closure of a binary view: the least
// fixpoint of R ∪ (R ∘ TC). The base view is answered through the planner;
// the semi-naive iteration runs in the CMS, and the closure is memoized per
// session under the view's canonical form.
func (s *Session) QueryFixpoint(q *caql.Query) (*bridge.Stream, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if len(q.Head.Args) != 2 {
		return nil, fmt.Errorf("cache: fixpoint requires a binary view, got arity %d", len(q.Head.Args))
	}
	key := "tc:" + q.Canonical()
	if s.tcMemo == nil {
		s.tcMemo = make(map[string]*relation.Relation)
	}
	if memo, ok := s.tcMemo[key]; ok {
		s.cms.stats.CacheHits.Add(1)
		return bridge.NewEagerStream(memo), nil
	}

	stream, err := s.Query(q)
	if err != nil {
		return nil, err
	}
	base := relation.DistinctRel(stream.Drain(q.Name()))

	// Semi-naive transitive closure: delta ∘ base joined each round.
	closure := base.Clone()
	seen := relation.NewTupleSet(base.Len())
	for _, tu := range base.Tuples() {
		seen.Add(tu)
	}
	delta := base
	var ops int
	for delta.Len() > 0 {
		next := relation.New(q.Name(), base.Schema())
		joined := relation.HashJoin(delta.Iter(), base.Iter(), []relation.JoinCond{{Left: 1, Right: 0}})
		for {
			tu, ok := joined.Next()
			if !ok {
				break
			}
			ops++
			out := relation.Tuple{tu[0], tu[3]}
			if seen.Add(out) {
				next.MustAppend(out)
				closure.MustAppend(out)
			}
		}
		ops += delta.Len() + base.Len()
		delta = next
	}
	s.advanceLocal(s.cms.opts.Costs.PerLocalOp * float64(ops))
	s.tcMemo[key] = closure
	return bridge.NewEagerStream(closure), nil
}
