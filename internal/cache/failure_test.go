package cache

import (
	"sync"
	"testing"

	"repro/internal/advice"
	"repro/internal/caql"
)

// Prefetching is best-effort: a follower view over a nonexistent relation
// must not fail the foreground query (Section 5.3.1's prefetch is an
// optimization, never a correctness dependency).
func TestPrefetchFailureIsSilent(t *testing.T) {
	e, _ := fixtureEngine(t, 71, 20)
	adv := advice.MustParse(`
		view d1(Y^) :- b1("a", Y).
		view d2(X^, Y?) :- nosuch(X, Y).
		path (d1(Y^), d2(X^, Y?))<1,1>.
	`)
	cms := newCMS(t, e, Options{Features: AllFeatures(), ThinkTimeMS: 10})
	s := cms.BeginSession(adv).(*Session)
	defer s.End()
	// d1 answers fine; the prefetch of d2 (unknown relation) fails silently.
	out := drainQ(t, s, `d1(Y) :- b1("a", Y)`)
	if out.Len() == 0 {
		t.Fatal("foreground query should succeed")
	}
	s.waitPrefetches() // let the asynchronous prefetch attempt resolve
	if cms.Stats().Prefetches != 0 {
		t.Fatal("failed prefetch must not count as a prefetch")
	}
}

// A mid-session error (unknown relation) leaves the session usable and the
// cache consistent.
func TestMidSessionErrorRecovery(t *testing.T) {
	e, _ := fixtureEngine(t, 72, 20)
	cms := newCMS(t, e, Options{Features: AllFeatures()})
	s := cms.BeginSession(nil).(*Session)
	defer s.End()
	drainQ(t, s, "q(X, Y) :- b2(X, Y)")
	if _, err := s.QueryText("bad(X) :- missing(X)"); err == nil {
		t.Fatal("unknown relation should error")
	}
	// Session still answers, and the earlier element still hits.
	before := cms.Stats().RemoteRequests
	drainQ(t, s, "q2(P, Q) :- b2(P, Q)")
	if cms.Stats().RemoteRequests != before {
		t.Fatal("session should recover and serve from cache")
	}
}

// Concurrent sessions over one CMS must be safe (each session is
// single-threaded; the CMS and manager are shared).
func TestConcurrentSessions(t *testing.T) {
	e, src := fixtureEngine(t, 73, 40)
	cms := newCMS(t, e, Options{Features: AllFeatures(), CacheBytes: 200_000})
	want, err := caql.Eval(caql.MustParse(`q(X, Z) :- b3(X, "a", Z)`), src)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := cms.BeginSession(nil)
			defer s.End()
			for i := 0; i < 20; i++ {
				stream, err := s.QueryText(`q(X, Z) :- b3(X, "a", Z)`)
				if err != nil {
					errs <- err.Error()
					return
				}
				got := stream.Drain("got")
				if !got.EqualAsSet(want) {
					errs <- "inconsistent concurrent answer"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
