package cache

import (
	"sync"

	"repro/internal/advice"
	"repro/internal/caql"
)

// The asynchronous prefetch pipeline. The planner's prefetch decisions
// (Section 5.3.1: items in the same sequence grouping as an observed query
// are "likely to be evaluated when the first item is evaluated") are enqueued
// onto a bounded worker pool instead of being fetched on the query path, so
// predicted fetches overlap the IE's think time in wall-clock terms, not just
// on the simulated clock. The pool is bounded twice: a fixed worker count and
// a fixed queue; when the queue is full the prefetch is dropped (best-effort
// by definition) and counted in PrefetchDrops.
//
// Determinism contract: a session waits for its own in-flight prefetches at
// the top of its next query (think time is when the fetches were "running"),
// so per-session stats and sim-clock accounting match the serial execution.

// prefetchJob is one predicted fetch: the query, the view spec it
// instantiates, and the issuing session's clock at issue time.
type prefetchJob struct {
	s        *Session
	q        *caql.Query
	vs       *advice.ViewSpec
	issueSim float64
	canon    string
}

// prefetchPool is a bounded, dynamically-sized worker pool. Workers are
// spawned on demand up to max and exit when the queue drains, so an idle CMS
// holds no goroutines.
type prefetchPool struct {
	jobs chan prefetchJob

	mu     sync.Mutex
	active int
	max    int
}

func newPrefetchPool(workers int) *prefetchPool {
	return &prefetchPool{jobs: make(chan prefetchJob, 4*workers), max: workers}
}

// submit enqueues a job, spawning a worker if below the cap. It reports false
// (job dropped) when the queue is saturated.
func (p *prefetchPool) submit(j prefetchJob) bool {
	select {
	case p.jobs <- j:
	default:
		return false
	}
	p.mu.Lock()
	if p.active < p.max {
		p.active++
		go p.worker()
	}
	p.mu.Unlock()
	return true
}

func (p *prefetchPool) worker() {
	for {
		select {
		case j := <-p.jobs:
			j.run()
		default:
			// Re-check under the lock so a job enqueued between the failed
			// receive and the exit decision is not stranded without a worker.
			p.mu.Lock()
			select {
			case j := <-p.jobs:
				p.mu.Unlock()
				j.run()
			default:
				p.active--
				p.mu.Unlock()
				return
			}
		}
	}
}

// run executes the predicted fetch and, on success, installs the result as a
// session-private cache element. The element becomes visible to other
// sessions only once the issuing session's clock passes readyAtSim
// (materialization gating; see Element.ownerSID).
func (j prefetchJob) run() {
	s := j.s
	c := s.cms
	defer s.pfWG.Done()
	defer func() {
		s.pmu.Lock()
		delete(s.inflight, j.canon)
		s.pmu.Unlock()
	}()
	// Panic isolation: a panicking prefetch (a speculative fetch by
	// definition) must not take down its worker, let alone the process. The
	// recover is registered after the bookkeeping defers so those still run.
	defer func() {
		if r := recover(); r != nil {
			c.stats.PanicsRecovered.Add(1)
		}
	}()
	if s.ctx.Err() != nil {
		return // session ended while the job sat in the queue
	}
	ext, sim, err := c.rdi.FetchCtx(s.ctx, j.q)
	if err != nil {
		return // prefetching is best-effort; failed fetches are not counted
	}
	c.stats.Prefetches.Add(1)
	e := newExtensionElement(c.mgr.NewElementID(), j.q.Clone(), ext)
	if j.vs != nil {
		e.AdviceName = j.vs.Name()
	}
	e.prefetched = true
	e.builtEpoch = c.rdi.ObservedEpoch()
	// The fetch proceeds during IE think time: the element becomes ready sim
	// ms after the issue point without charging response time.
	e.readyAtSim = j.issueSim + sim
	e.ownerSID.Store(s.id)
	if c.opts.Features.ResultCaching {
		c.mgr.Insert(e)
	}
	s.pmu.Lock()
	s.private = append(s.private, e)
	s.pmu.Unlock()
}

// enqueuePrefetch registers a predicted fetch with the pool, deduplicating
// against this session's in-flight prefetches. Saturation drops are counted.
func (s *Session) enqueuePrefetch(pq *caql.Query, vs *advice.ViewSpec) {
	c := s.cms
	canon := pq.Canonical()
	s.pmu.Lock()
	if s.inflight == nil {
		s.inflight = make(map[string]bool)
	}
	if s.inflight[canon] {
		s.pmu.Unlock()
		return
	}
	s.inflight[canon] = true
	s.pmu.Unlock()

	s.pfWG.Add(1)
	job := prefetchJob{s: s, q: pq, vs: vs, issueSim: s.simNow, canon: canon}
	if !c.pf.submit(job) {
		s.pmu.Lock()
		delete(s.inflight, canon)
		s.pmu.Unlock()
		s.pfWG.Done()
		c.stats.PrefetchDrops.Add(1)
	}
}

// waitPrefetches blocks until every prefetch this session has issued is
// complete (inserted or abandoned). Called at the top of each query — the
// fetches ran "during" the think time that just elapsed — and at session end.
func (s *Session) waitPrefetches() { s.pfWG.Wait() }

// publishReady publishes the session's private prefetched elements whose
// in-flight period has passed on the session clock, making them visible to
// every other session.
func (s *Session) publishReady() {
	s.pmu.Lock()
	kept := s.private[:0]
	for _, e := range s.private {
		if e.readyAtSim <= s.simNow {
			e.publish()
		} else {
			kept = append(kept, e)
		}
	}
	s.private = kept
	s.pmu.Unlock()
}

// readyRemainder returns how much longer (in sim ms) the session must wait
// before the element's data is present. Only the owning session can observe a
// positive remainder: for every other session the element is either invisible
// (still private) or published, i.e. fully materialized.
func (s *Session) readyRemainder(e *Element) float64 {
	if e.ownerSID.Load() == s.id && e.readyAtSim > s.simNow {
		return e.readyAtSim - s.simNow
	}
	return 0
}
