package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/caql"
	"repro/internal/relation"
	"repro/internal/remotedb"
)

// RDI is the Remote DBMS Interface (Figure 5): it translates CAQL queries to
// the remote DML, issues them over a Client, buffers results, and keeps a
// local copy of the remote database schema (Section 3: "the Cache Manager
// manages ... (a copy of) the remote database schema").
type RDI struct {
	client remotedb.Client

	mu      sync.Mutex
	schemas map[string]*relation.Schema
	down    bool // last remote call failed at the transport level
}

// NewRDI wraps a remote client.
func NewRDI(client remotedb.Client) *RDI {
	return &RDI{client: client, schemas: make(map[string]*relation.Schema)}
}

// Available reports whether the remote DBMS is believed reachable. When the
// client tracks its own health (remotedb.ResilientClient's circuit breaker),
// that verdict wins; otherwise the RDI remembers whether the last remote
// call failed at the transport level. While unavailable the CMS serves what
// it can from the cache (degraded mode) and suppresses prefetch/eager work.
func (r *RDI) Available() bool {
	if a, ok := r.client.(remotedb.AvailabilityReporter); ok {
		return a.Available()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return !r.down
}

// noteRemote records the outcome of a remote call for availability tracking.
// Caller cancellation and expired deadlines say nothing about remote health,
// so they leave the verdict unchanged.
func (r *RDI) noteRemote(err error) {
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		return
	}
	transientDown := err != nil && (remotedb.IsUnavailable(err) || remotedb.IsTransient(err))
	r.mu.Lock()
	r.down = transientDown
	r.mu.Unlock()
}

// RelationSchema implements caql.SchemaSource with a schema cache.
func (r *RDI) RelationSchema(name string, arity int) (*relation.Schema, error) {
	r.mu.Lock()
	sch, ok := r.schemas[name]
	r.mu.Unlock()
	if !ok {
		var err error
		sch, err = r.client.RelationSchema(name, -1)
		r.noteRemote(err)
		if err != nil {
			return nil, err
		}
		r.mu.Lock()
		r.schemas[name] = sch
		r.mu.Unlock()
	}
	if arity >= 0 && sch.Arity() != arity {
		return nil, fmt.Errorf("cache: relation %s has arity %d, query uses %d", name, sch.Arity(), arity)
	}
	return sch, nil
}

// Fetch evaluates a CAQL conjunctive query entirely on the remote DBMS:
// translate, execute, reassemble. It returns the result extension and the
// simulated time of the request.
func (r *RDI) Fetch(q *caql.Query) (*relation.Relation, float64, error) {
	return r.FetchCtx(context.Background(), q)
}

// FetchCtx is Fetch under a context: cancellation and deadlines propagate
// into the remote call (retry/backoff loops, dial, and socket reads when the
// client supports remotedb.ContextClient; a pre-flight check otherwise).
func (r *RDI) FetchCtx(ctx context.Context, q *caql.Query) (*relation.Relation, float64, error) {
	tr, err := remotedb.TranslateCAQL(q, r)
	if err != nil {
		return nil, 0, err
	}
	res, err := remotedb.ExecContext(ctx, r.client, tr.SQL)
	r.noteRemote(err)
	if err != nil {
		return nil, 0, fmt.Errorf("cache: remote execution of %q: %w", tr.SQL, err)
	}
	schema, err := q.OutputSchema(r)
	if err != nil {
		return nil, 0, err
	}
	out, err := tr.Reassemble(q.Name(), schema, res.Rel)
	if err != nil {
		return nil, 0, err
	}
	return out, res.SimMS, nil
}

// Stats returns the client's cumulative transfer statistics.
func (r *RDI) Stats() remotedb.Stats { return r.client.Stats() }

// Resilience returns the client's fault-handling counters when the client
// keeps them (remotedb.ResilientClient).
func (r *RDI) Resilience() (remotedb.ResilienceStats, bool) {
	if rr, ok := r.client.(remotedb.ResilienceReporter); ok {
		return rr.ResilienceStats(), true
	}
	return remotedb.ResilienceStats{}, false
}

// Tables lists remote tables.
func (r *RDI) Tables() ([]string, error) { return r.client.Tables() }

// TableStats returns remote catalog statistics.
func (r *RDI) TableStats(name string) (remotedb.TableStats, error) {
	return r.client.TableStats(name)
}
