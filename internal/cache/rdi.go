package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/caql"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/remotedb"
)

// RDI is the Remote DBMS Interface (Figure 5): it translates CAQL queries to
// the remote DML, issues them over a Client, buffers results, and keeps a
// local copy of the remote database schema (Section 3: "the Cache Manager
// manages ... (a copy of) the remote database schema").
type RDI struct {
	client remotedb.Client
	// tracer records remote-fetch spans (nil: untraced). The span's context
	// flows into the client call, so the pooled v2 transport puts its trace ID
	// on the wire and the server's spans join the same trace.
	tracer *obs.Tracer

	mu      sync.Mutex
	schemas map[string]*relation.Schema
	down    bool // last remote call failed at the transport level
}

// NewRDI wraps a remote client.
func NewRDI(client remotedb.Client) *RDI {
	return &RDI{client: client, schemas: make(map[string]*relation.Schema)}
}

// Available reports whether the remote DBMS is believed reachable. When the
// client tracks its own health (remotedb.ResilientClient's circuit breaker),
// that verdict wins; otherwise the RDI remembers whether the last remote
// call failed at the transport level. While unavailable the CMS serves what
// it can from the cache (degraded mode) and suppresses prefetch/eager work.
func (r *RDI) Available() bool {
	if a, ok := r.client.(remotedb.AvailabilityReporter); ok {
		return a.Available()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return !r.down
}

// noteRemote records the outcome of a remote call for availability tracking.
// Caller cancellation and expired deadlines say nothing about remote health,
// so they leave the verdict unchanged.
func (r *RDI) noteRemote(err error) {
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		return
	}
	transientDown := err != nil && (remotedb.IsUnavailable(err) || remotedb.IsTransient(err))
	r.mu.Lock()
	r.down = transientDown
	r.mu.Unlock()
}

// RelationSchema implements caql.SchemaSource with a schema cache.
func (r *RDI) RelationSchema(name string, arity int) (*relation.Schema, error) {
	r.mu.Lock()
	sch, ok := r.schemas[name]
	r.mu.Unlock()
	if !ok {
		var err error
		sch, err = r.client.RelationSchema(name, -1)
		r.noteRemote(err)
		if err != nil {
			return nil, err
		}
		r.mu.Lock()
		r.schemas[name] = sch
		r.mu.Unlock()
	}
	if arity >= 0 && sch.Arity() != arity {
		return nil, fmt.Errorf("cache: relation %s has arity %d, query uses %d", name, sch.Arity(), arity)
	}
	return sch, nil
}

// Fetch evaluates a CAQL conjunctive query entirely on the remote DBMS:
// translate, execute, reassemble. It returns the result extension and the
// simulated time of the request.
func (r *RDI) Fetch(q *caql.Query) (*relation.Relation, float64, error) {
	return r.FetchCtx(context.Background(), q)
}

// FetchCtx is Fetch under a context: cancellation and deadlines propagate
// into the remote call (retry/backoff loops, dial, and socket reads when the
// client supports remotedb.ContextClient; a pre-flight check otherwise).
// On a stream-capable client the result is drained frame-by-frame through the
// bulk append path, so peak memory during transfer is one frame plus the
// growing result instead of two whole wire relations.
func (r *RDI) FetchCtx(ctx context.Context, q *caql.Query) (*relation.Relation, float64, error) {
	ctx, sp := r.tracer.Start(ctx, "cms.remote_fetch")
	sp.Set("query", q.Name())
	defer sp.End()
	if r.StreamCapable() {
		fs, err := r.FetchStreamCtx(ctx, q)
		if err != nil {
			return nil, 0, err
		}
		out, err := remotedb.DrainStream(q.Name(), fs)
		r.noteRemote(err)
		if err != nil {
			return nil, 0, fmt.Errorf("cache: remote execution of %q: %w", fs.sql, err)
		}
		return out, fs.SimMS(), nil
	}
	tr, err := remotedb.TranslateCAQL(q, r)
	if err != nil {
		return nil, 0, err
	}
	res, err := remotedb.ExecContext(ctx, r.client, tr.SQL)
	r.noteRemote(err)
	if err != nil {
		return nil, 0, fmt.Errorf("cache: remote execution of %q: %w", tr.SQL, err)
	}
	schema, err := q.OutputSchema(r)
	if err != nil {
		return nil, 0, err
	}
	out, err := tr.Reassemble(q.Name(), schema, res.Rel)
	if err != nil {
		return nil, 0, err
	}
	return out, res.SimMS, nil
}

// StreamCapable reports whether the remote client can deliver exec results
// incrementally (remotedb.StreamClient, i.e. the pooled v2 transport).
func (r *RDI) StreamCapable() bool {
	_, ok := r.client.(remotedb.StreamClient)
	return ok
}

// FetchStreamCtx evaluates a CAQL conjunctive query remotely and returns the
// result as a lazily reassembled tuple stream: translation and the header
// round trip happen eagerly (so establishment errors surface here), while
// tuple frames are decoded and reassembled into CAQL head rows only as the
// consumer pulls. The first result tuple is therefore available after one
// frame, and a consumer that stops early (LIMIT-style access, cancellation)
// tears down the remote producer via Close instead of paying for the full
// transfer.
func (r *RDI) FetchStreamCtx(ctx context.Context, q *caql.Query) (*FetchStream, error) {
	// Establishment span only: tuple delivery is pull-driven by the consumer,
	// so its duration would say more about the consumer than the remote.
	ctx, sp := r.tracer.Start(ctx, "cms.remote_stream")
	sp.Set("query", q.Name())
	defer sp.End()
	tr, err := remotedb.TranslateCAQL(q, r)
	if err != nil {
		return nil, err
	}
	schema, err := q.OutputSchema(r)
	if err != nil {
		return nil, err
	}
	st, err := remotedb.ExecStreamContext(ctx, r.client, tr.SQL)
	r.noteRemote(err)
	if err != nil {
		return nil, fmt.Errorf("cache: remote execution of %q: %w", tr.SQL, err)
	}
	return &FetchStream{rdi: r, inner: st, tr: tr, schema: schema, name: q.Name(), sql: tr.SQL}, nil
}

// FetchStream is a remote CAQL result delivered incrementally: the wire
// stream's SQL rows are reassembled into head rows tuple-at-a-time. It
// implements remotedb.TupleStream, so remotedb.DrainStream materializes it
// and bridge.NewStream surfaces its terminal error.
type FetchStream struct {
	rdi    *RDI
	inner  remotedb.TupleStream
	tr     *remotedb.Translation
	schema *relation.Schema
	name   string
	sql    string

	done     bool
	localErr error // reassembly failure (schema drift mid-stream)
}

// Next implements relation.Iterator.
func (f *FetchStream) Next() (relation.Tuple, bool) {
	if f.localErr != nil {
		return nil, false
	}
	row, ok := f.inner.Next()
	if !ok {
		if !f.done {
			f.done = true
			f.rdi.noteRemote(f.inner.Err())
		}
		return nil, false
	}
	t, err := f.tr.ReassembleTuple(row)
	if err != nil {
		f.localErr = err
		f.inner.Close()
		return nil, false
	}
	return t, true
}

// Schema implements remotedb.TupleStream with the CAQL output schema (not the
// SQL wire schema).
func (f *FetchStream) Schema() *relation.Schema { return f.schema }

// Name implements remotedb.TupleStream with the CAQL query name.
func (f *FetchStream) Name() string { return f.name }

// Err implements remotedb.TupleStream.
func (f *FetchStream) Err() error {
	if f.localErr != nil {
		return f.localErr
	}
	return f.inner.Err()
}

// Close implements remotedb.TupleStream, canceling the remote producer.
func (f *FetchStream) Close() error { return f.inner.Close() }

// Ops implements remotedb.TupleStream.
func (f *FetchStream) Ops() int64 { return f.inner.Ops() }

// SimMS implements remotedb.TupleStream.
func (f *FetchStream) SimMS() float64 { return f.inner.SimMS() }

// Stats returns the client's cumulative transfer statistics.
func (r *RDI) Stats() remotedb.Stats { return r.client.Stats() }

// Resilience returns the client's fault-handling counters when the client
// keeps them (remotedb.ResilientClient).
func (r *RDI) Resilience() (remotedb.ResilienceStats, bool) {
	if rr, ok := r.client.(remotedb.ResilienceReporter); ok {
		return rr.ResilienceStats(), true
	}
	return remotedb.ResilienceStats{}, false
}

// ObservedEpoch returns the highest backend catalog epoch any fetch through
// this interface has observed (0: the transport predates epochs). The QPO
// compares it against each cached element's build epoch to refuse serving
// views of a backend state the server has provably moved past.
func (r *RDI) ObservedEpoch() uint64 { return remotedb.ObservedEpoch(r.client) }

// Tables lists remote tables.
func (r *RDI) Tables() ([]string, error) { return r.client.Tables() }

// TableStats returns remote catalog statistics.
func (r *RDI) TableStats(name string) (remotedb.TableStats, error) {
	return r.client.TableStats(name)
}
