// Package cache implements BrAID's Cache Management System (Section 5 of
// the paper): a main-memory relational store of *views* (cache elements
// defined by CAQL expressions), a query planner/optimizer that reuses cached
// data through subsumption, an advice manager driving prefetching, indexing,
// replacement, generalization and lazy evaluation, an execution monitor for
// parallel cache/remote subqueries, and the Remote DBMS Interface that
// translates CAQL to the remote DML.
package cache

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/caql"
	"repro/internal/relation"
)

// Mode distinguishes the two representations of a relation in the cache
// (Section 5.1): a full extension, or a generator producing tuples on
// demand.
type Mode uint8

// Element representation modes.
const (
	ModeExtension Mode = iota
	ModeGenerator
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeGenerator {
		return "generator"
	}
	return "extension"
}

// Element is one cache element: a relation defined by a CAQL expression,
// stored as an extension or a (memoized) generator, with optional attribute
// indexes and bookkeeping for replacement decisions.
type Element struct {
	ID  int
	Def *caql.Query
	// AdviceName is the view specification the element instantiates or
	// generalizes, when known; it links the element to path-expression
	// predictions.
	AdviceName string

	Mode   Mode
	schema *relation.Schema
	ext    *relation.Relation // valid in ModeExtension
	memo   *relation.Memo     // valid in ModeGenerator

	indexes map[int]*relation.Index // by column
	// sorted holds co-existing, alternative representations of the same
	// extension (Section 5.2: "the case where alternative sortings are
	// required"); keyed by sort column, built on demand and memoized.
	sorted map[int]*relation.Relation

	// Replacement bookkeeping (Section 5.4: LRU modified by advice).
	lastUse int64
	hits    int64
	size    int64
	pinned  bool
	// readyAtSim is the virtual time at which the element's data is fully
	// present (prefetched elements may still be "in flight").
	readyAtSim float64
	// prefetched marks elements loaded ahead of demand by path-expression
	// advice.
	prefetched bool
	// selUses counts equality selections per column, driving heuristic
	// index builds on unadvised columns.
	selUses map[int]int
}

// noteSelection records an equality selection on a column (index heuristics).
func (e *Element) noteSelection(col int) {
	if e.selUses == nil {
		e.selUses = make(map[int]int)
	}
	e.selUses[col]++
}

// newExtensionElement builds an extension-mode element.
func newExtensionElement(id int, def *caql.Query, ext *relation.Relation) *Element {
	return &Element{
		ID:      id,
		Def:     def,
		Mode:    ModeExtension,
		schema:  ext.Schema(),
		ext:     ext,
		indexes: make(map[int]*relation.Index),
		size:    ext.SizeBytes(),
	}
}

// newGeneratorElement builds a generator-mode element over a source
// iterator; tuples are memoized as they are demanded.
func newGeneratorElement(id int, def *caql.Query, schema *relation.Schema, src relation.Iterator) *Element {
	return &Element{
		ID:      id,
		Def:     def,
		Mode:    ModeGenerator,
		schema:  schema,
		memo:    relation.NewMemo(src),
		indexes: make(map[int]*relation.Index),
	}
}

// Schema returns the element's schema.
func (e *Element) Schema() *relation.Schema { return e.schema }

// Iter returns an iterator over the element's tuples. For generator-mode
// elements this re-reads memoized tuples and produces further ones on
// demand.
func (e *Element) Iter() relation.Iterator {
	if e.Mode == ModeGenerator {
		return e.memo.Iter()
	}
	return e.ext.Iter()
}

// Extension forces materialization and returns the full extension, flipping
// a generator-mode element to extension mode (eager upgrade).
func (e *Element) Extension() *relation.Relation {
	if e.Mode == ModeGenerator {
		tuples := e.memo.DrainAll()
		e.ext = relation.FromTuples(e.Def.Name(), e.schema, tuples)
		e.Mode = ModeExtension
		e.memo = nil
		e.size = e.ext.SizeBytes()
	}
	return e.ext
}

// Materialized reports whether the element's data is fully present.
func (e *Element) Materialized() bool {
	return e.Mode == ModeExtension || e.memo.Exhausted()
}

// SizeBytes returns the current resource accounting for the element,
// including indexes.
func (e *Element) SizeBytes() int64 {
	n := e.size
	if e.Mode == ModeGenerator && e.memo != nil {
		n += int64(e.memo.Produced()) * 64
	}
	for _, ix := range e.indexes {
		n += ix.SizeBytes()
	}
	for _, r := range e.sorted {
		n += int64(8 * r.Len()) // shared tuples; count the slice overhead
	}
	return n
}

// SortedBy returns the extension ordered by the given column — a
// co-existing alternative representation of the same data, memoized so one
// build serves every later ordered use (Section 5.2). It forces
// materialization.
func (e *Element) SortedBy(col int) *relation.Relation {
	if r, ok := e.sorted[col]; ok {
		return r
	}
	if e.sorted == nil {
		e.sorted = make(map[int]*relation.Relation)
	}
	r := e.Extension().Clone().SortBy([]int{col})
	e.sorted[col] = r
	return r
}

// Index returns the element's index on the given column, building it if
// requested and absent. Index building requires materialization.
func (e *Element) Index(col int, build bool) *relation.Index {
	if ix, ok := e.indexes[col]; ok {
		return ix
	}
	if !build {
		return nil
	}
	ix := relation.BuildIndex(e.Extension(), []int{col})
	e.indexes[col] = ix
	return ix
}

// String renders a cache-model row for humans.
func (e *Element) String() string {
	return fmt.Sprintf("E%d[%s, %s, %dB, hits=%d] %s",
		e.ID, e.Mode, e.AdviceName, e.SizeBytes(), e.hits, strings.TrimSuffix(e.Def.String(), "."))
}

// Manager is the Cache Manager (Section 5.4): it stores and replaces cache
// elements (LRU modified by advice), tracks resources, and maintains the
// cache model. It is safe for concurrent use.
type Manager struct {
	mu       sync.Mutex
	budget   int64
	elements map[int]*Element
	byCanon  map[string]*Element // exact-match result cache index
	byPred   map[string][]*Element
	nextID   int
	tick     int64
	evicted  int64

	// predict returns the number of queries until an element is predicted to
	// be needed again (advice-modified replacement); ok is false when the
	// advice predicts nothing for it. Set per session.
	predict func(e *Element) (distance int, ok bool)
}

// NewManager creates a cache manager with the given byte budget (<= 0 means
// unbounded).
func NewManager(budget int64) *Manager {
	return &Manager{
		budget:   budget,
		elements: make(map[int]*Element),
		byCanon:  make(map[string]*Element),
		byPred:   make(map[string][]*Element),
	}
}

// SetPredictor installs the advice-driven replacement predictor (nil
// clears): given an element, the predicted number of queries until its next
// use.
func (m *Manager) SetPredictor(f func(e *Element) (int, bool)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.predict = f
}

// Len returns the number of cached elements.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.elements)
}

// SizeBytes returns the total cache footprint.
func (m *Manager) SizeBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sizeLocked()
}

func (m *Manager) sizeLocked() int64 {
	var n int64
	for _, e := range m.elements {
		n += e.SizeBytes()
	}
	return n
}

// Evictions returns the cumulative eviction count.
func (m *Manager) Evictions() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.evicted
}

// Insert stores an element built from the given parts and returns it.
// Insertion may evict LRU victims to respect the budget; elements larger
// than the whole budget are returned unstored (callers still use them for
// the current answer).
func (m *Manager) Insert(e *Element) (stored bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	size := e.SizeBytes()
	if m.budget > 0 && size > m.budget {
		return false
	}
	m.tick++
	e.lastUse = m.tick
	if old, ok := m.byCanon[e.Def.Canonical()]; ok {
		m.removeLocked(old)
	}
	m.elements[e.ID] = e
	m.byCanon[e.Def.Canonical()] = e
	for _, p := range e.Def.Preds() {
		m.byPred[p] = append(m.byPred[p], e)
	}
	m.ensureSpaceLocked()
	_, still := m.elements[e.ID]
	return still
}

// NewElementID allocates a fresh element ID.
func (m *Manager) NewElementID() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID++
	return m.nextID
}

// ensureSpaceLocked evicts elements until within budget. The victim is the
// element predicted to be needed *farthest* in the future (unpredicted
// elements count as infinitely far), ties broken by least recent use — the
// paper's replacement use of path expressions: an element predicted "for one
// of the next two queries ... is not the best candidate". Without a
// predictor this degenerates to plain LRU.
func (m *Manager) ensureSpaceLocked() {
	if m.budget <= 0 {
		return
	}
	const farAway = int(^uint(0) >> 1)
	for m.sizeLocked() > m.budget {
		var victim *Element
		victimDist := -1
		for _, e := range m.elements {
			if e.pinned {
				continue
			}
			dist := farAway
			if m.predict != nil {
				if d, ok := m.predict(e); ok {
					dist = d
				}
			}
			if victim == nil || dist > victimDist ||
				(dist == victimDist && e.lastUse < victim.lastUse) {
				victim = e
				victimDist = dist
			}
		}
		if victim == nil {
			return
		}
		m.removeLocked(victim)
		m.evicted++
	}
}

func (m *Manager) removeLocked(e *Element) {
	delete(m.elements, e.ID)
	if cur, ok := m.byCanon[e.Def.Canonical()]; ok && cur.ID == e.ID {
		delete(m.byCanon, e.Def.Canonical())
	}
	for _, p := range e.Def.Preds() {
		list := m.byPred[p]
		for i, x := range list {
			if x.ID == e.ID {
				m.byPred[p] = append(list[:i], list[i+1:]...)
				break
			}
		}
	}
}

// Touch records a use of the element for LRU purposes.
func (m *Manager) Touch(e *Element) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tick++
	e.lastUse = m.tick
	e.hits++
}

// ExactMatch finds an element whose definition exactly matches q up to
// variable renaming (result caching).
func (m *Manager) ExactMatch(q *caql.Query) *Element {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.byCanon[q.Canonical()]
}

// CandidatesFor returns elements sharing at least one predicate with q — the
// paper's "(predicate name, cache element)" index for expediting step 2.
func (m *Manager) CandidatesFor(q *caql.Query) []*Element {
	m.mu.Lock()
	defer m.mu.Unlock()
	seen := make(map[int]bool)
	var out []*Element
	for _, p := range q.Preds() {
		for _, e := range m.byPred[p] {
			if !seen[e.ID] {
				seen[e.ID] = true
				out = append(out, e)
			}
		}
	}
	return out
}

// Elements returns a snapshot of all elements.
func (m *Manager) Elements() []*Element {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Element, 0, len(m.elements))
	for _, e := range m.elements {
		out = append(out, e)
	}
	return out
}

// Model returns the cache model (Section 5.4: "the cache model represents
// the state and statistical information about the cache") as a relation, so
// the IE can query it through the normal interface.
func (m *Manager) Model() *relation.Relation {
	m.mu.Lock()
	defer m.mu.Unlock()
	schema := relation.NewSchema(
		relation.Attr{Name: "e_id", Kind: relation.KindInt},
		relation.Attr{Name: "e_def", Kind: relation.KindString},
		relation.Attr{Name: "mode", Kind: relation.KindString},
		relation.Attr{Name: "size_bytes", Kind: relation.KindInt},
		relation.Attr{Name: "hits", Kind: relation.KindInt},
		relation.Attr{Name: "last_use", Kind: relation.KindInt},
		relation.Attr{Name: "advice_name", Kind: relation.KindString},
	)
	out := relation.New("cache_model", schema)
	for _, e := range m.elements {
		out.MustAppend(relation.Tuple{
			relation.Int(int64(e.ID)),
			relation.Str(e.Def.String()),
			relation.Str(e.Mode.String()),
			relation.Int(e.SizeBytes()),
			relation.Int(e.hits),
			relation.Int(e.lastUse),
			relation.Str(e.AdviceName),
		})
	}
	return out.SortBy([]int{0})
}
